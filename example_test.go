package dbgc_test

import (
	"fmt"

	"dbgc"
	"dbgc/internal/lidar"
)

// ExampleCompress shows the minimal compress/decompress/verify cycle.
func ExampleCompress() {
	// Three points along a wall, sensor at the origin.
	cloud := dbgc.PointCloud{
		{X: 5.00, Y: 1.00, Z: -1.2},
		{X: 5.01, Y: 1.03, Z: -1.2},
		{X: 5.02, Y: 1.06, Z: -1.2},
	}
	data, stats, err := dbgc.Compress(cloud, dbgc.DefaultOptions(0.02))
	if err != nil {
		panic(err)
	}
	back, err := dbgc.Decompress(data)
	if err != nil {
		panic(err)
	}
	if _, err := dbgc.VerifyErrorBound(cloud, back, stats.Mapping, 0.02); err != nil {
		panic(err)
	}
	fmt.Println(len(back), "points round-tripped")
	// Output: 3 points round-tripped
}

// ExampleSensorOptions adapts the compressor to a sensor's angular
// geometry.
func ExampleSensorOptions() {
	meta := lidar.VLP16().Meta()
	opts := dbgc.SensorOptions(0.03, meta)
	fmt.Printf("q=%.0f mm, %d azimuth samples\n", opts.Q*1000, meta.H)
	// Output: q=30 mm, 1800 azimuth samples
}

// ExampleCodecByName compresses with a baseline codec from the registry.
func ExampleCodecByName() {
	codec, err := dbgc.CodecByName("Octree")
	if err != nil {
		panic(err)
	}
	cloud := dbgc.PointCloud{{X: 1, Y: 2, Z: 0}, {X: 1.5, Y: 2, Z: 0}}
	data, err := codec.Compress(cloud, 0.02)
	if err != nil {
		panic(err)
	}
	back, err := codec.Decompress(data)
	if err != nil {
		panic(err)
	}
	fmt.Println(codec.Name(), "decoded", len(back), "points")
	// Output: Octree decoded 2 points
}
