package dbgc_test

import (
	"math"
	"testing"

	"dbgc"
	"dbgc/internal/benchkit"
	"dbgc/internal/lidar"
)

// TestPublicAPIRoundTrip exercises the library exactly as a downstream
// user would: default options, compress, decompress, verify.
func TestPublicAPIRoundTrip(t *testing.T) {
	pc, err := benchkit.Frame(lidar.City, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := dbgc.DefaultOptions(0.02)
	data, stats, err := dbgc.Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dbgc.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, err := dbgc.VerifyErrorBound(pc, back, stats.Mapping, opts.Q)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > math.Sqrt(3)*opts.Q*1.0001 {
		t.Fatalf("max error %v over bound", maxErr)
	}
	if r := stats.CompressionRatio(); r < 10 {
		t.Errorf("city ratio %.2f below expectation", r)
	}
}

// TestSensorOptions checks the sensor-metadata constructor.
func TestSensorOptions(t *testing.T) {
	meta := lidar.HDL64E().Meta()
	opts := dbgc.SensorOptions(0.01, meta)
	if opts.Q != 0.01 {
		t.Fatalf("Q = %v", opts.Q)
	}
	if opts.UTheta != meta.UTheta() || opts.UPhi != meta.UPhi() {
		t.Fatal("sensor steps not adopted")
	}
	// Zero metadata keeps the defaults.
	opts2 := dbgc.SensorOptions(0.01, lidar.Meta{})
	if opts2.UTheta <= 0 || opts2.UPhi <= 0 {
		t.Fatal("defaults lost for empty metadata")
	}
}

// TestCodecsRegistry verifies every baseline codec round-trips and is
// reachable by name.
func TestCodecsRegistry(t *testing.T) {
	pc, err := benchkit.Frame(lidar.Road, 1)
	if err != nil {
		t.Fatal(err)
	}
	small := pc[:5000]
	names := map[string]bool{}
	for _, codec := range dbgc.Codecs() {
		names[codec.Name()] = true
		data, err := codec.Compress(small, 0.02)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		back, err := codec.Decompress(data)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if len(back) != len(small) {
			t.Fatalf("%s: %d points out, %d in", codec.Name(), len(back), len(small))
		}
		byName, err := dbgc.CodecByName(codec.Name())
		if err != nil || byName.Name() != codec.Name() {
			t.Fatalf("CodecByName(%q): %v", codec.Name(), err)
		}
	}
	for _, want := range []string{"DBGC", "Octree", "Octree_i", "Draco", "G-PCC"} {
		if !names[want] {
			t.Fatalf("codec %q missing from registry", want)
		}
	}
	if _, err := dbgc.CodecByName("nope"); err == nil {
		t.Fatal("expected error for unknown codec")
	}
}

// TestVerifyErrorBoundRejects checks the verifier actually rejects bad
// reconstructions.
func TestVerifyErrorBoundRejects(t *testing.T) {
	orig := dbgc.PointCloud{{X: 1}, {X: 2}}
	// Size mismatch.
	if _, err := dbgc.VerifyErrorBound(orig, orig[:1], []int32{0}, 0.02); err == nil {
		t.Fatal("size mismatch accepted")
	}
	// Not a permutation.
	if _, err := dbgc.VerifyErrorBound(orig, orig, []int32{0, 0}, 0.02); err == nil {
		t.Fatal("duplicate mapping accepted")
	}
	// Error over bound.
	dec := dbgc.PointCloud{{X: 1.5}, {X: 2}}
	if _, err := dbgc.VerifyErrorBound(orig, dec, []int32{0, 1}, 0.02); err == nil {
		t.Fatal("over-bound error accepted")
	}
	// Happy path.
	if _, err := dbgc.VerifyErrorBound(orig, orig, []int32{0, 1}, 0.02); err != nil {
		t.Fatal(err)
	}
}
