package polyline

import "sort"

// MaxRefLines caps the reference polyline set. Scenes with long flat rings
// produce hundreds of polylines at the same quantized polar angle; merging
// all of them into every consensus line would make step 8 quadratic, and
// only the closest preceding lines carry predictive value. The cap applies
// identically during compression and decompression, so reference choices
// stay reproducible.
const MaxRefLines = 8

// RefWindow returns the index range [lo, idx) of the reference polyline set
// of lines[idx] (Definition 3.4): the preceding polylines whose polar angle
// differs from lines[idx]'s by at most thPhi, capped at MaxRefLines. lines
// must already be sorted by SortLines, so the window is a contiguous run
// ending at idx.
func RefWindow(lines []Line, idx int, thPhi int64) (lo int) {
	phi := lines[idx].PolarAngle()
	lo = idx
	for lo > 0 && idx-lo < MaxRefLines && phi-lines[lo-1].PolarAngle() <= thPhi {
		lo--
	}
	return lo
}

// Consensus builds the consensus reference polyline l* of lines[idx]
// (Algorithm 2): the reference polylines are merged in ⟨PL⟩ order into one
// θ-sorted line, each later (φ-closer) polyline replacing the consensus
// points inside its azimuthal span. The result is nil when the reference
// set is empty.
//
// Consensus construction uses only θ, φ and the r values of polylines that
// precede lines[idx], all of which the decompressor has already recovered
// when it needs l*, so both sides reproduce the same consensus line.
func Consensus(lines []Line, idx int, thPhi int64) Line {
	var s ConsensusScratch
	return s.Consensus(lines, idx, thPhi)
}

// ConsensusScratch recycles the merge buffers of consensus construction.
// The Line returned by its Consensus method aliases the scratch and is
// valid until the next call; the per-line coding loops consume each
// consensus line before building the next, so one scratch serves a whole
// stream.
type ConsensusScratch struct {
	a, b Line
}

// Consensus is Consensus building into the scratch's reused buffers.
func (s *ConsensusScratch) Consensus(lines []Line, idx int, thPhi int64) Line {
	lo := RefWindow(lines, idx, thPhi)
	if lo == idx {
		return nil
	}
	cur, alt := s.a[:0], s.b[:0]
	for _, l := range lines[lo:idx] {
		cur, alt = mergeInto(alt[:0], cur, l), cur
	}
	s.a, s.b = cur, alt
	return cur
}

// mergeInto appends to dst the merge of cons and l: l's points replace the
// consensus points within l's azimuthal span, keeping the result sorted by
// θ. dst must not alias cons.
func mergeInto(dst, cons Line, l Line) Line {
	if len(cons) == 0 {
		return append(dst, l...)
	}
	headT := l.Head().Theta
	tailT := l.Tail().Theta
	// cut points: cons[:a] has θ < headT; cons[b:] has θ > tailT.
	a := sort.Search(len(cons), func(i int) bool { return cons[i].Theta >= headT })
	b := sort.Search(len(cons), func(i int) bool { return cons[i].Theta > tailT })
	dst = append(dst, cons[:a]...)
	dst = append(dst, l...)
	dst = append(dst, cons[b:]...)
	return dst
}

// SearchLeft returns the rightmost point of l with θ < theta, if any.
func SearchLeft(l Line, theta int64) (Point, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i].Theta >= theta })
	if i == 0 {
		return Point{}, false
	}
	return l[i-1], true
}

// SearchRight returns the leftmost point of l with θ > theta, if any.
func SearchRight(l Line, theta int64) (Point, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i].Theta > theta })
	if i == len(l) {
		return Point{}, false
	}
	return l[i], true
}

// SearchAt returns a point of l with θ equal to theta, if any — the
// "upper-middle" candidate of §3.5, which exists exactly when an aligned
// sample sits directly above the current point.
func SearchAt(l Line, theta int64) (Point, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i].Theta >= theta })
	if i < len(l) && l[i].Theta == theta {
		return l[i], true
	}
	return Point{}, false
}
