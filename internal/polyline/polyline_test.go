package polyline

import (
	"math/rand"
	"testing"

	"dbgc/internal/geom"
)

// cart is a simple quantized→Cartesian mapping for tests: treat (θ, φ, r)
// as scaled spherical coordinates.
func cart(scaleT, scaleP, scaleR float64) func(Point) geom.Point {
	return func(p Point) geom.Point {
		return geom.ToCartesian(geom.Spherical{
			Theta: float64(p.Theta) * scaleT,
			Phi:   float64(p.Phi) * scaleP,
			R:     float64(p.R) * scaleR,
		})
	}
}

// scanRow builds a horizontal scan row: n points at polar angle phi with
// consecutive azimuth steps and a smooth radius drift. (A sawtooth radius
// would make the greedy nearest-candidate extension skip points — real
// scan rows on a surface vary smoothly.)
func scanRow(phi int64, thetaStart, n int, r int64, step int64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			Theta: int64(thetaStart) + int64(i)*step,
			Phi:   phi,
			R:     r + int64(i),
			Orig:  int32(i),
		}
	}
	return pts
}

func defaultCfg() Config {
	// u_θ = 10 quantized units, u_φ = 8.
	return Config{UTheta: 10, UPhi: 8, Cartesian: cart(1e-4, 1e-4, 0.01)}
}

func TestOrganizeSingleRow(t *testing.T) {
	pts := scanRow(1000, 0, 50, 3000, 10)
	lines, outliers := Organize(pts, defaultCfg())
	if len(outliers) != 0 {
		t.Fatalf("%d unexpected outliers", len(outliers))
	}
	if len(lines) != 1 {
		t.Fatalf("expected 1 polyline, got %d", len(lines))
	}
	if len(lines[0]) != 50 {
		t.Fatalf("polyline has %d points, want 50", len(lines[0]))
	}
	for i := 1; i < len(lines[0]); i++ {
		if lines[0][i].Theta <= lines[0][i-1].Theta {
			t.Fatalf("polyline not ascending in θ at %d", i)
		}
	}
}

func TestOrganizeRowWithGap(t *testing.T) {
	// A gap of 5 azimuth steps (> 2u_θ) must split the row.
	pts := append(scanRow(1000, 0, 20, 3000, 10), scanRow(1000, 20*10+50, 20, 3000, 10)...)
	lines, outliers := Organize(pts, defaultCfg())
	if len(lines) != 2 {
		t.Fatalf("expected 2 polylines, got %d (+%d outliers)", len(lines), len(outliers))
	}
}

func TestOrganizeTwoRows(t *testing.T) {
	// Two scan rows separated by 3u_φ must form separate polylines.
	pts := append(scanRow(1000, 0, 30, 3000, 10), scanRow(1024, 0, 30, 3200, 10)...)
	lines, outliers := Organize(pts, defaultCfg())
	if len(lines) != 2 || len(outliers) != 0 {
		t.Fatalf("expected 2 polylines, got %d (+%d outliers)", len(lines), len(outliers))
	}
	// Sorted by polar angle.
	if lines[0].PolarAngle() > lines[1].PolarAngle() {
		t.Fatal("lines not sorted by polar angle")
	}
}

func TestOrganizeIsolatedOutlier(t *testing.T) {
	pts := scanRow(1000, 0, 30, 3000, 10)
	pts = append(pts, Point{Theta: 5000, Phi: 5000, R: 9000})
	lines, outliers := Organize(pts, defaultCfg())
	if len(lines) != 1 || len(outliers) != 1 {
		t.Fatalf("expected 1 line + 1 outlier, got %d + %d", len(lines), len(outliers))
	}
	if outliers[0].Phi != 5000 {
		t.Fatalf("wrong outlier: %+v", outliers[0])
	}
}

func TestOrganizeEmpty(t *testing.T) {
	lines, outliers := Organize(nil, defaultCfg())
	if lines != nil || outliers != nil {
		t.Fatal("empty input must yield empty output")
	}
}

func TestOrganizeCoversAllPoints(t *testing.T) {
	// Every input point lands in exactly one polyline or the outlier set.
	rng := rand.New(rand.NewSource(3))
	var pts []Point
	for row := 0; row < 10; row++ {
		phi := int64(1000 + row*9)
		theta := int64(0)
		r := int64(2000 + rng.Intn(2000))
		for theta < 3000 {
			theta += int64(5 + rng.Intn(15))
			if rng.Float64() < 0.1 {
				theta += 40 // occasional gap
			}
			pts = append(pts, Point{Theta: theta, Phi: phi + int64(rng.Intn(3)-1), R: r + int64(rng.Intn(30)), Orig: int32(len(pts))})
		}
	}
	lines, outliers := Organize(pts, defaultCfg())
	seen := make(map[int32]int)
	total := 0
	for _, l := range lines {
		for _, p := range l {
			seen[p.Orig]++
			total++
		}
	}
	for _, p := range outliers {
		seen[p.Orig]++
		total++
	}
	if total != len(pts) {
		t.Fatalf("organized %d points, want %d", total, len(pts))
	}
	for o, c := range seen {
		if c != 1 {
			t.Fatalf("point %d appears %d times", o, c)
		}
	}
	// Most points should be on polylines for scan-structured input.
	if len(outliers) > len(pts)/10 {
		t.Fatalf("too many outliers: %d/%d", len(outliers), len(pts))
	}
}

func TestRefWindow(t *testing.T) {
	lines := []Line{
		{{Phi: 100}},
		{{Phi: 110}},
		{{Phi: 112}},
		{{Phi: 150}},
	}
	if lo := RefWindow(lines, 2, 5); lo != 1 {
		t.Fatalf("RefWindow = %d, want 1", lo)
	}
	if lo := RefWindow(lines, 3, 5); lo != 3 {
		t.Fatalf("RefWindow for isolated line = %d, want 3", lo)
	}
	if lo := RefWindow(lines, 0, 5); lo != 0 {
		t.Fatalf("RefWindow for first line = %d, want 0", lo)
	}
}

func TestConsensusMerge(t *testing.T) {
	lines := []Line{
		{{Theta: 0, Phi: 100, R: 10}, {Theta: 10, Phi: 100, R: 11}, {Theta: 20, Phi: 100, R: 12}, {Theta: 30, Phi: 100, R: 13}},
		{{Theta: 8, Phi: 102, R: 20}, {Theta: 18, Phi: 102, R: 21}},
		{{Theta: 5, Phi: 104, R: 30}},
	}
	cons := Consensus(lines, 2, 10)
	// Line 1 replaces the consensus span θ∈[8,18] of line 0:
	// expect θ = 0, 8, 18, 20, 30 with rs 10, 20, 21, 12, 13.
	wantT := []int64{0, 8, 18, 20, 30}
	wantR := []int64{10, 20, 21, 12, 13}
	if len(cons) != len(wantT) {
		t.Fatalf("consensus has %d points, want %d: %+v", len(cons), len(wantT), cons)
	}
	for i := range wantT {
		if cons[i].Theta != wantT[i] || cons[i].R != wantR[i] {
			t.Fatalf("consensus[%d] = %+v, want θ=%d r=%d", i, cons[i], wantT[i], wantR[i])
		}
	}
}

func TestConsensusEmptyWindow(t *testing.T) {
	lines := []Line{{{Theta: 0, Phi: 0}}, {{Theta: 0, Phi: 1000}}}
	if cons := Consensus(lines, 1, 5); cons != nil {
		t.Fatalf("expected nil consensus, got %+v", cons)
	}
	if cons := Consensus(lines, 0, 5); cons != nil {
		t.Fatalf("first line must have nil consensus, got %+v", cons)
	}
}

func TestSearchHelpers(t *testing.T) {
	l := Line{{Theta: 10}, {Theta: 20}, {Theta: 30}}
	if p, ok := SearchLeft(l, 25); !ok || p.Theta != 20 {
		t.Fatalf("SearchLeft(25) = %+v %v", p, ok)
	}
	if _, ok := SearchLeft(l, 10); ok {
		t.Fatal("SearchLeft(10) should fail (strictly less)")
	}
	if p, ok := SearchRight(l, 25); !ok || p.Theta != 30 {
		t.Fatalf("SearchRight(25) = %+v %v", p, ok)
	}
	if _, ok := SearchRight(l, 30); ok {
		t.Fatal("SearchRight(30) should fail (strictly greater)")
	}
	if p, ok := SearchAt(l, 20); !ok || p.Theta != 20 {
		t.Fatalf("SearchAt(20) = %+v %v", p, ok)
	}
	if _, ok := SearchAt(l, 25); ok {
		t.Fatal("SearchAt(25) should fail")
	}
}
