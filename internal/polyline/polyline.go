// Package polyline implements DBGC's point organization (§3.4): sparse
// points are arranged into roughly horizontal polylines in the spherical
// coordinate space (Algorithm 1), the polylines are sorted by polar angle,
// and consensus reference polylines are built for the radial-distance
// optimized delta encoding (§3.5 step 8, Algorithm 2).
//
// All coordinates here are quantized integers (the output of coordinate
// scaling, §3.5 step 1). Working on quantized values keeps the compressor
// and decompressor bit-identical when reference-point choices are replayed
// during decompression.
package polyline

import (
	"sort"

	"dbgc/internal/geom"
)

// Point is a sparse point in quantized spherical coordinates. Orig tracks
// the index of the point in the original cloud for error accounting; it is
// not transmitted.
type Point struct {
	Theta, Phi, R int64
	Orig          int32
}

// Line is a polyline: a sequence of points in ascending azimuthal order.
// The head (first point) is the leftmost.
type Line []Point

// Head returns the first point of the line.
func (l Line) Head() Point { return l[0] }

// Tail returns the last point of the line.
func (l Line) Tail() Point { return l[len(l)-1] }

// PolarAngle returns the polar angle of the line, defined in §3.4 as the
// polar angle of its first point.
func (l Line) PolarAngle() int64 { return l[0].Phi }

// Config carries the extraction thresholds in quantized units.
type Config struct {
	// UTheta is the average azimuthal step between adjacent samples
	// (u_θ), in quantized units.
	UTheta float64
	// UPhi is the average polar step between adjacent beams (u_φ), in
	// quantized units.
	UPhi float64
	// Cartesian maps a quantized point to its Cartesian position, used
	// for the minimum-Euclidean-distance candidate selection in
	// Algorithm 1.
	Cartesian func(Point) geom.Point
}

// Organize runs Algorithm 1: it partitions pts into polylines and
// outliers. Points are consumed in (φ, θ) order so the result is
// deterministic. Single-point lines are returned as outliers.
func Organize(pts []Point, cfg Config) (lines []Line, outliers []Point) {
	if len(pts) == 0 {
		return nil, nil
	}
	idx := newThetaPhiIndex(pts, cfg)
	seeds := make([]int32, len(pts))
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.Slice(seeds, func(a, b int) bool {
		pa, pb := pts[seeds[a]], pts[seeds[b]]
		if pa.Phi != pb.Phi {
			return pa.Phi < pb.Phi
		}
		if pa.Theta != pb.Theta {
			return pa.Theta < pb.Theta
		}
		return pa.R < pb.R
	})

	for _, s := range seeds {
		if idx.taken[s] {
			continue
		}
		idx.take(s)
		seed := pts[s]
		// The polyline's polar corridor is fixed by its seed (§3.4):
		// [φ_seed − u_φ, φ_seed + u_φ].
		phiMin := float64(seed.Phi) - cfg.UPhi
		phiMax := float64(seed.Phi) + cfg.UPhi

		line := Line{seed}
		// Extend right: candidates have θ − θ_tail ∈ (0, 2u_θ].
		for {
			tail := line[len(line)-1]
			next, ok := idx.bestCandidate(tail, phiMin, phiMax, false, cfg)
			if !ok {
				break
			}
			idx.take(next)
			line = append(line, pts[next])
		}
		// Extend left, symmetrically.
		for {
			head := line[0]
			prev, ok := idx.bestCandidate(head, phiMin, phiMax, true, cfg)
			if !ok {
				break
			}
			idx.take(prev)
			line = append(Line{pts[prev]}, line...)
		}
		if len(line) == 1 {
			outliers = append(outliers, seed)
			continue
		}
		lines = append(lines, line)
	}
	SortLines(lines)
	return lines, outliers
}

// SortLines orders polylines by ascending polar angle, breaking ties by the
// azimuthal angle of the head (§3.4).
func SortLines(lines []Line) {
	sort.Slice(lines, func(a, b int) bool {
		if lines[a].PolarAngle() != lines[b].PolarAngle() {
			return lines[a].PolarAngle() < lines[b].PolarAngle()
		}
		return lines[a].Head().Theta < lines[b].Head().Theta
	})
}

// thetaPhiIndex buckets available points on a (θ, φ) grid with cell sides
// (u_θ, u_φ) for the candidate queries of Algorithm 1.
type thetaPhiIndex struct {
	pts     []Point
	cfg     Config
	buckets map[[2]int32][]int32
	taken   []bool
}

func newThetaPhiIndex(pts []Point, cfg Config) *thetaPhiIndex {
	idx := &thetaPhiIndex{
		pts:     pts,
		cfg:     cfg,
		buckets: make(map[[2]int32][]int32, len(pts)/2+1),
		taken:   make([]bool, len(pts)),
	}
	for i := range pts {
		b := idx.bucketOf(pts[i])
		idx.buckets[b] = append(idx.buckets[b], int32(i))
	}
	return idx
}

func (idx *thetaPhiIndex) bucketOf(p Point) [2]int32 {
	ut := idx.cfg.UTheta
	up := idx.cfg.UPhi
	if ut <= 0 {
		ut = 1
	}
	if up <= 0 {
		up = 1
	}
	return [2]int32{int32(float64(p.Theta) / ut), int32(float64(p.Phi) / up)}
}

func (idx *thetaPhiIndex) take(i int32) { idx.taken[i] = true }

// bestCandidate finds the nearest (in Euclidean distance) available point
// extending from anchor within the polar corridor: θ strictly beyond the
// anchor by at most 2u_θ, in the direction given by left.
func (idx *thetaPhiIndex) bestCandidate(anchor Point, phiMin, phiMax float64, left bool, cfg Config) (int32, bool) {
	ut := cfg.UTheta
	up := cfg.UPhi
	if ut <= 0 {
		ut = 1
	}
	if up <= 0 {
		up = 1
	}
	// The paper's candidate window is 0 < Δθ ≤ 2u_θ. With quantized
	// coordinates the azimuthal step can round to zero (near-field groups
	// quantize angles coarsely), so zero is admitted too: equal-θ
	// neighbors chain with a zero delta instead of stranding as outliers.
	var thetaLo, thetaHi float64
	if left {
		thetaLo = float64(anchor.Theta) - 2*ut
		thetaHi = float64(anchor.Theta)
	} else {
		thetaLo = float64(anchor.Theta)
		thetaHi = float64(anchor.Theta) + 2*ut
	}
	bLo := int32(thetaLo / ut)
	bHi := int32(thetaHi / ut)
	pLo := int32(phiMin / up)
	pHi := int32(phiMax / up)

	anchorPos := cfg.Cartesian(anchor)
	best := int32(-1)
	bestD := 0.0
	for bt := bLo - 1; bt <= bHi+1; bt++ {
		for bp := pLo - 1; bp <= pHi+1; bp++ {
			for _, c := range idx.buckets[[2]int32{bt, bp}] {
				if idx.taken[c] {
					continue
				}
				p := idx.pts[c]
				if float64(p.Phi) < phiMin || float64(p.Phi) > phiMax {
					continue
				}
				var dTheta float64
				if left {
					dTheta = float64(anchor.Theta) - float64(p.Theta)
				} else {
					dTheta = float64(p.Theta) - float64(anchor.Theta)
				}
				if dTheta < 0 || dTheta > 2*ut {
					continue
				}
				d := anchorPos.Dist2(cfg.Cartesian(p))
				if best < 0 || d < bestD || (d == bestD && c < best) {
					best, bestD = c, d
				}
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
