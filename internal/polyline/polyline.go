// Package polyline implements DBGC's point organization (§3.4): sparse
// points are arranged into roughly horizontal polylines in the spherical
// coordinate space (Algorithm 1), the polylines are sorted by polar angle,
// and consensus reference polylines are built for the radial-distance
// optimized delta encoding (§3.5 step 8, Algorithm 2).
//
// All coordinates here are quantized integers (the output of coordinate
// scaling, §3.5 step 1). Working on quantized values keeps the compressor
// and decompressor bit-identical when reference-point choices are replayed
// during decompression.
package polyline

import (
	"math/bits"
	"sort"
	"sync"

	"dbgc/internal/geom"
	"dbgc/internal/radix"
)

// Point is a sparse point in quantized spherical coordinates. Orig tracks
// the index of the point in the original cloud for error accounting; it is
// not transmitted.
type Point struct {
	Theta, Phi, R int64
	Orig          int32
}

// Line is a polyline: a sequence of points in ascending azimuthal order.
// The head (first point) is the leftmost.
type Line []Point

// Head returns the first point of the line.
func (l Line) Head() Point { return l[0] }

// Tail returns the last point of the line.
func (l Line) Tail() Point { return l[len(l)-1] }

// PolarAngle returns the polar angle of the line, defined in §3.4 as the
// polar angle of its first point.
func (l Line) PolarAngle() int64 { return l[0].Phi }

// Config carries the extraction thresholds in quantized units.
type Config struct {
	// UTheta is the average azimuthal step between adjacent samples
	// (u_θ), in quantized units.
	UTheta float64
	// UPhi is the average polar step between adjacent beams (u_φ), in
	// quantized units.
	UPhi float64
	// Cartesian maps a quantized point to its Cartesian position, used
	// for the minimum-Euclidean-distance candidate selection in
	// Algorithm 1.
	Cartesian func(Point) geom.Point
}

// Organize runs Algorithm 1: it partitions pts into polylines and
// outliers. Points are consumed in (φ, θ) order so the result is
// deterministic. Single-point lines are returned as outliers.
//
// The candidate index inverts the sine/cosine evaluations of Algorithm 1's
// Euclidean-distance test: every point's Cartesian position is computed
// once up front instead of on every probe, and the (θ, φ) buckets live in
// an open-addressing table with intrusive chains rather than a Go map.
// Taken points are unlinked from their chain as scans pass them, so
// repeatedly-probed buckets shrink as extraction consumes the cloud.
func Organize(pts []Point, cfg Config) (lines []Line, outliers []Point) {
	if len(pts) == 0 {
		return nil, nil
	}
	s := organizePool.Get().(*organizeScratch)
	defer organizePool.Put(s)
	idx := newThetaPhiIndex(pts, cfg, s)
	seeds := s.sortSeeds(pts)

	right := s.right[:0]
	left := s.left[:0]
	for _, sd := range seeds {
		if idx.taken[sd] {
			continue
		}
		idx.take(sd)
		seed := pts[sd]
		// The polyline's polar corridor is fixed by its seed (§3.4):
		// [φ_seed − u_φ, φ_seed + u_φ].
		phiMin := float64(seed.Phi) - cfg.UPhi
		phiMax := float64(seed.Phi) + cfg.UPhi

		// Extend right: candidates have θ − θ_tail ∈ (0, 2u_θ].
		right = append(right[:0], sd)
		for {
			next, ok := idx.bestCandidate(right[len(right)-1], phiMin, phiMax, false)
			if !ok {
				break
			}
			idx.take(next)
			right = append(right, next)
		}
		// Extend left, symmetrically; collected head-outward and reversed
		// into the line afterwards, so extension is O(1) per point.
		left = left[:0]
		head := sd
		for {
			prev, ok := idx.bestCandidate(head, phiMin, phiMax, true)
			if !ok {
				break
			}
			idx.take(prev)
			left = append(left, prev)
			head = prev
		}
		if len(left)+len(right) == 1 {
			outliers = append(outliers, seed)
			continue
		}
		line := make(Line, 0, len(left)+len(right))
		for i := len(left) - 1; i >= 0; i-- {
			line = append(line, pts[left[i]])
		}
		for _, i := range right {
			line = append(line, pts[i])
		}
		lines = append(lines, line)
	}
	s.right, s.left = right, left
	SortLines(lines)
	return lines, outliers
}

// SortLines orders polylines by ascending polar angle, breaking ties by the
// azimuthal angle of the head (§3.4).
func SortLines(lines []Line) {
	sort.Slice(lines, func(a, b int) bool {
		if lines[a].PolarAngle() != lines[b].PolarAngle() {
			return lines[a].PolarAngle() < lines[b].PolarAngle()
		}
		return lines[a].Head().Theta < lines[b].Head().Theta
	})
}

// organizeScratch recycles the per-call buffers of Organize across frames.
type organizeScratch struct {
	seeds   []int32
	keys    []uint64
	pos     []geom.Point
	next    []int32
	taken   []bool
	slotKey []uint64
	slotVal []int32
	left    []int32
	right   []int32
	sort    radix.Scratch
}

var organizePool = sync.Pool{New: func() any { return new(organizeScratch) }}

// sortSeeds returns the point indices in (φ, θ, r) order. When the
// coordinate ranges fit a packed 64-bit key the order comes from one radix
// sort; otherwise it falls back to a comparison sort. Full-coordinate ties
// keep ascending index order either way (the radix sort is stable).
func (s *organizeScratch) sortSeeds(pts []Point) []int32 {
	n := len(pts)
	if cap(s.seeds) < n {
		s.seeds = make([]int32, n)
	}
	seeds := s.seeds[:n]
	for i := range seeds {
		seeds[i] = int32(i)
	}
	minP, maxP := pts[0], pts[0]
	for _, p := range pts[1:] {
		minP.Theta = min(minP.Theta, p.Theta)
		maxP.Theta = max(maxP.Theta, p.Theta)
		minP.Phi = min(minP.Phi, p.Phi)
		maxP.Phi = max(maxP.Phi, p.Phi)
		minP.R = min(minP.R, p.R)
		maxP.R = max(maxP.R, p.R)
	}
	tb := bits.Len64(uint64(maxP.Theta - minP.Theta))
	pb := bits.Len64(uint64(maxP.Phi - minP.Phi))
	rb := bits.Len64(uint64(maxP.R - minP.R))
	if tb+pb+rb > 64 {
		sort.Slice(seeds, func(a, b int) bool {
			pa, pb := pts[seeds[a]], pts[seeds[b]]
			if pa.Phi != pb.Phi {
				return pa.Phi < pb.Phi
			}
			if pa.Theta != pb.Theta {
				return pa.Theta < pb.Theta
			}
			return pa.R < pb.R
		})
		return seeds
	}
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
	}
	keys := s.keys[:n]
	for i, p := range pts {
		keys[i] = uint64(p.Phi-minP.Phi)<<(tb+rb) |
			uint64(p.Theta-minP.Theta)<<rb |
			uint64(p.R-minP.R)
	}
	radix.Sort(keys, seeds, &s.sort)
	return seeds
}

// thetaPhiIndex buckets available points on a (θ, φ) grid with cell sides
// (u_θ, u_φ) for the candidate queries of Algorithm 1. Buckets are chains
// threaded through next, headed by an open-addressing table: slotVal is 0
// for a free slot, 1 for an emptied bucket, and head+2 otherwise. Emptied
// buckets stay occupied so later probes for colliding keys still find
// their slots.
type thetaPhiIndex struct {
	pts     []Point
	pos     []geom.Point // Cartesian position of each point, precomputed
	next    []int32
	taken   []bool
	slotKey []uint64
	slotVal []int32
	mask    uint64
	ut, up  float64
}

func newThetaPhiIndex(pts []Point, cfg Config, s *organizeScratch) *thetaPhiIndex {
	n := len(pts)
	idx := &thetaPhiIndex{pts: pts, ut: cfg.UTheta, up: cfg.UPhi}
	if idx.ut <= 0 {
		idx.ut = 1
	}
	if idx.up <= 0 {
		idx.up = 1
	}
	if cap(s.pos) < n {
		s.pos = make([]geom.Point, n)
	}
	if cap(s.next) < n {
		s.next = make([]int32, n)
	}
	if cap(s.taken) < n {
		s.taken = make([]bool, n)
	}
	idx.pos, idx.next, idx.taken = s.pos[:n], s.next[:n], s.taken[:n]
	for i := range idx.taken {
		idx.taken[i] = false
	}
	size := 1
	for size < 2*n {
		size <<= 1
	}
	if cap(s.slotKey) < size {
		s.slotKey = make([]uint64, size)
		s.slotVal = make([]int32, size)
	}
	idx.slotKey, idx.slotVal = s.slotKey[:size], s.slotVal[:size]
	for i := range idx.slotVal {
		idx.slotVal[i] = 0
	}
	idx.mask = uint64(size - 1)
	// Insert in reverse so each chain lists its points in ascending index
	// order.
	for i := n - 1; i >= 0; i-- {
		p := pts[i]
		idx.pos[i] = cfg.Cartesian(p)
		key := bucketKey(int32(float64(p.Theta)/idx.ut), int32(float64(p.Phi)/idx.up))
		slot := idx.findSlot(key)
		if idx.slotVal[slot] == 0 {
			idx.slotKey[slot] = key
			idx.next[i] = -1
		} else {
			idx.next[i] = idx.slotVal[slot] - 2
		}
		idx.slotVal[slot] = int32(i) + 2
	}
	s.pos, s.next, s.taken = idx.pos, idx.next, idx.taken
	s.slotKey, s.slotVal = idx.slotKey, idx.slotVal
	return idx
}

func bucketKey(bt, bp int32) uint64 {
	return uint64(uint32(bt))<<32 | uint64(uint32(bp))
}

// findSlot probes for key, returning its slot or the free slot where it
// belongs. The table is sized at twice the point count and never grows.
func (idx *thetaPhiIndex) findSlot(key uint64) int {
	h := (key * 0x9E3779B97F4A7C15) >> 32
	for slot := h & idx.mask; ; slot = (slot + 1) & idx.mask {
		if idx.slotVal[slot] == 0 || idx.slotKey[slot] == key {
			return int(slot)
		}
	}
}

func (idx *thetaPhiIndex) take(i int32) { idx.taken[i] = true }

// bestCandidate finds the nearest (in Euclidean distance) available point
// extending from the anchor point within the polar corridor: θ strictly
// beyond the anchor by at most 2u_θ, in the direction given by left.
// Distance ties pick the lowest index, so neither bucket-chain order nor
// probe order affects the result.
func (idx *thetaPhiIndex) bestCandidate(anchor int32, phiMin, phiMax float64, left bool) (int32, bool) {
	ut := idx.ut
	ap := idx.pts[anchor]
	// The paper's candidate window is 0 < Δθ ≤ 2u_θ. With quantized
	// coordinates the azimuthal step can round to zero (near-field groups
	// quantize angles coarsely), so zero is admitted too: equal-θ
	// neighbors chain with a zero delta instead of stranding as outliers.
	var thetaLo, thetaHi float64
	if left {
		thetaLo = float64(ap.Theta) - 2*ut
		thetaHi = float64(ap.Theta)
	} else {
		thetaLo = float64(ap.Theta)
		thetaHi = float64(ap.Theta) + 2*ut
	}
	bLo := int32(thetaLo / ut)
	bHi := int32(thetaHi / ut)
	pLo := int32(phiMin / idx.up)
	pHi := int32(phiMax / idx.up)

	anchorPos := idx.pos[anchor]
	best := int32(-1)
	bestD := 0.0
	for bt := bLo - 1; bt <= bHi+1; bt++ {
		for bp := pLo - 1; bp <= pHi+1; bp++ {
			slot := idx.findSlot(bucketKey(bt, bp))
			c := idx.slotVal[slot] - 2
			prev := int32(-1)
			for c >= 0 {
				nxt := idx.next[c]
				if idx.taken[c] {
					// Unlink: taken points never come back, so the chain
					// only shrinks.
					if prev < 0 {
						idx.slotVal[slot] = nxt + 2
					} else {
						idx.next[prev] = nxt
					}
					c = nxt
					continue
				}
				p := idx.pts[c]
				if float64(p.Phi) >= phiMin && float64(p.Phi) <= phiMax {
					var dTheta float64
					if left {
						dTheta = float64(ap.Theta) - float64(p.Theta)
					} else {
						dTheta = float64(p.Theta) - float64(ap.Theta)
					}
					if dTheta >= 0 && dTheta <= 2*ut {
						d := anchorPos.Dist2(idx.pos[c])
						if best < 0 || d < bestD || (d == bestD && c < best) {
							best, bestD = c, d
						}
					}
				}
				prev = c
				c = nxt
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
