package polyline

import "testing"

// TestRefWindowCap: hundreds of polylines at one quantized polar angle must
// not blow the reference window past MaxRefLines — the guard that keeps
// step 8 linear on flat-ring scenes.
func TestRefWindowCap(t *testing.T) {
	lines := make([]Line, 500)
	for i := range lines {
		lines[i] = Line{{Theta: int64(i) * 10, Phi: 100, R: int64(i)}}
	}
	lo := RefWindow(lines, 499, 5)
	if 499-lo != MaxRefLines {
		t.Fatalf("window size %d, want cap %d", 499-lo, MaxRefLines)
	}
	cons := Consensus(lines, 499, 5)
	if cons == nil {
		t.Fatal("capped window still has lines; consensus must exist")
	}
	if len(cons) > MaxRefLines {
		t.Fatalf("consensus of single-point lines has %d points, cap is %d", len(cons), MaxRefLines)
	}
}

// TestConsensusLaterLineWins: within the window, a later (φ-closer) line
// replaces earlier consensus points in its span.
func TestConsensusLaterLineWins(t *testing.T) {
	lines := []Line{
		{{Theta: 0, Phi: 10, R: 1}, {Theta: 100, Phi: 10, R: 1}},
		{{Theta: 40, Phi: 11, R: 2}, {Theta: 60, Phi: 11, R: 2}},
		{{Theta: 50, Phi: 12, R: 9}},
	}
	cons := Consensus(lines, 2, 5)
	for _, p := range cons {
		if p.Theta >= 40 && p.Theta <= 60 && p.R != 2 {
			t.Fatalf("span [40,60] should come from line 1: %+v", p)
		}
	}
}
