package stream

import (
	"fmt"
	"math"

	"dbgc"
	"dbgc/internal/arith"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// Temporal coding: the paper compresses single frames and notes they can
// be "a building block in compressing point cloud streams" (§1). This file
// is that composition for static or slowly changing scenes: an I-frame is
// a plain DBGC bit sequence; a P-frame codes the frame's octree occupancy
// under the *previous decoded frame's* occupancy as context (the classic
// double-buffered predicted octree). On a static scene most nodes repeat
// the previous occupancy pattern, so the context models concentrate and
// occupancy costs collapse; with sensor noise the prediction stays useful
// because parent-level structure is stable even when leaf cells flicker.
//
// The octree lives on a canonical grid anchored at the world origin with
// leaf side exactly 2q, so prediction contexts line up across frames
// regardless of per-frame bounding boxes, and reconstruction at leaf
// centers keeps the per-dimension error bound. Points outside the
// canonical cube (none in practice — it spans ±170 m at q = 2 cm) ride in
// a plain DBGC residual section.

// worldSpan is the canonical cube's minimum extent in meters per axis.
const worldSpan = 340.0

// temporalRef is the prediction dictionary: the previous decoded frame's
// occupancy sets, one per octree level of the canonical grid.
type temporalRef struct {
	q      float64
	depth  int
	side   float64
	half   float64
	levels []map[uint64]byte // level d: parent cell key -> child occupancy mask
}

const tAxisBits = 21

func packTemporal(x, y, z uint64) uint64 {
	return x<<(2*tAxisBits) | y<<tAxisBits | z
}

// canonicalGrid returns the depth and cube side for error bound q.
func canonicalGrid(q float64) (depth int, side float64) {
	depth = int(math.Ceil(math.Log2(worldSpan / (2 * q))))
	if depth < 1 {
		depth = 1
	}
	if depth > 3*tAxisBits/3 { // one axis must fit in 21 bits
		depth = tAxisBits
	}
	return depth, 2 * q * math.Pow(2, float64(depth))
}

// newTemporalRef builds the per-level occupancy dictionary from a decoded
// cloud.
func newTemporalRef(pc geom.PointCloud, q float64) *temporalRef {
	depth, side := canonicalGrid(q)
	ref := &temporalRef{q: q, depth: depth, side: side, half: side / 2}
	ref.levels = make([]map[uint64]byte, depth)
	for d := range ref.levels {
		ref.levels[d] = make(map[uint64]byte)
	}
	for _, p := range pc {
		cx, cy, cz, ok := ref.leafCell(p)
		if !ok {
			continue
		}
		// Walk up the tree: at level d the node key is the cell index
		// shifted down, and the child octant is the next bit triple.
		for d := depth - 1; d >= 0; d-- {
			shift := uint(depth - 1 - d)
			px, py, pz := cx>>(shift+1), cy>>(shift+1), cz>>(shift+1)
			oct := byte(cx>>shift&1) | byte(cy>>shift&1)<<1 | byte(cz>>shift&1)<<2
			key := packTemporal(px, py, pz)
			ref.levels[d][key] |= 1 << oct
		}
	}
	return ref
}

// leafCell quantizes p onto the canonical leaf grid.
func (r *temporalRef) leafCell(p geom.Point) (x, y, z uint64, ok bool) {
	cells := float64(uint64(1) << uint(r.depth))
	fx := (p.X + r.half) / r.side * cells
	fy := (p.Y + r.half) / r.side * cells
	fz := (p.Z + r.half) / r.side * cells
	if fx < 0 || fy < 0 || fz < 0 || fx >= cells || fy >= cells || fz >= cells {
		return 0, 0, 0, false
	}
	return uint64(fx), uint64(fy), uint64(fz), true
}

// leafCenter returns the center of a canonical leaf cell.
func (r *temporalRef) leafCenter(x, y, z uint64) geom.Point {
	cells := float64(uint64(1) << uint(r.depth))
	step := r.side / cells
	return geom.Point{
		X: -r.half + (float64(x)+0.5)*step,
		Y: -r.half + (float64(y)+0.5)*step,
		Z: -r.half + (float64(z)+0.5)*step,
	}
}

// prevMask returns the previous frame's child-occupancy mask for the node
// at level d with the given parent-cell key (0 when the node was empty).
func (r *temporalRef) prevMask(d int, key uint64) byte {
	return r.levels[d][key]
}

// pCoder holds the context models of the predicted octree: one occupancy
// model per previous-frame occupancy mask.
type pCoder struct {
	occ [256]*arith.Model
}

func (c *pCoder) model(prev byte) *arith.Model {
	if c.occ[prev] == nil {
		c.occ[prev] = arith.NewModel(256)
	}
	return c.occ[prev]
}

// encodeP codes a frame against the reference. It returns the payload, the
// decode-order mapping to original indices, and the count of in-grid
// points (the rest travel in the DBGC residual).
func encodeP(pc geom.PointCloud, ref *temporalRef, opts dbgc.Options) (payload []byte, mapping []int32, inGrid int, err error) {
	type nodeT struct {
		x, y, z uint64 // node cell at current level
		idx     []int32
	}
	cells := make([][3]uint64, 0, len(pc))
	var rootIdx []int32
	var fresh geom.PointCloud
	var freshOrig []int32
	cellOf := make([]int32, len(pc)) // index into cells, -1 for fresh
	for pi, p := range pc {
		x, y, z, ok := ref.leafCell(p)
		if !ok {
			fresh = append(fresh, p)
			freshOrig = append(freshOrig, int32(pi))
			cellOf[pi] = -1
			continue
		}
		cellOf[pi] = int32(len(cells))
		cells = append(cells, [3]uint64{x, y, z})
		rootIdx = append(rootIdx, int32(pi))
		inGrid++
	}

	e := arith.NewEncoder()
	coder := &pCoder{}
	var counts []uint64
	level := []nodeT{{idx: rootIdx}}
	for d := 0; d < ref.depth; d++ {
		shift := uint(ref.depth - 1 - d)
		next := make([]nodeT, 0, len(level)*2)
		for _, nd := range level {
			var buckets [8][]int32
			for _, pi := range nd.idx {
				c := cells[cellOf[pi]]
				oct := int(c[0]>>shift&1) | int(c[1]>>shift&1)<<1 | int(c[2]>>shift&1)<<2
				buckets[oct] = append(buckets[oct], pi)
			}
			var code byte
			for o := 0; o < 8; o++ {
				if len(buckets[o]) > 0 {
					code |= 1 << uint(o)
				}
			}
			prev := ref.prevMask(d, packTemporal(nd.x, nd.y, nd.z))
			e.Encode(coder.model(prev), int(code))
			for o := 0; o < 8; o++ {
				if len(buckets[o]) == 0 {
					continue
				}
				next = append(next, nodeT{
					x:   nd.x<<1 | uint64(o&1),
					y:   nd.y<<1 | uint64(o>>1&1),
					z:   nd.z<<1 | uint64(o>>2&1),
					idx: buckets[o],
				})
			}
		}
		level = next
	}
	for _, leaf := range level {
		counts = append(counts, uint64(len(leaf.idx)))
		mapping = append(mapping, leaf.idx...)
	}
	occStream := e.Finish()
	countStream := arith.CompressUints(counts)

	freshData, freshStats, err := dbgc.Compress(fresh, opts)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("stream: P-frame residual: %w", err)
	}
	for _, j := range freshStats.Mapping {
		mapping = append(mapping, freshOrig[j])
	}

	payload = varint.AppendUint(payload, uint64(inGrid))
	payload = varint.AppendUint(payload, uint64(len(counts)))
	payload = appendBytes(payload, occStream)
	payload = appendBytes(payload, countStream)
	payload = appendBytes(payload, freshData)
	return payload, mapping, inGrid, nil
}

// decodeP reconstructs a P-frame given the reference, bounding its work by
// limits (zero = unlimited). Panics on hostile bytes are recovered into
// ErrCorrupt-wrapped errors.
func decodeP(payload []byte, ref *temporalRef, limits dbgc.DecodeLimits) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	b := newStreamBudget(limits)
	nPts, used, err := varint.Uint(payload)
	if err != nil {
		return nil, fmt.Errorf("stream: P point count: %w", err)
	}
	payload = payload[used:]
	nLeaves, used, err := varint.Uint(payload)
	if err != nil {
		return nil, fmt.Errorf("stream: P leaf count: %w", err)
	}
	payload = payload[used:]
	if nLeaves > nPts || nPts > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: P header (%d leaves, %d points)", ErrCorrupt, nLeaves, nPts)
	}
	occStream, payload, err := readBytes(payload, "occupancy")
	if err != nil {
		return nil, err
	}
	countStream, payload, err := readBytes(payload, "counts")
	if err != nil {
		return nil, err
	}
	freshData, _, err := readBytes(payload, "residual")
	if err != nil {
		return nil, err
	}
	if err := b.Points(int64(nPts)); err != nil {
		return nil, err
	}
	counts, err := arith.DecompressUintsLimited(countStream, int(nLeaves), b)
	if err != nil {
		return nil, fmt.Errorf("stream: P counts: %w", err)
	}

	type nodeT struct{ x, y, z uint64 }
	d := arith.NewDecoder(occStream)
	coder := &pCoder{}
	var level []nodeT
	if nPts > 0 {
		level = []nodeT{{}}
	}
	for lv := 0; lv < ref.depth && len(level) > 0; lv++ {
		if err := b.Nodes(int64(len(level))); err != nil {
			return nil, err
		}
		next := make([]nodeT, 0, len(level)*2)
		for _, nd := range level {
			prev := ref.prevMask(lv, packTemporal(nd.x, nd.y, nd.z))
			code, err := d.Decode(coder.model(prev))
			if err != nil {
				return nil, fmt.Errorf("stream: P occupancy: %w", err)
			}
			if code == 0 {
				return nil, fmt.Errorf("%w: empty P occupancy code", ErrCorrupt)
			}
			for o := 0; o < 8; o++ {
				if code&(1<<uint(o)) == 0 {
					continue
				}
				next = append(next, nodeT{
					x: nd.x<<1 | uint64(o&1),
					y: nd.y<<1 | uint64(o>>1&1),
					z: nd.z<<1 | uint64(o>>2&1),
				})
			}
			if uint64(len(next)) > nPts {
				return nil, fmt.Errorf("%w: P tree wider than point count", ErrCorrupt)
			}
		}
		level = next
	}
	if uint64(len(level)) != nLeaves {
		return nil, fmt.Errorf("%w: decoded %d leaves, header says %d", ErrCorrupt, len(level), nLeaves)
	}
	out := make(geom.PointCloud, 0, declimits.CapPrealloc(nPts))
	for i, leaf := range level {
		cnt := counts[i]
		if cnt == 0 || uint64(len(out))+cnt > nPts {
			return nil, fmt.Errorf("%w: P leaf counts disagree with total", ErrCorrupt)
		}
		c := ref.leafCenter(leaf.x, leaf.y, leaf.z)
		for n := uint64(0); n < cnt; n++ {
			out = append(out, c)
		}
	}
	if uint64(len(out)) != nPts {
		return nil, fmt.Errorf("%w: decoded %d points, header says %d", ErrCorrupt, len(out), nPts)
	}
	fresh, err := dbgc.DecompressWith(freshData, dbgc.DecompressOptions{Limits: limits})
	if err != nil {
		return nil, fmt.Errorf("stream: P residual: %w", err)
	}
	return append(out, fresh...), nil
}

func appendBytes(dst, b []byte) []byte {
	dst = varint.AppendUint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBytes(data []byte, name string) (payload, rest []byte, err error) {
	n, used, err := varint.Uint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: %s length: %w", name, err)
	}
	data = data[used:]
	if n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %s truncated", ErrCorrupt, name)
	}
	return data[:n], data[n:], nil
}
