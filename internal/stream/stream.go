// Package stream implements a container format for sequences of DBGC-
// compressed frames. The paper compresses single frames and notes that
// "single-frame compression can be a building block in compressing point
// cloud streams" (§1); this package is that building block's composition:
// a self-describing stream of independently compressed frames with optional
// per-frame intensity channels, CRC protection, and sequential read-back.
//
// Frames are either I-frames (self-contained DBGC payloads) or, when
// temporal mode is enabled, P-frames predicted from the previous decoded
// frame (see temporal.go).
//
// Layout:
//
//	magic "DBGS" | version byte | q (float64) | fps (float64)
//	frame*: marker 0x01 | seq uvarint | kind byte (0=I, 1=P)
//	        | geomLen uvarint | geom | attrLen uvarint | attr
//	        | crc32c (seq..attr) fixed32
//	end:    marker 0x00
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"dbgc"
	"dbgc/internal/attr"
	"dbgc/internal/declimits"
	"dbgc/internal/framepipe"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("stream: corrupt container")

// errChecksum marks a frame whose body was fully read but whose trailing
// CRC failed. The stream stays positioned at the next frame, so partial
// mode can keep reading; all other read errors abort iteration.
var errChecksum = errors.New("checksum mismatch")

var magic = []byte("DBGS")

const version = 1

const (
	markerFrame = 0x01
	markerEnd   = 0x00
)

// Frame kinds.
const (
	frameI = 0 // self-contained DBGC payload
	frameP = 1 // predicted from the previous decoded frame
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxSection bounds one frame section against corrupt headers.
const maxSection = 256 << 20

// Writer compresses frames into a container.
type Writer struct {
	w        *bufio.Writer
	opts     dbgc.Options
	seq      uint64
	done     bool
	interval int // 0 = all I-frames
	prev     geom.PointCloud

	// Pipelined mode (EnablePipeline). pipelined is set even when the
	// worker pool is bypassed (workers <= 1) so the temporal mutual
	// exclusion still holds.
	pipelined bool
	pipe      *framepipe.Pool[pipeJob, pipeFrame]
	err       error // first compression or write error, sticky

	// OnStats, when set, receives the definitive FrameStats of each frame
	// as it completes. In pipelined mode it is called from later WriteFrame
	// and Close calls on the caller's goroutine; in serial mode WriteFrame
	// calls it before returning.
	OnStats func(FrameStats)
}

// pipeJob is one frame submitted to the compression pool.
type pipeJob struct {
	seq       uint64
	pc        geom.PointCloud
	intensity []float32
	opts      dbgc.Options
}

// pipeFrame is a fully framed body (seq..crc) ready to write.
type pipeFrame struct {
	buf   []byte
	stats FrameStats
}

// EnablePipeline compresses frames on workers concurrent goroutines while
// writing them in submission order. It is mutually exclusive with temporal
// mode: P-frames are predicted from the previous decoded frame, so a
// temporal stream has no independent frames to overlap.
//
// In pipelined mode WriteFrame returns as soon as the frame is queued; the
// returned FrameStats carries only Seq and Points, and compression errors
// surface on a later WriteFrame or on Close. Set OnStats to observe the
// definitive per-frame statistics. The caller must not mutate the cloud or
// intensity slice after passing them in.
//
// With workers <= 1 no worker pool is started: frames compress serially on
// the caller's goroutine exactly as without EnablePipeline (WriteFrame
// returns full FrameStats), while the incompatibility with temporal mode
// still applies.
func (w *Writer) EnablePipeline(workers int) error {
	if w.interval >= 2 {
		return errors.New("stream: pipeline is incompatible with temporal mode")
	}
	if w.pipelined {
		return errors.New("stream: pipeline already enabled")
	}
	w.pipelined = true
	if workers <= 1 {
		return nil // serial path already does what one worker would
	}
	w.pipe = framepipe.New(workers, 2*workers, func(j pipeJob) (pipeFrame, error) {
		return encodeFrameBody(j)
	})
	return nil
}

// encodeFrameBody compresses one I-frame and assembles the container body
// (seq | kind | sections | crc). It is safe to call concurrently.
func encodeFrameBody(j pipeJob) (pipeFrame, error) {
	data, stats, err := dbgc.Compress(j.pc, j.opts)
	if err != nil {
		return pipeFrame{}, fmt.Errorf("stream: frame %d: %w", j.seq, err)
	}
	var attrData []byte
	if j.intensity != nil {
		attrData, err = attr.EncodeIntensity(j.intensity, stats.Mapping, 8)
		if err != nil {
			return pipeFrame{}, fmt.Errorf("stream: frame %d intensity: %w", j.seq, err)
		}
	}
	var buf []byte
	buf = varint.AppendUint(buf, j.seq)
	buf = append(buf, frameI)
	buf = varint.AppendUint(buf, uint64(len(data)))
	buf = append(buf, data...)
	buf = varint.AppendUint(buf, uint64(len(attrData)))
	buf = append(buf, attrData...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return pipeFrame{buf: buf, stats: FrameStats{
		Seq:            j.seq,
		Points:         len(j.pc),
		GeometryBytes:  len(data),
		IntensityBytes: len(attrData),
		Ratio:          float64(len(j.pc)*12) / float64(len(data)),
	}}, nil
}

// EnableTemporal switches the writer to temporal mode: one I-frame every
// interval frames, P-frames predicted from the previous decoded frame in
// between. interval must be at least 2. Suitable for static or slowly
// changing scenes (tripod captures, §1 of the paper); for fast-moving
// sensors P-frames degrade to mostly-residual frames and cost about as
// much as I-frames.
func (w *Writer) EnableTemporal(interval int) error {
	if interval < 2 {
		return fmt.Errorf("stream: temporal interval must be >= 2, got %d", interval)
	}
	if w.pipelined {
		return errors.New("stream: temporal mode is incompatible with pipeline")
	}
	w.interval = interval
	return nil
}

// NewWriter starts a container on w, compressing every frame with opts.
// fps is recorded for bandwidth accounting on the read side (0 if
// unknown).
func NewWriter(w io.Writer, opts dbgc.Options, fps float64) (*Writer, error) {
	if opts.Q <= 0 {
		return nil, fmt.Errorf("stream: error bound must be positive, got %v", opts.Q)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], math.Float64bits(opts.Q))
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(fps))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, opts: opts}, nil
}

// FrameStats summarizes one written frame.
type FrameStats struct {
	Seq            uint64
	Points         int
	GeometryBytes  int
	IntensityBytes int
	Ratio          float64
	// Predicted marks a P-frame; StaticPoints counts its points coded
	// via the re-occupancy dictionary.
	Predicted    bool
	StaticPoints int
}

// WriteFrame compresses and appends one frame. intensity may be nil; when
// present it must hold one value per point and is stored as an 8-bit
// channel aligned with the decoded geometry.
func (w *Writer) WriteFrame(pc geom.PointCloud, intensity []float32) (FrameStats, error) {
	if w.done {
		return FrameStats{}, errors.New("stream: writer already closed")
	}
	if w.pipe != nil {
		return w.writeFramePipelined(pc, intensity)
	}
	kind := byte(frameI)
	var data []byte
	var mapping []int32
	var static int
	if w.interval >= 2 && w.prev != nil && w.seq%uint64(w.interval) != 0 {
		kind = frameP
		ref := newTemporalRef(w.prev, w.opts.Q)
		var err error
		data, mapping, static, err = encodeP(pc, ref, w.opts)
		if err != nil {
			return FrameStats{}, err
		}
		w.prev, err = decodeP(data, ref, dbgc.DecodeLimits{})
		if err != nil {
			return FrameStats{}, fmt.Errorf("stream: verifying P-frame: %w", err)
		}
	} else {
		var stats *dbgc.Stats
		var err error
		data, stats, err = dbgc.Compress(pc, w.opts)
		if err != nil {
			return FrameStats{}, err
		}
		mapping = stats.Mapping
		if w.interval >= 2 {
			w.prev, err = dbgc.Decompress(data)
			if err != nil {
				return FrameStats{}, fmt.Errorf("stream: verifying I-frame: %w", err)
			}
		}
	}
	var attrData []byte
	if intensity != nil {
		var err error
		attrData, err = attr.EncodeIntensity(intensity, mapping, 8)
		if err != nil {
			return FrameStats{}, err
		}
	}
	if err := w.w.WriteByte(markerFrame); err != nil {
		return FrameStats{}, err
	}
	var buf []byte
	buf = varint.AppendUint(buf, w.seq)
	buf = append(buf, kind)
	buf = varint.AppendUint(buf, uint64(len(data)))
	buf = append(buf, data...)
	buf = varint.AppendUint(buf, uint64(len(attrData)))
	buf = append(buf, attrData...)
	sum := crc32.Checksum(buf, castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	if _, err := w.w.Write(buf); err != nil {
		return FrameStats{}, err
	}
	fs := FrameStats{
		Seq:            w.seq,
		Points:         len(pc),
		GeometryBytes:  len(data),
		IntensityBytes: len(attrData),
		Ratio:          float64(len(pc)*12) / float64(len(data)),
		Predicted:      kind == frameP,
		StaticPoints:   static,
	}
	w.seq++
	if w.OnStats != nil {
		w.OnStats(fs)
	}
	return fs, nil
}

// writeFramePipelined queues one frame on the compression pool, first
// draining completed frames (and, when the window is full, blocking on the
// oldest) so the pool can never deadlock on its own window.
func (w *Writer) writeFramePipelined(pc geom.PointCloud, intensity []float32) (FrameStats, error) {
	for {
		f, err, ok := w.pipe.TryNext()
		if !ok {
			break
		}
		w.finishPipelined(f, err)
	}
	for w.pipe.Full() {
		f, err, ok := w.pipe.Next()
		if !ok {
			break
		}
		w.finishPipelined(f, err)
	}
	if w.err != nil {
		return FrameStats{}, w.err
	}
	seq := w.seq
	w.seq++
	w.pipe.Submit(pipeJob{seq: seq, pc: pc, intensity: intensity, opts: w.opts})
	return FrameStats{Seq: seq, Points: len(pc)}, nil
}

// finishPipelined writes one completed frame body, keeping the first error.
func (w *Writer) finishPipelined(f pipeFrame, err error) {
	if w.err != nil {
		return
	}
	if err != nil {
		w.err = err
		return
	}
	if err := w.w.WriteByte(markerFrame); err != nil {
		w.err = err
		return
	}
	if _, err := w.w.Write(f.buf); err != nil {
		w.err = err
		return
	}
	if w.OnStats != nil {
		w.OnStats(f.stats)
	}
}

// Close drains any pipelined frames, terminates the container, and flushes
// buffered output.
func (w *Writer) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if w.pipe != nil {
		for {
			f, err, ok := w.pipe.Next()
			if !ok {
				break
			}
			w.finishPipelined(f, err)
		}
		w.pipe.Close()
		if w.err != nil {
			return w.err
		}
	}
	if err := w.w.WriteByte(markerEnd); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader iterates over a container.
type Reader struct {
	r    *bufio.Reader
	q    float64
	fps  float64
	end  bool
	prev geom.PointCloud

	// limits bounds each frame decode (SetLimits); zero = unlimited.
	limits dbgc.DecodeLimits
	// partial recovers intact sections of damaged frames (EnablePartial).
	partial bool

	// Pipelined mode (EnablePipeline). pipelined is set even when the
	// worker pool is bypassed (workers <= 1) so the partial-mode mutual
	// exclusion still holds.
	pipelined bool
	pipe      *framepipe.Pool[readJob, Frame]
	stashP    *readJob // raw P-frame body waiting for in-flight frames
	readErr   error    // deferred read error, surfaced after the drain
}

// readJob is one raw frame body handed to the decode pool.
type readJob struct {
	seq    uint64
	raw    body
	limits dbgc.DecodeLimits
}

// SetLimits bounds the resources every subsequent frame decode may spend;
// the zero value removes the limits. The caps apply per frame, not across
// the stream.
func (r *Reader) SetLimits(l dbgc.DecodeLimits) { r.limits = l }

// EnablePartial switches the reader to partial-recovery mode: a damaged
// frame no longer aborts iteration. ReadFrame returns the points of the
// frame's intact sections and describes the damage in Frame.Damage; a
// damaged frame also breaks the P-frame prediction chain until the next
// clean I-frame. Incompatible with EnablePipeline.
func (r *Reader) EnablePartial() error {
	if r.pipelined {
		return errors.New("stream: partial mode is incompatible with pipeline")
	}
	r.partial = true
	return nil
}

// budget materializes the reader's limits for one frame decode; nil when
// unlimited.
func (r *Reader) budget() *declimits.Budget {
	return newStreamBudget(r.limits)
}

func newStreamBudget(l dbgc.DecodeLimits) *declimits.Budget {
	if l.MaxPoints == 0 && l.MaxNodes == 0 && l.MaxSectionBytes == 0 && l.MemBudget == 0 && l.Ctx == nil {
		return nil
	}
	return declimits.New(l)
}

// EnablePipeline decodes consecutive I-frames on workers concurrent
// goroutines while returning frames in stream order. Read-ahead stops at a
// P-frame — it is predicted from the immediately preceding decoded frame —
// and resumes after it, so all-I streams (the only kind the pipelined
// Writer produces) parallelize freely while temporal streams degrade to
// serial decoding without losing correctness.
// With workers <= 1 no worker pool is started: frames decode serially on
// the caller's goroutine exactly as without EnablePipeline, while the
// incompatibility with partial mode still applies.
func (r *Reader) EnablePipeline(workers int) error {
	if r.pipelined {
		return errors.New("stream: pipeline already enabled")
	}
	if r.partial {
		return errors.New("stream: pipeline is incompatible with partial mode")
	}
	r.pipelined = true
	if workers <= 1 {
		return nil // serial path already does what one worker would
	}
	r.pipe = framepipe.New(workers, 2*workers, decodeIFrame)
	return nil
}

// decodeIFrame decodes one self-contained frame body. It is safe to call
// concurrently.
func decodeIFrame(j readJob) (Frame, error) {
	cloud, err := dbgc.DecompressWith(j.raw.geom, dbgc.DecompressOptions{Limits: j.limits})
	if err != nil {
		return Frame{}, fmt.Errorf("stream: frame %d geometry: %w", j.seq, err)
	}
	return frameFromParts(j.seq, cloud, j.raw.attr)
}

// frameFromParts attaches the optional intensity channel to a decoded
// cloud.
func frameFromParts(seq uint64, cloud geom.PointCloud, attrData []byte) (Frame, error) {
	var intensity []float32
	if len(attrData) > 0 {
		var err error
		intensity, err = attr.DecodeIntensity(attrData)
		if err != nil {
			return Frame{}, fmt.Errorf("stream: frame %d intensity: %w", seq, err)
		}
		if len(intensity) != len(cloud) {
			return Frame{}, fmt.Errorf("%w: frame %d has %d intensities for %d points",
				ErrCorrupt, seq, len(intensity), len(cloud))
		}
	}
	return Frame{Seq: seq, Cloud: cloud, Intensity: intensity}, nil
}

// NewReader validates the container header and prepares iteration.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+1+16)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("stream: header: %w", err)
	}
	if string(head[:len(magic)]) != string(magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("stream: unsupported version %d", head[len(magic)])
	}
	q := math.Float64frombits(binary.LittleEndian.Uint64(head[len(magic)+1:]))
	fps := math.Float64frombits(binary.LittleEndian.Uint64(head[len(magic)+9:]))
	if !(q > 0) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("%w: invalid error bound %v", ErrCorrupt, q)
	}
	return &Reader{r: br, q: q, fps: fps}, nil
}

// Q returns the stream's error bound.
func (r *Reader) Q() float64 { return r.q }

// FPS returns the recorded frame rate (0 if unknown).
func (r *Reader) FPS() float64 { return r.fps }

// Frame is one decoded frame.
type Frame struct {
	Seq       uint64
	Cloud     geom.PointCloud
	Intensity []float32 // nil when the frame has no attribute channel
	// Damage is non-nil in partial mode when the frame was not fully
	// recovered; Cloud then holds only the points of its intact sections.
	Damage *FrameDamage
}

// FrameDamage reports what was lost when a damaged frame was partially
// recovered (Reader.EnablePartial).
type FrameDamage struct {
	// CRCMismatch reports that the container-level frame checksum failed;
	// the per-section reports below attribute the damage.
	CRCMismatch bool
	// Sections holds the per-section reports of DecompressPartial when the
	// frame's DBGC envelope was readable and at least one section was
	// damaged (I-frames only).
	Sections []dbgc.SectionReport
	// Err is set when nothing was recoverable: an unparseable DBGC
	// envelope, a failed P-frame decode, or a P-frame whose prediction
	// reference was lost to earlier damage.
	Err error
	// AttrErr is a non-nil intensity-decode failure; the frame's Intensity
	// is dropped.
	AttrErr error
}

// ReadFrame returns the next frame, or io.EOF after the end marker.
func (r *Reader) ReadFrame() (Frame, error) {
	if r.pipe != nil {
		return r.readFramePipelined()
	}
	if r.end {
		return Frame{}, io.EOF
	}
	marker, err := r.r.ReadByte()
	if err != nil {
		return Frame{}, fmt.Errorf("stream: marker: %w", err)
	}
	switch marker {
	case markerEnd:
		r.end = true
		return Frame{}, io.EOF
	case markerFrame:
	default:
		return Frame{}, fmt.Errorf("%w: unknown marker %#x", ErrCorrupt, marker)
	}
	seq, kind, raw, err := r.readBody()
	if err != nil {
		if !r.partial || !errors.Is(err, errChecksum) {
			return Frame{}, err
		}
		return r.readFramePartial(seq, kind, raw, true)
	}
	if r.partial {
		return r.readFramePartial(seq, kind, raw, false)
	}
	var cloud geom.PointCloud
	switch kind {
	case frameI:
		cloud, err = dbgc.DecompressWith(raw.geom, dbgc.DecompressOptions{Limits: r.limits})
	case frameP:
		if r.prev == nil {
			return Frame{}, fmt.Errorf("%w: P-frame %d without a preceding frame", ErrCorrupt, seq)
		}
		cloud, err = decodeP(raw.geom, newTemporalRef(r.prev, r.q), r.limits)
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kind)
	}
	if err != nil {
		return Frame{}, fmt.Errorf("stream: frame %d geometry: %w", seq, err)
	}
	r.prev = cloud
	return frameFromParts(seq, cloud, raw.attr)
}

// readFramePartial decodes what it can of one frame body in partial mode.
// It returns an error only for conditions unrelated to this frame's
// damage; frame-level damage is described in Frame.Damage instead.
func (r *Reader) readFramePartial(seq uint64, kind byte, raw body, crcBad bool) (Frame, error) {
	dmg := &FrameDamage{CRCMismatch: crcBad}
	var cloud geom.PointCloud
	switch kind {
	case frameI:
		pc, reports, err := dbgc.DecompressPartial(raw.geom, dbgc.DecompressOptions{Limits: r.limits})
		if err != nil {
			dmg.Err = fmt.Errorf("stream: frame %d geometry: %w", seq, err)
			break
		}
		cloud = pc
		for _, rep := range reports {
			if rep.Err != nil {
				dmg.Sections = reports
				break
			}
		}
	case frameP:
		if r.prev == nil {
			dmg.Err = fmt.Errorf("%w: P-frame %d without an intact reference", ErrCorrupt, seq)
			break
		}
		pc, err := decodeP(raw.geom, newTemporalRef(r.prev, r.q), r.limits)
		if err != nil {
			dmg.Err = fmt.Errorf("stream: frame %d geometry: %w", seq, err)
			break
		}
		cloud = pc
	default:
		dmg.Err = fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kind)
	}
	f := Frame{Seq: seq, Cloud: cloud}
	if dmg.Err == nil {
		if ff, err := frameFromParts(seq, cloud, raw.attr); err != nil {
			dmg.AttrErr = err
		} else {
			f.Intensity = ff.Intensity
		}
	}
	if crcBad || dmg.Err != nil || dmg.Sections != nil || dmg.AttrErr != nil {
		f.Damage = dmg
		// A partially recovered frame cannot serve as a P-frame prediction
		// reference; the chain restarts at the next clean I-frame.
		r.prev = nil
	} else {
		r.prev = cloud
	}
	return f, nil
}

// readFramePipelined tops the decode window up with consecutive I-frames,
// then returns the oldest decoded frame. A P-frame pauses read-ahead (its
// prediction reference is the frame right before it), drains the window,
// decodes serially, and read-ahead resumes.
func (r *Reader) readFramePipelined() (Frame, error) {
	for r.stashP == nil && !r.end && r.readErr == nil && !r.pipe.Full() {
		marker, err := r.r.ReadByte()
		if err != nil {
			r.readErr = fmt.Errorf("stream: marker: %w", err)
			break
		}
		if marker == markerEnd {
			r.end = true
			break
		}
		if marker != markerFrame {
			r.readErr = fmt.Errorf("%w: unknown marker %#x", ErrCorrupt, marker)
			break
		}
		seq, kind, raw, err := r.readBody()
		if err != nil {
			r.readErr = err
			break
		}
		switch kind {
		case frameI:
			r.pipe.Submit(readJob{seq: seq, raw: raw, limits: r.limits})
		case frameP:
			r.stashP = &readJob{seq: seq, raw: raw}
		default:
			r.readErr = fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kind)
		}
	}
	if f, err, ok := r.pipe.Next(); ok {
		if err != nil {
			return Frame{}, err
		}
		r.prev = f.Cloud
		return f, nil
	}
	// Nothing in flight: a stashed P-frame, a deferred read error, or the
	// end of the stream — in stream order, so the stash comes first.
	if s := r.stashP; s != nil {
		r.stashP = nil
		if r.prev == nil {
			return Frame{}, fmt.Errorf("%w: P-frame %d without a preceding frame", ErrCorrupt, s.seq)
		}
		cloud, err := decodeP(s.raw.geom, newTemporalRef(r.prev, r.q), r.limits)
		if err != nil {
			return Frame{}, fmt.Errorf("stream: frame %d geometry: %w", s.seq, err)
		}
		r.prev = cloud
		return frameFromParts(s.seq, cloud, s.raw.attr)
	}
	if r.readErr != nil {
		return Frame{}, r.readErr
	}
	return Frame{}, io.EOF
}

type body struct {
	geom, attr []byte
}

func (r *Reader) readBody() (uint64, byte, body, error) {
	// Read the varint-prefixed sections while mirroring the bytes for
	// the trailing CRC.
	var mirrored []byte
	readUvarint := func() (uint64, error) {
		var v uint64
		var shift uint
		for {
			b, err := r.r.ReadByte()
			if err != nil {
				return 0, err
			}
			mirrored = append(mirrored, b)
			if shift >= 64 {
				return 0, ErrCorrupt
			}
			v |= uint64(b&0x7f) << shift
			if b < 0x80 {
				return v, nil
			}
			shift += 7
		}
	}
	readSection := func(name string) ([]byte, error) {
		n, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("stream: %s length: %w", name, err)
		}
		if n > maxSection {
			return nil, fmt.Errorf("%w: %s section of %d bytes", ErrCorrupt, name, n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.r, buf); err != nil {
			return nil, fmt.Errorf("stream: %s payload: %w", name, err)
		}
		mirrored = append(mirrored, buf...)
		return buf, nil
	}

	seq, err := readUvarint()
	if err != nil {
		return 0, 0, body{}, fmt.Errorf("stream: seq: %w", err)
	}
	kind, err := r.r.ReadByte()
	if err != nil {
		return 0, 0, body{}, fmt.Errorf("stream: frame kind: %w", err)
	}
	mirrored = append(mirrored, kind)
	var b body
	if b.geom, err = readSection("geometry"); err != nil {
		return 0, 0, body{}, err
	}
	if b.attr, err = readSection("attribute"); err != nil {
		return 0, 0, body{}, err
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.r, crcBuf[:]); err != nil {
		return 0, 0, body{}, fmt.Errorf("stream: crc: %w", err)
	}
	if crc32.Checksum(mirrored, castagnoli) != binary.LittleEndian.Uint32(crcBuf[:]) {
		// Return the parsed body alongside the error: the stream is
		// positioned at the next frame, so partial mode can salvage the
		// intact sections and keep iterating.
		return seq, kind, b, fmt.Errorf("%w: frame %d %w", ErrCorrupt, seq, errChecksum)
	}
	return seq, kind, b, nil
}
