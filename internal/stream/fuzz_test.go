package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dbgc"
	"dbgc/internal/geom"
)

// FuzzReader hammers the container reader with mutated streams; it must
// never panic and must terminate.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		f.Fatal(err)
	}
	pc := geom.PointCloud{{X: 4, Y: 1, Z: -1}, {X: 4.1, Y: 1.05, Z: -1}}
	if _, err := w.WriteFrame(pc, []float32{0.5, 0.6}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:10])
	f.Add([]byte("DBGS\x01"))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := r.ReadFrame(); err != nil {
				if !errors.Is(err, io.EOF) {
					return
				}
				return
			}
		}
	})
}
