package stream

import (
	"bytes"
	"io"
	"testing"

	"dbgc"
)

// TestStreamShardedFrames: a stream packed with sharded entropy options
// carries v3 frames that read back to the same clouds as a legacy stream,
// with or without the reader pipeline.
func TestStreamShardedFrames(t *testing.T) {
	frames := testFrames(t, 3)
	pack := func(opts dbgc.Options) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, opts, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, pc := range frames {
			if _, err := w.WriteFrame(pc, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	legacy := pack(dbgc.DefaultOptions(0.02))
	opts := dbgc.DefaultOptions(0.02)
	opts.Shards = 4
	sharded := pack(opts)

	read := func(data []byte, workers int) []dbgc.PointCloud {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if workers > 1 {
			if err := r.EnablePipeline(workers); err != nil {
				t.Fatal(err)
			}
		}
		var out []dbgc.PointCloud
		for {
			fr, err := r.ReadFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fr.Cloud)
		}
		return out
	}
	want := read(legacy, 1)
	for _, workers := range []int{1, 2} {
		got := read(sharded, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: read %d frames, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d frame %d: %d points, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d frame %d point %d differs", workers, i, j)
				}
			}
		}
	}
}
