package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"dbgc"
	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

// staticFrames captures the same static scene repeatedly: per-ray noise
// and dropout differ, geometry does not — the tripod-survey case the
// paper's introduction motivates.
func staticFrames(t *testing.T, n int) []geom.PointCloud {
	t.Helper()
	scene, err := lidar.NewScene(lidar.Campus, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lidar.HDL64E()
	cfg.AzimuthSteps = 400
	out := make([]geom.PointCloud, n)
	for i := range out {
		out[i] = cfg.Simulate(scene, int64(i+1))
	}
	return out
}

// verifyAgainstOriginal checks every decoded point sits within the bound
// of some original point (nearest-neighbor check on a subsample; the
// stream container does not carry the index mapping).
func verifyAgainstOriginal(t *testing.T, orig, dec geom.PointCloud, q float64) {
	t.Helper()
	if len(dec) != len(orig) {
		t.Fatalf("point count changed: %d in, %d out", len(orig), len(dec))
	}
	bound := math.Sqrt(3) * q * 1.0001
	for j := 0; j < len(dec); j += 499 {
		best := math.Inf(1)
		for _, p := range orig {
			if d := dec[j].Dist(p); d < best {
				best = d
			}
		}
		if best > bound {
			t.Fatalf("decoded point %d is %v from any original (bound %v)", j, best, bound)
		}
	}
}

func TestTemporalRoundTrip(t *testing.T) {
	frames := staticFrames(t, 4)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(4); err != nil {
		t.Fatal(err)
	}
	var iBytes, pBytes, pFrames int
	for i, pc := range frames {
		fs, err := w.WriteFrame(pc, nil)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i == 0 && fs.Predicted {
			t.Fatal("first frame must be an I-frame")
		}
		if i > 0 && !fs.Predicted {
			t.Fatalf("frame %d should be predicted", i)
		}
		if fs.Predicted {
			pBytes += fs.GeometryBytes
			pFrames++
			if fs.StaticPoints < fs.Points/2 {
				t.Errorf("frame %d: only %d/%d points static on a static scene",
					i, fs.StaticPoints, fs.Points)
			}
		} else {
			iBytes += fs.GeometryBytes
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if pBytes/pFrames >= iBytes {
		t.Errorf("P-frames (%d avg bytes) should be smaller than the I-frame (%d)", pBytes/pFrames, iBytes)
	}
	t.Logf("I-frame %d bytes; P-frames avg %d bytes (%.1fx smaller)",
		iBytes, pBytes/pFrames, float64(iBytes)/float64(pBytes/pFrames))

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		fr, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			if i != len(frames) {
				t.Fatalf("read %d frames, wrote %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		verifyAgainstOriginal(t, frames[i], fr.Cloud, 0.02)
	}
}

func TestTemporalWithIntensity(t *testing.T) {
	frames := staticFrames(t, 3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(3); err != nil {
		t.Fatal(err)
	}
	for i, pc := range frames {
		intens := make([]float32, len(pc))
		for j := range intens {
			intens[j] = float32(j%256) / 255
		}
		if _, err := w.WriteFrame(pc, intens); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		fr, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(fr.Intensity) != len(fr.Cloud) {
			t.Fatalf("frame %d: %d intensities for %d points", i, len(fr.Intensity), len(fr.Cloud))
		}
	}
}

func TestTemporalKeyframeInterval(t *testing.T) {
	frames := staticFrames(t, 5)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(2); err != nil {
		t.Fatal(err)
	}
	wantPredicted := []bool{false, true, false, true, false}
	for i, pc := range frames {
		fs, err := w.WriteFrame(pc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Predicted != wantPredicted[i] {
			t.Fatalf("frame %d: predicted=%v, want %v", i, fs.Predicted, wantPredicted[i])
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("read %d frames, want 5", n)
	}
}

func TestTemporalInvalidInterval(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(1); err == nil {
		t.Fatal("interval 1 accepted")
	}
}

// TestTemporalDrivingSequence: a moving sensor (the KITTI case). P-frames
// must stay correct; the temporal gain shrinks but correctness and the
// error bound hold.
func TestTemporalDrivingSequence(t *testing.T) {
	scene, err := lidar.NewScene(lidar.Road, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lidar.HDL64E()
	cfg.AzimuthSteps = 400
	var frames []geom.PointCloud
	for i := 0; i < 4; i++ {
		// 2 m/frame forward at 10 fps = 72 km/h.
		pose := lidar.Pose{X: float64(i) * 2, Yaw: 0.02 * float64(i)}
		frames = append(frames, cfg.SimulateAt(scene, int64(i+1), pose))
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(4); err != nil {
		t.Fatal(err)
	}
	for i, pc := range frames {
		if _, err := w.WriteFrame(pc, nil); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		fr, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			if i != len(frames) {
				t.Fatalf("read %d frames, wrote %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		verifyAgainstOriginal(t, frames[i], fr.Cloud, 0.02)
	}
}
