package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dbgc"
)

// TestPipelinedWriterByteIdentical: the pipelined writer must produce
// exactly the container the serial writer produces — compression is
// deterministic and frames are written in submission order.
func TestPipelinedWriterByteIdentical(t *testing.T) {
	frames := testFrames(t, 4)
	opts := dbgc.DefaultOptions(0.02)

	var serial bytes.Buffer
	ws, err := NewWriter(&serial, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range frames {
		if _, err := ws.WriteFrame(pc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	var piped bytes.Buffer
	wp, err := NewWriter(&piped, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	var statSeqs []uint64
	wp.OnStats = func(fs FrameStats) {
		statSeqs = append(statSeqs, fs.Seq)
		if fs.GeometryBytes == 0 || fs.Ratio == 0 {
			t.Errorf("frame %d: OnStats delivered incomplete stats: %+v", fs.Seq, fs)
		}
	}
	if err := wp.EnablePipeline(3); err != nil {
		t.Fatal(err)
	}
	for i, pc := range frames {
		fs, err := wp.WriteFrame(pc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Seq != uint64(i) || fs.Points != len(pc) {
			t.Fatalf("queued frame stats wrong: %+v", fs)
		}
	}
	if err := wp.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(serial.Bytes(), piped.Bytes()) {
		t.Fatalf("pipelined container differs: %d vs %d bytes", piped.Len(), serial.Len())
	}
	if len(statSeqs) != len(frames) {
		t.Fatalf("OnStats fired %d times, want %d", len(statSeqs), len(frames))
	}
	for i, seq := range statSeqs {
		if seq != uint64(i) {
			t.Fatalf("OnStats order: position %d got seq %d", i, seq)
		}
	}
}

// TestPipelinedReaderMatchesSerial: a pipelined reader returns the same
// frames in the same order as a serial reader, including the intensity
// channel.
func TestPipelinedReaderMatchesSerial(t *testing.T) {
	frames := testFrames(t, 4)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	for fi, pc := range frames {
		intens := make([]float32, len(pc))
		for i := range intens {
			intens[i] = float32((i+fi)%256) / 255
		}
		if _, err := w.WriteFrame(pc, intens); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	readAll := func(r *Reader) []Frame {
		var out []Frame
		for {
			fr, err := r.ReadFrame()
			if errors.Is(err, io.EOF) {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fr)
		}
	}
	rs, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	serial := readAll(rs)
	rp, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.EnablePipeline(3); err != nil {
		t.Fatal(err)
	}
	piped := readAll(rp)

	if len(serial) != len(piped) {
		t.Fatalf("pipelined read %d frames, serial %d", len(piped), len(serial))
	}
	for i := range serial {
		if serial[i].Seq != piped[i].Seq {
			t.Fatalf("frame %d: seq %d vs %d", i, piped[i].Seq, serial[i].Seq)
		}
		if len(serial[i].Cloud) != len(piped[i].Cloud) {
			t.Fatalf("frame %d: %d points vs %d", i, len(piped[i].Cloud), len(serial[i].Cloud))
		}
		for j := range serial[i].Cloud {
			if serial[i].Cloud[j] != piped[i].Cloud[j] {
				t.Fatalf("frame %d point %d differs", i, j)
			}
		}
		for j := range serial[i].Intensity {
			if serial[i].Intensity[j] != piped[i].Intensity[j] {
				t.Fatalf("frame %d intensity %d differs", i, j)
			}
		}
	}
	// Reading past EOF stays EOF.
	if _, err := rp.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// TestPipelinedReaderTemporalStream: a pipelined reader on a temporal
// stream must still decode correctly — P-frames force a drain and decode
// serially against the preceding frame.
func TestPipelinedReaderTemporalStream(t *testing.T) {
	frames := testFrames(t, 5)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(2); err != nil {
		t.Fatal(err)
	}
	for _, pc := range frames {
		if _, err := w.WriteFrame(pc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rs, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.EnablePipeline(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		sf, serr := rs.ReadFrame()
		pf, perr := rp.ReadFrame()
		if errors.Is(serr, io.EOF) {
			if !errors.Is(perr, io.EOF) {
				t.Fatalf("serial EOF at %d but pipelined err %v", i, perr)
			}
			if i != len(frames) {
				t.Fatalf("read %d frames, wrote %d", i, len(frames))
			}
			return
		}
		if serr != nil || perr != nil {
			t.Fatalf("frame %d: serial err %v, pipelined err %v", i, serr, perr)
		}
		if sf.Seq != pf.Seq || len(sf.Cloud) != len(pf.Cloud) {
			t.Fatalf("frame %d mismatch: seq %d/%d, %d/%d points",
				i, sf.Seq, pf.Seq, len(sf.Cloud), len(pf.Cloud))
		}
		for j := range sf.Cloud {
			if sf.Cloud[j] != pf.Cloud[j] {
				t.Fatalf("frame %d point %d differs", i, j)
			}
		}
	}
}

// TestPipelineTemporalMutuallyExclusive: the two writer modes cannot
// combine in either order.
func TestPipelineTemporalMutuallyExclusive(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(2); err != nil {
		t.Fatal(err)
	}
	if err := w.EnablePipeline(2); err == nil {
		t.Fatal("EnablePipeline after EnableTemporal succeeded")
	}

	w2, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.EnablePipeline(2); err != nil {
		t.Fatal(err)
	}
	if err := w2.EnableTemporal(2); err == nil {
		t.Fatal("EnableTemporal after EnablePipeline succeeded")
	}
}

// TestPipelinedWriterErrorSurfaces: a compression failure inside the pool
// surfaces on a later WriteFrame or Close instead of being swallowed.
func TestPipelinedWriterErrorSurfaces(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnablePipeline(2); err != nil {
		t.Fatal(err)
	}
	// A NaN coordinate makes dbgc.Compress fail inside the worker.
	bad := dbgc.PointCloud{{X: 1, Y: 2, Z: 3}}
	bad[0].X = nan()
	if _, err := w.WriteFrame(bad, nil); err != nil {
		t.Fatalf("submission itself should succeed, got %v", err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("compression error never surfaced")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestPipelineSingleWorkerBypass: EnablePipeline(1) must not start a worker
// pool — WriteFrame behaves serially (full FrameStats, OnStats before
// return), output is byte-identical to a plain serial writer, and the
// temporal/partial mutual exclusions still hold.
func TestPipelineSingleWorkerBypass(t *testing.T) {
	frames := testFrames(t, 2)
	opts := dbgc.DefaultOptions(0.02)

	var serial bytes.Buffer
	ws, err := NewWriter(&serial, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range frames {
		if _, err := ws.WriteFrame(pc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnablePipeline(1); err != nil {
		t.Fatal(err)
	}
	if w.pipe != nil {
		t.Fatal("single-worker pipeline started a worker pool")
	}
	if err := w.EnablePipeline(1); err == nil {
		t.Fatal("second EnablePipeline succeeded")
	}
	if err := w.EnableTemporal(2); err == nil {
		t.Fatal("EnableTemporal after EnablePipeline(1) succeeded")
	}
	var statted int
	w.OnStats = func(fs FrameStats) { statted++ }
	for i, pc := range frames {
		fs, err := w.WriteFrame(pc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fs.GeometryBytes == 0 || fs.Ratio == 0 {
			t.Fatalf("frame %d: bypass should return full serial stats, got %+v", i, fs)
		}
		if statted != i+1 {
			t.Fatalf("frame %d: OnStats not called before WriteFrame returned", i)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), buf.Bytes()) {
		t.Fatalf("bypass container differs: %d vs %d bytes", buf.Len(), serial.Len())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnablePipeline(1); err != nil {
		t.Fatal(err)
	}
	if r.pipe != nil {
		t.Fatal("single-worker reader pipeline started a worker pool")
	}
	if err := r.EnablePartial(); err == nil {
		t.Fatal("EnablePartial after EnablePipeline(1) succeeded")
	}
	for i := range frames {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != uint64(i) || len(f.Cloud) != len(frames[i]) {
			t.Fatalf("frame %d: got seq %d with %d points", i, f.Seq, len(f.Cloud))
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}
