package stream

import (
	"bytes"
	"io"
	"testing"

	"dbgc"
	"dbgc/internal/geom"
)

// corruptFrame locates one frame's compressed geometry inside the stream
// container (compression is deterministic, so the standalone bit sequence
// matches the embedded one) and flips its last byte — the tail of the
// outlier section payload.
func corruptFrame(t *testing.T, container []byte, pc geom.PointCloud, opts dbgc.Options) []byte {
	t.Helper()
	blob, _, err := dbgc.Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	off := bytes.Index(container, blob)
	if off < 0 {
		t.Fatal("could not locate the frame's bit sequence in the container")
	}
	mut := append([]byte(nil), container...)
	mut[off+len(blob)-1] ^= 0xff
	return mut
}

// readAll drains a reader, failing the test on any error.
func readAll(t *testing.T, r *Reader) []Frame {
	t.Helper()
	var out []Frame
	for {
		fr, err := r.ReadFrame()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fr)
	}
}

// TestPartialRecoversOtherFrames corrupts one section of the middle frame
// of a three-frame stream. Default reading aborts at the damage; partial
// reading recovers the other frames byte-identically, salvages the middle
// frame's intact sections, and reports what was lost.
func TestPartialRecoversOtherFrames(t *testing.T) {
	frames := testFrames(t, 3)
	opts := dbgc.DefaultOptions(0.02)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range frames {
		if _, err := w.WriteFrame(pc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	clean := readAll(t, r)
	if len(clean) != 3 {
		t.Fatalf("clean read returned %d frames", len(clean))
	}

	mut := corruptFrame(t, buf.Bytes(), frames[1], opts)

	// Default mode: the damaged frame aborts iteration.
	r, err = NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err != nil {
		t.Fatalf("frame 0 should read cleanly, got %v", err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("default mode should fail on the damaged frame")
	}

	// Partial mode: all three frames come back.
	r, err = NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnablePartial(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) != 3 {
		t.Fatalf("partial read returned %d frames, want 3", len(got))
	}
	for _, i := range []int{0, 2} {
		if got[i].Damage != nil {
			t.Fatalf("frame %d reported damage: %+v", i, got[i].Damage)
		}
		if !cloudsEqual(clean[i].Cloud, got[i].Cloud) {
			t.Fatalf("frame %d differs from the clean read", i)
		}
	}
	dmg := got[1].Damage
	if dmg == nil {
		t.Fatal("damaged frame 1 carries no damage report")
	}
	if !dmg.CRCMismatch {
		t.Fatal("frame-level CRC mismatch not flagged")
	}
	var damagedSections int
	for _, rep := range dmg.Sections {
		if rep.Err != nil {
			damagedSections++
			if rep.Section != dbgc.SectionOutlier {
				t.Fatalf("unexpected damaged section %s: %v", rep.Section, rep.Err)
			}
		}
	}
	if damagedSections != 1 {
		t.Fatalf("%d sections reported damaged, want 1", damagedSections)
	}
	// Sections decode in container order (dense, sparse, outlier), so the
	// salvaged cloud is a strict prefix of the clean frame.
	part := got[1].Cloud
	if len(part) == 0 || len(part) >= len(clean[1].Cloud) {
		t.Fatalf("salvaged %d of %d points", len(part), len(clean[1].Cloud))
	}
	if !cloudsEqual(clean[1].Cloud[:len(part)], part) {
		t.Fatal("salvaged sections are not byte-identical to the clean decode")
	}
}

// TestPartialBreaksPredictionChain: in temporal mode a damaged I-frame
// cannot anchor the following P-frame, which is reported as unrecoverable;
// the chain restarts at the next clean I-frame.
func TestPartialBreaksPredictionChain(t *testing.T) {
	frames := testFrames(t, 4)
	opts := dbgc.DefaultOptions(0.02)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTemporal(2); err != nil { // frames 0,2 are I; 1,3 are P
		t.Fatal(err)
	}
	for _, pc := range frames {
		if _, err := w.WriteFrame(pc, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	mut := corruptFrame(t, buf.Bytes(), frames[2], opts)
	r, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.EnablePartial(); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r)
	if len(got) != 4 {
		t.Fatalf("partial read returned %d frames, want 4", len(got))
	}
	if got[0].Damage != nil || got[1].Damage != nil {
		t.Fatalf("frames before the damage reported damage: %+v %+v", got[0].Damage, got[1].Damage)
	}
	if got[2].Damage == nil {
		t.Fatal("damaged I-frame 2 carries no damage report")
	}
	if got[3].Damage == nil || got[3].Damage.Err == nil {
		t.Fatal("P-frame 3 lost its prediction reference and must be reported unrecoverable")
	}
	if len(got[3].Cloud) != 0 {
		t.Fatalf("unrecoverable P-frame returned %d points", len(got[3].Cloud))
	}
}

func cloudsEqual(a, b geom.PointCloud) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
