package stream

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"dbgc"
	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

func testFrames(t *testing.T, n int) []geom.PointCloud {
	t.Helper()
	scene, err := lidar.NewScene(lidar.Road, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lidar.HDL64E()
	cfg.AzimuthSteps = 300 // small frames keep the test fast
	out := make([]geom.PointCloud, n)
	for i := range out {
		out[i] = cfg.Simulate(scene, int64(i+1))
	}
	return out
}

func TestStreamRoundTrip(t *testing.T) {
	frames := testFrames(t, 3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, pc := range frames {
		fs, err := w.WriteFrame(pc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fs.Seq != uint64(i) || fs.Points != len(pc) {
			t.Fatalf("frame stats wrong: %+v", fs)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Q() != 0.02 || r.FPS() != 10 {
		t.Fatalf("header: q=%v fps=%v", r.Q(), r.FPS())
	}
	bound := math.Sqrt(3) * 0.02 * 1.0001
	for i := 0; ; i++ {
		fr, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			if i != len(frames) {
				t.Fatalf("read %d frames, wrote %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(fr.Cloud) != len(frames[i]) {
			t.Fatalf("frame %d: %d points, want %d", i, len(fr.Cloud), len(frames[i]))
		}
		if fr.Intensity != nil {
			t.Fatalf("frame %d: unexpected intensity channel", i)
		}
		// Spot-check a few points against the sorted original within the
		// bound by nearest distance (the mapping is not carried in the
		// container, so exact pairing is not available here).
		for j := 0; j < len(fr.Cloud); j += 997 {
			best := math.Inf(1)
			for k := 0; k < len(frames[i]); k += 1 {
				if d := fr.Cloud[j].Dist(frames[i][k]); d < best {
					best = d
				}
			}
			if best > bound {
				t.Fatalf("frame %d point %d: nearest original %v away", i, j, best)
			}
		}
	}
	// Second read past EOF keeps returning EOF.
	if _, err := r.ReadFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestStreamWithIntensity(t *testing.T) {
	frames := testFrames(t, 2)
	rng := rand.New(rand.NewSource(4))
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	intens := make([][]float32, len(frames))
	for i, pc := range frames {
		intens[i] = make([]float32, len(pc))
		for j := range intens[i] {
			intens[i][j] = rng.Float32()
		}
		fs, err := w.WriteFrame(pc, intens[i])
		if err != nil {
			t.Fatal(err)
		}
		if fs.IntensityBytes == 0 {
			t.Fatal("intensity channel missing from stats")
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		fr, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(fr.Intensity) != len(fr.Cloud) {
			t.Fatalf("frame %d: %d intensities for %d points", i, len(fr.Intensity), len(fr.Cloud))
		}
		for _, v := range fr.Intensity {
			if v < 0 || v > 1 {
				t.Fatalf("intensity %v out of range", v)
			}
		}
	}
}

func TestWriterClosedRejectsFrames(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if _, err := w.WriteFrame(geom.PointCloud{{X: 1}}, nil); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestInvalidOptions(t *testing.T) {
	if _, err := NewWriter(io.Discard, dbgc.Options{}, 0); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestCorruptContainer(t *testing.T) {
	frames := testFrames(t, 1)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, dbgc.DefaultOptions(0.02), 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteFrame(frames[0], nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bit flip in the frame body must trip the CRC.
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 0x01
	r, err := NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("corrupted frame accepted")
	}
	// Truncations never panic.
	for cut := 0; cut < len(raw); cut += 503 {
		r, err := NewReader(bytes.NewReader(raw[:cut]))
		if err != nil {
			continue
		}
		for {
			if _, err := r.ReadFrame(); err != nil {
				break
			}
		}
	}
}
