package attr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func identityMapping(n int) []int32 {
	m := make([]int32, n)
	for i := range m {
		m[i] = int32(i)
	}
	return m
}

func TestRoundTripIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float32, 5000)
	for i := range vals {
		vals[i] = rng.Float32()
	}
	for _, bits := range []int{1, 4, 8, 16} {
		data, err := EncodeIntensity(vals, identityMapping(len(vals)), bits)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeIntensity(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("bits=%d: %d values out", bits, len(dec))
		}
		tol := 0.5 / float64(uint64(1)<<uint(bits)-1)
		for i := range vals {
			if math.Abs(float64(dec[i]-vals[i])) > tol*1.0001 {
				t.Fatalf("bits=%d: value %d error %v > %v", bits, i, dec[i]-vals[i], tol)
			}
		}
	}
}

func TestRoundTripPermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 1000
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = rng.Float32()
	}
	mapping := identityMapping(n)
	rng.Shuffle(n, func(i, j int) { mapping[i], mapping[j] = mapping[j], mapping[i] })
	data, err := EncodeIntensity(vals, mapping, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeIntensity(data)
	if err != nil {
		t.Fatal(err)
	}
	for j, oi := range mapping {
		if math.Abs(float64(dec[j]-vals[oi])) > 0.003 {
			t.Fatalf("decoded[%d] = %v, original[%d] = %v", j, dec[j], oi, vals[oi])
		}
	}
}

func TestSpatialCoherenceCompresses(t *testing.T) {
	// Smoothly varying intensity (decode order follows surfaces) must
	// compress well below 8 bits/value.
	n := 20000
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(0.5 + 0.4*math.Sin(float64(i)/300))
	}
	data, err := EncodeIntensity(vals, identityMapping(n), 8)
	if err != nil {
		t.Fatal(err)
	}
	bitsPerVal := float64(len(data)) * 8 / float64(n)
	if bitsPerVal > 3 {
		t.Fatalf("smooth intensity costs %.2f bits/value, expected < 3", bitsPerVal)
	}
}

func TestClamping(t *testing.T) {
	vals := []float32{-0.5, 2.0, float32(math.NaN()), 0.5}
	data, err := EncodeIntensity(vals, identityMapping(4), 8)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeIntensity(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0] != 0 || dec[1] != 1 || dec[2] != 0 {
		t.Fatalf("clamping wrong: %v", dec)
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := EncodeIntensity([]float32{1}, identityMapping(1), 0); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := EncodeIntensity([]float32{1}, identityMapping(1), MaxBits+1); err == nil {
		t.Fatal("bits too large accepted")
	}
	if _, err := EncodeIntensity([]float32{1, 2}, identityMapping(1), 8); err == nil {
		t.Fatal("mapping size mismatch accepted")
	}
	if _, err := EncodeIntensity([]float32{1}, []int32{5}, 8); err == nil {
		t.Fatal("out-of-range mapping accepted")
	}
}

func TestCorruptStreams(t *testing.T) {
	vals := make([]float32, 500)
	for i := range vals {
		vals[i] = float32(i) / 500
	}
	data, err := EncodeIntensity(vals, identityMapping(len(vals)), 8)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeIntensity(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw []float32) bool {
		data, err := EncodeIntensity(raw, identityMapping(len(raw)), 8)
		if err != nil {
			return false
		}
		dec, err := DecodeIntensity(data)
		return err == nil && len(dec) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
