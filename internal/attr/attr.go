// Package attr compresses per-point attributes alongside DBGC's geometry
// streams. The paper's Definition 2.1 notes that points may carry
// attributes such as intensity; DBGC itself is a geometry compressor, so
// this package is the companion channel: attribute values are reordered
// into geometry-decode order using the compressor's one-to-one mapping,
// quantized, delta-encoded, and entropy-coded. Spatially adjacent points
// have similar reflectivity, so decode order — which follows octree cells
// and polylines — makes the deltas small.
package attr

import (
	"errors"
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed attribute stream.
var ErrCorrupt = errors.New("attr: corrupt stream")

// MaxBits bounds attribute quantization depth.
const MaxBits = 16

// EncodeIntensity compresses vals with the given quantization depth.
// mapping is Stats.Mapping from the geometry compressor: mapping[j] is the
// original index decoded at position j, so the stream stores values in
// decode order and DecodeIntensity returns them aligned with the decoded
// cloud. Values are clamped to [0, 1] (KITTI intensity range).
func EncodeIntensity(vals []float32, mapping []int32, bits int) ([]byte, error) {
	if bits < 1 || bits > MaxBits {
		return nil, fmt.Errorf("attr: bits %d out of [1,%d]", bits, MaxBits)
	}
	if len(mapping) != len(vals) {
		return nil, fmt.Errorf("attr: %d values but mapping of %d", len(vals), len(mapping))
	}
	maxQ := int64(1)<<uint(bits) - 1
	deltas := make([]int64, len(vals))
	var prev int64
	for j, oi := range mapping {
		if oi < 0 || int(oi) >= len(vals) {
			return nil, fmt.Errorf("attr: mapping[%d]=%d out of range", j, oi)
		}
		v := float64(vals[oi])
		if math.IsNaN(v) || v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		q := int64(math.Round(v * float64(maxQ)))
		deltas[j] = q - prev
		prev = q
	}
	out := make([]byte, 0, len(vals)/2+16)
	out = varint.AppendUint(out, uint64(bits))
	out = varint.AppendUint(out, uint64(len(vals)))
	payload := arith.CompressInts(deltas)
	out = varint.AppendUint(out, uint64(len(payload)))
	out = append(out, payload...)
	return out, nil
}

// DecodeIntensity reconstructs the intensity channel in geometry-decode
// order: result[j] belongs to decoded point j.
func DecodeIntensity(data []byte) ([]float32, error) {
	bits64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("attr: bits: %w", err)
	}
	data = data[used:]
	if bits64 < 1 || bits64 > MaxBits {
		return nil, fmt.Errorf("%w: bits=%d", ErrCorrupt, bits64)
	}
	n64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("attr: count: %w", err)
	}
	data = data[used:]
	if n64 > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: count overflow", ErrCorrupt)
	}
	plen, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("attr: payload length: %w", err)
	}
	data = data[used:]
	if plen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: payload truncated", ErrCorrupt)
	}
	deltas, err := arith.DecompressInts(data[:plen], int(n64))
	if err != nil {
		return nil, fmt.Errorf("attr: deltas: %w", err)
	}
	maxQ := int64(1)<<uint(bits64) - 1
	out := make([]float32, n64)
	var q int64
	for j := range out {
		q += deltas[j]
		if q < 0 || q > maxQ {
			return nil, fmt.Errorf("%w: value %d out of range at %d", ErrCorrupt, q, j)
		}
		out[j] = float32(float64(q) / float64(maxQ))
	}
	return out, nil
}
