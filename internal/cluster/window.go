package cluster

import (
	"sort"
	"sync"

	"dbgc/internal/radix"
)

// This file holds the sorted-key window machinery shared by both
// classifiers. Clustering needs, for every occupied cell, the population of
// the (2m+1)³ cell window around it (core-point pruning) and whether the
// window holds a marked cell (border dilation). The previous implementation
// answered both with (2m+1)² hash probes per cell against an
// open-addressing map — over half of total compression time went into
// those probes. Keys packed as (x, y, z) bit fields are ordered
// lexicographically, so a window is a union of (2m+1)² *contiguous* key
// ranges, and over cells visited in sorted order each range's endpoints
// advance monotonically. Scattering the counts along x first (as before)
// folds the dx dimension away; the remaining (dy, z-range) gather is then
// 2m+1 two-pointer sweeps over a sorted array — sequential memory access,
// no hashing. (Sweeping all (2m+1)² offsets directly over the unscattered
// cell array was measured ~2x slower end-to-end: it trades the one radix
// sort for (2m+1)²-per-cell query overhead.)
//
// Keys must be canonical: every axis index padded by at least m cells (see
// packPadded) so that probe keys never borrow or carry across bit fields
// and unsigned key order equals (x, y, z) order.

// packPadded packs non-negative axis indices, offset by pad cells per
// axis, into a canonical key. Pad must be at least the window radius m of
// any later window query so probes stay canonical.
func packPadded(x, y, z, pad int64) uint64 {
	return uint64((x+pad)<<(2*axisBits) | (y+pad)<<axisBits | (z + pad))
}

// winScratch holds the reusable buffers of the scatter/sweep passes.
type winScratch struct {
	xKeys []uint64
	xVals []int32
	xPre  []int32
	sort  radix.Scratch
}

var winPool = sync.Pool{New: func() any { return new(winScratch) }}

// growU64 returns s with length n, reallocating only when capacity is
// short; the contents are unspecified.
func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// windowSums returns, for every cell of occ (sorted canonical keys with
// per-cell populations cnt), the total population of the (2m+1)³ window
// around it, accumulated into sums (resized as needed). With parallel set
// the sweeps shard across CPUs; the result is identical.
func windowSums(occ []uint64, cnt []int32, m int64, parallel bool, sums []int32) []int32 {
	u := len(occ)
	sums = growI32(sums, u)
	for j := range sums {
		sums[j] = 0
	}
	if u == 0 {
		return sums
	}
	s := winPool.Get().(*winScratch)
	k := int(2*m + 1)
	xn := u * k
	xKeys := growU64(s.xKeys, xn)
	xVals := growI32(s.xVals, xn)
	pos := 0
	for dx := -m; dx <= m; dx++ {
		delta := uint64(dx * cellStepX)
		for j, key := range occ {
			xKeys[pos] = key + delta
			xVals[pos] = cnt[j]
			pos++
		}
	}
	radix.Sort(xKeys, xVals, &s.sort)
	// Prefix sums turn every contiguous key range into one subtraction.
	// Populations sum to at most the point total, so int32 cannot
	// overflow.
	xPre := growI32(s.xPre, xn+1)
	xPre[0] = 0
	for i, v := range xVals {
		xPre[i+1] = xPre[i] + v
	}
	sweep := func(w, lo, hi int) {
		for dy := -m; dy <= m; dy++ {
			delta := uint64(dy * cellStepY)
			l := sort.Search(xn, func(i int) bool { return xKeys[i] >= occ[lo]+delta-uint64(m) })
			h := l
			for j := lo; j < hi; j++ {
				base := occ[j] + delta
				ql, qh := base-uint64(m), base+uint64(m)
				for l < xn && xKeys[l] < ql {
					l++
				}
				if h < l {
					h = l
				}
				for h < xn && xKeys[h] <= qh {
					h++
				}
				sums[j] += xPre[h] - xPre[l]
			}
		}
	}
	if parallel {
		parallelChunks(u, sweep)
	} else {
		sweep(0, 0, u)
	}
	s.xKeys, s.xVals, s.xPre = xKeys, xVals, xPre
	winPool.Put(s)
	return sums
}

// windowReach reports, for every cell of occ, whether the (2m+1)³ window
// around it contains any marked cell. marked must be sorted canonical keys.
// The result is written into reach (resized as needed).
func windowReach(occ []uint64, marked []uint64, m int64, parallel bool, reach []bool) []bool {
	u := len(occ)
	if cap(reach) < u {
		reach = make([]bool, u)
	}
	reach = reach[:u]
	for j := range reach {
		reach[j] = false
	}
	if u == 0 || len(marked) == 0 {
		return reach
	}
	s := winPool.Get().(*winScratch)
	k := int(2*m + 1)
	xn := len(marked) * k
	xKeys := growU64(s.xKeys, xn)
	pos := 0
	for dx := -m; dx <= m; dx++ {
		delta := uint64(dx * cellStepX)
		for _, key := range marked {
			xKeys[pos] = key + delta
			pos++
		}
	}
	radix.Sort(xKeys, nil, &s.sort)
	sweep := func(w, lo, hi int) {
		for dy := -m; dy <= m; dy++ {
			delta := uint64(dy * cellStepY)
			l := sort.Search(xn, func(i int) bool { return xKeys[i] >= occ[lo]+delta-uint64(m) })
			h := l
			for j := lo; j < hi; j++ {
				base := occ[j] + delta
				ql, qh := base-uint64(m), base+uint64(m)
				for l < xn && xKeys[l] < ql {
					l++
				}
				if h < l {
					h = l
				}
				for h < xn && xKeys[h] <= qh {
					h++
				}
				if h > l {
					reach[j] = true
				}
			}
		}
	}
	if parallel {
		parallelChunks(u, sweep)
	} else {
		sweep(0, 0, u)
	}
	s.xKeys = xKeys
	winPool.Put(s)
	return reach
}
