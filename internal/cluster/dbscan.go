package cluster

import "dbgc/internal/geom"

// DBSCAN is a reference implementation of the classic algorithm ([15] in
// the paper). It returns per-point cluster labels: -1 for noise, otherwise
// a cluster id starting at 0. It exists to validate the cell-based
// clustering (the test suite checks that cell-based dense points form a
// superset of DBSCAN's cluster members) and is far too slow for the
// compression pipeline itself.
func DBSCAN(pc geom.PointCloud, eps float64, minPts int) []int {
	labels := make([]int, len(pc))
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	if len(pc) == 0 || eps <= 0 {
		for i := range labels {
			labels[i] = -1
		}
		return labels
	}
	g := buildGrid(pc, eps/2, 1) // side = ε, so window radius m = 1
	next := 0
	var nbuf []int32
	for i := range pc {
		if labels[i] != -2 {
			continue
		}
		nbuf = g.neighbors(pc, pc[i], eps, nbuf[:0])
		if len(nbuf) < minPts {
			labels[i] = -1
			continue
		}
		id := next
		next++
		labels[i] = id
		queue := append([]int32(nil), nbuf...)
		for len(queue) > 0 {
			q := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if labels[q] == -1 {
				labels[q] = id // noise becomes a border point
			}
			if labels[q] != -2 {
				continue
			}
			labels[q] = id
			nbuf = g.neighbors(pc, pc[q], eps, nbuf[:0])
			if len(nbuf) >= minPts {
				queue = append(queue, nbuf...)
			}
		}
	}
	return labels
}
