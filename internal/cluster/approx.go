package cluster

import (
	"math"

	"dbgc/internal/geom"
)

// Approximate runs the O(n) approximate clustering of §4.3. As in the
// paper, it works on the same 2q cells as the octree: points are counted
// per cell, and a cell N is dense when the total population of its
// surrounding cells — all cells within m = ⌈ε/2q⌉ steps per dimension —
// reaches the (density-equivalent, see below) threshold. Occupied sparse
// cells with a dense surrounding cell are then dilated into the dense set,
// and every point in a dense cell becomes a dense point.
//
// The (2m+1)³ box sums are evaluated as a one-dimensional scatter along x
// followed by a (2m+1)² gather over (y, z) with early exit, so each
// occupied cell costs O(m²) hash probes — linear in the number of occupied
// cells and, unlike the exact method, independent of local point density.
// The probes run against the open-addressing cellMap; the generic Go map
// spends over half the classification time hashing.
//
// Cells are addressed by packed 21-bit-per-axis integer keys; LiDAR scenes
// span thousands of cells per axis, far below the 2^21 limit.
func Approximate(pc geom.PointCloud, p Params) Result {
	res := Result{Dense: make([]bool, len(pc))}
	if len(pc) == 0 || p.Q <= 0 || p.K <= 0 {
		return res
	}
	side := 2 * p.Q
	min := geom.Bounds(pc).Min
	m := int64(math.Ceil(p.Eps() / side))

	// The cube window holds more volume than the ε-ball the exact method
	// counts over, so the population threshold is scaled for the two
	// methods to estimate the same density. LiDAR points lie on 2D
	// surfaces, so the captured population scales with the intersected
	// *area*: the right correction is the window/disk area ratio
	// (≈1.54 for the default k=10) rather than the cube/ball volume
	// ratio.
	windowArea := math.Pow(float64(2*m+1)*side, 2)
	ballArea := math.Pi * p.Eps() * p.Eps()
	minPts := int32(math.Ceil(float64(p.minPts()) * windowArea / ballArea))

	// Offsetting by the cloud minimum keeps axis values non-negative, so
	// borrow across fields when probing past the boundary only produces
	// phantom keys no real cell can alias.
	key := func(pt geom.Point) cellID {
		return packCell(
			int64((pt.X-min.X)/side),
			int64((pt.Y-min.Y)/side),
			int64((pt.Z-min.Z)/side),
		)
	}
	// Count per occupied cell.
	counts := newCellMap(len(pc) / 2)
	for _, pt := range pc {
		counts.add(key(pt), 1)
	}

	// Scatter pass along x.
	xSum := newCellMap(counts.n * int(2*m+1))
	counts.each(func(k cellID, v int32) {
		for dx := -m; dx <= m; dx++ {
			xSum.add(k+dx*cellStepX, v)
		}
	})
	// Gather pass over (y, z) with early exit at the threshold. The pass
	// only reads xSum, so it shards cleanly across CPUs; each shard
	// collects its dense keys and the merge is order-independent.
	occupied := counts.occupiedKeys()
	isDense := func(k cellID) bool {
		var s int32
		for dy := -m; dy <= m; dy++ {
			for dz := -m; dz <= m; dz++ {
				s += xSum.get(k + dy*cellStepY + dz)
				if s >= minPts {
					return true
				}
			}
		}
		return false
	}
	dense := newCellMap(counts.n / 2)
	if p.Parallel {
		shards := make([][]cellID, numChunks(len(occupied)))
		parallelChunks(len(occupied), func(w, lo, hi int) {
			var local []cellID
			for _, k := range occupied[lo:hi] {
				if isDense(k) {
					local = append(local, k)
				}
			}
			shards[w] = local
		})
		for _, shard := range shards {
			for _, k := range shard {
				dense.add(k, 1)
			}
		}
	} else {
		for _, k := range occupied {
			if isDense(k) {
				dense.add(k, 1)
			}
		}
	}

	// Dilation: an occupied sparse cell whose surrounding box holds a
	// dense cell joins the dense set. Same scatter/gather trick on the
	// dense indicator.
	xInd := newCellMap(dense.n * int(2*m+1))
	dense.each(func(k cellID, _ int32) {
		for dx := -m; dx <= m; dx++ {
			xInd.add(k+dx*cellStepX, 1)
		}
	})
	nearDense := func(k cellID) bool {
		if dense.get(k) != 0 {
			return false
		}
		for dy := -m; dy <= m; dy++ {
			for dz := -m; dz <= m; dz++ {
				if xInd.get(k+dy*cellStepY+dz) != 0 {
					return true
				}
			}
		}
		return false
	}
	var dilated []cellID
	if p.Parallel {
		shards := make([][]cellID, numChunks(len(occupied)))
		parallelChunks(len(occupied), func(w, lo, hi int) {
			var local []cellID
			for _, k := range occupied[lo:hi] {
				if nearDense(k) {
					local = append(local, k)
				}
			}
			shards[w] = local
		})
		for _, shard := range shards {
			dilated = append(dilated, shard...)
		}
	} else {
		for _, k := range occupied {
			if nearDense(k) {
				dilated = append(dilated, k)
			}
		}
	}
	for _, k := range dilated {
		dense.add(k, 1)
	}

	res.NumDenseCells = dense.n
	for i, pt := range pc {
		if dense.get(key(pt)) != 0 {
			res.Dense[i] = true
			res.NumDense++
		}
	}
	return res
}
