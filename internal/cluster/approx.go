package cluster

import (
	"math"
	"sync"

	"dbgc/internal/geom"
	"dbgc/internal/radix"
)

// Approximate runs the O(n) approximate clustering of §4.3. As in the
// paper, it works on the same 2q cells as the octree: points are counted
// per cell, and a cell N is dense when the total population of its
// surrounding cells — all cells within m = ⌈ε/2q⌉ steps per dimension —
// reaches the (density-equivalent, see below) threshold. Occupied sparse
// cells with a dense surrounding cell are then dilated into the dense set,
// and every point in a dense cell becomes a dense point.
//
// The pipeline is sort-based: point keys are radix-sorted once, giving the
// occupied cells, their populations, and the point runs for the final
// labeling in a single pass; window populations and the dilation test are
// then monotone range sweeps over sorted key arrays (see window.go). The
// previous hash-probe formulation spent over half of total compression
// time in map lookups; the sweeps replace every probe with sequential
// array traversal. With Params.Parallel the key construction, sweeps, and
// labeling shard across CPUs with identical results.
//
// Cells are addressed by packed 21-bit-per-axis integer keys; LiDAR scenes
// span thousands of cells per axis, far below the 2^21 limit.
func Approximate(pc geom.PointCloud, p Params) Result {
	res := Result{Dense: make([]bool, len(pc))}
	if len(pc) == 0 || p.Q <= 0 || p.K <= 0 {
		return res
	}
	side := 2 * p.Q
	min := geom.Bounds(pc).Min
	m := int64(math.Ceil(p.Eps() / side))

	// The cube window holds more volume than the ε-ball the exact method
	// counts over, so the population threshold is scaled for the two
	// methods to estimate the same density. LiDAR points lie on 2D
	// surfaces, so the captured population scales with the intersected
	// *area*: the right correction is the window/disk area ratio
	// (≈1.54 for the default k=10) rather than the cube/ball volume
	// ratio.
	windowArea := math.Pow(float64(2*m+1)*side, 2)
	ballArea := math.Pi * p.Eps() * p.Eps()
	minPts := int32(math.Ceil(float64(p.minPts()) * windowArea / ballArea))

	s := approxPool.Get().(*approxScratch)
	defer approxPool.Put(s)
	n := len(pc)
	keys := growU64(s.keys, n)
	idx := growI32(s.idx, n)
	computeKeys := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			pt := pc[i]
			keys[i] = packPadded(
				int64((pt.X-min.X)/side),
				int64((pt.Y-min.Y)/side),
				int64((pt.Z-min.Z)/side),
				m)
			idx[i] = int32(i)
		}
	}
	if p.Parallel {
		parallelChunks(n, computeKeys)
	} else {
		computeKeys(0, 0, n)
	}
	radix.Sort(keys, idx, &s.sort)

	// Run-length the sorted keys into occupied cells, populations, and
	// point-run offsets.
	occ := s.occ[:0]
	cnt := s.cnt[:0]
	runStart := s.runStart[:0]
	for i := 0; i < n; {
		j := i + 1
		for j < n && keys[j] == keys[i] {
			j++
		}
		occ = append(occ, keys[i])
		cnt = append(cnt, int32(j-i))
		runStart = append(runStart, int32(i))
		i = j
	}
	runStart = append(runStart, int32(n))
	u := len(occ)

	// A cell is dense when its window population reaches the threshold.
	s.sums = windowSums(occ, cnt, m, p.Parallel, s.sums)
	denseKeys := s.denseKeys[:0]
	for j := 0; j < u; j++ {
		if s.sums[j] >= minPts {
			denseKeys = append(denseKeys, occ[j])
		}
	}

	// Dilation: an occupied sparse cell whose window holds a dense cell
	// joins the dense set.
	s.reach = windowReach(occ, denseKeys, m, p.Parallel, s.reach)

	// Final labeling straight off the sorted point runs.
	var numDense int64
	di := 0
	for j := 0; j < u; j++ {
		isDense := di < len(denseKeys) && denseKeys[di] == occ[j]
		if isDense {
			di++
		}
		if isDense || s.reach[j] {
			res.NumDenseCells++
			numDense += int64(cnt[j])
			for _, pi := range idx[runStart[j]:runStart[j+1]] {
				res.Dense[pi] = true
			}
		}
	}
	res.NumDense = int(numDense)
	s.keys, s.idx, s.occ, s.cnt, s.runStart, s.denseKeys = keys, idx, occ, cnt, runStart, denseKeys
	return res
}

// approxScratch recycles the per-frame buffers of Approximate.
type approxScratch struct {
	keys      []uint64
	idx       []int32
	occ       []uint64
	cnt       []int32
	runStart  []int32
	sums      []int32
	reach     []bool
	denseKeys []uint64
	sort      radix.Scratch
}

var approxPool = sync.Pool{New: func() any { return new(approxScratch) }}
