package cluster

import (
	"runtime"
	"sync"
)

// numChunks returns the worker count used by parallelChunks for n items.
func numChunks(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelChunks invokes f(w, lo, hi) over [0, n) split into numChunks(n)
// contiguous chunks, one goroutine each, and waits for completion.
func parallelChunks(n int, f func(w, lo, hi int)) {
	workers := numChunks(n)
	if workers <= 1 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// occupiedKeys snapshots the map's keys into a slice for index-based
// parallel iteration.
func (m *cellMap) occupiedKeys() []cellID {
	keys := make([]cellID, 0, m.n)
	for i, u := range m.used {
		if u {
			keys = append(keys, m.keys[i])
		}
	}
	return keys
}
