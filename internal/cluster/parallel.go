package cluster

import "dbgc/internal/par"

// numChunks returns the worker count used by parallelChunks for n items.
func numChunks(n int) int { return par.Workers(n) }

// parallelChunks invokes f(w, lo, hi) over [0, n) split into numChunks(n)
// contiguous chunks, one goroutine each, and waits for completion.
func parallelChunks(n int, f func(w, lo, hi int)) { par.Chunks(n, f) }
