package cluster

import (
	"math/rand"
	"testing"
)

func TestCellMapBasic(t *testing.T) {
	m := newCellMap(4)
	if m.get(42) != 0 {
		t.Fatal("empty map returned nonzero")
	}
	m.add(42, 3)
	m.add(42, 2)
	m.add(-7, 1)
	if m.get(42) != 5 {
		t.Fatalf("get(42) = %d, want 5", m.get(42))
	}
	if m.get(-7) != 1 {
		t.Fatalf("get(-7) = %d, want 1", m.get(-7))
	}
	if m.n != 2 {
		t.Fatalf("n = %d, want 2", m.n)
	}
}

func TestCellMapGrowth(t *testing.T) {
	m := newCellMap(2)
	const n = 10000
	for i := int64(0); i < n; i++ {
		m.add(i*7919, int32(i%100))
	}
	if m.n != n {
		t.Fatalf("n = %d, want %d", m.n, n)
	}
	for i := int64(0); i < n; i++ {
		if got := m.get(i * 7919); got != int32(i%100) {
			t.Fatalf("get(%d) = %d, want %d", i*7919, got, i%100)
		}
	}
	// Absent keys still read zero after growth.
	if m.get(-12345) != 0 {
		t.Fatal("absent key nonzero after growth")
	}
}

func TestCellMapAgainstGoMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := newCellMap(16)
	ref := map[cellID]int32{}
	for i := 0; i < 50000; i++ {
		k := cellID(rng.Intn(5000)) // collisions guaranteed
		v := int32(rng.Intn(10))
		m.add(k, v)
		ref[k] += v
	}
	for k, want := range ref {
		if got := m.get(k); got != want {
			t.Fatalf("get(%d) = %d, want %d", k, got, want)
		}
	}
	if m.n != len(ref) {
		t.Fatalf("n = %d, want %d", m.n, len(ref))
	}
}

func TestCellMapEach(t *testing.T) {
	m := newCellMap(8)
	want := map[cellID]int32{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		m.add(k, v)
	}
	got := map[cellID]int32{}
	m.each(func(k cellID, v int32) { got[k] = v })
	if len(got) != len(want) {
		t.Fatalf("each visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("each saw %d=%d, want %d", k, got[k], v)
		}
	}
}

func BenchmarkCellMapVsGoMap(b *testing.B) {
	keys := make([]cellID, 100000)
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = cellID(rng.Int63n(1 << 40))
	}
	b.Run("cellMap", func(b *testing.B) {
		m := newCellMap(len(keys))
		for _, k := range keys {
			m.add(k, 1)
		}
		b.ResetTimer()
		var s int32
		for i := 0; i < b.N; i++ {
			s += m.get(keys[i%len(keys)])
		}
		_ = s
	})
	b.Run("goMap", func(b *testing.B) {
		m := make(map[cellID]int32, len(keys))
		for _, k := range keys {
			m[k]++
		}
		b.ResetTimer()
		var s int32
		for i := 0; i < b.N; i++ {
			s += m[keys[i%len(keys)]]
		}
		_ = s
	})
}
