package cluster

import (
	"math"

	"dbgc/internal/geom"
)

// CellBased runs the paper's exact cell-based clustering (§3.2). The dense
// set it computes is the order-independent fixpoint of the rules in the
// paper:
//
//   - a point with at least minPts neighbors within ε is a core point;
//   - a cell containing a core point is a dense cell;
//   - every point in a dense cell is dense (the octree codes dense cells
//     wholesale, so cell-mates ride along — Example 3.1);
//   - every point within ε of a point in a dense cell is dense (DBSCAN's
//     border rule, widened by the cell shortcut).
//
// The octree-aware pruning of §3.2 makes this tractable: inside a cell,
// core checking stops at the first core point (the cell is then dense and
// the rest of its points are dense regardless of their own counts), a
// cheap per-cell population bound skips the neighbor count entirely for
// points whose whole ε-window cannot reach minPts, and the border sweep
// only examines occupied cells whose window actually contains a dense
// cell. Window populations and the dense-cell prefilter come from the
// sorted-key sweeps in window.go instead of hash probes, and with
// Params.Parallel the per-cell scans of passes 1 and 3 shard across CPUs
// (each cell's writes touch only its own points, so the shards are
// independent and the result identical).
func CellBased(pc geom.PointCloud, p Params) Result {
	res := Result{Dense: make([]bool, len(pc))}
	if len(pc) == 0 || p.Q <= 0 || p.K <= 0 {
		return res
	}
	eps := p.Eps()
	minPts := p.minPts()
	m := int64(math.Ceil(eps / (2 * p.Q)))
	g := buildGrid(pc, p.Q, m)
	u := len(g.keys)
	cnt := make([]int32, u)
	for j := 0; j < u; j++ {
		cnt[j] = g.start[j+1] - g.start[j]
	}

	// Upper-bound pruning: the population of the (2m+1)³ window around a
	// cell bounds any member's ε-ball count from above.
	windowTotal := windowSums(g.keys, cnt, m, p.Parallel, nil)

	// Pass 1: find dense cells. Within a cell, stop at the first core
	// point.
	denseRun := make([]bool, u)
	scanCores := func(w, lo, hi int) {
		for j := lo; j < hi; j++ {
			if windowTotal[j] < int32(minPts) {
				continue
			}
			for _, i := range g.cellPoints(j) {
				if g.countNeighbors(pc, pc[i], eps, minPts) >= minPts {
					denseRun[j] = true
					break
				}
			}
		}
	}
	if p.Parallel {
		parallelChunks(u, scanCores)
	} else {
		scanCores(0, 0, u)
	}

	// Pass 2: points in dense cells are dense.
	denseKeys := make([]uint64, 0, u/4)
	for j := 0; j < u; j++ {
		if !denseRun[j] {
			continue
		}
		denseKeys = append(denseKeys, g.keys[j])
		res.NumDenseCells++
		for _, i := range g.cellPoints(j) {
			res.Dense[i] = true
		}
	}

	// Pass 3: border sweep — points within ε of any dense-cell point.
	// The window-reach prefilter finds the occupied sparse cells whose
	// window holds a dense cell; only their points are distance-checked,
	// with early accept.
	near := windowReach(g.keys, denseKeys, m, p.Parallel, nil)
	eps2 := eps * eps
	scanBorders := func(w, lo, hi int) {
		for j := lo; j < hi; j++ {
			if denseRun[j] || !near[j] {
				continue
			}
			id := g.keys[j]
			for _, q := range g.cellPoints(j) {
			candidate:
				for dx := -m; dx <= m; dx++ {
					for dy := -m; dy <= m; dy++ {
						base := id + uint64(dx*cellStepX+dy*cellStepY)
						i0, i1 := g.runRange(base-uint64(m), base+uint64(m))
						for nj := i0; nj < i1; nj++ {
							if !denseRun[nj] {
								continue
							}
							for _, e := range g.cellPoints(nj) {
								if pc[q].Dist2(pc[e]) <= eps2 {
									res.Dense[q] = true
									break candidate
								}
							}
						}
					}
				}
			}
		}
	}
	if p.Parallel {
		parallelChunks(u, scanBorders)
	} else {
		scanBorders(0, 0, u)
	}

	for _, d := range res.Dense {
		if d {
			res.NumDense++
		}
	}
	return res
}
