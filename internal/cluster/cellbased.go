package cluster

import (
	"math"

	"dbgc/internal/geom"
)

// CellBased runs the paper's exact cell-based clustering (§3.2). The dense
// set it computes is the order-independent fixpoint of the rules in the
// paper:
//
//   - a point with at least minPts neighbors within ε is a core point;
//   - a cell containing a core point is a dense cell;
//   - every point in a dense cell is dense (the octree codes dense cells
//     wholesale, so cell-mates ride along — Example 3.1);
//   - every point within ε of a point in a dense cell is dense (DBSCAN's
//     border rule, widened by the cell shortcut).
//
// The octree-aware pruning of §3.2 makes this tractable: inside a cell,
// core checking stops at the first core point (the cell is then dense and
// the rest of its points are dense regardless of their own counts), a
// cheap per-cell population bound skips the neighbor count entirely for
// points whose whole ε-window cannot reach minPts, and the border sweep
// only examines occupied cells whose window actually contains a dense
// cell.
func CellBased(pc geom.PointCloud, p Params) Result {
	res := Result{Dense: make([]bool, len(pc))}
	if len(pc) == 0 || p.Q <= 0 || p.K <= 0 {
		return res
	}
	g := buildGrid(pc, p.Q)
	eps := p.Eps()
	minPts := p.minPts()
	m := int64(math.Ceil(eps / g.side))

	// Upper-bound pruning: windowTotal[c] = population of the (2m+1)³
	// window around c, an upper bound on any member's ε-ball count.
	// Computed with a scatter along x then a gather over (y, z).
	xSum := make(map[cellID]int32, len(g.cells)*3)
	for id, pts := range g.cells {
		v := int32(len(pts))
		for dx := -m; dx <= m; dx++ {
			xSum[id+dx*cellStepX] += v
		}
	}
	windowTotal := func(id cellID) int32 {
		var s int32
		for dy := -m; dy <= m; dy++ {
			for dz := -m; dz <= m; dz++ {
				s += xSum[id+dy*cellStepY+dz]
			}
		}
		return s
	}

	// Pass 1: find dense cells. Within a cell, stop at the first core
	// point.
	denseCells := make(map[cellID]bool)
	for id, pts := range g.cells {
		if windowTotal(id) < int32(minPts) {
			continue
		}
		for _, i := range pts {
			if g.countNeighbors(pc, pc[i], eps, minPts) >= minPts {
				denseCells[id] = true
				break
			}
		}
	}

	// Pass 2: points in dense cells are dense.
	for id := range denseCells {
		for _, i := range g.cells[id] {
			res.Dense[i] = true
		}
	}

	// Pass 3: border sweep — points within ε of any dense-cell point.
	// A scatter/gather prefilter on the dense indicator finds the
	// occupied sparse cells whose window holds a dense cell; only their
	// points are distance-checked, with early accept.
	xInd := make(map[cellID]bool, len(denseCells)*3)
	for id := range denseCells {
		for dx := -m; dx <= m; dx++ {
			xInd[id+dx*cellStepX] = true
		}
	}
	eps2 := eps * eps
	for id, pts := range g.cells {
		if denseCells[id] {
			continue
		}
		near := false
	prefilter:
		for dy := -m; dy <= m; dy++ {
			for dz := -m; dz <= m; dz++ {
				if xInd[id+dy*cellStepY+dz] {
					near = true
					break prefilter
				}
			}
		}
		if !near {
			continue
		}
		for _, q := range pts {
			if res.Dense[q] {
				continue
			}
		candidate:
			for dx := -m; dx <= m; dx++ {
				for dy := -m; dy <= m; dy++ {
					base := id + dx*cellStepX + dy*cellStepY
					for dz := -m; dz <= m; dz++ {
						nid := base + dz
						if !denseCells[nid] {
							continue
						}
						for _, e := range g.cells[nid] {
							if pc[q].Dist2(pc[e]) <= eps2 {
								res.Dense[q] = true
								break candidate
							}
						}
					}
				}
			}
		}
	}

	for _, d := range res.Dense {
		if d {
			res.NumDense++
		}
	}
	res.NumDenseCells = len(denseCells)
	return res
}
