package cluster

import "testing"

// TestParallelMatchesSerial: the parallel classifier must produce exactly
// the serial result.
func TestParallelMatchesSerial(t *testing.T) {
	pc := fullCityFrame(t)
	params := DefaultParams(0.02)
	serial := Approximate(pc, params)
	params.Parallel = true
	parallel := Approximate(pc, params)
	if serial.NumDense != parallel.NumDense || serial.NumDenseCells != parallel.NumDenseCells {
		t.Fatalf("counts differ: %d/%d vs %d/%d",
			serial.NumDense, serial.NumDenseCells, parallel.NumDense, parallel.NumDenseCells)
	}
	for i := range serial.Dense {
		if serial.Dense[i] != parallel.Dense[i] {
			t.Fatalf("classification differs at point %d", i)
		}
	}
}
