package cluster

// cellMap is an open-addressing hash map from packed cell keys to int32
// counts, used on the clustering hot paths. Classification probes hundreds
// of thousands of cells with (2m+1)² window scans each; the generic Go map
// spends most of that time hashing and probing, and a linear-probing table
// with a multiplicative hash measures several times faster.
type cellMap struct {
	keys []cellID
	vals []int32
	used []bool
	mask uint64
	n    int
}

// newCellMap sizes the table for about n entries.
func newCellMap(n int) *cellMap {
	capacity := 16
	for capacity < n*2 {
		capacity <<= 1
	}
	return &cellMap{
		keys: make([]cellID, capacity),
		vals: make([]int32, capacity),
		used: make([]bool, capacity),
		mask: uint64(capacity - 1),
	}
}

func hashCell(k cellID) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// add accumulates v into the slot for k, growing if the table passes 70%
// load.
func (m *cellMap) add(k cellID, v int32) {
	if m.n*10 >= len(m.keys)*7 {
		m.grow()
	}
	i := hashCell(k) & m.mask
	for {
		if !m.used[i] {
			m.used[i] = true
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
		if m.keys[i] == k {
			m.vals[i] += v
			return
		}
		i = (i + 1) & m.mask
	}
}

// get returns the count for k (0 when absent).
func (m *cellMap) get(k cellID) int32 {
	i := hashCell(k) & m.mask
	for {
		if !m.used[i] {
			return 0
		}
		if m.keys[i] == k {
			return m.vals[i]
		}
		i = (i + 1) & m.mask
	}
}

func (m *cellMap) grow() {
	old := *m
	capacity := len(old.keys) * 2
	m.keys = make([]cellID, capacity)
	m.vals = make([]int32, capacity)
	m.used = make([]bool, capacity)
	m.mask = uint64(capacity - 1)
	m.n = 0
	for i, u := range old.used {
		if u {
			m.add(old.keys[i], old.vals[i])
		}
	}
}

// each calls f for every (key, value) pair.
func (m *cellMap) each(f func(cellID, int32)) {
	for i, u := range m.used {
		if u {
			f(m.keys[i], m.vals[i])
		}
	}
}
