// Package cluster implements DBGC's density-based point classification
// (§3.2): the exact cell-based clustering adapted from DBSCAN, the O(n)
// approximate variant of §4.3, and a reference DBSCAN used to validate
// both. Cells are octree leaf cells of side 2q; ε = k·q with k = 10 as in
// the paper, and minPts defaults to the surface variant of the paper's
// leaf-capacity derivation (see DefaultMinPts).
package cluster

import (
	"math"
	"sort"

	"dbgc/internal/geom"
	"dbgc/internal/radix"
)

// Params holds the clustering parameters.
type Params struct {
	// Q is the per-dimension error bound q_xyz; cells have side 2Q.
	Q float64
	// K scales the neighborhood radius: ε = K·Q. The paper fixes K = 10.
	K int
	// MinPts is the core-point neighbor threshold. Zero means the
	// surface-bound default (see DefaultMinPts).
	MinPts int
	// Parallel shards the classifiers' key construction, window sweeps,
	// and per-cell scans across all CPUs. The result is identical to the
	// serial run.
	Parallel bool
}

// DefaultParams returns the default parameter choices for error bound q:
// k = 10 as in the paper, and the surface variant of the paper's minPts
// derivation (see DefaultMinPts).
func DefaultParams(q float64) Params {
	p := Params{Q: q, K: 10}
	p.MinPts = p.DefaultMinPts()
	return p
}

// DefaultMinPts computes ⌈πK²/4⌉ — the leaf capacity of the ε-sphere's
// great-disk cross-section. The paper derives minPts as the number of
// non-empty leaf cells the ε-sphere can hold, ⌈πK³/6⌉ (§3.2), but LiDAR
// points lie on 2D surfaces: even a perfectly sampled wall fills only a
// disk through the sphere, so the volumetric bound is unreachable and
// would classify every scan as sparse. The surface bound keeps the
// derivation's intent — "the sphere around a core point is covered by a
// sufficient number of non-empty leaf nodes" — for surface-sampled data,
// and marks dense exactly the regions whose sample spacing is below the
// octree leaf size, the regime the octree compresses best. The paper's
// volumetric value remains available via the MinPts field.
func (p Params) DefaultMinPts() int {
	k := float64(p.K)
	return int(math.Ceil(math.Pi * k * k / 4))
}

// VolumetricMinPts computes the paper's literal ⌈πK³/6⌉ bound.
func (p Params) VolumetricMinPts() int {
	k := float64(p.K)
	return int(math.Ceil(math.Pi * k * k * k / 6))
}

// Eps returns the neighborhood radius ε = K·Q.
func (p Params) Eps() float64 { return float64(p.K) * p.Q }

func (p Params) minPts() int {
	if p.MinPts > 0 {
		return p.MinPts
	}
	return p.DefaultMinPts()
}

// Result is the outcome of classification.
type Result struct {
	// Dense[i] reports whether point i was classified as dense.
	Dense []bool
	// NumDense counts the dense points.
	NumDense int
	// NumDenseCells counts the grid cells marked dense.
	NumDenseCells int
}

// Split partitions the cloud indices into dense and sparse lists.
func (r Result) Split() (dense, sparse []int) {
	for i, d := range r.Dense {
		if d {
			dense = append(dense, i)
		} else {
			sparse = append(sparse, i)
		}
	}
	return dense, sparse
}

// Cell keys pack three 21-bit axis indices into an int64 (or, padded, into
// a canonical uint64 — see packPadded in window.go). Axis values are
// offsets from the cloud minimum, hence non-negative, and real LiDAR
// scenes stay far below the 2^21 per-axis limit.
type cellID = int64

const axisBits = 21

// cellStepX and cellStepY advance a packed key by one cell along x or y;
// z steps are ±1.
const (
	cellStepX = int64(1) << (2 * axisBits)
	cellStepY = int64(1) << axisBits
)

func packCell(x, y, z int64) cellID {
	return x<<(2*axisBits) | y<<axisBits | z
}

// grid buckets points into cells of side 2Q anchored at the cloud minimum,
// mirroring the octree leaf layout. The layout is a sorted CSR: cell keys
// ascending in keys, each cell's point indices in ptIdx[start[j]:start[j+1]].
// Window scans walk contiguous key ranges found by binary search; single-
// cell membership goes through the open-addressing lookup (fastmap.go),
// which maps a key to its run index. pad is the canonical-key axis offset
// and bounds the window radius m the grid may be probed with.
type grid struct {
	keys   []uint64
	start  []int32
	ptIdx  []int32
	lookup *cellMap
	min    geom.Point
	side   float64
	pad    int64
}

// buildGrid sorts the cloud into the CSR layout. pad must be at least the
// largest window radius (in cells) later probes will use.
func buildGrid(pc geom.PointCloud, q float64, pad int64) *grid {
	g := &grid{
		min:  geom.Bounds(pc).Min,
		side: 2 * q,
		pad:  pad,
	}
	n := len(pc)
	keys := make([]uint64, n)
	g.ptIdx = make([]int32, n)
	for i, p := range pc {
		keys[i] = g.cellOf(p)
		g.ptIdx[i] = int32(i)
	}
	radix.Sort(keys, g.ptIdx, nil)
	g.keys = keys[:0]
	g.start = make([]int32, 0, n/2+2)
	for i := 0; i < n; {
		j := i + 1
		for j < n && keys[j] == keys[i] {
			j++
		}
		g.keys = append(g.keys, keys[i])
		g.start = append(g.start, int32(i))
		i = j
	}
	g.start = append(g.start, int32(n))
	g.lookup = newCellMap(len(g.keys))
	for run, k := range g.keys {
		g.lookup.add(cellID(k), int32(run)+1)
	}
	return g
}

// cellOf returns the canonical padded key of the cell containing p.
func (g *grid) cellOf(p geom.Point) uint64 {
	return packPadded(
		int64((p.X-g.min.X)/g.side),
		int64((p.Y-g.min.Y)/g.side),
		int64((p.Z-g.min.Z)/g.side),
		g.pad)
}

// run returns the CSR run index of the cell with the given key, or -1.
func (g *grid) run(key uint64) int {
	return int(g.lookup.get(cellID(key))) - 1
}

// cellPoints returns the point indices of run j.
func (g *grid) cellPoints(j int) []int32 {
	return g.ptIdx[g.start[j] : g.start[j+1]]
}

// runRange returns the half-open run interval [i0, i1) of cells with keys
// in [lo, hi].
func (g *grid) runRange(lo, hi uint64) (int, int) {
	i0 := sort.Search(len(g.keys), func(i int) bool { return g.keys[i] >= lo })
	i1 := i0
	for i1 < len(g.keys) && g.keys[i1] <= hi {
		i1++
	}
	return i0, i1
}

// countNeighbors counts points within eps of p, stopping early once the
// count reaches limit. The scan covers all cells intersecting the ε-ball:
// for each (dx, dy) window column the z range is one contiguous key range,
// found by binary search and walked sequentially.
func (g *grid) countNeighbors(pc geom.PointCloud, p geom.Point, eps float64, limit int) int {
	m := int64(math.Ceil(eps / g.side))
	c := g.cellOf(p)
	eps2 := eps * eps
	count := 0
	for dx := -m; dx <= m; dx++ {
		for dy := -m; dy <= m; dy++ {
			base := c + uint64(dx*cellStepX+dy*cellStepY)
			i0, i1 := g.runRange(base-uint64(m), base+uint64(m))
			for j := i0; j < i1; j++ {
				for _, i := range g.cellPoints(j) {
					if pc[i].Dist2(p) <= eps2 {
						count++
						if count >= limit {
							return count
						}
					}
				}
			}
		}
	}
	return count
}

// neighbors appends to dst the indices of all points within eps of p.
func (g *grid) neighbors(pc geom.PointCloud, p geom.Point, eps float64, dst []int32) []int32 {
	m := int64(math.Ceil(eps / g.side))
	c := g.cellOf(p)
	eps2 := eps * eps
	for dx := -m; dx <= m; dx++ {
		for dy := -m; dy <= m; dy++ {
			base := c + uint64(dx*cellStepX+dy*cellStepY)
			i0, i1 := g.runRange(base-uint64(m), base+uint64(m))
			for j := i0; j < i1; j++ {
				for _, i := range g.cellPoints(j) {
					if pc[i].Dist2(p) <= eps2 {
						dst = append(dst, i)
					}
				}
			}
		}
	}
	return dst
}
