// Package cluster implements DBGC's density-based point classification
// (§3.2): the exact cell-based clustering adapted from DBSCAN, the O(n)
// approximate variant of §4.3, and a reference DBSCAN used to validate
// both. Cells are octree leaf cells of side 2q; ε = k·q with k = 10 as in
// the paper, and minPts defaults to the surface variant of the paper's
// leaf-capacity derivation (see DefaultMinPts).
package cluster

import (
	"math"

	"dbgc/internal/geom"
)

// Params holds the clustering parameters.
type Params struct {
	// Q is the per-dimension error bound q_xyz; cells have side 2Q.
	Q float64
	// K scales the neighborhood radius: ε = K·Q. The paper fixes K = 10.
	K int
	// MinPts is the core-point neighbor threshold. Zero means the
	// surface-bound default (see DefaultMinPts).
	MinPts int
	// Parallel runs the approximate classifier's window scans on all
	// CPUs. The result is identical to the serial run.
	Parallel bool
}

// DefaultParams returns the default parameter choices for error bound q:
// k = 10 as in the paper, and the surface variant of the paper's minPts
// derivation (see DefaultMinPts).
func DefaultParams(q float64) Params {
	p := Params{Q: q, K: 10}
	p.MinPts = p.DefaultMinPts()
	return p
}

// DefaultMinPts computes ⌈πK²/4⌉ — the leaf capacity of the ε-sphere's
// great-disk cross-section. The paper derives minPts as the number of
// non-empty leaf cells the ε-sphere can hold, ⌈πK³/6⌉ (§3.2), but LiDAR
// points lie on 2D surfaces: even a perfectly sampled wall fills only a
// disk through the sphere, so the volumetric bound is unreachable and
// would classify every scan as sparse. The surface bound keeps the
// derivation's intent — "the sphere around a core point is covered by a
// sufficient number of non-empty leaf nodes" — for surface-sampled data,
// and marks dense exactly the regions whose sample spacing is below the
// octree leaf size, the regime the octree compresses best. The paper's
// volumetric value remains available via the MinPts field.
func (p Params) DefaultMinPts() int {
	k := float64(p.K)
	return int(math.Ceil(math.Pi * k * k / 4))
}

// VolumetricMinPts computes the paper's literal ⌈πK³/6⌉ bound.
func (p Params) VolumetricMinPts() int {
	k := float64(p.K)
	return int(math.Ceil(math.Pi * k * k * k / 6))
}

// Eps returns the neighborhood radius ε = K·Q.
func (p Params) Eps() float64 { return float64(p.K) * p.Q }

func (p Params) minPts() int {
	if p.MinPts > 0 {
		return p.MinPts
	}
	return p.DefaultMinPts()
}

// Result is the outcome of classification.
type Result struct {
	// Dense[i] reports whether point i was classified as dense.
	Dense []bool
	// NumDense counts the dense points.
	NumDense int
	// NumDenseCells counts the grid cells marked dense.
	NumDenseCells int
}

// Split partitions the cloud indices into dense and sparse lists.
func (r Result) Split() (dense, sparse []int) {
	for i, d := range r.Dense {
		if d {
			dense = append(dense, i)
		} else {
			sparse = append(sparse, i)
		}
	}
	return dense, sparse
}

// Cell keys pack three 21-bit axis indices into an int64. Axis values are
// offsets from the cloud minimum, hence non-negative; probe keys past the
// grid boundary borrow across fields and land on phantom cells no real
// cell can alias (real axis values stay far below 2^21).
type cellID = int64

const axisBits = 21

// cellStepX and cellStepY advance a packed key by one cell along x or y;
// z steps are ±1.
const (
	cellStepX = int64(1) << (2 * axisBits)
	cellStepY = int64(1) << axisBits
)

func packCell(x, y, z int64) cellID {
	return x<<(2*axisBits) | y<<axisBits | z
}

// grid buckets points into cells of side 2Q anchored at the cloud minimum,
// mirroring the octree leaf layout.
type grid struct {
	cells map[cellID][]int32
	min   geom.Point
	side  float64
}

func buildGrid(pc geom.PointCloud, q float64) *grid {
	g := &grid{
		cells: make(map[cellID][]int32, len(pc)/2+1),
		min:   geom.Bounds(pc).Min,
		side:  2 * q,
	}
	for i, p := range pc {
		id := g.cellOf(p)
		g.cells[id] = append(g.cells[id], int32(i))
	}
	return g
}

func (g *grid) cellOf(p geom.Point) cellID {
	return packCell(
		int64((p.X-g.min.X)/g.side),
		int64((p.Y-g.min.Y)/g.side),
		int64((p.Z-g.min.Z)/g.side),
	)
}

// countNeighbors counts points within eps of p, stopping early once the
// count reaches limit. The scan covers all cells intersecting the ε-ball.
func (g *grid) countNeighbors(pc geom.PointCloud, p geom.Point, eps float64, limit int) int {
	m := int64(math.Ceil(eps / g.side))
	c := g.cellOf(p)
	eps2 := eps * eps
	count := 0
	for dx := -m; dx <= m; dx++ {
		for dy := -m; dy <= m; dy++ {
			base := c + dx*cellStepX + dy*cellStepY
			for dz := -m; dz <= m; dz++ {
				ids, ok := g.cells[base+dz]
				if !ok {
					continue
				}
				for _, i := range ids {
					if pc[i].Dist2(p) <= eps2 {
						count++
						if count >= limit {
							return count
						}
					}
				}
			}
		}
	}
	return count
}

// neighbors appends to dst the indices of all points within eps of p.
func (g *grid) neighbors(pc geom.PointCloud, p geom.Point, eps float64, dst []int32) []int32 {
	m := int64(math.Ceil(eps / g.side))
	c := g.cellOf(p)
	eps2 := eps * eps
	for dx := -m; dx <= m; dx++ {
		for dy := -m; dy <= m; dy++ {
			base := c + dx*cellStepX + dy*cellStepY
			for dz := -m; dz <= m; dz++ {
				ids, ok := g.cells[base+dz]
				if !ok {
					continue
				}
				for _, i := range ids {
					if pc[i].Dist2(p) <= eps2 {
						dst = append(dst, i)
					}
				}
			}
		}
	}
	return dst
}
