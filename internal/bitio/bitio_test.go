package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	var w Writer
	pattern := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type field struct {
		v uint64
		n uint
	}
	var fields []field
	var w Writer
	for i := 0; i < 500; i++ {
		n := uint(rng.Intn(65))
		v := rng.Uint64()
		if n < 64 {
			v &= (1 << n) - 1
		}
		fields = append(fields, field{v, n})
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, f := range fields {
		got, err := r.ReadBits(f.n)
		if err != nil {
			t.Fatalf("field %d: %v", i, err)
		}
		if got != f.v {
			t.Fatalf("field %d = %#x, want %#x (n=%d)", i, got, f.v, f.n)
		}
	}
}

func TestBytesPadding(t *testing.T) {
	var w Writer
	w.WriteBit(1)
	out := w.Bytes()
	if len(out) != 1 || out[0] != 0x80 {
		t.Fatalf("Bytes() = %x, want 80", out)
	}
}

func TestLen(t *testing.T) {
	var w Writer
	for i := 0; i < 13; i++ {
		w.WriteBit(i & 1)
	}
	if w.Len() != 13 {
		t.Fatalf("Len = %d, want 13", w.Len())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Fatalf("Remaining = %d, want 11", r.Remaining())
	}
}

func TestByteRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		var w Writer
		for _, b := range data {
			w.WriteByte(b)
		}
		got := w.Bytes()
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xabcd, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after reset = %d", w.Len())
	}
	w.WriteBits(0x5, 3)
	out := w.Bytes()
	if len(out) != 1 || out[0] != 0xa0 {
		t.Fatalf("post-reset bytes = %x, want a0", out)
	}
}
