// Package bitio implements bit-level reading and writing on top of byte
// slices. It is the lowest-level building block of every coder in DBGC:
// octree occupancy codes, quadtree occupancy codes, and the arithmetic coder
// all produce or consume individual bits.
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a reader runs out of bits.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bit stream")

// Writer accumulates bits most-significant-bit first into an internal byte
// buffer. The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte
	nCur uint // number of bits currently held in cur (0..7)
}

// WriteBit appends a single bit (any nonzero b counts as 1).
func (w *Writer) WriteBit(b int) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the n least-significant bits of v, most significant
// first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(int((v >> uint(i)) & 1))
	}
}

// WriteByte appends a full byte.
func (w *Writer) WriteByte(b byte) error {
	w.WriteBits(uint64(b), 8)
	return nil
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes flushes any partial byte (padding with zero bits) and returns the
// accumulated buffer. The writer remains usable; further writes continue
// from the flushed state, so call Bytes once when encoding is finished.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.cur <<= 8 - w.nCur
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader consumes bits most-significant-bit first from a byte slice.
type Reader struct {
	buf []byte
	pos int  // byte position
	bit uint // bit position within buf[pos] (0 = MSB)
}

// NewReader returns a Reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repositions the reader at the start of buf, replacing any previous
// buffer.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos, r.bit = 0, 0
}

// ReadBit returns the next bit (0 or 1).
func (r *Reader) ReadBit() (int, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrUnexpectedEOF
	}
	b := int(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits returns the next n bits as the low bits of a uint64, most
// significant first. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits n=%d out of range", n)
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadByte returns the next 8 bits as a byte.
func (r *Reader) ReadByte() (byte, error) {
	v, err := r.ReadBits(8)
	return byte(v), err
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}
