package kdtree

import (
	"errors"
	"math"
	"testing"

	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// TestHostileHeaderCount is the regression test for the unchecked
// header-count allocation: a stream whose leading varint claims MaxInt32
// points must fail fast under a budget instead of preallocating gigabytes
// or walking billions of split symbols.
func TestHostileHeaderCount(t *testing.T) {
	pc := geom.PointCloud{{X: 1, Y: 2, Z: 0.5}, {X: -3, Y: 0.5, Z: 1}, {X: 4, Y: -1, Z: 0.2}}
	enc, err := Encode(pc, 12)
	if err != nil {
		t.Fatal(err)
	}
	_, used, err := varint.Uint(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	hostile := varint.AppendUint(nil, uint64(math.MaxInt32))
	hostile = append(hostile, enc.Data[used:]...)

	b := declimits.New(declimits.Limits{MaxPoints: 1 << 16, MaxNodes: 1 << 20, MemBudget: 32 << 20})
	if _, err := DecodeLimited(hostile, b); !errors.Is(err, declimits.ErrLimit) {
		t.Fatalf("MaxInt32 point count: want ErrLimit, got %v", err)
	}

	// A count just past MaxInt32 must be rejected as corrupt even without
	// a budget (the uint64-wrap class).
	wrap := varint.AppendUint(nil, uint64(math.MaxInt32)+1)
	wrap = append(wrap, enc.Data[used:]...)
	if _, err := Decode(wrap); err == nil {
		t.Fatal("count past MaxInt32 decoded without error")
	}
}
