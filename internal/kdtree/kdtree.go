// Package kdtree implements a Draco-style kd-tree geometry coder, the
// comparison baseline the paper labels "Draco" (§4.1). Coordinates are
// quantized with qb bits per dimension over the bounding cube (the paper's
// relation q_xyz = Ω / 2^qb), then the point set is recursively split at
// cell midpoints; at each split only the number of points falling into the
// lower half is transmitted, coded uniformly over [0, n].
package kdtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed kd-tree stream.
var ErrCorrupt = errors.New("kdtree: corrupt stream")

// MaxQuantBits caps per-dimension quantization. 30 bits per axis exceeds
// any realistic precision demand and keeps intermediate products in range.
const MaxQuantBits = 30

// QuantBitsFor returns the number of quantization bits needed so that the
// reconstruction error stays within q per dimension for a cloud of maximum
// extent omega, following the paper's q_xyz = Ω/2^qb convention.
func QuantBitsFor(omega, q float64) int {
	if omega <= q {
		return 1
	}
	qb := int(math.Ceil(math.Log2(omega / q)))
	if qb < 1 {
		qb = 1
	}
	if qb > MaxQuantBits {
		qb = MaxQuantBits
	}
	return qb
}

// Encoded is the output of Encode.
type Encoded struct {
	Data []byte
	// DecodedOrder maps decoded position j to the original point index it
	// reconstructs.
	DecodedOrder []int
}

// Encode compresses points with qb quantization bits per dimension.
func Encode(points geom.PointCloud, qb int) (Encoded, error) {
	if qb < 1 || qb > MaxQuantBits {
		return Encoded{}, fmt.Errorf("kdtree: quantization bits %d out of [1,%d]", qb, MaxQuantBits)
	}
	var enc Encoded
	out := make([]byte, 0, 64)
	out = varint.AppendUint(out, uint64(len(points)))
	out = varint.AppendUint(out, uint64(qb))
	if len(points) == 0 {
		enc.Data = out
		return enc, nil
	}
	cube := geom.Bounds(points).Cube()
	side := cube.MaxDim()
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cube.Min.X))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cube.Min.Y))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cube.Min.Z))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(side))

	// Quantize to integer cells in [0, 2^qb).
	n := len(points)
	cells := make([][3]uint32, n)
	maxCell := uint32(1)<<uint(qb) - 1
	scale := 0.0
	if side > 0 {
		scale = float64(uint64(1)<<uint(qb)) / side
	}
	for i, p := range points {
		cells[i] = [3]uint32{
			quantize(p.X-cube.Min.X, scale, maxCell),
			quantize(p.Y-cube.Min.Y, scale, maxCell),
			quantize(p.Z-cube.Min.Z, scale, maxCell),
		}
	}

	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	e := arith.NewEncoder()
	var order []int
	encodeCell(e, cells, idx, [3]uint32{0, 0, 0}, [3]uint32{maxCell + 1, maxCell + 1, maxCell + 1}, &order)
	payload := e.Finish()
	out = varint.AppendUint(out, uint64(len(payload)))
	out = append(out, payload...)
	enc.Data = out
	enc.DecodedOrder = order
	return enc, nil
}

func quantize(v, scale float64, maxCell uint32) uint32 {
	c := uint32(v * scale)
	if c > maxCell {
		c = maxCell
	}
	return c
}

// encodeCell recursively encodes the points of one cell. lo is inclusive,
// hi exclusive, in quantized units. The split axis is always the widest
// remaining axis (ties broken by index), which the decoder replays.
func encodeCell(e *arith.Encoder, cells [][3]uint32, idx []int32, lo, hi [3]uint32, order *[]int) {
	axis, width := widestAxis(lo, hi)
	if width <= 1 {
		// Fully resolved cell: all points here share one quantized
		// location; nothing further to transmit.
		for _, i := range idx {
			*order = append(*order, int(i))
		}
		return
	}
	mid := lo[axis] + width/2
	var left, right []int32
	for _, i := range idx {
		if cells[i][axis] < mid {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	e.EncodeUniform(uint32(len(left)), uint32(len(idx))+1)
	if len(left) > 0 {
		nhi := hi
		nhi[axis] = mid
		encodeCell(e, cells, left, lo, nhi, order)
	}
	if len(right) > 0 {
		nlo := lo
		nlo[axis] = mid
		encodeCell(e, cells, right, nlo, hi, order)
	}
}

func widestAxis(lo, hi [3]uint32) (axis int, width uint32) {
	for a := 0; a < 3; a++ {
		if w := hi[a] - lo[a]; w > width {
			axis, width = a, w
		}
	}
	return axis, width
}

// Decode reconstructs the cloud from an Encode stream. Points are emitted
// at quantized cell centers.
func Decode(data []byte) (geom.PointCloud, error) {
	return DecodeLimited(data, nil)
}

// DecodeLimited is Decode charging decoded points and split symbols against
// b. A nil budget is unlimited. Panics on hostile bytes are recovered into
// ErrCorrupt-wrapped errors.
func DecodeLimited(data []byte, b *declimits.Budget) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	n64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("kdtree: point count: %w", err)
	}
	data = data[used:]
	qb64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("kdtree: qb: %w", err)
	}
	data = data[used:]
	if qb64 < 1 || qb64 > MaxQuantBits {
		return nil, fmt.Errorf("%w: qb=%d", ErrCorrupt, qb64)
	}
	if n64 == 0 {
		return geom.PointCloud{}, nil
	}
	if n64 > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: point count overflow", ErrCorrupt)
	}
	if len(data) < 32 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	min := geom.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(data)),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(data[8:])),
		Z: math.Float64frombits(binary.LittleEndian.Uint64(data[16:])),
	}
	side := math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	data = data[32:]
	if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("%w: invalid side %v", ErrCorrupt, side)
	}
	plen, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("kdtree: payload length: %w", err)
	}
	data = data[used:]
	if plen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: payload truncated", ErrCorrupt)
	}

	qb := int(qb64)
	n := int(n64)
	if err := b.Points(int64(n)); err != nil {
		return nil, err
	}
	d := arith.NewDecoder(data[:plen])
	maxCell := uint32(1)<<uint(qb) - 1
	step := side / float64(uint64(1)<<uint(qb))

	// Clamp the header-declared count before it becomes an allocation
	// capacity: without the clamp a ~10-byte stream declaring MaxInt32
	// points attempts a multi-GB up-front allocation. Appends grow past
	// the clamp when the stream really carries that many points.
	out := make(geom.PointCloud, 0, declimits.CapPrealloc(n64))
	var walk func(count int, lo, hi [3]uint32) error
	walk = func(count int, lo, hi [3]uint32) error {
		axis, width := widestAxis(lo, hi)
		if width <= 1 {
			p := geom.Point{
				X: min.X + (float64(lo[0])+0.5)*step,
				Y: min.Y + (float64(lo[1])+0.5)*step,
				Z: min.Z + (float64(lo[2])+0.5)*step,
			}
			for k := 0; k < count; k++ {
				out = append(out, p)
			}
			return nil
		}
		if err := b.Nodes(1); err != nil {
			return err
		}
		nl, err := d.DecodeUniform(uint32(count) + 1)
		if err != nil {
			return err
		}
		nLeft := int(nl)
		if nLeft > count {
			return ErrCorrupt
		}
		mid := lo[axis] + width/2
		if nLeft > 0 {
			nhi := hi
			nhi[axis] = mid
			if err := walk(nLeft, lo, nhi); err != nil {
				return err
			}
		}
		if count-nLeft > 0 {
			nlo := lo
			nlo[axis] = mid
			if err := walk(count-nLeft, nlo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n, [3]uint32{0, 0, 0}, [3]uint32{maxCell + 1, maxCell + 1, maxCell + 1}); err != nil {
		return nil, fmt.Errorf("kdtree: %w", err)
	}
	if len(out) != n {
		return nil, fmt.Errorf("%w: decoded %d points, want %d", ErrCorrupt, len(out), n)
	}
	return out, nil
}
