package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"dbgc/internal/geom"
)

func randomCloud(n int, spread float64, seed int64) geom.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	pc := make(geom.PointCloud, n)
	for i := range pc {
		pc[i] = geom.Point{
			X: rng.Float64()*spread - spread/2,
			Y: rng.Float64()*spread - spread/2,
			Z: rng.Float64() * spread / 5,
		}
	}
	return pc
}

func checkBound(t *testing.T, orig, dec geom.PointCloud, order []int, q float64) {
	t.Helper()
	if len(dec) != len(orig) || len(order) != len(orig) {
		t.Fatalf("size mismatch: dec=%d order=%d orig=%d", len(dec), len(order), len(orig))
	}
	seen := make([]bool, len(orig))
	for j, oi := range order {
		if oi < 0 || oi >= len(orig) || seen[oi] {
			t.Fatalf("order not a permutation at %d", j)
		}
		seen[oi] = true
		if d := orig[oi].ChebDist(dec[j]); d > q+1e-9 {
			t.Fatalf("point %d error %v exceeds %v", oi, d, q)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	pc := randomCloud(3000, 80, 1)
	omega := geom.Bounds(pc).MaxDim()
	for _, q := range []float64{0.02, 0.005, 0.2} {
		qb := QuantBitsFor(omega, q)
		enc, err := Encode(pc, qb)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatal(err)
		}
		checkBound(t, pc, dec, enc.DecodedOrder, q)
	}
}

func TestEmpty(t *testing.T) {
	enc, err := Encode(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points", len(dec))
	}
}

func TestSingleAndDuplicates(t *testing.T) {
	p := geom.Point{X: 1.5, Y: -2.25, Z: 0.125}
	pc := geom.PointCloud{p, p, p}
	enc, err := Encode(pc, 12)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("decoded %d, want 3", len(dec))
	}
	// All-identical cloud has a zero-sized cube; decode must return the
	// exact location.
	if dec[0].Dist(p) > 1e-9 {
		t.Fatalf("decoded %v, want %v", dec[0], p)
	}
}

func TestInvalidQB(t *testing.T) {
	if _, err := Encode(geom.PointCloud{{X: 1}}, 0); err == nil {
		t.Fatal("expected error for qb=0")
	}
	if _, err := Encode(geom.PointCloud{{X: 1}}, MaxQuantBits+1); err == nil {
		t.Fatal("expected error for qb too large")
	}
}

func TestQuantBitsFor(t *testing.T) {
	if qb := QuantBitsFor(100, 0.02); qb != int(math.Ceil(math.Log2(100/0.02))) {
		t.Fatalf("QuantBitsFor(100,0.02) = %d", qb)
	}
	if qb := QuantBitsFor(0.01, 0.02); qb != 1 {
		t.Fatalf("QuantBitsFor small omega = %d, want 1", qb)
	}
	if qb := QuantBitsFor(1e12, 1e-12); qb != MaxQuantBits {
		t.Fatalf("QuantBitsFor must cap at %d, got %d", MaxQuantBits, qb)
	}
}

func TestCorruptStreams(t *testing.T) {
	pc := randomCloud(400, 50, 3)
	enc, err := Encode(pc, 14)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc.Data); cut += 5 {
		_, err := Decode(enc.Data[:cut])
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func BenchmarkEncode100k(b *testing.B) {
	pc := randomCloud(100000, 120, 7)
	qb := QuantBitsFor(geom.Bounds(pc).MaxDim(), 0.02)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(pc, qb); err != nil {
			b.Fatal(err)
		}
	}
}
