// Package radix implements least-significant-digit radix sorting of uint64
// keys with an optional int32 payload. The encode hot paths sort packed
// grid-cell keys and quantized coordinates, whose distributions make a
// byte-digit counting sort several times faster than the comparison sorts
// it replaces: each pass is a sequential counting scan plus a sequential
// scatter, and passes whose digit is constant across all keys are skipped
// entirely (packed keys leave most high bytes unused).
package radix

// Scratch holds the ping-pong buffers of one sort. A zero Scratch is ready
// to use; reusing one across sorts avoids the per-sort allocations.
type Scratch struct {
	keys    []uint64
	payload []int32
}

// Sort sorts keys ascending, permuting payload alongside when it is
// non-nil (payload must then have the same length). The sort is stable:
// equal keys keep their input order. s may be nil, in which case the
// temporary buffers are allocated for this call only.
func Sort(keys []uint64, payload []int32, s *Scratch) {
	n := len(keys)
	if payload != nil && len(payload) != n {
		panic("radix: payload length mismatch")
	}
	if n < 2 {
		return
	}
	if s == nil {
		s = &Scratch{}
	}
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
	}
	tmpKeys := s.keys[:n]
	var tmpPayload []int32
	if payload != nil {
		if cap(s.payload) < n {
			s.payload = make([]int32, n)
		}
		tmpPayload = s.payload[:n]
	}

	// One histogram scan covers all eight digits.
	var hist [8][256]int32
	for _, k := range keys {
		hist[0][k&0xff]++
		hist[1][(k>>8)&0xff]++
		hist[2][(k>>16)&0xff]++
		hist[3][(k>>24)&0xff]++
		hist[4][(k>>32)&0xff]++
		hist[5][(k>>40)&0xff]++
		hist[6][(k>>48)&0xff]++
		hist[7][(k>>56)&0xff]++
	}

	src, dst := keys, tmpKeys
	psrc, pdst := payload, tmpPayload
	for d := 0; d < 8; d++ {
		h := &hist[d]
		// Skip digits that are constant across the input: the scatter
		// would be the identity permutation.
		if h[src[0]>>(uint(d)*8)&0xff] == int32(n) {
			continue
		}
		var off [256]int32
		var sum int32
		for b := 0; b < 256; b++ {
			off[b] = sum
			sum += h[b]
		}
		shift := uint(d) * 8
		if psrc != nil {
			for i, k := range src {
				j := off[(k>>shift)&0xff]
				off[(k>>shift)&0xff]++
				dst[j] = k
				pdst[j] = psrc[i]
			}
			psrc, pdst = pdst, psrc
		} else {
			for _, k := range src {
				j := off[(k>>shift)&0xff]
				off[(k>>shift)&0xff]++
				dst[j] = k
			}
		}
		src, dst = dst, src
	}
	// An odd number of scatter passes leaves the result in the scratch
	// buffers; copy it back into the caller's slices.
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
	if psrc != nil && &psrc[0] != &payload[0] {
		copy(payload, psrc)
	}
}
