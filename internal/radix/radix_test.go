package radix

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		keys := make([]uint64, n)
		for i := range keys {
			switch trial % 3 {
			case 0:
				keys[i] = rng.Uint64()
			case 1:
				keys[i] = uint64(rng.Intn(16)) // heavy duplicates
			default:
				keys[i] = uint64(rng.Intn(1 << 20)) // low bits only
			}
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		Sort(keys, nil, nil)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("trial %d: keys[%d] = %d, want %d", trial, i, keys[i], want[i])
			}
		}
	}
}

func TestSortStableWithPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var s Scratch
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(1500)
		keys := make([]uint64, n)
		payload := make([]int32, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(64)) // many ties to exercise stability
			payload[i] = int32(i)
		}
		orig := append([]uint64(nil), keys...)
		Sort(keys, payload, &s)
		if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
			t.Fatalf("trial %d: keys not sorted", trial)
		}
		for i := range keys {
			if orig[payload[i]] != keys[i] {
				t.Fatalf("trial %d: payload[%d] = %d does not match key %d", trial, i, payload[i], keys[i])
			}
		}
		// Stability: equal keys keep ascending payload order.
		for i := 1; i < n; i++ {
			if keys[i] == keys[i-1] && payload[i] < payload[i-1] {
				t.Fatalf("trial %d: unstable at %d", trial, i)
			}
		}
	}
}

func TestSortEdgeCases(t *testing.T) {
	Sort(nil, nil, nil)
	Sort([]uint64{7}, []int32{0}, nil)
	keys := []uint64{5, 5, 5}
	payload := []int32{0, 1, 2}
	Sort(keys, payload, nil)
	for i, p := range payload {
		if p != int32(i) {
			t.Fatalf("constant keys permuted payload: %v", payload)
		}
	}
}

func BenchmarkSortPacked(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	base := make([]uint64, 1<<17)
	for i := range base {
		base[i] = uint64(rng.Intn(1<<12))<<42 | uint64(rng.Intn(1<<12))<<21 | uint64(rng.Intn(1<<12))
	}
	keys := make([]uint64, len(base))
	payload := make([]int32, len(base))
	var s Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		for j := range payload {
			payload[j] = int32(j)
		}
		Sort(keys, payload, &s)
	}
}
