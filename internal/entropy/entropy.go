// Package entropy computes the Shannon entropy of value sequences as defined
// in §2.1 of the paper. DBGC's design decisions (coordinate scaling, delta
// encoding, polyline organization) are all justified as entropy reductions;
// the test suite and the ablation benchmarks use this package to verify the
// claimed reductions actually happen.
package entropy

import "math"

// OfInts returns the Shannon entropy, in bits per value, of the sequence.
// An empty or constant sequence has zero entropy.
func OfInts(vs []int64) float64 {
	if len(vs) == 0 {
		return 0
	}
	freq := make(map[int64]int, 64)
	for _, v := range vs {
		freq[v]++
	}
	return fromCounts(freq, len(vs))
}

// OfBytes returns the Shannon entropy, in bits per byte, of the buffer.
func OfBytes(b []byte) float64 {
	if len(b) == 0 {
		return 0
	}
	var counts [256]int
	for _, c := range b {
		counts[c]++
	}
	n := float64(len(b))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

func fromCounts(freq map[int64]int, n int) float64 {
	var h float64
	fn := float64(n)
	for _, c := range freq {
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	return h
}

// Delta transforms vs by delta encoding (Definition 2.3): the first value is
// kept, every later value is replaced by its difference from the preceding
// one.
func Delta(vs []int64) []int64 {
	out := make([]int64, len(vs))
	if len(vs) == 0 {
		return out
	}
	out[0] = vs[0]
	for i := 1; i < len(vs); i++ {
		out[i] = vs[i] - vs[i-1]
	}
	return out
}

// Undelta inverts Delta.
func Undelta(vs []int64) []int64 {
	out := make([]int64, len(vs))
	if len(vs) == 0 {
		return out
	}
	out[0] = vs[0]
	for i := 1; i < len(vs); i++ {
		out[i] = out[i-1] + vs[i]
	}
	return out
}
