package entropy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOfIntsUniform(t *testing.T) {
	vs := []int64{0, 1, 2, 3}
	if h := OfInts(vs); math.Abs(h-2) > 1e-12 {
		t.Fatalf("entropy of 4 distinct values = %v, want 2", h)
	}
}

func TestOfIntsConstant(t *testing.T) {
	if h := OfInts([]int64{7, 7, 7}); h != 0 {
		t.Fatalf("constant entropy = %v, want 0", h)
	}
}

func TestOfIntsEmpty(t *testing.T) {
	if h := OfInts(nil); h != 0 {
		t.Fatalf("empty entropy = %v, want 0", h)
	}
}

func TestOfBytesBiased(t *testing.T) {
	// 75/25 split: H = -(0.75 log 0.75 + 0.25 log 0.25) ≈ 0.8113.
	b := make([]byte, 400)
	for i := 300; i < 400; i++ {
		b[i] = 1
	}
	want := -(0.75*math.Log2(0.75) + 0.25*math.Log2(0.25))
	if h := OfBytes(b); math.Abs(h-want) > 1e-12 {
		t.Fatalf("entropy = %v, want %v", h, want)
	}
}

func TestDeltaRoundTripQuick(t *testing.T) {
	f := func(vs []int64) bool {
		// Constrain magnitudes so delta sums cannot overflow int64.
		in := make([]int64, len(vs))
		for i, v := range vs {
			in[i] = v % (1 << 40)
		}
		got := Undelta(Delta(in))
		for i := range in {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaReducesEntropyOnRamp(t *testing.T) {
	// A linear ramp has maximal entropy raw but near-zero after delta —
	// the property §3.5 relies on for azimuthal angles.
	vs := make([]int64, 1000)
	for i := range vs {
		vs[i] = int64(i * 3)
	}
	if hRaw, hDelta := OfInts(vs), OfInts(Delta(vs)); hDelta >= hRaw {
		t.Fatalf("delta entropy %v should be below raw %v", hDelta, hRaw)
	}
}
