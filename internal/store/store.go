// Package store implements the server-side frame storage of the DBGC
// system (Figure 2). The paper's server writes frames to files or to a
// relational database via ODBC; in this stdlib-only build the store is an
// append-only segment file with an in-memory index — one record per frame,
// holding either the compressed bit sequence B or a decompressed cloud.
//
// # Durability contract
//
// Put appends through the OS page cache and does not fsync; a record is
// guaranteed on stable storage only once a later Sync (or Close) returns.
// Open verifies every record's checksum while rebuilding the index and
// truncates the file at the first torn or corrupt record, so after a crash
// the store recovers exactly a durable prefix of the append order: every
// record before the corruption point is intact and indexed, everything
// from it on is discarded. Callers that acknowledge writes to a remote
// peer (see cmd/dbgc-server's -fsync flag) must call Sync before — or
// periodically between — acknowledgements to bound how many acked frames
// a power loss can undo.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Kind of a stored record.
const (
	// KindCompressed marks a record holding a DBGC bit sequence.
	KindCompressed byte = 1
	// KindDecompressed marks a record holding a raw frame (.bin layout).
	KindDecompressed byte = 2
	// KindQuarantined marks a record holding a payload that failed
	// validation on receipt (wire checksum or decode failure). It is
	// kept for forensics, never served to queries, and is shadowed by a
	// later successful Put of the same sequence number.
	KindQuarantined byte = 3
)

// ErrNotFound reports a missing frame.
var ErrNotFound = errors.New("store: frame not found")

// ErrCorrupt reports an unreadable store file.
var ErrCorrupt = errors.New("store: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File is the storage device a Store appends to. *os.File satisfies it via
// Open; tests substitute fault-injecting implementations (see
// faultnet.Disk) to exercise crash recovery.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Size() (int64, error)
	Close() error
}

// osFile adapts *os.File to the File interface.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Store is an append-only frame store. It is safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	f     File
	index map[uint64]recordPos
	end   int64
}

type recordPos struct {
	off  int64
	size uint32
	crc  uint32
	kind byte
}

// record layout: seq (8) | kind (1) | size (4) | crc32c (4) | payload.
const recordHeader = 8 + 1 + 4 + 4

// Open opens or creates a store file and rebuilds the index from its
// contents. When the file is newly created, the parent directory is
// fsynced so a crash immediately after creation cannot lose the directory
// entry — without it the first record could be durable inside a file the
// directory does not reference.
func Open(path string) (*Store, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if created {
		if err := syncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: syncing parent directory: %w", err)
		}
	}
	return OpenWith(osFile{f})
}

// OpenWith builds a Store over an already-open File and rebuilds the index
// from its contents. The caller keeps responsibility for directory-entry
// durability of newly created files (Open handles it for paths).
func OpenWith(f File) (*Store, error) {
	s := &Store{f: f, index: make(map[uint64]recordPos)}
	if err := s.rebuild(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// syncDir fsyncs a directory so recently created entries in it survive a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// rebuild scans the segment file, verifying each record's checksum, and
// truncates at the first torn or corrupt record: a corrupt length field
// would otherwise mis-walk the rest of the segment, and a corrupt payload
// would be silently indexed only to fail at Get. Everything before the
// corruption point survives; everything after it is discarded.
func (s *Store) rebuild() error {
	fileSize, err := s.f.Size()
	if err != nil {
		return err
	}
	var hdr [recordHeader]byte
	off := int64(0)
	for {
		if _, err := s.f.ReadAt(hdr[:], off); err == io.EOF {
			break
		} else if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// Torn final record (crash mid-append): truncate it.
				break
			}
			return err
		}
		seq := binary.LittleEndian.Uint64(hdr[0:])
		kind := hdr[8]
		size := binary.LittleEndian.Uint32(hdr[9:])
		want := binary.LittleEndian.Uint32(hdr[13:])
		next := off + recordHeader + int64(size)
		if next > fileSize || next < off {
			break // torn payload or corrupt length
		}
		sum := crc32.New(castagnoli)
		if _, err := io.Copy(sum, io.NewSectionReader(s.f, off+recordHeader, int64(size))); err != nil {
			break // unreadable payload: treat as corruption
		}
		if sum.Sum32() != want {
			break // corrupt record: stop and truncate here
		}
		s.index[seq] = recordPos{off: off, size: size, crc: want, kind: kind}
		off = next
	}
	s.end = off
	return s.f.Truncate(off)
}

// Put appends a frame record. A later Put with the same sequence number
// shadows the earlier one.
func (s *Store) Put(seq uint64, kind byte, payload []byte) error {
	_, err := s.Append(seq, kind, payload)
	return err
}

// Append is Put returning the segment end offset after the new record —
// the position a replication sender can wait on: once the follower's
// acknowledged watermark reaches end, this record (and everything appended
// before it) is replicated.
func (s *Store) Append(seq uint64, kind byte, payload []byte) (end int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	hdr[8] = kind
	crc := crc32.Checksum(payload, castagnoli)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[13:], crc)
	if _, err := s.f.WriteAt(hdr[:], s.end); err != nil {
		return s.end, fmt.Errorf("store: writing header: %w", err)
	}
	if _, err := s.f.WriteAt(payload, s.end+recordHeader); err != nil {
		return s.end, fmt.Errorf("store: writing payload: %w", err)
	}
	s.index[seq] = recordPos{off: s.end, size: uint32(len(payload)), crc: crc, kind: kind}
	s.end += recordHeader + int64(len(payload))
	return s.end, nil
}

// Get returns the payload and kind of the frame with the given sequence
// number.
func (s *Store) Get(seq uint64) ([]byte, byte, error) {
	s.mu.Lock()
	pos, ok := s.index[seq]
	s.mu.Unlock()
	if !ok {
		return nil, 0, ErrNotFound
	}
	var hdr [recordHeader]byte
	if _, err := s.f.ReadAt(hdr[:], pos.off); err != nil {
		return nil, 0, err
	}
	payload := make([]byte, pos.size)
	if _, err := s.f.ReadAt(payload, pos.off+recordHeader); err != nil {
		return nil, 0, err
	}
	want := binary.LittleEndian.Uint32(hdr[13:])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, 0, ErrCorrupt
	}
	return payload, pos.kind, nil
}

// Kind reports the stored kind of the frame with the given sequence
// number without reading its payload.
func (s *Store) Kind(seq uint64) (byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pos, ok := s.index[seq]
	return pos.kind, ok
}

// Sync flushes all appended records to stable storage. See the package
// comment for the durability contract.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Len returns the number of stored frames.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Seqs returns the stored sequence numbers in unspecified order.
func (s *Store) Seqs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.index))
	for seq := range s.index {
		out = append(out, seq)
	}
	return out
}

// End returns the segment end offset: the append position of the next
// record, and the upper bound of every live record's extent. Replication
// uses it as the "caught up when the follower's watermark reaches here"
// mark.
func (s *Store) End() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// RecordInfo describes one live record without its payload: identity,
// payload checksum, and segment extent in append order. Manifest entries
// are what the anti-entropy scrub compares across replicas.
type RecordInfo struct {
	Seq  uint64
	Kind byte
	Size uint32
	CRC  uint32 // crc32c of the payload, as stored in the record header
	Off  int64  // record start offset
	End  int64  // record end offset (Off + header + Size)
}

// Record is a live record with its payload, as read back for replication.
type Record struct {
	RecordInfo
	Payload []byte
}

// Manifest returns every live record (shadowed duplicates excluded),
// sorted by segment offset — the store's append order restricted to the
// surviving records.
func (s *Store) Manifest() []RecordInfo {
	s.mu.Lock()
	out := make([]RecordInfo, 0, len(s.index))
	for seq, pos := range s.index {
		out = append(out, RecordInfo{
			Seq: seq, Kind: pos.kind, Size: pos.size, CRC: pos.crc,
			Off: pos.off, End: pos.off + recordHeader + int64(pos.size),
		})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// ReadSince returns live records whose start offset is at or past from, in
// append order, stopping after maxBytes of payload (at least one record is
// returned when any qualifies; maxBytes <= 0 means no byte bound). Each
// payload is checksum-verified on read. This is the replication tail: a
// sender keeps a cursor at the end offset of the last shipped record and
// reads forward from it.
func (s *Store) ReadSince(from int64, maxBytes int) ([]Record, error) {
	s.mu.Lock()
	infos := make([]RecordInfo, 0, 8)
	for seq, pos := range s.index {
		if pos.off < from {
			continue
		}
		infos = append(infos, RecordInfo{
			Seq: seq, Kind: pos.kind, Size: pos.size, CRC: pos.crc,
			Off: pos.off, End: pos.off + recordHeader + int64(pos.size),
		})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Off < infos[j].Off })
	out := make([]Record, 0, len(infos))
	budget := maxBytes
	for _, info := range infos {
		if maxBytes > 0 && budget < int(info.Size) && len(out) > 0 {
			break
		}
		payload := make([]byte, info.Size)
		if _, err := s.f.ReadAt(payload, info.Off+recordHeader); err != nil {
			return out, fmt.Errorf("store: reading record %d: %w", info.Seq, err)
		}
		if crc32.Checksum(payload, castagnoli) != info.CRC {
			return out, fmt.Errorf("store: record %d: %w", info.Seq, ErrCorrupt)
		}
		out = append(out, Record{RecordInfo: info, Payload: payload})
		budget -= int(info.Size)
	}
	return out, nil
}

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
