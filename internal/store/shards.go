package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrShardsClosed reports use of a closed shard set.
var ErrShardsClosed = errors.New("store: shards closed")

// shardExt is the file extension of one tenant's segment inside the store
// directory.
const shardExt = ".db"

// Shards manages one Store per tenant inside a store directory
// (dir/<tenant>.db), opened lazily on first use and bounded to MaxOpen
// simultaneously open files: when the bound is hit, the least-recently-used
// idle shard is synced and closed. Shards a caller currently holds via
// Acquire are pinned and never evicted, so eviction can never close a file
// out from under an in-flight append.
type Shards struct {
	dir string
	// MaxOpen bounds simultaneously open shard files (default 64). The
	// bound is soft against pins: if every open shard is pinned, opening
	// one more is allowed rather than failing the ingest.
	maxOpen int
	// OpenFile, when non-nil, opens the backing file for a shard path
	// instead of the default os.OpenFile — the seam the chaos harness
	// uses to put a faultnet.Disk under every shard.
	OpenFile func(path string) (File, error)

	mu     sync.Mutex
	open   map[string]*shard
	useSeq uint64
	closed bool
}

type shard struct {
	st      *Store
	refs    int
	lastUse uint64
}

// OpenShards creates dir if needed (fsyncing its parent, same contract as
// Open) and returns the shard set.
func OpenShards(dir string, maxOpen int) (*Shards, error) {
	if maxOpen <= 0 {
		maxOpen = 64
	}
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := syncDir(filepath.Dir(filepath.Clean(dir))); err != nil {
			return nil, fmt.Errorf("store: syncing parent of %s: %w", dir, err)
		}
	}
	return &Shards{dir: dir, maxOpen: maxOpen, open: make(map[string]*shard)}, nil
}

// Dir returns the store directory.
func (s *Shards) Dir() string { return s.dir }

// Path returns the segment path a tenant maps to.
func (s *Shards) Path(tenant string) string {
	return filepath.Join(s.dir, tenant+shardExt)
}

// Acquire returns the tenant's store, opening it if necessary, and pins it
// until the matching Release. Tenant names must satisfy
// netproto.ValidTenant-style rules; the caller (the ingest server) is
// expected to have validated them already, so here only path traversal is
// rejected outright.
func (s *Shards) Acquire(tenant string) (*Store, error) {
	if strings.ContainsAny(tenant, "/\\") || tenant == "" || tenant[0] == '.' {
		return nil, fmt.Errorf("store: invalid tenant name %q", tenant)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShardsClosed
	}
	s.useSeq++
	if sh, ok := s.open[tenant]; ok {
		sh.refs++
		sh.lastUse = s.useSeq
		return sh.st, nil
	}
	if err := s.evictLocked(len(s.open) + 1 - s.maxOpen); err != nil {
		return nil, err
	}
	path := s.Path(tenant)
	var st *Store
	var err error
	if s.OpenFile != nil {
		var f File
		if f, err = s.OpenFile(path); err == nil {
			st, err = OpenWith(f)
		}
	} else {
		st, err = Open(path)
	}
	if err != nil {
		return nil, fmt.Errorf("store: opening shard %q: %w", tenant, err)
	}
	s.open[tenant] = &shard{st: st, refs: 1, lastUse: s.useSeq}
	return st, nil
}

// Release unpins a store returned by Acquire.
func (s *Shards) Release(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh, ok := s.open[tenant]; ok && sh.refs > 0 {
		sh.refs--
	}
}

// evictLocked closes up to n least-recently-used unpinned shards. Fewer —
// including zero — are closed when everything else is pinned; the open-file
// bound is a target, not a correctness constraint.
func (s *Shards) evictLocked(n int) error {
	for ; n > 0; n-- {
		var victim string
		var oldest uint64
		for name, sh := range s.open {
			if sh.refs > 0 {
				continue
			}
			if victim == "" || sh.lastUse < oldest {
				victim, oldest = name, sh.lastUse
			}
		}
		if victim == "" {
			return nil
		}
		sh := s.open[victim]
		delete(s.open, victim)
		if err := sh.st.Close(); err != nil {
			return fmt.Errorf("store: evicting shard %q: %w", victim, err)
		}
	}
	return nil
}

// EachOpen calls fn for every currently open shard (pinning each for the
// duration of its call). Used for group commit and metrics.
func (s *Shards) EachOpen(fn func(tenant string, st *Store) error) error {
	s.mu.Lock()
	names := make([]string, 0, len(s.open))
	for name, sh := range s.open {
		sh.refs++
		names = append(names, name)
	}
	s.mu.Unlock()
	var firstErr error
	for _, name := range names {
		s.mu.Lock()
		sh, ok := s.open[name]
		var st *Store
		if ok {
			st = sh.st
		}
		s.mu.Unlock()
		if st != nil {
			if err := fn(name, st); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.Release(name)
	}
	return firstErr
}

// SyncAll fsyncs every open shard — one batched pass across tenants.
func (s *Shards) SyncAll() error {
	return s.EachOpen(func(_ string, st *Store) error { return st.Sync() })
}

// OpenCount returns the number of currently open shard files.
func (s *Shards) OpenCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}

// Tenants lists every tenant with a segment in the directory, open or not.
func (s *Shards) Tenants() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, shardExt) {
			out = append(out, strings.TrimSuffix(name, shardExt))
		}
	}
	return out, nil
}

// Close syncs and closes every open shard. Later operations fail with
// ErrShardsClosed.
func (s *Shards) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for name, sh := range s.open {
		if err := sh.st.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("store: closing shard %q: %w", name, err)
		}
	}
	s.open = nil
	return firstErr
}
