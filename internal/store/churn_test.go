package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardsChurnRace hammers a small shard cache from many goroutines:
// concurrent Acquire/Put/Release across more tenants than open slots (so
// eviction churns constantly), interleaved with SyncAll, Tenants, and
// EachOpen sweeps. Run under -race this is the regression net for the
// cache's locking; the final cold reopen proves churn never lost a synced
// record.
func TestShardsChurnRace(t *testing.T) {
	dir := t.TempDir()
	shards, err := OpenShards(dir, 4) // far fewer slots than tenants
	if err != nil {
		t.Fatal(err)
	}
	const (
		tenants    = 12
		goroutines = 8
		iters      = 120
	)
	var puts [tenants]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 131))
			for i := 0; i < iters; i++ {
				ti := rng.Intn(tenants)
				tenant := fmt.Sprintf("tenant%02d", ti)
				st, err := shards.Acquire(tenant)
				if err != nil {
					t.Errorf("acquire %s: %v", tenant, err)
					return
				}
				seq := uint64(g)<<32 | uint64(i)
				if err := st.Put(seq, KindCompressed, []byte{byte(g), byte(i)}); err != nil {
					t.Errorf("put %s/%d: %v", tenant, seq, err)
					shards.Release(tenant)
					return
				}
				puts[ti].Add(1)
				shards.Release(tenant)
				switch {
				case i%37 == 0:
					if err := shards.SyncAll(); err != nil {
						t.Errorf("syncall: %v", err)
					}
				case i%23 == 0:
					if _, err := shards.Tenants(); err != nil {
						t.Errorf("tenants: %v", err)
					}
				case i%17 == 0:
					shards.OpenCount()
					err := shards.EachOpen(func(string, *Store) error { return nil })
					if err != nil {
						t.Errorf("eachopen: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := shards.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if err := shards.Close(); err != nil {
		t.Fatal(err)
	}
	// Cold reopen: every put must have survived the cache churn.
	for ti := 0; ti < tenants; ti++ {
		want := int(puts[ti].Load())
		st, err := Open(filepath.Join(dir, fmt.Sprintf("tenant%02d.db", ti)))
		if err != nil {
			if want == 0 && os.IsNotExist(errors.Unwrap(err)) {
				continue
			}
			t.Fatalf("reopen tenant%02d: %v", ti, err)
		}
		if st.Len() != want {
			t.Errorf("tenant%02d: %d records after reopen, want %d", ti, st.Len(), want)
		}
		st.Close()
	}
}

// TestTornTailRebuildWatermark tears the segment mid-record — the classic
// torn tail a power loss leaves — and expects the rebuild to stop exactly
// at the last intact record: Seqs() lists the surviving prefix, End() is
// the durable watermark the replication layer keys on, and the store
// accepts fresh appends from there.
func TestTornTailRebuildWatermark(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.db")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for seq := uint64(1); seq <= 5; seq++ {
		end, err := st.Append(seq, KindCompressed, []byte{byte(seq), 0xaa, 0xbb})
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, end)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear: cut 2 bytes into record 5's header/payload.
	if err := os.Truncate(path, ends[3]+2); err != nil {
		t.Fatal(err)
	}
	st, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seqs := st.Seqs()
	if len(seqs) != 4 {
		t.Fatalf("Seqs() = %v, want the 4-record prefix", seqs)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("Seqs()[%d] = %d, want %d", i, seq, i+1)
		}
	}
	if st.End() != ends[3] {
		t.Fatalf("End() = %d after torn tail, want %d", st.End(), ends[3])
	}
	if _, _, err := st.Get(5); err == nil {
		t.Fatal("torn record 5 still readable")
	}
	// The watermark is writable again: a fresh append lands at the tail.
	end, err := st.Append(6, KindCompressed, []byte{6})
	if err != nil {
		t.Fatal(err)
	}
	if end <= ends[3] {
		t.Fatalf("append after tear ended at %d, want past %d", end, ends[3])
	}
	if recs, err := st.ReadSince(ends[3], 1<<20); err != nil || len(recs) != 1 || recs[0].Seq != 6 {
		t.Fatalf("ReadSince after tear: %v, %v", recs, err)
	}
}

// flakyFile wraps a File and fails Sync on demand.
type flakyFile struct {
	File
	failSync atomic.Bool
}

func (f *flakyFile) Sync() error {
	if f.failSync.Load() {
		return errors.New("injected fsync failure")
	}
	return f.File.Sync()
}

// TestGroupStickyError: an fsync failure inside a commit round must latch
// in Err()/ErrCount() and reach OnError — Async rounds have no caller to
// return to, so the sticky error is the only way a deployment notices.
func TestGroupStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.db")
	raw, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	ff := &flakyFile{File: osFile{raw}}
	st, err := OpenWith(ff)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	g := NewGroup(0)
	var reported atomic.Int64
	g.OnError = func(error) { reported.Add(1) }

	if err := st.Put(1, KindCompressed, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(st); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}
	if g.Err() != nil {
		t.Fatalf("premature sticky error: %v", g.Err())
	}

	ff.failSync.Store(true)
	if err := st.Put(2, KindCompressed, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(st); err == nil {
		t.Fatal("commit over failing fsync returned nil")
	}
	if g.Err() == nil || g.ErrCount() == 0 {
		t.Fatalf("fsync failure not latched: err=%v count=%d", g.Err(), g.ErrCount())
	}
	if reported.Load() == 0 {
		t.Fatal("OnError never called")
	}

	// The latch is sticky: recovery clears neither Err nor the count.
	ff.failSync.Store(false)
	if err := st.Put(3, KindCompressed, []byte("ok again")); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(st); err != nil {
		t.Fatalf("recovered commit: %v", err)
	}
	if g.Err() == nil {
		t.Fatal("sticky error cleared by a healthy round")
	}
	g.Close()
}
