package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dbgc/internal/faultnet"
)

// crashDisk opens a faultnet.Disk over a fresh (or existing) segment path.
func crashDisk(t *testing.T, path string, seed int64) *faultnet.Disk {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	return faultnet.NewDisk(f, fi.Size(), faultnet.DiskConfig{
		Seed: seed, TearOnCrash: true, FlipOnTear: true,
	})
}

func payloadFor(seq uint64) []byte {
	return bytes.Repeat([]byte{byte(seq), byte(seq >> 8), 0x5a}, 40+int(seq%7))
}

// TestCrashRestartRecovery kills the store mid-append — a torn, possibly
// bit-flipped final record via faultnet disk faults — then reopens the
// segment and asserts (a) every record acked by a Sync survived intact and
// (b) rebuild truncated at the first corrupt record, leaving a clean
// prefix of the append order.
func TestCrashRestartRecovery(t *testing.T) {
	baseSeed := faultnet.SeedForTest(t, 99)
	for round := int64(0); round < 8; round++ {
		seed := baseSeed + round
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "tenant.db")
			disk := crashDisk(t, path, seed)
			st, err := OpenWith(disk)
			if err != nil {
				t.Fatal(err)
			}
			const synced, extra = 10, 5
			for seq := uint64(0); seq < synced; seq++ {
				if err := st.Put(seq, KindCompressed, payloadFor(seq)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Sync(); err != nil { // the "ack point": these must survive
				t.Fatal(err)
			}
			for seq := uint64(synced); seq < synced+extra; seq++ {
				if err := st.Put(seq, KindCompressed, payloadFor(seq)); err != nil {
					t.Fatal(err)
				}
			}
			survived, torn, err := disk.Crash()
			if err != nil {
				t.Fatalf("crash: %v", err)
			}
			t.Logf("crash kept %d unsynced writes (torn=%v)", survived, torn)

			re, err := Open(path)
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer re.Close()
			// (a) every record before the Sync is present and intact.
			for seq := uint64(0); seq < synced; seq++ {
				got, kind, err := re.Get(seq)
				if err != nil {
					t.Fatalf("synced record %d lost after crash: %v", seq, err)
				}
				if kind != KindCompressed || !bytes.Equal(got, payloadFor(seq)) {
					t.Fatalf("synced record %d corrupted after crash", seq)
				}
			}
			// (b) surviving unsynced records form a contiguous prefix of
			// the append order, each readable and intact.
			last := uint64(synced) - 1
			for seq := uint64(synced); seq < synced+extra; seq++ {
				got, _, err := re.Get(seq)
				if err == ErrNotFound {
					break
				}
				if err != nil {
					t.Fatalf("surviving record %d unreadable: %v", seq, err)
				}
				if !bytes.Equal(got, payloadFor(seq)) {
					t.Fatalf("surviving record %d corrupted", seq)
				}
				last = seq
			}
			for seq := last + 1; seq < synced+extra; seq++ {
				if _, _, err := re.Get(seq); err != ErrNotFound {
					t.Fatalf("record %d present after gap at %d: truncation was not a prefix", seq, last+1)
				}
			}
			if got := re.Len(); got != int(last)+1 {
				t.Fatalf("reopened store indexes %d records, want %d", got, last+1)
			}
		})
	}
}

// TestOpenCreateSurvivesDirCrash exercises the creation path: Open on a
// fresh path must fsync the parent directory (we can only assert the code
// path succeeds — losing a directory entry needs real power loss — but a
// failure to open/sync the parent must surface as an error, not pass
// silently).
func TestOpenCreateSurvivesDirCrash(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(filepath.Join(dir, "fresh.db"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(1, KindCompressed, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(filepath.Join(dir, "fresh.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, _, err := re.Get(1); err != nil || string(got) != "first" {
		t.Fatalf("Get after reopen: %q, %v", got, err)
	}
}
