package store

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestShardsLazyOpenAndRoute(t *testing.T) {
	sh, err := OpenShards(filepath.Join(t.TempDir(), "stores"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for i, tenant := range []string{"alpha", "beta", "gamma"} {
		st, err := sh.Acquire(tenant)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(uint64(i), KindCompressed, []byte(tenant)); err != nil {
			t.Fatal(err)
		}
		sh.Release(tenant)
	}
	if got := sh.OpenCount(); got != 3 {
		t.Fatalf("open shards = %d, want 3", got)
	}
	// Same tenant routes to the same store; different tenants are isolated.
	st, err := sh.Acquire("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := st.Get(0); err != nil || string(got) != "alpha" {
		t.Fatalf("alpha shard Get = %q, %v", got, err)
	}
	if _, _, err := st.Get(1); err != ErrNotFound {
		t.Fatalf("beta's record visible in alpha's shard: %v", err)
	}
	sh.Release("alpha")
	tenants, err := sh.Tenants()
	if err != nil || len(tenants) != 3 {
		t.Fatalf("Tenants = %v, %v", tenants, err)
	}
}

func TestShardsLRUEviction(t *testing.T) {
	sh, err := OpenShards(filepath.Join(t.TempDir(), "stores"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for i := 0; i < 5; i++ {
		tenant := fmt.Sprintf("t%d", i)
		st, err := sh.Acquire(tenant)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(7, KindCompressed, []byte(tenant)); err != nil {
			t.Fatal(err)
		}
		sh.Release(tenant)
		if got := sh.OpenCount(); got > 2 {
			t.Fatalf("after %s: %d shards open, bound is 2", tenant, got)
		}
	}
	// Evicted shards reopen transparently with their data intact.
	st, err := sh.Acquire("t0")
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err := st.Get(7); err != nil || string(got) != "t0" {
		t.Fatalf("reopened evicted shard Get = %q, %v", got, err)
	}
	sh.Release("t0")
}

func TestShardsPinnedNeverEvicted(t *testing.T) {
	sh, err := OpenShards(filepath.Join(t.TempDir(), "stores"), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	a, err := sh.Acquire("pinned")
	if err != nil {
		t.Fatal(err)
	}
	// Opening more shards while "pinned" is held must not close it —
	// the bound is soft against pins.
	for i := 0; i < 3; i++ {
		tenant := fmt.Sprintf("other%d", i)
		if _, err := sh.Acquire(tenant); err != nil {
			t.Fatal(err)
		}
		sh.Release(tenant)
	}
	if err := a.Put(1, KindCompressed, []byte("still open")); err != nil {
		t.Fatalf("pinned shard was closed under us: %v", err)
	}
	sh.Release("pinned")
}

func TestShardsRejectTraversal(t *testing.T) {
	sh, err := OpenShards(filepath.Join(t.TempDir(), "stores"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	for _, bad := range []string{"", "../escape", "a/b", `a\b`, ".hidden"} {
		if _, err := sh.Acquire(bad); err == nil {
			t.Errorf("Acquire(%q) succeeded", bad)
		}
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	sh, err := OpenShards(filepath.Join(t.TempDir(), "stores"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	g := NewGroup(2 * time.Millisecond)
	defer g.Close()

	const writers, frames = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant%d", w%4)
			for i := 0; i < frames; i++ {
				st, err := sh.Acquire(tenant)
				if err != nil {
					errs <- err
					return
				}
				err = st.Put(uint64(w*frames+i), KindCompressed, []byte("payload"))
				if err == nil {
					err = g.Commit(st) // durable before "ack"
				}
				sh.Release(tenant)
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	commits, rounds := g.Stats()
	if commits != writers*frames {
		t.Fatalf("commits = %d, want %d", commits, writers*frames)
	}
	if rounds == 0 || rounds >= commits {
		t.Fatalf("group commit did not coalesce: %d rounds for %d commits", rounds, commits)
	}
	t.Logf("group commit: %d commits in %d fsync rounds", commits, rounds)
}

func TestGroupCloseFlushesAndRejects(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "one.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := NewGroup(0)
	if err := st.Put(1, KindCompressed, []byte("x")); err != nil {
		t.Fatal(err)
	}
	g.Async(st)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(st); err != ErrGroupClosed {
		t.Fatalf("Commit after Close = %v", err)
	}
}
