package store

import (
	"errors"
	"sync"
	"time"
)

// ErrGroupClosed reports a Commit against a closed Group.
var ErrGroupClosed = errors.New("store: commit group closed")

// Group batches fsyncs across stores: concurrent Commit calls against the
// same store — typically many ingest sessions across many tenant shards —
// coalesce into a single Sync per store per round, so durability costs one
// fsync per shard per batch instead of one per frame. With a positive
// Interval the committer additionally waits that long before each round to
// widen the batch (classic group commit); with Interval zero a round
// starts as soon as the previous one finishes.
//
// Commit provides the "acked means durable" contract: it returns only
// after a Sync that began after the Commit call completed, so every write
// the caller finished beforehand is on stable storage.
type Group struct {
	interval time.Duration

	// OnError, when set before the first Commit/Async, is called with
	// every fsync failure the committer observes — including failures of
	// Async rounds, which have no waiting caller to return the error to.
	// Called from the committer goroutine; must not block.
	OnError func(error)

	mu      sync.Mutex
	pending map[*Store]*commitBatch
	wake    chan struct{}
	closed  bool
	done    chan struct{}

	// commits and rounds count Commit calls and fsync rounds, so callers
	// can report the achieved batching factor.
	commits uint64
	rounds  uint64

	// firstErr and errCount make fsync failures sticky: an Async round's
	// error has no waiter to land on, so it is latched here instead of
	// vanishing — a dying disk degrades loudly (Err, /healthz) rather
	// than silently un-acking durability.
	firstErr error
	errCount uint64
}

type commitBatch struct {
	done chan struct{}
	err  error
}

// NewGroup starts a committer. interval <= 0 commits as fast as the disk
// allows (still coalescing whatever arrives during the previous round).
func NewGroup(interval time.Duration) *Group {
	g := &Group{
		interval: interval,
		pending:  make(map[*Store]*commitBatch),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go g.run()
	return g
}

// Commit makes every write to st completed before this call durable,
// sharing the fsync with every other Commit in the same round.
func (g *Group) Commit(st *Store) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrGroupClosed
	}
	g.commits++
	b, ok := g.pending[st]
	if !ok {
		b = &commitBatch{done: make(chan struct{})}
		g.pending[st] = b
	}
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	<-b.done
	return b.err
}

// Async marks st dirty so the next round syncs it, without waiting. Used
// by interval-durability mode, where acks may run ahead of the disk by at
// most one interval.
func (g *Group) Async(st *Store) {
	g.mu.Lock()
	if !g.closed {
		g.commits++
		if _, ok := g.pending[st]; !ok {
			g.pending[st] = &commitBatch{done: make(chan struct{})}
		}
	}
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// Stats returns (Commit+Async calls, fsync rounds) so far.
func (g *Group) Stats() (commits, rounds uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.commits, g.rounds
}

// Err returns the first fsync error any commit round has hit, or nil. The
// error is sticky: once a round fails, every later Err call reports it
// (health endpoints treat a non-nil Err as a degraded store) until the
// process restarts with a healthy disk.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// ErrCount returns how many fsync failures the committer has observed.
func (g *Group) ErrCount() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.errCount
}

// noteErr latches a round failure and reports it to OnError.
func (g *Group) noteErr(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.firstErr == nil {
		g.firstErr = err
	}
	g.errCount++
	g.mu.Unlock()
	if g.OnError != nil {
		g.OnError(err)
	}
}

// Close flushes every pending batch and stops the committer.
func (g *Group) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.done
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	<-g.done
	return nil
}

func (g *Group) run() {
	defer close(g.done)
	for {
		<-g.wake
		if g.interval > 0 {
			// Let the batch widen before paying for the fsyncs.
			time.Sleep(g.interval)
		}
		g.mu.Lock()
		batch := g.pending
		g.pending = make(map[*Store]*commitBatch)
		if len(batch) > 0 {
			g.rounds++
		}
		closed := g.closed
		g.mu.Unlock()
		for st, b := range batch {
			b.err = st.Sync()
			g.noteErr(b.err)
			close(b.done)
		}
		if closed {
			// One final drain: Commits that raced Close still resolve.
			g.mu.Lock()
			batch = g.pending
			g.pending = make(map[*Store]*commitBatch)
			g.mu.Unlock()
			for st, b := range batch {
				b.err = st.Sync()
				g.noteErr(b.err)
				close(b.done)
			}
			return
		}
	}
}
