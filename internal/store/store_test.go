package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "frames.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func TestPutGet(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	if err := s.Put(1, KindCompressed, []byte("frame-one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, KindDecompressed, []byte("frame-two")); err != nil {
		t.Fatal(err)
	}
	got, kind, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindCompressed || string(got) != "frame-one" {
		t.Fatalf("got %q kind %d", got, kind)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if _, _, err := s.Get(99); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	s, path := tempStore(t)
	payloads := map[uint64][]byte{
		10: []byte("aaa"),
		20: bytes.Repeat([]byte{0xab}, 5000),
		30: {},
	}
	for seq, p := range payloads {
		if err := s.Put(seq, KindCompressed, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(payloads) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(payloads))
	}
	for seq, want := range payloads {
		got, _, err := s2.Get(seq)
		if err != nil {
			t.Fatalf("Get(%d): %v", seq, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) = %d bytes, want %d", seq, len(got), len(want))
		}
	}
}

func TestTornRecordTruncated(t *testing.T) {
	s, path := tempStore(t)
	if err := s.Put(1, KindCompressed, []byte("complete-record")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, KindCompressed, bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-append: chop the last record's payload.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-500); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("after torn write, Len = %d, want 1", s2.Len())
	}
	if _, _, err := s2.Get(1); err != nil {
		t.Fatalf("intact record lost: %v", err)
	}
	// The store must accept new appends after recovery.
	if err := s2.Put(3, KindCompressed, []byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	got, _, err := s2.Get(3)
	if err != nil || string(got) != "post-crash" {
		t.Fatalf("post-crash append broken: %q %v", got, err)
	}
}

func TestCorruptPayloadTruncatedAtOpen(t *testing.T) {
	s, path := tempStore(t)
	if err := s.Put(7, KindCompressed, bytes.Repeat([]byte{7}, 100)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// The rebuild scan verifies checksums, so the corrupt record is
	// dropped and truncated rather than indexed.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, err := s2.Get(7); err != ErrNotFound {
		t.Fatalf("want ErrNotFound after truncation, got %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("corrupt record not truncated: size=%d err=%v", fi.Size(), err)
	}
}

func TestRebuildStopsAtMidFileCorruption(t *testing.T) {
	s, path := tempStore(t)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Put(seq, KindCompressed, bytes.Repeat([]byte{byte(seq)}, 200)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	recordLen := int64(recordHeader + 200)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the middle record.
	raw[recordLen+recordHeader+50] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// The scan stops at the first corrupt record: record 1 survives,
	// records 2 and 3 are discarded and the file is truncated.
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
	if got, _, err := s2.Get(1); err != nil || !bytes.Equal(got, bytes.Repeat([]byte{1}, 200)) {
		t.Fatalf("record 1 damaged: %v", err)
	}
	for _, seq := range []uint64{2, 3} {
		if _, _, err := s2.Get(seq); err != ErrNotFound {
			t.Fatalf("Get(%d): want ErrNotFound, got %v", seq, err)
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != recordLen {
		t.Fatalf("file size = %d, want %d (err=%v)", fi.Size(), recordLen, err)
	}
	// Appends must resume cleanly at the truncation point.
	if err := s2.Put(4, KindCompressed, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	if got, _, err := s2.Get(4); err != nil || string(got) != "after-recovery" {
		t.Fatalf("post-recovery append broken: %q %v", got, err)
	}
}

func TestCorruptionAfterOpenDetectedAtGet(t *testing.T) {
	s, path := tempStore(t)
	defer s.Close()
	if err := s.Put(7, KindCompressed, bytes.Repeat([]byte{7}, 100)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the live file behind the store's back (bit rot after the
	// rebuild scan): Get's own checksum must still catch it.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, recordHeader+10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := s.Get(7); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestSyncAndKind(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	if err := s.Put(1, KindQuarantined, []byte("bad-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if kind, ok := s.Kind(1); !ok || kind != KindQuarantined {
		t.Fatalf("Kind(1) = %d, %v", kind, ok)
	}
	if _, ok := s.Kind(2); ok {
		t.Fatal("Kind(2) reported a missing frame")
	}
	// A later good Put shadows the quarantined record.
	if err := s.Put(1, KindCompressed, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if kind, ok := s.Kind(1); !ok || kind != KindCompressed {
		t.Fatalf("after shadowing, Kind(1) = %d, %v", kind, ok)
	}
}

func TestOverwriteSameSeq(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	s.Put(5, KindCompressed, []byte("old"))
	s.Put(5, KindCompressed, []byte("new"))
	got, _, err := s.Get(5)
	if err != nil || string(got) != "new" {
		t.Fatalf("got %q, %v", got, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSeqs(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	s.Put(3, KindCompressed, nil)
	s.Put(1, KindCompressed, nil)
	seqs := s.Seqs()
	if len(seqs) != 2 {
		t.Fatalf("Seqs = %v", seqs)
	}
}
