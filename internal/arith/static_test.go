package arith

import (
	"math/rand"
	"testing"
)

// TestStaticModelRoundTrip exercises EncodeStatic/DecodeStatic: frozen
// frequencies on both sides must stay in lockstep.
func TestStaticModelRoundTrip(t *testing.T) {
	m := NewModel(8)
	// Pre-train the model, then freeze.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		m.update(rng.Intn(4)) // skew toward low symbols
	}
	syms := make([]int, 2000)
	for i := range syms {
		syms[i] = rng.Intn(8)
	}
	e := NewEncoder()
	for _, s := range syms {
		e.EncodeStatic(m, s)
	}
	buf := e.Finish()

	// Decoder needs an identically trained model.
	m2 := NewModel(8)
	rng2 := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		m2.update(rng2.Intn(4))
	}
	d := NewDecoder(buf)
	for i, want := range syms {
		got, err := d.DecodeStatic(m2)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

// TestUniformRoundTrip exercises EncodeUniform/DecodeUniform across totals,
// including totals near the kd-tree coder's point counts.
func TestUniformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	type item struct{ v, total uint32 }
	var items []item
	e := NewEncoder()
	for i := 0; i < 3000; i++ {
		total := uint32(1 + rng.Intn(200000))
		v := uint32(rng.Intn(int(total)))
		items = append(items, item{v, total})
		e.EncodeUniform(v, total)
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	for i, it := range items {
		got, err := d.DecodeUniform(it.total)
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d = %d, want %d (total %d)", i, got, it.v, it.total)
		}
	}
}

func TestUniformZeroTotal(t *testing.T) {
	d := NewDecoder([]byte{0xff})
	if _, err := d.DecodeUniform(0); err == nil {
		t.Fatal("total=0 accepted")
	}
}

func TestEncodeUniformPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for v >= total")
		}
	}()
	NewEncoder().EncodeUniform(5, 5)
}
