// Package arith implements an adaptive arithmetic coder in the style of
// Witten, Neal, and Cleary, the entropy coder the paper adopts for occupancy
// codes, polar-angle deltas, radial deltas, and reference-choice symbols
// (§2.2, §3.5). Models are adaptive: symbol frequencies start uniform and
// are updated after each encode/decode, so encoder and decoder stay in
// lockstep without transmitting a frequency table.
package arith

// maxTotal bounds the total frequency count of a model. When the total
// would exceed it, all counts are halved (rounding up so no count reaches
// zero). Keeping the total well below the coder's 2^16 precision limit
// preserves coding accuracy.
const maxTotal = 1 << 15

// increment is added to a symbol's frequency each time it is coded. A large
// increment adapts quickly to skewed distributions, which delta-encoded
// LiDAR streams are.
const increment = 32

// Model is an adaptive frequency model over a fixed alphabet. A Fenwick
// (binary indexed) tree stores the counts so cumulative frequencies and
// symbol lookups cost O(log n).
type Model struct {
	tree  []uint32 // 1-based Fenwick tree over symbol counts
	n     int      // alphabet size
	total uint32
}

// NewModel returns a model over the alphabet {0, ..., n-1} with all symbol
// counts initialized to 1.
func NewModel(n int) *Model {
	if n <= 0 {
		panic("arith: model alphabet size must be positive")
	}
	m := &Model{tree: make([]uint32, n+1), n: n}
	for s := 0; s < n; s++ {
		m.add(s, 1)
	}
	m.total = uint32(n)
	return m
}

// Reset restores the model to its initial uniform state (every count 1),
// as if freshly returned by NewModel, without allocating. A Fenwick node i
// covering all-one counts holds exactly i&(-i).
func (m *Model) Reset() {
	for i := 1; i <= m.n; i++ {
		m.tree[i] = uint32(i & (-i))
	}
	m.total = uint32(m.n)
}

func (m *Model) add(sym int, delta uint32) {
	for i := sym + 1; i <= m.n; i += i & (-i) {
		m.tree[i] += delta
	}
}

// cumBelow returns the sum of counts of symbols < sym.
func (m *Model) cumBelow(sym int) uint32 {
	var s uint32
	for i := sym; i > 0; i -= i & (-i) {
		s += m.tree[i]
	}
	return s
}

// interval returns the cumulative interval [lo, hi) of sym and the current
// total.
func (m *Model) interval(sym int) (lo, hi, total uint32) {
	lo = m.cumBelow(sym)
	hi = m.cumBelow(sym + 1)
	return lo, hi, m.total
}

// find returns the symbol whose cumulative interval contains target, along
// with its interval bounds.
func (m *Model) find(target uint32) (sym int, lo, hi uint32) {
	// Walk the Fenwick tree from the highest power of two downward.
	pos := 0
	rem := target
	mask := 1
	for mask<<1 <= m.n {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := pos + mask
		if next <= m.n && m.tree[next] <= rem {
			pos = next
			rem -= m.tree[next]
		}
	}
	lo = target - rem
	sym = pos
	hi = lo + m.count(sym)
	return sym, lo, hi
}

func (m *Model) count(sym int) uint32 {
	c := m.cumBelow(sym+1) - m.cumBelow(sym)
	return c
}

// update increases sym's frequency, halving all counts first if the total
// would exceed maxTotal.
func (m *Model) update(sym int) {
	if m.total+increment > maxTotal {
		m.rescale()
	}
	m.add(sym, increment)
	m.total += increment
}

// rescale halves every count, rounding up so no symbol becomes impossible.
func (m *Model) rescale() {
	counts := make([]uint32, m.n)
	for s := 0; s < m.n; s++ {
		counts[s] = m.count(s)
	}
	for i := range m.tree {
		m.tree[i] = 0
	}
	m.total = 0
	for s, c := range counts {
		nc := (c + 1) / 2
		m.add(s, nc)
		m.total += nc
	}
}

// Update advances the adaptive state for sym exactly as coding the symbol
// would, without emitting bits, so encoder and decoder can keep auxiliary
// (shared prior) models in lockstep.
func (m *Model) Update(sym int) {
	if sym < 0 || sym >= m.n {
		panic("arith: Update symbol out of range")
	}
	m.update(sym)
}

// CopyFrom overwrites m with an exact copy of src's state. Both models must
// share one alphabet size. It exists so a context model can be seeded from a
// warmed shared model instead of the uniform prior, which removes most of
// the adaptation cost of splitting a short stream across many contexts.
func (m *Model) CopyFrom(src *Model) {
	if m.n != src.n {
		panic("arith: CopyFrom across alphabet sizes")
	}
	copy(m.tree, src.tree)
	m.total = src.total
}

// Size returns the alphabet size.
func (m *Model) Size() int { return m.n }
