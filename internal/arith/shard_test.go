package arith

import (
	"bytes"
	"math/rand"
	"testing"

	"dbgc/internal/declimits"
)

func TestShardRangeCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 100000} {
		for _, s := range []int{1, 2, 3, 8, 64} {
			prev := 0
			for i := 0; i < s; i++ {
				lo, hi := shardRange(n, s, i)
				if lo != prev {
					t.Fatalf("n=%d s=%d shard %d: lo=%d want %d", n, s, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d s=%d shard %d: hi=%d < lo=%d", n, s, i, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d s=%d: shards cover %d elements", n, s, prev)
			}
		}
	}
}

func TestClampShards(t *testing.T) {
	cases := []struct{ shards, n, want int }{
		{0, 100000, 1},
		{-3, 100000, 1},
		{1, 0, 1},
		{8, 8 * minShardElems, 8},
		{16, 100000, 100000 / minShardElems},
		{8, 2 * minShardElems, 2},
		{8, minShardElems - 1, 1},
		{MaxShards + 1, 1 << 30, MaxShards},
	}
	for _, c := range cases {
		if got := ClampShards(c.shards, c.n); got != c.want {
			t.Errorf("ClampShards(%d, %d) = %d, want %d", c.shards, c.n, got, c.want)
		}
	}
}

func shardTestCodes(n, alphabet int) []byte {
	rng := rand.New(rand.NewSource(7))
	codes := make([]byte, n)
	for i := range codes {
		// Skewed distribution so the adaptive model has something to learn.
		codes[i] = byte(rng.Intn(alphabet) * rng.Intn(2))
	}
	return codes
}

func TestShardedCodesRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 4096, 50000} {
		codes := shardTestCodes(n, 256)
		for _, shards := range []int{1, 2, 4, 8} {
			for _, parallel := range []bool{false, true} {
				buf := AppendCompressCodesSharded(nil, codes, 256, shards, parallel)
				for _, pdec := range []bool{false, true} {
					got, err := DecompressCodesShardedLimited(buf, n, 256, nil, pdec)
					if err != nil {
						t.Fatalf("n=%d shards=%d: decode: %v", n, shards, err)
					}
					if !bytes.Equal(got, codes) {
						t.Fatalf("n=%d shards=%d parallel=%v/%v: roundtrip mismatch", n, shards, parallel, pdec)
					}
				}
			}
		}
	}
}

func TestShardedEncodeDeterministic(t *testing.T) {
	codes := shardTestCodes(50000, 256)
	serial := AppendCompressCodesSharded(nil, codes, 256, 4, false)
	par := AppendCompressCodesSharded(nil, codes, 256, 4, true)
	if !bytes.Equal(serial, par) {
		t.Fatal("parallel sharded encode differs from serial")
	}
}

func TestShardedUintsIntsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30000
	us := make([]uint64, n)
	is := make([]int64, n)
	for i := range us {
		us[i] = uint64(rng.Intn(1 << 14))
		is[i] = int64(rng.Intn(1<<12)) - (1 << 11)
	}
	for _, shards := range []int{1, 2, 8} {
		ub := AppendCompressUintsSharded(nil, us, shards, true)
		gotU, err := DecompressUintsShardedLimited(ub, n, nil, true)
		if err != nil {
			t.Fatalf("shards=%d: uints: %v", shards, err)
		}
		for i := range us {
			if gotU[i] != us[i] {
				t.Fatalf("shards=%d: uint %d: got %d want %d", shards, i, gotU[i], us[i])
			}
		}
		ib := AppendCompressIntsSharded(nil, is, shards, true)
		gotI, err := DecompressIntsShardedLimited(ib, n, nil, true)
		if err != nil {
			t.Fatalf("shards=%d: ints: %v", shards, err)
		}
		for i := range is {
			if gotI[i] != is[i] {
				t.Fatalf("shards=%d: int %d: got %d want %d", shards, i, gotI[i], is[i])
			}
		}
	}
}

// TestShardedSingleMatchesLegacy pins the determinism contract: a sharded
// stream with one shard carries exactly the legacy single-coder payload
// after its 2-varint header.
func TestShardedSingleMatchesLegacy(t *testing.T) {
	codes := shardTestCodes(10000, 256)
	legacy := AppendCompressBytes(nil, codes)
	sharded := AppendCompressCodesSharded(nil, codes, 256, 1, false)
	if len(sharded) < 2 || sharded[0] != 1 {
		t.Fatalf("expected shard count 1 header, got % x", sharded[:2])
	}
	// Strip "S=1" varint and the single length varint.
	rest := sharded[1:]
	i := 0
	for rest[i]&0x80 != 0 {
		i++
	}
	rest = rest[i+1:]
	if !bytes.Equal(rest, legacy) {
		t.Fatal("single-shard payload differs from legacy coder output")
	}
}

func TestShardedCorruptAndLimits(t *testing.T) {
	codes := shardTestCodes(8*minShardElems, 256) // large enough for all 8 shards to engage
	buf := AppendCompressCodesSharded(nil, codes, 256, 8, false)

	// Truncation anywhere must error, not panic.
	for _, cut := range []int{0, 1, 3, len(buf) / 2, len(buf) - 1} {
		if _, err := DecompressCodesShardedLimited(buf[:cut], len(codes), 256, nil, false); err == nil {
			t.Fatalf("truncated at %d: expected error", cut)
		}
	}

	// Trailing garbage after the declared shards must error.
	if _, err := DecompressCodesShardedLimited(append(append([]byte{}, buf...), 0xFF), len(codes), 256, nil, false); err == nil {
		t.Fatal("trailing bytes: expected error")
	}

	// Zero shard count is invalid.
	bad := append([]byte{0}, buf[1:]...)
	if _, err := DecompressCodesShardedLimited(bad, len(codes), 256, nil, false); err == nil {
		t.Fatal("zero shard count: expected error")
	}

	// A budget shard cap below the declared count must reject the stream.
	b := declimits.New(declimits.Limits{MaxShards: 4})
	if _, err := DecompressCodesShardedLimited(buf, len(codes), 256, b, false); err == nil {
		t.Fatal("MaxShards=4 against 8 shards: expected error")
	}

	// A node budget smaller than n must reject before allocating output.
	b = declimits.New(declimits.Limits{MaxNodes: 100})
	if _, err := DecompressCodesShardedLimited(buf, len(codes), 256, b, false); err == nil {
		t.Fatal("tiny node budget: expected error")
	}
}
