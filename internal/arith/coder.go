package arith

import (
	"errors"

	"dbgc/internal/bitio"
)

// Register geometry for the 32-bit integer implementation of arithmetic
// coding. All arithmetic is done in uint64 to avoid overflow in
// range*cum products.
const (
	codeBits = 32
	top      = uint64(1) << codeBits
	half     = top >> 1
	quarter  = top >> 2
	threeQtr = half + quarter
	codeMask = top - 1
)

// ErrCorrupt is returned when a decoder's arithmetic state becomes
// inconsistent, which indicates a corrupted or truncated stream.
var ErrCorrupt = errors.New("arith: corrupt stream")

// Encoder is an arithmetic encoder writing to an internal bit buffer.
// Create one with NewEncoder, encode symbols against one or more Models,
// then call Finish.
type Encoder struct {
	w        bitio.Writer
	low      uint64
	high     uint64
	pending  int
	finished bool
}

// NewEncoder returns a ready encoder.
func NewEncoder() *Encoder {
	return &Encoder{high: codeMask}
}

// Reset clears the encoder for reuse, keeping the output buffer's capacity.
func (e *Encoder) Reset() {
	e.w.Reset()
	e.low, e.high = 0, codeMask
	e.pending = 0
	e.finished = false
}

func (e *Encoder) emit(bit int) {
	e.w.WriteBit(bit)
	inv := 1 - bit
	for ; e.pending > 0; e.pending-- {
		e.w.WriteBit(inv)
	}
}

// Encode codes sym using model m and updates the model.
func (e *Encoder) Encode(m *Model, sym int) {
	lo, hi, total := m.interval(sym)
	e.encodeInterval(uint64(lo), uint64(hi), uint64(total))
	m.update(sym)
}

// EncodeStatic codes sym against m without adapting the model. Used for
// fixed-probability side information.
func (e *Encoder) EncodeStatic(m *Model, sym int) {
	lo, hi, total := m.interval(sym)
	e.encodeInterval(uint64(lo), uint64(hi), uint64(total))
}

func (e *Encoder) encodeInterval(lo, hi, total uint64) {
	if hi <= lo || total == 0 {
		panic("arith: empty coding interval")
	}
	span := e.high - e.low + 1
	e.high = e.low + span*hi/total - 1
	e.low = e.low + span*lo/total
	for {
		switch {
		case e.high < half:
			e.emit(0)
		case e.low >= half:
			e.emit(1)
			e.low -= half
			e.high -= half
		case e.low >= quarter && e.high < threeQtr:
			e.pending++
			e.low -= quarter
			e.high -= quarter
		default:
			return
		}
		e.low = e.low << 1
		e.high = e.high<<1 | 1
	}
}

// Finish flushes the terminating bits and returns the encoded buffer. The
// encoder must not be used afterwards.
func (e *Encoder) Finish() []byte {
	if !e.finished {
		// Emit one disambiguating bit plus pending carries; a second bit
		// pins the final interval.
		e.pending++
		if e.low < quarter {
			e.emit(0)
		} else {
			e.emit(1)
		}
		e.finished = true
	}
	return e.w.Bytes()
}

// AppendFinish flushes the terminating bits and appends the encoded stream
// to dst, returning the extended slice. Unlike Finish, the returned bytes
// do not alias the encoder's internal buffer, so the encoder can be pooled
// and reused afterwards.
func (e *Encoder) AppendFinish(dst []byte) []byte {
	return append(dst, e.Finish()...)
}

// EncodeUniform codes v under a uniform distribution over {0,...,total-1}
// at a cost of log2(total) bits. The kd-tree coder uses it for split
// counts.
func (e *Encoder) EncodeUniform(v, total uint32) {
	if v >= total {
		panic("arith: uniform symbol out of range")
	}
	e.encodeInterval(uint64(v), uint64(v)+1, uint64(total))
}

// Decoder is the matching arithmetic decoder.
type Decoder struct {
	r       bitio.Reader
	low     uint64
	high    uint64
	code    uint64
	overrun int // zero bits synthesized past end of stream
}

// maxOverrun bounds how many bits a decoder may synthesize past the end of
// the buffer. A valid stream needs at most the register width; anything
// more means the stream was truncated.
const maxOverrun = codeBits + 2

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder {
	d := new(Decoder)
	d.Reset(buf)
	return d
}

// Reset repositions the decoder at the start of buf, discarding all prior
// state, so one Decoder can decode many streams without reallocating.
func (d *Decoder) Reset(buf []byte) {
	d.r.Reset(buf)
	d.low, d.high = 0, codeMask
	d.code = 0
	d.overrun = 0
	for i := 0; i < codeBits; i++ {
		d.code = d.code<<1 | uint64(d.nextBit())
	}
}

func (d *Decoder) nextBit() int {
	b, err := d.r.ReadBit()
	if err != nil {
		// The encoder does not emit trailing zeros; synthesize them.
		d.overrun++
		return 0
	}
	return b
}

// Decode decodes one symbol using model m and updates the model.
func (d *Decoder) Decode(m *Model) (int, error) {
	sym, err := d.decodeWith(m)
	if err != nil {
		return 0, err
	}
	m.update(sym)
	return sym, nil
}

// DecodeStatic decodes one symbol without adapting the model.
func (d *Decoder) DecodeStatic(m *Model) (int, error) {
	return d.decodeWith(m)
}

// DecodeUniform inverts EncodeUniform.
func (d *Decoder) DecodeUniform(total uint32) (uint32, error) {
	if total == 0 {
		return 0, ErrCorrupt
	}
	if d.overrun > maxOverrun {
		return 0, ErrCorrupt
	}
	t := uint64(total)
	span := d.high - d.low + 1
	offset := d.code - d.low
	target := ((offset+1)*t - 1) / span
	if target >= t {
		return 0, ErrCorrupt
	}
	sym := uint32(target)
	d.high = d.low + span*(target+1)/t - 1
	d.low = d.low + span*target/t
	for {
		switch {
		case d.high < half:
			// nothing
		case d.low >= half:
			d.low -= half
			d.high -= half
			d.code -= half
		case d.low >= quarter && d.high < threeQtr:
			d.low -= quarter
			d.high -= quarter
			d.code -= quarter
		default:
			return sym, nil
		}
		d.low = d.low << 1
		d.high = d.high<<1 | 1
		d.code = d.code<<1 | uint64(d.nextBit())
	}
}

func (d *Decoder) decodeWith(m *Model) (int, error) {
	if d.overrun > maxOverrun {
		return 0, ErrCorrupt
	}
	total := uint64(m.total)
	span := d.high - d.low + 1
	offset := d.code - d.low
	target := ((offset+1)*total - 1) / span
	if target >= total {
		return 0, ErrCorrupt
	}
	sym, lo32, hi32 := m.find(uint32(target))
	lo, hi := uint64(lo32), uint64(hi32)
	d.high = d.low + span*hi/total - 1
	d.low = d.low + span*lo/total
	for {
		switch {
		case d.high < half:
			// nothing
		case d.low >= half:
			d.low -= half
			d.high -= half
			d.code -= half
		case d.low >= quarter && d.high < threeQtr:
			d.low -= quarter
			d.high -= quarter
			d.code -= quarter
		default:
			return sym, nil
		}
		d.low = d.low << 1
		d.high = d.high<<1 | 1
		d.code = d.code<<1 | uint64(d.nextBit())
	}
}
