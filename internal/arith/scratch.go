package arith

import (
	"math/bits"
	"sync"

	"dbgc/internal/varint"
)

// Scratch pools for the coder's hot-path state. Every Compress/Decompress
// of a DBGC frame builds a handful of encoders, decoders, and frequency
// models whose backing arrays are identical from frame to frame; pooling
// them removes the per-frame allocation churn without changing any stream
// byte. The reuse contract (see DESIGN.md §8): a pooled object is only
// valid between Get and Put, Put must not be called while any slice
// returned by the object is still referenced, and pooled objects are never
// shared across goroutines.

// modelPools pools Models by power-of-two alphabet size (2^1 .. 2^8). All
// models on DBGC's hot paths — byte models (256), quadtree occupancy (16),
// reference symbols (4) — have power-of-two alphabets.
var modelPools [9]sync.Pool

// poolIndex returns the pool slot for alphabet size n, or -1 when n is not
// poolable (not a power of two, or out of range).
func poolIndex(n int) int {
	if n < 2 || n > 256 || n&(n-1) != 0 {
		return -1
	}
	return bits.TrailingZeros(uint(n))
}

// GetModel returns a model over {0,...,n-1} in its initial uniform state,
// reusing a pooled one when possible. Return it with PutModel.
func GetModel(n int) *Model {
	if i := poolIndex(n); i >= 0 {
		if v := modelPools[i].Get(); v != nil {
			m := v.(*Model)
			m.Reset()
			return m
		}
	}
	return NewModel(n)
}

// PutModel returns a model obtained from GetModel to its pool.
func PutModel(m *Model) {
	if m == nil {
		return
	}
	if i := poolIndex(m.n); i >= 0 {
		modelPools[i].Put(m)
	}
}

var encoderPool = sync.Pool{New: func() any { return NewEncoder() }}

// GetEncoder returns a reset encoder with a reusable output buffer. Callers
// that pool encoders must extract the stream with AppendFinish (which
// copies) rather than Finish (which aliases the internal buffer), then call
// PutEncoder.
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder returns an encoder obtained from GetEncoder to the pool. The
// encoder and any buffer returned by its Finish must not be used afterward.
func PutEncoder(e *Encoder) {
	if e != nil {
		encoderPool.Put(e)
	}
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// GetDecoder returns a decoder positioned at the start of buf, reusing a
// pooled one when possible. Return it with PutDecoder.
func GetDecoder(buf []byte) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.Reset(buf)
	return d
}

// PutDecoder releases a decoder obtained from GetDecoder. It drops the
// decoder's reference to the input buffer so the pool does not retain it.
func PutDecoder(d *Decoder) {
	if d == nil {
		return
	}
	d.r.Reset(nil)
	decoderPool.Put(d)
}

// bufPool recycles the varint staging buffers used by the integer
// compressors.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

// AppendCompressBytes appends the order-0 adaptive coding of buf to dst and
// returns the extended slice. It is CompressBytes with caller-owned output
// and pooled coder state.
func AppendCompressBytes(dst, buf []byte) []byte {
	e := GetEncoder()
	m := GetModel(256)
	for _, b := range buf {
		e.Encode(m, int(b))
	}
	dst = e.AppendFinish(dst)
	PutModel(m)
	PutEncoder(e)
	return dst
}

// AppendCompressInts appends the zigzag-varint arithmetic coding of vs to
// dst (the pooled equivalent of CompressInts).
func AppendCompressInts(dst []byte, vs []int64) []byte {
	bp := getBuf()
	buf := (*bp)[:0]
	for _, v := range vs {
		buf = varint.AppendInt(buf, v)
	}
	dst = AppendCompressBytes(dst, buf)
	*bp = buf
	putBuf(bp)
	return dst
}

// AppendCompressUints appends the varint arithmetic coding of vs to dst
// (the pooled equivalent of CompressUints).
func AppendCompressUints(dst []byte, vs []uint64) []byte {
	bp := getBuf()
	buf := (*bp)[:0]
	for _, v := range vs {
		buf = varint.AppendUint(buf, v)
	}
	dst = AppendCompressBytes(dst, buf)
	*bp = buf
	putBuf(bp)
	return dst
}
