package arith

import (
	"fmt"
	"sync"

	"dbgc/internal/declimits"
	"dbgc/internal/par"
	"dbgc/internal/varint"
)

// Sharded entropy streams (container v3). A sharded stream splits one
// symbol sequence into S contiguous shards, each coded by its own adaptive
// arithmetic coder, so encode and decode parallelize across cores while the
// sequence semantics stay identical. The framing is:
//
//	S       uvarint   shard count (>= 1)
//	len[i]  uvarint   compressed byte length of shard i, S times
//	payload bytes     the S shard streams, concatenated in order
//
// The element split is deterministic and derived from the out-of-band
// element count n that every DBGC stream already records next to its
// payload: shard i covers elements [i*n/S, (i+1)*n/S). Same input and same
// shard count therefore always produce the same bytes; the shard count is
// the only new degree of freedom, and it is recorded in the stream.
//
// Each shard restarts its adaptive model, which costs a few bytes of
// adaptation per shard; ClampShards keeps shards large enough that the
// overhead stays well under the ±0.5% ratio budget.

// MaxShards bounds the shard count a stream may declare. It is a
// corruption backstop, far above any useful parallelism (shards beyond the
// core count only add model-restart overhead).
const MaxShards = 4096

// minShardElems is the smallest element count worth a dedicated shard.
// Each shard restarts its adaptive model, which costs roughly 40-60 bytes
// of re-adaptation for the 256-symbol alphabets; one shard per 8Ki
// elements keeps that overhead under ~0.1% of a typical stream while still
// unlocking a shard per core on full-size LiDAR frames. Below the
// threshold the restart plus goroutine fork-join cost more than the
// parallelism returns.
const minShardElems = 8192

// ClampShards returns the effective shard count for n elements: at least
// 1, at most MaxShards, and never more than one shard per minShardElems
// elements. The clamp depends only on (n, shards), preserving determinism.
func ClampShards(shards, n int) int {
	if shards < 1 {
		shards = 1
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	if max := n / minShardElems; shards > max {
		shards = max
	}
	if shards < 1 {
		return 1
	}
	return shards
}

// shardRange returns the element range [lo, hi) of shard i of s over n
// elements. Computed in 64-bit so n near MaxInt cannot overflow.
func shardRange(n, s, i int) (lo, hi int) {
	lo = int(int64(n) * int64(i) / int64(s))
	hi = int(int64(n) * int64(i+1) / int64(s))
	return lo, hi
}

// shardBufPool recycles the per-shard staging buffers of the parallel
// encoders. Each shard encodes into its own pooled buffer (no two shards
// ever share one, so real parallelism brings no shared-scratch writes) and
// the buffer returns to the pool after its bytes are copied out.
var shardBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 8192)
	return &b
}}

// appendSharded frames n elements into shards shards, encoding each with
// encode(lo, hi, dst) (which appends shard [lo, hi) to dst and returns the
// extended slice). With parallel set the shards encode concurrently.
func appendSharded(dst []byte, n, shards int, parallel bool, encode func(lo, hi int, dst []byte) []byte) []byte {
	s := ClampShards(shards, n)
	dst = varint.AppendUint(dst, uint64(s))
	if s == 1 {
		// Single shard: encode straight into the output after its length.
		// The length must precede the payload, so stage through a pooled
		// buffer like the parallel path.
		bp := shardBufPool.Get().(*[]byte)
		part := encode(0, n, (*bp)[:0])
		dst = varint.AppendUint(dst, uint64(len(part)))
		dst = append(dst, part...)
		*bp = part[:0]
		shardBufPool.Put(bp)
		return dst
	}
	bufs := make([]*[]byte, s)
	parts := make([][]byte, s)
	encodeShard := func(i int) {
		lo, hi := shardRange(n, s, i)
		bufs[i] = shardBufPool.Get().(*[]byte)
		parts[i] = encode(lo, hi, (*bufs[i])[:0])
	}
	if parallel {
		// Bounded fan-out: par.Chunks runs at most GOMAXPROCS workers, each
		// encoding a contiguous run of shards. One goroutine per shard (the
		// previous scheme) oversubscribes badly when shard count exceeds the
		// core count — see DESIGN.md §12 on the BENCH_7 regression.
		par.Chunks(s, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				encodeShard(i)
			}
		})
	} else {
		for i := 0; i < s; i++ {
			encodeShard(i)
		}
	}
	for i := 0; i < s; i++ {
		dst = varint.AppendUint(dst, uint64(len(parts[i])))
	}
	for i := 0; i < s; i++ {
		dst = append(dst, parts[i]...)
		*bufs[i] = parts[i][:0]
		shardBufPool.Put(bufs[i])
	}
	return dst
}

// parseShards splits a sharded stream into its S payloads, validating the
// declared lengths against the available bytes and b's shard cap. The
// returned slices alias data.
func parseShards(data []byte, b *declimits.Budget) ([][]byte, error) {
	s64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("arith: shard count: %w", err)
	}
	data = data[used:]
	if s64 < 1 || s64 > MaxShards {
		return nil, fmt.Errorf("%w: shard count %d", ErrCorrupt, s64)
	}
	if err := b.Shards(int64(s64)); err != nil {
		return nil, err
	}
	s := int(s64)
	lens := make([]uint64, s)
	var total uint64
	for i := range lens {
		l, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("arith: shard %d length: %w", i, err)
		}
		data = data[used:]
		// Guard the running sum against wrap before comparing to len(data).
		if l > uint64(len(data)) || total+l > uint64(len(data)) {
			return nil, fmt.Errorf("%w: shard %d truncated", ErrCorrupt, i)
		}
		lens[i] = l
		total += l
	}
	if total != uint64(len(data)) {
		return nil, fmt.Errorf("%w: %d trailing bytes after shards", ErrCorrupt, uint64(len(data))-total)
	}
	shards := make([][]byte, s)
	for i, l := range lens {
		shards[i] = data[:l]
		data = data[l:]
	}
	return shards, nil
}

// decodeSharded parses the shard framing and runs decode(i, shard, lo, hi)
// for every shard, concurrently when parallel is set. The first error wins.
func decodeSharded(data []byte, n int, b *declimits.Budget, parallel bool, decode func(i int, shard []byte, lo, hi int) error) error {
	shards, err := parseShards(data, b)
	if err != nil {
		return err
	}
	s := len(shards)
	if parallel && s > 1 {
		errs := make([]error, s)
		par.Chunks(s, func(_, clo, chi int) {
			for i := clo; i < chi; i++ {
				func() {
					defer declimits.Recover(&errs[i], ErrCorrupt)
					lo, hi := shardRange(n, s, i)
					errs[i] = decode(i, shards[i], lo, hi)
				}()
			}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < s; i++ {
		lo, hi := shardRange(n, s, i)
		if err := decode(i, shards[i], lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// AppendSharded frames n elements into the shard layout, encoding each
// shard with encode(lo, hi, dst) (which appends shard [lo, hi) to dst and
// returns the extended slice). Exported so other codecs (blockpack) can
// reuse the container v3 framing — and its determinism and validation
// contract — without duplicating it.
func AppendSharded(dst []byte, n, shards int, parallel bool, encode func(lo, hi int, dst []byte) []byte) []byte {
	return appendSharded(dst, n, shards, parallel, encode)
}

// DecodeSharded parses the shard framing, validating the declared shard
// count and lengths against b, and runs decode(i, shard, lo, hi) for every
// shard — concurrently (bounded by GOMAXPROCS) when parallel is set. The
// first error wins. The exported counterpart of AppendSharded.
func DecodeSharded(data []byte, n int, b *declimits.Budget, parallel bool, decode func(i int, shard []byte, lo, hi int) error) error {
	return decodeSharded(data, n, b, parallel, decode)
}

// AppendCompressCodesSharded appends the sharded order-0 adaptive coding of
// codes over the alphabet {0,...,alphabet-1}. Every code must be below
// alphabet. With shards <= 1 (or too few codes to split) the stream holds a
// single shard whose payload is byte-identical to AppendCompressBytes /
// compressOccupancy output for the same model size.
func AppendCompressCodesSharded(dst, codes []byte, alphabet, shards int, parallel bool) []byte {
	return appendSharded(dst, len(codes), shards, parallel, func(lo, hi int, out []byte) []byte {
		e := GetEncoder()
		m := GetModel(alphabet)
		for _, c := range codes[lo:hi] {
			e.Encode(m, int(c))
		}
		out = e.AppendFinish(out)
		PutModel(m)
		PutEncoder(e)
		return out
	})
}

// DecompressCodesShardedLimited inverts AppendCompressCodesSharded,
// decoding exactly n codes and charging them against b. With parallel set
// the shards decode on separate goroutines.
func DecompressCodesShardedLimited(buf []byte, n, alphabet int, b *declimits.Budget, parallel bool) ([]byte, error) {
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	err := decodeSharded(buf, n, b, parallel, func(_ int, shard []byte, lo, hi int) error {
		d := GetDecoder(shard)
		m := GetModel(alphabet)
		for k := lo; k < hi; k++ {
			sym, err := d.Decode(m)
			if err != nil {
				PutModel(m)
				PutDecoder(d)
				return fmt.Errorf("arith: code %d/%d: %w", k, n, err)
			}
			if sym >= alphabet {
				PutModel(m)
				PutDecoder(d)
				return fmt.Errorf("%w: code %d out of alphabet", ErrCorrupt, sym)
			}
			out[k] = byte(sym)
		}
		PutModel(m)
		PutDecoder(d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AppendCompressUintsSharded appends the sharded varint arithmetic coding
// of vs (the sharded counterpart of AppendCompressUints).
func AppendCompressUintsSharded(dst []byte, vs []uint64, shards int, parallel bool) []byte {
	return appendSharded(dst, len(vs), shards, parallel, func(lo, hi int, out []byte) []byte {
		return AppendCompressUints(out, vs[lo:hi])
	})
}

// DecompressUintsShardedLimited inverts AppendCompressUintsSharded,
// decoding exactly n integers.
func DecompressUintsShardedLimited(buf []byte, n int, b *declimits.Budget, parallel bool) ([]uint64, error) {
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	err := decodeSharded(buf, n, b, parallel, func(_ int, shard []byte, lo, hi int) error {
		d := GetDecoder(shard)
		m := GetModel(256)
		for k := lo; k < hi; k++ {
			v, err := decodeVarint(d, m)
			if err != nil {
				PutModel(m)
				PutDecoder(d)
				return fmt.Errorf("arith: uint %d/%d: %w", k, n, err)
			}
			out[k] = v
		}
		PutModel(m)
		PutDecoder(d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AppendCompressIntsSharded appends the sharded zigzag-varint arithmetic
// coding of vs (the sharded counterpart of AppendCompressInts).
func AppendCompressIntsSharded(dst []byte, vs []int64, shards int, parallel bool) []byte {
	return appendSharded(dst, len(vs), shards, parallel, func(lo, hi int, out []byte) []byte {
		return AppendCompressInts(out, vs[lo:hi])
	})
}

// DecompressIntsShardedLimited inverts AppendCompressIntsSharded, decoding
// exactly n integers.
func DecompressIntsShardedLimited(buf []byte, n int, b *declimits.Budget, parallel bool) ([]int64, error) {
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	err := decodeSharded(buf, n, b, parallel, func(_ int, shard []byte, lo, hi int) error {
		d := GetDecoder(shard)
		m := GetModel(256)
		for k := lo; k < hi; k++ {
			v, err := decodeVarint(d, m)
			if err != nil {
				PutModel(m)
				PutDecoder(d)
				return fmt.Errorf("arith: int %d/%d: %w", k, n, err)
			}
			out[k] = varint.Unzigzag(v)
		}
		PutModel(m)
		PutDecoder(d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
