package arith

import (
	"testing"

	"dbgc/internal/declimits"
)

// FuzzShardedStream hammers the sharded decoders (container v3 framing)
// with mutated shard headers and payloads under a decode budget. Run with
// `go test -fuzz=FuzzShardedStream ./internal/arith/`. Invariants: no
// panics, no decode past the node budget, and the shard-count cap always
// rejects streams declaring more shards than allowed.
func FuzzShardedStream(f *testing.F) {
	codes := shardTestCodes(4096, 256)
	f.Add(AppendCompressCodesSharded(nil, codes, 256, 4, false), uint32(4096))
	us := make([]uint64, 512)
	is := make([]int64, 512)
	for i := range us {
		us[i] = uint64(i * i)
		is[i] = int64(i) - 256
	}
	f.Add(AppendCompressUintsSharded(nil, us, 2, false), uint32(512))
	f.Add(AppendCompressIntsSharded(nil, is, 8, false), uint32(512))
	// Hostile headers: huge shard count, zero shards, lying lengths.
	f.Add([]byte{0xff, 0xff, 0x7f, 1, 2, 3}, uint32(100))
	f.Add([]byte{0}, uint32(1))
	f.Add([]byte{2, 0x7f, 0x7f, 1}, uint32(64))
	f.Add([]byte{}, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, n uint32) {
		lim := declimits.Limits{MaxNodes: 1 << 16, MaxShards: 16, MemBudget: 16 << 20}
		for _, parallel := range []bool{false, true} {
			if _, err := DecompressCodesShardedLimited(data, int(n), 256, declimits.New(lim), parallel); err == nil {
				if int64(n) > lim.MaxNodes {
					t.Fatalf("decoded %d codes past the %d-node budget", n, lim.MaxNodes)
				}
			}
			_, _ = DecompressUintsShardedLimited(data, int(n), declimits.New(lim), parallel)
			_, _ = DecompressIntsShardedLimited(data, int(n), declimits.New(lim), parallel)
		}
		// The framing parser itself must honor the shard cap.
		b := declimits.New(declimits.Limits{MaxShards: 2, MaxNodes: 1 << 16, MemBudget: 16 << 20})
		if shards, err := parseShards(data, b); err == nil && len(shards) > 2 {
			t.Fatalf("parseShards returned %d shards past the cap of 2", len(shards))
		}
	})
}
