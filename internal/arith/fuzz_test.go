package arith

import (
	"testing"

	"dbgc/internal/declimits"
)

// FuzzDecompress drives the three adaptive-model decoders with mutated
// streams and hostile symbol counts under a decode budget; they must
// never panic and never decode more symbols than the budget allows.
func FuzzDecompress(f *testing.F) {
	f.Add(CompressUints([]uint64{1, 2, 3, 1000, 0}), uint32(5))
	f.Add(CompressInts([]int64{-4, 9, 0, 1 << 40}), uint32(4))
	f.Add(CompressBytes([]byte("density-based geometry compression")), uint32(34))
	f.Add([]byte{}, uint32(1<<20))
	f.Fuzz(func(t *testing.T, data []byte, n uint32) {
		lim := declimits.Limits{MaxNodes: 1 << 18, MemBudget: 16 << 20}
		if _, err := DecompressUintsLimited(data, int(n), declimits.New(lim)); err == nil && int64(n) > lim.MaxNodes {
			t.Fatalf("decoded %d uints past the %d-node budget", n, lim.MaxNodes)
		}
		_, _ = DecompressIntsLimited(data, int(n), declimits.New(lim))
		_, _ = DecompressBytesLimited(data, int(n), declimits.New(lim))
	})
}
