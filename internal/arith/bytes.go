package arith

import (
	"fmt"

	"dbgc/internal/declimits"
	"dbgc/internal/varint"
)

// CompressBytes compresses buf with an order-0 adaptive byte model. It is
// the "arithmetic coder" building block the paper applies to serialized
// occupancy codes and varint-encoded delta streams.
func CompressBytes(buf []byte) []byte {
	return AppendCompressBytes(nil, buf)
}

// clampCap bounds a count taken from an untrusted stream header before it
// becomes an allocation capacity. Decoding appends past the clamp when the
// stream genuinely carries that many elements.
func clampCap(n int) int {
	const maxPrealloc = 1 << 22
	if n < 0 {
		return 0
	}
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// DecompressBytes inverts CompressBytes. n is the number of original bytes,
// which callers carry out of band (all DBGC streams record their element
// counts).
func DecompressBytes(buf []byte, n int) ([]byte, error) {
	return DecompressBytesLimited(buf, n, nil)
}

// DecompressBytesLimited is DecompressBytes charging the n decoded symbols
// against b up front (the decode loop is bounded by n, so one charge
// covers it). A nil budget is unlimited.
func DecompressBytesLimited(buf []byte, n int, b *declimits.Budget) ([]byte, error) {
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	d := GetDecoder(buf)
	m := GetModel(256)
	out := make([]byte, 0, clampCap(n))
	for i := 0; i < n; i++ {
		sym, err := d.Decode(m)
		if err != nil {
			PutModel(m)
			PutDecoder(d)
			return nil, fmt.Errorf("arith: byte %d/%d: %w", i, n, err)
		}
		out = append(out, byte(sym))
	}
	PutModel(m)
	PutDecoder(d)
	return out, nil
}

// CompressInts zigzag-varint-serializes vs and arithmetic-codes the bytes.
// This is how DBGC entropy-codes integer delta sequences whose alphabet is
// unbounded (Δφ, ∇r, Δz).
func CompressInts(vs []int64) []byte {
	return AppendCompressInts(nil, vs)
}

// DecompressInts inverts CompressInts, decoding exactly n integers.
func DecompressInts(buf []byte, n int) ([]int64, error) {
	return DecompressIntsLimited(buf, n, nil)
}

// DecompressIntsLimited is DecompressInts charging the n decoded elements
// (and their 8 output bytes each) against b up front.
func DecompressIntsLimited(buf []byte, n int, b *declimits.Budget) ([]int64, error) {
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	d := GetDecoder(buf)
	m := GetModel(256)
	out := make([]int64, 0, clampCap(n))
	for i := 0; i < n; i++ {
		v, err := decodeVarint(d, m)
		if err != nil {
			PutModel(m)
			PutDecoder(d)
			return nil, fmt.Errorf("arith: int %d/%d: %w", i, n, err)
		}
		out = append(out, varint.Unzigzag(v))
	}
	PutModel(m)
	PutDecoder(d)
	return out, nil
}

// CompressUints is CompressInts for unsigned sequences (e.g. polyline
// lengths, leaf point counts).
func CompressUints(vs []uint64) []byte {
	return AppendCompressUints(nil, vs)
}

// DecompressUints inverts CompressUints, decoding exactly n integers.
func DecompressUints(buf []byte, n int) ([]uint64, error) {
	return DecompressUintsLimited(buf, n, nil)
}

// DecompressUintsLimited is DecompressUints charging the n decoded
// elements (and their 8 output bytes each) against b up front.
func DecompressUintsLimited(buf []byte, n int, b *declimits.Budget) ([]uint64, error) {
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	d := GetDecoder(buf)
	m := GetModel(256)
	out := make([]uint64, 0, clampCap(n))
	for i := 0; i < n; i++ {
		v, err := decodeVarint(d, m)
		if err != nil {
			PutModel(m)
			PutDecoder(d)
			return nil, fmt.Errorf("arith: uint %d/%d: %w", i, n, err)
		}
		out = append(out, v)
	}
	PutModel(m)
	PutDecoder(d)
	return out, nil
}

// decodeVarint reads LEB128 continuation bytes through the arithmetic
// decoder until a terminating byte arrives.
func decodeVarint(d *Decoder, m *Model) (uint64, error) {
	var v uint64
	var shift uint
	for {
		sym, err := d.Decode(m)
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, ErrCorrupt
		}
		v |= uint64(sym&0x7f) << shift
		if sym < 0x80 {
			return v, nil
		}
		shift += 7
	}
}
