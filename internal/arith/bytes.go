package arith

import (
	"fmt"

	"dbgc/internal/varint"
)

// CompressBytes compresses buf with an order-0 adaptive byte model. It is
// the "arithmetic coder" building block the paper applies to serialized
// occupancy codes and varint-encoded delta streams.
func CompressBytes(buf []byte) []byte {
	e := NewEncoder()
	m := NewModel(256)
	for _, b := range buf {
		e.Encode(m, int(b))
	}
	return e.Finish()
}

// DecompressBytes inverts CompressBytes. n is the number of original bytes,
// which callers carry out of band (all DBGC streams record their element
// counts).
func DecompressBytes(buf []byte, n int) ([]byte, error) {
	d := NewDecoder(buf)
	m := NewModel(256)
	out := make([]byte, n)
	for i := range out {
		sym, err := d.Decode(m)
		if err != nil {
			return nil, fmt.Errorf("arith: byte %d/%d: %w", i, n, err)
		}
		out[i] = byte(sym)
	}
	return out, nil
}

// CompressInts zigzag-varint-serializes vs and arithmetic-codes the bytes.
// This is how DBGC entropy-codes integer delta sequences whose alphabet is
// unbounded (Δφ, ∇r, Δz).
func CompressInts(vs []int64) []byte {
	return CompressBytes(varint.EncodeInts(vs))
}

// DecompressInts inverts CompressInts, decoding exactly n integers.
func DecompressInts(buf []byte, n int) ([]int64, error) {
	d := NewDecoder(buf)
	m := NewModel(256)
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		v, err := decodeVarint(d, m)
		if err != nil {
			return nil, fmt.Errorf("arith: int %d/%d: %w", i, n, err)
		}
		out = append(out, varint.Unzigzag(v))
	}
	return out, nil
}

// CompressUints is CompressInts for unsigned sequences (e.g. polyline
// lengths, leaf point counts).
func CompressUints(vs []uint64) []byte {
	return CompressBytes(varint.EncodeUints(vs))
}

// DecompressUints inverts CompressUints, decoding exactly n integers.
func DecompressUints(buf []byte, n int) ([]uint64, error) {
	d := NewDecoder(buf)
	m := NewModel(256)
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		v, err := decodeVarint(d, m)
		if err != nil {
			return nil, fmt.Errorf("arith: uint %d/%d: %w", i, n, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// decodeVarint reads LEB128 continuation bytes through the arithmetic
// decoder until a terminating byte arrives.
func decodeVarint(d *Decoder, m *Model) (uint64, error) {
	var v uint64
	var shift uint
	for {
		sym, err := d.Decode(m)
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, ErrCorrupt
		}
		v |= uint64(sym&0x7f) << shift
		if sym < 0x80 {
			return v, nil
		}
		shift += 7
	}
}
