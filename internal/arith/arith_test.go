package arith

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dbgc/internal/entropy"
)

func TestBytesRoundTripEmpty(t *testing.T) {
	out, err := DecompressBytes(CompressBytes(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("want empty, got %d bytes", len(out))
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(4000)
		data := make([]byte, n)
		// Skewed distribution: mostly small symbols, like delta streams.
		for i := range data {
			data[i] = byte(rng.ExpFloat64() * 3)
		}
		enc := CompressBytes(data)
		dec, err := DecompressBytes(enc, len(data))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestBytesRoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := DecompressBytes(CompressBytes(data), len(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewedCompression(t *testing.T) {
	// A heavily skewed stream must compress near its entropy, well below
	// 8 bits/byte.
	data := make([]byte, 20000)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		if rng.Float64() < 0.9 {
			data[i] = 0
		} else {
			data[i] = byte(rng.Intn(4))
		}
	}
	enc := CompressBytes(data)
	h := entropy.OfBytes(data)
	gotBits := float64(len(enc)*8) / float64(len(data))
	if gotBits > h*1.15+0.2 {
		t.Fatalf("adaptive coder too far from entropy: %.3f bits/byte vs entropy %.3f", gotBits, h)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	vs := []int64{0, 1, -1, 100, -100, 1 << 40, -(1 << 40), 0, 0, 0}
	dec, err := DecompressInts(CompressInts(vs), len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if dec[i] != vs[i] {
			t.Fatalf("value %d = %d, want %d", i, dec[i], vs[i])
		}
	}
}

func TestIntsRoundTripQuick(t *testing.T) {
	f := func(vs []int64) bool {
		dec, err := DecompressInts(CompressInts(vs), len(vs))
		if err != nil {
			return false
		}
		for i := range vs {
			if dec[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUintsRoundTripQuick(t *testing.T) {
	f := func(vs []uint64) bool {
		dec, err := DecompressUints(CompressUints(vs), len(vs))
		if err != nil {
			return false
		}
		for i := range vs {
			if dec[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallAlphabetModel(t *testing.T) {
	// The L_ref stream uses a 4-symbol model (§3.5 step 8).
	rng := rand.New(rand.NewSource(11))
	syms := make([]int, 5000)
	for i := range syms {
		syms[i] = rng.Intn(4)
	}
	e := NewEncoder()
	m := NewModel(4)
	for _, s := range syms {
		e.Encode(m, s)
	}
	buf := e.Finish()

	d := NewDecoder(buf)
	m2 := NewModel(4)
	for i, want := range syms {
		got, err := d.Decode(m2)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

func TestModelRescale(t *testing.T) {
	// Push one symbol enough times to force repeated rescaling and ensure
	// coding still round-trips.
	n := (maxTotal/increment)*3 + 100
	e := NewEncoder()
	m := NewModel(3)
	for i := 0; i < n; i++ {
		e.Encode(m, i%2)
	}
	buf := e.Finish()
	d := NewDecoder(buf)
	m2 := NewModel(3)
	for i := 0; i < n; i++ {
		got, err := d.Decode(m2)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if got != i%2 {
			t.Fatalf("symbol %d = %d, want %d", i, got, i%2)
		}
	}
}

func TestModelFindConsistency(t *testing.T) {
	m := NewModel(17)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		m.update(rng.Intn(17))
		target := uint32(rng.Intn(int(m.total)))
		sym, lo, hi := m.find(target)
		if target < lo || target >= hi {
			t.Fatalf("find(%d) interval [%d,%d) does not contain target", target, lo, hi)
		}
		wlo, whi, _ := m.interval(sym)
		if wlo != lo || whi != hi {
			t.Fatalf("find/interval disagree for sym %d: [%d,%d) vs [%d,%d)", sym, lo, hi, wlo, whi)
		}
	}
}

func TestCorruptStream(t *testing.T) {
	// Decoding far more symbols than a short stream encodes must fail
	// with ErrCorrupt rather than spinning or panicking.
	enc := CompressBytes([]byte{1, 2, 3})
	d := NewDecoder(enc)
	m := NewModel(256)
	var err error
	for i := 0; i < 10000; i++ {
		if _, err = d.Decode(m); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected ErrCorrupt after stream exhaustion")
	}
}

func TestDecompressTruncated(t *testing.T) {
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	enc := CompressBytes(data)
	_, err := DecompressBytes(enc[:len(enc)/4], len(data))
	if err == nil {
		t.Fatal("expected error decoding truncated stream")
	}
}

func BenchmarkCompressBytes(b *testing.B) {
	data := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.ExpFloat64() * 2)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CompressBytes(data)
	}
}

func BenchmarkDecompressBytes(b *testing.B) {
	data := make([]byte, 1<<16)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.ExpFloat64() * 2)
	}
	enc := CompressBytes(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressBytes(enc, len(data)); err != nil {
			b.Fatal(err)
		}
	}
}
