package blockpack

import (
	"testing"

	"dbgc/internal/declimits"
)

// FuzzBlockPack drives both directions of the codec: well-formed streams
// must round-trip exactly, and arbitrary bytes fed to the unpackers under a
// decode budget must never panic or decode past the budget. Run with
// `go test -fuzz=FuzzBlockPack ./internal/blockpack/`.
func FuzzBlockPack(f *testing.F) {
	small := []uint64{0, 1, 2, 3, 250, 251, 1 << 40, 4, 5}
	f.Add(PackUint64(nil, small), uint32(len(small)), uint8(0))
	ramp := make([]uint64, 300)
	for i := range ramp {
		ramp[i] = uint64(i * 7)
	}
	f.Add(PackUint64(nil, ramp), uint32(len(ramp)), uint8(0))
	f.Add(PackUint64Sharded(nil, ramp, 4, false), uint32(len(ramp)), uint8(1))
	f.Add(PackDeltaUint64(nil, ramp), uint32(len(ramp)), uint8(2))
	// Hostile headers: absurd width, exception counts, empty payloads.
	f.Add([]byte{64, 128}, uint32(128), uint8(0))
	f.Add([]byte{65, 0}, uint32(1), uint8(0))
	f.Add([]byte{0xff, 0xff, 0x7f, 1, 2}, uint32(50), uint8(1))
	f.Add([]byte{}, uint32(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, n uint32, mode uint8) {
		lim := declimits.Limits{MaxNodes: 1 << 16, MaxShards: 16, MemBudget: 16 << 20}
		switch mode % 3 {
		case 0:
			if out, err := UnpackUint64(data, int(n), declimits.New(lim)); err == nil {
				if int64(n) > lim.MaxNodes {
					t.Fatalf("decoded %d values past the %d-node budget", n, lim.MaxNodes)
				}
				// A decodable stream must re-encode to a decodable stream of
				// the same values (not necessarily the same bytes: packing is
				// canonical, arbitrary input may not be).
				again, err := UnpackUint64(PackUint64(nil, out), len(out), nil)
				if err != nil {
					t.Fatalf("repack failed: %v", err)
				}
				for i := range out {
					if again[i] != out[i] {
						t.Fatalf("repack changed value %d", i)
					}
				}
			}
			_, _ = UnpackInt64(data, int(n), declimits.New(lim))
		case 1:
			for _, parallel := range []bool{false, true} {
				if _, err := UnpackUint64Sharded(data, int(n), declimits.New(lim), parallel); err == nil {
					if int64(n) > lim.MaxNodes {
						t.Fatalf("sharded decode of %d values past the node budget", n)
					}
				}
				_, _ = UnpackInt64Sharded(data, int(n), declimits.New(lim), parallel)
			}
		default:
			_, _ = UnpackDeltaUint64(data, int(n), declimits.New(lim))
			_, _ = UnpackUint32(data, int(n), declimits.New(lim))
		}
	})
}
