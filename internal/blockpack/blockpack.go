// Package blockpack is a pure-Go block bitpacking codec for the integer
// hot paths of the DBGC container (leaf counts, polyline lengths, angular
// and radial deltas, z deltas). It packs fixed 128-value blocks at the
// per-block minimum bit width and patches the few values that exceed it as
// exceptions, in the FastPFOR lineage of Lemire & Boytsov; exception high
// bits are coded with a StreamVByte-style control-byte group scheme. The
// wire layout keeps the control area, positions, and packed payload
// contiguous and byte-aligned per block, so SIMD kernels can replace the
// scalar loops later without a format change.
//
// Per block of len <= 128 values:
//
//	width    1 byte   packed bit width w (0..64)
//	excs     1 byte   exception count E (0..len)
//	pos[E]   E bytes  exception positions, strictly ascending, < len
//	ctrl     ceil(E/4) bytes, 2-bit length classes (1, 2, 4, 8 bytes)
//	high[E]  little-endian high bits (v >> w) sized by the classes
//	payload  ceil(len*w/8) bytes, w-bit values packed LSB-first
//
// The width is chosen per block by exact byte-cost minimization, so blocks
// of near-constant values collapse to two bytes (w = 0, E = 0). A stream is
// the concatenation of its blocks; the element count travels out of band,
// like every other DBGC stream. Packing needs no heap scratch (blocks live
// in fixed stack arrays) and unpacking allocates only its output.
//
// Sharded variants reuse the container v3 shard framing of internal/arith,
// so blockpacked streams keep the shard-parallel decode and the
// DecodeLimits validation story of the entropy-coded streams they replace.
package blockpack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"dbgc/internal/arith"
	"dbgc/internal/declimits"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed blockpack stream.
var ErrCorrupt = errors.New("blockpack: corrupt stream")

// BlockSize is the number of values per full block. 128 matches the
// FastPFOR page size: large enough to amortize the two header bytes, small
// enough that one outlier value only forces exceptions within its own block.
const BlockSize = 128

// excClassBytes maps a 2-bit StreamVByte length class to its byte count.
var excClassBytes = [4]int{1, 2, 4, 8}

// excClass returns the smallest length class holding b bits (1 <= b <= 64).
func excClass(b int) int {
	switch {
	case b <= 8:
		return 0
	case b <= 16:
		return 1
	case b <= 32:
		return 2
	default:
		return 3
	}
}

// payloadBytes is the packed payload size of n values at width w.
func payloadBytes(n, w int) int { return (n*w + 7) / 8 }

// packBlock appends one block (len(vs) <= BlockSize, non-empty) to dst.
func packBlock(dst []byte, vs []uint64) []byte {
	var blen [BlockSize]uint8
	var hist [65]int16
	maxb := 0
	for i, v := range vs {
		b := bits.Len64(v)
		blen[i] = uint8(b)
		hist[b]++
		if b > maxb {
			maxb = b
		}
	}

	// Exact cost minimization over candidate widths, descending so equal
	// costs resolve to the larger width (fewer exceptions, faster unpack).
	bestW := maxb
	bestCost := 2 + payloadBytes(len(vs), maxb)
	for w := maxb - 1; w >= 0; w-- {
		excs, excBytes := 0, 0
		for b := w + 1; b <= maxb; b++ {
			c := int(hist[b])
			if c == 0 {
				continue
			}
			excs += c
			excBytes += c * excClassBytes[excClass(b-w)]
		}
		cost := 2 + payloadBytes(len(vs), w)
		if excs > 0 {
			cost += excs + (excs+3)/4 + excBytes
		}
		if cost < bestCost {
			bestCost, bestW = cost, w
		}
	}
	w := bestW

	excs := 0
	for b := w + 1; b <= maxb; b++ {
		excs += int(hist[b])
	}
	dst = append(dst, byte(w), byte(excs))
	if excs > 0 {
		// Positions, then the StreamVByte group coding of the high bits:
		// control bytes first (2-bit classes, 4 values per byte), then the
		// little-endian high values sized by their class.
		for i, b := range blen[:len(vs)] {
			if int(b) > w {
				dst = append(dst, byte(i))
			}
		}
		ctrlAt := len(dst)
		for i := 0; i < (excs+3)/4; i++ {
			dst = append(dst, 0)
		}
		j := 0
		for i, b := range blen[:len(vs)] {
			if int(b) <= w {
				continue
			}
			hi := vs[i] >> uint(w)
			cls := excClass(int(b) - w)
			dst[ctrlAt+j/4] |= byte(cls) << uint(2*(j%4))
			switch cls {
			case 0:
				dst = append(dst, byte(hi))
			case 1:
				dst = binary.LittleEndian.AppendUint16(dst, uint16(hi))
			case 2:
				dst = binary.LittleEndian.AppendUint32(dst, uint32(hi))
			default:
				dst = binary.LittleEndian.AppendUint64(dst, hi)
			}
			j++
		}
	}
	if w == 0 {
		return dst
	}

	// LSB-first bit packing of the low w bits of every value.
	uw := uint(w)
	mask := ^uint64(0)
	if w < 64 {
		mask = uint64(1)<<uw - 1
	}
	var acc uint64
	nb := uint(0)
	for _, v := range vs {
		v &= mask
		acc |= v << nb
		if nb+uw >= 64 {
			dst = binary.LittleEndian.AppendUint64(dst, acc)
			spilled := 64 - nb
			nb = nb + uw - 64
			if spilled < 64 {
				acc = v >> spilled
			} else {
				acc = 0
			}
		} else {
			nb += uw
		}
	}
	for nb > 0 {
		dst = append(dst, byte(acc))
		acc >>= 8
		if nb >= 8 {
			nb -= 8
		} else {
			nb = 0
		}
	}
	return dst
}

// load64 reads up to 8 little-endian bytes of p starting at off, zero-padded
// past the end.
func load64(p []byte, off int) uint64 {
	if off+8 <= len(p) {
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for j := off; j < len(p); j++ {
		v |= uint64(p[j]) << uint(8*(j-off))
	}
	return v
}

// unpackBlock decodes one block of exactly len(out) values from the front
// of data and returns the bytes consumed.
func unpackBlock(out []uint64, data []byte) (int, error) {
	bl := len(out)
	if len(data) < 2 {
		return 0, fmt.Errorf("%w: truncated block header", ErrCorrupt)
	}
	w := int(data[0])
	excs := int(data[1])
	if w > 64 {
		return 0, fmt.Errorf("%w: bit width %d", ErrCorrupt, w)
	}
	if excs > bl {
		return 0, fmt.Errorf("%w: %d exceptions in a %d-value block", ErrCorrupt, excs, bl)
	}
	p := 2

	var pos [BlockSize]uint8
	var high [BlockSize]uint64
	if excs > 0 {
		if len(data) < p+excs {
			return 0, fmt.Errorf("%w: truncated exception positions", ErrCorrupt)
		}
		prev := -1
		for j := 0; j < excs; j++ {
			pj := int(data[p+j])
			if pj <= prev || pj >= bl {
				return 0, fmt.Errorf("%w: exception position %d", ErrCorrupt, pj)
			}
			pos[j] = uint8(pj)
			prev = pj
		}
		p += excs
		nc := (excs + 3) / 4
		if len(data) < p+nc {
			return 0, fmt.Errorf("%w: truncated exception control", ErrCorrupt)
		}
		ctrl := data[p : p+nc]
		p += nc
		for j := 0; j < excs; j++ {
			cls := int(ctrl[j/4]>>uint(2*(j%4))) & 3
			nb := excClassBytes[cls]
			if len(data) < p+nb {
				return 0, fmt.Errorf("%w: truncated exception values", ErrCorrupt)
			}
			switch cls {
			case 0:
				high[j] = uint64(data[p])
			case 1:
				high[j] = uint64(binary.LittleEndian.Uint16(data[p:]))
			case 2:
				high[j] = uint64(binary.LittleEndian.Uint32(data[p:]))
			default:
				high[j] = binary.LittleEndian.Uint64(data[p:])
			}
			p += nb
		}
	}

	pb := payloadBytes(bl, w)
	if len(data) < p+pb {
		return 0, fmt.Errorf("%w: truncated block payload", ErrCorrupt)
	}
	payload := data[p : p+pb]
	switch {
	case w == 0:
		for i := range out {
			out[i] = 0
		}
	case w <= 57:
		// One unaligned 64-bit load always covers a value: after the 3-bit
		// shift at most 57 bits remain, so w <= 57 fits.
		mask := uint64(1)<<uint(w) - 1
		bitpos := 0
		for i := range out {
			chunk := load64(payload, bitpos>>3)
			out[i] = chunk >> uint(bitpos&7) & mask
			bitpos += w
		}
	default:
		mask := ^uint64(0)
		if w < 64 {
			mask = uint64(1)<<uint(w) - 1
		}
		bitpos := 0
		for i := range out {
			off := bitpos >> 3
			sh := uint(bitpos & 7)
			v := load64(payload, off) >> sh
			if sh > 0 && off+8 < len(payload) {
				v |= uint64(payload[off+8]) << (64 - sh)
			}
			out[i] = v & mask
			bitpos += w
		}
	}
	for j := 0; j < excs; j++ {
		out[pos[j]] |= high[j] << uint(w)
	}
	return p + pb, nil
}

// PackUint64 appends the blockpacked coding of vs to dst and returns the
// extended slice. An empty input appends nothing.
func PackUint64(dst []byte, vs []uint64) []byte {
	for len(vs) > 0 {
		bl := len(vs)
		if bl > BlockSize {
			bl = BlockSize
		}
		dst = packBlock(dst, vs[:bl])
		vs = vs[bl:]
	}
	return dst
}

// unpackUint64Into decodes exactly len(out) values from data, which must
// hold the blocks and nothing else.
func unpackUint64Into(out []uint64, data []byte) error {
	for start := 0; start < len(out); start += BlockSize {
		end := start + BlockSize
		if end > len(out) {
			end = len(out)
		}
		used, err := unpackBlock(out[start:end], data)
		if err != nil {
			return err
		}
		data = data[used:]
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	return nil
}

// UnpackUint64 decodes exactly n values from data, charging them against b
// (nil means unlimited). The stream must hold exactly n values' blocks.
func UnpackUint64(data []byte, n int, b *declimits.Budget) ([]uint64, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative element count", ErrCorrupt)
	}
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	out := make([]uint64, 0, declimits.CapPrealloc(uint64(n)))
	var blk [BlockSize]uint64
	for len(out) < n {
		bl := n - len(out)
		if bl > BlockSize {
			bl = BlockSize
		}
		used, err := unpackBlock(blk[:bl], data)
		if err != nil {
			return nil, err
		}
		data = data[used:]
		out = append(out, blk[:bl]...)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	return out, nil
}

// PackInt64 appends the blockpacked coding of vs, zigzag-mapped so small
// magnitudes of either sign pack narrow.
func PackInt64(dst []byte, vs []int64) []byte {
	var blk [BlockSize]uint64
	for len(vs) > 0 {
		bl := len(vs)
		if bl > BlockSize {
			bl = BlockSize
		}
		for i, v := range vs[:bl] {
			blk[i] = varint.Zigzag(v)
		}
		dst = packBlock(dst, blk[:bl])
		vs = vs[bl:]
	}
	return dst
}

// UnpackInt64 inverts PackInt64, decoding exactly n values.
func UnpackInt64(data []byte, n int, b *declimits.Budget) ([]int64, error) {
	us, err := UnpackUint64(data, n, b)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(us))
	for i, u := range us {
		out[i] = varint.Unzigzag(u)
	}
	return out, nil
}

// PackUint32 appends the blockpacked coding of vs. The wire format is the
// shared 64-bit block layout (widths stay <= 32 naturally), so Uint32 and
// Uint64 streams interoperate.
func PackUint32(dst []byte, vs []uint32) []byte {
	var blk [BlockSize]uint64
	for len(vs) > 0 {
		bl := len(vs)
		if bl > BlockSize {
			bl = BlockSize
		}
		for i, v := range vs[:bl] {
			blk[i] = uint64(v)
		}
		dst = packBlock(dst, blk[:bl])
		vs = vs[bl:]
	}
	return dst
}

// UnpackUint32 inverts PackUint32, decoding exactly n values and rejecting
// streams whose values overflow 32 bits.
func UnpackUint32(data []byte, n int, b *declimits.Budget) ([]uint32, error) {
	us, err := UnpackUint64(data, n, b)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, len(us))
	for i, u := range us {
		if u > 1<<32-1 {
			return nil, fmt.Errorf("%w: value %d overflows uint32", ErrCorrupt, u)
		}
		out[i] = uint32(u)
	}
	return out, nil
}

// PackDeltaUint64 appends the blockpacked coding of the consecutive
// differences of vs (wrapping, zigzag-mapped), for sorted or slowly-varying
// sequences the caller has not already delta-coded.
func PackDeltaUint64(dst []byte, vs []uint64) []byte {
	var blk [BlockSize]uint64
	prev := uint64(0)
	for len(vs) > 0 {
		bl := len(vs)
		if bl > BlockSize {
			bl = BlockSize
		}
		for i, v := range vs[:bl] {
			blk[i] = varint.Zigzag(int64(v - prev))
			prev = v
		}
		dst = packBlock(dst, blk[:bl])
		vs = vs[bl:]
	}
	return dst
}

// UnpackDeltaUint64 inverts PackDeltaUint64, decoding exactly n values.
func UnpackDeltaUint64(data []byte, n int, b *declimits.Budget) ([]uint64, error) {
	us, err := UnpackUint64(data, n, b)
	if err != nil {
		return nil, err
	}
	prev := uint64(0)
	for i, u := range us {
		prev += uint64(varint.Unzigzag(u))
		us[i] = prev
	}
	return us, nil
}

// PackUint64Sharded appends vs in the container v3 shard framing with
// blockpacked shard payloads. The split depends only on (len(vs), shards),
// so the bytes are independent of parallel and GOMAXPROCS. Block boundaries
// restart per shard, keeping shard payloads independently decodable.
func PackUint64Sharded(dst []byte, vs []uint64, shards int, parallel bool) []byte {
	return arith.AppendSharded(dst, len(vs), shards, parallel, func(lo, hi int, out []byte) []byte {
		return PackUint64(out, vs[lo:hi])
	})
}

// UnpackUint64Sharded inverts PackUint64Sharded, decoding exactly n values,
// charging them and the declared shard count against b.
func UnpackUint64Sharded(buf []byte, n int, b *declimits.Budget, parallel bool) ([]uint64, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative element count", ErrCorrupt)
	}
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	err := arith.DecodeSharded(buf, n, b, parallel, func(_ int, shard []byte, lo, hi int) error {
		return unpackUint64Into(out[lo:hi], shard)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PackInt64Sharded appends vs (zigzag-mapped) in the shard framing with
// blockpacked shard payloads.
func PackInt64Sharded(dst []byte, vs []int64, shards int, parallel bool) []byte {
	return arith.AppendSharded(dst, len(vs), shards, parallel, func(lo, hi int, out []byte) []byte {
		return PackInt64(out, vs[lo:hi])
	})
}

// UnpackInt64Sharded inverts PackInt64Sharded, decoding exactly n values.
func UnpackInt64Sharded(buf []byte, n int, b *declimits.Budget, parallel bool) ([]int64, error) {
	us, err := UnpackUint64Sharded(buf, n, b, parallel)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(us))
	for i, u := range us {
		out[i] = varint.Unzigzag(u)
	}
	return out, nil
}
