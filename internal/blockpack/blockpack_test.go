package blockpack

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"dbgc/internal/declimits"
)

func roundTripUint64(t *testing.T, vs []uint64) {
	t.Helper()
	data := PackUint64(nil, vs)
	got, err := UnpackUint64(data, len(vs), nil)
	if err != nil {
		t.Fatalf("UnpackUint64(%d values): %v", len(vs), err)
	}
	if len(got) != len(vs) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vs))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestRoundTripShapes(t *testing.T) {
	shapes := map[string][]uint64{
		"empty":     nil,
		"single":    {42},
		"partial":   make([]uint64, 127),
		"one-block": make([]uint64, 128),
		"spill":     make([]uint64, 129),
		"large":     make([]uint64, 5000),
	}
	rng := rand.New(rand.NewSource(1))
	for name, vs := range shapes {
		for i := range vs {
			vs[i] = uint64(rng.Intn(1 << 12))
		}
		t.Run(name, func(t *testing.T) { roundTripUint64(t, vs) })
	}
}

func TestRoundTripDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gen := map[string]func() uint64{
		"zero":      func() uint64 { return 0 },
		"constant":  func() uint64 { return 7 },
		"tiny":      func() uint64 { return uint64(rng.Intn(4)) },
		"max":       func() uint64 { return math.MaxUint64 },
		"widths":    func() uint64 { return uint64(1)<<uint(rng.Intn(64)) - 1 },
		"geometric": func() uint64 { return uint64(rng.ExpFloat64() * 100) },
		// Mostly small with rare huge values — the PFOR exception case.
		"patched": func() uint64 {
			if rng.Intn(100) == 0 {
				return rng.Uint64()
			}
			return uint64(rng.Intn(32))
		},
	}
	for name, g := range gen {
		t.Run(name, func(t *testing.T) {
			vs := make([]uint64, 700)
			for i := range vs {
				vs[i] = g()
			}
			roundTripUint64(t, vs)
		})
	}
}

func TestRoundTripInt64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vs := make([]int64, 999)
	for i := range vs {
		vs[i] = int64(rng.Intn(2000)) - 1000
	}
	vs[0] = math.MinInt64
	vs[1] = math.MaxInt64
	data := PackInt64(nil, vs)
	got, err := UnpackInt64(data, len(vs), nil)
	if err != nil {
		t.Fatalf("UnpackInt64: %v", err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestRoundTripUint32(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := make([]uint32, 300)
	for i := range vs {
		vs[i] = rng.Uint32()
	}
	data := PackUint32(nil, vs)
	got, err := UnpackUint32(data, len(vs), nil)
	if err != nil {
		t.Fatalf("UnpackUint32: %v", err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], vs[i])
		}
	}
	// A 64-bit stream whose values overflow uint32 must be rejected.
	wide := PackUint64(nil, []uint64{1 << 40})
	if _, err := UnpackUint32(wide, 1, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overflowing stream: got %v, want ErrCorrupt", err)
	}
}

func TestRoundTripDelta(t *testing.T) {
	vs := make([]uint64, 1000)
	acc := uint64(0)
	rng := rand.New(rand.NewSource(5))
	for i := range vs {
		acc += uint64(rng.Intn(50))
		vs[i] = acc
	}
	data := PackDeltaUint64(nil, vs)
	got, err := UnpackDeltaUint64(data, len(vs), nil)
	if err != nil {
		t.Fatalf("UnpackDeltaUint64: %v", err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d: got %d, want %d", i, got[i], vs[i])
		}
	}
	// Delta coding a sorted ramp must beat plain coding.
	if plain := PackUint64(nil, vs); len(data) >= len(plain) {
		t.Fatalf("delta coding (%d bytes) should beat plain (%d bytes) on a ramp", len(data), len(plain))
	}
}

func TestConstantBlockIsTwoBytes(t *testing.T) {
	vs := make([]uint64, BlockSize)
	data := PackUint64(nil, vs)
	if len(data) != 2 {
		t.Fatalf("all-zero block packed to %d bytes, want 2", len(data))
	}
}

func TestExceptionsKeepBlockNarrow(t *testing.T) {
	// 127 tiny values and one huge one: patching must beat coding the whole
	// block at 64 bits.
	vs := make([]uint64, BlockSize)
	for i := range vs {
		vs[i] = uint64(i % 8)
	}
	vs[77] = math.MaxUint64
	data := PackUint64(nil, vs)
	wide := 2 + payloadBytes(BlockSize, 64)
	if len(data) >= wide {
		t.Fatalf("patched block is %d bytes, not smaller than the %d-byte wide coding", len(data), wide)
	}
	roundTripUint64(t, vs)
}

func TestShardedRoundTripAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vs := make([]uint64, 3000)
	for i := range vs {
		vs[i] = uint64(rng.Intn(1 << 20))
	}
	is := make([]int64, len(vs))
	for i, v := range vs {
		is[i] = int64(v) - 1<<19
	}
	for _, shards := range []int{1, 2, 7} {
		serial := PackUint64Sharded(nil, vs, shards, false)
		parallel := PackUint64Sharded(nil, vs, shards, true)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("shards=%d: parallel packing changed the bytes", shards)
		}
		for _, par := range []bool{false, true} {
			got, err := UnpackUint64Sharded(serial, len(vs), nil, par)
			if err != nil {
				t.Fatalf("shards=%d parallel=%v: %v", shards, par, err)
			}
			for i := range vs {
				if got[i] != vs[i] {
					t.Fatalf("shards=%d: value %d mismatch", shards, i)
				}
			}
		}
		gotI, err := UnpackInt64Sharded(PackInt64Sharded(nil, is, shards, false), len(is), nil, false)
		if err != nil {
			t.Fatalf("int64 shards=%d: %v", shards, err)
		}
		for i := range is {
			if gotI[i] != is[i] {
				t.Fatalf("int64 shards=%d: value %d mismatch", shards, i)
			}
		}
	}
}

func TestBudgetEnforced(t *testing.T) {
	vs := make([]uint64, 1000)
	data := PackUint64(nil, vs)
	b := declimits.New(declimits.Limits{MaxNodes: 100})
	if _, err := UnpackUint64(data, len(vs), b); !errors.Is(err, declimits.ErrLimit) {
		t.Fatalf("got %v, want ErrLimit past the node budget", err)
	}
	// The shard clamp needs >= 8192 elements per shard for the declared
	// count to survive, so use a big enough stream to really get 8 shards.
	big := make([]uint64, 8*8192)
	sharded := PackUint64Sharded(nil, big, 8, false)
	b = declimits.New(declimits.Limits{MaxShards: 4, MaxNodes: 1 << 20})
	if _, err := UnpackUint64Sharded(sharded, len(big), b, false); !errors.Is(err, declimits.ErrLimit) {
		t.Fatalf("got %v, want ErrLimit past the shard cap", err)
	}
}

func TestCorruptStreams(t *testing.T) {
	vs := make([]uint64, 200)
	for i := range vs {
		vs[i] = uint64(i)
	}
	good := PackUint64(nil, vs)
	cases := map[string][]byte{
		"empty":            {},
		"header-only":      good[:1],
		"truncated":        good[:len(good)-1],
		"trailing":         append(append([]byte(nil), good...), 0xAA),
		"width-65":         {65, 0},
		"excs-past-block":  {0, 129},
		"positions-short":  {3, 2, 5},
		"positions-order":  {3, 2, 9, 4, 0, 0, 1, 1, 0, 0},
		"position-at-len":  {3, 1, 200, 0, 1, 0},
		"ctrl-truncated":   {3, 4, 0, 1, 2, 3},
		"values-truncated": {3, 1, 0, 3, 1},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := UnpackUint64(data, len(vs), nil); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
	if _, err := UnpackUint64(good, -1, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative count: got %v, want ErrCorrupt", err)
	}
}

func TestPropertyRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(600)
		vs := make([]uint64, n)
		shift := uint(rng.Intn(64))
		for i := range vs {
			vs[i] = rng.Uint64() >> shift
		}
		roundTripUint64(t, vs)
	}
}
