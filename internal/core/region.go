package core

import (
	"fmt"
	"math"

	"dbgc/internal/geom"
	"dbgc/internal/octree"
	"dbgc/internal/sparse"
)

// DecompressRegion reconstructs only the points inside the query box from
// a compressed frame — the paper's server can store B directly (§3.1), and
// range queries are the natural access path for a stored frame. The dense
// octree prunes subtrees outside the region; sparse radial groups whose
// radial interval cannot reach the box are skipped entirely; everything
// else decodes normally and filters.
func DecompressRegion(data []byte, region geom.AABB) (geom.PointCloud, error) {
	c, err := parseContainer(data, nil)
	if err != nil {
		return nil, err
	}
	for id := range c.sec {
		if err := c.sec[id].verify(SectionID(id)); err != nil {
			return nil, err
		}
	}

	sharded, blockpacked, ctx := c.flags()
	out, err := octree.DecodeRegionWith(c.sec[SectionDense].payload, region, octree.DecodeOptions{Sharded: sharded, BlockPack: blockpacked, Context: ctx})
	if err != nil {
		return nil, fmt.Errorf("core: dense: %w", err)
	}

	// Sparse groups: [rLo, rHi] of the box from the sensor decides which
	// groups can contribute.
	rLo, rHi := regionRadialRange(region)
	sparsePts, err := sparse.DecodeRadialRange(c.sec[SectionSparse].payload, rLo, rHi)
	if err != nil {
		return nil, fmt.Errorf("core: sparse: %w", err)
	}
	for _, p := range sparsePts {
		if region.Contains(p) {
			out = append(out, p)
		}
	}

	outlierPts, err := decodeOutliers(c.sec[SectionOutlier].payload, c.mode, nil, sharded, blockpacked, ctx, false)
	if err != nil {
		return nil, fmt.Errorf("core: outliers: %w", err)
	}
	for _, p := range outlierPts {
		if region.Contains(p) {
			out = append(out, p)
		}
	}
	return out, nil
}

// regionRadialRange returns the radial interval of the box as seen from
// the sensor at the origin.
func regionRadialRange(b geom.AABB) (lo, hi float64) {
	// Nearest point of the box to the origin per axis.
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	nearest := geom.Point{
		X: clamp(0, b.Min.X, b.Max.X),
		Y: clamp(0, b.Min.Y, b.Max.Y),
		Z: clamp(0, b.Min.Z, b.Max.Z),
	}
	lo = nearest.Norm()
	for _, x := range []float64{b.Min.X, b.Max.X} {
		for _, y := range []float64{b.Min.Y, b.Max.Y} {
			for _, z := range []float64{b.Min.Z, b.Max.Z} {
				hi = math.Max(hi, (geom.Point{X: x, Y: y, Z: z}).Norm())
			}
		}
	}
	return lo, hi
}
