package core

import (
	"math"
	"math/rand"
	"testing"

	"dbgc/internal/geom"
)

// TestPropertyRandomClouds: randomized small clouds with adversarial
// shapes (lines, planes, clusters, duplicates) must round-trip within the
// bound under randomized options.
func TestPropertyRandomClouds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	shapes := []func(n int) geom.PointCloud{
		// Uniform box.
		func(n int) geom.PointCloud {
			pc := make(geom.PointCloud, n)
			for i := range pc {
				pc[i] = geom.Point{X: rng.Float64()*80 - 40, Y: rng.Float64()*80 - 40, Z: rng.Float64()*10 - 5}
			}
			return pc
		},
		// Collinear points.
		func(n int) geom.PointCloud {
			pc := make(geom.PointCloud, n)
			for i := range pc {
				pc[i] = geom.Point{X: float64(i) * 0.13, Y: 2, Z: -1}
			}
			return pc
		},
		// Tight cluster with duplicates.
		func(n int) geom.PointCloud {
			pc := make(geom.PointCloud, n)
			base := geom.Point{X: 7, Y: -3, Z: 0.5}
			for i := range pc {
				if i%3 == 0 {
					pc[i] = base
				} else {
					pc[i] = base.Add(geom.Point{X: rng.NormFloat64() * 0.05, Y: rng.NormFloat64() * 0.05, Z: rng.NormFloat64() * 0.05})
				}
			}
			return pc
		},
		// Ring around the sensor.
		func(n int) geom.PointCloud {
			pc := make(geom.PointCloud, n)
			for i := range pc {
				az := float64(i) / float64(n) * 2 * math.Pi
				r := 15 + rng.NormFloat64()*0.1
				pc[i] = geom.Point{X: r * math.Cos(az), Y: r * math.Sin(az), Z: -1.7}
			}
			return pc
		},
	}
	for trial := 0; trial < 20; trial++ {
		shape := shapes[trial%len(shapes)]
		pc := shape(50 + rng.Intn(500))
		q := []float64{0.002, 0.01, 0.02, 0.05}[rng.Intn(4)]
		opts := DefaultOptions(q)
		opts.Groups = 1 + rng.Intn(6)
		opts.DisableRadialOpt = rng.Intn(2) == 0
		if rng.Intn(4) == 0 {
			opts.OutlierMode = OutlierOctree
		}
		data, stats, err := Compress(pc, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dec, err := Decompress(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(dec) != len(pc) {
			t.Fatalf("trial %d: %d points out of %d", trial, len(dec), len(pc))
		}
		bound := math.Sqrt(3) * q * 1.000001
		for j, oi := range stats.Mapping {
			if d := pc[oi].Dist(dec[j]); d > bound {
				t.Fatalf("trial %d: point %d error %v > %v (q=%v, shape %d)",
					trial, oi, d, bound, q, trial%len(shapes))
			}
		}
	}
}
