package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/octree"
	"dbgc/internal/outlier"
	"dbgc/internal/sparse"
	"dbgc/internal/varint"
)

// DecodeLimits bounds the resources one frame decode may consume: total
// decoded points, entropy symbols / tree nodes, per-section compressed
// bytes, total decoded-output memory, and an optional context whose
// deadline or cancellation aborts the decode. The zero value is unlimited
// and reproduces the historical behaviour.
type DecodeLimits = declimits.Limits

// ErrLimit is wrapped by errors returned when a decode exceeds its
// DecodeLimits. The stream may be well-formed; decoding it just costs more
// than the caller allows.
var ErrLimit = declimits.ErrLimit

// DefaultDecodeLimits returns production limits generous enough for any
// real LiDAR frame while bounding hostile input.
func DefaultDecodeLimits() DecodeLimits { return declimits.DefaultLimits() }

// DecompressOptions configures decoding. The zero value decodes serially
// with no resource limits.
type DecompressOptions struct {
	// Parallel decodes the dense, sparse, and outlier sections — and the
	// radial groups within the sparse section — on separate goroutines.
	// Each section is an independently entropy-coded stream, so the output
	// is point-identical to serial decoding.
	Parallel bool
	// Limits bounds the decode. Sections decoding in parallel share one
	// budget, so the caps hold for the frame as a whole.
	Limits DecodeLimits
}

// SectionID names one of the three frame sections, in container order.
type SectionID int

const (
	SectionDense SectionID = iota
	SectionSparse
	SectionOutlier
	numSections
)

func (s SectionID) String() string {
	switch s {
	case SectionDense:
		return "dense"
	case SectionSparse:
		return "sparse"
	case SectionOutlier:
		return "outlier"
	default:
		return fmt.Sprintf("section(%d)", int(s))
	}
}

// SectionReport describes the decode outcome of one frame section, as
// returned by DecompressPartial.
type SectionReport struct {
	// Section identifies the section.
	Section SectionID
	// Bytes is the compressed length of the section.
	Bytes int
	// Points is the number of points recovered from the section (0 when
	// the section is damaged beyond salvage).
	Points int
	// Err is nil for an intact section; otherwise it explains the damage
	// (CRC mismatch or decode failure). On v3 sparse sections Err and a
	// nonzero Points can coexist: the per-group CRCs let the decoder skip
	// only the condemned radial groups and keep the rest.
	Err error
	// Raw is the section's compressed payload, aliasing the input frame.
	// Callers quarantining damaged bytes should copy it before the input
	// buffer is reused.
	Raw []byte
}

// section is one framed payload with its integrity metadata.
type section struct {
	payload []byte
	crc     uint32
	hasCRC  bool
}

// verify checks the section CRC when the container version carries one.
func (s *section) verify(id SectionID) error {
	if s.hasCRC && crc32.Checksum(s.payload, castagnoli) != s.crc {
		return fmt.Errorf("%w: %s section CRC mismatch", ErrCorrupt, id)
	}
	return nil
}

// container is a parsed frame envelope: version, dialect byte (v5 only,
// zero otherwise), outlier mode, and the three section payloads (not yet
// decoded or CRC-verified).
type container struct {
	version byte
	dialect byte
	mode    OutlierMode
	sec     [numSections]section
}

// flags returns the per-stream entropy dialect of the container: v1/v2 are
// plain, v3 sharded, v4 sharded+blockpacked, and v5 carries the combination
// explicitly in its dialect byte.
func (c container) flags() (sharded, blockpacked, ctx bool) {
	if c.version == version5 {
		return c.dialect&dialectSharded != 0, c.dialect&dialectBlockPack != 0, c.dialect&dialectContext != 0
	}
	return c.version >= version3, c.version >= version4, false
}

// parseContainer splits a frame into its envelope and sections, charging
// declared section lengths against b. It reads all container versions:
// v1 frames section payloads with a bare length, v2 adds a CRC32-C per
// section (length uvarint, CRC fixed32 LE, payload), v3 keeps the v2
// envelope while the section payloads use the sharded entropy dialect, and
// v4 additionally codes the integer hot paths with blockpack.
func parseContainer(data []byte, b *declimits.Budget) (container, error) {
	var c container
	if len(data) < len(magic)+1 {
		return c, fmt.Errorf("%w: short stream", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(magic)], []byte(magic)) {
		return c, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	c.version = data[len(magic)]
	if c.version < version1 || c.version > version5 {
		return c, fmt.Errorf("core: unsupported version %d", c.version)
	}
	data = data[len(magic)+1:]
	if c.version == version5 {
		if len(data) < 1 {
			return c, fmt.Errorf("%w: missing dialect byte", ErrCorrupt)
		}
		c.dialect = data[0]
		if c.dialect&^(dialectSharded|dialectBlockPack|dialectContext) != 0 {
			return c, fmt.Errorf("%w: unknown dialect bits %#x", ErrCorrupt, c.dialect)
		}
		data = data[1:]
	}
	mode64, used, err := varint.Uint(data)
	if err != nil {
		return c, fmt.Errorf("core: outlier mode: %w", err)
	}
	data = data[used:]
	c.mode = OutlierMode(mode64)

	for id := SectionID(0); id < numSections; id++ {
		l, used, err := varint.Uint(data)
		if err != nil {
			return c, fmt.Errorf("core: %s length: %w", id, err)
		}
		data = data[used:]
		if err := b.Section(int64(l)); err != nil {
			return c, err
		}
		if c.version >= version2 {
			if len(data) < 4 {
				return c, fmt.Errorf("%w: %s CRC truncated", ErrCorrupt, id)
			}
			c.sec[id].crc = binary.LittleEndian.Uint32(data)
			c.sec[id].hasCRC = true
			data = data[4:]
		}
		if l > uint64(len(data)) {
			return c, fmt.Errorf("%w: %s section truncated", ErrCorrupt, id)
		}
		c.sec[id].payload = data[:l]
		data = data[l:]
	}
	return c, nil
}

// newBudget returns nil (unlimited, zero overhead) for zero limits.
func newBudget(l DecodeLimits) *declimits.Budget {
	if l.MaxPoints == 0 && l.MaxNodes == 0 && l.MaxSectionBytes == 0 && l.MemBudget == 0 && l.MaxShards == 0 && l.MaxContexts == 0 && l.Ctx == nil {
		return nil
	}
	return declimits.New(l)
}

// Decompress reconstructs the point cloud from a stream produced by
// Compress. Points come back in decode order (dense, then polyline, then
// outlier points); Stats.Mapping from the compressor relates them to the
// original indices.
func Decompress(data []byte) (geom.PointCloud, error) {
	return DecompressWith(data, DecompressOptions{})
}

// DecompressWith is Decompress with explicit options.
func DecompressWith(data []byte, opts DecompressOptions) (geom.PointCloud, error) {
	b := newBudget(opts.Limits)
	c, err := parseContainer(data, b)
	if err != nil {
		return nil, err
	}
	for id := range c.sec {
		if err := c.sec[id].verify(SectionID(id)); err != nil {
			return nil, err
		}
	}
	pts, errs := decodeSections(c, opts, b, false)
	for id, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", SectionID(id), err)
		}
	}
	out := make(geom.PointCloud, 0, len(pts[SectionDense])+len(pts[SectionSparse])+len(pts[SectionOutlier]))
	out = append(out, pts[SectionDense]...)
	out = append(out, pts[SectionSparse]...)
	out = append(out, pts[SectionOutlier]...)
	return out, nil
}

// DecompressPartial decodes every intact section of a frame and skips
// damaged ones, returning the partial cloud (sections in container order)
// and a report per section. Damage is detected by section CRC on v2+
// frames and by decode failure on all versions. On v3 frames the sparse
// section additionally salvages at radial-group granularity: groups whose
// own CRC-32C checks out decode even when the section as a whole is
// damaged. The error is non-nil only when the frame envelope itself cannot
// be parsed — then nothing is recoverable.
func DecompressPartial(data []byte, opts DecompressOptions) (geom.PointCloud, []SectionReport, error) {
	b := newBudget(opts.Limits)
	c, err := parseContainer(data, b)
	if err != nil {
		return nil, nil, err
	}
	reports := make([]SectionReport, numSections)
	for id := range c.sec {
		reports[id] = SectionReport{
			Section: SectionID(id),
			Bytes:   len(c.sec[id].payload),
			Raw:     c.sec[id].payload,
		}
		if err := c.sec[id].verify(SectionID(id)); err != nil {
			reports[id].Err = err
			// v3 sparse sections carry a CRC per radial group, so a damaged
			// section can still yield its intact groups — keep the payload
			// and let the salvaging decoder condemn groups individually.
			// Everything else: don't hand known-bad bytes to the decoder;
			// empty the payload so decodeSections fails it at the header.
			if SectionID(id) == SectionSparse && c.version >= version3 {
				continue
			}
			c.sec[id].payload = nil
		}
	}
	pts, errs := decodeSections(c, opts, b, true)
	out := geom.PointCloud{}
	for id := range reports {
		if errs[id] != nil {
			if reports[id].Err == nil {
				reports[id].Err = errs[id]
			}
			continue
		}
		if reports[id].Err != nil && pts[id] == nil {
			continue
		}
		// A section decodes here either because it was intact or because
		// group-level salvage recovered part of it; in the salvage case
		// Err stays set (recording the damage) while Points counts what
		// survived.
		reports[id].Points = len(pts[id])
		out = append(out, pts[id]...)
	}
	return out, reports, nil
}

// decodeSections decodes the three sections of a parsed frame, in parallel
// when requested, charging b throughout. salvage lets the sparse decoder
// skip CRC-condemned radial groups of a v3 stream instead of failing the
// section (DecompressPartial's group-level recovery).
func decodeSections(c container, opts DecompressOptions, b *declimits.Budget, salvage bool) (pts [numSections]geom.PointCloud, errs [numSections]error) {
	// The container version (plus the v5 dialect byte), not the payload,
	// selects the entropy dialect of the dense and outlier sections; sparse
	// streams are self-flagged.
	sharded, blockpacked, ctx := c.flags()
	octOpts := octree.DecodeOptions{Budget: b, Sharded: sharded, BlockPack: blockpacked, Context: ctx, Parallel: opts.Parallel}
	sparseOpts := sparse.DecodeOptions{Parallel: opts.Parallel, Budget: b, Salvage: salvage}
	if opts.Parallel {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			pts[SectionDense], errs[SectionDense] = octree.DecodeWith(c.sec[SectionDense].payload, octOpts)
		}()
		go func() {
			defer wg.Done()
			pts[SectionOutlier], errs[SectionOutlier] = decodeOutliers(c.sec[SectionOutlier].payload, c.mode, b, sharded, blockpacked, ctx, opts.Parallel)
		}()
		// The sparse section fans its radial groups out to further
		// goroutines; decode it on this one.
		pts[SectionSparse], errs[SectionSparse] = sparse.DecodeWith(c.sec[SectionSparse].payload, sparseOpts)
		wg.Wait()
	} else {
		pts[SectionDense], errs[SectionDense] = octree.DecodeWith(c.sec[SectionDense].payload, octOpts)
		pts[SectionSparse], errs[SectionSparse] = sparse.DecodeWith(c.sec[SectionSparse].payload, sparseOpts)
		pts[SectionOutlier], errs[SectionOutlier] = decodeOutliers(c.sec[SectionOutlier].payload, c.mode, b, sharded, blockpacked, ctx, opts.Parallel)
	}
	return pts, errs
}

func decodeOutliers(data []byte, mode OutlierMode, b *declimits.Budget, sharded, blockpacked, ctx, parallel bool) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	switch mode {
	case OutlierQuadtree:
		return outlier.DecodeWith(data, outlier.DecodeOptions{Budget: b, Sharded: sharded, BlockPack: blockpacked, Parallel: parallel})
	case OutlierOctree:
		return octree.DecodeWith(data, octree.DecodeOptions{Budget: b, Sharded: sharded, BlockPack: blockpacked, Context: ctx, Parallel: parallel})
	case OutlierNone:
		n, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("core: raw outlier count: %w", err)
		}
		data = data[used:]
		// Bound n before multiplying: 12*n wraps for adversarial counts
		// near 2^64, which would let a huge n pass the length check.
		if n != uint64(len(data))/12 || uint64(len(data)) != 12*n {
			return nil, fmt.Errorf("%w: raw outlier section has %d bytes, want 12*%d", ErrCorrupt, len(data), n)
		}
		if err := b.Points(int64(n)); err != nil {
			return nil, err
		}
		out := make(geom.PointCloud, n)
		for i := range out {
			out[i] = geom.Point{
				X: float64(readFloat32(data[12*i:])),
				Y: float64(readFloat32(data[12*i+4:])),
				Z: float64(readFloat32(data[12*i+8:])),
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown outlier mode %d", ErrCorrupt, mode)
	}
}

func readFloat32(b []byte) float32 {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(v)
}
