package core

import (
	"bytes"
	"fmt"
	"math"
	"sync"

	"dbgc/internal/geom"
	"dbgc/internal/octree"
	"dbgc/internal/outlier"
	"dbgc/internal/sparse"
	"dbgc/internal/varint"
)

// DecompressOptions configures decoding. The zero value decodes serially.
type DecompressOptions struct {
	// Parallel decodes the dense, sparse, and outlier sections — and the
	// radial groups within the sparse section — on separate goroutines.
	// Each section is an independently entropy-coded stream, so the output
	// is point-identical to serial decoding.
	Parallel bool
}

// Decompress reconstructs the point cloud from a stream produced by
// Compress. Points come back in decode order (dense, then polyline, then
// outlier points); Stats.Mapping from the compressor relates them to the
// original indices.
func Decompress(data []byte) (geom.PointCloud, error) {
	return DecompressWith(data, DecompressOptions{})
}

// DecompressWith is Decompress with explicit options.
func DecompressWith(data []byte, opts DecompressOptions) (geom.PointCloud, error) {
	if len(data) < len(magic)+1 {
		return nil, fmt.Errorf("%w: short stream", ErrCorrupt)
	}
	if !bytes.Equal(data[:len(magic)], []byte(magic)) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[len(magic)] != version {
		return nil, fmt.Errorf("core: unsupported version %d", data[len(magic)])
	}
	data = data[len(magic)+1:]
	mode64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("core: outlier mode: %w", err)
	}
	data = data[used:]
	mode := OutlierMode(mode64)

	denseData, data, err := readSection(data, "dense")
	if err != nil {
		return nil, err
	}
	sparseData, data, err := readSection(data, "sparse")
	if err != nil {
		return nil, err
	}
	outlierData, _, err := readSection(data, "outlier")
	if err != nil {
		return nil, err
	}

	var densePts, sparsePts, outlierPts geom.PointCloud
	var denseErr, sparseErr, outlierErr error
	sparseOpts := sparse.DecodeOptions{Parallel: opts.Parallel}
	if opts.Parallel {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			densePts, denseErr = octree.Decode(denseData)
		}()
		go func() {
			defer wg.Done()
			outlierPts, outlierErr = decodeOutliers(outlierData, mode)
		}()
		// The sparse section fans its radial groups out to further
		// goroutines; decode it on this one.
		sparsePts, sparseErr = sparse.DecodeWith(sparseData, sparseOpts)
		wg.Wait()
	} else {
		densePts, denseErr = octree.Decode(denseData)
		sparsePts, sparseErr = sparse.DecodeWith(sparseData, sparseOpts)
		outlierPts, outlierErr = decodeOutliers(outlierData, mode)
	}
	if denseErr != nil {
		return nil, fmt.Errorf("core: dense: %w", denseErr)
	}
	if sparseErr != nil {
		return nil, fmt.Errorf("core: sparse: %w", sparseErr)
	}
	if outlierErr != nil {
		return nil, fmt.Errorf("core: outliers: %w", outlierErr)
	}

	out := make(geom.PointCloud, 0, len(densePts)+len(sparsePts)+len(outlierPts))
	out = append(out, densePts...)
	out = append(out, sparsePts...)
	out = append(out, outlierPts...)
	return out, nil
}

func decodeOutliers(data []byte, mode OutlierMode) (geom.PointCloud, error) {
	switch mode {
	case OutlierQuadtree:
		return outlier.Decode(data)
	case OutlierOctree:
		return octree.Decode(data)
	case OutlierNone:
		n, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("core: raw outlier count: %w", err)
		}
		data = data[used:]
		// Bound n before multiplying: 12*n wraps for adversarial counts
		// near 2^64, which would let a huge n pass the length check.
		if n != uint64(len(data))/12 || uint64(len(data)) != 12*n {
			return nil, fmt.Errorf("%w: raw outlier section has %d bytes, want 12*%d", ErrCorrupt, len(data), n)
		}
		out := make(geom.PointCloud, n)
		for i := range out {
			out[i] = geom.Point{
				X: float64(readFloat32(data[12*i:])),
				Y: float64(readFloat32(data[12*i+4:])),
				Z: float64(readFloat32(data[12*i+8:])),
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown outlier mode %d", ErrCorrupt, mode)
	}
}

func readFloat32(b []byte) float32 {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(v)
}

func readSection(data []byte, name string) (payload, rest []byte, err error) {
	l, used, err := varint.Uint(data)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %s length: %w", name, err)
	}
	data = data[used:]
	if l > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: %s section truncated", ErrCorrupt, name)
	}
	return data[:l], data[l:], nil
}
