package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
	"dbgc/internal/varint"
)

// TestShardedEquivalence is the shard-count equivalence contract: for every
// shard count, serial and parallel encodes produce the same bytes, serial
// and parallel decodes produce the same points, and those points equal the
// legacy (unsharded) decode exactly. The compressed size must stay within
// ±0.5% of the legacy container.
func TestShardedEquivalence(t *testing.T) {
	pc := frame(t, lidar.City)
	legacyOpts := DefaultOptions(0.02)
	legacyData, _, err := Compress(pc, legacyOpts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(legacyData)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := DefaultOptions(0.02)
			opts.Shards = shards
			serial, _, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallel = true
			parallel, stats, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, parallel) {
				t.Fatal("parallel sharded encode differs from serial")
			}
			if shards > 1 && serial[len(magic)] != version3 {
				t.Fatalf("sharded container has version %d, want %d", serial[len(magic)], version3)
			}
			if drift := float64(len(serial))/float64(len(legacyData)) - 1; drift > 0.005 || drift < -0.005 {
				t.Fatalf("sharded container size drifts %.3f%% from legacy (%d vs %d bytes)",
					drift*100, len(serial), len(legacyData))
			}
			if len(stats.Mapping) != len(pc) {
				t.Fatalf("mapping has %d entries, want %d", len(stats.Mapping), len(pc))
			}
			for _, par := range []bool{false, true} {
				got, err := DecompressWith(serial, DecompressOptions{Parallel: par})
				if err != nil {
					t.Fatalf("decode (parallel=%v): %v", par, err)
				}
				if !cloudsEqual(want, got) {
					t.Fatalf("decode (parallel=%v) differs from legacy decode", par)
				}
			}
		})
	}
}

// TestShardsOneByteIdentical pins the compatibility contract: Shards <= 1
// keeps the exact v2 container of previous releases, byte for byte.
func TestShardsOneByteIdentical(t *testing.T) {
	pc := frame(t, lidar.Campus)
	legacy, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	one := DefaultOptions(0.02)
	one.Shards = 1
	oneData, _, err := Compress(pc, one)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, oneData) {
		t.Fatal("Shards=1 container differs from the legacy container")
	}
	if oneData[len(magic)] != version2 {
		t.Fatalf("Shards=1 emits version %d, want %d", oneData[len(magic)], version2)
	}
}

// TestShardedDecodeUnderLimits: a sharded frame decodes under the default
// production limits, and a shard cap below the streams' effective shard
// count rejects the frame instead of spawning the fan-out.
func TestShardedDecodeUnderLimits(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	opts.Shards = 8
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressWith(data, DecompressOptions{Limits: DefaultDecodeLimits()}); err != nil {
		t.Fatalf("decode under DefaultDecodeLimits: %v", err)
	}
	lim := DecodeLimits{MaxShards: 1}
	if _, err := DecompressWith(data, DecompressOptions{Limits: lim}); err == nil {
		t.Fatal("MaxShards=1 against an 8-shard frame: expected error")
	} else if !errors.Is(err, ErrLimit) && !errors.Is(err, ErrCorrupt) {
		// The cap error must be classifiable, not a bare string.
		t.Fatalf("shard-cap rejection has unexpected class: %v", err)
	}
}

// TestShardedPartialSectionRecovery corrupts the dense section of a v3
// frame and checks the other sections still decode via DecompressPartial.
func TestShardedPartialSectionRecovery(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	opts.Shards = 4
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := parseContainer(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	dp := c.sec[SectionDense].payload
	dp[len(dp)/2] ^= 0xff

	part, reports, err := DecompressPartial(data, DecompressOptions{})
	if err != nil {
		t.Fatalf("partial decode rejected the whole frame: %v", err)
	}
	if reports[SectionDense].Err == nil {
		t.Fatal("dense damage not reported")
	}
	if reports[SectionSparse].Err != nil || reports[SectionOutlier].Err != nil {
		t.Fatalf("intact sections reported damaged: sparse=%v outlier=%v",
			reports[SectionSparse].Err, reports[SectionOutlier].Err)
	}
	ns, no := reports[SectionSparse].Points, reports[SectionOutlier].Points
	if ns == 0 || no == 0 {
		t.Fatalf("intact sections recovered no points: sparse=%d outlier=%d", ns, no)
	}
	nd := len(full) - ns - no
	want := append(geom.PointCloud{}, full[nd:]...)
	if !cloudsEqual(want, part) {
		t.Fatalf("partial cloud differs from the intact sections (%d vs %d points)", len(part), len(want))
	}
}

// TestShardedPartialGroupSalvage corrupts one radial group inside the v3
// sparse section and checks DecompressPartial keeps every other group (and
// both other sections) while reporting the damage.
func TestShardedPartialGroupSalvage(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	opts.Shards = 4
	data, stats, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	fullSparse := stats.NumSparse
	full, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	c, err := parseContainer(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the largest radial group inside the sparse payload and flip a
	// byte in its middle — inside the group body, past its CRC, away from
	// the group-length table so the section envelope still parses.
	sp := c.sec[SectionSparse].payload
	off, bestOff, bestLen := sparseHeaderLen(t, sp), 0, 0
	rest := sp[off:]
	for len(rest) > 0 {
		glen, used, err := varint.Uint(rest)
		if err != nil {
			t.Fatal(err)
		}
		off += used
		rest = rest[used:]
		if int(glen) > bestLen {
			bestLen, bestOff = int(glen), off
		}
		off += int(glen)
		rest = rest[glen:]
	}
	if bestLen < 16 {
		t.Fatalf("largest group is only %d bytes", bestLen)
	}
	sp[bestOff+bestLen/2] ^= 0xff

	part, reports, err := DecompressPartial(data, DecompressOptions{})
	if err != nil {
		t.Fatalf("partial decode rejected the whole frame: %v", err)
	}
	if reports[SectionSparse].Err == nil {
		t.Fatal("sparse damage not reported")
	}
	ns := reports[SectionSparse].Points
	if ns == 0 || ns >= fullSparse {
		t.Fatalf("group salvage recovered %d of %d sparse points; want partial recovery", ns, fullSparse)
	}
	nd, no := reports[SectionDense].Points, reports[SectionOutlier].Points
	if nd == 0 || no == 0 {
		t.Fatalf("undamaged sections lost points: dense=%d outlier=%d", nd, no)
	}
	if nd+ns+no != len(part) {
		t.Fatalf("reported points (%d+%d+%d) disagree with partial cloud (%d)", nd, ns, no, len(part))
	}
	// Dense and outlier runs must match the pristine decode exactly.
	if !cloudsEqual(full[:nd], part[:nd]) {
		t.Fatal("dense run differs after sparse group salvage")
	}
	if !cloudsEqual(full[len(full)-no:], part[len(part)-no:]) {
		t.Fatal("outlier run differs after sparse group salvage")
	}
	// Parallel salvage must agree with serial salvage.
	part2, _, err := DecompressPartial(data, DecompressOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cloudsEqual(part, part2) {
		t.Fatal("parallel partial decode differs from serial")
	}
}

// TestShardedRegionQuery: range queries read the v3 dialect too.
func TestShardedRegionQuery(t *testing.T) {
	pc := frame(t, lidar.Campus)
	box := geom.AABB{Min: geom.Point{X: -20, Y: -20, Z: -5}, Max: geom.Point{X: 20, Y: 20, Z: 5}}
	legacy, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecompressRegion(legacy, box)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(0.02)
	opts.Shards = 4
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressRegion(data, box)
	if err != nil {
		t.Fatal(err)
	}
	if !cloudsEqual(want, got) {
		t.Fatalf("sharded region query differs from legacy (%d vs %d points)", len(got), len(want))
	}
}

// sparseHeaderLen returns the byte length of the sparse section header
// (flags varint, q float64, group count varint).
func sparseHeaderLen(t *testing.T, sp []byte) int {
	t.Helper()
	_, u1, err := varint.Uint(sp)
	if err != nil {
		t.Fatal(err)
	}
	_, u2, err := varint.Uint(sp[u1+8:])
	if err != nil {
		t.Fatal(err)
	}
	return u1 + 8 + u2
}
