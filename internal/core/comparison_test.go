package core

import (
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/gpcc"
	"dbgc/internal/kdtree"
	"dbgc/internal/lidar"
	"dbgc/internal/octree"
)

// TestBeatsBaselines asserts the reproduction's codec ordering at the 2 cm
// bound. On real captures the paper reports DBGC 25-31%% ahead of the
// octree; on the cleaner simulated scenes the octree baseline is markedly
// stronger (see EXPERIMENTS.md), so the guard here is: DBGC lands within a
// few percent of the octree/G-PCC pair — ahead on some scene/seed
// combinations — and strictly beats the kd-tree coder.
func TestBeatsBaselines(t *testing.T) {
	q := 0.02
	for _, kind := range []lidar.SceneKind{lidar.City, lidar.Campus, lidar.Road} {
		pc := frame(t, kind)
		data, stats, err := Compress(pc, DefaultOptions(q))
		if err != nil {
			t.Fatal(err)
		}
		o, err := octree.Encode(pc, q)
		if err != nil {
			t.Fatal(err)
		}
		g, err := gpcc.Encode(pc, q)
		if err != nil {
			t.Fatal(err)
		}
		kdEnc, err := kdtree.Encode(pc, kdtree.QuantBitsFor(geom.Bounds(pc).MaxDim(), q))
		if err != nil {
			t.Fatal(err)
		}
		kd := kdEnc.Data
		bits := func(n int) float64 { return float64(n) * 8 / float64(len(pc)) }
		t.Logf("%s: DBGC %.2f | octree %.2f | gpcc %.2f | draco %.2f bits/pt (dense %.0f%%, outliers %.1f%%)",
			kind, bits(len(data)), bits(len(o.Data)), bits(len(g.Data)), bits(len(kd)),
			100*float64(stats.NumDense)/float64(len(pc)),
			100*float64(stats.NumOutliers)/float64(len(pc)))
		if float64(len(data)) > 1.08*float64(len(o.Data)) {
			t.Errorf("%s: DBGC (%d bytes) more than 8%% behind octree (%d bytes)", kind, len(data), len(o.Data))
		}
		if float64(len(data)) > 1.08*float64(len(g.Data)) {
			t.Errorf("%s: DBGC (%d bytes) more than 8%% behind gpcc (%d bytes)", kind, len(data), len(g.Data))
		}
		if len(data) >= len(kd) {
			t.Errorf("%s: DBGC (%d bytes) must beat Draco (%d bytes)", kind, len(data), len(kd))
		}
	}
}
