package core

import (
	"math"
	"sync"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

var (
	framesMu sync.Mutex
	frames   = map[lidar.SceneKind]geom.PointCloud{}
)

func frame(t testing.TB, kind lidar.SceneKind) geom.PointCloud {
	t.Helper()
	framesMu.Lock()
	defer framesMu.Unlock()
	if pc, ok := frames[kind]; ok {
		return pc
	}
	scene, err := lidar.NewScene(kind, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := lidar.HDL64E().Simulate(scene, 1)
	frames[kind] = pc
	return pc
}

// verifyRoundTrip checks the one-to-one mapping and the error bound for a
// compressed frame: per-dimension q for octree/outlier points would be
// ideal, but the spherical path guarantees √3·q Euclidean (Theorem 3.2), so
// that is the uniform bound asserted here.
func verifyRoundTrip(t *testing.T, pc geom.PointCloud, data []byte, stats *Stats, q float64) {
	t.Helper()
	dec, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(pc) {
		t.Fatalf("one-to-one mapping violated: %d in, %d out", len(pc), len(dec))
	}
	if len(stats.Mapping) != len(pc) {
		t.Fatalf("mapping has %d entries, want %d", len(stats.Mapping), len(pc))
	}
	seen := make([]bool, len(pc))
	bound := math.Sqrt(3) * q * 1.000001
	worst := 0.0
	for j, oi := range stats.Mapping {
		if oi < 0 || int(oi) >= len(pc) || seen[oi] {
			t.Fatalf("mapping is not a permutation at %d", j)
		}
		seen[oi] = true
		d := pc[oi].Dist(dec[j])
		if d > worst {
			worst = d
		}
		if d > bound {
			t.Fatalf("point %d error %v exceeds %v", oi, d, bound)
		}
	}
	t.Logf("ratio %.2f, worst error %.5f m (bound %.5f), dense %d / sparse %d / outliers %d",
		stats.CompressionRatio(), worst, bound, stats.NumDense, stats.NumSparse, stats.NumOutliers)
}

func TestCompressDecompressAllScenes(t *testing.T) {
	for _, kind := range lidar.AllScenes {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			pc := frame(t, kind)
			opts := DefaultOptions(0.02)
			data, stats, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			verifyRoundTrip(t, pc, data, stats, opts.Q)
			if r := stats.CompressionRatio(); r < 8 {
				t.Errorf("%s: compression ratio %.2f below expectation", kind, r)
			}
		})
	}
}

func TestErrorBounds(t *testing.T) {
	pc := frame(t, lidar.City)
	for _, q := range []float64{0.0006, 0.005, 0.02} {
		opts := DefaultOptions(q)
		data, stats, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		verifyRoundTrip(t, pc, data, stats, q)
	}
}

func TestRatioImprovesWithLooserBound(t *testing.T) {
	pc := frame(t, lidar.City)
	var prev float64
	for _, q := range []float64{0.0006, 0.0025, 0.01, 0.02} {
		_, stats, err := Compress(pc, DefaultOptions(q))
		if err != nil {
			t.Fatal(err)
		}
		r := stats.CompressionRatio()
		if r <= prev {
			t.Fatalf("ratio %.2f at q=%v not above %.2f at looser bound", r, q, prev)
		}
		prev = r
	}
}

func TestAblationsRoundTrip(t *testing.T) {
	pc := frame(t, lidar.Campus)
	cases := map[string]func(*Options){
		"exact-clustering": func(o *Options) { o.ExactClustering = true },
		"-radial":          func(o *Options) { o.DisableRadialOpt = true },
		"-group":           func(o *Options) { o.Groups = 1 },
		"-conversion":      func(o *Options) { o.CartesianPolylines = true },
		"outlier-octree":   func(o *Options) { o.OutlierMode = OutlierOctree },
		"outlier-none":     func(o *Options) { o.OutlierMode = OutlierNone },
	}
	for name, mod := range cases {
		name, mod := name, mod
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions(0.02)
			mod(&opts)
			data, stats, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			verifyRoundTrip(t, pc, data, stats, opts.Q)
		})
	}
}

func TestClusteringBeatsExtremes(t *testing.T) {
	// Figure 10: the clustering split should beat both all-octree and
	// all-coordinate-compression.
	pc := frame(t, lidar.City)
	ratio := func(opts Options) float64 {
		_, stats, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		return stats.CompressionRatio()
	}
	clustered := ratio(DefaultOptions(0.02))
	allOctree := func() Options { o := DefaultOptions(0.02); o.ForceOctreeFraction = 1; return o }()
	allSparse := func() Options { o := DefaultOptions(0.02); o.ForceOctreeFraction = 0; return o }()
	rOct := ratio(allOctree)
	rSpa := ratio(allSparse)
	t.Logf("clustered %.2f, all-octree %.2f, all-sparse %.2f", clustered, rOct, rSpa)
	if clustered < rOct && clustered < rSpa {
		t.Fatalf("clustered split (%.2f) worse than both extremes (%.2f, %.2f)", clustered, rOct, rSpa)
	}
}

func TestForceFractionRoundTrip(t *testing.T) {
	pc := frame(t, lidar.City)
	for _, f := range []float64{0, 0.3, 0.7, 1} {
		opts := DefaultOptions(0.02)
		opts.ForceOctreeFraction = f
		data, stats, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		verifyRoundTrip(t, pc, data, stats, opts.Q)
	}
}

func TestEmptyCloud(t *testing.T) {
	data, stats, err := Compress(nil, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumPoints != 0 {
		t.Fatalf("stats for empty cloud: %+v", stats)
	}
	dec, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points from empty cloud", len(dec))
	}
}

func TestTinyCloud(t *testing.T) {
	pc := geom.PointCloud{{X: 5, Y: 1, Z: -1}, {X: 6, Y: 2, Z: -1}, {X: 7, Y: 2.5, Z: -1}}
	data, stats, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	verifyRoundTrip(t, pc, data, stats, 0.02)
}

func TestInvalidOptions(t *testing.T) {
	if _, _, err := Compress(geom.PointCloud{{X: 1}}, Options{Q: 0}); err == nil {
		t.Fatal("expected error for q=0")
	}
	opts := DefaultOptions(0.02)
	opts.OutlierMode = OutlierMode(99)
	if _, _, err := Compress(geom.PointCloud{{X: 1}}, opts); err == nil {
		t.Fatal("expected error for bad outlier mode")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, err := Decompress(nil); err == nil {
		t.Fatal("nil stream must fail")
	}
	if _, err := Decompress([]byte("not a dbgc stream")); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := Decompress([]byte("DBGC\x09")); err == nil {
		t.Fatal("bad version must fail")
	}
}

func TestDecompressTruncations(t *testing.T) {
	pc := frame(t, lidar.Road)[:20000]
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 1009 {
		if _, err := Decompress(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	for i := 5; i < len(data); i += 769 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20
		_, _ = Decompress(mut) // must not panic
	}
}

func TestRejectsNonFinitePoints(t *testing.T) {
	for _, bad := range []geom.Point{
		{X: math.NaN()},
		{Y: math.Inf(1)},
		{Z: math.Inf(-1)},
	} {
		pc := geom.PointCloud{{X: 1, Y: 1, Z: 1}, bad}
		if _, _, err := Compress(pc, DefaultOptions(0.02)); err == nil {
			t.Errorf("non-finite point %v accepted", bad)
		}
	}
}
