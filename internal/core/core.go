// Package core assembles the DBGC compression pipeline (Figure 2): density-
// based clustering splits the cloud into dense and sparse points, dense
// points go to the octree coder, sparse points are organized into polylines
// and coded in spherical coordinates, leftover points go to the optimized
// outlier coder, and the three bit sequences are framed into the final
// layout of Figure 8.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"dbgc/internal/cluster"
	"dbgc/internal/geom"
	"dbgc/internal/octree"
	"dbgc/internal/outlier"
	"dbgc/internal/sparse"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed DBGC stream.
var ErrCorrupt = errors.New("core: corrupt stream")

// OutlierMode selects how points off all polylines are compressed (§4.3
// "Optimized Outlier Compression" comparison, Table 2).
type OutlierMode int

const (
	// OutlierQuadtree is DBGC's optimized scheme: 2D quadtree + Δz.
	OutlierQuadtree OutlierMode = iota
	// OutlierOctree compresses outliers with the baseline octree.
	OutlierOctree
	// OutlierNone stores outliers raw (three float32 per point).
	OutlierNone
)

// Options configures the DBGC compressor. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	// Q is the per-dimension error bound q_xyz in meters (§2.1). The
	// paper's running setting is 0.02 (2 cm).
	Q float64
	// K scales the clustering radius ε = K·Q; the paper fixes 10.
	K int
	// MinPts overrides the clustering core threshold; 0 means the
	// surface-bound default ⌈πK²/4⌉ (see cluster.DefaultMinPts).
	MinPts int
	// Groups is the sparse-point group count (§3.5). The paper uses 3
	// equal-count groups; this implementation splits at geometric radial
	// boundaries, for which 6 groups measure best (see DESIGN.md).
	Groups int
	// UTheta, UPhi are the sensor's average angular steps in radians
	// (§3.3). Zero values default to HDL-64E geometry.
	UTheta, UPhi float64
	// ExactClustering selects the exact cell-based clustering instead of
	// the approximate O(n) method that DBGC integrates by default
	// (§4.3).
	ExactClustering bool
	// DisableRadialOpt is the -Radial ablation.
	DisableRadialOpt bool
	// CartesianPolylines is the -Conversion ablation.
	CartesianPolylines bool
	// OutlierMode selects the outlier compressor.
	OutlierMode OutlierMode
	// ForceOctreeFraction, when in [0, 1], bypasses clustering and sends
	// exactly that fraction of points (nearest to the sensor first) to
	// the octree — the manual split of Figure 10. Negative means "use
	// clustering".
	ForceOctreeFraction float64
	// Parallel runs the octree leg concurrently with the sparse pipeline
	// and encodes radial groups on separate goroutines. The output is
	// byte-identical to the serial encoding; only the stage timings in
	// Stats overlap.
	Parallel bool
	// Shards splits every section's high-volume entropy streams (octree
	// occupancy/count levels, sparse φ tails and radials, outlier
	// quadtree/Δz payloads) into this many independently coded shards —
	// the unit of multi-core entropy parallelism — and emits the container
	// v3 dialect. Values <= 1 keep the legacy single-coder v2 container,
	// byte-identical to previous releases. The output depends only on the
	// input and the shard count, never on Parallel or GOMAXPROCS.
	Shards int
	// BlockPack codes the integer hot paths — octree leaf counts, sparse
	// polyline lengths and θ/φ/r deltas, outlier quadtree counts and Δz —
	// with the blockpack codec (FastPFOR-style 128-value blocks, patched
	// exceptions) instead of adaptive arithmetic coding and varint+DEFLATE,
	// and emits the container v4 dialect. Arithmetic-coded occupancy and
	// reference-symbol streams are unaffected. Off keeps v2/v3 bytes
	// unchanged; on composes with Shards (blockpacked streams reuse the
	// shard framing, so sharded parallel decode still applies).
	//
	// BlockPack is guarded by a whole-frame size comparison: the encoder
	// also builds the plain v2/v3 container and emits whichever is
	// smaller, so enabling it never grows a frame. On heavily skewed
	// streams the adaptive coders win and the frame stays v2/v3; on
	// flatter distributions the packed v4 container wins and decodes
	// several times faster. The guard roughly doubles encode work; see
	// BlockPackForce to skip it.
	BlockPack bool
	// BlockPackForce emits the v4 container unconditionally, skipping the
	// BlockPack size guard (and its second encode pass). Intended for
	// format tooling, tests, and callers that prefer decode throughput
	// over ratio regardless of the frame. Implies BlockPack.
	BlockPackForce bool
	// ContextModel codes the octree occupancy stream and the sparse angular
	// streams with the table-driven context models of internal/ctxmodel
	// (parent occupancy, octant reflection, magnitude buckets; see DESIGN.md
	// §15) and emits the container v5 dialect. Every context-modeled stream
	// is size-guarded per stream: the encoder also builds the stream's
	// v2/v3/v4 coding and keeps whichever is smaller, so enabling it costs
	// at most a few marker bytes per frame and typically saves 3-4%.
	// Composes with Shards (context state resets per shard; parallel encode
	// stays byte-identical to serial) and with BlockPack.
	ContextModel bool
}

// DefaultOptions returns the paper's configuration for error bound q.
func DefaultOptions(q float64) Options {
	return Options{
		Q:                   q,
		K:                   10,
		Groups:              6,
		UTheta:              2 * math.Pi / 2000,
		UPhi:                (26.8 / 64) * math.Pi / 180,
		ForceOctreeFraction: -1,
	}
}

// Stats reports what the compressor did. None of it is needed for
// decompression.
type Stats struct {
	NumPoints   int
	NumDense    int
	NumSparse   int // sparse points on polylines
	NumOutliers int
	NumLines    int

	BytesTotal   int
	BytesDense   int
	BytesSparse  int
	BytesOutlier int

	// Mapping[j] is the original index of decoded point j — the paper's
	// one-to-one mapping M, used for error verification.
	Mapping []int32

	// Stage durations (Figure 13): clustering (DEN), octree coding (OCT),
	// coordinate conversion (COR), point organization (ORG), sparse
	// stream compression (SPA), outlier compression (OUT).
	DEN, OCT, COR, ORG, SPA, OUT time.Duration
	// ENT is the entropy-coding share of OCT (the octree's arithmetic
	// passes), split out so multi-core sweeps can attribute serialization
	// to entropy coding rather than tree construction.
	ENT time.Duration
}

// CompressionRatio returns RawSize / |B| for the compressed frame.
func (s Stats) CompressionRatio() float64 {
	if s.BytesTotal == 0 {
		return 0
	}
	return float64(s.NumPoints*12) / float64(s.BytesTotal)
}

const (
	magic = "DBGC"
	// version1 frames each section as "length uvarint | payload".
	version1 = 1
	// version2 adds a CRC32-C per section ("length uvarint | crc fixed32
	// LE | payload") so damage is attributable to one section and the
	// others stay recoverable (DecompressPartial). Both versions decode.
	version2 = 2
	// version3 keeps the v2 envelope (magic, mode, per-section CRCs) but
	// codes the high-volume entropy streams inside every section with the
	// sharded framing of internal/arith, and prefixes each sparse radial
	// group with its own CRC-32C. All three versions decode.
	version3 = 3
	// version4 keeps the v3 envelope and framing but codes the integer hot
	// paths (leaf counts, polyline lengths, θ/φ/r deltas, Δz) with the
	// blockpack codec of internal/blockpack. Emitted when Options.BlockPack
	// is set and the packed container wins the size guard (or when
	// BlockPackForce skips the guard). All four versions decode.
	version4 = 4
	// version5 keeps the envelope but follows the version byte with a
	// dialect byte: v1-v4 infer the entropy dialect from the version number
	// alone, while v5's context modeling composes with sharding and
	// blockpacking, so the combination must be spelled out. Emitted when
	// Options.ContextModel is set. All five versions decode.
	version5 = 5
	// version is what Compress emits for unsharded options (Shards <= 1);
	// sharded compression emits version3, blockpacked version4,
	// context-modeled version5.
	version = version2
)

// Dialect bits of the v5 container's dialect byte.
const (
	dialectSharded   = 1 << 0 // v3 sharded entropy framing
	dialectBlockPack = 1 << 1 // v4 blockpacked integer hot paths
	dialectContext   = 1 << 2 // context-modeled occupancy/angular streams
)

// castagnoli is the CRC32-C table shared by section framing and checks.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoder compresses frames while recycling the per-frame working memory —
// the dense/sparse index sets, the gathered dense and outlier sub-clouds,
// and the mapping buffer — across calls. A zero Encoder with Opts set is
// ready; NewEncoder is the conventional constructor. An Encoder is not safe
// for concurrent use, but distinct Encoders are independent.
type Encoder struct {
	// Opts configures every Compress call on this encoder.
	Opts Options

	denseIdx   []int32
	sparseIdx  []int32
	densePts   geom.PointCloud
	outlierPts geom.PointCloud
	mapping    []int32
	stats      Stats
}

// NewEncoder returns an Encoder that compresses with opts.
func NewEncoder(opts Options) *Encoder { return &Encoder{Opts: opts} }

// Compress encodes pc under the encoder's options. The returned Stats —
// including Stats.Mapping — live in the encoder's reusable scratch and are
// only valid until the next Compress call on this encoder; copy what must
// outlive the frame. The compressed frame itself is freshly allocated and
// caller-owned.
func (e *Encoder) Compress(pc geom.PointCloud) ([]byte, *Stats, error) {
	opts := e.Opts
	if opts.BlockPackForce {
		opts.BlockPack = true
	}
	if opts.BlockPack && !opts.BlockPackForce {
		// Size guard: blockpack trades ratio for decode speed, and on
		// heavily skewed streams the adaptive coders win. Encode both
		// dialects and keep the smaller container; ties go to the plain
		// dialect so guarded output degenerates to exactly v2/v3 bytes.
		packed, _, err := e.compressOnce(pc, opts)
		if err != nil {
			return nil, nil, err
		}
		packedStats := e.stats
		plainOpts := opts
		plainOpts.BlockPack = false
		plain, stats, err := e.compressOnce(pc, plainOpts)
		if err != nil {
			return nil, nil, err
		}
		if len(packed) < len(plain) {
			// The mapping is dialect-independent, and the second pass
			// rebuilt the identical content in e.mapping, so the saved
			// stats still alias valid scratch.
			e.stats = packedStats
			return packed, &e.stats, nil
		}
		return plain, stats, nil
	}
	return e.compressOnce(pc, opts)
}

func (e *Encoder) compressOnce(pc geom.PointCloud, opts Options) ([]byte, *Stats, error) {
	if opts.Q <= 0 {
		return nil, nil, fmt.Errorf("core: error bound must be positive, got %v", opts.Q)
	}
	if opts.UTheta <= 0 {
		opts.UTheta = 2 * math.Pi / 2000
	}
	if opts.UPhi <= 0 {
		opts.UPhi = (26.8 / 64) * math.Pi / 180
	}
	// Real capture files occasionally carry garbage records; a NaN or
	// infinite coordinate would silently poison quantization, so reject
	// the frame up front with a pointed error.
	if bad := firstNonFinite(pc, opts.Parallel); bad >= 0 {
		return nil, nil, fmt.Errorf("core: point %d has a non-finite coordinate: %v", bad, pc[bad])
	}
	e.stats = Stats{NumPoints: len(pc)}
	stats := &e.stats

	// Stage 1: density-based clustering (DEN).
	t0 := time.Now()
	denseIdx, sparseIdx := e.splitPoints(pc, opts)
	stats.DEN = time.Since(t0)
	stats.NumDense = len(denseIdx)

	// Stage 2: octree compression of dense points (OCT), optionally
	// concurrent with the sparse pipeline.
	e.densePts = growPoints(e.densePts, len(denseIdx))
	densePts := e.densePts
	for k, i := range denseIdx {
		densePts[k] = pc[i]
	}
	var denseEnc octree.Encoded
	var denseErr error
	denseDone := make(chan struct{})
	encodeDense := func() {
		t := time.Now()
		denseEnc, denseErr = octree.EncodeWith(densePts, opts.Q, octree.EncodeOptions{Parallel: opts.Parallel, Shards: opts.Shards, BlockPack: opts.BlockPack, Context: opts.ContextModel})
		stats.OCT = time.Since(t)
		stats.ENT = denseEnc.EntropyTime
		close(denseDone)
	}
	if opts.Parallel {
		go encodeDense()
	} else {
		encodeDense()
	}

	// Stages 3-5: conversion, organization, sparse coordinate
	// compression (COR/ORG/SPA).
	sparseEnc, err := sparse.Encode(pc, sparseIdx, sparse.Options{
		Q:                opts.Q,
		Groups:           opts.Groups,
		UTheta:           opts.UTheta,
		UPhi:             opts.UPhi,
		DisableRadialOpt: opts.DisableRadialOpt,
		CartesianMode:    opts.CartesianPolylines,
		Parallel:         opts.Parallel,
		Shards:           opts.Shards,
		BlockPack:        opts.BlockPack,
		Context:          opts.ContextModel,
	})
	<-denseDone
	if denseErr != nil {
		return nil, nil, fmt.Errorf("core: octree: %w", denseErr)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: sparse: %w", err)
	}
	stats.COR = sparseEnc.TimeConvert
	stats.ORG = sparseEnc.TimeOrganize
	stats.SPA = sparseEnc.TimeCompress
	stats.NumLines = sparseEnc.NumLines
	stats.NumSparse = len(sparseEnc.DecodedOrder)
	stats.NumOutliers = len(sparseEnc.OutlierIdx)

	// Stage 6: outlier compression (OUT).
	t0 = time.Now()
	e.outlierPts = growPoints(e.outlierPts, len(sparseEnc.OutlierIdx))
	outlierPts := e.outlierPts
	for k, i := range sparseEnc.OutlierIdx {
		outlierPts[k] = pc[i]
	}
	outlierData, outlierOrder, err := encodeOutliers(outlierPts, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: outliers: %w", err)
	}
	stats.OUT = time.Since(t0)

	// Final layout (Figure 8). Sharded entropy streams need the v3
	// container, blockpacked streams the v4, so decoders select the right
	// dialect per section. Context-modeled streams need the v5 container,
	// whose dialect byte spells out the full combination.
	ver := byte(version)
	if opts.Shards > 1 {
		ver = version3
	}
	if opts.BlockPack {
		ver = version4
	}
	var dialect byte
	if opts.ContextModel {
		ver = version5
		dialect = dialectContext
		if opts.Shards > 1 {
			dialect |= dialectSharded
		}
		if opts.BlockPack {
			dialect |= dialectBlockPack
		}
	}
	out := make([]byte, 0, len(denseEnc.Data)+len(sparseEnc.Data)+len(outlierData)+64)
	out = append(out, magic...)
	out = append(out, ver)
	if ver == version5 {
		out = append(out, dialect)
	}
	out = varint.AppendUint(out, uint64(opts.OutlierMode))
	out = appendSection(out, denseEnc.Data)
	out = appendSection(out, sparseEnc.Data)
	out = appendSection(out, outlierData)

	stats.BytesDense = len(denseEnc.Data)
	stats.BytesSparse = len(sparseEnc.Data)
	stats.BytesOutlier = len(outlierData)
	stats.BytesTotal = len(out)

	// Assemble the one-to-one mapping in decode order: dense, sparse,
	// outliers.
	mapping := e.mapping[:0]
	if cap(mapping) < len(pc) {
		mapping = make([]int32, 0, len(pc))
	}
	for _, j := range denseEnc.DecodedOrder {
		mapping = append(mapping, denseIdx[j])
	}
	mapping = append(mapping, sparseEnc.DecodedOrder...)
	for _, j := range outlierOrder {
		mapping = append(mapping, sparseEnc.OutlierIdx[j])
	}
	e.mapping = mapping
	stats.Mapping = mapping
	return out, stats, nil
}

// encoderPool backs the package-level Compress so one-shot callers still
// reuse scratch across frames.
var encoderPool = sync.Pool{New: func() any { return new(Encoder) }}

// Compress encodes pc under opts and returns the bit sequence B plus
// compression statistics. The cloud must be in the sensor frame (origin at
// the sensor, §3.3). Unlike Encoder.Compress, the returned Stats are
// caller-owned. Streaming callers compressing many frames should hold an
// Encoder instead to also recycle the mapping buffer.
func Compress(pc geom.PointCloud, opts Options) ([]byte, *Stats, error) {
	e := encoderPool.Get().(*Encoder)
	e.Opts = opts
	out, stats, err := e.Compress(pc)
	if err != nil {
		encoderPool.Put(e)
		return nil, nil, err
	}
	// Detach the caller-owned results from the pooled scratch.
	st := *stats
	e.mapping = nil
	e.stats = Stats{}
	encoderPool.Put(e)
	return out, &st, nil
}

// growPoints returns s with length n, reallocating only when capacity is
// short; the contents are unspecified.
func growPoints(s geom.PointCloud, n int) geom.PointCloud {
	if cap(s) < n {
		return make(geom.PointCloud, n)
	}
	return s[:n]
}

// splitPoints classifies the cloud into dense and sparse index sets, either
// by clustering or by the manual nearest-fraction split of Figure 10. The
// returned slices live in the encoder's scratch.
func (e *Encoder) splitPoints(pc geom.PointCloud, opts Options) (dense, sparseIdx []int32) {
	dense, sparseIdx = e.denseIdx[:0], e.sparseIdx[:0]
	if f := opts.ForceOctreeFraction; f >= 0 {
		if f > 1 {
			f = 1
		}
		order := make([]int32, len(pc))
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			ra, rb := pc[order[a]].Norm(), pc[order[b]].Norm()
			if ra != rb {
				return ra < rb
			}
			return order[a] < order[b]
		})
		cut := int(math.Round(f * float64(len(pc))))
		return order[:cut], order[cut:]
	}
	params := cluster.Params{Q: opts.Q, K: opts.K, MinPts: opts.MinPts, Parallel: opts.Parallel}
	if params.K <= 0 {
		params.K = 10
	}
	var res cluster.Result
	if opts.ExactClustering {
		res = cluster.CellBased(pc, params)
	} else {
		res = cluster.Approximate(pc, params)
	}
	for i, d := range res.Dense {
		if d {
			dense = append(dense, int32(i))
		} else {
			sparseIdx = append(sparseIdx, int32(i))
		}
	}
	e.denseIdx, e.sparseIdx = dense, sparseIdx
	return dense, sparseIdx
}

// SplitPoints classifies pc into dense and sparse index sets exactly as
// Compress does under opts. It exists for the benchkit pack ablation, which
// replays the codec choice on the real per-stream data of a frame.
func SplitPoints(pc geom.PointCloud, opts Options) (dense, sparseIdx []int32) {
	var e Encoder
	d, s := e.splitPoints(pc, opts)
	return append([]int32(nil), d...), append([]int32(nil), s...)
}

func encodeOutliers(pts geom.PointCloud, opts Options) ([]byte, []int, error) {
	switch opts.OutlierMode {
	case OutlierQuadtree:
		enc, err := outlier.EncodeWith(pts, opts.Q, outlier.EncodeOptions{Shards: opts.Shards, BlockPack: opts.BlockPack, Parallel: opts.Parallel})
		if err != nil {
			return nil, nil, err
		}
		return enc.Data, enc.DecodedOrder, nil
	case OutlierOctree:
		enc, err := octree.EncodeWith(pts, opts.Q, octree.EncodeOptions{Parallel: opts.Parallel, Shards: opts.Shards, BlockPack: opts.BlockPack, Context: opts.ContextModel})
		if err != nil {
			return nil, nil, err
		}
		return enc.Data, enc.DecodedOrder, nil
	case OutlierNone:
		// Raw storage: three float32 per point, matching the paper's
		// "None" variant where outliers stay uncompressed.
		data := make([]byte, 0, 12*len(pts)+8)
		data = varint.AppendUint(data, uint64(len(pts)))
		for _, p := range pts {
			data = appendFloat32(data, float32(p.X))
			data = appendFloat32(data, float32(p.Y))
			data = appendFloat32(data, float32(p.Z))
		}
		order := make([]int, len(pts))
		for i := range order {
			order[i] = i
		}
		return data, order, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown outlier mode %d", opts.OutlierMode)
	}
}

// finite reports whether v is neither NaN nor infinite.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// firstNonFinite returns the lowest index of a point with a NaN or infinite
// coordinate, or -1 if all points are finite. With parallel set the scan is
// chunked across goroutines; the reported index is deterministic either way.
func firstNonFinite(pc geom.PointCloud, parallel bool) int {
	const minChunk = 1 << 15
	workers := runtime.GOMAXPROCS(0)
	if !parallel || workers < 2 || len(pc) < 2*minChunk {
		for i, p := range pc {
			if !finite(p.X) || !finite(p.Y) || !finite(p.Z) {
				return i
			}
		}
		return -1
	}
	if max := (len(pc) + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	firsts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			firsts[w] = -1
			lo, hi := len(pc)*w/workers, len(pc)*(w+1)/workers
			for i := lo; i < hi; i++ {
				p := pc[i]
				if !finite(p.X) || !finite(p.Y) || !finite(p.Z) {
					firsts[w] = i
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Chunks cover ascending ranges, so the first hit is the lowest index.
	for _, i := range firsts {
		if i >= 0 {
			return i
		}
	}
	return -1
}

func appendFloat32(dst []byte, f float32) []byte {
	v := math.Float32bits(f)
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendSection(dst, payload []byte) []byte {
	dst = varint.AppendUint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}
