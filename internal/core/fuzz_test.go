package core

import (
	"testing"

	"dbgc/internal/geom"
)

// FuzzDecompress drives the whole decode stack with mutated streams. Run
// with `go test -fuzz=FuzzDecompress ./internal/core/`; in normal test mode
// the seed corpus exercises the happy path plus classic corruptions. The
// invariant: Decompress never panics and never returns both nil error and a
// malformed cloud.
func FuzzDecompress(f *testing.F) {
	pc := geom.PointCloud{
		{X: 3, Y: 1, Z: -1}, {X: 3.1, Y: 1.1, Z: -1}, {X: 3.2, Y: 1.2, Z: -1},
		{X: 10, Y: -4, Z: 0.5}, {X: 40, Y: 40, Z: 2},
	}
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		f.Fatal(err)
	}
	sopts := DefaultOptions(0.02)
	sopts.Shards = 2
	v3, _, err := Compress(pc, sopts)
	if err != nil {
		f.Fatal(err)
	}
	popts := DefaultOptions(0.02)
	popts.BlockPackForce = true
	v4, _, err := Compress(pc, popts)
	if err != nil {
		f.Fatal(err)
	}
	copts := DefaultOptions(0.02)
	copts.ContextModel = true
	copts.Shards = 2
	v5, _, err := Compress(pc, copts)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add(v3)
	f.Add(v4)
	f.Add(v5)
	f.Add(v5[:len(v5)/2])
	f.Add([]byte("DBGC\x01garbage"))
	f.Add([]byte("DBGC\x03garbage"))
	f.Add([]byte("DBGC\x04garbage"))
	f.Add([]byte("DBGC\x05\x07garbage"))
	f.Add([]byte("DBGC\x05\xffgarbage"))
	f.Add([]byte{})
	mut := append([]byte(nil), data...)
	if len(mut) > 10 {
		mut[10] ^= 0xff
	}
	f.Add(mut)
	mut3 := append([]byte(nil), v3...)
	if len(mut3) > 20 {
		mut3[20] ^= 0xff
	}
	f.Add(mut3)
	mut4 := append([]byte(nil), v4...)
	if len(mut4) > 30 {
		mut4[30] ^= 0xff
	}
	f.Add(mut4)
	// v5 mutants: flip the dialect byte and garble the context-table header
	// region at the head of the dense section.
	mut5 := append([]byte(nil), v5...)
	mut5[5] ^= 0x04
	f.Add(mut5)
	mut5b := append([]byte(nil), v5...)
	if len(mut5b) > 45 {
		mut5b[45] ^= 0xff
	}
	f.Add(mut5b)
	f.Fuzz(func(t *testing.T, b []byte) {
		dec, err := Decompress(b)
		if err == nil && dec == nil {
			t.Fatal("nil cloud with nil error")
		}
		// v3 containers route through the sharded decoders and the
		// group-salvage partial path; neither may panic.
		_, _ = DecompressWith(b, DecompressOptions{Parallel: true})
		_, _, _ = DecompressPartial(b, DecompressOptions{})
	})
}
