package core

import (
	"bytes"
	"fmt"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

// TestContextModelEquivalence is the v5 contract: across the dialect matrix
// (shards × blockpack), a ContextModel frame decodes to exactly the points
// of the plain frame, serial and parallel encodes are byte-identical, the
// container carries version 5 with the right dialect byte, and the
// per-stream size guard keeps the frame from ever growing past the marker
// overhead.
func TestContextModelEquivalence(t *testing.T) {
	pc := frame(t, lidar.City)
	plainData, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(plainData)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		shards    int
		blockpack bool
	}{{0, false}, {4, false}, {0, true}, {4, true}} {
		t.Run(fmt.Sprintf("shards=%d/blockpack=%v", cfg.shards, cfg.blockpack), func(t *testing.T) {
			opts := DefaultOptions(0.02)
			opts.Shards = cfg.shards
			opts.BlockPack = cfg.blockpack
			opts.BlockPackForce = cfg.blockpack // pin the dialect under test
			plain, _, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.ContextModel = true
			serial, stats, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallel = true
			parallel, _, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, parallel) {
				t.Fatal("parallel context encode differs from serial")
			}
			if serial[len(magic)] != version5 {
				t.Fatalf("context container has version %d, want %d", serial[len(magic)], version5)
			}
			wantDialect := byte(dialectContext)
			if cfg.shards > 1 {
				wantDialect |= dialectSharded
			}
			if cfg.blockpack {
				wantDialect |= dialectBlockPack
			}
			if serial[len(magic)+1] != wantDialect {
				t.Fatalf("dialect byte %#x, want %#x", serial[len(magic)+1], wantDialect)
			}
			// The guard bound: the v5 frame carries one dialect byte plus at
			// most one method marker per guarded stream over its base dialect.
			if len(serial) > len(plain)+16 {
				t.Fatalf("context frame %dB exceeds plain %dB + markers", len(serial), len(plain))
			}
			t.Logf("frame bytes: plain %d, ctx %d (ratio %.2f)", len(plain), len(serial), stats.CompressionRatio())
			if len(stats.Mapping) != len(pc) {
				t.Fatalf("mapping has %d entries, want %d", len(stats.Mapping), len(pc))
			}
			for _, par := range []bool{false, true} {
				got, err := DecompressWith(serial, DecompressOptions{Parallel: par})
				if err != nil {
					t.Fatalf("decode (parallel=%v): %v", par, err)
				}
				if !cloudsEqual(want, got) {
					t.Fatalf("decode (parallel=%v) differs from legacy decode", par)
				}
			}
			lay, err := Inspect(serial)
			if err != nil {
				t.Fatal(err)
			}
			if !lay.ContextModeled || lay.ShardedStreams != (cfg.shards > 1) || lay.BlockPacked != cfg.blockpack {
				t.Fatalf("Inspect reports ctx=%v sharded=%v blockpack=%v", lay.ContextModeled, lay.ShardedStreams, lay.BlockPacked)
			}
		})
	}
}

// TestContextModelUnderLimits: a v5 frame decodes under the default
// production limits, and a MaxContexts cap below the stream's context count
// rejects the frame up front instead of building the tables.
func TestContextModelUnderLimits(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	opts.ContextModel = true
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressWith(data, DecompressOptions{Limits: DefaultDecodeLimits()}); err != nil {
		t.Fatalf("default limits reject a real v5 frame: %v", err)
	}
	lim := DefaultDecodeLimits()
	lim.MaxContexts = 1
	if _, err := DecompressWith(data, DecompressOptions{Limits: lim}); err == nil {
		t.Fatal("MaxContexts=1 accepted a context-modeled frame")
	}
}

// TestContextModelCorrupt: the v5 envelope rejects unknown dialect bits and
// truncations anywhere in the frame.
func TestContextModelCorrupt(t *testing.T) {
	pc := frame(t, lidar.Residential)
	opts := DefaultOptions(0.02)
	opts.ContextModel = true
	opts.Shards = 2
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(magic)+1] = 0x80
	if _, err := Decompress(bad); err == nil {
		t.Fatal("unknown dialect bits accepted")
	}
	for cut := 0; cut < len(data); cut += len(data)/97 + 1 {
		if _, err := Decompress(data[:cut]); err == nil {
			t.Fatalf("truncated at %d: want error", cut)
		}
	}
}

// TestContextModelRegion: region queries work on v5 frames.
func TestContextModelRegion(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	opts.ContextModel = true
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	region := geom.AABB{Min: geom.Point{X: -20, Y: -20, Z: -5}, Max: geom.Point{X: 20, Y: 20, Z: 5}}
	got, err := DecompressRegion(data, region)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 0
	for _, p := range full {
		if region.Contains(p) {
			wantN++
		}
	}
	if len(got) != wantN {
		t.Fatalf("region decode returned %d points, filter says %d", len(got), wantN)
	}
}
