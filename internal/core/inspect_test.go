package core

import (
	"testing"

	"dbgc/internal/lidar"
)

func TestInspect(t *testing.T) {
	pc := frame(t, lidar.Road)[:30000]
	opts := DefaultOptions(0.02)
	data, stats, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if l.Version != version {
		t.Fatalf("version %d", l.Version)
	}
	if l.BytesTotal != stats.BytesTotal || l.BytesDense != stats.BytesDense ||
		l.BytesSparse != stats.BytesSparse || l.BytesOutlier != stats.BytesOutlier {
		t.Fatalf("layout bytes %+v disagree with stats %+v", l, stats)
	}
	if l.PointsDense != stats.NumDense {
		t.Fatalf("PointsDense %d, want %d", l.PointsDense, stats.NumDense)
	}
	if l.PointsOutlier != stats.NumOutliers {
		t.Fatalf("PointsOutlier %d, want %d", l.PointsOutlier, stats.NumOutliers)
	}
	if l.Groups != opts.Groups && l.Groups != 1 {
		t.Fatalf("Groups %d, want %d", l.Groups, opts.Groups)
	}
	if l.OutlierMode != OutlierQuadtree {
		t.Fatalf("OutlierMode %d", l.OutlierMode)
	}
}

func TestInspectGarbage(t *testing.T) {
	if _, err := Inspect(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Inspect([]byte("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
}
