package core

import (
	"context"
	"errors"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
	"dbgc/internal/varint"
)

// TestTruncationSweep feeds every prefix of a valid compressed frame to the
// decoder under small decode limits: each must fail with a clean error —
// no panic, no allocation past the budget — because the container's section
// framing (and the v2 CRCs) cannot survive truncation.
func TestTruncationSweep(t *testing.T) {
	pc := frame(t, lidar.City)[:4000]
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	lim := DecodeLimits{MaxPoints: 1 << 20, MaxNodes: 1 << 24, MemBudget: 256 << 20}
	for i := 0; i < len(data); i++ {
		if _, err := DecompressWith(data[:i], DecompressOptions{Limits: lim}); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(data))
		}
	}
}

// TestDecodeLimitsEnforced: a well-formed frame still fails once the caller
// allows fewer resources than it needs, and the error wraps ErrLimit so the
// caller can tell "too expensive" from "corrupt".
func TestDecodeLimitsEnforced(t *testing.T) {
	pc := frame(t, lidar.City)[:4000]
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressWith(data, DecompressOptions{Limits: DecodeLimits{MaxPoints: 16}}); !errors.Is(err, ErrLimit) {
		t.Fatalf("MaxPoints=16: want ErrLimit, got %v", err)
	}
	if _, err := DecompressWith(data, DecompressOptions{Limits: DecodeLimits{MaxSectionBytes: 8}}); !errors.Is(err, ErrLimit) {
		t.Fatalf("MaxSectionBytes=8: want ErrLimit, got %v", err)
	}
	if _, err := DecompressWith(data, DecompressOptions{Limits: DecodeLimits{MemBudget: 64}}); !errors.Is(err, ErrLimit) {
		t.Fatalf("MemBudget=64: want ErrLimit, got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecompressWith(data, DecompressOptions{Limits: DecodeLimits{Ctx: ctx}}); err == nil {
		t.Fatal("cancelled context: want error, got nil")
	}
	// Generous limits decode the same points as no limits at all.
	want, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressWith(data, DecompressOptions{Limits: DefaultDecodeLimits()})
	if err != nil {
		t.Fatal(err)
	}
	if !cloudsEqual(want, got) {
		t.Fatal("decode under DefaultDecodeLimits differs from unlimited decode")
	}
}

// TestDecompressPartialRecoversIntactSections corrupts one section of a v2
// frame and checks that DecompressPartial returns the other two sections
// byte-identically to a full decode of the pristine frame while reporting
// the damaged one.
func TestDecompressPartialRecoversIntactSections(t *testing.T) {
	pc := frame(t, lidar.City)
	data, stats, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumDense == 0 || stats.NumSparse == 0 || stats.NumOutliers == 0 {
		t.Fatalf("test frame must populate all sections, got %d/%d/%d",
			stats.NumDense, stats.NumSparse, stats.NumOutliers)
	}
	full, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the sparse payload (it aliases data).
	c, err := parseContainer(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := c.sec[SectionSparse].payload
	sp[len(sp)/2] ^= 0xff

	if _, err := Decompress(data); err == nil {
		t.Fatal("full decode of the corrupted frame should fail")
	}
	part, reports, err := DecompressPartial(data, DecompressOptions{})
	if err != nil {
		t.Fatalf("partial decode rejected the whole frame: %v", err)
	}
	if reports[SectionSparse].Err == nil {
		t.Fatal("sparse section damage not reported")
	}
	if len(reports[SectionSparse].Raw) != len(sp) {
		t.Fatalf("damaged report carries %d raw bytes, want %d", len(reports[SectionSparse].Raw), len(sp))
	}
	if reports[SectionDense].Err != nil || reports[SectionOutlier].Err != nil {
		t.Fatalf("intact sections reported damaged: dense=%v outlier=%v",
			reports[SectionDense].Err, reports[SectionOutlier].Err)
	}
	// Full decode order is dense, sparse, outlier; the partial cloud keeps
	// container order, so it must equal full minus the sparse run.
	nd, no := reports[SectionDense].Points, reports[SectionOutlier].Points
	if nd == 0 || no == 0 {
		t.Fatalf("intact sections recovered no points: dense=%d outlier=%d", nd, no)
	}
	want := append(append(geom.PointCloud{}, full[:nd]...), full[len(full)-no:]...)
	if !cloudsEqual(want, part) {
		t.Fatalf("partial cloud differs from the intact sections of the full decode (%d vs %d points)",
			len(part), len(want))
	}
}

// TestDecompressPartialCRCCatchesDamage: on a v2 frame the per-section CRC
// flags damage even when the mutated bytes would still decode, so a report
// appears no matter where the flip lands.
func TestDecompressPartialCRCCatchesDamage(t *testing.T) {
	pc := frame(t, lidar.Residential)[:2000]
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	c, err := parseContainer(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	for id := SectionID(0); id < numSections; id++ {
		if !c.sec[id].hasCRC {
			t.Fatalf("%s section of a freshly written frame has no CRC", id)
		}
	}
	dn := c.sec[SectionDense].payload
	dn[0] ^= 0x01
	_, reports, err := DecompressPartial(data, DecompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reports[SectionDense].Err == nil {
		t.Fatal("dense CRC mismatch not reported")
	}
	dn[0] ^= 0x01 // restore: the frame must round-trip again
	back, err := Decompress(data)
	if err != nil || len(back) != len(pc) {
		t.Fatalf("restored frame broken: %d points, %v", len(back), err)
	}
}

// TestV1FramesStillDecode: version-1 frames (no section CRCs) remain
// readable, including by DecompressPartial.
func TestV1FramesStillDecode(t *testing.T) {
	pc := frame(t, lidar.Residential)[:2000]
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	v1 := rewriteAsV1(t, data)
	want, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(v1)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if !cloudsEqual(want, got) {
		t.Fatal("v1 decode differs from v2 decode")
	}
	_, reports, err := DecompressPartial(v1, DecompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("v1 %s section reported damaged: %v", rep.Section, rep.Err)
		}
	}
}

// rewriteAsV1 re-frames a v2 container in the legacy v1 layout (no section
// CRCs), byte-for-byte preserving the payloads.
func rewriteAsV1(t *testing.T, data []byte) []byte {
	t.Helper()
	c, err := parseContainer(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]byte(magic), version1)
	out = varint.AppendUint(out, uint64(c.mode))
	for id := SectionID(0); id < numSections; id++ {
		out = varint.AppendUint(out, uint64(len(c.sec[id].payload)))
		out = append(out, c.sec[id].payload...)
	}
	return out
}

func cloudsEqual(a, b geom.PointCloud) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
