package core

import (
	"testing"

	"dbgc/internal/lidar"
)

// TestRatioSmoke is the ratio regression guard that runs under `make
// check`: the reference city frame must compress at or above the plateau
// the perf PRs were held to (20.4 with defaults), and the context-modeled
// v5 dialect must hold the ratio that broke that plateau (21.0). A perf
// change that silently trades ratio for speed fails here, not in a
// quarterly bench run.
func TestRatioSmoke(t *testing.T) {
	pc := frame(t, lidar.City)
	ratio := func(data []byte) float64 {
		return float64(len(pc)*12) / float64(len(data))
	}
	plain, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if r := ratio(plain); r < 20.4 {
		t.Errorf("default compression ratio %.2f below the 20.4 floor", r)
	}
	opts := DefaultOptions(0.02)
	opts.ContextModel = true
	ctx, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := ratio(ctx); r < 21.0 {
		t.Errorf("context-modeled compression ratio %.2f below the 21.0 target", r)
	}
	t.Logf("city frame ratios: defaults %.2f, context-modeled %.2f", ratio(plain), ratio(ctx))
}
