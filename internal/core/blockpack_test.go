package core

import (
	"bytes"
	"fmt"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

// TestBlockPackRoundTrip is the v4 dialect contract: for every shard count,
// parallel and serial blockpacked encodes produce the same bytes, the
// container carries version 4, and serial and parallel decodes reproduce
// the legacy decode exactly.
func TestBlockPackRoundTrip(t *testing.T) {
	pc := frame(t, lidar.City)
	legacyData, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(legacyData)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := DefaultOptions(0.02)
			opts.Shards = shards
			opts.BlockPackForce = true
			serial, _, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallel = true
			parallel, _, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial, parallel) {
				t.Fatal("parallel blockpacked encode differs from serial")
			}
			if serial[len(magic)] != version4 {
				t.Fatalf("blockpacked container has version %d, want %d", serial[len(magic)], version4)
			}
			for _, par := range []bool{false, true} {
				got, err := DecompressWith(serial, DecompressOptions{Parallel: par})
				if err != nil {
					t.Fatalf("decode (parallel=%v): %v", par, err)
				}
				if !cloudsEqual(want, got) {
					t.Fatalf("decode (parallel=%v) differs from legacy decode", par)
				}
			}
		})
	}
}

// TestBlockPackOffByteIdentical pins the compatibility contract of the
// default: BlockPack=false output is byte-identical to the v2 (unsharded)
// and v3 (sharded) containers of previous releases.
func TestBlockPackOffByteIdentical(t *testing.T) {
	pc := frame(t, lidar.Campus)
	for _, shards := range []int{1, 4} {
		opts := DefaultOptions(0.02)
		opts.Shards = shards
		ref, _, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.BlockPack = false
		off, _, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, off) {
			t.Fatalf("shards=%d: BlockPack=false changed the container bytes", shards)
		}
	}
}

// TestBlockPackSizeGuard pins the guard contract: on a frame where the
// adaptive coders beat blockpack (LiDAR streams are heavily skewed, so
// real frames do), guarded BlockPack output is byte-identical to the plain
// container, while BlockPackForce always emits v4.
func TestBlockPackSizeGuard(t *testing.T) {
	pc := frame(t, lidar.City)
	for _, shards := range []int{1, 4} {
		opts := DefaultOptions(0.02)
		opts.Shards = shards
		plain, _, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.BlockPack = true
		guarded, _, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.BlockPackForce = true
		forced, _, err := Compress(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if forced[len(magic)] != version4 {
			t.Fatalf("shards=%d: forced container has version %d, want %d",
				shards, forced[len(magic)], version4)
		}
		if len(forced) < len(plain) {
			// Blockpack won outright; the guard must have kept it.
			if !bytes.Equal(guarded, forced) {
				t.Fatalf("shards=%d: guard dropped a smaller v4 container", shards)
			}
			continue
		}
		if !bytes.Equal(guarded, plain) {
			t.Fatalf("shards=%d: guard kept a v4 container that is not smaller (guarded %d, plain %d, forced %d bytes)",
				shards, len(guarded), len(plain), len(forced))
		}
	}
}

// TestBlockPackWithLimits decodes a v4 frame under the production decode
// limits; real frames must pass and tiny budgets must fail cleanly.
func TestBlockPackWithLimits(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	opts.BlockPackForce = true
	opts.Shards = 4
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecompressWith(data, DecompressOptions{Limits: DefaultDecodeLimits()}); err != nil {
		t.Fatalf("default limits rejected a real v4 frame: %v", err)
	}
	tiny := DecodeLimits{MaxNodes: 64}
	if _, err := DecompressWith(data, DecompressOptions{Limits: tiny}); err == nil {
		t.Fatal("a 64-node budget decoded a full v4 frame")
	}
}

// TestBlockPackRegion checks that the region query path handles the v4
// dialect: the blockpacked frame yields the same region points as legacy.
func TestBlockPackRegion(t *testing.T) {
	pc := frame(t, lidar.City)
	legacy, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(0.02)
	opts.BlockPackForce = true
	packed, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	region := geom.AABB{Min: geom.Point{X: -20, Y: -20, Z: -5}, Max: geom.Point{X: 20, Y: 20, Z: 5}}
	want, err := DecompressRegion(legacy, region)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressRegion(packed, region)
	if err != nil {
		t.Fatal(err)
	}
	if !cloudsEqual(want, got) {
		t.Fatalf("v4 region decode returned %d points, legacy %d (or differing points)", len(got), len(want))
	}
}

// TestBlockPackPartialSalvage damages one sparse radial group of a v4 frame
// and checks that the group-CRC salvage of the v3 dialect still works: the
// other groups and sections survive.
func TestBlockPackPartialSalvage(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	opts.BlockPackForce = true
	data, _, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	intact, _, err := DecompressPartial(data, DecompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep inside the sparse section (the middle of the frame).
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0xff
	got, reports, err := DecompressPartial(mut, DecompressOptions{})
	if err != nil {
		t.Fatalf("partial decode of damaged v4 frame: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("nothing salvaged from a single-byte-damaged v4 frame")
	}
	if len(got) >= len(intact) {
		t.Fatalf("salvaged %d points from a damaged frame, intact frame has %d", len(got), len(intact))
	}
	damaged := false
	for _, r := range reports {
		if r.Err != nil {
			damaged = true
		}
	}
	if !damaged {
		t.Fatal("no section reported the damage")
	}
}
