package core

import (
	"bytes"
	"testing"
	"time"

	"dbgc/internal/lidar"
)

// TestParallelIdenticalOutput: parallel compression must be byte-identical
// to serial — the decoder-replay design depends on deterministic streams.
func TestParallelIdenticalOutput(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	serial, sStats, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = true
	parallel, pStats, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel output differs: %d vs %d bytes", len(parallel), len(serial))
	}
	if len(sStats.Mapping) != len(pStats.Mapping) {
		t.Fatal("mapping sizes differ")
	}
	for i := range sStats.Mapping {
		if sStats.Mapping[i] != pStats.Mapping[i] {
			t.Fatalf("mapping differs at %d", i)
		}
	}
}

// TestParallelSpeed is informational: parallel mode should not be slower
// than serial by any meaningful margin on a multi-core machine.
func TestParallelSpeed(t *testing.T) {
	pc := frame(t, lidar.City)
	measure := func(parallel bool) time.Duration {
		opts := DefaultOptions(0.02)
		opts.Parallel = parallel
		best := time.Duration(1 << 62)
		for i := 0; i < 2; i++ {
			t0 := time.Now()
			if _, _, err := Compress(pc, opts); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(false)
	parallel := measure(true)
	t.Logf("serial %v, parallel %v (%.2fx)", serial.Round(time.Millisecond),
		parallel.Round(time.Millisecond), float64(serial)/float64(parallel))
	if parallel > serial*3/2 {
		t.Errorf("parallel mode much slower than serial: %v vs %v", parallel, serial)
	}
}
