package core

import (
	"bytes"
	"testing"
	"time"

	"dbgc/internal/lidar"
	"dbgc/internal/varint"
)

// TestParallelIdenticalOutput: parallel compression must be byte-identical
// to serial — the decoder-replay design depends on deterministic streams.
func TestParallelIdenticalOutput(t *testing.T) {
	pc := frame(t, lidar.City)
	opts := DefaultOptions(0.02)
	serial, sStats, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = true
	parallel, pStats, err := Compress(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel output differs: %d vs %d bytes", len(parallel), len(serial))
	}
	if len(sStats.Mapping) != len(pStats.Mapping) {
		t.Fatal("mapping sizes differ")
	}
	for i := range sStats.Mapping {
		if sStats.Mapping[i] != pStats.Mapping[i] {
			t.Fatalf("mapping differs at %d", i)
		}
	}
}

// TestParallelDecodeIdentical: parallel decoding must reconstruct exactly
// the same points in exactly the same order as serial decoding, for every
// outlier mode and ablation.
func TestParallelDecodeIdentical(t *testing.T) {
	pc := frame(t, lidar.City)
	cases := []struct {
		name   string
		adjust func(*Options)
	}{
		{"default", func(o *Options) {}},
		{"outlier-octree", func(o *Options) { o.OutlierMode = OutlierOctree }},
		{"outlier-none", func(o *Options) { o.OutlierMode = OutlierNone }},
		{"-radial", func(o *Options) { o.DisableRadialOpt = true }},
		{"-conversion", func(o *Options) { o.CartesianPolylines = true }},
		{"exact-clustering", func(o *Options) { o.ExactClustering = true }},
		{"one-group", func(o *Options) { o.Groups = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions(0.02)
			tc.adjust(&opts)
			data, _, err := Compress(pc, opts)
			if err != nil {
				t.Fatal(err)
			}
			serial, err := Decompress(data)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := DecompressWith(data, DecompressOptions{Parallel: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(parallel) {
				t.Fatalf("parallel decoded %d points, serial %d", len(parallel), len(serial))
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("point %d differs: %v vs %v", i, parallel[i], serial[i])
				}
			}
		})
	}
}

// TestParallelDecodeCorrupt: corrupt sections must fail identically (same
// error class) whether or not decoding is parallel.
func TestParallelDecodeCorrupt(t *testing.T) {
	pc := frame(t, lidar.Road)
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
		mangled := append([]byte(nil), data[:cut]...)
		_, serialErr := Decompress(mangled)
		_, parallelErr := DecompressWith(mangled, DecompressOptions{Parallel: true})
		if (serialErr == nil) != (parallelErr == nil) {
			t.Fatalf("cut %d: serial err %v, parallel err %v", cut, serialErr, parallelErr)
		}
	}
}

// TestRawOutlierCountOverflow: a header count chosen so 12*n wraps uint64
// must be rejected, not used as an allocation size.
func TestRawOutlierCountOverflow(t *testing.T) {
	// n = 2^62 + 1 makes 12*n ≡ 12 (mod 2^64), matching a 12-byte payload.
	n := uint64(1)<<62 + 1
	data := varint.AppendUint(nil, n)
	data = append(data, make([]byte, 12)...)
	if _, err := decodeOutliers(data, OutlierNone, nil, false, false, false, false); err == nil {
		t.Fatal("wrapped outlier count accepted")
	}
	// Sanity: the bound still admits a correct stream.
	good := varint.AppendUint(nil, 1)
	good = append(good, make([]byte, 12)...)
	pts, err := decodeOutliers(good, OutlierNone, nil, false, false, false, false)
	if err != nil || len(pts) != 1 {
		t.Fatalf("valid raw outlier section rejected: %v", err)
	}
}

// TestParallelSpeed is informational: parallel mode should not be slower
// than serial by any meaningful margin on a multi-core machine.
func TestParallelSpeed(t *testing.T) {
	pc := frame(t, lidar.City)
	measure := func(parallel bool) time.Duration {
		opts := DefaultOptions(0.02)
		opts.Parallel = parallel
		best := time.Duration(1 << 62)
		for i := 0; i < 2; i++ {
			t0 := time.Now()
			if _, _, err := Compress(pc, opts); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	serial := measure(false)
	parallel := measure(true)
	t.Logf("serial %v, parallel %v (%.2fx)", serial.Round(time.Millisecond),
		parallel.Round(time.Millisecond), float64(serial)/float64(parallel))
	if parallel > serial*3/2 {
		t.Errorf("parallel mode much slower than serial: %v vs %v", parallel, serial)
	}
}
