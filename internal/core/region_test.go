package core

import (
	"sort"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

func TestDecompressRegion(t *testing.T) {
	pc := frame(t, lidar.City)
	data, _, err := Compress(pc, DefaultOptions(0.02))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	regions := []geom.AABB{
		{Min: geom.Point{X: -10, Y: -10, Z: -3}, Max: geom.Point{X: 10, Y: 10, Z: 3}},
		{Min: geom.Point{X: 20, Y: 20, Z: -3}, Max: geom.Point{X: 60, Y: 60, Z: 10}},
		{Min: geom.Point{X: 500, Y: 500, Z: 0}, Max: geom.Point{X: 600, Y: 600, Z: 1}}, // empty
	}
	for ri, region := range regions {
		got, err := DecompressRegion(data, region)
		if err != nil {
			t.Fatalf("region %d: %v", ri, err)
		}
		var want geom.PointCloud
		for _, p := range full {
			if region.Contains(p) {
				want = append(want, p)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("region %d: %d points, want %d", ri, len(got), len(want))
		}
		sortCloud(got)
		sortCloud(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("region %d: point %d = %v, want %v", ri, i, got[i], want[i])
			}
		}
		t.Logf("region %d: %d of %d points", ri, len(got), len(full))
	}
}

func sortCloud(pc geom.PointCloud) {
	sort.Slice(pc, func(i, j int) bool {
		if pc[i].X != pc[j].X {
			return pc[i].X < pc[j].X
		}
		if pc[i].Y != pc[j].Y {
			return pc[i].Y < pc[j].Y
		}
		return pc[i].Z < pc[j].Z
	})
}

func TestDecompressRegionGarbage(t *testing.T) {
	box := geom.AABB{Min: geom.Point{X: -1, Y: -1, Z: -1}, Max: geom.Point{X: 1, Y: 1, Z: 1}}
	if _, err := DecompressRegion(nil, box); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := DecompressRegion([]byte("DBGC\x01xx"), box); err == nil {
		t.Fatal("truncated accepted")
	}
}
