package core

import (
	"dbgc/internal/varint"
)

// Layout describes a DBGC bit sequence's structure (Figure 8) without
// fully decoding it, for tooling and diagnostics.
type Layout struct {
	Version      byte
	OutlierMode  OutlierMode
	BytesTotal   int
	BytesDense   int
	BytesSparse  int
	BytesOutlier int
	// SectionCRCs reports whether the container carries per-section CRC32s
	// (version 2 and later).
	SectionCRCs bool
	// ShardedStreams reports the v3 dialect: high-volume entropy streams
	// split into independently coded shards, sparse groups CRC-prefixed.
	ShardedStreams bool
	// BlockPacked reports the v4 dialect: integer hot-path streams coded
	// with the blockpack codec inside the shard framing.
	BlockPacked bool
	// ContextModeled reports the v5 dialect: occupancy and angular streams
	// may be coded under the ctxmodel context banks, per-stream size
	// guarded. On v5 frames all three dialect flags come from the dialect
	// byte rather than the version number.
	ContextModeled bool
	// Groups is the number of radial point groups in the sparse section.
	Groups int
	// PointsDense, PointsSparse, PointsOutlier are header point counts
	// (dense and outlier sections record them directly; sparse requires
	// full decode and is reported as -1).
	PointsDense   int
	PointsOutlier int
}

// Inspect parses the layout of a compressed frame.
func Inspect(data []byte) (Layout, error) {
	var l Layout
	l.BytesTotal = len(data)
	c, err := parseContainer(data, nil)
	l.Version = c.version
	if err != nil {
		return l, err
	}
	l.OutlierMode = c.mode
	l.SectionCRCs = c.sec[SectionDense].hasCRC
	l.ShardedStreams, l.BlockPacked, l.ContextModeled = c.flags()

	dense := c.sec[SectionDense].payload
	l.BytesDense = len(dense)
	if n, _, err := varint.Uint(dense); err == nil {
		l.PointsDense = int(n)
	}
	sparse := c.sec[SectionSparse].payload
	l.BytesSparse = len(sparse)
	// Sparse section: flags varint, q float64, group count varint.
	if _, used, err := varint.Uint(sparse); err == nil {
		rest := sparse[used:]
		if len(rest) >= 8 {
			if g, _, err := varint.Uint(rest[8:]); err == nil {
				l.Groups = int(g)
			}
		}
	}
	outlierData := c.sec[SectionOutlier].payload
	l.BytesOutlier = len(outlierData)
	if l.OutlierMode == OutlierNone || l.OutlierMode == OutlierOctree {
		if n, _, err := varint.Uint(outlierData); err == nil {
			l.PointsOutlier = int(n)
		}
	} else if len(outlierData) > 8 {
		// Quadtree outlier section: q (float64), quadtree stream length
		// varint, then the quadtree stream whose first varint is the
		// point count.
		rest := outlierData[8:]
		if _, used, err := varint.Uint(rest); err == nil {
			if n, _, err := varint.Uint(rest[used:]); err == nil {
				l.PointsOutlier = int(n)
			}
		}
	}
	return l, nil
}
