package faultnet

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func openBacking(t *testing.T) (*os.File, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "disk.bin")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f, path
}

func TestDiskReadSeesUnsyncedWrites(t *testing.T) {
	f, _ := openBacking(t)
	d := NewDisk(f, 0, DiskConfig{Seed: SeedForTest(t, 1)})
	defer d.Close()
	if _, err := d.WriteAt([]byte("hello "), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("world"), 6); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if _, err := d.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("overlay read = %q", got)
	}
	if sz, _ := d.Size(); sz != 11 {
		t.Fatalf("size = %d", sz)
	}
}

func TestDiskCrashDropsUnsynced(t *testing.T) {
	f, path := openBacking(t)
	d := NewDisk(f, 0, DiskConfig{Seed: SeedForTest(t, 2)})
	if _, err := d.WriteAt([]byte("durable!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(bytes.Repeat([]byte{0xff}, 64), 8); err != nil {
		t.Fatal(err)
	}
	survived, _, err := d.Crash()
	if err != nil {
		t.Fatal(err)
	}
	if survived > 1 {
		t.Fatalf("crash kept %d unsynced writes, only had 1", survived)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) < 8 || string(after[:8]) != "durable!" {
		t.Fatalf("synced prefix lost: %q", after)
	}
	if _, err := d.WriteAt([]byte("x"), 0); err != ErrDiskCrashed {
		t.Fatalf("post-crash write: %v", err)
	}
}

func TestDiskCrashTearsWrite(t *testing.T) {
	// With TearOnCrash a discarded write may leave a partial fragment;
	// over several seeds at least one crash must produce a strict tear.
	sawTear := false
	for seed := int64(0); seed < 20 && !sawTear; seed++ {
		f, path := openBacking(t)
		d := NewDisk(f, 0, DiskConfig{Seed: seed, TearOnCrash: true, FlipOnTear: true})
		if _, err := d.WriteAt(bytes.Repeat([]byte{0xab}, 100), 0); err != nil {
			t.Fatal(err)
		}
		_, torn, err := d.Crash()
		if err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if torn && len(after) > 0 && len(after) < 100 {
			sawTear = true
		}
		if len(after) > 100 {
			t.Fatalf("crash grew the file to %d bytes", len(after))
		}
	}
	if !sawTear {
		t.Fatal("no seed in [0,20) produced a torn write")
	}
}

func TestDiskInjectedWriteFault(t *testing.T) {
	f, _ := openBacking(t)
	d := NewDisk(f, 0, DiskConfig{Seed: SeedForTest(t, 3), WriteErrProb: 1})
	defer d.Close()
	if _, err := d.WriteAt([]byte("nope"), 0); err != ErrInjectedWriteFault {
		t.Fatalf("want injected fault, got %v", err)
	}
	if d.Faults() != 1 {
		t.Fatalf("faults = %d", d.Faults())
	}
	if sz, _ := d.Size(); sz != 0 {
		t.Fatalf("failed write extended the file to %d", sz)
	}
}

func TestSeedForTestOverride(t *testing.T) {
	t.Setenv("FAULTNET_SEED", "12345")
	if got := SeedForTest(t, 7); got != 12345 {
		t.Fatalf("env override ignored: %d", got)
	}
	t.Setenv("FAULTNET_SEED", "not-a-number")
	if got := SeedForTest(t, 7); got != 7 {
		t.Fatalf("bad env should fall back to default: %d", got)
	}
}
