package faultnet

import (
	"os"
	"strconv"
)

// TB is the sliver of *testing.T the seed helper needs; declared here so
// non-test binaries importing faultnet do not pull in package testing.
type TB interface {
	Helper()
	Cleanup(func())
	Failed() bool
	Logf(format string, args ...any)
}

// SeedForTest resolves the fault-injection seed for a test: the
// FAULTNET_SEED environment variable overrides def, and the effective seed
// is logged once the test finishes if it failed — so any flaky-link
// failure can be replayed exactly with
//
//	FAULTNET_SEED=<seed> go test -run <Test> ./...
func SeedForTest(t TB, def int64) int64 {
	t.Helper()
	seed := def
	if env := os.Getenv("FAULTNET_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil {
			seed = v
		} else {
			t.Logf("faultnet: ignoring unparsable FAULTNET_SEED=%q: %v", env, err)
		}
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("faultnet: failing fault schedule is replayable with FAULTNET_SEED=%d", seed)
		}
	})
	return seed
}
