package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns a wrapped client end and the raw server end of a TCP
// loopback pair (TCP rather than net.Pipe so writes are buffered, like the
// real link).
func pipePair(t *testing.T, in *Injector) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-ch
	if srv.err != nil {
		t.Fatal(srv.err)
	}
	t.Cleanup(func() { client.Close(); srv.c.Close() })
	return in.Wrap(client), srv.c
}

func TestCleanPassThrough(t *testing.T) {
	in := New(Config{Seed: SeedForTest(t, 1)})
	c, s := pipePair(t, in)
	msg := []byte("unfaulted bytes travel verbatim")
	go func() {
		c.Write(msg)
		c.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("faults injected with zero probabilities: %+v", st)
	}
}

func TestBitFlipCorruptsExactlyOneBit(t *testing.T) {
	in := New(Config{Seed: SeedForTest(t, 7), FlipProb: 1})
	c, s := pipePair(t, in)
	msg := bytes.Repeat([]byte{0x00}, 256)
	go func() {
		c.Write(msg)
		c.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msg) {
		t.Fatalf("length changed: %d", len(got))
	}
	ones := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	if ones != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", ones)
	}
	if in.Stats().Flips == 0 {
		t.Fatal("flip not counted")
	}
}

func TestDropSeversConnection(t *testing.T) {
	in := New(Config{Seed: SeedForTest(t, 3), DropProb: 1})
	c, _ := pipePair(t, in)
	if _, err := c.Write(bytes.Repeat([]byte{1}, 64)); err != ErrInjectedDrop {
		t.Fatalf("want ErrInjectedDrop, got %v", err)
	}
	// The conn is gone for good: later writes fail too.
	if _, err := c.Write([]byte{2}); err != ErrInjectedDrop {
		t.Fatalf("post-drop write: want ErrInjectedDrop, got %v", err)
	}
	if in.Stats().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

func TestPartialWriteStillDeliversEverything(t *testing.T) {
	in := New(Config{Seed: SeedForTest(t, 5), PartialProb: 1})
	c, s := pipePair(t, in)
	msg := bytes.Repeat([]byte{0xab}, 1000)
	go func() {
		c.Write(msg)
		c.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("torn write lost data: %d bytes", len(got))
	}
	if in.Stats().Partials == 0 {
		t.Fatal("partial not counted")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func() []byte {
		in := New(Config{Seed: 42, FlipProb: 0.5})
		c, s := pipePair(t, in)
		msg := bytes.Repeat([]byte{0x00}, 512)
		done := make(chan []byte, 1)
		go func() {
			got, _ := io.ReadAll(s)
			done <- got
		}()
		// One write per iteration so the rng consumption order is
		// fixed regardless of scheduling.
		for i := 0; i < 4; i++ {
			if _, err := c.Write(msg[i*128 : (i+1)*128]); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
		select {
		case got := <-done:
			return got
		case <-time.After(5 * time.Second):
			t.Fatal("timeout")
			return nil
		}
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
}
