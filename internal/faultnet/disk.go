package faultnet

import (
	"errors"
	"io"
	"math/rand"
	"sync"
)

// ErrDiskCrashed is returned by every operation on a Disk after Crash.
var ErrDiskCrashed = errors.New("faultnet: disk crashed")

// ErrInjectedWriteFault is the error returned by a WriteAt the injector
// chose to fail. The write is wholly discarded, as if the device rejected
// it before touching media.
var ErrInjectedWriteFault = errors.New("faultnet: injected write fault")

// DiskConfig sets the disk fault behaviour.
type DiskConfig struct {
	// Seed makes the crash/tear/fault schedule reproducible.
	Seed int64
	// WriteErrProb is the probability that a WriteAt fails outright with
	// ErrInjectedWriteFault (the data never reaches the buffer).
	WriteErrProb float64
	// TearOnCrash makes Crash persist a random prefix of the first
	// discarded write — a torn record, as a real power loss produces
	// mid-sector.
	TearOnCrash bool
	// FlipOnTear additionally flips one random bit inside the torn
	// fragment, modelling a corrupted partial sector.
	FlipOnTear bool
}

// backingFile is the part of an *os.File the Disk needs.
type backingFile interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(int64) error
	Close() error
}

// Disk simulates a crash-prone disk around a backing file. Writes are
// buffered in memory and reach the backing file only on Sync, so a Crash
// can honestly model power loss: everything synced survives, a seeded
// random prefix of the unsynced writes survives, the next write may be
// torn mid-buffer, and the rest vanish. Reads merge the buffered overlay
// so the writer observes its own unsynced data, exactly like the OS page
// cache. Safe for concurrent use.
type Disk struct {
	mu      sync.Mutex
	f       backingFile
	size    int64 // logical size including unsynced extents
	ops     []diskOp
	rng     *rand.Rand
	cfg     DiskConfig
	crashed bool

	// Faults counts injected write failures, for assertions.
	faults int
}

type diskOp struct {
	off  int64
	data []byte
}

// NewDisk wraps f, whose current size must be baseSize (pass the result of
// Stat/Seek; the store layer uses Size before any write).
func NewDisk(f backingFile, baseSize int64, cfg DiskConfig) *Disk {
	return &Disk{f: f, size: baseSize, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// WriteAt buffers the write; it reaches the backing file on the next Sync.
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrDiskCrashed
	}
	if d.cfg.WriteErrProb > 0 && d.rng.Float64() < d.cfg.WriteErrProb {
		d.faults++
		return 0, ErrInjectedWriteFault
	}
	d.ops = append(d.ops, diskOp{off: off, data: append([]byte(nil), p...)})
	if end := off + int64(len(p)); end > d.size {
		d.size = end
	}
	return len(p), nil
}

// ReadAt reads through the overlay: backing file content patched with the
// unsynced writes, newest last (matching page-cache visibility).
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrDiskCrashed
	}
	if off >= d.size {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > d.size-off {
		n = int(d.size - off)
	}
	// Base content (the backing file may be shorter than the overlay).
	if bn, err := d.f.ReadAt(p[:n], off); err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return bn, err
	}
	for _, op := range d.ops {
		lo, hi := op.off, op.off+int64(len(op.data))
		if hi <= off || lo >= off+int64(n) {
			continue
		}
		from, to := lo, hi
		if from < off {
			from = off
		}
		if to > off+int64(n) {
			to = off + int64(n)
		}
		copy(p[from-off:to-off], op.data[from-lo:to-lo])
	}
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// Sync flushes every buffered write to the backing file and syncs it; after
// Sync returns, those writes survive any later Crash.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrDiskCrashed
	}
	for _, op := range d.ops {
		if _, err := d.f.WriteAt(op.data, op.off); err != nil {
			return err
		}
	}
	d.ops = d.ops[:0]
	return d.f.Sync()
}

// Size returns the logical size (synced plus unsynced extents).
func (d *Disk) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrDiskCrashed
	}
	return d.size, nil
}

// Truncate shortens the logical file. Supported only with no unsynced
// writes (the store truncates once, during rebuild, before writing).
func (d *Disk) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrDiskCrashed
	}
	if len(d.ops) > 0 {
		return errors.New("faultnet: truncate with unsynced writes unsupported")
	}
	if err := d.f.Truncate(n); err != nil {
		return err
	}
	d.size = n
	return nil
}

// Close flushes and closes the backing file (a clean shutdown). Use Crash
// to model power loss instead.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return nil
	}
	d.crashed = true // no further use either way
	for _, op := range d.ops {
		if _, err := d.f.WriteAt(op.data, op.off); err != nil {
			d.f.Close()
			return err
		}
	}
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// Faults returns the number of injected write failures so far.
func (d *Disk) Faults() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.faults
}

// Crash models power loss: a seeded random prefix of the unsynced writes
// is persisted whole, the next one may be persisted torn (and bit-flipped,
// per config), and the rest are discarded. The backing file is synced and
// closed; every later operation fails with ErrDiskCrashed. The caller
// reopens the path to model a process restart. Returns how many unsynced
// writes survived whole and whether a torn fragment was left behind.
func (d *Disk) Crash() (survived int, torn bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, false, ErrDiskCrashed
	}
	d.crashed = true
	keep := 0
	if len(d.ops) > 0 {
		keep = d.rng.Intn(len(d.ops) + 1)
	}
	for _, op := range d.ops[:keep] {
		if _, werr := d.f.WriteAt(op.data, op.off); werr != nil {
			err = werr
			break
		}
	}
	if err == nil && d.cfg.TearOnCrash && keep < len(d.ops) {
		op := d.ops[keep]
		if cut := d.rng.Intn(len(op.data) + 1); cut > 0 {
			frag := append([]byte(nil), op.data[:cut]...)
			if d.cfg.FlipOnTear {
				frag[d.rng.Intn(len(frag))] ^= 1 << d.rng.Intn(8)
			}
			if _, werr := d.f.WriteAt(frag, op.off); werr == nil {
				torn = true
			} else {
				err = werr
			}
		}
	}
	d.ops = nil
	if serr := d.f.Sync(); err == nil {
		err = serr
	}
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return keep, torn, err
}
