// Package faultnet wraps net.Conn with deterministic, seeded fault
// injection — partial writes, connection drops, added latency, and payload
// bit flips — so the reliability layer can be exercised end to end against
// a flaky link without real network hardware. All probabilistic decisions
// come from rand sources derived from a single seed, so a given seed
// replays the same fault schedule (modulo goroutine interleaving).
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedDrop is returned from Read/Write after the injector severed
// the connection.
var ErrInjectedDrop = errors.New("faultnet: injected connection drop")

// Config sets the fault rates. All probabilities are per I/O operation.
type Config struct {
	// Seed makes the fault schedule reproducible.
	Seed int64
	// FlipProb is the probability that a Write or Read has one random
	// bit flipped somewhere in its buffer.
	FlipProb float64
	// DropProb is the probability that a Write delivers only a random
	// prefix and then severs the connection.
	DropProb float64
	// PartialProb is the probability that a Write is torn into two
	// separate underlying writes with a scheduling gap between them.
	PartialProb float64
	// MaxDelay, when positive, sleeps a uniform random duration in
	// [0, MaxDelay) before each Write.
	MaxDelay time.Duration
}

// Stats counts the faults actually injected, so tests can assert the link
// really was flaky.
type Stats struct {
	Drops, Flips, Partials int
}

// Injector wraps connections with a shared fault schedule. One Injector
// can wrap every connection of a reconnecting client so fault state and
// statistics span reconnects.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	wr    *rand.Rand // write-path decisions
	rd    *rand.Rand // read-path decisions, separate to cut cross-goroutine coupling
	stats Stats
}

// New builds an Injector for the given config.
func New(cfg Config) *Injector {
	return &Injector{
		cfg: cfg,
		wr:  rand.New(rand.NewSource(cfg.Seed)),
		rd:  rand.New(rand.NewSource(cfg.Seed ^ 0x5e3779b97f4a7c15)),
	}
}

// Wrap returns c with faults injected on both directions.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	return &conn{Conn: c, in: in}
}

// Stats returns the faults injected so far across all wrapped conns.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

type conn struct {
	net.Conn
	in *Injector

	mu      sync.Mutex
	dropped bool
}

// writePlan is decided under the injector lock, executed outside it.
type writePlan struct {
	delay   time.Duration
	flipAt  int // byte index to flip, -1 for none
	flipBit byte
	dropAt  int // deliver this prefix then sever, -1 for none
	tearAt  int // split the write here, -1 for none
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dropped
	c.mu.Unlock()
	if dead {
		return 0, ErrInjectedDrop
	}
	in := c.in
	in.mu.Lock()
	plan := writePlan{flipAt: -1, dropAt: -1, tearAt: -1}
	if in.cfg.MaxDelay > 0 {
		plan.delay = time.Duration(in.wr.Int63n(int64(in.cfg.MaxDelay)))
	}
	if len(p) > 0 && in.wr.Float64() < in.cfg.FlipProb {
		plan.flipAt = in.wr.Intn(len(p))
		plan.flipBit = 1 << in.wr.Intn(8)
		in.stats.Flips++
	}
	if in.wr.Float64() < in.cfg.DropProb {
		plan.dropAt = in.wr.Intn(len(p) + 1)
		in.stats.Drops++
	} else if len(p) > 1 && in.wr.Float64() < in.cfg.PartialProb {
		plan.tearAt = 1 + in.wr.Intn(len(p)-1)
		in.stats.Partials++
	}
	in.mu.Unlock()

	if plan.delay > 0 {
		time.Sleep(plan.delay)
	}
	buf := p
	if plan.flipAt >= 0 {
		buf = append([]byte(nil), p...)
		buf[plan.flipAt] ^= plan.flipBit
	}
	if plan.dropAt >= 0 {
		n, _ := c.Conn.Write(buf[:plan.dropAt])
		c.sever()
		return n, ErrInjectedDrop
	}
	if plan.tearAt >= 0 {
		n1, err := c.Conn.Write(buf[:plan.tearAt])
		if err != nil {
			return n1, err
		}
		time.Sleep(time.Millisecond)
		n2, err := c.Conn.Write(buf[plan.tearAt:])
		return n1 + n2, err
	}
	return c.Conn.Write(buf)
}

func (c *conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n == 0 {
		return n, err
	}
	in := c.in
	in.mu.Lock()
	flipAt := -1
	var flipBit byte
	if in.rd.Float64() < in.cfg.FlipProb {
		flipAt = in.rd.Intn(n)
		flipBit = 1 << in.rd.Intn(8)
		in.stats.Flips++
	}
	in.mu.Unlock()
	if flipAt >= 0 {
		p[flipAt] ^= flipBit
	}
	return n, err
}

func (c *conn) Close() error {
	c.mu.Lock()
	c.dropped = true
	c.mu.Unlock()
	return c.Conn.Close()
}

func (c *conn) sever() {
	c.mu.Lock()
	already := c.dropped
	c.dropped = true
	c.mu.Unlock()
	if !already {
		c.Conn.Close()
	}
}
