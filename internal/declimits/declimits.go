// Package declimits bounds the resources a decoder may spend on one
// untrusted stream. Every DBGC decoder sizes work from header-declared
// counts; a hostile or corrupt header can declare counts that are
// syntactically valid yet describe gigabytes of output (a decompression
// bomb) or an entropy stream that keeps yielding near-zero-cost symbols.
// A Budget is created from caller-chosen Limits, shared by every section
// of a frame (including sections decoding concurrently), and charged as
// points, tree nodes, and bytes materialize; the first charge that cannot
// be covered stops the decode with ErrLimit.
package declimits

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// ErrLimit reports a decode that exceeded its resource budget. It is
// distinct from the per-package ErrCorrupt sentinels: the stream may even
// be well-formed, but decoding it costs more than the caller allows.
var ErrLimit = errors.New("declimits: decode resource limit exceeded")

// Limits bounds one frame decode. The zero value of every field means
// "unlimited", so a zero Limits reproduces the historical behaviour.
type Limits struct {
	// MaxPoints caps the total number of decoded points across all
	// sections of the frame.
	MaxPoints int64
	// MaxNodes caps the total number of entropy-decoded symbols and tree
	// nodes. This is the defence against adaptive-model streams whose
	// per-symbol cost collapses toward zero bits: such a stream is tiny
	// on the wire but can otherwise expand without bound.
	MaxNodes int64
	// MaxSectionBytes caps the byte length any single compressed section
	// may declare.
	MaxSectionBytes int64
	// MemBudget caps the total bytes of decoded output the frame may
	// materialize (points, occupancy buffers, count tables).
	MemBudget int64
	// MaxShards caps the shard count any single sharded entropy stream
	// (container v3) may declare. Each declared shard costs a length
	// varint, a slice header, and eventually a goroutine, so the cap keeps
	// a corrupt header from amplifying into thousands of decode tasks.
	MaxShards int64
	// MaxContexts caps the context count any single context-modeled
	// entropy stream (container v5) may declare. Every context backs an
	// adaptive frequency table (~1 KiB for the 256-symbol alphabet), so
	// the cap bounds the table memory a corrupt header can demand before
	// a single symbol decodes.
	MaxContexts int64
	// Ctx, when non-nil, is polled during decoding; its deadline or
	// cancellation aborts the decode with the context's error.
	Ctx context.Context
}

// DefaultLimits returns production limits generous enough for any real
// LiDAR frame (a 64-beam sensor yields ~130k points/frame) while bounding
// hostile input to tens of megabytes of decoder memory.
func DefaultLimits() Limits {
	return Limits{
		MaxPoints:       8 << 20,   // 8M points/frame
		MaxNodes:        64 << 20,  // entropy symbols + tree nodes
		MaxSectionBytes: 256 << 20, // one compressed section
		MemBudget:       1 << 30,   // 1 GiB of decoded output
		MaxShards:       256,       // shards per entropy stream
		MaxContexts:     4096,      // contexts per context-modeled stream
	}
}

// Budget is the running remainder of a Limits. It is safe for concurrent
// use: parallel decoding charges section costs from several goroutines.
// A nil *Budget is valid everywhere and means "unlimited".
type Budget struct {
	lim    Limits
	points atomic.Int64
	nodes  atomic.Int64
	mem    atomic.Int64
	// ticks counts charges so the context is polled periodically rather
	// than on every node.
	ticks atomic.Int64
}

// pointBytes and nodeBytes are the memory charged per decoded point
// (geom.Point: three float64) and per tree node (BFS cell structures).
const (
	pointBytes = 24
	nodeBytes  = 16
)

// ctxPollInterval is how many charges pass between context polls.
const ctxPollInterval = 4096

// New returns a Budget with the full Limits available. Unset (zero or
// negative) fields become unlimited.
func New(l Limits) *Budget {
	b := &Budget{lim: l}
	b.points.Store(orUnlimited(l.MaxPoints))
	b.nodes.Store(orUnlimited(l.MaxNodes))
	b.mem.Store(orUnlimited(l.MemBudget))
	return b
}

func orUnlimited(v int64) int64 {
	if v <= 0 {
		return math.MaxInt64
	}
	return v
}

// Points charges n decoded points (and their memory) against the budget.
func (b *Budget) Points(n int64) error {
	if b == nil {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("%w: negative point charge", ErrLimit)
	}
	if b.points.Add(-n) < 0 {
		return fmt.Errorf("%w: more than %d decoded points", ErrLimit, b.lim.MaxPoints)
	}
	return b.Mem(n * pointBytes)
}

// Nodes charges n entropy symbols / tree nodes (and their memory).
func (b *Budget) Nodes(n int64) error {
	if b == nil {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("%w: negative node charge", ErrLimit)
	}
	if b.nodes.Add(-n) < 0 {
		return fmt.Errorf("%w: more than %d decode nodes", ErrLimit, b.lim.MaxNodes)
	}
	return b.Mem(n * nodeBytes)
}

// Mem charges n bytes of decoded output memory.
func (b *Budget) Mem(n int64) error {
	if b == nil {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("%w: negative memory charge", ErrLimit)
	}
	if b.mem.Add(-n) < 0 {
		return fmt.Errorf("%w: more than %d bytes of decoded output", ErrLimit, b.lim.MemBudget)
	}
	return b.poll()
}

// Shards validates one sharded stream's declared shard count. Unlike the
// charge methods it is not cumulative: the shards of different streams
// decode sequentially per stream, so only the per-stream fan-out needs
// bounding.
func (b *Budget) Shards(n int64) error {
	if b == nil {
		return nil
	}
	if b.lim.MaxShards > 0 && n > b.lim.MaxShards {
		return fmt.Errorf("%w: stream declares %d shards, cap %d", ErrLimit, n, b.lim.MaxShards)
	}
	return b.Check()
}

// Contexts validates one context-modeled stream's declared context count
// and charges the frequency-table memory the bank will allocate
// (n contexts of modelBytes each, shared per shard by the pooled banks).
// Like Shards it is per-stream, not cumulative across streams — but the
// table bytes do charge the cumulative memory budget.
func (b *Budget) Contexts(n, modelBytes int64) error {
	if b == nil {
		return nil
	}
	if n < 0 || modelBytes < 0 {
		return fmt.Errorf("%w: negative context charge", ErrLimit)
	}
	if b.lim.MaxContexts > 0 && n > b.lim.MaxContexts {
		return fmt.Errorf("%w: stream declares %d contexts, cap %d", ErrLimit, n, b.lim.MaxContexts)
	}
	return b.Mem(n * modelBytes)
}

// Section validates one compressed section's declared byte length.
func (b *Budget) Section(n int64) error {
	if b == nil {
		return nil
	}
	if b.lim.MaxSectionBytes > 0 && n > b.lim.MaxSectionBytes {
		return fmt.Errorf("%w: section of %d bytes exceeds cap %d", ErrLimit, n, b.lim.MaxSectionBytes)
	}
	return b.Check()
}

// Check polls the context (if any) unconditionally. Decoders call it at
// section boundaries; the charge methods call it every ctxPollInterval
// charges.
func (b *Budget) Check() error {
	if b == nil || b.lim.Ctx == nil {
		return nil
	}
	if err := b.lim.Ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrLimit, err)
	}
	return nil
}

func (b *Budget) poll() error {
	if b.lim.Ctx == nil {
		return nil
	}
	if b.ticks.Add(1)%ctxPollInterval != 0 {
		return nil
	}
	return b.Check()
}

// CapPrealloc bounds a header-declared element count before it is used as
// an allocation capacity, so a corrupt header cannot force a huge up-front
// allocation. Decoding still appends past the clamp when the stream really
// carries that many elements (each append having been charged).
func CapPrealloc(n uint64) int {
	const maxPrealloc = 1 << 22
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

// Recover converts a panic at a codec boundary into an error wrapping
// sentinel, so a decoder bug on hostile bytes costs one failed frame
// instead of the process:
//
//	func Decode(data []byte) (pc PointCloud, err error) {
//		defer declimits.Recover(&err, ErrCorrupt)
//		...
func Recover(errp *error, sentinel error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("%w: decoder panic: %v", sentinel, r)
	}
}
