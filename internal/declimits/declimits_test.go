package declimits

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Points(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := b.Nodes(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := b.Mem(1 << 60); err != nil {
		t.Fatal(err)
	}
	if err := b.Section(1 << 60); err != nil {
		t.Fatal(err)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLimitsAreUnlimited(t *testing.T) {
	b := New(Limits{})
	if err := b.Points(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := b.Nodes(1 << 40); err != nil {
		t.Fatal(err)
	}
}

func TestChargesExhaust(t *testing.T) {
	b := New(Limits{MaxPoints: 10})
	if err := b.Points(7); err != nil {
		t.Fatal(err)
	}
	if err := b.Points(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Points(1); !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
}

func TestPointsChargeMemory(t *testing.T) {
	// 10 points fit the point cap but not the memory cap.
	b := New(Limits{MaxPoints: 10, MemBudget: 5 * pointBytes})
	if err := b.Points(10); !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit from memory budget, got %v", err)
	}
}

func TestSectionCap(t *testing.T) {
	b := New(Limits{MaxSectionBytes: 100})
	if err := b.Section(100); err != nil {
		t.Fatal(err)
	}
	if err := b.Section(101); !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit, got %v", err)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(Limits{Ctx: ctx})
	if err := b.Check(); !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit from cancelled context, got %v", err)
	}
	// Periodic polling inside the charge path notices too.
	var err error
	for i := 0; i < 2*ctxPollInterval && err == nil; i++ {
		err = b.Nodes(1)
	}
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit from polled context, got %v", err)
	}
}

func TestConcurrentCharges(t *testing.T) {
	const workers = 8
	const perWorker = 1000
	b := New(Limits{MaxNodes: workers*perWorker + 1, MemBudget: 1 << 40})
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := b.Nodes(1); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := b.Nodes(2); !errors.Is(err, ErrLimit) {
		t.Fatalf("want ErrLimit after concurrent exhaustion, got %v", err)
	}
}

func TestCapPrealloc(t *testing.T) {
	if got := CapPrealloc(100); got != 100 {
		t.Fatalf("CapPrealloc(100) = %d", got)
	}
	if got := CapPrealloc(1 << 60); got != 1<<22 {
		t.Fatalf("CapPrealloc(1<<60) = %d", got)
	}
}

func TestRecover(t *testing.T) {
	sentinel := errors.New("pkg: corrupt")
	f := func() (err error) {
		defer Recover(&err, sentinel)
		panic("index out of range")
	}
	if err := f(); !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel, got %v", err)
	}
}
