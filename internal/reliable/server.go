package reliable

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dbgc/internal/framepipe"
	"dbgc/internal/netproto"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("reliable: server closed")

// ErrBadFrame marks a handler failure caused by the frame's content (it
// arrived intact but cannot be decoded). Sessions quarantine such frames;
// any other handler error (e.g. storage trouble) is nacked without
// quarantine because retrying may genuinely succeed.
var ErrBadFrame = errors.New("reliable: bad frame")

// errStalled ends a session whose ingest queue stayed full past the stall
// deadline without draining a single frame — a slow or wedged consumer
// should reconnect and back off rather than pin a session slot.
var errStalled = errors.New("reliable: session stalled under backpressure")

// errCloseSession signals an intentional, clean session end (admission
// refusal, shed tenant fully drained). Run maps it to a nil return.
var errCloseSession = errors.New("reliable: close session")

// PartialFrameError is returned (possibly wrapped) by a handler that
// salvaged part of a frame: some sections decoded and were stored, the
// rest are damaged at the source. The session quarantines the damaged
// bytes and then ACKS the frame — the wire checksum already passed, so
// the corruption predates transmission and a retransmit would deliver the
// same bytes again.
type PartialFrameError struct {
	// Reason describes the damage (e.g. "dense: crc mismatch").
	Reason string
	// Damaged holds the unrecoverable section bytes for quarantine; may
	// be nil when only the report matters.
	Damaged []byte
}

func (e *PartialFrameError) Error() string {
	return "reliable: partial frame: " + e.Reason
}

// ServerConfig configures Sessions. Handle is required; everything else
// defaults.
type ServerConfig struct {
	// Handle processes one data frame (KindCompressed or KindRaw) for a
	// tenant. A nil return acks the frame; an error nacks it. Wrap
	// content errors in ErrBadFrame to also quarantine the payload. Must
	// be safe for concurrent use across sessions and idempotent per
	// (tenant, sequence number) — retransmits can redeliver.
	Handle func(tenant string, m netproto.Message) error
	// Query, when set, answers KindQuery frames against a tenant's data;
	// the returned payload travels back as KindQueryResult. A nil Query
	// nacks queries.
	Query func(tenant string, q netproto.Query) ([]byte, error)
	// Quarantine, when set, receives frames that failed validation (wire
	// checksum mismatch, ErrBadFrame, or a handler panic) before they
	// are nacked. Must be safe for concurrent use.
	Quarantine func(tenant string, m netproto.Message, reason string)
	// ReplHello, when set, answers KindReplHello exchanges from a
	// replication peer: it receives the hello payload and returns the
	// KindReplAck response payload, or an error to refuse (stale epoch).
	// A nil ReplHello nacks all replication traffic.
	ReplHello func(payload []byte) ([]byte, error)
	// ReplRecord, when set, applies one KindReplRecord frame (the tenant
	// is encoded inside the payload, not taken from the session). A nil
	// return acks the record with KindReplAck; an error nacks it so the
	// primary retransmits. Replication sessions bypass tenant admission
	// and budgets — there is one trusted peer — but still flow through
	// the bounded session queue, so busy nacks backpressure the primary.
	ReplRecord func(m netproto.Message) error
	// NotReady, when set and returning refuse=true, turns away client
	// ingest (hellos, data frames, queries) with a busy nack carrying
	// retryAfter — the mechanism a follower uses to bounce producers to
	// the primary until it is promoted. Replication traffic is exempt.
	// Called per frame; must be cheap and safe for concurrent use.
	NotReady func() (reason string, retryAfter time.Duration, refuse bool)
	// ReadTimeout is the maximum idle time between frames before the
	// session is considered abandoned (default 60s).
	ReadTimeout time.Duration
	// WriteTimeout is the deadline for writing a response (default 10s).
	WriteTimeout time.Duration
	// NoAck suppresses ack/nack responses for wire compatibility with
	// fire-and-forget clients; fault isolation still applies. With no
	// way to signal backpressure, a full ingest queue blocks the reader
	// instead (TCP flow control becomes the backpressure).
	NoAck bool

	// Admission control. Zero values mean unlimited.
	//
	// MaxSessions caps concurrent connections server-wide; excess
	// connections are refused at accept with a busy nack.
	MaxSessions int
	// MaxTenants caps concurrently active tenants.
	MaxTenants int
	// MaxSessionsPerTenant caps concurrent sessions per tenant.
	MaxSessionsPerTenant int

	// Backpressure. QueueDepth bounds each session's ingest queue
	// (default 16); TenantBudget bounds a tenant's in-flight frames
	// across all its sessions (default 64). A frame arriving past either
	// bound is refused with a busy nack carrying RetryAfter (default
	// 200ms) as the retry hint.
	QueueDepth   int
	TenantBudget int
	RetryAfter   time.Duration
	// StallTimeout, when positive, ends a session whose queue has been
	// refusing frames for this long without draining any — the client
	// reconnects and backs off instead of hammering a wedged session.
	StallTimeout time.Duration

	// Load shedding. When total in-flight frames exceed ShedHighWater,
	// the newest tenants are shed (drain, then refuse) until load falls
	// below ShedLowWater (default HighWater/2). Zero disables shedding.
	ShedHighWater int
	ShedLowWater  int

	// Logf, when set, receives per-session diagnostics.
	Logf func(format string, args ...any)
}

func (cfg *ServerConfig) fillDefaults() {
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.TenantBudget <= 0 {
		cfg.TenantBudget = 64
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 200 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// Server accepts connections and runs a Session per connection.
type Server struct {
	cfg        ServerConfig
	tenants    *registry
	metrics    Metrics
	mu         sync.Mutex
	ln         net.Listener
	conns      map[net.Conn]struct{}
	wg         sync.WaitGroup
	inShutdown atomic.Bool
}

// NewServer builds a server around the given config.
func NewServer(cfg ServerConfig) *Server {
	cfg.fillDefaults()
	return &Server{cfg: cfg, tenants: newRegistry(), conns: make(map[net.Conn]struct{})}
}

// Metrics exposes the server's live counters (for /metrics endpoints and
// load harnesses).
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Serve accepts connections on ln until Shutdown closes it, running each
// connection's Session on its own goroutine. A session failure never
// affects other sessions. Connections over MaxSessions are turned away
// with a busy nack before a session ever starts.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() || errors.Is(err, net.ErrClosed) {
				return ErrServerClosed
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				continue
			}
			return err
		}
		if s.cfg.MaxSessions > 0 && s.connCount() >= s.cfg.MaxSessions {
			s.metrics.SessionsRejected.Add(1)
			if !s.begin(conn, false) {
				conn.Close()
				return ErrServerClosed
			}
			go func() {
				defer s.wg.Done()
				s.refuse(conn)
			}()
			continue
		}
		if !s.begin(conn, true) {
			conn.Close()
			return ErrServerClosed
		}
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			sess := newSession(conn, s.cfg, s)
			if err := sess.Run(); err != nil {
				s.cfg.Logf("reliable: client %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// begin registers one connection goroutine. The wg.Add is ordered against
// Shutdown's wg.Wait through s.mu (Add must not race a Wait that observed
// a zero counter), so it returns false once shutdown has begun.
func (s *Server) begin(conn net.Conn, track bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inShutdown.Load() {
		return false
	}
	if track {
		s.conns[conn] = struct{}{}
	}
	s.wg.Add(1)
	return true
}

// refuse turns away a connection over the session limit: a busy nack on
// the hello sequence number tells a reliable client when to come back.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	if s.cfg.NoAck {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_ = netproto.Write(conn, netproto.NackBusy(netproto.HelloSeq, 2*s.cfg.RetryAfter, "server session limit"))
}

// Shutdown stops accepting connections and waits for active sessions to
// drain. If ctx expires first, remaining connections are closed forcibly
// and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.inShutdown.Store(true) // under s.mu: orders against begin's wg.Add
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

func (s *Server) connCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Session serves one connection: reads frames, queues them on the bounded
// per-tenant ingest pipeline, and responds with acks/nacks from a worker
// that drains the queue in order. Frame-level failures (checksum, decode,
// handler panic) are isolated — nacked and quarantined — while
// framing-level failures (corrupt header, torn stream) end the session so
// the client can reconnect. Overload (queue or tenant budget full) is
// answered with busy nacks carrying a retry-after hint.
type Session struct {
	conn net.Conn
	cfg  ServerConfig
	srv  *Server // nil for standalone sessions

	tenant *tenant // nil until bound (and always nil when srv is nil)
	bound  string  // tenant name after binding, "" before

	pipe       *framepipe.Pool[ingestJob, ingestDone]
	notify     chan struct{}
	workerDone chan struct{}
	writeMu    sync.Mutex

	lastDrain atomic.Int64 // unix nanos of the last queue drain (stall detection)
}

// ingestJob carries one data frame plus its arrival time through the
// session pipeline.
type ingestJob struct {
	m  netproto.Message
	at time.Time
}

// ingestDone is the pipeline output: the frame and its handler verdict.
type ingestDone struct {
	m   netproto.Message
	at  time.Time
	err error
}

// NewSession wraps an accepted connection in a standalone session (no
// admission control or tenant budgets — those need a Server).
func NewSession(conn net.Conn, cfg ServerConfig) *Session {
	cfg.fillDefaults()
	return newSession(conn, cfg, nil)
}

func newSession(conn net.Conn, cfg ServerConfig, srv *Server) *Session {
	return &Session{conn: conn, cfg: cfg, srv: srv}
}

// Run serves the connection until the client says goodbye, disconnects, or
// the stream framing is lost. A panic anywhere in the session (including
// the dispatch path) is caught and reported as an error rather than
// crashing the server.
func (s *Session) Run() (err error) {
	if s.srv != nil {
		s.srv.metrics.SessionsOpened.Add(1)
		s.srv.metrics.ActiveSessions.Add(1)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("reliable: session panic: %v", r)
		}
		// On an error exit (torn framing, stall, panic) close the
		// connection immediately so the peer stops waiting on a dead
		// session; the drain below may be pinned by a wedged handler.
		if err != nil {
			s.conn.Close()
		}
		// Drain the pipeline before the clean-exit close: frames
		// accepted before a Bye still get their acks, bounded by
		// WriteTimeout if the peer is already gone.
		if s.notify != nil {
			close(s.notify)
			<-s.workerDone
			s.pipe.Close()
		}
		s.conn.Close()
		if s.srv != nil {
			s.srv.unbind(s.tenant)
			s.srv.metrics.SessionsClosed.Add(1)
			s.srv.metrics.ActiveSessions.Add(-1)
		}
	}()
	s.lastDrain.Store(time.Now().UnixNano())
	for {
		if s.cfg.ReadTimeout > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		m, rerr := netproto.Read(s.conn)
		switch {
		case rerr == nil:
		case errors.Is(rerr, io.EOF), errors.Is(rerr, net.ErrClosed):
			return nil // client hung up (or drain closed us): normal end
		case errors.Is(rerr, netproto.ErrChecksum):
			// Payload corrupt but framing intact: isolate the frame
			// and keep the stream.
			s.quarantine(m, "payload checksum mismatch")
			if err := s.respond(netproto.Nack(m.Seq, "checksum")); err != nil {
				return err
			}
			continue
		default:
			// Header corruption, torn read, version mismatch: the
			// stream position is gone; force a reconnect.
			return fmt.Errorf("reliable: reading frame: %w", rerr)
		}
		switch m.Kind {
		case netproto.KindBye:
			return nil
		case netproto.KindHello:
			if err := s.hello(m); err != nil {
				if errors.Is(err, errCloseSession) {
					return nil
				}
				return err
			}
		case netproto.KindCompressed, netproto.KindRaw:
			if err := s.ingest(m); err != nil {
				if errors.Is(err, errCloseSession) {
					return nil
				}
				return err
			}
		case netproto.KindReplHello:
			if err := s.replHello(m); err != nil {
				return err
			}
		case netproto.KindReplRecord:
			if err := s.ingestRepl(m); err != nil {
				return err
			}
		case netproto.KindQuery:
			if err := s.answer(m); err != nil {
				return err
			}
		default:
			// Unknown kind from a newer client: reject the frame,
			// keep the session.
			if err := s.respond(netproto.Nack(m.Seq, "unknown kind")); err != nil {
				return err
			}
		}
	}
}

// replPeer is the internal binding name of a replication session. It is
// not a valid tenant name (leading dot), so it can never collide with a
// client tenant in logs or quarantine labels.
const replPeer = ".replica"

// notReady applies the NotReady gate to one client frame: when the node
// refuses client traffic (an unpromoted follower), the frame is answered
// with a busy nack carrying the configured retry hint and the session is
// closed, so a reliable client re-dials — and, in multi-address mode,
// rotates toward the primary.
func (s *Session) notReady(seq uint64) (refused bool, err error) {
	if s.cfg.NotReady == nil {
		return false, nil
	}
	reason, retryAfter, refuse := s.cfg.NotReady()
	if !refuse {
		return false, nil
	}
	if retryAfter <= 0 {
		retryAfter = s.cfg.RetryAfter
	}
	if s.srv != nil {
		s.srv.metrics.BusyNacked.Add(1)
	}
	if werr := s.respond(netproto.NackBusy(seq, retryAfter, reason)); werr != nil {
		return true, werr
	}
	return true, errCloseSession
}

// replHello answers a replication handshake. The handler sees the raw
// payload (epoch, mode, tenant — see internal/replica) and returns the
// response payload carried back on a KindReplAck with the same sequence
// number; refusals (stale epoch, replication disabled) travel as nacks.
func (s *Session) replHello(m netproto.Message) error {
	if s.cfg.ReplHello == nil {
		return s.respond(netproto.Nack(m.Seq, "replication unsupported"))
	}
	resp, err := s.callReplHello(m.Payload)
	if err != nil {
		return s.respond(netproto.Nack(m.Seq, clip(err.Error())))
	}
	return s.write(netproto.Message{Kind: netproto.KindReplAck, Seq: m.Seq, Payload: resp})
}

func (s *Session) callReplHello(payload []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("repl hello panic: %v", r)
		}
	}()
	return s.cfg.ReplHello(payload)
}

// bindRepl lazily sets up the ingest pipeline for a replication session.
// Unlike bind it skips tenant admission and budgets — the peer is a single
// trusted primary, and its backpressure is the bounded session queue.
func (s *Session) bindRepl() {
	if s.bound != "" {
		return
	}
	s.bound = replPeer
	s.pipe = framepipe.New(1, s.cfg.QueueDepth, s.process)
	s.notify = make(chan struct{}, s.cfg.QueueDepth)
	s.workerDone = make(chan struct{})
	go s.respondLoop()
}

// ingestRepl admits one replication record into the pipeline. Records flow
// through the same bounded queue as client frames (full queue → busy nack,
// so the primary's sender backs off), but bypass tenant budgets and the
// NotReady gate — replication is exactly the traffic a follower exists to
// accept.
func (s *Session) ingestRepl(m netproto.Message) error {
	if s.cfg.ReplRecord == nil {
		return s.respond(netproto.Nack(m.Seq, "replication unsupported"))
	}
	s.bindRepl()
	if s.bound != replPeer {
		// A tenant-bound client smuggling repl frames: reject, keep session.
		return s.respond(netproto.Nack(m.Seq, "session bound to a tenant"))
	}
	if s.srv != nil {
		s.srv.metrics.FramesIn.Add(1)
		s.srv.metrics.ReplRecords.Add(1)
		s.srv.metrics.BytesIn.Add(uint64(len(m.Payload)))
	}
	if s.srv != nil {
		s.srv.noteInflight(1)
	}
	if !s.pipe.TrySubmit(ingestJob{m: m, at: time.Now()}) {
		if s.srv != nil {
			s.srv.noteInflight(-1)
		}
		return s.overloaded(m.Seq, "replica queue full")
	}
	s.notify <- struct{}{}
	return nil
}

// hello binds the session to the named tenant. Rebinding after data has
// flowed is refused (stores are already keyed).
func (s *Session) hello(m netproto.Message) error {
	if refused, err := s.notReady(netproto.HelloSeq); refused {
		return err
	}
	name := string(m.Payload)
	if s.bound != "" {
		if name == s.bound {
			return s.respond(netproto.Ack(netproto.HelloSeq)) // idempotent re-hello
		}
		return s.respond(netproto.Nack(netproto.HelloSeq, "already bound to another tenant"))
	}
	if err := s.bind(name); err != nil {
		var adm *admissionError
		if errors.As(err, &adm) {
			s.cfg.Logf("reliable: refusing %s (%s): %s", s.conn.RemoteAddr(), name, adm.reason)
			if rerr := s.respond(netproto.NackBusy(netproto.HelloSeq, adm.retryAfter, adm.reason)); rerr != nil {
				return rerr
			}
			return errCloseSession // polite refusal
		}
		if rerr := s.respond(netproto.Nack(netproto.HelloSeq, clip(err.Error()))); rerr != nil {
			return rerr
		}
		return errCloseSession // misconfigured client: no point serving on
	}
	return s.respond(netproto.Ack(netproto.HelloSeq))
}

// bind admits the session under the given tenant name and starts the
// ingest pipeline. Standalone sessions (no server) bind trivially.
func (s *Session) bind(name string) error {
	if s.srv != nil {
		t, err := s.srv.admit(name)
		if err != nil {
			return err
		}
		s.tenant = t
	}
	s.bound = name
	s.pipe = framepipe.New(1, s.cfg.QueueDepth, s.process)
	s.notify = make(chan struct{}, s.cfg.QueueDepth)
	s.workerDone = make(chan struct{})
	go s.respondLoop()
	return nil
}

// ensureBound lazily binds hello-less connections to the default tenant.
func (s *Session) ensureBound(seq uint64) error {
	if s.bound != "" {
		return nil
	}
	if err := s.bind(DefaultTenant); err != nil {
		var adm *admissionError
		if errors.As(err, &adm) {
			if rerr := s.respond(netproto.NackBusy(seq, adm.retryAfter, adm.reason)); rerr != nil {
				return rerr
			}
			return fmt.Errorf("reliable: default-tenant admission: %s", adm.reason)
		}
		return err
	}
	return nil
}

// ingest admits one data frame into the bounded pipeline, or refuses it
// with a busy nack when the session queue or the tenant budget is full.
func (s *Session) ingest(m netproto.Message) error {
	if refused, err := s.notReady(m.Seq); refused {
		return err
	}
	if err := s.ensureBound(m.Seq); err != nil {
		return err
	}
	if s.srv != nil {
		s.srv.metrics.FramesIn.Add(1)
		s.srv.metrics.BytesIn.Add(uint64(len(m.Payload)))
	}
	// A shedding tenant drains: queued frames finish and ack, new ones
	// are refused, and once the queue is empty the session closes so the
	// client re-dials into admission control.
	if s.tenant != nil && s.tenant.isShedding() {
		if err := s.busyNack(m.Seq, "tenant shedding"); err != nil {
			return err
		}
		if s.pipe.InFlight() == 0 {
			s.cfg.Logf("reliable: session %s (%s) shed", s.conn.RemoteAddr(), s.bound)
			return errCloseSession // drained: close now
		}
		return nil // still draining queued frames
	}
	if s.tenant != nil && !s.tenant.tryAcquire(s.cfg.TenantBudget) {
		return s.overloaded(m.Seq, "tenant queue full")
	}
	if s.srv != nil {
		s.srv.noteInflight(1)
	}
	if s.cfg.NoAck {
		// No wire backpressure possible: block the reader, letting TCP
		// flow control push back instead.
		s.pipe.Submit(ingestJob{m: m, at: time.Now()})
		s.notify <- struct{}{}
		return nil
	}
	if !s.pipe.TrySubmit(ingestJob{m: m, at: time.Now()}) {
		if s.tenant != nil {
			s.tenant.release()
		}
		if s.srv != nil {
			s.srv.noteInflight(-1)
		}
		return s.overloaded(m.Seq, "session queue full")
	}
	s.notify <- struct{}{}
	return nil
}

// overloaded refuses one frame with a busy nack and enforces the stall
// deadline: a session that keeps arriving at a full queue without the
// worker draining anything is cut loose.
func (s *Session) overloaded(seq uint64, reason string) error {
	if err := s.busyNack(seq, reason); err != nil {
		return err
	}
	if s.cfg.StallTimeout > 0 {
		last := time.Unix(0, s.lastDrain.Load())
		if time.Since(last) > s.cfg.StallTimeout {
			if s.srv != nil {
				s.srv.metrics.SessionsStalled.Add(1)
			}
			return errStalled
		}
	}
	return nil
}

func (s *Session) busyNack(seq uint64, reason string) error {
	if s.srv != nil {
		s.srv.metrics.BusyNacked.Add(1)
	}
	return s.respond(netproto.NackBusy(seq, s.cfg.RetryAfter, reason))
}

// process is the pipeline function: it runs the handler (panic-isolated)
// off the reader goroutine.
func (s *Session) process(j ingestJob) (ingestDone, error) {
	return ingestDone{m: j.m, at: j.at, err: s.dispatch(j.m)}, nil
}

// respondLoop drains handler results in submission order and writes the
// ack/nack for each. One notify token is sent per submitted job, so the
// range loop drains every queued frame before exiting at session close.
func (s *Session) respondLoop() {
	defer close(s.workerDone)
	for range s.notify {
		r, _, ok := s.pipe.Next()
		if !ok {
			continue
		}
		s.finish(r)
	}
}

// finish answers one handled frame and releases its backpressure tokens.
func (s *Session) finish(r ingestDone) {
	defer func() {
		if p := recover(); p != nil {
			s.cfg.Logf("reliable: finish panic on frame %d: %v", r.m.Seq, p)
		}
		s.lastDrain.Store(time.Now().UnixNano())
		if s.tenant != nil {
			s.tenant.release()
		}
		if s.srv != nil {
			s.srv.noteInflight(-1)
			s.srv.metrics.ObserveLatency(time.Since(r.at))
		}
	}()
	herr := r.err
	if herr == nil {
		if s.srv != nil {
			s.srv.metrics.Acked.Add(1)
		}
		ack := netproto.Ack(r.m.Seq)
		if r.m.Kind == netproto.KindReplRecord {
			// The replication dialect acks with its own kind so the
			// primary's window logic can tell follower acks apart.
			ack.Kind = netproto.KindReplAck
		}
		if err := s.respond(ack); err != nil {
			s.conn.Close() // reader notices and ends the session
		}
		return
	}
	var pfe *PartialFrameError
	if errors.As(herr, &pfe) {
		// Partial salvage: quarantine only the damaged section bytes
		// and ack — the corruption is at the source, so retransmitting
		// cannot fix it.
		s.cfg.Logf("reliable: frame %d partially recovered: %s", r.m.Seq, pfe.Reason)
		s.quarantine(netproto.Message{Kind: r.m.Kind, Seq: r.m.Seq, Payload: pfe.Damaged},
			"partial: "+pfe.Reason)
		if s.srv != nil {
			s.srv.metrics.Acked.Add(1)
		}
		if err := s.respond(netproto.Ack(r.m.Seq)); err != nil {
			s.conn.Close()
		}
		return
	}
	s.cfg.Logf("reliable: frame %d rejected: %v", r.m.Seq, herr)
	if s.srv != nil {
		s.srv.metrics.Nacked.Add(1)
	}
	if err := s.respond(netproto.Nack(r.m.Seq, clip(herr.Error()))); err != nil {
		s.conn.Close()
	}
}

// dispatch runs the handler with its own panic isolation: a decoder blowing
// up on a hostile payload costs one nack, not the connection.
func (s *Session) dispatch(m netproto.Message) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: handler panic: %v", ErrBadFrame, r)
			s.quarantine(m, err.Error())
		}
	}()
	if m.Kind == netproto.KindReplRecord {
		if s.cfg.ReplRecord == nil {
			return errors.New("no repl handler")
		}
		return s.cfg.ReplRecord(m)
	}
	if s.cfg.Handle == nil {
		return errors.New("no handler")
	}
	err = s.cfg.Handle(s.tenantName(), m)
	if err != nil && errors.Is(err, ErrBadFrame) {
		s.quarantine(m, err.Error())
	}
	return err
}

// tenantName is the bound tenant, or the default for sessions that have
// not (yet) bound — checksum quarantines can fire before the first data
// frame binds the session.
func (s *Session) tenantName() string {
	if s.bound == "" {
		return DefaultTenant
	}
	return s.bound
}

func (s *Session) answer(m netproto.Message) error {
	if refused, err := s.notReady(m.Seq); refused {
		return err
	}
	if err := s.ensureBound(m.Seq); err != nil {
		return err
	}
	if s.cfg.Query == nil {
		return s.respond(netproto.Nack(m.Seq, "queries unsupported"))
	}
	q, err := netproto.DecodeQuery(m.Payload)
	if err != nil {
		return s.respond(netproto.Nack(m.Seq, clip(err.Error())))
	}
	payload, err := s.callQuery(q)
	if err != nil {
		s.cfg.Logf("reliable: query frame %d: %v", q.Seq, err)
		payload = nil // an empty result, like a miss
	}
	return s.write(netproto.Message{Kind: netproto.KindQueryResult, Seq: q.Seq, Payload: payload})
}

func (s *Session) callQuery(q netproto.Query) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("query panic: %v", r)
		}
	}()
	return s.cfg.Query(s.tenantName(), q)
}

func (s *Session) quarantine(m netproto.Message, reason string) {
	if s.srv != nil {
		s.srv.metrics.Quarantined.Add(1)
	}
	if s.cfg.Quarantine != nil {
		s.cfg.Quarantine(s.tenantName(), m, reason)
	}
}

// respond writes an ack/nack unless running in fire-and-forget mode.
func (s *Session) respond(m netproto.Message) error {
	if s.cfg.NoAck {
		return nil
	}
	return s.write(m)
}

// write serializes one frame to the connection; the mutex keeps reader-
// side responses (busy nacks, query results) from interleaving with the
// worker's acks mid-frame.
func (s *Session) write(m netproto.Message) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.cfg.WriteTimeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	return netproto.Write(s.conn, m)
}

// clip bounds nack reasons so a pathological error string cannot bloat the
// response frame.
func clip(reason string) string {
	const max = 200
	if len(reason) > max {
		return reason[:max]
	}
	return reason
}
