package reliable

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dbgc/internal/netproto"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("reliable: server closed")

// ErrBadFrame marks a handler failure caused by the frame's content (it
// arrived intact but cannot be decoded). Sessions quarantine such frames;
// any other handler error (e.g. storage trouble) is nacked without
// quarantine because retrying may genuinely succeed.
var ErrBadFrame = errors.New("reliable: bad frame")

// PartialFrameError is returned (possibly wrapped) by a handler that
// salvaged part of a frame: some sections decoded and were stored, the
// rest are damaged at the source. The session quarantines the damaged
// bytes and then ACKS the frame — the wire checksum already passed, so
// the corruption predates transmission and a retransmit would deliver the
// same bytes again.
type PartialFrameError struct {
	// Reason describes the damage (e.g. "dense: crc mismatch").
	Reason string
	// Damaged holds the unrecoverable section bytes for quarantine; may
	// be nil when only the report matters.
	Damaged []byte
}

func (e *PartialFrameError) Error() string {
	return "reliable: partial frame: " + e.Reason
}

// ServerConfig configures Sessions. Handle is required; everything else
// defaults.
type ServerConfig struct {
	// Handle processes one data frame (KindCompressed or KindRaw). A
	// nil return acks the frame; an error nacks it. Wrap content errors
	// in ErrBadFrame to also quarantine the payload. Must be safe for
	// concurrent use across sessions and idempotent per sequence number
	// (retransmits can redeliver).
	Handle func(m netproto.Message) error
	// Query, when set, answers KindQuery frames; the returned payload
	// travels back as KindQueryResult. A nil Query nacks queries.
	Query func(q netproto.Query) ([]byte, error)
	// Quarantine, when set, receives frames that failed validation (wire
	// checksum mismatch, ErrBadFrame, or a handler panic) before they
	// are nacked.
	Quarantine func(m netproto.Message, reason string)
	// ReadTimeout is the maximum idle time between frames before the
	// session is considered abandoned (default 60s).
	ReadTimeout time.Duration
	// WriteTimeout is the deadline for writing a response (default 10s).
	WriteTimeout time.Duration
	// NoAck suppresses ack/nack responses for wire compatibility with
	// fire-and-forget clients; fault isolation still applies.
	NoAck bool
	// Logf, when set, receives per-session diagnostics.
	Logf func(format string, args ...any)
}

func (cfg *ServerConfig) fillDefaults() {
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// Server accepts connections and runs a Session per connection.
type Server struct {
	cfg        ServerConfig
	mu         sync.Mutex
	ln         net.Listener
	conns      map[net.Conn]struct{}
	wg         sync.WaitGroup
	inShutdown atomic.Bool
}

// NewServer builds a server around the given config.
func NewServer(cfg ServerConfig) *Server {
	cfg.fillDefaults()
	return &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Shutdown closes it, running each
// connection's Session on its own goroutine. A session failure never
// affects other sessions.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() || errors.Is(err, net.ErrClosed) {
				return ErrServerClosed
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				continue
			}
			return err
		}
		s.track(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.track(conn, false)
			sess := NewSession(conn, s.cfg)
			if err := sess.Run(); err != nil {
				s.cfg.Logf("reliable: client %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Shutdown stops accepting connections and waits for active sessions to
// drain. If ctx expires first, remaining connections are closed forcibly
// and ctx.Err is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
}

// Session serves one connection: reads frames, dispatches them, and
// responds with acks/nacks. Frame-level failures (checksum, decode,
// handler panic) are isolated — nacked and quarantined — while
// framing-level failures (corrupt header, torn stream) end the session so
// the client can reconnect.
type Session struct {
	conn net.Conn
	cfg  ServerConfig
}

// NewSession wraps an accepted connection.
func NewSession(conn net.Conn, cfg ServerConfig) *Session {
	cfg.fillDefaults()
	return &Session{conn: conn, cfg: cfg}
}

// Run serves the connection until the client says goodbye, disconnects, or
// the stream framing is lost. A panic anywhere in the session (including
// the dispatch path) is caught and reported as an error rather than
// crashing the server.
func (s *Session) Run() (err error) {
	defer s.conn.Close()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("reliable: session panic: %v", r)
		}
	}()
	for {
		if s.cfg.ReadTimeout > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		m, rerr := netproto.Read(s.conn)
		switch {
		case rerr == nil:
		case errors.Is(rerr, io.EOF), errors.Is(rerr, net.ErrClosed):
			return nil // client hung up (or drain closed us): normal end
		case errors.Is(rerr, netproto.ErrChecksum):
			// Payload corrupt but framing intact: isolate the frame
			// and keep the stream.
			s.quarantine(m, "payload checksum mismatch")
			if err := s.respond(netproto.Nack(m.Seq, "checksum")); err != nil {
				return err
			}
			continue
		default:
			// Header corruption, torn read, version mismatch: the
			// stream position is gone; force a reconnect.
			return fmt.Errorf("reliable: reading frame: %w", rerr)
		}
		switch m.Kind {
		case netproto.KindBye:
			return nil
		case netproto.KindCompressed, netproto.KindRaw:
			if herr := s.dispatch(m); herr != nil {
				var pfe *PartialFrameError
				if errors.As(herr, &pfe) {
					// Partial salvage: quarantine only the damaged
					// section bytes and ack — the corruption is at
					// the source, so retransmitting cannot fix it.
					s.cfg.Logf("reliable: frame %d partially recovered: %s", m.Seq, pfe.Reason)
					s.quarantine(netproto.Message{Kind: m.Kind, Seq: m.Seq, Payload: pfe.Damaged},
						"partial: "+pfe.Reason)
					if err := s.respond(netproto.Ack(m.Seq)); err != nil {
						return err
					}
					continue
				}
				reason := herr.Error()
				s.cfg.Logf("reliable: frame %d rejected: %v", m.Seq, herr)
				if err := s.respond(netproto.Nack(m.Seq, clip(reason))); err != nil {
					return err
				}
				continue
			}
			if err := s.respond(netproto.Ack(m.Seq)); err != nil {
				return err
			}
		case netproto.KindQuery:
			if err := s.answer(m); err != nil {
				return err
			}
		default:
			// Unknown kind from a newer client: reject the frame,
			// keep the session.
			if err := s.respond(netproto.Nack(m.Seq, "unknown kind")); err != nil {
				return err
			}
		}
	}
}

// dispatch runs the handler with its own panic isolation: a decoder blowing
// up on a hostile payload costs one nack, not the connection.
func (s *Session) dispatch(m netproto.Message) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: handler panic: %v", ErrBadFrame, r)
			s.quarantine(m, err.Error())
		}
	}()
	if s.cfg.Handle == nil {
		return errors.New("no handler")
	}
	err = s.cfg.Handle(m)
	if err != nil && errors.Is(err, ErrBadFrame) {
		s.quarantine(m, err.Error())
	}
	return err
}

func (s *Session) answer(m netproto.Message) error {
	if s.cfg.Query == nil {
		return s.respond(netproto.Nack(m.Seq, "queries unsupported"))
	}
	q, err := netproto.DecodeQuery(m.Payload)
	if err != nil {
		return s.respond(netproto.Nack(m.Seq, clip(err.Error())))
	}
	payload, err := s.callQuery(q)
	if err != nil {
		s.cfg.Logf("reliable: query frame %d: %v", q.Seq, err)
		payload = nil // an empty result, like a miss
	}
	return s.write(netproto.Message{Kind: netproto.KindQueryResult, Seq: q.Seq, Payload: payload})
}

func (s *Session) callQuery(q netproto.Query) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("query panic: %v", r)
		}
	}()
	return s.cfg.Query(q)
}

func (s *Session) quarantine(m netproto.Message, reason string) {
	if s.cfg.Quarantine != nil {
		s.cfg.Quarantine(m, reason)
	}
}

// respond writes an ack/nack unless running in fire-and-forget mode.
func (s *Session) respond(m netproto.Message) error {
	if s.cfg.NoAck {
		return nil
	}
	return s.write(m)
}

func (s *Session) write(m netproto.Message) error {
	if s.cfg.WriteTimeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	return netproto.Write(s.conn, m)
}

// clip bounds nack reasons so a pathological error string cannot bloat the
// response frame.
func clip(reason string) string {
	const max = 200
	if len(reason) > max {
		return reason[:max]
	}
	return reason
}
