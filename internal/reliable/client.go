// Package reliable layers fault tolerance on top of the netproto framing:
// a Client that acknowledges every frame, bounds the in-flight window,
// retransmits on nack or timeout, and reconnects with exponential backoff
// and jitter; and a Server whose per-connection Sessions isolate frame
// failures (a corrupt or undecodable frame is nacked and quarantined, not
// fatal), recover from handler panics, enforce read/write deadlines, and
// drain gracefully on shutdown.
//
// Delivery semantics: a frame is acknowledged only after the server-side
// handler accepted it, so every acked frame was handled at least once.
// Retransmits can deliver the same sequence number more than once (an ack
// can be lost on the wire); handlers must therefore be idempotent per
// sequence number, which the frame store's last-Put-wins shadowing
// provides.
package reliable

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"dbgc/internal/netproto"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("reliable: client closed")

var errAckTimeout = errors.New("reliable: timed out waiting for ack")

// ErrFrameRejected marks a frame the server nacked more than FrameRetries
// times — the frame itself is undeliverable, but the connection and every
// other frame are fine. Callers streaming many frames can skip the bad one
// with errors.Is(err, ErrFrameRejected) and carry on.
var ErrFrameRejected = errors.New("reliable: frame rejected")

// ErrAdmission marks a hard admission refusal: the server rejected this
// client's hello outright (e.g. an invalid tenant name). Unlike a busy
// refusal, retrying will not help.
var ErrAdmission = errors.New("reliable: admission refused")

// Options configures a Client. The zero value of every field except Dial
// (or Addrs+DialTo) gets a sensible default.
type Options struct {
	// Dial opens a connection to the server. Called again, after
	// backoff, whenever the current connection fails. Required unless
	// Addrs and DialTo are set.
	Dial func() (net.Conn, error)
	// Addrs lists the servers of a replicated deployment in preference
	// order (primary first). The client dials Addrs[0] and fails over to
	// the next address — with the usual jittered backoff — whenever a
	// connection attempt fails, the handshake is refused busy, or the
	// current connection dies. Once an address yields an admitted
	// connection the client sticks to it until it fails again. Requires
	// DialTo; mutually exclusive with Dial.
	Addrs []string
	// DialTo opens a connection to one address from Addrs. Required when
	// Addrs is set.
	DialTo func(addr string) (net.Conn, error)
	// OnAck, when set, is called with the sequence number of every frame
	// the server acknowledges (exactly once per Send). It runs on the
	// goroutine driving Send/Flush and must not call back into the
	// client.
	OnAck func(seq uint64)
	// MaxInFlight bounds the number of unacknowledged frames (default
	// 8). Send blocks once the window is full.
	MaxInFlight int
	// AckTimeout is how long to wait for any ack before declaring the
	// connection dead and reconnecting (default 5s).
	AckTimeout time.Duration
	// WriteTimeout is the per-frame write deadline (default 10s).
	WriteTimeout time.Duration
	// BaseBackoff and MaxBackoff bound the exponential reconnect
	// backoff (defaults 50ms and 3s); each sleep is jittered to
	// [0.5,1.5)× the nominal value.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxStalls is the number of consecutive connection failures
	// without a single ack before giving up (default 12).
	MaxStalls int
	// FrameRetries is how many nacks a single frame survives before the
	// client reports it undeliverable (default 64).
	FrameRetries int
	// Tenant, when non-empty, is announced with a hello frame on every
	// (re)connection; the server keys storage and admission by it.
	Tenant string
	// BusyRetries is how many busy (backpressure) refusals a single frame
	// tolerates before the client gives up on it (default 256). Busy
	// refusals mean the server is alive but loaded, so the budget is far
	// larger than FrameRetries and each refusal backs off before the
	// retransmit.
	BusyRetries int
	// Seed feeds the jitter source; 0 means a time-independent fixed
	// seed (fine for production, deterministic for tests).
	Seed int64
	// Logf, when set, receives retry/reconnect diagnostics.
	Logf func(format string, args ...any)
}

// Stats counts client activity since construction.
type Stats struct {
	Sent       int // frames handed to Send
	Acked      int // frames acknowledged by the server
	Nacked     int // negative acknowledgements received
	BusyNacked int // backpressure refusals (server busy, frame retried)
	Resent     int // retransmitted frames (nack, busy retry, or reconnect)
	Reconnects int // successful dials, including the first
	Failovers  int // address rotations in multi-address mode
}

// Client sends frames reliably over a flaky link. It is not safe for
// concurrent use: like the sensor pipeline it serves, it is a single
// producer loop.
type Client struct {
	cfg  Options
	rng  *rand.Rand
	conn net.Conn
	// events carries acks/nacks (and read errors) from the reader
	// goroutine of the current connection; replaced on reconnect.
	events  chan event
	pending []*pframe // sent but unacked, in send order
	bySeq   map[uint64]*pframe
	stalls  int // consecutive connection failures since the last ack
	// busyUntil is the earliest time the server asked us to retry after a
	// busy refusal; sends and reconnects honor it before transmitting.
	busyUntil time.Time
	// addrIdx is the Addrs entry the client is currently using (multi-
	// address mode only).
	addrIdx int
	lastErr error
	stats   Stats
	closed  bool
}

type pframe struct {
	msg     netproto.Message
	retries int
	busy    int  // consecutive busy refusals awaiting a backed-off retry
	writes  int  // wire transmissions so far; >1 means retransmitted
	held    bool // refused busy; waiting out the backoff before resend
}

type event struct {
	msg netproto.Message
	err error
}

// NewClient builds a client; the first connection is dialed lazily on the
// first Send.
func NewClient(cfg Options) (*Client, error) {
	switch {
	case cfg.Dial == nil && len(cfg.Addrs) == 0:
		return nil, errors.New("reliable: Options.Dial (or Addrs+DialTo) is required")
	case cfg.Dial != nil && len(cfg.Addrs) > 0:
		return nil, errors.New("reliable: Options.Dial and Options.Addrs are mutually exclusive")
	case len(cfg.Addrs) > 0 && cfg.DialTo == nil:
		return nil, errors.New("reliable: Options.Addrs requires Options.DialTo")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 3 * time.Second
	}
	if cfg.MaxStalls <= 0 {
		cfg.MaxStalls = 12
	}
	if cfg.FrameRetries <= 0 {
		cfg.FrameRetries = 64
	}
	if cfg.BusyRetries <= 0 {
		cfg.BusyRetries = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Client{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		bySeq: make(map[uint64]*pframe),
	}, nil
}

// Send queues m for reliable delivery and blocks while the in-flight
// window is full. A nil error means the frame is on its way (and will be
// retransmitted as needed), not yet that it was acked; Flush waits for
// acknowledgement. Sequence numbers must be unique among in-flight frames
// because acks are matched by Seq.
func (c *Client) Send(m netproto.Message) error {
	if c.closed {
		return ErrClosed
	}
	if _, dup := c.bySeq[m.Seq]; dup {
		return fmt.Errorf("reliable: seq %d already in flight", m.Seq)
	}
	f := &pframe{msg: m}
	c.pending = append(c.pending, f)
	c.bySeq[m.Seq] = f
	c.stats.Sent++
	if c.conn == nil {
		// reconnect transmits everything pending, including f.
		if err := c.reconnect(); err != nil {
			return err
		}
	} else {
		f.writes++
		if err := c.writeFrame(f.msg); err != nil {
			c.dropConn(err)
			if err := c.reconnect(); err != nil {
				return err
			}
		}
	}
	// Drain acks that already arrived, then block while over the window.
	if err := c.drain(); err != nil {
		return err
	}
	for len(c.pending) >= c.cfg.MaxInFlight {
		if err := c.pump(); err != nil {
			return err
		}
	}
	return nil
}

// Flush blocks until every sent frame has been acknowledged.
func (c *Client) Flush() error {
	for len(c.pending) > 0 {
		if err := c.pump(); err != nil {
			return err
		}
	}
	return nil
}

// Tick makes bounded progress without requiring the window to drain: it
// processes every response that has already arrived, retransmits any
// busy-held frames whose backoff expired, and otherwise waits up to d for
// one more response. A quiet wait is not an error. Replication senders use
// it to pump acks (and fire OnAck) while no new frames are being sent.
func (c *Client) Tick(d time.Duration) error {
	if c.closed {
		return ErrClosed
	}
	if err := c.drain(); err != nil {
		return err
	}
	if len(c.pending) == 0 {
		return nil
	}
	if c.conn == nil {
		return c.reconnect()
	}
	if c.heldCount() > 0 {
		return c.resendHeld()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case ev, ok := <-c.events:
		if !ok {
			c.dropConn(c.lastErr)
			return c.reconnect()
		}
		return c.handleEvent(ev)
	case <-timer.C:
		return nil
	}
}

// InFlight reports the number of sent-but-unacknowledged frames.
func (c *Client) InFlight() int { return len(c.pending) }

// pump makes one unit of progress toward draining pending frames: process
// buffered events, retransmit busy-held frames once their backoff expires,
// or block for the next ack. Held frames take priority over waiting —
// the server will not ack them until we resend.
func (c *Client) pump() error {
	if err := c.drain(); err != nil {
		return err
	}
	if len(c.pending) == 0 {
		return nil // drain emptied the window; nothing left to wait for
	}
	if c.heldCount() > 0 {
		return c.resendHeld()
	}
	return c.awaitEvent()
}

func (c *Client) heldCount() int {
	n := 0
	for _, f := range c.pending {
		if f.held {
			n++
		}
	}
	return n
}

// resendHeld waits out the server's retry-after hint and retransmits every
// busy-held frame in send order.
func (c *Client) resendHeld() error {
	if wait := time.Until(c.busyUntil); wait > 0 {
		time.Sleep(wait)
	}
	// Events may have arrived during the sleep (e.g. acks for frames that
	// were queued server-side); process them so we don't resend acked
	// frames.
	if err := c.drain(); err != nil {
		return err
	}
	if c.conn == nil {
		return c.reconnect()
	}
	for _, f := range c.pending {
		if !f.held {
			continue
		}
		f.held = false
		c.stats.Resent++
		f.writes++
		if err := c.writeFrame(f.msg); err != nil {
			c.dropConn(err)
			return c.reconnect()
		}
	}
	return nil
}

// Query sends a spatial query and waits for its result, retrying over
// reconnects and tolerating interleaved non-result frames (stray acks).
// All pending frames are flushed first so the result cannot be confused
// with ack traffic for unacked frames.
func (c *Client) Query(q netproto.Query) (netproto.Message, error) {
	if err := c.Flush(); err != nil {
		return netproto.Message{}, err
	}
	msg := netproto.Message{Kind: netproto.KindQuery, Seq: q.Seq, Payload: netproto.EncodeQuery(q)}
	for attempt := 0; attempt <= c.cfg.FrameRetries; attempt++ {
		if c.conn == nil {
			if err := c.reconnect(); err != nil {
				return netproto.Message{}, err
			}
		}
		if err := c.writeFrame(msg); err != nil {
			c.dropConn(err)
			continue
		}
		deadline := time.Now().Add(c.cfg.AckTimeout)
		for {
			remain := time.Until(deadline)
			if remain <= 0 {
				c.dropConn(errAckTimeout)
				break
			}
			timer := time.NewTimer(remain)
			select {
			case ev, ok := <-c.events:
				timer.Stop()
				if !ok || ev.err != nil {
					c.dropConn(ev.err)
				} else if ev.msg.Kind == netproto.KindQueryResult {
					return ev.msg, nil
				}
				// Anything else (stray ack/nack) is skipped.
			case <-timer.C:
				c.dropConn(errAckTimeout)
			}
			if c.conn == nil {
				break
			}
		}
	}
	return netproto.Message{}, fmt.Errorf("reliable: query failed after %d attempts: %w", c.cfg.FrameRetries+1, c.lastErr)
}

// Close flushes outstanding frames, tells the server goodbye, and releases
// the connection. The returned error is the flush outcome: nil means every
// frame sent was acknowledged.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	flushErr := c.Flush()
	c.closed = true
	if c.conn != nil {
		_ = c.writeFrame(netproto.Message{Kind: netproto.KindBye, Seq: uint64(c.stats.Sent)})
		c.dropConn(nil)
	}
	return flushErr
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats { return c.stats }

// awaitEvent blocks for the next ack/nack (up to AckTimeout) and processes
// it; a timeout or connection error triggers reconnect-and-retransmit.
func (c *Client) awaitEvent() error {
	timer := time.NewTimer(c.cfg.AckTimeout)
	defer timer.Stop()
	select {
	case ev, ok := <-c.events:
		if !ok {
			c.dropConn(c.lastErr)
			return c.reconnect()
		}
		return c.handleEvent(ev)
	case <-timer.C:
		c.dropConn(errAckTimeout)
		return c.reconnect()
	}
}

// drain processes without blocking whatever the reader has already
// delivered.
func (c *Client) drain() error {
	for {
		select {
		case ev, ok := <-c.events:
			if !ok {
				c.dropConn(c.lastErr)
				return c.reconnect()
			}
			if err := c.handleEvent(ev); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (c *Client) handleEvent(ev event) error {
	if ev.err != nil {
		c.dropConn(ev.err)
		return c.reconnect()
	}
	switch ev.msg.Kind {
	case netproto.KindAck, netproto.KindReplAck:
		// ReplAck is the replication dialect's ack: same window
		// semantics, distinct kind so follower responses are
		// self-describing on the wire.
		c.ack(ev.msg.Seq)
	case netproto.KindNack:
		if retryAfter, reason, busy := netproto.BusyHint(ev.msg.Payload); busy {
			return c.handleBusy(ev.msg.Seq, retryAfter, reason)
		}
		f, ok := c.bySeq[ev.msg.Seq]
		if !ok {
			return nil // late nack for a frame that was since acked
		}
		c.stats.Nacked++
		f.retries++
		if f.retries > c.cfg.FrameRetries {
			// Remove the frame so the client stays usable for the rest of
			// the stream if the caller opts to continue past the error.
			c.forget(ev.msg.Seq)
			return fmt.Errorf("%w: frame %d rejected %d times (%s), giving up",
				ErrFrameRejected, ev.msg.Seq, f.retries, ev.msg.Payload)
		}
		c.cfg.Logf("reliable: frame %d nacked (%s), resending (try %d)", ev.msg.Seq, ev.msg.Payload, f.retries)
		c.stats.Resent++
		f.writes++
		if err := c.writeFrame(f.msg); err != nil {
			c.dropConn(err)
			return c.reconnect()
		}
	default:
		// Stray frame (e.g. a late query result): ignore.
	}
	return nil
}

// handleBusy reacts to a backpressure refusal: hold the frame, extend the
// retry-after window with capped exponential growth and jitter, and — since
// a busy server is very much alive — reset the stall counter. The frame is
// retransmitted by resendHeld once the window passes.
func (c *Client) handleBusy(seq uint64, retryAfter time.Duration, reason string) error {
	c.stats.BusyNacked++
	c.stalls = 0
	f, ok := c.bySeq[seq]
	if !ok {
		// A busy refusal of the hello (or a frame acked in the
		// meantime): remember the hint so reconnect waits it out.
		c.extendBusy(retryAfter)
		return nil
	}
	f.held = true
	f.busy++
	if f.busy > c.cfg.BusyRetries {
		c.forget(seq)
		return fmt.Errorf("%w: frame %d refused busy %d times (%s), giving up",
			ErrFrameRejected, seq, f.busy, reason)
	}
	shift := f.busy - 1
	if shift > 6 {
		shift = 6
	}
	c.extendBusy(retryAfter << shift)
	c.cfg.Logf("reliable: frame %d refused busy (%s), retry after %v (refusal %d)",
		seq, reason, retryAfter, f.busy)
	if len(c.cfg.Addrs) > 1 && f.busy%4 == 0 {
		// A node that refuses frame after frame busy (an unpromoted
		// follower does, indefinitely) is not going to drain this window.
		// Tenant-announcing clients rotate on the refused hello; default-
		// tenant sessions have no hello, so rotate here instead of
		// camping on the retry hint. resendHeld reconnects on the next
		// address and retransmits everything pending.
		c.cfg.Logf("reliable: %d straight busy refusals from %s, rotating", f.busy, c.CurrentAddr())
		c.dropConn(nil)
		c.rotate()
	}
	return nil
}

// extendBusy pushes busyUntil out by a jittered d, never pulling it in.
func (c *Client) extendBusy(d time.Duration) {
	if d <= 0 {
		d = c.cfg.BaseBackoff
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + c.rng.Float64()))
	until := time.Now().Add(d)
	if until.After(c.busyUntil) {
		c.busyUntil = until
	}
}

func (c *Client) ack(seq uint64) {
	if !c.forget(seq) {
		return // duplicate ack after a retransmit
	}
	c.stats.Acked++
	c.stalls = 0 // acks are the progress signal
	if c.cfg.OnAck != nil {
		c.cfg.OnAck(seq)
	}
}

// forget removes a frame from the in-flight window without counting it
// acknowledged — the shared bookkeeping of real acks and gave-up frames.
func (c *Client) forget(seq uint64) bool {
	f, ok := c.bySeq[seq]
	if !ok {
		return false
	}
	delete(c.bySeq, seq)
	for i, p := range c.pending {
		if p == f {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	return true
}

func (c *Client) writeFrame(m netproto.Message) error {
	if c.cfg.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
	return netproto.Write(c.conn, m)
}

// dropConn tears down the current connection and drains its reader.
func (c *Client) dropConn(reason error) {
	if reason != nil {
		c.lastErr = reason
	}
	if c.conn == nil {
		return
	}
	c.conn.Close()
	c.conn = nil
	// The reader unblocks on the closed conn, sends its error, and
	// closes the channel; consume the leftovers so it can exit. Busy
	// hints among the discards still inform the reconnect wait.
	for ev := range c.events {
		if ev.err == nil && ev.msg.Kind == netproto.KindNack {
			if retryAfter, _, busy := netproto.BusyHint(ev.msg.Payload); busy {
				c.extendBusy(retryAfter)
			}
		}
	}
	c.events = nil
}

// reconnect dials (with backoff and jitter) until a connection accepts a
// retransmit of every pending frame, or the stall budget runs out. When a
// tenant is configured, each connection starts with a hello handshake; a
// busy refusal of the hello backs off and redials, a hard refusal is fatal.
func (c *Client) reconnect() error {
	for {
		if c.stalls >= c.cfg.MaxStalls {
			return fmt.Errorf("reliable: giving up after %d consecutive failures: %w", c.stalls, c.lastErr)
		}
		if c.stalls > 0 {
			c.sleepBackoff(c.stalls)
		}
		// Honor any outstanding retry-after hint before dialing back in.
		if wait := time.Until(c.busyUntil); wait > 0 {
			time.Sleep(wait)
		}
		c.stalls++
		conn, err := c.dial()
		if err != nil {
			c.lastErr = err
			c.cfg.Logf("reliable: dial failed (attempt %d): %v", c.stalls, err)
			c.rotate()
			continue
		}
		c.conn = conn
		c.events = make(chan event, 2*c.cfg.MaxInFlight+8)
		go readLoop(conn, c.events)
		c.stats.Reconnects++
		if err := c.helloHandshake(); err != nil {
			if errors.Is(err, ErrAdmission) {
				return err
			}
			// Refused busy or connection died: back off and redial. In
			// multi-address mode a busy refusal usually means "not the
			// primary right now" — rotate so the next attempt finds the
			// promoted node.
			c.rotate()
			continue
		}
		// Reconnect retransmits everything, so no frame stays held.
		for _, f := range c.pending {
			f.held = false
		}
		resent := true
		for _, f := range c.pending {
			// A frame already on the wire once counts as a
			// retransmit; the first write of a fresh frame (e.g.
			// on the initial dial) does not.
			if f.writes > 0 {
				c.stats.Resent++
			}
			f.writes++
			if err := c.writeFrame(f.msg); err != nil {
				c.cfg.Logf("reliable: retransmit of frame %d failed: %v", f.msg.Seq, err)
				c.dropConn(err)
				resent = false
				break
			}
		}
		if resent {
			return nil
		}
	}
}

// helloHandshake announces the configured tenant on a fresh connection and
// waits for the server's verdict. nil means admitted (or no tenant set);
// ErrAdmission means a hard refusal; any other error means this connection
// is unusable (the caller redials after backoff).
func (c *Client) helloHandshake() error {
	if c.cfg.Tenant == "" {
		return nil
	}
	if err := c.writeFrame(netproto.Hello(c.cfg.Tenant)); err != nil {
		c.dropConn(err)
		return err
	}
	timer := time.NewTimer(c.cfg.AckTimeout)
	defer timer.Stop()
	for {
		select {
		case ev, ok := <-c.events:
			if !ok || ev.err != nil {
				c.dropConn(ev.err)
				return errAckTimeout
			}
			if ev.msg.Seq != netproto.HelloSeq {
				continue // stray frame from a previous life; skip
			}
			switch ev.msg.Kind {
			case netproto.KindAck:
				return nil
			case netproto.KindNack:
				if retryAfter, reason, busy := netproto.BusyHint(ev.msg.Payload); busy {
					c.stats.BusyNacked++
					c.extendBusy(retryAfter)
					c.cfg.Logf("reliable: hello refused busy (%s), retry after %v", reason, retryAfter)
					c.dropConn(nil)
					return errAckTimeout
				}
				c.dropConn(nil)
				return fmt.Errorf("%w: tenant %q: %s", ErrAdmission, c.cfg.Tenant, ev.msg.Payload)
			}
		case <-timer.C:
			c.dropConn(errAckTimeout)
			return errAckTimeout
		}
	}
}

// dial opens a connection via Dial, or to the current preferred address in
// multi-address mode.
func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial()
	}
	return c.cfg.DialTo(c.cfg.Addrs[c.addrIdx])
}

// rotate advances to the next configured address after a failed connection
// attempt. With zero or one address it is a no-op.
func (c *Client) rotate() {
	if len(c.cfg.Addrs) < 2 {
		return
	}
	c.addrIdx = (c.addrIdx + 1) % len(c.cfg.Addrs)
	c.stats.Failovers++
	c.cfg.Logf("reliable: failing over to %s", c.cfg.Addrs[c.addrIdx])
}

// CurrentAddr reports the address the client is currently pointed at
// (empty in single-Dial mode).
func (c *Client) CurrentAddr() string {
	if len(c.cfg.Addrs) == 0 {
		return ""
	}
	return c.cfg.Addrs[c.addrIdx]
}

func (c *Client) sleepBackoff(attempt int) {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	d := c.cfg.BaseBackoff << shift
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	d = time.Duration(float64(d) * (0.5 + c.rng.Float64()))
	time.Sleep(d)
}

// readLoop forwards server responses to the event channel until the
// connection dies, then reports the error and closes the channel.
func readLoop(conn net.Conn, ch chan event) {
	defer close(ch)
	for {
		m, err := netproto.Read(conn)
		if errors.Is(err, netproto.ErrChecksum) {
			// A corrupt response with intact framing: drop it and
			// keep reading — the affected frame retransmits on
			// ack timeout.
			continue
		}
		if err != nil {
			ch <- event{err: err}
			return
		}
		ch <- event{msg: m}
	}
}
