package reliable

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"dbgc/internal/netproto"
)

// memServer runs a Server that stores frames in a map and returns its
// address plus the stored map guarded by mu.
func memServer(t *testing.T, cfg ServerConfig) (addr string, stored map[uint64][]byte, mu *sync.Mutex) {
	t.Helper()
	mu = &sync.Mutex{}
	stored = make(map[uint64][]byte)
	if cfg.Handle == nil {
		cfg.Handle = func(_ string, m netproto.Message) error {
			mu.Lock()
			stored[m.Seq] = append([]byte(nil), m.Payload...)
			mu.Unlock()
			return nil
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String(), stored, mu
}

// TestFailoverOnDialFailure: the preferred address is dead, so the client
// must rotate to the live one and deliver everything there.
func TestFailoverOnDialFailure(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	liveAddr, stored, mu := memServer(t, ServerConfig{})

	cli, err := NewClient(Options{
		Addrs:       []string{deadAddr, liveAddr},
		DialTo:      func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, time.Second) },
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 5; seq++ {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte{byte(seq)}}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	st := cli.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failover counted despite a dead preferred address")
	}
	if cli.CurrentAddr() != liveAddr {
		t.Fatalf("client ended on %s, want %s", cli.CurrentAddr(), liveAddr)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stored) != 5 {
		t.Fatalf("live server stored %d frames, want 5", len(stored))
	}
}

// TestFailoverOnBusyRefusal: the preferred node admits the connection but
// refuses the session busy (an unpromoted follower does exactly this); the
// client must rotate instead of hammering it.
func TestFailoverOnBusyRefusal(t *testing.T) {
	busyAddr, busyStored, busyMu := memServer(t, ServerConfig{
		NotReady: func() (string, time.Duration, bool) {
			return "follower: not promoted", time.Millisecond, true
		},
	})
	liveAddr, stored, mu := memServer(t, ServerConfig{})

	cli, err := NewClient(Options{
		Addrs:       []string{busyAddr, liveAddr},
		DialTo:      func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, time.Second) },
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 5; seq++ {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte{byte(seq)}}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if cli.Stats().Failovers == 0 {
		t.Fatal("no failover counted despite a busy-refusing preferred node")
	}
	mu.Lock()
	n := len(stored)
	mu.Unlock()
	if n != 5 {
		t.Fatalf("live server stored %d frames, want 5", n)
	}
	busyMu.Lock()
	defer busyMu.Unlock()
	if len(busyStored) != 0 {
		t.Fatalf("busy node stored %d frames, want 0", len(busyStored))
	}
}
