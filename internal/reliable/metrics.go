package reliable

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Metrics counts server activity. All fields are updated atomically and
// may be read concurrently with serving; Snapshot returns a consistent-
// enough copy for reporting (counters are independent, not transactional).
type Metrics struct {
	// Frame traffic.
	FramesIn    atomic.Uint64 // data frames read off the wire
	BytesIn     atomic.Uint64 // payload bytes of those frames
	Acked       atomic.Uint64 // frames acknowledged
	Nacked      atomic.Uint64 // frames rejected (checksum/decode/handler)
	BusyNacked  atomic.Uint64 // frames refused with a backpressure hint
	Quarantined atomic.Uint64 // quarantine callbacks invoked

	// Replication and storage health.
	ReplRecords     atomic.Uint64 // replication records ingested (follower side)
	StoreSyncErrors atomic.Uint64 // sticky fsync failures observed by the commit group

	// Admission and lifecycle.
	SessionsOpened   atomic.Uint64
	SessionsClosed   atomic.Uint64
	SessionsRejected atomic.Uint64 // refused at admission (limits, shed)
	SessionsStalled  atomic.Uint64 // dropped for making no progress
	TenantsShed      atomic.Uint64 // tenants marked for shedding

	// Gauges.
	ActiveSessions atomic.Int64
	ActiveTenants  atomic.Int64
	InflightFrames atomic.Int64 // accepted but not yet acked/nacked

	lat latencyHist
}

// ObserveLatency records one frame's ingest latency (read → response).
func (m *Metrics) ObserveLatency(d time.Duration) { m.lat.observe(d) }

// MetricsSnapshot is a point-in-time copy of Metrics, JSON-ready for the
// /metrics endpoint and BENCH_load.json.
type MetricsSnapshot struct {
	FramesIn         uint64  `json:"frames_in"`
	BytesIn          uint64  `json:"bytes_in"`
	Acked            uint64  `json:"acked"`
	Nacked           uint64  `json:"nacked"`
	BusyNacked       uint64  `json:"busy_nacked"`
	Quarantined      uint64  `json:"quarantined"`
	ReplRecords      uint64  `json:"repl_records"`
	StoreSyncErrors  uint64  `json:"store_sync_errors"`
	SessionsOpened   uint64  `json:"sessions_opened"`
	SessionsClosed   uint64  `json:"sessions_closed"`
	SessionsRejected uint64  `json:"sessions_rejected"`
	SessionsStalled  uint64  `json:"sessions_stalled"`
	TenantsShed      uint64  `json:"tenants_shed"`
	ActiveSessions   int64   `json:"active_sessions"`
	ActiveTenants    int64   `json:"active_tenants"`
	InflightFrames   int64   `json:"inflight_frames"`
	LatencyP50Ms     float64 `json:"latency_p50_ms"`
	LatencyP99Ms     float64 `json:"latency_p99_ms"`
}

// Snapshot copies the counters and computes latency quantiles.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		FramesIn:         m.FramesIn.Load(),
		BytesIn:          m.BytesIn.Load(),
		Acked:            m.Acked.Load(),
		Nacked:           m.Nacked.Load(),
		BusyNacked:       m.BusyNacked.Load(),
		Quarantined:      m.Quarantined.Load(),
		ReplRecords:      m.ReplRecords.Load(),
		StoreSyncErrors:  m.StoreSyncErrors.Load(),
		SessionsOpened:   m.SessionsOpened.Load(),
		SessionsClosed:   m.SessionsClosed.Load(),
		SessionsRejected: m.SessionsRejected.Load(),
		SessionsStalled:  m.SessionsStalled.Load(),
		TenantsShed:      m.TenantsShed.Load(),
		ActiveSessions:   m.ActiveSessions.Load(),
		ActiveTenants:    m.ActiveTenants.Load(),
		InflightFrames:   m.InflightFrames.Load(),
		LatencyP50Ms:     m.lat.quantile(0.50),
		LatencyP99Ms:     m.lat.quantile(0.99),
	}
}

// latencyHist is a lock-free power-of-two histogram over microseconds:
// bucket i holds observations in [2^i, 2^(i+1)) µs, the last bucket is
// open-ended (~67s+). Quantiles interpolate inside the winning bucket,
// good to a factor of 2 — plenty for p99 monitoring.
type latencyHist struct {
	buckets [27]atomic.Uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	i := bits.Len64(uint64(us)) - 1
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
}

func (h *latencyHist) quantile(q float64) float64 {
	var counts [27]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		if seen+c > rank {
			lo := float64(uint64(1) << i)           // bucket floor in µs
			frac := float64(rank-seen) / float64(c) // position inside bucket
			return lo * (1 + frac) / 1000           // → ms
		}
		seen += c
	}
	return 0
}
