package reliable

import (
	"fmt"
	"sync"
	"time"

	"dbgc/internal/netproto"
)

// DefaultTenant is the tenant assigned to connections that never send a
// hello frame (legacy single-tenant clients).
const DefaultTenant = "default"

// admissionError carries a busy-nack retry hint alongside the rejection
// reason; sessions translate it into a NackBusy and close.
type admissionError struct {
	reason     string
	retryAfter time.Duration
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("reliable: admission refused: %s (retry after %v)", e.reason, e.retryAfter)
}

// tenant is the per-tenant admission state: how many sessions it has, how
// many frames it has in flight across all of them, and whether it is being
// shed. The in-flight budget is the bounded per-tenant ingest queue — a
// tenant's frames across every session compete for the same tokens, so one
// tenant flooding cannot starve the others.
type tenant struct {
	name     string
	admitSeq uint64 // admission order; higher = newer, shed first

	mu       sync.Mutex
	sessions int
	inflight int
	shedding bool
}

// tryAcquire takes one in-flight token if the budget allows.
func (t *tenant) tryAcquire(budget int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shedding || (budget > 0 && t.inflight >= budget) {
		return false
	}
	t.inflight++
	return true
}

func (t *tenant) release() {
	t.mu.Lock()
	t.inflight--
	t.mu.Unlock()
}

func (t *tenant) isShedding() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shedding
}

// registry tracks active tenants for a Server.
type registry struct {
	mu       sync.Mutex
	tenants  map[string]*tenant
	admitSeq uint64
	shedMode bool // true while global load is above the high-water mark
}

func newRegistry() *registry {
	return &registry{tenants: make(map[string]*tenant)}
}

// admit binds a session to a tenant, enforcing per-tenant and global
// limits. On rejection the returned error is an *admissionError carrying
// the retry hint.
func (s *Server) admit(name string) (*tenant, error) {
	if !netproto.ValidTenant(name) {
		// Not an overload condition — no retry hint, plain rejection.
		return nil, fmt.Errorf("reliable: invalid tenant name %q", name)
	}
	r := s.tenants
	hint := s.cfg.RetryAfter
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if !ok {
		if r.shedMode {
			s.metrics.SessionsRejected.Add(1)
			return nil, &admissionError{reason: "shedding load: new tenants refused", retryAfter: 2 * hint}
		}
		if s.cfg.MaxTenants > 0 && len(r.tenants) >= s.cfg.MaxTenants {
			s.metrics.SessionsRejected.Add(1)
			return nil, &admissionError{reason: "tenant limit reached", retryAfter: 2 * hint}
		}
		r.admitSeq++
		t = &tenant{name: name, admitSeq: r.admitSeq}
		r.tenants[name] = t
		s.metrics.ActiveTenants.Store(int64(len(r.tenants)))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shedding {
		s.metrics.SessionsRejected.Add(1)
		return nil, &admissionError{reason: "tenant is being shed", retryAfter: 2 * hint}
	}
	if s.cfg.MaxSessionsPerTenant > 0 && t.sessions >= s.cfg.MaxSessionsPerTenant {
		s.metrics.SessionsRejected.Add(1)
		return nil, &admissionError{reason: "tenant session limit reached", retryAfter: hint}
	}
	t.sessions++
	return t, nil
}

// unbind releases a session's slot; tenants with no sessions and no
// in-flight frames leave the registry (and lose any shed mark — they are
// readmitted as fresh, newest-first shed candidates).
func (s *Server) unbind(t *tenant) {
	if t == nil {
		return
	}
	r := s.tenants
	r.mu.Lock()
	defer r.mu.Unlock()
	t.mu.Lock()
	t.sessions--
	gone := t.sessions <= 0 && t.inflight <= 0
	t.mu.Unlock()
	if gone {
		delete(r.tenants, t.name)
		s.metrics.ActiveTenants.Store(int64(len(r.tenants)))
	}
}

// noteInflight adjusts the global in-flight gauge and re-evaluates the
// shedding state. Shedding follows the ISSUE's contract: when total
// in-flight frames exceed the high-water mark, the *newest* tenants are
// marked for shedding — their queued frames drain and ack normally, new
// frames get busy-nacked, their sessions close once empty, and re-hellos
// are refused until load falls under the low-water mark. Established
// (older) tenants keep full service throughout.
func (s *Server) noteInflight(delta int64) {
	load := s.metrics.InflightFrames.Add(delta)
	high := int64(s.cfg.ShedHighWater)
	if high <= 0 {
		return
	}
	low := int64(s.cfg.ShedLowWater)
	if low <= 0 || low >= high {
		low = high / 2
	}
	r := s.tenants
	switch {
	case load > high:
		r.mu.Lock()
		if !r.shedMode {
			r.shedMode = true
		}
		// Shed the newest non-shedding tenant, keeping at least one
		// tenant in service — with a single tenant, per-tenant budget
		// backpressure is already the bound and shedding would only
		// stop the world.
		var newest *tenant
		active := 0
		for _, t := range r.tenants {
			if t.isShedding() {
				continue
			}
			active++
			if newest == nil || t.admitSeq > newest.admitSeq {
				newest = t
			}
		}
		if newest != nil && active > 1 {
			newest.mu.Lock()
			newest.shedding = true
			newest.mu.Unlock()
			s.metrics.TenantsShed.Add(1)
			s.cfg.Logf("reliable: load %d over high water %d: shedding tenant %q", load, high, newest.name)
		}
		r.mu.Unlock()
	case load < low:
		r.mu.Lock()
		if r.shedMode {
			r.shedMode = false
			for _, t := range r.tenants {
				t.mu.Lock()
				if t.shedding {
					t.shedding = false
					s.cfg.Logf("reliable: load %d under low water %d: tenant %q back in service", load, low, t.name)
				}
				t.mu.Unlock()
			}
		}
		r.mu.Unlock()
	}
}
