package reliable

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dbgc/internal/netproto"
)

func startPartialServer(t *testing.T, cfg ServerConfig) (addr string) {
	t.Helper()
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// TestPartialFrameAckedAndQuarantined: a handler reporting PartialFrameError
// gets the frame ACKED (retransmitting source corruption is useless) while
// only the damaged bytes land in quarantine.
func TestPartialFrameAckedAndQuarantined(t *testing.T) {
	var mu sync.Mutex
	var reasons []string
	var payloads [][]byte
	damaged := []byte("damaged-section-bytes")
	addr := startPartialServer(t, ServerConfig{
		Handle: func(_ string, m netproto.Message) error {
			if bytes.HasPrefix(m.Payload, []byte("PART")) {
				return &PartialFrameError{Reason: "sparse: crc mismatch", Damaged: damaged}
			}
			return nil
		},
		Quarantine: func(_ string, m netproto.Message, reason string) {
			mu.Lock()
			reasons = append(reasons, reason)
			payloads = append(payloads, m.Payload)
			mu.Unlock()
		},
		Logf: t.Logf,
	})

	cli, err := NewClient(Options{
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
		AckTimeout:  2 * time.Second,
		MaxInFlight: 4,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seq, payload := range [][]byte{[]byte("good-0"), []byte("PART-1"), []byte("good-2")} {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: uint64(seq), Payload: payload}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("partial frame must be acked, not retried: %v", err)
	}
	st := cli.Stats()
	if st.Acked != 3 || st.Nacked != 0 || st.Resent != 0 {
		t.Fatalf("want 3 acks and no nacks/resends, got %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reasons) != 1 || reasons[0] != "partial: sparse: crc mismatch" {
		t.Fatalf("quarantine reasons %q, want one partial reason", reasons)
	}
	if !bytes.Equal(payloads[0], damaged) {
		t.Fatalf("quarantined %q, want only the damaged section bytes", payloads[0])
	}
}

// TestFrameRejectedSentinel: a frame nacked past its retry budget surfaces
// ErrFrameRejected, and the client stays usable for the rest of the stream.
func TestFrameRejectedSentinel(t *testing.T) {
	addr := startPartialServer(t, ServerConfig{
		Handle: func(_ string, m netproto.Message) error {
			if bytes.HasPrefix(m.Payload, []byte("BAD")) {
				return errors.New("undecodable")
			}
			return nil
		},
		Logf: t.Logf,
	})

	cli, err := NewClient(Options{
		Dial:         func() (net.Conn, error) { return net.Dial("tcp", addr) },
		AckTimeout:   2 * time.Second,
		MaxInFlight:  4,
		FrameRetries: 1,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rejected error
	for seq, payload := range [][]byte{[]byte("good-0"), []byte("BAD-1")} {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: uint64(seq), Payload: payload}); err != nil {
			rejected = err
			break
		}
	}
	if rejected == nil {
		rejected = cli.Flush()
	}
	if !errors.Is(rejected, ErrFrameRejected) {
		t.Fatalf("want ErrFrameRejected, got %v", rejected)
	}
	// The bad frame was dropped from the window; later traffic still flows.
	if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 2, Payload: []byte("good-2")}); err != nil {
		t.Fatalf("send after rejection: %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("close after rejection: %v", err)
	}
}
