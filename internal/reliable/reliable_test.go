package reliable

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dbgc/internal/faultnet"
	"dbgc/internal/netproto"
	"dbgc/internal/store"
)

// testPayload builds a deterministic pseudo-random payload for frame seq.
func testPayload(seq uint64, size int) []byte {
	rng := rand.New(rand.NewSource(int64(seq) + 1))
	b := make([]byte, size)
	rng.Read(b)
	return b
}

// startServer runs a Server storing frames into a fresh store and returns
// the address, the store, and a shutdown func.
func startServer(t *testing.T, cfg ServerConfig) (string, *store.Store, *Server) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "frames.db"))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Handle == nil {
		cfg.Handle = func(_ string, m netproto.Message) error {
			return st.Put(m.Seq, store.KindCompressed, m.Payload)
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		st.Close()
	})
	return ln.Addr().String(), st, srv
}

func tcpDial(addr string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

// TestEndToEndFaultInjection is the acceptance test: 50 frames over a link
// that drops connections, tears writes, and flips bits, all at >=1% rates,
// must arrive intact.
func TestEndToEndFaultInjection(t *testing.T) {
	addr, st, _ := startServer(t, ServerConfig{ReadTimeout: 2 * time.Second})
	inj := faultnet.New(faultnet.Config{
		Seed:        1,
		FlipProb:    0.02,
		DropProb:    0.015,
		PartialProb: 0.05,
		MaxDelay:    200 * time.Microsecond,
	})
	cli, err := NewClient(Options{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return inj.Wrap(c), nil
		},
		MaxInFlight: 4,
		AckTimeout:  300 * time.Millisecond,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		MaxStalls:   200,
		Seed:        2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 50
	payloads := make([][]byte, frames)
	for seq := 0; seq < frames; seq++ {
		payloads[seq] = testPayload(uint64(seq), 1024+seq*37)
		if err := cli.Send(netproto.Message{
			Kind: netproto.KindCompressed, Seq: uint64(seq), Payload: payloads[seq],
		}); err != nil {
			t.Fatalf("Send(%d): %v", seq, err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st.Len() != frames {
		t.Fatalf("store holds %d frames, want %d", st.Len(), frames)
	}
	for seq := 0; seq < frames; seq++ {
		got, kind, err := st.Get(uint64(seq))
		if err != nil {
			t.Fatalf("Get(%d): %v", seq, err)
		}
		if kind != store.KindCompressed || !bytes.Equal(got, payloads[seq]) {
			t.Fatalf("frame %d corrupted in transit: kind=%d len=%d want %d", seq, kind, len(got), len(payloads[seq]))
		}
	}
	stats := inj.Stats()
	t.Logf("injected faults: %+v; client stats: %+v", stats, cli.Stats())
	if stats.Drops == 0 || stats.Flips == 0 || stats.Partials == 0 {
		t.Fatalf("link was not flaky enough to prove anything: %+v", stats)
	}
	if cs := cli.Stats(); cs.Acked != frames {
		t.Fatalf("acked %d frames, want %d", cs.Acked, frames)
	}
}

// TestBadFrameQuarantined: a frame the handler rejects as undecodable is
// nacked and quarantined without taking down the session or the other
// frames.
func TestBadFrameQuarantined(t *testing.T) {
	var mu sync.Mutex
	var quarantined []uint64
	st, err := store.Open(filepath.Join(t.TempDir(), "frames.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cfg := ServerConfig{
		Handle: func(_ string, m netproto.Message) error {
			if bytes.HasPrefix(m.Payload, []byte("BAD")) {
				return fmt.Errorf("%w: not a dbgc stream", ErrBadFrame)
			}
			return st.Put(m.Seq, store.KindCompressed, m.Payload)
		},
		Quarantine: func(_ string, m netproto.Message, reason string) {
			mu.Lock()
			quarantined = append(quarantined, m.Seq)
			mu.Unlock()
		},
		Logf: t.Logf,
	}
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cli, err := NewClient(Options{
		Dial:         tcpDial(ln.Addr().String()),
		MaxInFlight:  16,
		FrameRetries: 2,
		AckTimeout:   2 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sendErr error
	for seq, payload := range [][]byte{[]byte("good-0"), []byte("BAD-1"), []byte("good-2")} {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: uint64(seq), Payload: payload}); err != nil {
			sendErr = err
			break
		}
	}
	if sendErr == nil {
		sendErr = cli.Flush()
	}
	if sendErr == nil || !strings.Contains(sendErr.Error(), "frame 1") {
		t.Fatalf("want permanent rejection of frame 1, got %v", sendErr)
	}
	for _, seq := range []uint64{0, 2} {
		if _, _, err := st.Get(seq); err != nil {
			t.Fatalf("good frame %d lost: %v", seq, err)
		}
	}
	if _, _, err := st.Get(1); err != store.ErrNotFound {
		t.Fatalf("bad frame 1 should not be stored, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(quarantined) == 0 || quarantined[0] != 1 {
		t.Fatalf("quarantine callback saw %v, want frame 1", quarantined)
	}
}

// TestHandlerPanicIsolated: a panicking decode costs one nack; the
// retransmit succeeds on the same connection.
func TestHandlerPanicIsolated(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[uint64]int)
	stored := make(map[uint64][]byte)
	cfg := ServerConfig{
		Handle: func(_ string, m netproto.Message) error {
			mu.Lock()
			seen[m.Seq]++
			first := seen[m.Seq] == 1
			mu.Unlock()
			if m.Seq == 2 && first {
				panic("decoder exploded on hostile payload")
			}
			mu.Lock()
			stored[m.Seq] = append([]byte(nil), m.Payload...)
			mu.Unlock()
			return nil
		},
		Logf: t.Logf,
	}
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cli, err := NewClient(Options{Dial: tcpDial(ln.Addr().String()), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 5; seq++ {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: testPayload(seq, 100)}); err != nil {
			t.Fatalf("Send(%d): %v", seq, err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stored) != 5 {
		t.Fatalf("stored %d frames, want 5", len(stored))
	}
	if seen[2] < 2 {
		t.Fatalf("frame 2 seen %d times, want a retransmit after the panic", seen[2])
	}
	// The panic must not have torn down the connection: one dial total.
	if r := cli.Stats().Reconnects; r != 1 {
		t.Fatalf("reconnects = %d, want 1 (panic should not kill the session)", r)
	}
}

// TestTornConnectionIsolated: a client that dies mid-payload neither
// corrupts the store nor disturbs other connections.
func TestTornConnectionIsolated(t *testing.T) {
	addr, st, _ := startServer(t, ServerConfig{ReadTimeout: time.Second})

	// A well-behaved session in progress on another connection.
	cli, err := NewClient(Options{Dial: tcpDial(addr), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 100, Payload: testPayload(100, 256)}); err != nil {
		t.Fatal(err)
	}

	// A rogue connection: writes a frame header promising 10 KB, delivers
	// 3 KB, and vanishes.
	rogue, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netproto.Write(&buf, netproto.Message{Kind: netproto.KindCompressed, Seq: 7, Payload: make([]byte, 10240)}); err != nil {
		t.Fatal(err)
	}
	if _, err := rogue.Write(buf.Bytes()[:buf.Len()-7000]); err != nil {
		t.Fatal(err)
	}
	rogue.Close()

	// The surviving client keeps working on its own connection.
	if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 101, Payload: testPayload(101, 256)}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	// And a brand-new connection is still served.
	late, err := NewClient(Options{Dial: tcpDial(addr), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 102, Payload: testPayload(102, 64)}); err != nil {
		t.Fatal(err)
	}
	if err := late.Close(); err != nil {
		t.Fatal(err)
	}
	// Store consistency: the three good frames, nothing from the torn one.
	if st.Len() != 3 {
		t.Fatalf("store holds %d frames, want 3", st.Len())
	}
	if _, _, err := st.Get(7); err != store.ErrNotFound {
		t.Fatalf("torn frame leaked into the store: %v", err)
	}
}

// TestReconnectBackoffToLateServer: the client survives the server not
// being there yet, reconnecting with backoff until it shows up.
func TestReconnectBackoffToLateServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now dead; the server will come back later

	var mu sync.Mutex
	stored := make(map[uint64][]byte)
	srvReady := make(chan *Server, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			t.Error(err)
			close(srvReady)
			return
		}
		srv := NewServer(ServerConfig{
			Handle: func(_ string, m netproto.Message) error {
				mu.Lock()
				stored[m.Seq] = append([]byte(nil), m.Payload...)
				mu.Unlock()
				return nil
			},
			Logf: t.Logf,
		})
		srvReady <- srv
		srv.Serve(ln2)
	}()

	cli, err := NewClient(Options{
		Dial:        tcpDial(addr),
		AckTimeout:  time.Second,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		MaxStalls:   50,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 1, Payload: []byte("patience")}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	srv, ok := <-srvReady
	if ok {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	mu.Lock()
	defer mu.Unlock()
	if string(stored[1]) != "patience" {
		t.Fatalf("frame lost across the outage: %q", stored[1])
	}
}

// TestQueryRoundTrip: queries flow through the reliable client, with ack
// traffic interleaved.
func TestQueryRoundTrip(t *testing.T) {
	addr, _, _ := startServer(t, ServerConfig{
		Query: func(_ string, q netproto.Query) ([]byte, error) {
			return []byte(fmt.Sprintf("result-for-%d", q.Seq)), nil
		},
	})
	cli, err := NewClient(Options{Dial: tcpDial(addr), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 3; seq++ {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: testPayload(seq, 64)}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := cli.Query(netproto.Query{Seq: 2})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if string(resp.Payload) != "result-for-2" {
		t.Fatalf("query result = %q", resp.Payload)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoAckLegacyMode: a fire-and-forget client is still served, and the
// server stays silent.
func TestNoAckLegacyMode(t *testing.T) {
	addr, st, _ := startServer(t, ServerConfig{NoAck: true, ReadTimeout: time.Second})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for seq := uint64(0); seq < 3; seq++ {
		if err := netproto.Write(conn, netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: testPayload(seq, 128)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := netproto.Write(conn, netproto.Message{Kind: netproto.KindBye, Seq: 3}); err != nil {
		t.Fatal(err)
	}
	// The server must close without having sent anything back.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if n, err := conn.Read(buf); n != 0 || !errors.Is(err, net.ErrClosed) && err.Error() == "" {
		if n != 0 {
			t.Fatalf("server sent %d unexpected bytes in NoAck mode", n)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st.Len() != 3 {
		t.Fatalf("store holds %d frames, want 3", st.Len())
	}
}

// TestGracefulShutdown: Shutdown waits for in-flight sessions, then
// refuses new connections.
func TestGracefulShutdown(t *testing.T) {
	addr, st, srv := startServer(t, ServerConfig{ReadTimeout: 5 * time.Second})
	cli, err := NewClient(Options{Dial: tcpDial(addr), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 5; seq++ {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: testPayload(seq, 512)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st.Len() != 5 {
		t.Fatalf("store holds %d frames after drain, want 5", st.Len())
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Fatal("server still accepting after Shutdown")
	}
}
