package reliable

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dbgc/internal/netproto"
)

func startTenantServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ln.Addr().String()
}

// rawHello dials and sends a hello, returning the server's verdict frame.
func rawHello(t *testing.T, addr, tenant string) (net.Conn, netproto.Message) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := netproto.Write(conn, netproto.Hello(tenant)); err != nil {
		t.Fatal(err)
	}
	m, err := netproto.Read(conn)
	if err != nil {
		conn.Close()
		t.Fatalf("reading hello verdict: %v", err)
	}
	return conn, m
}

// TestTenantHelloRouting: the handler sees the hello-announced tenant, and
// hello-less legacy connections land on the default tenant.
func TestTenantHelloRouting(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	_, addr := startTenantServer(t, ServerConfig{
		Handle: func(tenant string, m netproto.Message) error {
			mu.Lock()
			seen[tenant]++
			mu.Unlock()
			return nil
		},
		Logf: t.Logf,
	})
	for _, tenant := range []string{"acme", ""} {
		cli, err := NewClient(Options{
			Dial:   func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Tenant: tenant,
			Logf:   t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(0); seq < 3; seq++ {
			if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte("pts")}); err != nil {
				t.Fatal(err)
			}
		}
		if err := cli.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if seen["acme"] != 3 || seen[DefaultTenant] != 3 {
		t.Fatalf("per-tenant frame counts = %v, want acme:3 default:3", seen)
	}
}

// TestBackpressureBusyNackConvergence: a flooding client against a slow
// handler gets busy nacks with retry hints, honors them, and still delivers
// every frame exactly within the ack contract — backpressure slows the
// client, it never loses data.
func TestBackpressureBusyNackConvergence(t *testing.T) {
	var mu sync.Mutex
	got := map[uint64]bool{}
	srv, addr := startTenantServer(t, ServerConfig{
		Handle: func(tenant string, m netproto.Message) error {
			time.Sleep(3 * time.Millisecond) // slow consumer
			mu.Lock()
			got[m.Seq] = true
			mu.Unlock()
			return nil
		},
		QueueDepth:   2,
		TenantBudget: 2,
		RetryAfter:   10 * time.Millisecond,
		Logf:         t.Logf,
	})
	cli, err := NewClient(Options{
		Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Tenant:      "flood",
		MaxInFlight: 16,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 40
	for seq := uint64(0); seq < frames; seq++ {
		if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte("burst")}); err != nil {
			t.Fatalf("send %d: %v", seq, err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatalf("close (all frames must converge): %v", err)
	}
	mu.Lock()
	handled := len(got)
	mu.Unlock()
	if handled != frames {
		t.Fatalf("handled %d/%d frames", handled, frames)
	}
	if st := cli.Stats(); st.BusyNacked == 0 {
		t.Fatalf("flooding a depth-2 queue produced no busy nacks: %+v", st)
	} else {
		t.Logf("client stats: %+v", st)
	}
	if m := srv.Metrics().Snapshot(); m.BusyNacked == 0 {
		t.Fatalf("server counted no busy nacks: %+v", m)
	}
}

// TestAdmissionSessionLimits: per-tenant and global session caps refuse
// with a busy hint, and a freed slot readmits.
func TestAdmissionSessionLimits(t *testing.T) {
	_, addr := startTenantServer(t, ServerConfig{
		Handle:               func(string, netproto.Message) error { return nil },
		MaxSessionsPerTenant: 1,
		RetryAfter:           5 * time.Millisecond,
		Logf:                 t.Logf,
	})
	conn1, m := rawHello(t, addr, "acme")
	defer conn1.Close()
	if m.Kind != netproto.KindAck || m.Seq != netproto.HelloSeq {
		t.Fatalf("first session hello: %+v", m)
	}
	conn2, m := rawHello(t, addr, "acme")
	conn2.Close()
	if m.Kind != netproto.KindNack {
		t.Fatalf("second session for same tenant admitted: %+v", m)
	}
	if retryAfter, _, ok := netproto.BusyHint(m.Payload); !ok || retryAfter <= 0 {
		t.Fatalf("limit refusal carries no retry hint: %q", m.Payload)
	}
	// Another tenant is unaffected.
	conn3, m := rawHello(t, addr, "other")
	conn3.Close()
	if m.Kind != netproto.KindAck {
		t.Fatalf("other tenant refused: %+v", m)
	}
	// Freeing the slot readmits acme (poll: unbind is asynchronous).
	conn1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn4, m := rawHello(t, addr, "acme")
		conn4.Close()
		if m.Kind == netproto.KindAck {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionMaxTenants: the tenant cap refuses new tenants busy while
// existing tenants keep connecting.
func TestAdmissionMaxTenants(t *testing.T) {
	_, addr := startTenantServer(t, ServerConfig{
		Handle:     func(string, netproto.Message) error { return nil },
		MaxTenants: 2,
		Logf:       t.Logf,
	})
	conns := make([]net.Conn, 0, 2)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for _, tenant := range []string{"t1", "t2"} {
		conn, m := rawHello(t, addr, tenant)
		conns = append(conns, conn)
		if m.Kind != netproto.KindAck {
			t.Fatalf("tenant %s refused under the cap: %+v", tenant, m)
		}
	}
	conn, m := rawHello(t, addr, "t3")
	conn.Close()
	if m.Kind != netproto.KindNack {
		t.Fatalf("third tenant admitted over cap=2: %+v", m)
	}
	if _, reason, ok := netproto.BusyHint(m.Payload); !ok {
		t.Fatalf("cap refusal carries no retry hint: %q", m.Payload)
	} else {
		t.Logf("refused with: %s", reason)
	}
	// A second session for an existing tenant is still fine.
	conn, m = rawHello(t, addr, "t1")
	conn.Close()
	if m.Kind != netproto.KindAck {
		t.Fatalf("existing tenant refused while cap full: %+v", m)
	}
}

// TestMaxSessionsRefusedAtAccept: the global connection cap turns excess
// connections away before a session starts.
func TestMaxSessionsRefusedAtAccept(t *testing.T) {
	_, addr := startTenantServer(t, ServerConfig{
		Handle:      func(string, netproto.Message) error { return nil },
		MaxSessions: 1,
		Logf:        t.Logf,
	})
	conn1, m := rawHello(t, addr, "a")
	defer conn1.Close()
	if m.Kind != netproto.KindAck {
		t.Fatalf("first conn refused: %+v", m)
	}
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	m, err = netproto.Read(conn2) // refusal arrives unprompted
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if m.Kind != netproto.KindNack || m.Seq != netproto.HelloSeq {
		t.Fatalf("over-cap conn not refused: %+v", m)
	}
	if _, _, ok := netproto.BusyHint(m.Payload); !ok {
		t.Fatalf("accept refusal carries no retry hint: %q", m.Payload)
	}
}

// TestInvalidTenantHardRefusal: a bad tenant name is a plain nack (no busy
// hint) and surfaces as ErrAdmission through the client.
func TestInvalidTenantHardRefusal(t *testing.T) {
	_, addr := startTenantServer(t, ServerConfig{
		Handle: func(string, netproto.Message) error { return nil },
		Logf:   t.Logf,
	})
	conn, m := rawHello(t, addr, "../escape")
	conn.Close()
	if m.Kind != netproto.KindNack {
		t.Fatalf("traversal tenant admitted: %+v", m)
	}
	if _, _, ok := netproto.BusyHint(m.Payload); ok {
		t.Fatalf("hard refusal must not carry a retry hint: %q", m.Payload)
	}
	cli, err := NewClient(Options{
		Dial:   func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Tenant: ".hidden",
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 1, Payload: []byte("x")})
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("Send with invalid tenant = %v, want ErrAdmission", err)
	}
}

// TestSheddingDropsNewestTenant: past the high-water mark the newest tenant
// is shed (busy-nacked, session drained) while the older tenant keeps full
// service; below the low-water mark the shed tenant is readmitted and every
// accepted frame still lands exactly once.
func TestSheddingDropsNewestTenant(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	var mu sync.Mutex
	got := map[string]map[uint64]bool{}
	srv, addr := startTenantServer(t, ServerConfig{
		Handle: func(tenant string, m netproto.Message) error {
			<-release
			mu.Lock()
			if got[tenant] == nil {
				got[tenant] = map[uint64]bool{}
			}
			got[tenant][m.Seq] = true
			mu.Unlock()
			return nil
		},
		ShedHighWater: 4,
		ShedLowWater:  2,
		RetryAfter:    10 * time.Millisecond,
		Logf:          t.Logf,
	})
	newCli := func(tenant string) *Client {
		cli, err := NewClient(Options{
			Dial:        func() (net.Conn, error) { return net.Dial("tcp", addr) },
			Tenant:      tenant,
			MaxInFlight: 8,
			MaxStalls:   64,
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cli
	}
	old := newCli("old-tenant")
	for seq := uint64(0); seq < 3; seq++ {
		if err := old.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte("old")}); err != nil {
			t.Fatal(err)
		}
	}
	// All three are gated in the handler/queue: in-flight load is 3.
	newer := newCli("new-tenant")
	for seq := uint64(0); seq < 3; seq++ {
		if err := newer.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte("new")}); err != nil {
			t.Fatal(err)
		}
	}
	// Load crossed the high-water mark (6 > 4): the newest tenant must be
	// shed. Poll the metric — shedding happens on the serving goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().Snapshot().TenantsShed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no tenant shed over high water: %+v", srv.Metrics().Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Unblock the handlers; load drains under the low-water mark, the shed
	// tenant is readmitted, and both streams complete losslessly.
	releaseOnce.Do(func() { close(release) })
	if err := old.Close(); err != nil {
		t.Fatalf("old tenant lost service during shed: %v", err)
	}
	for seq := uint64(3); seq < 6; seq++ {
		if err := newer.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte("new")}); err != nil {
			t.Fatalf("shed tenant never readmitted: send %d: %v", seq, err)
		}
	}
	if err := newer.Close(); err != nil {
		t.Fatalf("shed tenant close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got["old-tenant"]) != 3 || len(got["new-tenant"]) != 6 {
		t.Fatalf("delivered old=%d new=%d, want 3 and 6", len(got["old-tenant"]), len(got["new-tenant"]))
	}
	m := srv.Metrics().Snapshot()
	if m.TenantsShed == 0 || m.InflightFrames != 0 {
		t.Fatalf("end state: %+v", m)
	}
}

// TestStallTimeoutCutsWedgedSession: a session whose queue never drains is
// disconnected after StallTimeout instead of pinning a slot forever.
func TestStallTimeoutCutsWedgedSession(t *testing.T) {
	release := make(chan struct{})
	srv, addr := startTenantServer(t, ServerConfig{
		Handle: func(string, netproto.Message) error {
			<-release
			return nil
		},
		QueueDepth:   1,
		TenantBudget: 1,
		RetryAfter:   2 * time.Millisecond,
		StallTimeout: 40 * time.Millisecond,
		Logf:         t.Logf,
	})
	t.Cleanup(func() { close(release) }) // after Shutdown's cleanup? No: LIFO, runs first
	conn, m := rawHello(t, addr, "wedged")
	defer conn.Close()
	if m.Kind != netproto.KindAck {
		t.Fatalf("hello: %+v", m)
	}
	// Flood without honoring hints; the server must eventually hang up.
	// Responses are drained opportunistically (accepted frames won't get
	// one until the gated handler runs, so never block long on a read).
	deadline := time.Now().Add(10 * time.Second)
	seq := uint64(0)
	cut := false
	for !cut {
		if time.Now().After(deadline) {
			t.Fatal("session never cut despite permanent stall")
		}
		seq++
		if err := netproto.Write(conn, netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte("x")}); err != nil {
			cut = true
			break
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		for {
			if _, err := netproto.Read(conn); err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // nothing more buffered; keep flooding
				}
				cut = true // EOF/reset after the stall cut
				break
			}
		}
	}
	if got := srv.Metrics().SessionsStalled.Load(); got == 0 {
		t.Fatal("stall cut not counted")
	}
}

// TestMetricsSnapshotJSONShape sanity-checks a few counters end to end.
func TestMetricsSnapshotCounters(t *testing.T) {
	srv, addr := startTenantServer(t, ServerConfig{
		Handle: func(_ string, m netproto.Message) error {
			if m.Seq%2 == 1 {
				return fmt.Errorf("odd frames refused")
			}
			return nil
		},
		Logf: t.Logf,
	})
	cli, err := NewClient(Options{
		Dial:         func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Tenant:       "metrics",
		FrameRetries: 1,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rejected bool
	for seq := uint64(0); seq < 4; seq++ {
		err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: seq, Payload: []byte("m")})
		if errors.Is(err, ErrFrameRejected) {
			rejected = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Close(); err != nil && !errors.Is(err, ErrFrameRejected) {
		t.Fatal(err)
	}
	if !rejected {
		// The rejection may surface on Flush/Close instead; either way the
		// server must have nacked.
		t.Log("rejection surfaced at close")
	}
	m := srv.Metrics().Snapshot()
	if m.FramesIn < 4 || m.Acked < 2 || m.Nacked < 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.SessionsOpened == 0 || m.LatencyP99Ms < 0 {
		t.Fatalf("metrics: %+v", m)
	}
}
