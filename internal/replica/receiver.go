package replica

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"dbgc/internal/netproto"
	"dbgc/internal/store"
)

// Receiver is the follower side of replication: it applies records shipped
// by the primary into the local shard set, makes them durable before they
// are acked, maintains per-tenant watermarks through the prev chain, and
// answers handshake, digest, and manifest requests. Plug HandleHello and
// HandleRecord into reliable.ServerConfig's ReplHello and ReplRecord; plug
// NotReady into its NotReady so client traffic bounces until promotion.
type Receiver struct {
	shards *store.Shards
	group  *store.Group
	// wmEvery persists the watermark file every this many applies (and on
	// Close); staleness only costs idempotent re-shipping after a restart.
	wmEvery int

	mu       sync.Mutex
	epoch    byte
	wm       map[string]int64
	pending  map[string]map[int64]int64 // tenant → prev end → record end
	applies  int
	promoted bool
	records  uint64
	scrubbed uint64
	rejected uint64
}

// ReceiverStats is a snapshot of follower-side counters.
type ReceiverStats struct {
	Epoch    byte   `json:"epoch"`
	Promoted bool   `json:"promoted"`
	Records  uint64 `json:"records_applied"`
	Scrubbed uint64 `json:"records_scrubbed"`
	Rejected uint64 `json:"records_rejected"`
}

// NewReceiver loads the directory's replication metadata and wraps the
// shard set. group batches the durability fsyncs; wmEvery <= 0 defaults
// to 32.
func NewReceiver(shards *store.Shards, group *store.Group, wmEvery int) (*Receiver, error) {
	if wmEvery <= 0 {
		wmEvery = 32
	}
	m, err := LoadMeta(shards.Dir())
	if err != nil {
		return nil, fmt.Errorf("replica: loading meta: %w", err)
	}
	return &Receiver{
		shards:  shards,
		group:   group,
		wmEvery: wmEvery,
		epoch:   m.Epoch,
		wm:      m.Watermarks,
		pending: make(map[string]map[int64]int64),
	}, nil
}

// Epoch returns the receiver's current epoch.
func (r *Receiver) Epoch() byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Promoted reports whether this node has been promoted to primary.
func (r *Receiver) Promoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// Watermark returns a tenant's contiguous applied watermark.
func (r *Receiver) Watermark(tenant string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.wm[tenant]
}

// Stats snapshots the receiver's counters.
func (r *Receiver) Stats() ReceiverStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReceiverStats{
		Epoch: r.epoch, Promoted: r.promoted,
		Records: r.records, Scrubbed: r.scrubbed, Rejected: r.rejected,
	}
}

// NotReady implements the follower's client gate for
// reliable.ServerConfig.NotReady: until promotion, client ingest is
// refused with a busy hint so reliable clients rotate to the primary.
func (r *Receiver) NotReady() (reason string, retryAfter time.Duration, refuse bool) {
	if r.Promoted() {
		return "", 0, false
	}
	return "follower: not promoted", 500 * time.Millisecond, true
}

// Promote bumps the epoch, persists it, and opens the node to client
// traffic. Replication records from the old primary (old epoch) are fenced
// from here on. Returns the new epoch.
func (r *Receiver) Promote() (byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return r.epoch, nil
	}
	if r.epoch == ^byte(0) {
		return 0, fmt.Errorf("replica: epoch exhausted")
	}
	r.epoch++
	r.promoted = true
	if err := r.saveMetaLocked(); err != nil {
		return 0, fmt.Errorf("replica: persisting promotion: %w", err)
	}
	return r.epoch, nil
}

// Close persists the final watermarks.
func (r *Receiver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.saveMetaLocked()
}

// saveMetaLocked snapshots epoch+watermarks to disk. Caller holds r.mu.
func (r *Receiver) saveMetaLocked() error {
	wm := make(map[string]int64, len(r.wm))
	for k, v := range r.wm {
		wm[k] = v
	}
	return SaveMeta(r.shards.Dir(), Meta{Epoch: r.epoch, Watermarks: wm})
}

// HandleHello answers a KindReplHello payload (reliable.ServerConfig's
// ReplHello). Stale epochs are refused; a newer epoch is adopted.
func (r *Receiver) HandleHello(payload []byte) ([]byte, error) {
	h, err := DecodeHello(payload)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if h.Epoch < r.epoch {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: hello epoch %d < %d", ErrEpochFenced, h.Epoch, r.epoch)
	}
	if r.promoted {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: node promoted", ErrEpochFenced)
	}
	if h.Epoch > r.epoch {
		r.epoch = h.Epoch
	}
	epoch := r.epoch
	r.mu.Unlock()

	switch h.Mode {
	case ModeStream:
		r.mu.Lock()
		wm := make(map[string]int64, len(r.wm))
		for k, v := range r.wm {
			wm[k] = v
		}
		r.mu.Unlock()
		return EncodeWatermarks(epoch, wm), nil
	case ModeDigest:
		d, err := Digests(r.shards)
		if err != nil {
			return nil, err
		}
		return EncodeDigests(d), nil
	case ModeManifest:
		entries, err := TenantManifest(r.shards, h.Tenant)
		if err != nil {
			return nil, err
		}
		return EncodeManifest(entries), nil
	}
	return nil, fmt.Errorf("%w: mode %d", ErrMalformed, h.Mode)
}

// HandleRecord applies one KindReplRecord frame (reliable.ServerConfig's
// ReplRecord): epoch check, CRC32-C verification, append, group commit —
// only then does the session ack, so an acked record is durable here. The
// watermark advances through the prev chain; scrub records apply without
// touching it.
func (r *Receiver) HandleRecord(m netproto.Message) error {
	rec, err := DecodeRecord(m.Payload)
	if err != nil {
		r.noteRejected()
		return err
	}
	r.mu.Lock()
	if rec.Epoch < r.epoch {
		r.mu.Unlock()
		r.noteRejected()
		return fmt.Errorf("%w: record epoch %d < %d", ErrEpochFenced, rec.Epoch, r.epoch)
	}
	if r.promoted {
		r.mu.Unlock()
		r.noteRejected()
		return fmt.Errorf("%w: node promoted", ErrEpochFenced)
	}
	if rec.Epoch > r.epoch {
		r.epoch = rec.Epoch
	}
	r.mu.Unlock()

	// End-to-end integrity: verify against the CRC computed on the
	// primary before the record ever crossed the (fault-injected) link.
	// The netproto layer already checked its own frame CRC; this one
	// catches anything between primary disk and our apply path.
	if crc32.Checksum(rec.Payload, castagnoli) != rec.CRC {
		r.noteRejected()
		return fmt.Errorf("replica: record %s/%d: payload crc mismatch", rec.Tenant, rec.Seq)
	}

	st, err := r.shards.Acquire(rec.Tenant)
	if err != nil {
		r.noteRejected()
		return fmt.Errorf("replica: acquiring shard: %w", err)
	}
	_, err = st.Append(rec.Seq, rec.Kind, rec.Payload)
	if err == nil {
		if r.group != nil {
			err = r.group.Commit(st)
		} else {
			err = st.Sync()
		}
	}
	r.shards.Release(rec.Tenant)
	if err != nil {
		r.noteRejected()
		return fmt.Errorf("replica: applying record %s/%d: %w", rec.Tenant, rec.Seq, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.Scrub {
		r.scrubbed++
		return nil
	}
	r.records++
	r.advanceLocked(rec.Tenant, rec.Prev, rec.End)
	r.applies++
	if r.applies >= r.wmEvery {
		r.applies = 0
		// Persisted after the commit above, so the saved watermark never
		// runs ahead of durable data. A failed save is retried on the
		// next boundary; staleness is safe.
		if err := r.saveMetaLocked(); err != nil {
			return fmt.Errorf("replica: persisting watermarks: %w", err)
		}
	}
	return nil
}

// advanceLocked moves a tenant's watermark through the prev chain: the
// record covering [prev, end] extends the contiguous prefix only if prev
// is already below the watermark; otherwise it parks until the chain
// closes. Caller holds r.mu.
func (r *Receiver) advanceLocked(tenant string, prev, end int64) {
	w := r.wm[tenant]
	if prev > w {
		p := r.pending[tenant]
		if p == nil {
			p = make(map[int64]int64)
			r.pending[tenant] = p
		}
		p[prev] = end
		return
	}
	if end > w {
		w = end
	}
	// Drain parked successors now reachable from the new watermark.
	for p := r.pending[tenant]; ; {
		e, ok := p[w]
		if !ok {
			break
		}
		delete(p, w)
		if e > w {
			w = e
		}
	}
	r.wm[tenant] = w
}

func (r *Receiver) noteRejected() {
	r.mu.Lock()
	r.rejected++
	r.mu.Unlock()
}

// Digests computes every tenant's digest from the local shard set.
func Digests(shards *store.Shards) (map[string]Digest, error) {
	tenants, err := shards.Tenants()
	if err != nil {
		return nil, err
	}
	out := make(map[string]Digest, len(tenants))
	for _, tenant := range tenants {
		st, err := shards.Acquire(tenant)
		if err != nil {
			return nil, err
		}
		var d Digest
		for _, info := range st.Manifest() {
			d.Count++
			d.XorCRC ^= info.CRC
		}
		shards.Release(tenant)
		out[tenant] = d
	}
	return out, nil
}

// TenantManifest lists one tenant's live records as manifest entries. A
// tenant with no segment yields an empty manifest.
func TenantManifest(shards *store.Shards, tenant string) ([]ManifestEntry, error) {
	st, err := shards.Acquire(tenant)
	if err != nil {
		return nil, err
	}
	defer shards.Release(tenant)
	infos := st.Manifest()
	out := make([]ManifestEntry, len(infos))
	for i, info := range infos {
		out[i] = ManifestEntry{Seq: info.Seq, CRC: info.CRC}
	}
	return out, nil
}
