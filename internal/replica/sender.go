package replica

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"dbgc/internal/netproto"
	"dbgc/internal/reliable"
	"dbgc/internal/store"
)

// ErrReplTimeout reports that a sync-replication wait outlived its budget:
// the record is locally durable but not yet confirmed on the follower.
var ErrReplTimeout = errors.New("replica: timed out waiting for follower durability")

// ErrFenced reports that the follower refused this sender's epoch — the
// follower was promoted and this node is a deposed primary.
var ErrFenced = errors.New("replica: fenced by promoted follower")

// ErrStopped reports use of a stopped sender.
var ErrStopped = errors.New("replica: sender stopped")

// SenderConfig configures a Sender. Shards, Addr, and DialTo are required.
type SenderConfig struct {
	// Shards is the primary's shard set to tail.
	Shards *store.Shards
	// Addr is the follower's replication address; DialTo opens a
	// connection to it (the seam where faultnet links are injected).
	Addr   string
	DialTo func(addr string) (net.Conn, error)
	// Epoch is this primary's replication epoch (from LoadMeta /
	// Promote). The follower fences anything older than what it has seen.
	Epoch byte
	// Poll bounds how long the ship loop sleeps between tail scans when
	// nothing is happening (default 5ms); Kick wakes it early.
	Poll time.Duration
	// BatchBytes bounds the payload bytes read per tenant per scan
	// (default 1 MiB).
	BatchBytes int
	// ScrubInterval, when positive, runs the anti-entropy scrub that
	// often: digest comparison per tenant, manifest diff where digests
	// diverge, re-ship of divergent records.
	ScrubInterval time.Duration
	// HandshakeTimeout bounds the replication hello exchange (default 5s).
	HandshakeTimeout time.Duration
	// MaxInFlight bounds unacked records on the wire (default 32).
	MaxInFlight int
	// Seed feeds the retry jitter (0 = deterministic).
	Seed int64
	// Logf, when set, receives replication diagnostics.
	Logf func(format string, args ...any)
}

// shipRef ties an in-flight link sequence number to the record it carries.
type shipRef struct {
	tenant string
	end    int64
}

// SenderStats is a snapshot of primary-side replication counters.
type SenderStats struct {
	Epoch        byte   `json:"epoch"`
	Records      uint64 `json:"records_shipped"`
	ScrubShipped uint64 `json:"records_scrub_shipped"`
	Scrubs       uint64 `json:"scrub_passes"`
	ScrubErrors  uint64 `json:"scrub_errors"`
	InFlight     int    `json:"records_in_flight"`
	LagBytes     int64  `json:"lag_bytes"`
	Fenced       bool   `json:"fenced"`
	LinkUp       bool   `json:"link_up"`
}

// Sender tails every tenant shard on the primary and streams new records
// to the follower. Reliability (windowed acks, retransmits, reconnect
// backoff with jitter) comes from reliable.Client; the sender adds the
// replication handshake, per-tenant cursors, the prev chain, sync-mode
// durability waits, and the anti-entropy scrub.
//
// All client interaction happens on the Run goroutine; WaitDurable, Kick,
// and Stats are safe to call from any goroutine.
type Sender struct {
	cfg    SenderConfig
	client *reliable.Client

	mu          sync.Mutex
	next        map[string]int64              // per-tenant read cursor (primary offsets)
	prevEnd     map[string]int64              // end of the last shipped record (prev chain)
	shippedTo   map[string]int64              // end of the newest shipped record
	outstanding map[string]map[int64]struct{} // shipped-but-unacked record ends
	inflight    map[uint64]shipRef            // link seq → record
	waitCh      chan struct{}                 // closed+replaced on every ack
	linkSeq     uint64
	initialized bool // cursors seeded from the follower's watermarks
	fenced      bool
	linkUp      bool
	records     uint64
	scrubShip   uint64
	scrubs      uint64
	scrubErrs   uint64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewSender validates cfg and builds the sender; Run starts shipping.
func NewSender(cfg SenderConfig) (*Sender, error) {
	if cfg.Shards == nil || cfg.Addr == "" || cfg.DialTo == nil {
		return nil, errors.New("replica: SenderConfig needs Shards, Addr, and DialTo")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 5 * time.Millisecond
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 1 << 20
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 32
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Sender{
		cfg:         cfg,
		next:        make(map[string]int64),
		prevEnd:     make(map[string]int64),
		shippedTo:   make(map[string]int64),
		outstanding: make(map[string]map[int64]struct{}),
		inflight:    make(map[uint64]shipRef),
		waitCh:      make(chan struct{}),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	client, err := reliable.NewClient(reliable.Options{
		Dial:        func() (net.Conn, error) { return s.dialAndHandshake(cfg.Addr) },
		OnAck:       s.onAck,
		MaxInFlight: cfg.MaxInFlight,
		// The replication link retries indefinitely: an unreachable
		// follower is an operating condition (reported as lag and
		// link_down), not a reason to abandon the stream.
		MaxStalls: 1 << 30,
		Seed:      cfg.Seed,
		Logf:      cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	s.client = client
	return s, nil
}

// Run ships records until Stop (or a fencing refusal, which means this
// node was deposed). Call on its own goroutine.
func (s *Sender) Run() {
	defer close(s.done)
	defer s.client.Close()
	var lastScrub time.Time
	for {
		select {
		case <-s.stop:
			// Best-effort final flush so Stop after quiesced traffic
			// leaves nothing behind.
			if s.client.InFlight() > 0 {
				_ = s.client.Flush()
			}
			return
		default:
		}
		if s.isFenced() {
			s.cfg.Logf("replica: sender fenced by follower, stopping")
			return
		}
		n, err := s.shipOnce()
		s.noteErr("ship pass", err)
		if s.cfg.ScrubInterval > 0 {
			if lastScrub.IsZero() {
				// Anchor the first interval at startup; the stream itself
				// handles initial catch-up, so the first scrub can wait.
				lastScrub = time.Now()
			} else if time.Since(lastScrub) >= s.cfg.ScrubInterval {
				lastScrub = time.Now()
				s.scrub()
			}
		}
		if n > 0 {
			continue // keep draining the tail at full speed
		}
		if s.client.InFlight() > 0 {
			s.noteErr("ack pump", s.client.Tick(s.cfg.Poll))
			continue
		}
		select {
		case <-s.kick:
		case <-time.After(s.cfg.Poll):
		case <-s.stop:
		}
	}
}

// Stop signals the ship loop to exit; Wait blocks until it has.
func (s *Sender) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
}

// Wait blocks until Run has returned.
func (s *Sender) Wait() { <-s.done }

// Kick wakes the ship loop early (call after appending records a sync-mode
// handler is about to wait on).
func (s *Sender) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Stats snapshots the sender's counters and computes the replication lag:
// bytes appended locally but not yet follower-durable, summed over
// tenants.
func (s *Sender) Stats() SenderStats {
	ends := make(map[string]int64)
	if tenants, err := s.cfg.Shards.Tenants(); err == nil {
		for _, tenant := range tenants {
			if st, err := s.cfg.Shards.Acquire(tenant); err == nil {
				ends[tenant] = st.End()
				s.cfg.Shards.Release(tenant)
			}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var lag int64
	for tenant, end := range ends {
		durable := s.shippedTo[tenant]
		for e := range s.outstanding[tenant] {
			if e <= durable {
				durable = e - 1
			}
		}
		if d := end - durable; d > 0 {
			lag += d
		}
	}
	return SenderStats{
		Epoch:        s.cfg.Epoch,
		Records:      s.records,
		ScrubShipped: s.scrubShip,
		Scrubs:       s.scrubs,
		ScrubErrors:  s.scrubErrs,
		InFlight:     len(s.inflight),
		LagBytes:     lag,
		Fenced:       s.fenced,
		LinkUp:       s.linkUp,
	}
}

// WaitDurable blocks until every record of the tenant with end offset at
// or below end has been acked by the follower (applied and fsynced there),
// or the timeout passes. This is the sync-replication gate: a server
// handler acks its client only after WaitDurable returns nil, so a synced
// ack proves the frame exists durably on two nodes.
func (s *Sender) WaitDurable(tenant string, end int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	for !s.durableLocked(tenant, end) {
		if s.fenced {
			s.mu.Unlock()
			return ErrFenced
		}
		ch := s.waitCh
		s.mu.Unlock()
		select {
		case <-s.stop:
			return ErrStopped
		default:
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrReplTimeout
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
		case <-s.stop:
			timer.Stop()
			return ErrStopped
		case <-timer.C:
			timer.Stop()
			return ErrReplTimeout
		}
		timer.Stop()
		s.mu.Lock()
	}
	s.mu.Unlock()
	return nil
}

// durableLocked reports whether everything at or below end has been acked.
// Caller holds s.mu.
func (s *Sender) durableLocked(tenant string, end int64) bool {
	if s.shippedTo[tenant] < end {
		return false // not even on the wire yet
	}
	for e := range s.outstanding[tenant] {
		if e <= end {
			return false
		}
	}
	return true
}

// noteErr logs a ship-loop error and recognizes fencing refusals that
// surface asynchronously — e.g. a nack processed by the ack pump after the
// follower was promoted mid-stream.
func (s *Sender) noteErr(context string, err error) {
	if err == nil {
		return
	}
	if isFencedReason(err.Error()) {
		s.setFenced()
	}
	s.cfg.Logf("replica: %s: %v", context, err)
}

func (s *Sender) isFenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

func (s *Sender) setFenced() {
	s.mu.Lock()
	s.fenced = true
	close(s.waitCh)
	s.waitCh = make(chan struct{})
	s.mu.Unlock()
}

// onAck runs on the ship goroutine whenever the follower acks a record.
func (s *Sender) onAck(seq uint64) {
	s.mu.Lock()
	if ref, ok := s.inflight[seq]; ok {
		delete(s.inflight, seq)
		if out := s.outstanding[ref.tenant]; out != nil {
			delete(out, ref.end)
		}
		close(s.waitCh)
		s.waitCh = make(chan struct{})
	}
	s.mu.Unlock()
}

// shipOnce scans every tenant's tail past its cursor and ships what it
// finds, returning how many records went out.
func (s *Sender) shipOnce() (int, error) {
	tenants, err := s.cfg.Shards.Tenants()
	if err != nil {
		return 0, err
	}
	shipped := 0
	for _, tenant := range tenants {
		st, err := s.cfg.Shards.Acquire(tenant)
		if err != nil {
			return shipped, err
		}
		s.mu.Lock()
		cursor := s.next[tenant]
		s.mu.Unlock()
		var recs []store.Record
		if st.End() > cursor {
			recs, err = st.ReadSince(cursor, s.cfg.BatchBytes)
		}
		s.cfg.Shards.Release(tenant)
		if err != nil {
			return shipped, fmt.Errorf("replica: reading %s tail: %w", tenant, err)
		}
		for _, rec := range recs {
			s.mu.Lock()
			prev := s.prevEnd[tenant]
			s.mu.Unlock()
			err := s.ship(Record{
				Epoch: s.cfg.Epoch, Tenant: tenant,
				Seq: rec.Seq, Kind: rec.Kind,
				End: rec.End, Prev: prev,
				CRC: rec.CRC, Payload: rec.Payload,
			}, true)
			if err != nil {
				// The cursor was not advanced; the record is re-read on
				// the next pass.
				return shipped, err
			}
			s.mu.Lock()
			s.next[tenant] = rec.End
			s.prevEnd[tenant] = rec.End
			if rec.End > s.shippedTo[tenant] {
				s.shippedTo[tenant] = rec.End
			}
			s.records++
			s.mu.Unlock()
			shipped++
		}
	}
	return shipped, nil
}

// ship encodes and sends one record. Tracked records join the outstanding
// set (they carry the watermark chain); scrub re-ships are fire-and-ack.
func (s *Sender) ship(rec Record, track bool) error {
	s.mu.Lock()
	s.linkSeq++
	seq := s.linkSeq
	if track {
		s.inflight[seq] = shipRef{tenant: rec.Tenant, end: rec.End}
		out := s.outstanding[rec.Tenant]
		if out == nil {
			out = make(map[int64]struct{})
			s.outstanding[rec.Tenant] = out
		}
		out[rec.End] = struct{}{}
	}
	s.mu.Unlock()
	err := s.client.Send(netproto.Message{
		Kind: netproto.KindReplRecord, Seq: seq, Payload: EncodeRecord(rec),
	})
	if err != nil {
		s.mu.Lock()
		if _, still := s.inflight[seq]; still {
			delete(s.inflight, seq)
			if out := s.outstanding[rec.Tenant]; out != nil {
				delete(out, rec.End)
			}
		}
		s.mu.Unlock()
		if isFencedReason(err.Error()) {
			s.setFenced()
			return fmt.Errorf("%w: %v", ErrFenced, err)
		}
		return err
	}
	return nil
}

// dialAndHandshake is the reliable.Client dial hook: it opens the
// connection and completes the ModeStream handshake before the client's
// reader attaches, seeding the cursors from the follower's watermarks on
// the first successful exchange (later reconnects keep the cursors —
// unacked records are retransmitted by the client, acked ones are durable
// on the follower, so no rewind is ever needed).
func (s *Sender) dialAndHandshake(addr string) (net.Conn, error) {
	select {
	case <-s.stop:
		return nil, ErrStopped
	default:
	}
	if s.isFenced() {
		return nil, ErrFenced
	}
	if addr == "" {
		addr = s.cfg.Addr
	}
	conn, err := s.cfg.DialTo(addr)
	if err != nil {
		s.setLink(false)
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	hello := netproto.Message{
		Kind: netproto.KindReplHello, Seq: netproto.HelloSeq,
		Payload: EncodeHello(Hello{Epoch: s.cfg.Epoch, Mode: ModeStream}),
	}
	if err := netproto.Write(conn, hello); err != nil {
		conn.Close()
		s.setLink(false)
		return nil, err
	}
	for {
		m, err := netproto.Read(conn)
		if err != nil {
			conn.Close()
			s.setLink(false)
			return nil, fmt.Errorf("replica: handshake read: %w", err)
		}
		if m.Seq != netproto.HelloSeq {
			continue // stray frame from a previous connection's buffers
		}
		switch m.Kind {
		case netproto.KindReplAck:
			_, wm, err := DecodeWatermarks(m.Payload)
			if err != nil {
				conn.Close()
				return nil, err
			}
			s.mu.Lock()
			if !s.initialized {
				s.initialized = true
				for tenant, w := range wm {
					s.next[tenant] = w
					s.prevEnd[tenant] = w
					s.shippedTo[tenant] = w
				}
			}
			s.linkUp = true
			s.mu.Unlock()
			conn.SetDeadline(time.Time{})
			return conn, nil
		case netproto.KindNack:
			reason := string(m.Payload)
			conn.Close()
			s.setLink(false)
			if isFencedReason(reason) {
				s.setFenced()
				return nil, fmt.Errorf("%w: %s", ErrFenced, reason)
			}
			return nil, fmt.Errorf("replica: handshake refused: %s", reason)
		}
	}
}

func (s *Sender) setLink(up bool) {
	s.mu.Lock()
	s.linkUp = up
	s.mu.Unlock()
}

// isFencedReason recognizes an epoch-fencing refusal in a nack reason or
// give-up error text.
func isFencedReason(reason string) bool {
	return strings.Contains(reason, "epoch fenced") || strings.Contains(reason, "node promoted")
}

// replQuery runs one request/response hello (digest or manifest) on a
// dedicated short-lived connection — the streaming connection's reader
// belongs to the client, so side-channel queries get their own.
func (s *Sender) replQuery(h Hello) ([]byte, error) {
	conn, err := s.cfg.DialTo(s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	msg := netproto.Message{
		Kind: netproto.KindReplHello, Seq: netproto.HelloSeq, Payload: EncodeHello(h),
	}
	if err := netproto.Write(conn, msg); err != nil {
		return nil, err
	}
	for {
		m, err := netproto.Read(conn)
		if err != nil {
			return nil, err
		}
		if m.Seq != netproto.HelloSeq {
			continue
		}
		switch m.Kind {
		case netproto.KindReplAck:
			return m.Payload, nil
		case netproto.KindNack:
			reason := string(m.Payload)
			if isFencedReason(reason) {
				s.setFenced()
				return nil, fmt.Errorf("%w: %s", ErrFenced, reason)
			}
			return nil, fmt.Errorf("replica: %s query refused: %s", modeName(h.Mode), reason)
		}
	}
}

func modeName(mode byte) string {
	switch mode {
	case ModeStream:
		return "stream"
	case ModeDigest:
		return "digest"
	case ModeManifest:
		return "manifest"
	}
	return "unknown"
}

// scrub runs one anti-entropy pass: compare per-tenant digests, pull the
// manifest for any divergent tenant, and re-ship records the follower is
// missing or holds with a different CRC. Re-ships carry the scrub flag so
// they never disturb the watermark chain. Records still in flight on the
// stream are skipped — they are divergent only because they have not
// landed yet.
func (s *Sender) scrub() {
	s.mu.Lock()
	s.scrubs++
	s.mu.Unlock()
	fail := func(context string, err error) {
		s.mu.Lock()
		s.scrubErrs++
		s.mu.Unlock()
		s.cfg.Logf("replica: scrub %s: %v", context, err)
	}
	raw, err := s.replQuery(Hello{Epoch: s.cfg.Epoch, Mode: ModeDigest})
	if err != nil {
		fail("digest query", err)
		return
	}
	remote, err := DecodeDigests(raw)
	if err != nil {
		fail("digest decode", err)
		return
	}
	local, err := Digests(s.cfg.Shards)
	if err != nil {
		fail("local digests", err)
		return
	}
	for tenant, ld := range local {
		if remote[tenant] == ld {
			continue
		}
		raw, err := s.replQuery(Hello{Epoch: s.cfg.Epoch, Mode: ModeManifest, Tenant: tenant})
		if err != nil {
			fail("manifest query", err)
			return
		}
		entries, err := DecodeManifest(raw)
		if err != nil {
			fail("manifest decode", err)
			return
		}
		theirs := make(map[uint64]uint32, len(entries))
		for _, e := range entries {
			theirs[e.Seq] = e.CRC
		}
		st, err := s.cfg.Shards.Acquire(tenant)
		if err != nil {
			fail("acquire", err)
			return
		}
		for _, info := range st.Manifest() {
			s.mu.Lock()
			settled := s.durableLocked(tenant, info.End)
			s.mu.Unlock()
			if !settled {
				continue // still in flight (or unshipped) on the stream
			}
			if crc, ok := theirs[info.Seq]; ok && crc == info.CRC {
				continue
			}
			payload, kind, err := st.Get(info.Seq)
			if err != nil {
				fail("read divergent record", err)
				continue
			}
			err = s.ship(Record{
				Epoch: s.cfg.Epoch, Scrub: true, Tenant: tenant,
				Seq: info.Seq, Kind: kind, End: info.End,
				CRC: info.CRC, Payload: payload,
			}, false)
			if err != nil {
				fail("re-ship", err)
				break
			}
			s.mu.Lock()
			s.scrubShip++
			s.mu.Unlock()
		}
		s.cfg.Shards.Release(tenant)
	}
}
