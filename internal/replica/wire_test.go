package replica

import (
	"errors"
	"os"
	"reflect"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	in := Record{
		Epoch: 3, Scrub: true, Tenant: "tenant07",
		Seq: 0xdeadbeefcafe, Kind: 2,
		End: 123456, Prev: 98765,
		CRC: 0xabad1dea, Payload: []byte("point cloud bits"),
	}
	out, err := DecodeRecord(EncodeRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestRecordDecodeRejectsTruncation(t *testing.T) {
	full := EncodeRecord(Record{Epoch: 1, Tenant: "t", Seq: 9, End: 10, Payload: []byte("x")})
	// Any cut inside the fixed header must fail loudly, not panic.
	for cut := 0; cut < recordFixed; cut++ {
		if _, err := DecodeRecord(full[:cut]); !errors.Is(err, ErrMalformed) {
			t.Fatalf("cut at %d: got %v, want ErrMalformed", cut, err)
		}
	}
	if _, err := DecodeRecord(EncodeRecord(Record{Epoch: 1, Tenant: "", Seq: 1})); !errors.Is(err, ErrMalformed) {
		t.Fatal("empty tenant accepted")
	}
}

func TestHelloRoundTripAndValidation(t *testing.T) {
	for _, in := range []Hello{
		{Epoch: 0, Mode: ModeStream},
		{Epoch: 9, Mode: ModeDigest},
		{Epoch: 255, Mode: ModeManifest, Tenant: "tenant00"},
	} {
		out, err := DecodeHello(EncodeHello(in))
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip mismatch: in %+v out %+v", in, out)
		}
	}
	if _, err := DecodeHello(EncodeHello(Hello{Mode: ModeManifest})); !errors.Is(err, ErrMalformed) {
		t.Fatal("manifest hello without tenant accepted")
	}
	if _, err := DecodeHello([]byte{0, 7, 0}); !errors.Is(err, ErrMalformed) {
		t.Fatal("unknown mode accepted")
	}
}

func TestWatermarksRoundTrip(t *testing.T) {
	in := map[string]int64{"tenant00": 0, "tenant01": 1 << 40, "x": 17}
	epoch, out, err := DecodeWatermarks(EncodeWatermarks(7, in))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: epoch %d, %v", epoch, out)
	}
}

func TestDigestsAndManifestRoundTrip(t *testing.T) {
	din := map[string]Digest{
		"a": {Count: 12, XorCRC: 0x1234},
		"b": {Count: 0, XorCRC: 0},
	}
	dout, err := DecodeDigests(EncodeDigests(din))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(din, dout) {
		t.Fatalf("digest mismatch: %v", dout)
	}
	min := []ManifestEntry{{Seq: 1, CRC: 2}, {Seq: 1 << 50, CRC: 0xffffffff}}
	mout, err := DecodeManifest(EncodeManifest(min))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(min, mout) {
		t.Fatalf("manifest mismatch: %v", mout)
	}
	if _, err := DecodeManifest(EncodeManifest(min)[:10]); !errors.Is(err, ErrMalformed) {
		t.Fatal("truncated manifest accepted")
	}
}

func TestMetaRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	// Missing file: zero meta, no error.
	m, err := LoadMeta(dir)
	if err != nil || m.Epoch != 0 || len(m.Watermarks) != 0 {
		t.Fatalf("fresh dir: %+v, %v", m, err)
	}
	want := Meta{Epoch: 5, Watermarks: map[string]int64{"tenant00": 4096, "tenant01": 0}}
	if err := SaveMeta(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || !reflect.DeepEqual(got.Watermarks, want.Watermarks) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// A corrupt file degrades to the zero meta (idempotent re-ship), never
	// to an error or a bogus watermark.
	if err := writeFileCorrupt(MetaPath(dir)); err != nil {
		t.Fatal(err)
	}
	got, err = LoadMeta(dir)
	if err != nil || got.Epoch != 0 || len(got.Watermarks) != 0 {
		t.Fatalf("corrupt meta: %+v, %v", got, err)
	}
}

func TestPromoteBumpsEpoch(t *testing.T) {
	dir := t.TempDir()
	if err := SaveMeta(dir, Meta{Epoch: 2, Watermarks: map[string]int64{"t": 9}}); err != nil {
		t.Fatal(err)
	}
	epoch, err := Promote(dir)
	if err != nil || epoch != 3 {
		t.Fatalf("promote: %d, %v", epoch, err)
	}
	m, err := LoadMeta(dir)
	if err != nil || m.Epoch != 3 || m.Watermarks["t"] != 9 {
		t.Fatalf("after promote: %+v, %v", m, err)
	}
}

// writeFileCorrupt flips a byte in the middle of the file.
func writeFileCorrupt(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	raw[8] ^= 0x5a
	return os.WriteFile(path, raw, 0o644)
}
