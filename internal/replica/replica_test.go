package replica

import (
	"context"
	"errors"
	"hash/crc32"
	"net"
	"path/filepath"
	"testing"
	"time"

	"dbgc/internal/netproto"
	"dbgc/internal/reliable"
	"dbgc/internal/store"
)

// follower bundles the receiver side of a live replication pair.
type follower struct {
	t        *testing.T
	dir      string
	shards   *store.Shards
	group    *store.Group
	receiver *Receiver
	srv      *reliable.Server
	addr     string
}

func startFollower(t *testing.T, dir string) *follower {
	t.Helper()
	shards, err := store.OpenShards(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	group := store.NewGroup(0)
	recv, err := NewReceiver(shards, group, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := reliable.NewServer(reliable.ServerConfig{
		Handle: func(tenant string, m netproto.Message) error {
			st, err := shards.Acquire(tenant)
			if err != nil {
				return err
			}
			defer shards.Release(tenant)
			if err := st.Put(m.Seq, store.KindCompressed, m.Payload); err != nil {
				return err
			}
			return group.Commit(st)
		},
		ReplHello:  recv.HandleHello,
		ReplRecord: recv.HandleRecord,
		NotReady:   recv.NotReady,
		Logf:       t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return &follower{
		t: t, dir: dir, shards: shards, group: group,
		receiver: recv, srv: srv, addr: ln.Addr().String(),
	}
}

func (f *follower) stop() {
	ctx, cancel := timeoutCtx()
	defer cancel()
	f.srv.Shutdown(ctx)
	if err := f.receiver.Close(); err != nil {
		f.t.Errorf("receiver close: %v", err)
	}
	f.group.Close()
	f.shards.SyncAll()
	f.shards.Close()
}

func timeoutCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

// primaryShards opens a primary-side shard set with a running sender
// pointed at the follower.
func startSender(t *testing.T, shards *store.Shards, addr string, epoch byte, scrub time.Duration) *Sender {
	t.Helper()
	s, err := NewSender(SenderConfig{
		Shards: shards,
		Addr:   addr,
		DialTo: func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, 2*time.Second) },
		Epoch:  epoch,
		Poll:   time.Millisecond,
		// Tests that exercise the scrub pass a short interval; 0 disables.
		ScrubInterval: scrub,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go s.Run()
	return s
}

// appendFrame appends one frame to a tenant shard and returns its end.
func appendFrame(t *testing.T, shards *store.Shards, tenant string, seq uint64, payload []byte) int64 {
	t.Helper()
	st, err := shards.Acquire(tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Release(tenant)
	end, err := st.Append(seq, store.KindCompressed, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	return end
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationStreamsAndSyncWaits covers the basic contract: records
// appended on the primary arrive on the follower, WaitDurable returns once
// they are follower-durable, and the follower's cold-reopened store holds
// byte-identical payloads.
func TestReplicationStreamsAndSyncWaits(t *testing.T) {
	f := startFollower(t, t.TempDir())
	pdir := t.TempDir()
	shards, err := store.OpenShards(pdir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Close()
	s := startSender(t, shards, f.addr, 0, 0)
	defer func() { s.Stop(); s.Wait() }()

	var lastEnd int64
	for seq := uint64(0); seq < 20; seq++ {
		lastEnd = appendFrame(t, shards, "tenant00", seq, []byte{byte(seq), 1, 2, 3})
		appendFrame(t, shards, "tenant01", seq, []byte{byte(seq), 9})
	}
	s.Kick()
	if err := s.WaitDurable("tenant00", lastEnd, 10*time.Second); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	waitFor(t, "tenant01 watermark", func() bool {
		st, err := shards.Acquire("tenant01")
		if err != nil {
			return false
		}
		end := st.End()
		shards.Release("tenant01")
		return f.receiver.Watermark("tenant01") >= end
	})
	if got := f.receiver.Watermark("tenant00"); got < lastEnd {
		t.Fatalf("tenant00 watermark %d < %d", got, lastEnd)
	}

	f.stop()
	// Cold reopen: every record must be there, intact.
	for _, tenant := range []string{"tenant00", "tenant01"} {
		st, err := store.Open(filepath.Join(f.dir, tenant+".db"))
		if err != nil {
			t.Fatal(err)
		}
		if st.Len() != 20 {
			t.Fatalf("%s: %d records, want 20", tenant, st.Len())
		}
		payload, _, err := st.Get(7)
		if err != nil || payload[0] != 7 {
			t.Fatalf("%s seq 7: %v %v", tenant, payload, err)
		}
		st.Close()
	}
}

// TestFollowerRestartCatchUp stops the follower mid-stream, appends more
// on the primary, restarts the follower, and expects the persisted
// watermarks to bound the catch-up: everything converges, nothing is lost.
func TestFollowerRestartCatchUp(t *testing.T) {
	fdir := t.TempDir()
	f := startFollower(t, fdir)
	pdir := t.TempDir()
	shards, err := store.OpenShards(pdir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Close()

	s := startSender(t, shards, f.addr, 0, 0)
	var end int64
	for seq := uint64(0); seq < 10; seq++ {
		end = appendFrame(t, shards, "tenant00", seq, []byte{byte(seq)})
	}
	s.Kick()
	if err := s.WaitDurable("tenant00", end, 10*time.Second); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	s.Stop()
	s.Wait()
	f.stop()

	// The follower comes back on a new port with its watermarks intact;
	// a fresh sender must seed its cursors from them and ship the gap.
	for seq := uint64(10); seq < 25; seq++ {
		end = appendFrame(t, shards, "tenant00", seq, []byte{byte(seq)})
	}
	f2 := startFollower(t, fdir)
	if w := f2.receiver.Watermark("tenant00"); w <= 0 {
		t.Fatalf("restarted follower lost its watermark: %d", w)
	}
	s2 := startSender(t, shards, f2.addr, 0, 0)
	s2.Kick()
	if err := s2.WaitDurable("tenant00", end, 10*time.Second); err != nil {
		t.Fatalf("catch-up: %v", err)
	}
	s2.Stop()
	s2.Wait()
	f2.stop()

	st, err := store.Open(filepath.Join(fdir, "tenant00.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 25 {
		t.Fatalf("follower has %d records, want 25", st.Len())
	}
	for seq := uint64(0); seq < 25; seq++ {
		payload, _, err := st.Get(seq)
		if err != nil || payload[0] != byte(seq) {
			t.Fatalf("seq %d: %v %v", seq, payload, err)
		}
	}
}

// TestPromotionFencesOldPrimary promotes the follower and expects (a) a
// sender still on the old epoch to be fenced, and (b) direct records from
// the old epoch to be rejected.
func TestPromotionFencesOldPrimary(t *testing.T) {
	f := startFollower(t, t.TempDir())
	defer f.stop()
	pdir := t.TempDir()
	shards, err := store.OpenShards(pdir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Close()

	s := startSender(t, shards, f.addr, 0, 0)
	defer func() { s.Stop(); s.Wait() }()
	end := appendFrame(t, shards, "tenant00", 1, []byte("a"))
	s.Kick()
	if err := s.WaitDurable("tenant00", end, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	epoch, err := f.receiver.Promote()
	if err != nil || epoch != 1 {
		t.Fatalf("promote: %d, %v", epoch, err)
	}
	// Old-epoch record straight into the handler: fenced.
	rec := Record{Epoch: 0, Tenant: "tenant00", Seq: 2, End: end + 100, Prev: end,
		CRC: crc32.Checksum([]byte("b"), castagnoli), Payload: []byte("b")}
	err = f.receiver.HandleRecord(netproto.Message{Kind: netproto.KindReplRecord, Seq: 1, Payload: EncodeRecord(rec)})
	if !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("old-epoch record: %v, want ErrEpochFenced", err)
	}
	// The running sender trips over the fence as soon as it ships again.
	appendFrame(t, shards, "tenant00", 3, []byte("c"))
	s.Kick()
	waitFor(t, "sender fenced", func() bool { return s.Stats().Fenced })
	// Promotion also opens the node to client traffic.
	if _, _, refuse := f.receiver.NotReady(); refuse {
		t.Fatal("promoted follower still refusing clients")
	}
}

// TestReceiverWatermarkChain drives HandleRecord out of order and expects
// the watermark to advance only when the prev chain closes — no holes
// under the watermark, ever.
func TestReceiverWatermarkChain(t *testing.T) {
	shards, err := store.OpenShards(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Close()
	recv, err := NewReceiver(shards, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(seq uint64, prev, end int64, payload string) netproto.Message {
		return netproto.Message{Kind: netproto.KindReplRecord, Seq: seq, Payload: EncodeRecord(Record{
			Epoch: 0, Tenant: "t", Seq: seq, Kind: store.KindCompressed,
			End: end, Prev: prev,
			CRC: crc32.Checksum([]byte(payload), castagnoli), Payload: []byte(payload),
		})}
	}
	// Records 1,2,3 cover (0,10], (10,20], (20,30]; 3 and 2 arrive before 1.
	if err := recv.HandleRecord(mk(3, 20, 30, "c")); err != nil {
		t.Fatal(err)
	}
	if w := recv.Watermark("t"); w != 0 {
		t.Fatalf("watermark %d after out-of-order record, want 0", w)
	}
	if err := recv.HandleRecord(mk(2, 10, 20, "b")); err != nil {
		t.Fatal(err)
	}
	if w := recv.Watermark("t"); w != 0 {
		t.Fatalf("watermark %d with chain still open, want 0", w)
	}
	if err := recv.HandleRecord(mk(1, 0, 10, "a")); err != nil {
		t.Fatal(err)
	}
	if w := recv.Watermark("t"); w != 30 {
		t.Fatalf("watermark %d after chain closed, want 30", w)
	}
	// A corrupt payload (CRC mismatch) must be rejected before apply.
	bad := Record{Epoch: 0, Tenant: "t", Seq: 4, End: 40, Prev: 30,
		CRC: 0x1234, Payload: []byte("corrupt")}
	if err := recv.HandleRecord(netproto.Message{Kind: netproto.KindReplRecord, Seq: 4, Payload: EncodeRecord(bad)}); err == nil {
		t.Fatal("crc-mismatched record applied")
	}
	if got := recv.Stats().Rejected; got != 1 {
		t.Fatalf("rejected count %d, want 1", got)
	}
}

// TestScrubRepairsDivergence silently corrupts a record on the follower
// and expects the anti-entropy scrub to detect the digest mismatch and
// re-ship the original — without moving the watermark.
func TestScrubRepairsDivergence(t *testing.T) {
	f := startFollower(t, t.TempDir())
	defer f.stop()
	pdir := t.TempDir()
	shards, err := store.OpenShards(pdir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer shards.Close()

	s := startSender(t, shards, f.addr, 0, 30*time.Millisecond)
	defer func() { s.Stop(); s.Wait() }()
	var end int64
	for seq := uint64(0); seq < 5; seq++ {
		end = appendFrame(t, shards, "tenant00", seq, []byte{0xa0 | byte(seq)})
	}
	s.Kick()
	if err := s.WaitDurable("tenant00", end, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	wmBefore := f.receiver.Watermark("tenant00")

	// Diverge the follower: shadow seq 2 with garbage, durably.
	st, err := f.shards.Acquire("tenant00")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(2, store.KindCompressed, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	f.shards.Release("tenant00")

	waitFor(t, "scrub repair", func() bool {
		st, err := f.shards.Acquire("tenant00")
		if err != nil {
			return false
		}
		payload, _, gerr := st.Get(2)
		f.shards.Release("tenant00")
		return gerr == nil && len(payload) == 1 && payload[0] == 0xa2
	})
	if got := s.Stats().ScrubShipped; got == 0 {
		t.Fatal("scrub repaired without counting a re-ship")
	}
	if w := f.receiver.Watermark("tenant00"); w != wmBefore {
		t.Fatalf("scrub moved the watermark: %d → %d", wmBefore, w)
	}
	if f.receiver.Stats().Scrubbed == 0 {
		t.Fatal("receiver did not count the scrub apply")
	}
}

// TestUnpromotedFollowerRefusesClients exercises the NotReady gate over a
// real connection: a tenant client bounces off the follower busy, and the
// same client succeeds after promotion.
func TestUnpromotedFollowerRefusesClients(t *testing.T) {
	f := startFollower(t, t.TempDir())
	defer f.stop()

	dial := func() (net.Conn, error) { return net.DialTimeout("tcp", f.addr, 2*time.Second) }
	cli, err := reliable.NewClient(reliable.Options{
		Dial: dial, Tenant: "tenant00",
		AckTimeout:  500 * time.Millisecond,
		BusyRetries: 2, MaxStalls: 3,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 1, Payload: []byte("x")}); err == nil {
		if err := cli.Close(); err == nil {
			t.Fatal("unpromoted follower accepted a client frame")
		}
	}

	if _, err := f.receiver.Promote(); err != nil {
		t.Fatal(err)
	}
	cli2, err := reliable.NewClient(reliable.Options{Dial: dial, Tenant: "tenant00", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli2.Send(netproto.Message{Kind: netproto.KindCompressed, Seq: 1, Payload: []byte("x")}); err != nil {
		t.Fatalf("promoted follower refused a client frame: %v", err)
	}
	if err := cli2.Close(); err != nil {
		t.Fatal(err)
	}
}
