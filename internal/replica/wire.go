// Package replica implements primary→follower replication of the frame
// stores: the primary tails every tenant shard and streams records to a
// follower over the netproto replication dialect (KindReplHello /
// KindReplRecord / KindReplAck), the follower verifies each record's
// CRC32-C, applies it, makes it durable, and acks.
//
// # Epoch fencing
//
// Every replication payload starts with an epoch byte. Promotion bumps the
// follower's epoch, and a receiver refuses hellos and records from an
// older epoch — a deposed primary that comes back cannot overwrite a
// promoted follower.
//
// # Watermarks
//
// The follower tracks, per tenant, a contiguous watermark W: the primary-
// segment end offset below which every record has been applied and made
// durable. Each shipped record carries its own end offset and the end
// offset of its predecessor (the prev chain); W advances only when a
// record's prev is at or below W, so retransmit-induced reordering can
// never open a hole under the watermark. Out-of-order arrivals are parked
// and drained once the chain closes. After a follower restart the primary
// restarts its cursors at the watermarks the follower reports in the
// stream handshake — anything above W is re-shipped, and re-application is
// idempotent (the store's last-Put-wins shadowing).
//
// # Anti-entropy scrub
//
// Periodically the primary asks the follower for per-tenant digests
// (record count + XOR of record CRCs) and, where they diverge, full
// manifests (seq, crc per record); divergent or missing records are
// re-shipped with the scrub flag set, which applies and acks but does not
// move the watermark.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Hello modes.
const (
	// ModeStream opens a replication stream; the response carries the
	// follower's per-tenant watermarks so the sender can start its cursors
	// where the follower left off.
	ModeStream byte = 0
	// ModeDigest asks for per-tenant digests (anti-entropy, cheap pass).
	ModeDigest byte = 1
	// ModeManifest asks for one tenant's full record manifest
	// (anti-entropy, expensive pass over a divergent tenant).
	ModeManifest byte = 2
)

// FlagScrub marks a record re-shipped by the anti-entropy scrub: the
// follower applies and acks it but does not advance the watermark, since
// scrub traffic is outside the prev chain.
const FlagScrub byte = 1 << 0

// ErrMalformed reports an undecodable replication payload.
var ErrMalformed = errors.New("replica: malformed payload")

// ErrEpochFenced reports a hello or record from an epoch older than the
// receiver's — the sender is a deposed primary and must stop.
var ErrEpochFenced = errors.New("replica: epoch fenced")

// Record is one replicated store record plus its chain metadata. End and
// Prev are primary-segment offsets: End is the record's end offset, Prev
// the end offset of the previously shipped record for the same tenant.
type Record struct {
	Epoch   byte
	Scrub   bool
	Tenant  string
	Seq     uint64
	Kind    byte
	End     int64
	Prev    int64
	CRC     uint32 // crc32c of Payload, identical to the store header CRC
	Payload []byte
}

// Record payload layout:
// epoch(1) | flags(1) | nameLen(1) | name | seq(8) | kind(1) | end(8) |
// prev(8) | crc(4) | payload.
const recordFixed = 1 + 1 + 1 + 8 + 1 + 8 + 8 + 4

// EncodeRecord serializes r for a KindReplRecord frame.
func EncodeRecord(r Record) []byte {
	buf := make([]byte, 0, recordFixed+len(r.Tenant)+len(r.Payload))
	var flags byte
	if r.Scrub {
		flags |= FlagScrub
	}
	buf = append(buf, r.Epoch, flags, byte(len(r.Tenant)))
	buf = append(buf, r.Tenant...)
	buf = appendU64(buf, r.Seq)
	buf = append(buf, r.Kind)
	buf = appendU64(buf, uint64(r.End))
	buf = appendU64(buf, uint64(r.Prev))
	buf = appendU32(buf, r.CRC)
	return append(buf, r.Payload...)
}

// DecodeRecord parses a KindReplRecord payload.
func DecodeRecord(p []byte) (Record, error) {
	if len(p) < 3 {
		return Record{}, fmt.Errorf("%w: record header", ErrMalformed)
	}
	r := Record{Epoch: p[0], Scrub: p[1]&FlagScrub != 0}
	nameLen := int(p[2])
	rest := p[3:]
	if len(rest) < nameLen+recordFixed-3 {
		return Record{}, fmt.Errorf("%w: record truncated", ErrMalformed)
	}
	r.Tenant = string(rest[:nameLen])
	rest = rest[nameLen:]
	r.Seq = binary.LittleEndian.Uint64(rest)
	r.Kind = rest[8]
	r.End = int64(binary.LittleEndian.Uint64(rest[9:]))
	r.Prev = int64(binary.LittleEndian.Uint64(rest[17:]))
	r.CRC = binary.LittleEndian.Uint32(rest[25:])
	r.Payload = rest[29:]
	if r.Tenant == "" {
		return Record{}, fmt.Errorf("%w: empty tenant", ErrMalformed)
	}
	return r, nil
}

// Hello is a replication handshake request.
type Hello struct {
	Epoch  byte
	Mode   byte
	Tenant string // ModeManifest only
}

// EncodeHello serializes h for a KindReplHello frame:
// epoch(1) | mode(1) | nameLen(1) | name.
func EncodeHello(h Hello) []byte {
	buf := make([]byte, 0, 3+len(h.Tenant))
	buf = append(buf, h.Epoch, h.Mode, byte(len(h.Tenant)))
	return append(buf, h.Tenant...)
}

// DecodeHello parses a KindReplHello payload.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) < 3 {
		return Hello{}, fmt.Errorf("%w: hello header", ErrMalformed)
	}
	h := Hello{Epoch: p[0], Mode: p[1]}
	nameLen := int(p[2])
	if len(p) < 3+nameLen {
		return Hello{}, fmt.Errorf("%w: hello truncated", ErrMalformed)
	}
	h.Tenant = string(p[3 : 3+nameLen])
	if h.Mode > ModeManifest {
		return Hello{}, fmt.Errorf("%w: hello mode %d", ErrMalformed, h.Mode)
	}
	if h.Mode == ModeManifest && h.Tenant == "" {
		return Hello{}, fmt.Errorf("%w: manifest hello without tenant", ErrMalformed)
	}
	return h, nil
}

// EncodeWatermarks serializes a stream-handshake response: the follower's
// epoch and per-tenant watermarks.
// Layout: epoch(1) | count(2) | entries of nameLen(1)|name|wm(8).
func EncodeWatermarks(epoch byte, wm map[string]int64) []byte {
	buf := make([]byte, 0, 3+len(wm)*16)
	buf = append(buf, epoch)
	buf = appendU16(buf, uint16(len(wm)))
	for name, w := range wm {
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = appendU64(buf, uint64(w))
	}
	return buf
}

// DecodeWatermarks parses a stream-handshake response.
func DecodeWatermarks(p []byte) (epoch byte, wm map[string]int64, err error) {
	if len(p) < 3 {
		return 0, nil, fmt.Errorf("%w: watermarks header", ErrMalformed)
	}
	epoch = p[0]
	count := int(binary.LittleEndian.Uint16(p[1:]))
	wm = make(map[string]int64, count)
	rest := p[3:]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return 0, nil, fmt.Errorf("%w: watermark entry", ErrMalformed)
		}
		nameLen := int(rest[0])
		if len(rest) < 1+nameLen+8 {
			return 0, nil, fmt.Errorf("%w: watermark entry truncated", ErrMalformed)
		}
		name := string(rest[1 : 1+nameLen])
		wm[name] = int64(binary.LittleEndian.Uint64(rest[1+nameLen:]))
		rest = rest[1+nameLen+8:]
	}
	return epoch, wm, nil
}

// Digest summarizes one tenant's live records for the cheap anti-entropy
// pass: equal digests mean (with overwhelming probability) equal stores.
type Digest struct {
	Count  uint64 // live records
	XorCRC uint32 // XOR of every live record's payload CRC32-C
}

// EncodeDigests serializes a ModeDigest response:
// count(2) | entries of nameLen(1)|name|count(8)|xor(4).
func EncodeDigests(d map[string]Digest) []byte {
	buf := make([]byte, 0, 2+len(d)*20)
	buf = appendU16(buf, uint16(len(d)))
	for name, dg := range d {
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = appendU64(buf, dg.Count)
		buf = appendU32(buf, dg.XorCRC)
	}
	return buf
}

// DecodeDigests parses a ModeDigest response.
func DecodeDigests(p []byte) (map[string]Digest, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("%w: digests header", ErrMalformed)
	}
	count := int(binary.LittleEndian.Uint16(p))
	out := make(map[string]Digest, count)
	rest := p[2:]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return nil, fmt.Errorf("%w: digest entry", ErrMalformed)
		}
		nameLen := int(rest[0])
		if len(rest) < 1+nameLen+12 {
			return nil, fmt.Errorf("%w: digest entry truncated", ErrMalformed)
		}
		name := string(rest[1 : 1+nameLen])
		out[name] = Digest{
			Count:  binary.LittleEndian.Uint64(rest[1+nameLen:]),
			XorCRC: binary.LittleEndian.Uint32(rest[1+nameLen+8:]),
		}
		rest = rest[1+nameLen+12:]
	}
	return out, nil
}

// ManifestEntry identifies one live record for the manifest diff.
type ManifestEntry struct {
	Seq uint64
	CRC uint32
}

// EncodeManifest serializes a ModeManifest response:
// count(4) | entries of seq(8)|crc(4).
func EncodeManifest(entries []ManifestEntry) []byte {
	buf := make([]byte, 0, 4+len(entries)*12)
	buf = appendU32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = appendU64(buf, e.Seq)
		buf = appendU32(buf, e.CRC)
	}
	return buf
}

// DecodeManifest parses a ModeManifest response.
func DecodeManifest(p []byte) ([]ManifestEntry, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: manifest header", ErrMalformed)
	}
	count := int(binary.LittleEndian.Uint32(p))
	if len(p) < 4+count*12 {
		return nil, fmt.Errorf("%w: manifest truncated", ErrMalformed)
	}
	out := make([]ManifestEntry, count)
	for i := range out {
		off := 4 + i*12
		out[i] = ManifestEntry{
			Seq: binary.LittleEndian.Uint64(p[off:]),
			CRC: binary.LittleEndian.Uint32(p[off+8:]),
		}
	}
	return out, nil
}

func appendU16(b []byte, v uint16) []byte {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}
