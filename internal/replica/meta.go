package replica

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// MetaName is the replication metadata file inside a store directory. It
// deliberately lacks the .db extension so store.Shards never mistakes it
// for a tenant segment.
const MetaName = "replica.meta"

// metaMagic guards against reading some other file as replication
// metadata.
var metaMagic = [4]byte{'D', 'B', 'G', 'R'}

const metaVersion byte = 1

// Meta is the durable replication state of a node: its epoch and, on a
// follower, the per-tenant applied watermarks.
//
// The watermark invariant: Meta is persisted only after the records below
// each watermark have been group-committed, so the saved watermark never
// exceeds durable data. A crash between applies and the next save only
// makes the watermark stale — the primary re-ships the gap and re-apply is
// idempotent.
type Meta struct {
	Epoch      byte
	Watermarks map[string]int64
}

// MetaPath returns the metadata path for a store directory.
func MetaPath(dir string) string { return filepath.Join(dir, MetaName) }

// LoadMeta reads a directory's replication metadata. A missing or corrupt
// file yields the zero Meta (epoch 0, no watermarks) without error — the
// consequence is idempotent re-shipping, not data loss.
func LoadMeta(dir string) (Meta, error) {
	m := Meta{Watermarks: map[string]int64{}}
	raw, err := os.ReadFile(MetaPath(dir))
	if os.IsNotExist(err) {
		return m, nil
	} else if err != nil {
		return m, err
	}
	// Layout: magic(4) | version(1) | epoch(1) | count(2) | entries of
	// nameLen(1)|name|wm(8) | crc32c of everything before it (4).
	if len(raw) < 12 || string(raw[:4]) != string(metaMagic[:]) || raw[4] != metaVersion {
		return Meta{Watermarks: map[string]int64{}}, nil
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return Meta{Watermarks: map[string]int64{}}, nil
	}
	m.Epoch = raw[5]
	count := int(binary.LittleEndian.Uint16(raw[6:]))
	rest := raw[8 : len(raw)-4]
	for i := 0; i < count; i++ {
		if len(rest) < 1 {
			return Meta{Epoch: m.Epoch, Watermarks: map[string]int64{}}, nil
		}
		nameLen := int(rest[0])
		if len(rest) < 1+nameLen+8 {
			return Meta{Epoch: m.Epoch, Watermarks: map[string]int64{}}, nil
		}
		m.Watermarks[string(rest[1:1+nameLen])] = int64(binary.LittleEndian.Uint64(rest[1+nameLen:]))
		rest = rest[1+nameLen+8:]
	}
	return m, nil
}

// SaveMeta atomically replaces a directory's replication metadata:
// write-to-temp, fsync, rename, fsync directory — a crash leaves either
// the old file or the new one, never a torn mix.
func SaveMeta(dir string, m Meta) error {
	buf := make([]byte, 0, 8+len(m.Watermarks)*16)
	buf = append(buf, metaMagic[:]...)
	buf = append(buf, metaVersion, m.Epoch)
	buf = appendU16(buf, uint16(len(m.Watermarks)))
	for name, w := range m.Watermarks {
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = appendU64(buf, uint64(w))
	}
	buf = appendU32(buf, crc32.Checksum(buf, castagnoli))

	tmp := MetaPath(dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, MetaPath(dir)); err != nil {
		return err
	}
	return syncDir(dir)
}

// Promote bumps the epoch in a directory's metadata and persists it,
// returning the new epoch. Used by the -promote flag at startup; running
// processes promote through Receiver.Promote.
func Promote(dir string) (byte, error) {
	m, err := LoadMeta(dir)
	if err != nil {
		return 0, err
	}
	if m.Epoch == ^byte(0) {
		return 0, fmt.Errorf("replica: epoch exhausted")
	}
	m.Epoch++
	if err := SaveMeta(dir, m); err != nil {
		return 0, err
	}
	return m.Epoch, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)
