// Package quadtree implements the 2D quadtree coder used by DBGC's
// optimized outlier compression (§3.6). Outliers are far points spread over
// the xy-plane with a small z-range, so DBGC codes (x, y) with a quadtree
// and carries z as a delta-encoded attribute; this package provides the
// quadtree part.
package quadtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/blockpack"
	"dbgc/internal/declimits"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed quadtree stream.
var ErrCorrupt = errors.New("quadtree: corrupt stream")

const maxDepth = 48

// Point2 is a point in the xy-plane.
type Point2 struct {
	X, Y float64
}

// Encoded is the output of Encode.
type Encoded struct {
	// Data is the self-contained bit stream.
	Data []byte
	// DecodedOrder maps decoded position j to the input index whose
	// point it reconstructs.
	DecodedOrder []int
}

// EncodeOptions tunes Encode.
type EncodeOptions struct {
	// Shards splits the occupancy and count entropy streams into this many
	// independently-coded shards (container v3). Values <= 1 keep the
	// legacy single-coder streams.
	Shards int
	// BlockPack codes the leaf count stream with the blockpack codec in the
	// shard framing (container v4) and moves the occupancy stream into the
	// sharded framing. Off keeps v2/v3 bytes unchanged.
	BlockPack bool
	// Parallel encodes the shards of a sharded stream concurrently.
	Parallel bool
}

// Encode compresses the 2D points so each reconstructed coordinate is
// within q of the original on both dimensions.
func Encode(points []Point2, q float64) (Encoded, error) {
	return EncodeWith(points, q, EncodeOptions{})
}

// EncodeWith is Encode with explicit options.
func EncodeWith(points []Point2, q float64, opts EncodeOptions) (Encoded, error) {
	if q <= 0 {
		return Encoded{}, fmt.Errorf("quadtree: error bound must be positive, got %v", q)
	}
	var enc Encoded
	out := make([]byte, 0, 64)
	out = varint.AppendUint(out, uint64(len(points)))
	if len(points) == 0 {
		enc.Data = out
		return enc, nil
	}

	minX, minY := points[0].X, points[0].Y
	maxX, maxY := minX, minY
	for _, p := range points[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	extent := math.Max(maxX-minX, maxY-minY)
	depth := 0
	if extent > 2*q {
		depth = int(math.Ceil(math.Log2(extent / (2 * q))))
		if depth > maxDepth {
			depth = maxDepth
		}
	}
	// Pad so leaf cells measure exactly 2q regardless of cloud extent.
	side := 2 * q * math.Pow(2, float64(depth))
	if side < extent {
		side = extent
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(minX))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(minY))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(side))
	out = varint.AppendUint(out, uint64(depth))

	type cell struct {
		pts        []int32
		cx, cy, hh float64
		parent     byte
	}
	all := make([]int32, len(points))
	for i := range all {
		all[i] = int32(i)
	}
	half := side / 2
	level := []cell{{pts: all, cx: minX + half, cy: minY + half, hh: half}}
	var occ, parents []byte
	for d := 0; d < depth; d++ {
		next := make([]cell, 0, len(level)*2)
		for _, cl := range level {
			var buckets [4][]int32
			for _, idx := range cl.pts {
				c := 0
				if points[idx].X >= cl.cx {
					c |= 1
				}
				if points[idx].Y >= cl.cy {
					c |= 2
				}
				buckets[c] = append(buckets[c], idx)
			}
			var code byte
			qh := cl.hh / 2
			for c := 0; c < 4; c++ {
				if len(buckets[c]) == 0 {
					continue
				}
				code |= 1 << uint(c)
			}
			for c := 0; c < 4; c++ {
				if len(buckets[c]) == 0 {
					continue
				}
				next = append(next, cell{
					pts:    buckets[c],
					cx:     childOff(cl.cx, qh, c&1 != 0),
					cy:     childOff(cl.cy, qh, c&2 != 0),
					hh:     qh,
					parent: code,
				})
			}
			occ = append(occ, code)
			parents = append(parents, cl.parent)
		}
		level = next
	}

	counts := make([]uint64, 0, len(level))
	order := make([]int, 0, len(points))
	for _, leaf := range level {
		counts = append(counts, uint64(len(leaf.pts)))
		for _, idx := range leaf.pts {
			order = append(order, int(idx))
		}
	}
	enc.DecodedOrder = order

	var occStream, countStream []byte
	if opts.Shards > 1 || opts.BlockPack {
		occStream = arith.AppendCompressCodesSharded(nil, occ, 16, opts.Shards, opts.Parallel)
		if opts.BlockPack {
			countStream = blockpack.PackUint64Sharded(nil, counts, opts.Shards, opts.Parallel)
		} else {
			countStream = arith.AppendCompressUintsSharded(nil, counts, opts.Shards, opts.Parallel)
		}
	} else {
		occStream = compressCodes(occ, parents)
		countStream = arith.CompressUints(counts)
	}
	out = varint.AppendUint(out, uint64(len(occ)))
	out = varint.AppendUint(out, uint64(len(occStream)))
	out = append(out, occStream...)
	out = varint.AppendUint(out, uint64(len(counts)))
	out = varint.AppendUint(out, uint64(len(countStream)))
	out = append(out, countStream...)
	enc.Data = out
	return enc, nil
}

func childOff(c, qh float64, hi bool) float64 {
	if hi {
		return c + qh
	}
	return c - qh
}

// compressCodes arithmetic-codes the occupancy sequence with a single
// adaptive model. (Parent-code contexts were measured to cost ~1.5% here:
// outlier occupancy streams are dominated by one-hot chains whose statistics
// a single model already captures, and per-context adaptation is pure
// overhead.)
func compressCodes(codes, parents []byte) []byte {
	_ = parents
	e := arith.NewEncoder()
	m := arith.NewModel(16)
	for _, c := range codes {
		e.Encode(m, int(c))
	}
	return e.Finish()
}

// Decode reconstructs the 2D points (leaf centers, repeated by count) from
// a stream produced by Encode.
func Decode(data []byte) ([]Point2, error) {
	return DecodeLimited(data, nil)
}

// DecodeOptions selects the stream dialect and resources of one decode.
type DecodeOptions struct {
	// Budget charges decoded points, symbols, and nodes; nil is unlimited.
	Budget *declimits.Budget
	// Sharded declares that the entropy streams use the container v3
	// sharded framing.
	Sharded bool
	// BlockPack declares that the count stream uses the blockpack codec in
	// the shard framing (container v4). Implies the sharded framing for the
	// occupancy stream.
	BlockPack bool
	// Parallel decodes the shards of a sharded stream concurrently.
	Parallel bool
}

// DecodeLimited is Decode charging decoded points, occupancy symbols, and
// tree nodes against b. A nil budget is unlimited. Panics on hostile bytes
// are recovered into ErrCorrupt-wrapped errors.
func DecodeLimited(data []byte, b *declimits.Budget) ([]Point2, error) {
	return DecodeWith(data, DecodeOptions{Budget: b})
}

// DecodeWith is Decode with explicit options.
func DecodeWith(data []byte, opts DecodeOptions) (pts []Point2, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	b := opts.Budget
	n, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("quadtree: point count: %w", err)
	}
	data = data[used:]
	if n == 0 {
		return []Point2{}, nil
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: point count overflow", ErrCorrupt)
	}
	if err := b.Points(int64(n)); err != nil {
		return nil, err
	}
	if len(data) < 24 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	minX := math.Float64frombits(binary.LittleEndian.Uint64(data))
	minY := math.Float64frombits(binary.LittleEndian.Uint64(data[8:]))
	side := math.Float64frombits(binary.LittleEndian.Uint64(data[16:]))
	data = data[24:]
	if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("%w: invalid side %v", ErrCorrupt, side)
	}
	depth64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("quadtree: depth: %w", err)
	}
	data = data[used:]
	if depth64 > maxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeds limit", ErrCorrupt, depth64)
	}
	depth := int(depth64)

	occLen, occStream, data, err := readSection(data, "occupancy")
	if err != nil {
		return nil, err
	}
	countLen, countStream, _, err := readSection(data, "counts")
	if err != nil {
		return nil, err
	}
	// Every leaf holds at least one point, so a counts section longer than
	// the point total is corrupt; reject before decoding countLen symbols.
	// Without this check countLen can demand up to MaxInt32 adaptive-model
	// symbols from a tiny stream (same class as the PR 2 decodeOutliers fix).
	if uint64(countLen) > n {
		return nil, fmt.Errorf("%w: %d leaf counts for %d points", ErrCorrupt, countLen, n)
	}
	var counts []uint64
	if opts.BlockPack {
		counts, err = blockpack.UnpackUint64Sharded(countStream, countLen, b, opts.Parallel)
	} else if opts.Sharded {
		counts, err = arith.DecompressUintsShardedLimited(countStream, countLen, b, opts.Parallel)
	} else {
		counts, err = arith.DecompressUintsLimited(countStream, countLen, b)
	}
	if err != nil {
		return nil, fmt.Errorf("quadtree: counts: %w", err)
	}
	// Unsharded streams decode occupancy lazily, interleaved with the tree
	// walk; sharded streams materialize the code sequence first (the shards
	// decode independently, possibly in parallel) and the walk replays it.
	var decodeCode func(parent byte) (byte, error)
	if opts.Sharded || opts.BlockPack {
		occ, err := arith.DecompressCodesShardedLimited(occStream, occLen, 16, b, opts.Parallel)
		if err != nil {
			return nil, fmt.Errorf("quadtree: occupancy: %w", err)
		}
		k := 0
		decodeCode = func(parent byte) (byte, error) {
			_ = parent
			c := occ[k]
			k++
			return c, nil
		}
	} else {
		if err := b.Nodes(int64(occLen)); err != nil {
			return nil, err
		}
		occDec := arith.NewDecoder(occStream)
		occModel := arith.NewModel(16)
		decodeCode = func(parent byte) (byte, error) {
			_ = parent
			sym, err := occDec.Decode(occModel)
			return byte(sym), err
		}
	}

	type cell struct {
		cx, cy, hh float64
		parent     byte
	}
	half := side / 2
	level := []cell{{cx: minX + half, cy: minY + half, hh: half}}
	pos := 0
	for d := 0; d < depth; d++ {
		next := make([]cell, 0, len(level)*2)
		for _, cl := range level {
			if pos >= occLen {
				return nil, fmt.Errorf("%w: occupancy stream too short", ErrCorrupt)
			}
			code, err := decodeCode(cl.parent)
			pos++
			if err != nil {
				return nil, fmt.Errorf("quadtree: occupancy %d: %w", pos, err)
			}
			if code == 0 || code > 15 {
				return nil, fmt.Errorf("%w: bad occupancy code %d", ErrCorrupt, code)
			}
			qh := cl.hh / 2
			for c := 0; c < 4; c++ {
				if code&(1<<uint(c)) != 0 {
					next = append(next, cell{
						cx:     childOff(cl.cx, qh, c&1 != 0),
						cy:     childOff(cl.cy, qh, c&2 != 0),
						hh:     qh,
						parent: code,
					})
				}
			}
		}
		if err := b.Nodes(int64(len(next))); err != nil {
			return nil, err
		}
		level = next
	}
	if pos != occLen {
		return nil, fmt.Errorf("%w: %d unused occupancy codes", ErrCorrupt, occLen-pos)
	}
	if len(level) != len(counts) {
		return nil, fmt.Errorf("%w: %d leaves but %d counts", ErrCorrupt, len(level), len(counts))
	}
	// Clamp the header-declared count before it becomes an allocation
	// capacity; appends grow past the clamp if the stream really carries
	// that many points.
	capHint := n
	if capHint > 1<<22 {
		capHint = 1 << 22
	}
	out := make([]Point2, 0, capHint)
	for i, cl := range level {
		cnt := counts[i]
		// Remaining-budget comparison: summing first could wrap uint64.
		if cnt == 0 || cnt > n-uint64(len(out)) {
			return nil, fmt.Errorf("%w: leaf counts disagree with point total", ErrCorrupt)
		}
		for k := uint64(0); k < cnt; k++ {
			out = append(out, Point2{X: cl.cx, Y: cl.cy})
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("%w: decoded %d points, header says %d", ErrCorrupt, len(out), n)
	}
	return out, nil
}

func readSection(data []byte, name string) (count int, payload, rest []byte, err error) {
	c, used, err := varint.Uint(data)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("quadtree: %s count: %w", name, err)
	}
	data = data[used:]
	l, used, err := varint.Uint(data)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("quadtree: %s length: %w", name, err)
	}
	data = data[used:]
	if l > uint64(len(data)) {
		return 0, nil, nil, fmt.Errorf("%w: %s section truncated", ErrCorrupt, name)
	}
	if c > uint64(math.MaxInt32) {
		return 0, nil, nil, fmt.Errorf("%w: %s count overflow", ErrCorrupt, name)
	}
	return int(c), data[:l], data[l:], nil
}
