package quadtree

import (
	"bytes"
	"fmt"
	"testing"
)

// TestShardedRoundTrip: sharded quadtree streams decode identically to the
// legacy stream, parallel encode is deterministic, and Shards<=1 keeps the
// legacy bytes.
func TestShardedRoundTrip(t *testing.T) {
	pts := randomPoints(50000, 160, 5)
	const q = 0.02
	legacy, err := Encode(pts, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(legacy.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			serial, err := EncodeWith(pts, q, EncodeOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			par, err := EncodeWith(pts, q, EncodeOptions{Shards: shards, Parallel: true})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial.Data, par.Data) {
				t.Fatal("parallel sharded encode differs from serial")
			}
			if shards <= 1 && !bytes.Equal(serial.Data, legacy.Data) {
				t.Fatal("Shards=1 stream differs from legacy stream")
			}
			for _, pdec := range []bool{false, true} {
				got, err := DecodeWith(serial.Data, DecodeOptions{Sharded: shards > 1, Parallel: pdec})
				if err != nil {
					t.Fatalf("decode (parallel=%v): %v", pdec, err)
				}
				if len(got) != len(want) {
					t.Fatalf("decoded %d points, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
					}
				}
				checkBound(t, pts, got, serial.DecodedOrder, q)
			}
		})
	}
}
