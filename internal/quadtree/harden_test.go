package quadtree

import (
	"math"
	"testing"

	"dbgc/internal/declimits"
	"dbgc/internal/varint"
)

// TestHostileHeaderCount is the regression test for the unchecked
// header-count allocation (the same class as the decodeOutliers fix): a
// stream claiming MaxInt32 points must not demand MaxInt32 adaptive-model
// symbols from a tiny stream or preallocate to match.
func TestHostileHeaderCount(t *testing.T) {
	pts := []Point2{{X: 1, Y: 2}, {X: -3, Y: 0.5}, {X: 4, Y: -1}}
	enc, err := Encode(pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	_, used, err := varint.Uint(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	hostile := varint.AppendUint(nil, uint64(math.MaxInt32))
	hostile = append(hostile, enc.Data[used:]...)

	b := declimits.New(declimits.Limits{MaxPoints: 1 << 16, MaxNodes: 1 << 20, MemBudget: 32 << 20})
	if _, err := DecodeLimited(hostile, b); err == nil {
		t.Fatal("MaxInt32 point count decoded without error under budget")
	}
	// The count-section length check must also hold without a budget: a
	// counts stream longer than the claimed point count is corrupt because
	// every quadtree leaf holds at least one point.
	if _, err := Decode(hostile); err == nil {
		t.Fatal("MaxInt32 point count decoded without error")
	}
}
