package quadtree

import (
	"testing"

	"dbgc/internal/declimits"
)

// FuzzDecode hammers the quadtree decoder with mutated streams under a
// small decode budget; it must never panic or allocate past the budget.
func FuzzDecode(f *testing.F) {
	pts := []Point2{{X: 1, Y: 2}, {X: -3, Y: 0.5}, {X: 4, Y: -1}, {X: 0.1, Y: 0.2}}
	enc, err := Encode(pts, 0.02)
	if err != nil {
		f.Fatal(err)
	}
	sharded, err := EncodeWith(pts, 0.02, EncodeOptions{Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	packed, err := EncodeWith(pts, 0.02, EncodeOptions{BlockPack: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc.Data)
	f.Add(enc.Data[:len(enc.Data)/2])
	f.Add(sharded.Data)
	f.Add(packed.Data)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		lim := declimits.Limits{
			MaxPoints: 1 << 16, MaxNodes: 1 << 20, MemBudget: 32 << 20,
		}
		_, _ = DecodeLimited(data, declimits.New(lim))
		// The v3/v4 dialect flags are out of band: feed every input through
		// the sharded and blockpack decoders too.
		_, _ = DecodeWith(data, DecodeOptions{Budget: declimits.New(lim), Sharded: true})
		_, _ = DecodeWith(data, DecodeOptions{Budget: declimits.New(lim), BlockPack: true})
	})
}
