package quadtree

import (
	"math"
	"math/rand"
	"testing"
)

func randomPoints(n int, spread float64, seed int64) []Point2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point2, n)
	for i := range pts {
		pts[i] = Point2{X: rng.Float64()*spread - spread/2, Y: rng.Float64()*spread - spread/2}
	}
	return pts
}

func checkBound(t *testing.T, orig, dec []Point2, order []int, q float64) {
	t.Helper()
	if len(dec) != len(orig) || len(order) != len(orig) {
		t.Fatalf("size mismatch: %d dec, %d order, %d orig", len(dec), len(order), len(orig))
	}
	seen := make([]bool, len(orig))
	for j, oi := range order {
		if oi < 0 || oi >= len(orig) || seen[oi] {
			t.Fatalf("order not a permutation at %d", j)
		}
		seen[oi] = true
		dx := math.Abs(orig[oi].X - dec[j].X)
		dy := math.Abs(orig[oi].Y - dec[j].Y)
		if dx > q+1e-9 || dy > q+1e-9 {
			t.Fatalf("point %d error (%v,%v) exceeds %v", oi, dx, dy, q)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, q := range []float64{0.02, 0.005, 0.5} {
		pts := randomPoints(1500, 120, 1)
		enc, err := Encode(pts, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatal(err)
		}
		checkBound(t, pts, dec, enc.DecodedOrder, q)
	}
}

func TestEmpty(t *testing.T) {
	enc, err := Encode(nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points", len(dec))
	}
}

func TestSingleAndDuplicate(t *testing.T) {
	pts := []Point2{{3, 4}, {3, 4}, {-1, 2}}
	enc, err := Encode(pts, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, pts, dec, enc.DecodedOrder, 0.01)
}

func TestCollinearDegenerate(t *testing.T) {
	// All on one horizontal line: bounding box is degenerate in y.
	pts := make([]Point2, 50)
	for i := range pts {
		pts[i] = Point2{X: float64(i) * 0.3, Y: 7}
	}
	enc, err := Encode(pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, pts, dec, enc.DecodedOrder, 0.02)
}

func TestInvalidBound(t *testing.T) {
	if _, err := Encode([]Point2{{1, 1}}, 0); err == nil {
		t.Fatal("expected error for q=0")
	}
}

func TestCorruptStreams(t *testing.T) {
	pts := randomPoints(300, 60, 2)
	enc, err := Encode(pts, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc.Data); cut += 5 {
		if _, err := Decode(enc.Data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
