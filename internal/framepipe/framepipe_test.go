package framepipe

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrdering: results come back in submission order even when jobs finish
// out of order.
func TestOrdering(t *testing.T) {
	// Earlier jobs sleep longer, so completion order is reversed.
	p := New(4, 8, func(i int) (int, error) {
		time.Sleep(time.Duration(16-i) * time.Millisecond)
		return i * i, nil
	})
	defer p.Close()
	const n = 16
	got := make([]int, 0, n)
	for i := 0; i < n; i++ {
		for p.Full() {
			v, err, ok := p.Next()
			if !ok || err != nil {
				t.Fatalf("Next: %v %v", err, ok)
			}
			got = append(got, v)
		}
		p.Submit(i)
	}
	for {
		v, err, ok := p.Next()
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
	if len(got) != n {
		t.Fatalf("drained %d results, want %d", len(got), n)
	}
}

// TestErrorStaysInOrder: a failing job surfaces at its position, not
// earlier or later.
func TestErrorStaysInOrder(t *testing.T) {
	boom := errors.New("boom")
	p := New(3, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	defer p.Close()
	for i := 0; i < 4; i++ {
		p.Submit(i)
	}
	for i := 0; i < 4; i++ {
		v, err, ok := p.Next()
		if !ok {
			t.Fatalf("Next %d: pool empty", i)
		}
		if i == 2 {
			if !errors.Is(err, boom) {
				t.Fatalf("position 2: got err %v, want boom", err)
			}
			continue
		}
		if err != nil || v != i {
			t.Fatalf("position %d: got (%d, %v)", i, v, err)
		}
	}
	if _, _, ok := p.Next(); ok {
		t.Fatal("pool should be drained")
	}
}

// TestTryNext: TryNext never blocks and only returns finished heads.
func TestTryNext(t *testing.T) {
	release := make(chan struct{})
	p := New(1, 2, func(i int) (int, error) {
		<-release
		return i, nil
	})
	defer p.Close()
	if _, _, ok := p.TryNext(); ok {
		t.Fatal("TryNext on empty pool returned ok")
	}
	p.Submit(7)
	if _, _, ok := p.TryNext(); ok {
		t.Fatal("TryNext returned a result for a job that cannot have finished")
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, err, ok := p.TryNext(); ok {
			if err != nil || v != 7 {
				t.Fatalf("got (%d, %v), want (7, nil)", v, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TryNext never saw the finished job")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWindowBound: no more than window jobs run-or-wait at once.
func TestWindowBound(t *testing.T) {
	var active, peak atomic.Int64
	p := New(2, 3, func(i int) (int, error) {
		a := active.Add(1)
		for {
			pk := peak.Load()
			if a <= pk || peak.CompareAndSwap(pk, a) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		active.Add(-1)
		return i, nil
	})
	defer p.Close()
	for i := 0; i < 12; i++ {
		for p.Full() {
			if _, err, ok := p.Next(); !ok || err != nil {
				t.Fatalf("Next: %v %v", err, ok)
			}
		}
		p.Submit(i)
	}
	for {
		if _, _, ok := p.Next(); !ok {
			break
		}
	}
	if pk := peak.Load(); pk > 2 {
		t.Fatalf("%d jobs ran concurrently, want <= 2 workers", pk)
	}
}

// TestManyJobsStress drives enough jobs through a small pool to shake out
// ordering races under -race.
func TestManyJobsStress(t *testing.T) {
	p := New(4, 4, func(i int) (string, error) {
		return fmt.Sprintf("job-%d", i), nil
	})
	defer p.Close()
	next := 0
	check := func(v string, err error, ok bool) {
		if !ok {
			t.Fatal("pool empty mid-drain")
		}
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("job-%d", next); v != want {
			t.Fatalf("got %q, want %q", v, want)
		}
		next++
	}
	for i := 0; i < 500; i++ {
		for p.Full() {
			v, err, ok := p.Next()
			check(v, err, ok)
		}
		p.Submit(i)
	}
	for p.InFlight() > 0 {
		v, err, ok := p.Next()
		check(v, err, ok)
	}
	if next != 500 {
		t.Fatalf("drained %d results, want 500", next)
	}
}

func TestTrySubmitRefusesWhenFull(t *testing.T) {
	release := make(chan struct{})
	p := New(1, 2, func(n int) (int, error) {
		<-release
		return n, nil
	})
	defer p.Close()
	if !p.TrySubmit(1) || !p.TrySubmit(2) {
		t.Fatal("TrySubmit refused with window room")
	}
	if p.TrySubmit(3) {
		t.Fatal("TrySubmit accepted past the window")
	}
	if !p.Full() {
		t.Fatal("pool should report full")
	}
	close(release)
	for i := 1; i <= 2; i++ {
		out, err, ok := p.Next()
		if !ok || err != nil || out != i {
			t.Fatalf("Next = (%d, %v, %v), want %d", out, err, ok, i)
		}
	}
	// Draining opened the window back up.
	if !p.TrySubmit(4) {
		t.Fatal("TrySubmit refused after drain")
	}
	if out, _, ok := p.Next(); !ok || out != 4 {
		t.Fatalf("Next after reopen = %d, %v", out, ok)
	}
}
