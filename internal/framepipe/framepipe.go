// Package framepipe provides a bounded worker pool that runs per-frame jobs
// concurrently while delivering results strictly in submission order. DBGC
// frames in a stream are (outside temporal mode) independently coded, so
// compression and decompression of consecutive frames can overlap; the
// container format is still sequential, so results must come back in order.
//
// The pool is designed for a single goroutine that both submits and drains
// (the stream writer or reader): Submit never blocks while the in-flight
// window has room, and the caller checks Full before submitting, draining
// completed results with Next or TryNext to open the window back up.
package framepipe

import "sync"

type job[In, Out any] struct {
	in   In
	slot chan result[Out]
}

type result[Out any] struct {
	out Out
	err error
}

// Pool runs fn over submitted inputs on a fixed set of workers. Results are
// retrieved in submission order regardless of completion order.
type Pool[In, Out any] struct {
	jobs chan job[In, Out]
	sem  chan struct{} // in-flight window tokens
	wg   sync.WaitGroup

	mu      sync.Mutex
	pending []chan result[Out] // result slots in submission order
}

// New starts workers goroutines applying fn. window bounds the number of
// submitted-but-undrained jobs; values below workers are raised to workers.
func New[In, Out any](workers, window int, fn func(In) (Out, error)) *Pool[In, Out] {
	if workers < 1 {
		workers = 1
	}
	if window < workers {
		window = workers
	}
	p := &Pool[In, Out]{
		jobs: make(chan job[In, Out], window),
		sem:  make(chan struct{}, window),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				var r result[Out]
				r.out, r.err = fn(j.in)
				j.slot <- r
			}
		}()
	}
	return p
}

// Full reports whether the in-flight window is exhausted. A full pool's
// Submit would block until the caller drains a result, so a single
// submit-and-drain goroutine must check Full first.
func (p *Pool[In, Out]) Full() bool { return len(p.sem) == cap(p.sem) }

// InFlight returns the number of submitted jobs not yet drained.
func (p *Pool[In, Out]) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// Submit queues one input. It blocks while the window is full.
func (p *Pool[In, Out]) Submit(in In) {
	p.sem <- struct{}{}
	p.enqueue(in)
}

// TrySubmit queues one input only if the window has room, reporting whether
// it did. It never blocks — the backpressure primitive for callers that
// must refuse work instead of queueing it (e.g. an ingest session nacking
// an overloaded tenant).
func (p *Pool[In, Out]) TrySubmit(in In) bool {
	select {
	case p.sem <- struct{}{}:
	default:
		return false
	}
	p.enqueue(in)
	return true
}

// enqueue registers the result slot and hands the job to a worker. The
// caller holds a sem token, so the jobs channel (cap == window) has room
// and the send cannot block.
func (p *Pool[In, Out]) enqueue(in In) {
	slot := make(chan result[Out], 1)
	p.mu.Lock()
	p.pending = append(p.pending, slot)
	p.mu.Unlock()
	p.jobs <- job[In, Out]{in: in, slot: slot}
}

// Next blocks for the oldest in-flight result. ok is false when nothing is
// in flight.
func (p *Pool[In, Out]) Next() (out Out, err error, ok bool) {
	slot := p.pop()
	if slot == nil {
		return out, nil, false
	}
	r := <-slot
	<-p.sem
	return r.out, r.err, true
}

// TryNext returns the oldest in-flight result only if it has already
// finished; ok is false when nothing is in flight or the oldest job is
// still running.
func (p *Pool[In, Out]) TryNext() (out Out, err error, ok bool) {
	p.mu.Lock()
	if len(p.pending) == 0 {
		p.mu.Unlock()
		return out, nil, false
	}
	slot := p.pending[0]
	select {
	case r := <-slot:
		p.pending = p.pending[1:]
		p.mu.Unlock()
		<-p.sem
		return r.out, r.err, true
	default:
		p.mu.Unlock()
		return out, nil, false
	}
}

func (p *Pool[In, Out]) pop() chan result[Out] {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pending) == 0 {
		return nil
	}
	slot := p.pending[0]
	p.pending = p.pending[1:]
	return slot
}

// Close stops the workers once queued jobs finish. Drain every result with
// Next before closing; in-flight results are unreachable afterwards.
func (p *Pool[In, Out]) Close() {
	close(p.jobs)
	p.wg.Wait()
}
