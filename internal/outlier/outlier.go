// Package outlier implements DBGC's optimized outlier compression (§3.6):
// sparse points that joined no polyline are coded in Cartesian space with a
// 2D quadtree over (x, y) — LiDAR outliers are far points spread over the
// xy-plane — while z, whose range is small, rides along as a delta-encoded
// attribute (L_z → ΔL_z → entropy coding → B_Δz appended after the
// quadtree stream).
package outlier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/blockpack"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/quadtree"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed outlier stream.
var ErrCorrupt = errors.New("outlier: corrupt stream")

// Encoded is the output of Encode.
type Encoded struct {
	Data []byte
	// DecodedOrder maps decoded position j to the index (into the points
	// given to Encode) it reconstructs.
	DecodedOrder []int
}

// EncodeOptions tunes Encode.
type EncodeOptions struct {
	// Shards splits the quadtree and z-delta entropy streams into this
	// many independently-coded shards (container v3). Values <= 1 keep the
	// legacy single-coder streams.
	Shards int
	// BlockPack codes the z-delta and quadtree count streams with the
	// blockpack codec in the shard framing (container v4). Off keeps v2/v3
	// bytes unchanged.
	BlockPack bool
	// Parallel encodes the shards of a sharded stream concurrently.
	Parallel bool
}

// Encode compresses the outlier points with per-dimension error bound q.
func Encode(points geom.PointCloud, q float64) (Encoded, error) {
	return EncodeWith(points, q, EncodeOptions{})
}

// EncodeWith is Encode with explicit options.
func EncodeWith(points geom.PointCloud, q float64, opts EncodeOptions) (Encoded, error) {
	if q <= 0 {
		return Encoded{}, fmt.Errorf("outlier: error bound must be positive, got %v", q)
	}
	xy := make([]quadtree.Point2, len(points))
	for i, p := range points {
		xy[i] = quadtree.Point2{X: p.X, Y: p.Y}
	}
	qt, err := quadtree.EncodeWith(xy, q, quadtree.EncodeOptions{Shards: opts.Shards, BlockPack: opts.BlockPack, Parallel: opts.Parallel})
	if err != nil {
		return Encoded{}, fmt.Errorf("outlier: quadtree: %w", err)
	}

	// z values in decoded (quadtree traversal) order, quantized by 2q,
	// then delta encoded.
	zq := make([]int64, len(points))
	for j, oi := range qt.DecodedOrder {
		zq[j] = int64(math.Round(points[oi].Z / (2 * q)))
	}
	dz := make([]int64, len(zq))
	for i := range zq {
		if i == 0 {
			dz[i] = zq[i]
			continue
		}
		dz[i] = zq[i] - zq[i-1]
	}
	var zStream []byte
	if opts.BlockPack {
		zStream = blockpack.PackInt64Sharded(nil, dz, opts.Shards, opts.Parallel)
	} else if opts.Shards > 1 {
		zStream = arith.AppendCompressIntsSharded(nil, dz, opts.Shards, opts.Parallel)
	} else {
		zStream = arith.CompressInts(dz)
	}

	out := make([]byte, 0, len(qt.Data)+len(zStream)+24)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(q))
	out = varint.AppendUint(out, uint64(len(qt.Data)))
	out = append(out, qt.Data...)
	out = varint.AppendUint(out, uint64(len(zStream)))
	out = append(out, zStream...)
	return Encoded{Data: out, DecodedOrder: qt.DecodedOrder}, nil
}

// CollectZDeltas builds the quadtree for points at error bound q and
// returns the delta-encoded quantized z stream without entropy coding it.
// It exists for the benchkit pack ablation, which compares codecs on the
// real z-delta stream of a frame.
func CollectZDeltas(points geom.PointCloud, q float64) ([]int64, error) {
	if q <= 0 {
		return nil, fmt.Errorf("outlier: error bound must be positive, got %v", q)
	}
	xy := make([]quadtree.Point2, len(points))
	for i, p := range points {
		xy[i] = quadtree.Point2{X: p.X, Y: p.Y}
	}
	qt, err := quadtree.Encode(xy, q)
	if err != nil {
		return nil, fmt.Errorf("outlier: quadtree: %w", err)
	}
	dz := make([]int64, len(points))
	prev := int64(0)
	for j, oi := range qt.DecodedOrder {
		zq := int64(math.Round(points[oi].Z / (2 * q)))
		dz[j] = zq - prev
		prev = zq
	}
	return dz, nil
}

// Decode reconstructs the outlier points.
func Decode(data []byte) (geom.PointCloud, error) {
	return DecodeLimited(data, nil)
}

// DecodeOptions selects the stream dialect and resources of one decode.
type DecodeOptions struct {
	// Budget charges decoded points and entropy symbols; nil is unlimited.
	Budget *declimits.Budget
	// Sharded declares that the entropy streams use the container v3
	// sharded framing.
	Sharded bool
	// BlockPack declares that the z-delta and quadtree count streams use
	// the blockpack codec in the shard framing (container v4).
	BlockPack bool
	// Parallel decodes the shards of a sharded stream concurrently.
	Parallel bool
}

// DecodeLimited is Decode charging decoded points and entropy symbols
// against b. A nil budget is unlimited. Panics on hostile bytes are
// recovered into ErrCorrupt-wrapped errors.
func DecodeLimited(data []byte, b *declimits.Budget) (geom.PointCloud, error) {
	return DecodeWith(data, DecodeOptions{Budget: b})
}

// DecodeWith is Decode with explicit options.
func DecodeWith(data []byte, opts DecodeOptions) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	b := opts.Budget
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	q := math.Float64frombits(binary.LittleEndian.Uint64(data))
	data = data[8:]
	if !(q > 0) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("%w: invalid error bound %v", ErrCorrupt, q)
	}
	qtLen, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("outlier: quadtree length: %w", err)
	}
	data = data[used:]
	if qtLen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: quadtree stream truncated", ErrCorrupt)
	}
	xy, err := quadtree.DecodeWith(data[:qtLen], quadtree.DecodeOptions{
		Budget:    b,
		Sharded:   opts.Sharded,
		BlockPack: opts.BlockPack,
		Parallel:  opts.Parallel,
	})
	if err != nil {
		return nil, fmt.Errorf("outlier: quadtree: %w", err)
	}
	data = data[qtLen:]
	zLen, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("outlier: z length: %w", err)
	}
	data = data[used:]
	if zLen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: z stream truncated", ErrCorrupt)
	}
	var dz []int64
	if opts.BlockPack {
		dz, err = blockpack.UnpackInt64Sharded(data[:zLen], len(xy), b, opts.Parallel)
	} else if opts.Sharded {
		dz, err = arith.DecompressIntsShardedLimited(data[:zLen], len(xy), b, opts.Parallel)
	} else {
		dz, err = arith.DecompressIntsLimited(data[:zLen], len(xy), b)
	}
	if err != nil {
		return nil, fmt.Errorf("outlier: z deltas: %w", err)
	}

	out := make(geom.PointCloud, len(xy))
	var zq int64
	for i := range xy {
		zq += dz[i]
		out[i] = geom.Point{X: xy[i].X, Y: xy[i].Y, Z: float64(zq) * 2 * q}
	}
	return out, nil
}
