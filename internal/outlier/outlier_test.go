package outlier

import (
	"math"
	"math/rand"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/octree"
)

// outlierCloud mimics real outliers: far points over a wide xy extent with
// z concentrated near ground level (LiDAR outliers are mostly distant
// ground and low-object returns).
func outlierCloud(n int, seed int64) geom.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	pc := make(geom.PointCloud, n)
	for i := range pc {
		x := rng.Float64()*200 - 100
		y := rng.Float64()*200 - 100
		// Smooth terrain: z follows the ground surface, so points that
		// are close in (x, y) — adjacent in quadtree order — share z.
		z := -1.7 + 0.004*x + 0.3*math.Sin(x/40)*math.Cos(y/35) + rng.NormFloat64()*0.02
		if rng.Float64() < 0.03 {
			z += rng.Float64() * 2 // occasional elevated return
		}
		pc[i] = geom.Point{X: x, Y: y, Z: z}
	}
	return pc
}

func checkBound(t *testing.T, orig, dec geom.PointCloud, order []int, q float64) {
	t.Helper()
	if len(dec) != len(orig) || len(order) != len(orig) {
		t.Fatalf("size mismatch: dec=%d order=%d orig=%d", len(dec), len(order), len(orig))
	}
	seen := make([]bool, len(orig))
	for j, oi := range order {
		if oi < 0 || oi >= len(orig) || seen[oi] {
			t.Fatalf("order not a permutation at %d", j)
		}
		seen[oi] = true
		if d := orig[oi].ChebDist(dec[j]); d > q+1e-9 {
			t.Fatalf("point %d error %v exceeds %v", oi, d, q)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, q := range []float64{0.02, 0.005} {
		pc := outlierCloud(1200, 1)
		enc, err := Encode(pc, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatal(err)
		}
		checkBound(t, pc, dec, enc.DecodedOrder, q)
	}
}

func TestEmpty(t *testing.T) {
	enc, err := Encode(nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points", len(dec))
	}
}

func TestSingle(t *testing.T) {
	pc := geom.PointCloud{{X: 88.5, Y: -3.25, Z: 1.5}}
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, pc, dec, enc.DecodedOrder, 0.02)
}

func TestInvalidBound(t *testing.T) {
	if _, err := Encode(geom.PointCloud{{X: 1}}, 0); err == nil {
		t.Fatal("expected error for q=0")
	}
}

func TestBeatsOctreeOnFlatOutliers(t *testing.T) {
	// Table 2: the quadtree outlier coder should slightly beat a full
	// octree when z is nearly flat relative to the xy extent.
	pc := outlierCloud(3000, 2)
	q := 0.02
	o, err := octree.Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Data) >= len(o.Data) {
		t.Fatalf("quadtree+Δz (%d bytes) should beat octree (%d bytes) on flat outliers",
			len(u.Data), len(o.Data))
	}
	t.Logf("quadtree+Δz %d bytes vs octree %d bytes", len(u.Data), len(o.Data))
}

func TestCorruptStreams(t *testing.T) {
	pc := outlierCloud(300, 3)
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc.Data); cut += 13 {
		if _, err := Decode(enc.Data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
