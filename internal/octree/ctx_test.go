package octree

import (
	"bytes"
	"fmt"
	"testing"

	"dbgc/internal/ctxmodel"
)

// TestContextRoundTrip: the context-modeled occupancy dialect decodes to
// the same geometry as the legacy stream across shard counts, serial and
// parallel encodes are byte-identical, and the stream leads with a valid
// method marker.
func TestContextRoundTrip(t *testing.T) {
	pc := randomCloud(60000, 120, 9)
	const q = 0.02
	legacy, err := Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(legacy.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		for _, feats := range []ctxmodel.Features{0, ctxmodel.DefaultFeatures, ctxmodel.FeatAll} {
			t.Run(fmt.Sprintf("shards=%d/feats=%#x", shards, byte(feats)), func(t *testing.T) {
				opts := EncodeOptions{Shards: shards, Context: true, CtxFeatures: feats}
				serial, err := EncodeWith(pc, q, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Parallel = true
				par, err := EncodeWith(pc, q, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serial.Data, par.Data) {
					t.Fatal("parallel context encode differs from serial")
				}
				for _, pdec := range []bool{false, true} {
					got, err := DecodeWith(serial.Data, DecodeOptions{Sharded: shards > 1, Context: true, Parallel: pdec})
					if err != nil {
						t.Fatalf("decode (parallel=%v): %v", pdec, err)
					}
					if len(got) != len(want) {
						t.Fatalf("decoded %d points, want %d", len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
						}
					}
					checkErrorBound(t, pc, got, serial.DecodedOrder, q)
				}
			})
		}
	}
}

// TestContextGuard: a Context encode must never produce a larger occupancy
// stream than the legacy dialect it guards against — when the context
// coding loses, the marker must say legacy and the payload must be the
// exact legacy bytes.
func TestContextGuard(t *testing.T) {
	// A tiny cloud gives the context models nothing to learn from, so the
	// per-stream guard should fall back to the legacy bytes.
	pc := randomCloud(12, 5, 2)
	const q = 0.01
	plain, err := Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := EncodeWith(pc, q, EncodeOptions{Context: true})
	if err != nil {
		t.Fatal(err)
	}
	// The context stream carries one marker byte per frame over legacy.
	if len(ctx.Data) > len(plain.Data)+1 {
		t.Fatalf("context stream %dB exceeds legacy %dB + marker", len(ctx.Data), len(plain.Data))
	}
	got, err := DecodeWith(ctx.Data, DecodeOptions{Context: true})
	if err != nil {
		t.Fatal(err)
	}
	checkErrorBound(t, pc, got, ctx.DecodedOrder, q)
}

// TestContextCorrupt: bad method markers are rejected, and truncating a
// context stream anywhere errors rather than panicking.
func TestContextCorrupt(t *testing.T) {
	pc := randomCloud(3000, 40, 4)
	enc, err := EncodeWith(pc, 0.02, EncodeOptions{Context: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWith(enc.Data, DecodeOptions{Context: true}); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < len(enc.Data); l += 11 {
		if _, err := DecodeWith(enc.Data[:l], DecodeOptions{Context: true}); err == nil {
			t.Errorf("truncated at %d: want error", l)
		}
	}
}

// TestGroupedContextRoundTrip: the context-modeled grouped dialect decodes
// to the same geometry as the legacy grouped stream and is self-describing
// (DecodeGrouped needs no option to read it).
func TestGroupedContextRoundTrip(t *testing.T) {
	pc := randomCloud(20000, 80, 6)
	const q = 0.02
	legacy, err := EncodeGrouped(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DecodeGrouped(legacy.Data)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := EncodeGroupedWith(pc, q, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGrouped(ctx.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d points, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
		}
	}
	t.Logf("grouped occupancy bytes: legacy %d, ctx %d", len(legacy.Data), len(ctx.Data))
	for l := 0; l < len(ctx.Data); l += 13 {
		if _, err := DecodeGrouped(ctx.Data[:l]); err == nil {
			t.Errorf("grouped ctx truncated at %d: want error", l)
		}
	}
}
