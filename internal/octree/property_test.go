package octree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbgc/internal/geom"
)

// TestPropertyRoundTripQuick: arbitrary small clouds round-trip within the
// bound for both coders.
func TestPropertyRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64, nRaw uint8, qRaw float64) bool {
		n := int(nRaw)%200 + 1
		q := 0.001 + math.Abs(math.Mod(qRaw, 0.2))
		r := rand.New(rand.NewSource(seed))
		pc := make(geom.PointCloud, n)
		for i := range pc {
			pc[i] = geom.Point{
				X: r.Float64()*100 - 50,
				Y: r.Float64()*100 - 50,
				Z: r.Float64()*20 - 10,
			}
		}
		check := func(data []byte, order []int, dec geom.PointCloud, err error) bool {
			if err != nil || len(dec) != n || len(order) != n {
				return false
			}
			for j, oi := range order {
				if pc[oi].ChebDist(dec[j]) > q+1e-9 {
					return false
				}
			}
			return true
		}
		enc, err := Encode(pc, q)
		if err != nil {
			return false
		}
		dec, err := Decode(enc.Data)
		if !check(enc.Data, enc.DecodedOrder, dec, err) {
			return false
		}
		encG, err := EncodeGrouped(pc, q)
		if err != nil {
			return false
		}
		decG, err := DecodeGrouped(encG.Data)
		return check(encG.Data, encG.DecodedOrder, decG, err)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
