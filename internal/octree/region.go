package octree

import (
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/blockpack"
	"dbgc/internal/ctxmodel"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// DecodeRegion reconstructs only the points inside the query box from a
// stream produced by Encode, without materializing the rest of the cloud.
// The occupancy stream must still be entropy-decoded sequentially (the
// arithmetic coder is adaptive), but subtrees outside the region are
// dropped as soon as their cells separate from the box, so no point
// outside the region is ever built.
func DecodeRegion(data []byte, region geom.AABB) (geom.PointCloud, error) {
	return DecodeRegionWith(data, region, DecodeOptions{})
}

// DecodeRegionWith is DecodeRegion with explicit options (sharded streams,
// parallel shard decode, resource budget).
func DecodeRegionWith(data []byte, region geom.AABB, opts DecodeOptions) (geom.PointCloud, error) {
	n, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: point count: %w", err)
	}
	data = data[used:]
	if n == 0 {
		return geom.PointCloud{}, nil
	}
	var min geom.Point
	var side float64
	if min.X, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Y, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Z, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("%w: invalid cube side %v", ErrCorrupt, side)
	}
	depth64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: depth: %w", err)
	}
	data = data[used:]
	if depth64 > maxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeds limit", ErrCorrupt, depth64)
	}
	depth := int(depth64)

	occLen, occStream, data, err := readSection(data, "occupancy")
	if err != nil {
		return nil, err
	}
	countLen, countStream, _, err := readSection(data, "counts")
	if err != nil {
		return nil, err
	}
	ctxOcc := false
	if opts.Context {
		// v5 streams lead the occupancy section with a method marker; see
		// DecodeWith.
		if len(occStream) < 1 {
			return nil, fmt.Errorf("%w: missing occupancy method marker", ErrCorrupt)
		}
		switch occStream[0] {
		case occMethodLegacy:
		case occMethodCtx:
			ctxOcc = true
		default:
			return nil, fmt.Errorf("%w: unknown occupancy method %d", ErrCorrupt, occStream[0])
		}
		occStream = occStream[1:]
	}
	var occ []byte
	var counts []uint64
	switch {
	case ctxOcc:
		occ, err = ctxmodel.DecodeOcc(occStream, occLen, depth, opts.Budget)
	case opts.Sharded || opts.BlockPack:
		occ, err = arith.DecompressCodesShardedLimited(occStream, occLen, 256, opts.Budget, opts.Parallel)
	default:
		occ, err = decompressOccupancy(occStream, occLen, opts.Budget)
	}
	if err != nil {
		return nil, fmt.Errorf("octree: occupancy: %w", err)
	}
	switch {
	case opts.BlockPack:
		counts, err = blockpack.UnpackUint64Sharded(countStream, countLen, opts.Budget, opts.Parallel)
	case opts.Sharded:
		counts, err = arith.DecompressUintsShardedLimited(countStream, countLen, opts.Budget, opts.Parallel)
	default:
		counts, err = arith.DecompressUints(countStream, countLen)
	}
	if err != nil {
		return nil, fmt.Errorf("octree: counts: %w", err)
	}

	// Replay the BFS; nodes disjoint from the region stay in the level
	// list (their occupancy codes still occupy stream positions) but are
	// marked dead so their leaves are skipped.
	type cell struct {
		center geom.Point
		half   float64
		live   bool
	}
	half := side / 2
	level := []cell{{center: min.Add(geom.Point{X: half, Y: half, Z: half}), half: half, live: true}}
	pos := 0
	for d := 0; d < depth; d++ {
		next := make([]cell, 0, len(level)*2)
		for _, cl := range level {
			if pos >= len(occ) {
				return nil, fmt.Errorf("%w: occupancy stream too short", ErrCorrupt)
			}
			code := occ[pos]
			pos++
			if code == 0 {
				return nil, fmt.Errorf("%w: empty occupancy code", ErrCorrupt)
			}
			qh := cl.half / 2
			for c := 0; c < 8; c++ {
				if code&(1<<uint(c)) == 0 {
					continue
				}
				ctr := childCenter(cl.center, qh, c)
				live := cl.live && cellIntersects(ctr, qh, region)
				next = append(next, cell{center: ctr, half: qh, live: live})
			}
		}
		level = next
	}
	if pos != len(occ) {
		return nil, fmt.Errorf("%w: %d unused occupancy codes", ErrCorrupt, len(occ)-pos)
	}
	if len(level) != len(counts) {
		return nil, fmt.Errorf("%w: %d leaves but %d counts", ErrCorrupt, len(level), len(counts))
	}
	var out geom.PointCloud
	var total uint64
	for i, cl := range level {
		cnt := counts[i]
		// Remaining-budget comparison: summing first could wrap uint64.
		if cnt == 0 || cnt > n-total {
			return nil, fmt.Errorf("%w: leaf counts disagree with point total", ErrCorrupt)
		}
		total += cnt
		if !cl.live || !region.Contains(cl.center) {
			continue
		}
		for k := uint64(0); k < cnt; k++ {
			out = append(out, cl.center)
		}
	}
	if total != n {
		return nil, fmt.Errorf("%w: decoded %d points, header says %d", ErrCorrupt, total, n)
	}
	return out, nil
}

// cellIntersects reports whether the cube cell (center, half side) overlaps
// the box.
func cellIntersects(center geom.Point, half float64, b geom.AABB) bool {
	return center.X+half >= b.Min.X && center.X-half <= b.Max.X &&
		center.Y+half >= b.Min.Y && center.Y-half <= b.Max.Y &&
		center.Z+half >= b.Min.Z && center.Z-half <= b.Max.Z
}
