package octree

import (
	"testing"

	"dbgc/internal/geom"
)

// FuzzDecode hammers both octree decoders with mutated streams; they must
// never panic and never loop.
func FuzzDecode(f *testing.F) {
	pc := geom.PointCloud{{X: 1, Y: 2, Z: 3}, {X: 1.1, Y: 2, Z: 3}, {X: -4, Y: 0, Z: 1}}
	plain, err := Encode(pc, 0.02)
	if err != nil {
		f.Fatal(err)
	}
	grouped, err := EncodeGrouped(pc, 0.02)
	if err != nil {
		f.Fatal(err)
	}
	sharded, err := EncodeWith(pc, 0.02, EncodeOptions{Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	packed, err := EncodeWith(pc, 0.02, EncodeOptions{BlockPack: true})
	if err != nil {
		f.Fatal(err)
	}
	ctx, err := EncodeWith(pc, 0.02, EncodeOptions{Context: true})
	if err != nil {
		f.Fatal(err)
	}
	groupedCtx, err := EncodeGroupedWith(pc, 0.02, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Data)
	f.Add(grouped.Data)
	f.Add(sharded.Data)
	f.Add(packed.Data)
	f.Add(ctx.Data)
	f.Add(groupedCtx.Data)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = Decode(b)
		_, _ = DecodeGrouped(b)
		// The v3/v4/v5 dialect flags are out of band, so every input is also
		// fed through the sharded, blockpack, and context decoders.
		_, _ = DecodeWith(b, DecodeOptions{Sharded: true})
		_, _ = DecodeWith(b, DecodeOptions{Sharded: true, Parallel: true})
		_, _ = DecodeWith(b, DecodeOptions{BlockPack: true})
		_, _ = DecodeWith(b, DecodeOptions{Context: true})
	})
}

// FuzzContextOctree concentrates on the v5 context streams: the seed corpus
// carries context-coded plain, sharded, and grouped streams plus variants
// with truncated and garbled context-table headers (method marker, feature
// byte, context-count varint); no mutation may panic or loop either the
// plain or the grouped context decoder.
func FuzzContextOctree(f *testing.F) {
	pc := geom.PointCloud{{X: 1, Y: 2, Z: 3}, {X: 1.1, Y: 2, Z: 3}, {X: -4, Y: 0, Z: 1}, {X: 0.5, Y: -2, Z: 0}}
	ctx, err := EncodeWith(pc, 0.02, EncodeOptions{Context: true})
	if err != nil {
		f.Fatal(err)
	}
	shardedCtx, err := EncodeWith(pc, 0.02, EncodeOptions{Context: true, Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	groupedCtx, err := EncodeGroupedWith(pc, 0.02, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ctx.Data)
	f.Add(shardedCtx.Data)
	f.Add(groupedCtx.Data)
	// The occupancy section sits after the point count, three floats, the
	// cube side, the depth varint, and the section length varint; garble a
	// window of offsets around it so the method marker, feature byte, and
	// declared context count all get hit.
	for off := 30; off < 44; off++ {
		for _, bit := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), ctx.Data...)
			if off < len(mut) {
				mut[off] ^= bit
				f.Add(mut)
			}
		}
	}
	for cut := 0; cut < len(ctx.Data); cut += 5 {
		f.Add(ctx.Data[:cut])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = DecodeWith(b, DecodeOptions{Context: true})
		_, _ = DecodeWith(b, DecodeOptions{Context: true, Sharded: true, Parallel: true})
		_, _ = DecodeGrouped(b)
		_, _ = DecodeRegionWith(b, geom.AABB{Min: geom.Point{X: -5, Y: -5, Z: -5}, Max: geom.Point{X: 5, Y: 5, Z: 5}}, DecodeOptions{Context: true})
	})
}
