package octree

import (
	"testing"

	"dbgc/internal/geom"
)

// FuzzDecode hammers both octree decoders with mutated streams; they must
// never panic and never loop.
func FuzzDecode(f *testing.F) {
	pc := geom.PointCloud{{X: 1, Y: 2, Z: 3}, {X: 1.1, Y: 2, Z: 3}, {X: -4, Y: 0, Z: 1}}
	plain, err := Encode(pc, 0.02)
	if err != nil {
		f.Fatal(err)
	}
	grouped, err := EncodeGrouped(pc, 0.02)
	if err != nil {
		f.Fatal(err)
	}
	sharded, err := EncodeWith(pc, 0.02, EncodeOptions{Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	packed, err := EncodeWith(pc, 0.02, EncodeOptions{BlockPack: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Data)
	f.Add(grouped.Data)
	f.Add(sharded.Data)
	f.Add(packed.Data)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = Decode(b)
		_, _ = DecodeGrouped(b)
		// The v3/v4 dialect flags are out of band, so every input is also
		// fed through the sharded and blockpack decoders.
		_, _ = DecodeWith(b, DecodeOptions{Sharded: true})
		_, _ = DecodeWith(b, DecodeOptions{Sharded: true, Parallel: true})
		_, _ = DecodeWith(b, DecodeOptions{BlockPack: true})
	})
}
