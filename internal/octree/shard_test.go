package octree

import (
	"bytes"
	"fmt"
	"testing"
)

// TestShardedRoundTrip: sharded streams decode to the same geometry as the
// legacy stream, serial and parallel encodes are byte-identical, and
// Shards<=1 reproduces the legacy bytes exactly.
func TestShardedRoundTrip(t *testing.T) {
	pc := randomCloud(60000, 120, 3)
	const q = 0.02
	legacy, err := Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(legacy.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			serial, err := EncodeWith(pc, q, EncodeOptions{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			par, err := EncodeWith(pc, q, EncodeOptions{Shards: shards, Parallel: true})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial.Data, par.Data) {
				t.Fatal("parallel sharded encode differs from serial")
			}
			if shards <= 1 && !bytes.Equal(serial.Data, legacy.Data) {
				t.Fatal("Shards=1 stream differs from legacy stream")
			}
			for _, pdec := range []bool{false, true} {
				got, err := DecodeWith(serial.Data, DecodeOptions{Sharded: shards > 1, Parallel: pdec})
				if err != nil {
					t.Fatalf("decode (parallel=%v): %v", pdec, err)
				}
				if len(got) != len(want) {
					t.Fatalf("decoded %d points, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
					}
				}
				checkErrorBound(t, pc, got, serial.DecodedOrder, q)
			}
		})
	}
}
