package octree

import (
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/ctxmodel"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// groupedCtxMarker is the group-id sentinel announcing the context-modeled
// grouped dialect. Legacy streams terminate the group list with 256 and
// never emit an id above it, so a leading 257 is unambiguous.
const groupedCtxMarker = 257

// EncodeGrouped implements the "Octree_i" scheme (Garcia et al., §4.1 of
// the paper): the tree is built exactly as in Encode, but occupancy codes
// are grouped by the occupancy code of their parent node, and each group is
// compressed separately with its own adaptive arithmetic coder. The paper
// observes this helps dense object scans yet often hurts sparse LiDAR
// clouds, where many groups are too small to amortize per-group overhead —
// this implementation reproduces that behaviour.
func EncodeGrouped(points geom.PointCloud, q float64) (Encoded, error) {
	return EncodeGroupedWith(points, q, false)
}

// EncodeGroupedWith is EncodeGrouped with an optional context-modeled
// refinement: with ctx set, each group's codes are reflected by their
// node's octant and coded under a snapshot-seeded bank keyed by the
// parent-adjacency mask (the within-group analogue of the v5 occupancy
// contexts; the parent code itself is already the group key). The dialect
// is announced in-stream, so DecodeGrouped reads both.
func EncodeGroupedWith(points geom.PointCloud, q float64, ctx bool) (Encoded, error) {
	if q <= 0 {
		return Encoded{}, fmt.Errorf("octree: error bound must be positive, got %v", q)
	}
	var enc Encoded
	header := make([]byte, 0, 64)
	header = varint.AppendUint(header, uint64(len(points)))
	if len(points) == 0 {
		enc.Data = header
		return enc, nil
	}

	cube := geom.Bounds(points).Cube()
	depth := depthFor(cube.MaxDim(), q)
	side := 2 * q * math.Pow(2, float64(depth))
	if side < cube.MaxDim() {
		side = cube.MaxDim()
	}
	header = appendFloat(header, cube.Min.X)
	header = appendFloat(header, cube.Min.Y)
	header = appendFloat(header, cube.Min.Z)
	header = appendFloat(header, side)
	header = varint.AppendUint(header, uint64(depth))

	occ, parents, octants, counts, order := buildWithParents(points, cube.Min, side, depth)
	enc.DecodedOrder = order

	// Partition codes into 256 groups keyed by parent occupancy code and
	// compress each group separately. The decoder replays the BFS, so it
	// knows each node's parent code and pulls from the right group.
	groups := make([][]byte, 256)
	groupOct := make([][]uint8, 256)
	for i, code := range occ {
		p := parents[i]
		groups[p] = append(groups[p], code)
		if ctx {
			groupOct[p] = append(groupOct[p], octants[i])
		}
	}
	out := header
	out = varint.AppendUint(out, uint64(len(occ)))
	if ctx {
		out = varint.AppendUint(out, groupedCtxMarker)
	}
	for p := 0; p < 256; p++ {
		if len(groups[p]) == 0 {
			continue
		}
		var stream []byte
		if ctx {
			stream = appendGroupCtx(groups[p], groupOct[p], byte(p))
		} else {
			stream = compressOccupancy(groups[p])
		}
		out = varint.AppendUint(out, uint64(p))
		out = varint.AppendUint(out, uint64(len(groups[p])))
		out = varint.AppendUint(out, uint64(len(stream)))
		out = append(out, stream...)
	}
	// Sentinel terminating the group list (256 is outside the code range).
	out = varint.AppendUint(out, 256)

	countStream := arith.CompressUints(counts)
	out = varint.AppendUint(out, uint64(len(counts)))
	out = varint.AppendUint(out, uint64(len(countStream)))
	out = append(out, countStream...)
	enc.Data = out
	return enc, nil
}

// appendGroupCtx codes one parent-code group's occupancy codes under a
// snapshot-seeded bank: the context is the face-adjacency mask of the
// node's octant within parent, and symbols are reflected by the octant so
// mirror-image configurations share statistics.
func appendGroupCtx(codes []byte, octants []uint8, parent byte) []byte {
	feats := ctxmodel.DefaultFeatures
	bank := ctxmodel.GetBank(feats.Contexts(), 256)
	e := arith.GetEncoder()
	for i, code := range codes {
		oct := octants[i]
		bank.Encode(e, feats.Index(parent, oct, 0, 0), int(ctxmodel.Reflect(code, oct)))
	}
	out := e.AppendFinish(nil)
	arith.PutEncoder(e)
	ctxmodel.PutBank(bank)
	return out
}

// buildWithParents is buildAndSerialize plus, for every emitted occupancy
// code, the occupancy code of its parent (0 for the root, which has none)
// and the node's child octant within that parent (0 for the root).
func buildWithParents(points geom.PointCloud, min geom.Point, side float64, depth int) (occ, parents []byte, octants []uint8, counts []uint64, order []int) {
	// Octree_i is a comparison baseline, not a hot path, so it keeps the
	// simple bucket-per-node construction instead of the pooled scatter
	// buffers of buildAndSerialize.
	type pnode struct {
		pts        []int32
		center     geom.Point
		half       float64
		parentCode byte
		octant     uint8
	}
	all := make([]int32, len(points))
	for i := range all {
		all[i] = int32(i)
	}
	half := side / 2
	level := []pnode{{pts: all, center: min.Add(geom.Point{X: half, Y: half, Z: half}), half: half}}

	for d := 0; d < depth; d++ {
		next := make([]pnode, 0, len(level)*2)
		for _, nd := range level {
			var buckets [8][]int32
			for _, idx := range nd.pts {
				c := childIndex(points[idx], nd.center)
				buckets[c] = append(buckets[c], idx)
			}
			var code byte
			qh := nd.half / 2
			for c := 0; c < 8; c++ {
				if len(buckets[c]) == 0 {
					continue
				}
				code |= 1 << uint(c)
			}
			occ = append(occ, code)
			parents = append(parents, nd.parentCode)
			octants = append(octants, nd.octant)
			for c := 0; c < 8; c++ {
				if len(buckets[c]) == 0 {
					continue
				}
				next = append(next, pnode{
					pts:        buckets[c],
					center:     childCenter(nd.center, qh, c),
					half:       qh,
					parentCode: code,
					octant:     uint8(c),
				})
			}
		}
		level = next
	}

	order = make([]int, 0, len(points))
	counts = make([]uint64, 0, len(level))
	for _, leaf := range level {
		counts = append(counts, uint64(len(leaf.pts)))
		for _, idx := range leaf.pts {
			order = append(order, int(idx))
		}
	}
	return occ, parents, octants, counts, order
}

// DecodeGrouped reconstructs a cloud from an EncodeGrouped stream.
func DecodeGrouped(data []byte) (geom.PointCloud, error) {
	return DecodeGroupedLimited(data, nil)
}

// DecodeGroupedLimited is DecodeGrouped charging decoded points, occupancy
// symbols, and tree nodes against b. A nil budget is unlimited. Panics on
// hostile bytes are recovered into ErrCorrupt-wrapped errors.
func DecodeGroupedLimited(data []byte, b *declimits.Budget) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	n, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: point count: %w", err)
	}
	data = data[used:]
	if n == 0 {
		return geom.PointCloud{}, nil
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: point count overflow", ErrCorrupt)
	}
	if err := b.Points(int64(n)); err != nil {
		return nil, err
	}
	var min geom.Point
	var side float64
	if min.X, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Y, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Z, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("%w: invalid cube side %v", ErrCorrupt, side)
	}
	depth64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: depth: %w", err)
	}
	data = data[used:]
	if depth64 > maxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeds limit", ErrCorrupt, depth64)
	}
	depth := int(depth64)

	total, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: code count: %w", err)
	}
	data = data[used:]
	if total > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: code count overflow", ErrCorrupt)
	}

	// A leading sentinel 257 in the group list announces the context-modeled
	// dialect; legacy streams go straight to group ids (or the 256 end mark).
	ctx := false
	if p, used, err := varint.Uint(data); err == nil && p == groupedCtxMarker {
		ctx = true
		data = data[used:]
	}

	// Read the per-parent-code group streams. Legacy groups decode eagerly;
	// context groups hold a live decoder and are pulled one code at a time
	// during the replay below (their contexts need the replay's octants).
	type group struct {
		codes []byte
		next  int
		// Context-dialect state.
		dec    *arith.Decoder
		bank   *ctxmodel.Bank
		parent byte
		left   int
	}
	groups := make([]*group, 256)
	defer func() {
		for _, g := range groups {
			if g == nil || g.dec == nil {
				continue
			}
			arith.PutDecoder(g.dec)
			ctxmodel.PutBank(g.bank)
		}
	}()
	feats := ctxmodel.DefaultFeatures
	for {
		p, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("octree: group id: %w", err)
		}
		data = data[used:]
		if p == 256 {
			break
		}
		if p > 255 || groups[p] != nil {
			return nil, fmt.Errorf("%w: bad group id %d", ErrCorrupt, p)
		}
		cnt, payload, rest, err := readSection(data, "group")
		if err != nil {
			return nil, err
		}
		data = rest
		if uint64(cnt) > total {
			return nil, fmt.Errorf("%w: group of %d codes exceeds code total %d", ErrCorrupt, cnt, total)
		}
		if ctx {
			if err := b.Contexts(int64(feats.Contexts())+1, ctxmodel.ModelBytes256); err != nil {
				return nil, err
			}
			if err := b.Nodes(int64(cnt)); err != nil {
				return nil, err
			}
			groups[p] = &group{dec: arith.GetDecoder(payload), bank: ctxmodel.GetBank(feats.Contexts(), 256), parent: byte(p), left: cnt}
			continue
		}
		codes, err := decompressOccupancy(payload, cnt, b)
		if err != nil {
			return nil, err
		}
		groups[p] = &group{codes: codes}
	}

	countLen, countStream, _, err := readSection(data, "counts")
	if err != nil {
		return nil, err
	}
	// Every leaf holds at least one point, so a counts section longer than
	// the point total is corrupt; reject before decoding countLen symbols.
	if uint64(countLen) > n {
		return nil, fmt.Errorf("%w: %d leaf counts for %d points", ErrCorrupt, countLen, n)
	}
	counts, err := arith.DecompressUintsLimited(countStream, countLen, b)
	if err != nil {
		return nil, fmt.Errorf("octree: counts: %w", err)
	}

	// Replay the BFS, pulling each node's code from its parent's group.
	type cell struct {
		center     geom.Point
		half       float64
		parentCode byte
		octant     uint8
	}
	half := side / 2
	level := []cell{{center: min.Add(geom.Point{X: half, Y: half, Z: half}), half: half}}
	read := 0
	for d := 0; d < depth; d++ {
		next := make([]cell, 0, len(level)*2)
		for _, cl := range level {
			g := groups[cl.parentCode]
			var code byte
			switch {
			case g == nil:
				return nil, fmt.Errorf("%w: group %d exhausted", ErrCorrupt, cl.parentCode)
			case ctx:
				if g.left <= 0 {
					return nil, fmt.Errorf("%w: group %d exhausted", ErrCorrupt, cl.parentCode)
				}
				sym, err := g.bank.Decode(g.dec, feats.Index(g.parent, cl.octant, 0, 0))
				if err != nil {
					return nil, fmt.Errorf("octree: group %d: %w", cl.parentCode, err)
				}
				code = ctxmodel.Reflect(byte(sym), cl.octant)
				g.left--
			default:
				if g.next >= len(g.codes) {
					return nil, fmt.Errorf("%w: group %d exhausted", ErrCorrupt, cl.parentCode)
				}
				code = g.codes[g.next]
				g.next++
			}
			read++
			if code == 0 {
				return nil, fmt.Errorf("%w: empty occupancy code", ErrCorrupt)
			}
			qh := cl.half / 2
			for c := 0; c < 8; c++ {
				if code&(1<<uint(c)) != 0 {
					next = append(next, cell{center: childCenter(cl.center, qh, c), half: qh, parentCode: code, octant: uint8(c)})
				}
			}
		}
		if err := b.Nodes(int64(len(next))); err != nil {
			return nil, err
		}
		level = next
	}
	if uint64(read) != total {
		return nil, fmt.Errorf("%w: read %d codes, header says %d", ErrCorrupt, read, total)
	}
	if len(level) != len(counts) {
		return nil, fmt.Errorf("%w: %d leaves but %d counts", ErrCorrupt, len(level), len(counts))
	}
	out := make(geom.PointCloud, 0, clampCap(n))
	for i, cl := range level {
		cnt := counts[i]
		// Remaining-budget comparison: summing first could wrap uint64.
		if cnt == 0 || cnt > n-uint64(len(out)) {
			return nil, fmt.Errorf("%w: leaf counts disagree with point total", ErrCorrupt)
		}
		for k := uint64(0); k < cnt; k++ {
			out = append(out, cl.center)
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("%w: decoded %d points, header says %d", ErrCorrupt, len(out), n)
	}
	return out, nil
}
