package octree

import (
	"math"
	"testing"

	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// TestHostileHeaderCount: an octree stream claiming MaxInt32 points must
// fail fast, with or without a budget — the counts-section length check
// (every leaf holds at least one point) rejects it before any
// header-derived allocation.
func TestHostileHeaderCount(t *testing.T) {
	pc := geom.PointCloud{{X: 1, Y: 2, Z: 0.5}, {X: 1.01, Y: 2.01, Z: 0.5}, {X: 4, Y: -1, Z: 0.2}}
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	_, used, err := varint.Uint(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	hostile := varint.AppendUint(nil, uint64(math.MaxInt32))
	hostile = append(hostile, enc.Data[used:]...)

	b := declimits.New(declimits.Limits{MaxPoints: 1 << 16, MaxNodes: 1 << 20, MemBudget: 32 << 20})
	if _, err := DecodeLimited(hostile, b); err == nil {
		t.Fatal("MaxInt32 point count decoded without error under budget")
	}
	if _, err := Decode(hostile); err == nil {
		t.Fatal("MaxInt32 point count decoded without error")
	}
}
