// Package octree implements the baseline octree geometry coder of Botsch et
// al. that the paper adopts for dense points (§2.2, §3.2), plus the
// "Octree_i" variant of Garcia et al. that groups occupancy codes by their
// parent's occupancy code and compresses each group separately (§4.1).
//
// Construction follows §2.1: the bounding cube of the cloud is recursively
// partitioned until the leaf side length is at most twice the error bound,
// every non-leaf node is serialized breadth-first as an 8-bit occupancy
// code, and the code sequence is compressed with an adaptive arithmetic
// coder. Decoded points are the centers of the occupied leaves, repeated by
// the per-leaf point count so the decompressed cloud keeps a one-to-one
// mapping with the input.
package octree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"dbgc/internal/arith"
	"dbgc/internal/blockpack"
	"dbgc/internal/ctxmodel"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/par"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed octree stream.
var ErrCorrupt = errors.New("octree: corrupt stream")

// maxDepth caps subdivision depth; 40 levels cover any realistic scene-to-
// error-bound ratio (2^40 cells per axis) and bound decoder work on corrupt
// headers.
const maxDepth = 40

// Encoded is the output of Encode.
type Encoded struct {
	// Data is the self-contained bit stream.
	Data []byte
	// DecodedOrder maps decoded point position j to the index of the
	// original point it reconstructs. It is side information for error
	// accounting and is not part of Data.
	DecodedOrder []int
	// EntropyTime is the wall time of the arithmetic coding passes
	// (occupancy + counts), separated from tree construction so per-stage
	// benchmarks can pinpoint the entropy bottleneck.
	EntropyTime time.Duration
}

// span is one octree node during breadth-first construction: a range of the
// scratch index array holding the points inside its cell. All nodes of one
// level share the same half side length, so only the center is per-node.
type span struct {
	start, end int
	center     geom.Point
}

// buildScratch holds the reusable state of one breadth-first construction:
// two ping-pong point index arrays, the per-point child octant cache, the
// node spans of the current and next level, and the occupancy/count output
// sequences. Pooled so steady-state Encode allocates only its output.
type buildScratch struct {
	idx     [2][]int32
	octant  []uint8
	cur     []span
	next    []span
	occ     []byte
	counts  []uint64
	codes   []byte  // per-span occupancy codes of the parallel pass
	counts8 []int32 // per-span flattened [8]int32 child counts
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// grow returns s with length n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// EncodeOptions tunes Encode.
type EncodeOptions struct {
	// Parallel shards the per-level occupancy construction across CPUs and
	// runs the arithmetic coding passes concurrently. The stream is
	// byte-identical to a serial encode with the same Shards value.
	Parallel bool
	// Shards splits the occupancy and count entropy streams into this many
	// independently-coded shards (container v3). Values <= 1 keep the
	// legacy single-coder streams, byte-identical to previous releases.
	// The produced stream requires a shard-aware decoder (DecodeWith with
	// Sharded set) when Shards > 1.
	Shards int
	// BlockPack codes the per-leaf count stream with the blockpack codec
	// instead of the adaptive arithmetic coder (container v4) and moves the
	// occupancy stream into the sharded framing. The produced stream
	// requires DecodeWith with BlockPack set. Off keeps v2/v3 bytes
	// unchanged.
	BlockPack bool
	// Context prefixes the occupancy stream with a one-byte method marker
	// and, when the context-modeled coding of internal/ctxmodel beats the
	// v2/v3/v4 bytes, emits it (container v5). The per-stream size guard
	// means enabling Context never grows the stream; when context coding
	// loses, the marker is followed by the exact legacy bytes. The
	// produced stream requires DecodeWith with Context set.
	Context bool
	// CtxFeatures selects the occupancy context features when Context is
	// set; zero means ctxmodel.DefaultFeatures. It exists for the benchkit
	// ablation.
	CtxFeatures ctxmodel.Features
}

// Occupancy method markers of the Context (v5) dialect.
const (
	occMethodLegacy = 0 // the v2/v3/v4 occupancy bytes, unchanged
	occMethodCtx    = 1 // the ctxmodel context-coded stream
)

// ctxFeatures resolves the effective feature set of a Context encode.
func (o EncodeOptions) ctxFeatures() ctxmodel.Features {
	if o.CtxFeatures != 0 {
		return o.CtxFeatures
	}
	return ctxmodel.DefaultFeatures
}

// Sharded reports whether the options produce sharded entropy streams.
// BlockPack (v4) always uses the shard framing, with possibly one shard.
func (o EncodeOptions) sharded() bool { return o.Shards > 1 || o.BlockPack }

// Encode compresses points so that every reconstructed coordinate differs
// from the original by at most q per dimension. An empty input encodes to a
// valid empty stream.
func Encode(points geom.PointCloud, q float64) (Encoded, error) {
	return EncodeWith(points, q, EncodeOptions{})
}

// EncodeWith is Encode with explicit options.
func EncodeWith(points geom.PointCloud, q float64, opts EncodeOptions) (Encoded, error) {
	if q <= 0 {
		return Encoded{}, fmt.Errorf("octree: error bound must be positive, got %v", q)
	}
	var enc Encoded
	header := make([]byte, 0, 64)
	header = varint.AppendUint(header, uint64(len(points)))
	if len(points) == 0 {
		enc.Data = header
		return enc, nil
	}

	cube := geom.Bounds(points).Cube()
	depth := depthFor(cube.MaxDim(), q)
	// Pad the cube so leaves measure exactly 2q (§2.1): without padding
	// the leaf side would depend on the cloud extent and could shrink to
	// half the allowed size, wasting a full subdivision level.
	side := 2 * q * math.Pow(2, float64(depth))
	if side < cube.MaxDim() {
		side = cube.MaxDim()
	}
	header = appendFloat(header, cube.Min.X)
	header = appendFloat(header, cube.Min.Y)
	header = appendFloat(header, cube.Min.Z)
	header = appendFloat(header, side)
	header = varint.AppendUint(header, uint64(depth))

	scratch := buildPool.Get().(*buildScratch)
	occ, counts, order := buildAndSerialize(scratch, points, cube.Min, side, depth, opts.Parallel)
	enc.DecodedOrder = order

	// The two output streams are independent; the occupancy and count
	// coders run concurrently when parallelism is on, and each stream
	// additionally splits into opts.Shards independent shards.
	entStart := time.Now()
	var occStream, countStream []byte
	encodeOcc := func() []byte {
		var legacy []byte
		if opts.sharded() {
			legacy = arith.AppendCompressCodesSharded(nil, occ, 256, opts.Shards, opts.Parallel)
		} else {
			legacy = compressOccupancy(occ)
		}
		if !opts.Context {
			return legacy
		}
		// v5 dialect: a method marker precedes the stream, and the smaller
		// of the context-modeled and legacy codings wins. Ties go to
		// legacy, so guarded output degenerates to exactly the v3/v4 bytes
		// plus one marker.
		ctx := ctxmodel.AppendOcc(make([]byte, 1, 64+len(legacy)), occ, depth, opts.ctxFeatures(), opts.Shards, opts.Parallel)
		if len(ctx) < len(legacy)+1 {
			ctx[0] = occMethodCtx
			return ctx
		}
		return append([]byte{occMethodLegacy}, legacy...)
	}
	encodeCounts := func() []byte {
		if opts.BlockPack {
			return blockpack.PackUint64Sharded(nil, counts, opts.Shards, opts.Parallel)
		}
		if opts.sharded() {
			return arith.AppendCompressUintsSharded(nil, counts, opts.Shards, opts.Parallel)
		}
		return arith.AppendCompressUints(nil, counts)
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			countStream = encodeCounts()
		}()
		occStream = encodeOcc()
		wg.Wait()
	} else {
		occStream = encodeOcc()
		countStream = encodeCounts()
	}
	enc.EntropyTime = time.Since(entStart)

	out := header
	out = varint.AppendUint(out, uint64(len(occ)))
	out = varint.AppendUint(out, uint64(len(occStream)))
	out = append(out, occStream...)
	out = varint.AppendUint(out, uint64(len(counts)))
	out = varint.AppendUint(out, uint64(len(countStream)))
	out = append(out, countStream...)
	buildPool.Put(scratch)
	enc.Data = out
	return enc, nil
}

// CollectCounts builds the octree for points at error bound q and returns
// the per-leaf point count stream without entropy coding it. It exists for
// the benchkit pack ablation, which compares codecs on the real count
// stream of a frame.
func CollectCounts(points geom.PointCloud, q float64) ([]uint64, error) {
	if q <= 0 {
		return nil, fmt.Errorf("octree: error bound must be positive, got %v", q)
	}
	if len(points) == 0 {
		return nil, nil
	}
	cube := geom.Bounds(points).Cube()
	depth := depthFor(cube.MaxDim(), q)
	side := 2 * q * math.Pow(2, float64(depth))
	if side < cube.MaxDim() {
		side = cube.MaxDim()
	}
	scratch := buildPool.Get().(*buildScratch)
	_, counts, _ := buildAndSerialize(scratch, points, cube.Min, side, depth, false)
	out := append([]uint64(nil), counts...)
	buildPool.Put(scratch)
	return out, nil
}

// CollectOccupancy builds the octree for points at error bound q and
// returns the breadth-first occupancy code sequence and the tree depth
// without entropy coding. It exists for the benchkit ctx ablation, which
// compares context schemes on the real occupancy stream of a frame.
func CollectOccupancy(points geom.PointCloud, q float64) ([]byte, int, error) {
	if q <= 0 {
		return nil, 0, fmt.Errorf("octree: error bound must be positive, got %v", q)
	}
	if len(points) == 0 {
		return nil, 0, nil
	}
	cube := geom.Bounds(points).Cube()
	depth := depthFor(cube.MaxDim(), q)
	side := 2 * q * math.Pow(2, float64(depth))
	if side < cube.MaxDim() {
		side = cube.MaxDim()
	}
	scratch := buildPool.Get().(*buildScratch)
	occ, _, _ := buildAndSerialize(scratch, points, cube.Min, side, depth, false)
	out := append([]byte(nil), occ...)
	buildPool.Put(scratch)
	return out, depth, nil
}

// depthFor returns the number of subdivision levels needed for leaf side
// lengths of at most 2q.
func depthFor(side, q float64) int {
	if side <= 2*q {
		return 0
	}
	d := math.Ceil(math.Log2(side / (2 * q)))
	if math.IsNaN(d) || d < 0 {
		return 0
	}
	if d > maxDepth {
		return maxDepth
	}
	return int(d)
}

// parallelLevelMin is the span count above which a level's occupancy pass
// fans out; small top levels stay serial to skip the fork-join overhead.
const parallelLevelMin = 16

// buildAndSerialize performs the breadth-first construction on pooled
// scratch, returning the occupancy code sequence, the per-leaf point counts
// (in leaf emission order), and the decoded-order mapping. occ and counts
// alias the scratch and are only valid until it is returned to the pool;
// order is freshly allocated (it leaves Encode as DecodedOrder).
//
// With parallel set, each level splits into a parallel occupancy pass —
// every node's octant counts, point scatter, and code byte touch only that
// node's range of the index arrays, so nodes shard freely — and a serial
// stitch appending the per-node results to the occupancy sequence and next
// level in node order. The output is identical to the serial construction.
func buildAndSerialize(s *buildScratch, points geom.PointCloud, min geom.Point, side float64, depth int, parallel bool) (occ []byte, counts []uint64, order []int) {
	n := len(points)
	src := grow(s.idx[0], n)
	dst := grow(s.idx[1], n)
	s.octant = grow(s.octant, n)
	for i := range src {
		src[i] = int32(i)
	}
	half := side / 2
	s.cur = append(s.cur[:0], span{start: 0, end: n, center: min.Add(geom.Point{X: half, Y: half, Z: half})})
	s.occ = s.occ[:0]

	splitNode := func(nd span, count *[8]int) {
		// Pass 1: octant of every point, and per-child counts.
		for _, idx := range src[nd.start:nd.end] {
			c := childIndex(points[idx], nd.center)
			s.octant[idx] = uint8(c)
			count[c]++
		}
		// Prefix offsets inside the node's range, then scatter.
		var pos [8]int
		pos[0] = nd.start
		for c := 1; c < 8; c++ {
			pos[c] = pos[c-1] + count[c-1]
		}
		for _, idx := range src[nd.start:nd.end] {
			c := s.octant[idx]
			dst[pos[c]] = idx
			pos[c]++
		}
	}

	for d := 0; d < depth; d++ {
		next := s.next[:0]
		qh := half / 2
		if parallel && len(s.cur) >= parallelLevelMin {
			nodes := s.cur
			cnts := grow(s.counts8, 8*len(nodes))
			par.Chunks(len(nodes), func(w, lo, hi int) {
				for k := lo; k < hi; k++ {
					var count [8]int
					splitNode(nodes[k], &count)
					for c := 0; c < 8; c++ {
						cnts[8*k+c] = int32(count[c])
					}
				}
			})
			s.counts8 = cnts
			// Serial stitch: emit codes and child spans in node order.
			for k, nd := range nodes {
				off := nd.start
				var code byte
				for c := 0; c < 8; c++ {
					cv := int(cnts[8*k+c])
					if cv == 0 {
						continue
					}
					code |= 1 << uint(c)
					next = append(next, span{
						start:  off,
						end:    off + cv,
						center: childCenter(nd.center, qh, c),
					})
					off += cv
				}
				s.occ = append(s.occ, code)
			}
		} else {
			for _, nd := range s.cur {
				var count [8]int
				splitNode(nd, &count)
				off := nd.start
				var code byte
				for c := 0; c < 8; c++ {
					if count[c] == 0 {
						continue
					}
					code |= 1 << uint(c)
					next = append(next, span{
						start:  off,
						end:    off + count[c],
						center: childCenter(nd.center, qh, c),
					})
					off += count[c]
				}
				s.occ = append(s.occ, code)
			}
		}
		s.next = s.cur[:0]
		s.cur = next
		src, dst = dst, src
		half = qh
	}
	s.idx[0], s.idx[1] = src, dst

	order = make([]int, 0, n)
	s.counts = s.counts[:0]
	for _, leaf := range s.cur {
		s.counts = append(s.counts, uint64(leaf.end-leaf.start))
		for _, idx := range src[leaf.start:leaf.end] {
			order = append(order, int(idx))
		}
	}
	return s.occ, s.counts, order
}

// childIndex selects the octant of p relative to the cell center: bit 0 for
// x, bit 1 for y, bit 2 for z.
func childIndex(p, center geom.Point) int {
	c := 0
	if p.X >= center.X {
		c |= 1
	}
	if p.Y >= center.Y {
		c |= 2
	}
	if p.Z >= center.Z {
		c |= 4
	}
	return c
}

// childCenter returns the center of octant c of a cell centered at center
// with quarter side qh.
func childCenter(center geom.Point, qh float64, c int) geom.Point {
	off := geom.Point{X: -qh, Y: -qh, Z: -qh}
	if c&1 != 0 {
		off.X = qh
	}
	if c&2 != 0 {
		off.Y = qh
	}
	if c&4 != 0 {
		off.Z = qh
	}
	return center.Add(off)
}

func compressOccupancy(occ []byte) []byte {
	e := arith.GetEncoder()
	m := arith.GetModel(256)
	for _, code := range occ {
		e.Encode(m, int(code))
	}
	out := e.AppendFinish(nil)
	arith.PutModel(m)
	arith.PutEncoder(e)
	return out
}

// Decode reconstructs the point cloud from a stream produced by Encode.
func Decode(data []byte) (geom.PointCloud, error) {
	return DecodeLimited(data, nil)
}

// DecodeOptions selects the stream dialect and resources of one decode.
type DecodeOptions struct {
	// Budget charges decoded points, symbols, and nodes; nil is unlimited.
	Budget *declimits.Budget
	// Sharded declares that the entropy streams use the container v3
	// sharded framing. The container records this per section; it is not
	// inferred from the payload.
	Sharded bool
	// BlockPack declares that the count stream uses the blockpack codec in
	// the shard framing (container v4). Implies the sharded framing for the
	// occupancy stream.
	BlockPack bool
	// Parallel decodes the shards of a sharded stream concurrently. It has
	// no effect on unsharded streams, and none on a context-coded
	// occupancy stream (the context replay is sequential by construction).
	Parallel bool
	// Context declares that the occupancy stream starts with a one-byte
	// method marker (container v5): occMethodLegacy keeps the dialect the
	// other options select, occMethodCtx is the ctxmodel coding.
	Context bool
}

// DecodeLimited is Decode charging decoded points, occupancy symbols, and
// tree nodes against b. A nil budget is unlimited. Panics on hostile bytes
// are recovered into ErrCorrupt-wrapped errors.
func DecodeLimited(data []byte, b *declimits.Budget) (geom.PointCloud, error) {
	return DecodeWith(data, DecodeOptions{Budget: b})
}

// DecodeWith is Decode with explicit options.
func DecodeWith(data []byte, opts DecodeOptions) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	b := opts.Budget
	n, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: point count: %w", err)
	}
	data = data[used:]
	if n == 0 {
		return geom.PointCloud{}, nil
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: point count overflow", ErrCorrupt)
	}
	if err := b.Points(int64(n)); err != nil {
		return nil, err
	}
	var min geom.Point
	var side float64
	if min.X, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Y, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Z, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("%w: invalid cube side %v", ErrCorrupt, side)
	}
	depth64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: depth: %w", err)
	}
	data = data[used:]
	if depth64 > maxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeds limit", ErrCorrupt, depth64)
	}
	depth := int(depth64)

	occLen, occStream, data, err := readSection(data, "occupancy")
	if err != nil {
		return nil, err
	}
	countLen, countStream, _, err := readSection(data, "counts")
	if err != nil {
		return nil, err
	}
	// Every leaf holds at least one point, so a counts section longer than
	// the point total is corrupt; reject before decoding countLen symbols.
	if uint64(countLen) > n {
		return nil, fmt.Errorf("%w: %d leaf counts for %d points", ErrCorrupt, countLen, n)
	}

	ctxOcc := false
	if opts.Context {
		if len(occStream) < 1 {
			return nil, fmt.Errorf("%w: missing occupancy method marker", ErrCorrupt)
		}
		switch occStream[0] {
		case occMethodLegacy:
		case occMethodCtx:
			ctxOcc = true
		default:
			return nil, fmt.Errorf("%w: unknown occupancy method %d", ErrCorrupt, occStream[0])
		}
		occStream = occStream[1:]
	}

	var occ []byte
	var counts []uint64
	switch {
	case ctxOcc:
		occ, err = ctxmodel.DecodeOcc(occStream, occLen, depth, b)
	case opts.Sharded || opts.BlockPack:
		occ, err = arith.DecompressCodesShardedLimited(occStream, occLen, 256, b, opts.Parallel)
	default:
		occ, err = decompressOccupancy(occStream, occLen, b)
	}
	if err != nil {
		return nil, fmt.Errorf("octree: occupancy: %w", err)
	}
	if opts.BlockPack {
		counts, err = blockpack.UnpackUint64Sharded(countStream, countLen, b, opts.Parallel)
	} else if opts.Sharded {
		counts, err = arith.DecompressUintsShardedLimited(countStream, countLen, b, opts.Parallel)
	} else {
		counts, err = arith.DecompressUintsLimited(countStream, countLen, b)
	}
	if err != nil {
		return nil, fmt.Errorf("octree: counts: %w", err)
	}

	leaves, err := rebuildLeaves(occ, min, side, depth, b)
	if err != nil {
		return nil, err
	}
	if len(leaves) != len(counts) {
		return nil, fmt.Errorf("%w: %d leaves but %d counts", ErrCorrupt, len(leaves), len(counts))
	}
	out := make(geom.PointCloud, 0, clampCap(n))
	for i, c := range leaves {
		cnt := counts[i]
		// Compare against the remaining budget; summing cnt into the
		// running total first could wrap uint64 for adversarial counts.
		if cnt == 0 || cnt > n-uint64(len(out)) {
			return nil, fmt.Errorf("%w: leaf counts disagree with point total", ErrCorrupt)
		}
		for k := uint64(0); k < cnt; k++ {
			out = append(out, c)
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("%w: decoded %d points, header says %d", ErrCorrupt, len(out), n)
	}
	return out, nil
}

// rebuildScratch holds the two ping-pong center slices of the decode-side
// breadth-first replay.
type rebuildScratch struct {
	cur, next []geom.Point
}

var rebuildPool = sync.Pool{New: func() any { return new(rebuildScratch) }}

// rebuildLeaves replays the breadth-first subdivision and returns the leaf
// centers in emission order. All cells of one level share the same half
// side length, so the replay tracks centers only. The returned slice is
// freshly allocated; the working levels come from a pool.
func rebuildLeaves(occ []byte, min geom.Point, side float64, depth int, b *declimits.Budget) ([]geom.Point, error) {
	s := rebuildPool.Get().(*rebuildScratch)
	defer rebuildPool.Put(s)
	half := side / 2
	level := append(s.cur[:0], min.Add(geom.Point{X: half, Y: half, Z: half}))
	next := s.next[:0]
	pos := 0
	for d := 0; d < depth; d++ {
		next = next[:0]
		qh := half / 2
		for _, center := range level {
			if pos >= len(occ) {
				s.cur, s.next = level, next
				return nil, fmt.Errorf("%w: occupancy stream too short", ErrCorrupt)
			}
			code := occ[pos]
			pos++
			if code == 0 {
				s.cur, s.next = level, next
				return nil, fmt.Errorf("%w: empty occupancy code", ErrCorrupt)
			}
			for c := 0; c < 8; c++ {
				if code&(1<<uint(c)) != 0 {
					next = append(next, childCenter(center, qh, c))
				}
			}
		}
		if err := b.Nodes(int64(len(next))); err != nil {
			s.cur, s.next = level, next
			return nil, err
		}
		level, next = next, level
		half = qh
	}
	s.cur, s.next = level, next
	if pos != len(occ) {
		return nil, fmt.Errorf("%w: %d unused occupancy codes", ErrCorrupt, len(occ)-pos)
	}
	centers := make([]geom.Point, len(level))
	copy(centers, level)
	return centers, nil
}

// clampCap bounds a header-declared element count before it is used as an
// allocation capacity, so a corrupt header cannot trigger a huge up-front
// allocation. Decoding still appends past the clamp when the stream really
// carries that many elements.
func clampCap(n uint64) int {
	const maxPrealloc = 1 << 22
	if n > maxPrealloc {
		return maxPrealloc
	}
	return int(n)
}

func decompressOccupancy(stream []byte, n int, b *declimits.Budget) ([]byte, error) {
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	d := arith.GetDecoder(stream)
	m := arith.GetModel(256)
	out := make([]byte, 0, clampCap(uint64(n)))
	for i := 0; i < n; i++ {
		sym, err := d.Decode(m)
		if err != nil {
			arith.PutModel(m)
			arith.PutDecoder(d)
			return nil, fmt.Errorf("octree: occupancy %d/%d: %w", i, n, err)
		}
		out = append(out, byte(sym))
	}
	arith.PutModel(m)
	arith.PutDecoder(d)
	return out, nil
}

// readSection reads "elementCount, byteLength, bytes" written by Encode.
func readSection(data []byte, name string) (count int, payload, rest []byte, err error) {
	c, used, err := varint.Uint(data)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("octree: %s count: %w", name, err)
	}
	data = data[used:]
	l, used, err := varint.Uint(data)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("octree: %s length: %w", name, err)
	}
	data = data[used:]
	if l > uint64(len(data)) {
		return 0, nil, nil, fmt.Errorf("%w: %s section truncated", ErrCorrupt, name)
	}
	if c > uint64(math.MaxInt32) {
		return 0, nil, nil, fmt.Errorf("%w: %s count overflow", ErrCorrupt, name)
	}
	return int(c), data[:l], data[l:], nil
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func readFloat(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated float", ErrCorrupt)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
}
