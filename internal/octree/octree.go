// Package octree implements the baseline octree geometry coder of Botsch et
// al. that the paper adopts for dense points (§2.2, §3.2), plus the
// "Octree_i" variant of Garcia et al. that groups occupancy codes by their
// parent's occupancy code and compresses each group separately (§4.1).
//
// Construction follows §2.1: the bounding cube of the cloud is recursively
// partitioned until the leaf side length is at most twice the error bound,
// every non-leaf node is serialized breadth-first as an 8-bit occupancy
// code, and the code sequence is compressed with an adaptive arithmetic
// coder. Decoded points are the centers of the occupied leaves, repeated by
// the per-leaf point count so the decompressed cloud keeps a one-to-one
// mapping with the input.
package octree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed octree stream.
var ErrCorrupt = errors.New("octree: corrupt stream")

// maxDepth caps subdivision depth; 40 levels cover any realistic scene-to-
// error-bound ratio (2^40 cells per axis) and bound decoder work on corrupt
// headers.
const maxDepth = 40

// Encoded is the output of Encode.
type Encoded struct {
	// Data is the self-contained bit stream.
	Data []byte
	// DecodedOrder maps decoded point position j to the index of the
	// original point it reconstructs. It is side information for error
	// accounting and is not part of Data.
	DecodedOrder []int
}

// node is one octree node during breadth-first construction: a slice of
// point indices that fall inside its cell.
type node struct {
	pts    []int32
	center geom.Point
	half   float64 // half side length of the cell
}

// Encode compresses points so that every reconstructed coordinate differs
// from the original by at most q per dimension. An empty input encodes to a
// valid empty stream.
func Encode(points geom.PointCloud, q float64) (Encoded, error) {
	if q <= 0 {
		return Encoded{}, fmt.Errorf("octree: error bound must be positive, got %v", q)
	}
	var enc Encoded
	header := make([]byte, 0, 64)
	header = varint.AppendUint(header, uint64(len(points)))
	if len(points) == 0 {
		enc.Data = header
		return enc, nil
	}

	cube := geom.Bounds(points).Cube()
	depth := depthFor(cube.MaxDim(), q)
	// Pad the cube so leaves measure exactly 2q (§2.1): without padding
	// the leaf side would depend on the cloud extent and could shrink to
	// half the allowed size, wasting a full subdivision level.
	side := 2 * q * math.Pow(2, float64(depth))
	if side < cube.MaxDim() {
		side = cube.MaxDim()
	}
	header = appendFloat(header, cube.Min.X)
	header = appendFloat(header, cube.Min.Y)
	header = appendFloat(header, cube.Min.Z)
	header = appendFloat(header, side)
	header = varint.AppendUint(header, uint64(depth))

	occ, counts, order := buildAndSerialize(points, cube.Min, side, depth)
	enc.DecodedOrder = order

	occStream := compressOccupancy(occ)
	countStream := arith.CompressUints(counts)

	out := header
	out = varint.AppendUint(out, uint64(len(occ)))
	out = varint.AppendUint(out, uint64(len(occStream)))
	out = append(out, occStream...)
	out = varint.AppendUint(out, uint64(len(counts)))
	out = varint.AppendUint(out, uint64(len(countStream)))
	out = append(out, countStream...)
	enc.Data = out
	return enc, nil
}

// depthFor returns the number of subdivision levels needed for leaf side
// lengths of at most 2q.
func depthFor(side, q float64) int {
	if side <= 2*q {
		return 0
	}
	d := math.Ceil(math.Log2(side / (2 * q)))
	if math.IsNaN(d) || d < 0 {
		return 0
	}
	if d > maxDepth {
		return maxDepth
	}
	return int(d)
}

// buildAndSerialize performs the breadth-first construction, returning the
// occupancy code sequence, the per-leaf point counts (in leaf emission
// order), and the decoded-order mapping.
func buildAndSerialize(points geom.PointCloud, min geom.Point, side float64, depth int) (occ []byte, counts []uint64, order []int) {
	all := make([]int32, len(points))
	for i := range all {
		all[i] = int32(i)
	}
	half := side / 2
	level := []node{{pts: all, center: min.Add(geom.Point{X: half, Y: half, Z: half}), half: half}}

	for d := 0; d < depth; d++ {
		next := make([]node, 0, len(level)*2)
		for _, nd := range level {
			var buckets [8][]int32
			for _, idx := range nd.pts {
				c := childIndex(points[idx], nd.center)
				buckets[c] = append(buckets[c], idx)
			}
			var code byte
			qh := nd.half / 2
			for c := 0; c < 8; c++ {
				if len(buckets[c]) == 0 {
					continue
				}
				code |= 1 << uint(c)
				next = append(next, node{
					pts:    buckets[c],
					center: childCenter(nd.center, qh, c),
					half:   qh,
				})
			}
			occ = append(occ, code)
		}
		level = next
	}

	order = make([]int, 0, len(points))
	counts = make([]uint64, 0, len(level))
	for _, leaf := range level {
		counts = append(counts, uint64(len(leaf.pts)))
		for _, idx := range leaf.pts {
			order = append(order, int(idx))
		}
	}
	return occ, counts, order
}

// childIndex selects the octant of p relative to the cell center: bit 0 for
// x, bit 1 for y, bit 2 for z.
func childIndex(p, center geom.Point) int {
	c := 0
	if p.X >= center.X {
		c |= 1
	}
	if p.Y >= center.Y {
		c |= 2
	}
	if p.Z >= center.Z {
		c |= 4
	}
	return c
}

// childCenter returns the center of octant c of a cell centered at center
// with quarter side qh.
func childCenter(center geom.Point, qh float64, c int) geom.Point {
	off := geom.Point{X: -qh, Y: -qh, Z: -qh}
	if c&1 != 0 {
		off.X = qh
	}
	if c&2 != 0 {
		off.Y = qh
	}
	if c&4 != 0 {
		off.Z = qh
	}
	return center.Add(off)
}

func compressOccupancy(occ []byte) []byte {
	e := arith.NewEncoder()
	m := arith.NewModel(256)
	for _, code := range occ {
		e.Encode(m, int(code))
	}
	return e.Finish()
}

// Decode reconstructs the point cloud from a stream produced by Encode.
func Decode(data []byte) (geom.PointCloud, error) {
	n, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: point count: %w", err)
	}
	data = data[used:]
	if n == 0 {
		return geom.PointCloud{}, nil
	}
	var min geom.Point
	var side float64
	if min.X, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Y, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if min.Z, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side, data, err = readFloat(data); err != nil {
		return nil, err
	}
	if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("%w: invalid cube side %v", ErrCorrupt, side)
	}
	depth64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("octree: depth: %w", err)
	}
	data = data[used:]
	if depth64 > maxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeds limit", ErrCorrupt, depth64)
	}
	depth := int(depth64)

	occLen, occStream, data, err := readSection(data, "occupancy")
	if err != nil {
		return nil, err
	}
	countLen, countStream, _, err := readSection(data, "counts")
	if err != nil {
		return nil, err
	}

	occ, err := decompressOccupancy(occStream, occLen)
	if err != nil {
		return nil, err
	}
	counts, err := arith.DecompressUints(countStream, countLen)
	if err != nil {
		return nil, fmt.Errorf("octree: counts: %w", err)
	}

	leaves, err := rebuildLeaves(occ, min, side, depth)
	if err != nil {
		return nil, err
	}
	if len(leaves) != len(counts) {
		return nil, fmt.Errorf("%w: %d leaves but %d counts", ErrCorrupt, len(leaves), len(counts))
	}
	out := make(geom.PointCloud, 0, n)
	for i, c := range leaves {
		cnt := counts[i]
		if cnt == 0 || uint64(len(out))+cnt > n {
			return nil, fmt.Errorf("%w: leaf counts disagree with point total", ErrCorrupt)
		}
		for k := uint64(0); k < cnt; k++ {
			out = append(out, c)
		}
	}
	if uint64(len(out)) != n {
		return nil, fmt.Errorf("%w: decoded %d points, header says %d", ErrCorrupt, len(out), n)
	}
	return out, nil
}

// rebuildLeaves replays the breadth-first subdivision and returns the leaf
// centers in emission order.
func rebuildLeaves(occ []byte, min geom.Point, side float64, depth int) ([]geom.Point, error) {
	half := side / 2
	type cell struct {
		center geom.Point
		half   float64
	}
	level := []cell{{center: min.Add(geom.Point{X: half, Y: half, Z: half}), half: half}}
	pos := 0
	for d := 0; d < depth; d++ {
		next := make([]cell, 0, len(level)*2)
		for _, cl := range level {
			if pos >= len(occ) {
				return nil, fmt.Errorf("%w: occupancy stream too short", ErrCorrupt)
			}
			code := occ[pos]
			pos++
			if code == 0 {
				return nil, fmt.Errorf("%w: empty occupancy code", ErrCorrupt)
			}
			qh := cl.half / 2
			for c := 0; c < 8; c++ {
				if code&(1<<uint(c)) != 0 {
					next = append(next, cell{center: childCenter(cl.center, qh, c), half: qh})
				}
			}
		}
		level = next
	}
	if pos != len(occ) {
		return nil, fmt.Errorf("%w: %d unused occupancy codes", ErrCorrupt, len(occ)-pos)
	}
	centers := make([]geom.Point, len(level))
	for i, cl := range level {
		centers[i] = cl.center
	}
	return centers, nil
}

func decompressOccupancy(stream []byte, n int) ([]byte, error) {
	d := arith.NewDecoder(stream)
	m := arith.NewModel(256)
	out := make([]byte, n)
	for i := range out {
		sym, err := d.Decode(m)
		if err != nil {
			return nil, fmt.Errorf("octree: occupancy %d/%d: %w", i, n, err)
		}
		out[i] = byte(sym)
	}
	return out, nil
}

// readSection reads "elementCount, byteLength, bytes" written by Encode.
func readSection(data []byte, name string) (count int, payload, rest []byte, err error) {
	c, used, err := varint.Uint(data)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("octree: %s count: %w", name, err)
	}
	data = data[used:]
	l, used, err := varint.Uint(data)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("octree: %s length: %w", name, err)
	}
	data = data[used:]
	if l > uint64(len(data)) {
		return 0, nil, nil, fmt.Errorf("%w: %s section truncated", ErrCorrupt, name)
	}
	if c > uint64(math.MaxInt32) {
		return 0, nil, nil, fmt.Errorf("%w: %s count overflow", ErrCorrupt, name)
	}
	return int(c), data[:l], data[l:], nil
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func readFloat(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated float", ErrCorrupt)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
}
