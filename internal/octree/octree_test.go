package octree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dbgc/internal/geom"
)

func randomCloud(n int, spread float64, seed int64) geom.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	pc := make(geom.PointCloud, n)
	for i := range pc {
		pc[i] = geom.Point{
			X: rng.Float64()*spread - spread/2,
			Y: rng.Float64()*spread - spread/2,
			Z: rng.Float64() * spread / 4,
		}
	}
	return pc
}

// checkErrorBound verifies every original point has a decoded point within
// q per dimension via the DecodedOrder mapping.
func checkErrorBound(t *testing.T, orig, dec geom.PointCloud, order []int, q float64) {
	t.Helper()
	if len(orig) != len(dec) {
		t.Fatalf("decoded %d points, want %d", len(dec), len(orig))
	}
	if len(order) != len(orig) {
		t.Fatalf("order has %d entries, want %d", len(order), len(orig))
	}
	seen := make([]bool, len(orig))
	for j, oi := range order {
		if oi < 0 || oi >= len(orig) || seen[oi] {
			t.Fatalf("order is not a permutation at %d", j)
		}
		seen[oi] = true
		// Slack of 1e-9 absorbs float rounding in repeated cell halving.
		if d := orig[oi].ChebDist(dec[j]); d > q+1e-9 {
			t.Fatalf("point %d error %v exceeds bound %v", oi, d, q)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, q := range []float64{0.02, 0.005, 0.1} {
		pc := randomCloud(2000, 40, 1)
		enc, err := Encode(pc, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatal(err)
		}
		checkErrorBound(t, pc, dec, enc.DecodedOrder, q)
	}
}

func TestEncodeEmpty(t *testing.T) {
	enc, err := Encode(nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points from empty cloud", len(dec))
	}
}

func TestEncodeSinglePoint(t *testing.T) {
	pc := geom.PointCloud{{X: 3.7, Y: -1.2, Z: 0.4}}
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkErrorBound(t, pc, dec, enc.DecodedOrder, 0.02)
}

func TestEncodeDuplicatePoints(t *testing.T) {
	p := geom.Point{X: 1, Y: 2, Z: 3}
	pc := geom.PointCloud{p, p, p, {X: 5, Y: 5, Z: 5}}
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 4 {
		t.Fatalf("duplicates must be preserved: got %d points", len(dec))
	}
	checkErrorBound(t, pc, dec, enc.DecodedOrder, 0.02)
}

func TestEncodeIdenticalCloud(t *testing.T) {
	p := geom.Point{X: -2, Y: 0.5, Z: 9}
	pc := geom.PointCloud{p, p, p}
	enc, err := Encode(pc, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkErrorBound(t, pc, dec, enc.DecodedOrder, 0.01)
}

func TestInvalidErrorBound(t *testing.T) {
	if _, err := Encode(geom.PointCloud{{X: 1}}, 0); err == nil {
		t.Fatal("expected error for q=0")
	}
	if _, err := Encode(geom.PointCloud{{X: 1}}, -1); err == nil {
		t.Fatal("expected error for negative q")
	}
}

func TestDenseCompressesBetterThanSparse(t *testing.T) {
	// The paper's Fig. 3: octree compression degrades with sparsity. Same
	// point count, growing extent.
	const n = 5000
	q := 0.02
	ratio := func(spread float64) float64 {
		pc := randomCloud(n, spread, 9)
		enc, err := Encode(pc, q)
		if err != nil {
			t.Fatal(err)
		}
		return float64(pc.RawSize()) / float64(len(enc.Data))
	}
	dense := ratio(2)
	sparse := ratio(80)
	if dense <= sparse {
		t.Fatalf("dense ratio %.2f should exceed sparse ratio %.2f", dense, sparse)
	}
}

func TestGroupedRoundTrip(t *testing.T) {
	pc := randomCloud(3000, 30, 2)
	q := 0.02
	enc, err := EncodeGrouped(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeGrouped(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkErrorBound(t, pc, dec, enc.DecodedOrder, q)
}

func TestGroupedEmpty(t *testing.T) {
	enc, err := EncodeGrouped(nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeGrouped(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points from empty cloud", len(dec))
	}
}

func TestGroupedMatchesPlainGeometry(t *testing.T) {
	// Plain and grouped coders must reconstruct the same multiset of
	// points (they build the identical tree).
	pc := randomCloud(1500, 25, 3)
	q := 0.02
	a, err := Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeGrouped(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	da, err := Decode(a.Data)
	if err != nil {
		t.Fatal(err)
	}
	db, err := DecodeGrouped(b.Data)
	if err != nil {
		t.Fatal(err)
	}
	sortCloud(da)
	sortCloud(db)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("decoded multisets differ at %d: %v vs %v", i, da[i], db[i])
		}
	}
}

func sortCloud(pc geom.PointCloud) {
	sort.Slice(pc, func(i, j int) bool {
		if pc[i].X != pc[j].X {
			return pc[i].X < pc[j].X
		}
		if pc[i].Y != pc[j].Y {
			return pc[i].Y < pc[j].Y
		}
		return pc[i].Z < pc[j].Z
	})
}

func TestDecodeCorruptStreams(t *testing.T) {
	pc := randomCloud(500, 20, 4)
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error out, never panic.
	for cut := 0; cut < len(enc.Data); cut += 7 {
		if _, err := Decode(enc.Data[:cut]); err == nil {
			// Cut of the full data is the only valid case, and the
			// loop never reaches it.
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Bit flips in the header area must not panic (they may or may not
	// error: a flipped float still parses).
	for i := 0; i < len(enc.Data) && i < 64; i++ {
		mut := append([]byte(nil), enc.Data...)
		mut[i] ^= 0x40
		_, _ = Decode(mut)
	}
}

func TestDepthFor(t *testing.T) {
	if d := depthFor(8, 1); d != 2 {
		t.Fatalf("depthFor(8,1) = %d, want 2", d)
	}
	if d := depthFor(1, 1); d != 0 {
		t.Fatalf("depthFor(1,1) = %d, want 0", d)
	}
	if d := depthFor(0, 0.02); d != 0 {
		t.Fatalf("depthFor(0,.02) = %d, want 0", d)
	}
	if d := depthFor(math.MaxFloat64, 1e-9); d != maxDepth {
		t.Fatalf("depth must be capped at %d, got %d", maxDepth, d)
	}
}

func BenchmarkEncode100k(b *testing.B) {
	pc := randomCloud(100000, 100, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(pc, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode100k(b *testing.B) {
	pc := randomCloud(100000, 100, 6)
	enc, err := Encode(pc, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc.Data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGroupedCorruptStreams(t *testing.T) {
	pc := randomCloud(400, 25, 11)
	enc, err := EncodeGrouped(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc.Data); cut += 7 {
		if _, err := DecodeGrouped(enc.Data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	for i := 0; i < len(enc.Data); i += 97 {
		mut := append([]byte(nil), enc.Data...)
		mut[i] ^= 0x40
		_, _ = DecodeGrouped(mut) // must not panic
	}
}

func TestGroupedInvalidBound(t *testing.T) {
	if _, err := EncodeGrouped(geom.PointCloud{{X: 1}}, 0); err == nil {
		t.Fatal("q=0 accepted")
	}
}

func TestDecodeRegionMatchesFilter(t *testing.T) {
	pc := randomCloud(3000, 50, 12)
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	region := geom.AABB{Min: geom.Point{X: -10, Y: -10, Z: 0}, Max: geom.Point{X: 10, Y: 10, Z: 10}}
	got, err := DecodeRegion(enc.Data, region)
	if err != nil {
		t.Fatal(err)
	}
	var want geom.PointCloud
	for _, p := range full {
		if region.Contains(p) {
			want = append(want, p)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("region decode %d points, filter gives %d", len(got), len(want))
	}
	sortCloud(got)
	sortCloud(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Region decode must also reject truncated streams.
	for cut := 0; cut < len(enc.Data); cut += 31 {
		if _, err := DecodeRegion(enc.Data[:cut], region); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}
