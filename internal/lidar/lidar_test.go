package lidar

import (
	"bytes"
	"math"
	"testing"

	"dbgc/internal/geom"
)

func TestSimulateDeterministic(t *testing.T) {
	scene, err := NewScene(City, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	a := cfg.Simulate(scene, 7)
	b := cfg.Simulate(scene, 7)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic point counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic point %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSimulateFrameShape(t *testing.T) {
	for _, kind := range AllScenes {
		scene, err := NewScene(kind, 3)
		if err != nil {
			t.Fatal(err)
		}
		cfg := HDL64E()
		pc := cfg.Simulate(scene, 11)
		// The paper's frames hold roughly 80-130k points; dropout and
		// max-range misses reduce the 128k ray budget.
		if len(pc) < 50000 || len(pc) > cfg.Beams*cfg.AzimuthSteps {
			t.Errorf("%s: unusual frame size %d", kind, len(pc))
		}
		// All returns within sensor range, none at the origin.
		meta := cfg.Meta()
		for _, p := range pc {
			r := p.Norm()
			if r < cfg.MinRange-1 || r > cfg.MaxRange+1 {
				t.Fatalf("%s: point at range %v outside sensor envelope", kind, r)
			}
			s := geom.ToSpherical(p)
			if s.Phi < meta.PhiMin-0.05 || s.Phi > meta.PhiMax+0.05 {
				t.Fatalf("%s: polar angle %v outside FOV [%v,%v]", kind, s.Phi, meta.PhiMin, meta.PhiMax)
			}
		}
		// Ground must be visible: many points near z = -Height.
		ground := 0
		for _, p := range pc {
			if math.Abs(p.Z+cfg.Height) < 0.1 {
				ground++
			}
		}
		if ground < len(pc)/20 {
			t.Errorf("%s: only %d/%d ground returns", kind, ground, len(pc))
		}
	}
}

func TestSpiderWebDensityPattern(t *testing.T) {
	// Figure 1/3 of the paper: density (points per m³) falls sharply with
	// radius. This is the property DBGC exploits, so the simulator must
	// reproduce it.
	scene, err := NewScene(City, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	pc := cfg.Simulate(scene, 2)
	count := func(rMax float64) int {
		n := 0
		for _, p := range pc {
			if p.Norm() <= rMax {
				n++
			}
		}
		return n
	}
	density := func(r float64) float64 {
		return float64(count(r)) / (4.0 / 3.0 * math.Pi * r * r * r)
	}
	d5, d20, d60 := density(5), density(20), density(60)
	if !(d5 > d20 && d20 > d60) {
		t.Fatalf("density must fall with radius: d5=%.2f d20=%.2f d60=%.2f", d5, d20, d60)
	}
	if d5 < 10*d60 {
		t.Fatalf("near-field density %.2f should dwarf far-field %.4f", d5, d60)
	}
}

func TestCalibratedNotGrid(t *testing.T) {
	// §3.3: calibrated clouds are regular but not a perfect grid. Check
	// that azimuthal gaps between consecutive returns on one beam vary.
	scene, err := NewScene(Road, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	pc := cfg.Simulate(scene, 3)
	uTheta := cfg.Meta().UTheta()
	distinct := map[int64]bool{}
	prev := -1.0
	for _, p := range pc[:2000] {
		s := geom.ToSpherical(p)
		if prev >= 0 && s.Theta > prev {
			distinct[int64((s.Theta-prev)/uTheta*100)] = true
		}
		prev = s.Theta
	}
	if len(distinct) < 5 {
		t.Fatalf("azimuthal gaps look like a perfect grid: %d distinct gaps", len(distinct))
	}
}

func TestMeta(t *testing.T) {
	cfg := HDL64E()
	m := cfg.Meta()
	if m.UTheta() <= 0 || m.UPhi() <= 0 {
		t.Fatalf("angular steps must be positive: %v %v", m.UTheta(), m.UPhi())
	}
	wantUT := 2 * math.Pi / 2000
	if math.Abs(m.UTheta()-wantUT) > 1e-12 {
		t.Fatalf("UTheta = %v, want %v", m.UTheta(), wantUT)
	}
}

func TestEstimateMeta(t *testing.T) {
	scene, err := NewScene(Campus, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	pc := cfg.Simulate(scene, 1)
	m := EstimateMeta(pc, 0, 0)
	cm := cfg.Meta()
	if m.RMax > cfg.MaxRange+1 || m.RMax < 5 {
		t.Fatalf("estimated RMax %v implausible", m.RMax)
	}
	if m.PhiMin < cm.PhiMin-0.1 || m.PhiMax > cm.PhiMax+0.1 {
		t.Fatalf("estimated phi range [%v,%v] outside sensor [%v,%v]", m.PhiMin, m.PhiMax, cm.PhiMin, cm.PhiMax)
	}
	if m.H != 2000 || m.W != 64 {
		t.Fatalf("default sample counts wrong: %d %d", m.H, m.W)
	}
	empty := EstimateMeta(nil, 0, 0)
	if empty.RMax != 0 {
		t.Fatalf("empty cloud should estimate zero RMax")
	}
}

func TestUnknownScene(t *testing.T) {
	if _, err := NewScene("nope", 1); err == nil {
		t.Fatal("expected error for unknown scene kind")
	}
}

func TestBinRoundTrip(t *testing.T) {
	scene, err := NewScene(Residential, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	cfg.AzimuthSteps = 200 // small frame for I/O test
	pc := cfg.Simulate(scene, 5)
	var buf bytes.Buffer
	if err := WriteBin(&buf, pc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBin(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pc) {
		t.Fatalf("read %d points, wrote %d", len(back), len(pc))
	}
	for i := range pc {
		// float32 round trip loses precision.
		if pc[i].Dist(back[i]) > 1e-4*math.Max(1, pc[i].Norm()) {
			t.Fatalf("point %d: %v vs %v", i, pc[i], back[i])
		}
	}
}

func TestBinTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBin(&buf, geom.PointCloud{{X: 1, Y: 2, Z: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBin(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("expected error on truncated .bin")
	}
}

func BenchmarkSimulateCityFrame(b *testing.B) {
	scene, err := NewScene(City, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := HDL64E()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pc := cfg.Simulate(scene, int64(i))
		if len(pc) == 0 {
			b.Fatal("empty frame")
		}
	}
}
