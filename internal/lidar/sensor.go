// Package lidar provides the data substrate for the DBGC evaluation: a
// deterministic spinning-LiDAR simulator that stands in for the KITTI,
// Apollo, and Ford captures used in the paper (§4.1), plus readers and
// writers for the KITTI .bin point format.
//
// The simulator models an HDL-64E-class sensor: a stack of laser beams at
// fixed elevations sweeping the full azimuth circle, ray-cast against
// parameterized synthetic scenes. Gaussian range noise and per-ray angular
// jitter emulate a *calibrated* cloud — points are regular but do not form
// a perfect grid, exactly the structure Figure 5 of the paper shows and the
// property DBGC's polyline organization exploits.
package lidar

import (
	"math"
	"math/rand"

	"dbgc/internal/geom"
)

// SensorConfig describes a spinning LiDAR sensor.
type SensorConfig struct {
	// Beams is the number of laser beams (vertical samples, the paper's W).
	Beams int
	// AzimuthSteps is the number of firings per revolution (the paper's H).
	AzimuthSteps int
	// VertFOVDegMin and VertFOVDegMax bound beam elevations in degrees
	// relative to the horizon (HDL-64E: -24.8 to +2.0).
	VertFOVDegMin, VertFOVDegMax float64
	// MaxRange is the maximum measurable distance in meters.
	MaxRange float64
	// MinRange discards returns closer than this (sensor housing).
	MinRange float64
	// RangeNoiseSigma is the standard deviation of per-ray Gaussian range
	// noise in meters (HDL-64E accuracy is about 2 cm).
	RangeNoiseSigma float64
	// AngleJitter is the standard deviation of per-ray angular jitter as
	// a fraction of the angular step (encoder timing noise; small).
	AngleJitter float64
	// Per-beam systematic calibration, the dominant reason calibrated
	// clouds deviate from a regular grid (the paper's Figure 5): each
	// laser carries its own elevation offset, azimuth phase, and range
	// bias. Values are fractions of the respective step (elevation,
	// azimuth) and meters (range); per-beam values are derived
	// deterministically from the beam index.
	BeamElevOffset float64
	BeamAzPhase    float64
	BeamRangeBias  float64
	// Dropout is the probability that a valid return is lost.
	Dropout float64
	// MixedPixel is the probability that a return at a depth edge (two
	// consecutive firings of a beam more than a meter apart) lands
	// between foreground and background instead of on either — the
	// classic LiDAR mixed-pixel artifact at object silhouettes.
	MixedPixel float64
	// BeamDivergence is the laser beam divergence in radians (HDL-64E:
	// about 2.4 mrad). At grazing incidence the elongated footprint
	// smears the return range — far ground points are much noisier
	// radially than the datasheet accuracy suggests.
	BeamDivergence float64
	// Height is the sensor mounting height above ground in meters.
	Height float64
	// FramesPerSecond is the sensor's capture rate (10 for the HDL-64E
	// default mode), used by the bandwidth experiments.
	FramesPerSecond float64
}

// HDL64E returns the configuration of the Velodyne HDL-64E used by KITTI
// ([9] in the paper): 64 beams, ~0.18° azimuth resolution, 10 frames/s,
// about 1.3M points per second (~100-130k per frame before dropout).
func HDL64E() SensorConfig {
	return SensorConfig{
		Beams:           64,
		AzimuthSteps:    2000,
		VertFOVDegMin:   -24.8,
		VertFOVDegMax:   2.0,
		MaxRange:        120,
		MinRange:        2.5, // ego-vehicle exclusion zone, as in KITTI captures
		RangeNoiseSigma: 0.02,
		AngleJitter:     0.05,
		BeamElevOffset:  0.35,
		BeamAzPhase:     1.0,
		BeamRangeBias:   0.015,
		Dropout:         0.03,
		MixedPixel:      0.25,
		BeamDivergence:  0.0024,
		Height:          1.73,
		FramesPerSecond: 10,
	}
}

// VLP16 returns the configuration of the 16-beam Velodyne Puck, a common
// lighter sensor: 2° beam spacing over ±15°, 100 m range, 10 Hz.
func VLP16() SensorConfig {
	c := HDL64E()
	c.Beams = 16
	c.VertFOVDegMin = -15
	c.VertFOVDegMax = 15
	c.AzimuthSteps = 1800
	c.MaxRange = 100
	c.RangeNoiseSigma = 0.03
	return c
}

// HDL32E returns the configuration of the 32-beam Velodyne HDL-32E:
// -30.67° to +10.67° vertical FOV, 100 m range.
func HDL32E() SensorConfig {
	c := HDL64E()
	c.Beams = 32
	c.VertFOVDegMin = -30.67
	c.VertFOVDegMax = 10.67
	c.MaxRange = 100
	return c
}

// Meta carries sensor metadata in the form DBGC's coordinate compressor
// needs (§3.3): spherical bounds and sample counts, from which the average
// angular step between adjacent points is derived.
type Meta struct {
	ThetaMin, ThetaMax float64 // azimuthal angle range, radians
	PhiMin, PhiMax     float64 // polar angle range, radians
	RMax               float64 // maximum radial distance, meters
	H                  int     // samples in the azimuthal direction
	W                  int     // samples in the polar direction
}

// UTheta returns the average azimuthal difference between adjacent samples
// (the paper's u_θ).
func (m Meta) UTheta() float64 {
	if m.H <= 0 {
		return 0
	}
	return (m.ThetaMax - m.ThetaMin) / float64(m.H)
}

// UPhi returns the average polar difference between adjacent samples (the
// paper's u_φ).
func (m Meta) UPhi() float64 {
	if m.W <= 0 {
		return 0
	}
	return (m.PhiMax - m.PhiMin) / float64(m.W)
}

// Meta derives the sensor metadata of a configuration. Elevation e maps to
// polar angle φ = π/2 − e.
func (c SensorConfig) Meta() Meta {
	return Meta{
		ThetaMin: 0,
		ThetaMax: 2 * math.Pi,
		PhiMin:   math.Pi/2 - c.VertFOVDegMax*math.Pi/180,
		PhiMax:   math.Pi/2 - c.VertFOVDegMin*math.Pi/180,
		RMax:     c.MaxRange,
		H:        c.AzimuthSteps,
		W:        c.Beams,
	}
}

// EstimateMeta derives sensor metadata from an arbitrary calibrated cloud,
// for inputs whose sensor is unknown. Angular bounds come from the data;
// sample counts default to HDL-64E geometry unless overridden.
func EstimateMeta(pc geom.PointCloud, h, w int) Meta {
	m := Meta{ThetaMin: math.Inf(1), ThetaMax: math.Inf(-1), PhiMin: math.Inf(1), PhiMax: math.Inf(-1), H: h, W: w}
	if h <= 0 {
		m.H = 2000
	}
	if w <= 0 {
		m.W = 64
	}
	for _, p := range pc {
		s := geom.ToSpherical(p)
		m.ThetaMin = math.Min(m.ThetaMin, s.Theta)
		m.ThetaMax = math.Max(m.ThetaMax, s.Theta)
		m.PhiMin = math.Min(m.PhiMin, s.Phi)
		m.PhiMax = math.Max(m.PhiMax, s.Phi)
		m.RMax = math.Max(m.RMax, s.R)
	}
	if len(pc) == 0 {
		return Meta{H: m.H, W: m.W}
	}
	return m
}

// Pose is a sensor position and heading in the scene's world frame, for
// simulating captures from a moving platform.
type Pose struct {
	X, Y float64
	// Yaw is the heading in radians (0 = +x).
	Yaw float64
}

// Simulate captures one frame of scene with the given sensor. The returned
// cloud is in the sensor frame: the sensor sits at the origin and the
// ground plane lies near z = -Height. The same (scene, cfg, seed) triple
// always produces the same frame.
func (c SensorConfig) Simulate(scene *Scene, seed int64) geom.PointCloud {
	return c.SimulateAt(scene, seed, Pose{})
}

// SimulateAt captures one frame from the given pose — the driving case of
// the paper's datasets (KITTI and Ford are vehicle-mounted). The returned
// cloud is in the sensor frame at that pose.
func (c SensorConfig) SimulateAt(scene *Scene, seed int64, pose Pose) geom.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	pc := make(geom.PointCloud, 0, c.Beams*c.AzimuthSteps)
	if c.Beams <= 0 || c.AzimuthSteps <= 0 {
		return pc
	}
	azStep := 2 * math.Pi / float64(c.AzimuthSteps)
	elStep := 0.0
	if c.Beams > 1 {
		elStep = (c.VertFOVDegMax - c.VertFOVDegMin) * math.Pi / 180 / float64(c.Beams-1)
	}
	elMin := c.VertFOVDegMin * math.Pi / 180
	origin := geom.Point{X: pose.X, Y: pose.Y, Z: 0}
	index := scene.azimuthIndex(origin, c.AzimuthSteps, c.Height, c.MaxRange)
	sinYaw, cosYaw := math.Sincos(pose.Yaw)

	for b := 0; b < c.Beams; b++ {
		// Per-beam calibration constants: deterministic functions of the
		// beam index, identical across frames of the same sensor.
		elBase := elMin + float64(b)*elStep + beamHash(b, 1)*c.BeamElevOffset*elStep
		azPhase := (beamHash(b, 2) + 1) / 2 * c.BeamAzPhase * azStep
		rangeBias := beamHash(b, 3) * c.BeamRangeBias
		prevT := -1.0
		for a := 0; a < c.AzimuthSteps; a++ {
			az := float64(a)*azStep + azPhase + rng.NormFloat64()*c.AngleJitter*azStep
			el := elBase + rng.NormFloat64()*c.AngleJitter*elStep
			sinEl, cosEl := math.Sincos(el)
			worldAz := az + pose.Yaw
			sinAz, cosAz := math.Sincos(worldAz)
			dir := geom.Point{X: cosEl * cosAz, Y: cosEl * sinAz, Z: sinEl}
			// The primitive index buckets by world azimuth around the
			// current origin.
			bucket := int(math.Mod(worldAz, 2*math.Pi) / azStep)
			bucket = ((bucket % c.AzimuthSteps) + c.AzimuthSteps) % c.AzimuthSteps
			t, rough, ok := scene.cast(origin, dir, c.Height, c.MaxRange, index, bucket, c.BeamDivergence)
			if !ok || t < c.MinRange {
				prevT = -1
				continue
			}
			if c.Dropout > 0 && rng.Float64() < c.Dropout {
				prevT = -1
				continue
			}
			if c.MixedPixel > 0 && prevT > 0 && math.Abs(t-prevT) > 1 && rng.Float64() < c.MixedPixel {
				// Mixed pixel: the beam straddles a silhouette edge and
				// the return lands between the two surfaces.
				t = prevT + rng.Float64()*(t-prevT)
			} else {
				prevT = t
			}
			if rough > 0 {
				// Volumetric/relief scatter: beams penetrate foliage or
				// hit façade relief before returning.
				t += math.Abs(rng.NormFloat64()) * rough
			}
			t += rangeBias + rng.NormFloat64()*c.RangeNoiseSigma
			if t < c.MinRange || t > c.MaxRange {
				continue
			}
			// World-frame hit, expressed in the sensor frame: translate
			// to the pose, rotate by -yaw.
			wx, wy, wz := dir.X*t, dir.Y*t, dir.Z*t
			pc = append(pc, geom.Point{
				X: wx*cosYaw + wy*sinYaw,
				Y: -wx*sinYaw + wy*cosYaw,
				Z: wz,
			})
		}
	}
	return pc
}

// beamHash returns a deterministic pseudo-random value in [-1, 1) for a
// (beam, channel) pair, used for per-beam calibration constants.
func beamHash(beam, channel int) float64 {
	x := uint64(beam)*0x9e3779b97f4a7c15 + uint64(channel)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53)*2 - 1
}
