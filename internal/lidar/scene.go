package lidar

import (
	"math"

	"dbgc/internal/geom"
)

// A primitive is a solid the simulator ray-casts against. Hit returns the
// smallest positive ray parameter t such that origin + t·dir lies on the
// surface, or ok=false for a miss.
type primitive interface {
	Hit(origin, dir geom.Point) (t float64, ok bool)
	// footprint returns the horizontal center and bounding radius, used
	// to bucket primitives by azimuth for fast casting.
	footprint() (cx, cy, radius float64)
	// roughness is the standard deviation, in meters, of the extra
	// range scatter a return off this surface carries: near zero for
	// solid smooth surfaces, large for volumetric scatterers such as
	// foliage, where the beam penetrates before returning.
	roughness() float64
}

// Scene is a collection of primitives above a ground surface at
// z ≈ -sensorHeight.
type Scene struct {
	prims []primitive
	// GroundRoughness is the per-ray range-scatter sigma of ground
	// returns (grass vs. asphalt).
	GroundRoughness float64
	// Structured ground relief: the ground is tiled into cells of side
	// GroundReliefCell, each offset vertically by a deterministic height
	// in ±GroundReliefDepth — curbs, road crown, grass patches, drainage.
	// Real ground is never the perfect plane a flat model gives; the
	// relief is piecewise constant, so it perturbs scan rings in long
	// coherent runs rather than white noise.
	GroundReliefCell, GroundReliefDepth float64
	// Gentle large-scale undulation (amplitude in meters over ~20 m
	// wavelengths).
	GroundWave float64
	reliefSeed uint64
}

// groundHeight returns the terrain height offset at (x, y) relative to the
// nominal plane.
func (s *Scene) groundHeight(x, y float64) float64 {
	var h float64
	if s.GroundWave > 0 {
		h += s.GroundWave * (math.Sin(x/17.3) + math.Cos(y/23.1)) / 2
	}
	if s.GroundReliefDepth > 0 && s.GroundReliefCell > 0 {
		cu := int64(math.Floor(x / s.GroundReliefCell))
		cv := int64(math.Floor(y / s.GroundReliefCell))
		k := uint64(cu)*0x9e3779b97f4a7c15 ^ uint64(cv)*0xbf58476d1ce4e5b9 ^ s.reliefSeed
		k ^= k >> 30
		k *= 0xbf58476d1ce4e5b9
		k ^= k >> 27
		h += (float64(k>>11)/float64(1<<53)*2 - 1) * s.GroundReliefDepth
	}
	return h
}

// Add appends a primitive to the scene.
func (s *Scene) Add(p primitive) { s.prims = append(s.prims, p) }

// NumPrimitives returns the number of solids in the scene.
func (s *Scene) NumPrimitives() int { return len(s.prims) }

// azimuthIndex buckets primitives by the azimuth interval they can cover
// from the sensor at origin, so each ray only tests nearby solids.
func (s *Scene) azimuthIndex(origin geom.Point, steps int, height, maxRange float64) [][]int32 {
	idx := make([][]int32, steps)
	for i, p := range s.prims {
		cx, cy, r := p.footprint()
		cx -= origin.X
		cy -= origin.Y
		d := math.Hypot(cx, cy)
		if d-r > maxRange {
			continue
		}
		if d <= r*1.2+1e-9 {
			// The primitive surrounds or touches the sensor: every bucket.
			for a := range idx {
				idx[a] = append(idx[a], int32(i))
			}
			continue
		}
		center := math.Atan2(cy, cx)
		halfWidth := math.Asin(math.Min(1, r/d)) + 2*math.Pi/float64(steps)
		lo := int(math.Floor((center - halfWidth) / (2 * math.Pi) * float64(steps)))
		hi := int(math.Ceil((center + halfWidth) / (2 * math.Pi) * float64(steps)))
		for a := lo; a <= hi; a++ {
			b := ((a % steps) + steps) % steps
			idx[b] = append(idx[b], int32(i))
			if hi-lo >= steps {
				break
			}
		}
		if hi-lo >= steps {
			for a := range idx {
				if len(idx[a]) == 0 || idx[a][len(idx[a])-1] != int32(i) {
					idx[a] = append(idx[a], int32(i))
				}
			}
		}
	}
	return idx
}

// cast finds the nearest hit of the ray among the ground plane and the
// primitives indexed for azimuth bucket a, returning the hit distance and
// the roughness of the surface hit. divergence is the beam divergence,
// used to model footprint smearing on grazing ground returns.
func (s *Scene) cast(origin, dir geom.Point, height, maxRange float64, index [][]int32, a int, divergence float64) (t, rough float64, ok bool) {
	best := math.Inf(1)
	rough = 0.0
	// Ground surface z = -height + relief. The relief is evaluated at
	// the flat-plane hit position (first-order approximation, fine for
	// decimeter-scale relief).
	if dir.Z < -1e-9 {
		if t0 := (-height - origin.Z) / dir.Z; t0 > 0 {
			h := s.groundHeight(origin.X+dir.X*t0, origin.Y+dir.Y*t0)
			t := (-height + h - origin.Z) / dir.Z
			if t > 0 && t < best {
				best = t
				rough = s.GroundRoughness
				if divergence > 0 {
					// Footprint smearing: an elongated spot on the
					// grazing ground spreads the return range. The
					// range jitter is a fraction of the footprint
					// length t·div/sin(graze), capped to keep very
					// shallow rays physical.
					smear := 0.25 * divergence * t / math.Max(-dir.Z, 0.03)
					if smear > 0.25 {
						smear = 0.25
					}
					rough += smear
				}
			}
		}
	}
	for _, pi := range index[a] {
		if t, ok := s.prims[pi].Hit(origin, dir); ok && t > 0 && t < best {
			best = t
			rough = s.prims[pi].roughness()
		}
	}
	if best > maxRange || math.IsInf(best, 1) {
		return 0, 0, false
	}
	return best, rough, true
}

// box is an axis-aligned box optionally rotated about the z axis.
type box struct {
	cx, cy     float64 // horizontal center
	hx, hy     float64 // half extents
	z0, z1     float64 // vertical extent
	sinY, cosY float64 // yaw rotation
	rough      float64
	// Structured surface relief: the face is tiled into cells of side
	// reliefCell, each recessed by a deterministic depth in
	// [0, reliefDepth) — windows, balconies, vehicle body panels. Unlike
	// white noise, relief is spatially correlated with sharp edges, the
	// structure real façades show.
	reliefCell, reliefDepth float64
	reliefSeed              uint64
}

func newBox(cx, cy, hx, hy, z0, z1, yaw float64) *box {
	s, c := math.Sincos(yaw)
	return &box{cx: cx, cy: cy, hx: hx, hy: hy, z0: z0, z1: z1, sinY: s, cosY: c}
}

// withRelief tiles the box surface with recessed cells of the given side
// and maximum depth.
func (b *box) withRelief(cell, depth float64, seed uint64) *box {
	b.reliefCell, b.reliefDepth, b.reliefSeed = cell, depth, seed
	return b
}

// withRoughness sets the box's residual range-scatter sigma.
func (b *box) withRoughness(r float64) *box {
	b.rough = r
	return b
}

func (b *box) roughness() float64 { return b.rough }

// reliefAt returns the recess depth of the relief cell containing the
// local-frame surface point (u, z).
func (b *box) reliefAt(u, z float64) float64 {
	if b.reliefDepth <= 0 || b.reliefCell <= 0 {
		return 0
	}
	cu := int64(math.Floor(u / b.reliefCell))
	cz := int64(math.Floor(z / b.reliefCell))
	x := uint64(cu)*0x9e3779b97f4a7c15 ^ uint64(cz)*0xbf58476d1ce4e5b9 ^ b.reliefSeed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return float64(x>>11) / float64(1<<53) * b.reliefDepth
}

func (b *box) footprint() (float64, float64, float64) {
	return b.cx, b.cy, math.Hypot(b.hx, b.hy)
}

func (b *box) Hit(o, d geom.Point) (float64, bool) {
	// Transform into the box frame: translate then rotate by -yaw.
	ox, oy := o.X-b.cx, o.Y-b.cy
	rox := ox*b.cosY + oy*b.sinY
	roy := -ox*b.sinY + oy*b.cosY
	rdx := d.X*b.cosY + d.Y*b.sinY
	rdy := -d.X*b.sinY + d.Y*b.cosY
	// Slab intersection.
	tmin, tmax := 0.0, math.Inf(1)
	update := func(ro, rd, lo, hi float64) bool {
		if math.Abs(rd) < 1e-12 {
			return ro >= lo && ro <= hi
		}
		t1 := (lo - ro) / rd
		t2 := (hi - ro) / rd
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		tmin = math.Max(tmin, t1)
		tmax = math.Min(tmax, t2)
		return tmin <= tmax
	}
	if !update(rox, rdx, -b.hx, b.hx) {
		return 0, false
	}
	if !update(roy, rdy, -b.hy, b.hy) {
		return 0, false
	}
	if !update(o.Z, d.Z, b.z0, b.z1) {
		return 0, false
	}
	if tmin <= 1e-9 {
		return 0, false // inside or behind
	}
	if b.reliefDepth > 0 {
		// Recess the return by the relief depth of the struck cell,
		// keyed by the lateral position along the face.
		hx := rox + rdx*tmin
		hy := roy + rdy*tmin
		hz := o.Z + d.Z*tmin
		tmin += b.reliefAt(hx+hy, hz)
	}
	return tmin, true
}

// cylinder is a vertical cylinder (pole, trunk).
type cylinder struct {
	cx, cy, r, z0, z1 float64
	rough             float64
}

func (c *cylinder) roughness() float64 { return c.rough }

func (c *cylinder) footprint() (float64, float64, float64) { return c.cx, c.cy, c.r }

func (c *cylinder) Hit(o, d geom.Point) (float64, bool) {
	ox, oy := o.X-c.cx, o.Y-c.cy
	a := d.X*d.X + d.Y*d.Y
	if a < 1e-12 {
		return 0, false
	}
	bq := ox*d.X + oy*d.Y
	cq := ox*ox + oy*oy - c.r*c.r
	disc := bq*bq - a*cq
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	for _, t := range [2]float64{(-bq - sq) / a, (-bq + sq) / a} {
		if t <= 1e-9 {
			continue
		}
		z := o.Z + t*d.Z
		if z >= c.z0 && z <= c.z1 {
			return t, true
		}
	}
	return 0, false
}

// sphere models tree canopies and similar blobs.
type sphere struct {
	cx, cy, cz, r float64
	rough         float64
}

func (s *sphere) roughness() float64 { return s.rough }

func (s *sphere) footprint() (float64, float64, float64) { return s.cx, s.cy, s.r }

func (s *sphere) Hit(o, d geom.Point) (float64, bool) {
	ox, oy, oz := o.X-s.cx, o.Y-s.cy, o.Z-s.cz
	bq := ox*d.X + oy*d.Y + oz*d.Z
	cq := ox*ox + oy*oy + oz*oz - s.r*s.r
	disc := bq*bq - cq
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	if t := -bq - sq; t > 1e-9 {
		return t, true
	}
	if t := -bq + sq; t > 1e-9 {
		return t, true
	}
	return 0, false
}
