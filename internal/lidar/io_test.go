package lidar

import (
	"bytes"
	"math"
	"testing"

	"dbgc/internal/geom"
)

func TestBinIntensityRoundTrip(t *testing.T) {
	pc := geom.PointCloud{{X: 1, Y: 2, Z: 3}, {X: -4, Y: 0.5, Z: -1.7}}
	intens := []float32{0.25, 0.75}
	var buf bytes.Buffer
	if err := WriteBinWithIntensity(&buf, pc, intens); err != nil {
		t.Fatal(err)
	}
	back, backIntens, err := ReadBinWithIntensity(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || len(backIntens) != 2 {
		t.Fatalf("read %d points, %d intensities", len(back), len(backIntens))
	}
	for i := range pc {
		if pc[i].Dist(back[i]) > 1e-5 {
			t.Fatalf("point %d: %v vs %v", i, pc[i], back[i])
		}
		if math.Abs(float64(backIntens[i]-intens[i])) > 1e-7 {
			t.Fatalf("intensity %d: %v vs %v", i, backIntens[i], intens[i])
		}
	}
}

func TestBinIntensityMismatch(t *testing.T) {
	pc := geom.PointCloud{{X: 1}}
	if err := WriteBinWithIntensity(&bytes.Buffer{}, pc, []float32{1, 2}); err == nil {
		t.Fatal("intensity length mismatch accepted")
	}
}

func TestBinZeroIntensityDefault(t *testing.T) {
	pc := geom.PointCloud{{X: 1, Y: 1, Z: 1}}
	var buf bytes.Buffer
	if err := WriteBin(&buf, pc); err != nil {
		t.Fatal(err)
	}
	_, intens, err := ReadBinWithIntensity(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if intens[0] != 0 {
		t.Fatalf("default intensity %v, want 0", intens[0])
	}
}

func TestBinFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/frame.bin"
	pc := geom.PointCloud{{X: 9, Y: 8, Z: 7}, {X: 1, Y: 2, Z: 3}}
	if err := WriteBinFile(path, pc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pc) {
		t.Fatalf("read %d points", len(back))
	}
	if _, err := ReadBinFile(dir + "/missing.bin"); err == nil {
		t.Fatal("missing file read successfully")
	}
}
