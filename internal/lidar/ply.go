package lidar

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"dbgc/internal/geom"
)

// PLY support: the de-facto interchange format for point clouds (used by
// the object-cloud literature the paper contrasts with, e.g. the Stanford
// Bunny of §3.2). Reading handles ascii and binary_little_endian variants
// with float or double x/y/z properties, skipping other per-vertex
// properties and non-vertex elements; writing emits binary_little_endian
// float32 vertices.

// ReadPLY parses a PLY point cloud from r.
func ReadPLY(r io.Reader) (geom.PointCloud, error) {
	br := bufio.NewReader(r)
	line, err := br.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ply" {
		return nil, fmt.Errorf("lidar: not a PLY file")
	}

	type prop struct {
		typ  string
		name string
	}
	type element struct {
		name  string
		count int
		props []prop
	}
	var format string
	var elems []element
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("lidar: PLY header: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "comment", "obj_info":
		case "format":
			if len(fields) < 2 {
				return nil, fmt.Errorf("lidar: malformed PLY format line")
			}
			format = fields[1]
		case "element":
			if len(fields) < 3 {
				return nil, fmt.Errorf("lidar: malformed PLY element line")
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("lidar: bad PLY element count %q", fields[2])
			}
			elems = append(elems, element{name: fields[1], count: n})
		case "property":
			if len(elems) == 0 {
				return nil, fmt.Errorf("lidar: PLY property before element")
			}
			if fields[1] == "list" {
				if len(fields) < 5 {
					return nil, fmt.Errorf("lidar: malformed PLY list property")
				}
				elems[len(elems)-1].props = append(elems[len(elems)-1].props,
					prop{typ: "list:" + fields[2] + ":" + fields[3], name: fields[4]})
				continue
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("lidar: malformed PLY property line")
			}
			elems[len(elems)-1].props = append(elems[len(elems)-1].props,
				prop{typ: fields[1], name: fields[2]})
		case "end_header":
			goto body
		default:
			return nil, fmt.Errorf("lidar: unknown PLY header keyword %q", fields[0])
		}
	}
body:
	switch format {
	case "ascii", "binary_little_endian":
	default:
		return nil, fmt.Errorf("lidar: unsupported PLY format %q", format)
	}

	var pc geom.PointCloud
	for _, el := range elems {
		if el.name != "vertex" {
			if format == "ascii" {
				for i := 0; i < el.count; i++ {
					if _, err := br.ReadString('\n'); err != nil {
						return nil, fmt.Errorf("lidar: PLY element %s: %w", el.name, err)
					}
				}
				continue
			}
			// Binary non-vertex elements with list properties have
			// data-dependent sizes; they only appear after vertices in
			// practice, so stop once vertices are read.
			if pc != nil {
				return pc, nil
			}
			return nil, fmt.Errorf("lidar: binary PLY with %s before vertex unsupported", el.name)
		}
		xi, yi, zi := -1, -1, -1
		for i, p := range el.props {
			switch p.name {
			case "x":
				xi = i
			case "y":
				yi = i
			case "z":
				zi = i
			}
			if strings.HasPrefix(p.typ, "list:") {
				return nil, fmt.Errorf("lidar: list property on PLY vertex unsupported")
			}
		}
		if xi < 0 || yi < 0 || zi < 0 {
			return nil, fmt.Errorf("lidar: PLY vertex lacks x/y/z")
		}
		pc = make(geom.PointCloud, 0, el.count)
		for v := 0; v < el.count; v++ {
			vals := make([]float64, len(el.props))
			if format == "ascii" {
				line, err := br.ReadString('\n')
				if err != nil {
					return nil, fmt.Errorf("lidar: PLY vertex %d: %w", v, err)
				}
				fields := strings.Fields(line)
				if len(fields) < len(el.props) {
					return nil, fmt.Errorf("lidar: PLY vertex %d has %d values, want %d", v, len(fields), len(el.props))
				}
				for i := range el.props {
					vals[i], err = strconv.ParseFloat(fields[i], 64)
					if err != nil {
						return nil, fmt.Errorf("lidar: PLY vertex %d: %w", v, err)
					}
				}
			} else {
				for i, p := range el.props {
					f, err := readPLYScalar(br, p.typ)
					if err != nil {
						return nil, fmt.Errorf("lidar: PLY vertex %d: %w", v, err)
					}
					vals[i] = f
				}
			}
			pc = append(pc, geom.Point{X: vals[xi], Y: vals[yi], Z: vals[zi]})
		}
	}
	return pc, nil
}

func readPLYScalar(r io.Reader, typ string) (float64, error) {
	size, ok := plyTypeSize(typ)
	if !ok {
		return 0, fmt.Errorf("unsupported PLY type %q", typ)
	}
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:size]); err != nil {
		return 0, err
	}
	switch typ {
	case "float", "float32":
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))), nil
	case "double", "float64":
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	case "char", "int8":
		return float64(int8(buf[0])), nil
	case "uchar", "uint8":
		return float64(buf[0]), nil
	case "short", "int16":
		return float64(int16(binary.LittleEndian.Uint16(buf[:]))), nil
	case "ushort", "uint16":
		return float64(binary.LittleEndian.Uint16(buf[:])), nil
	case "int", "int32":
		return float64(int32(binary.LittleEndian.Uint32(buf[:]))), nil
	case "uint", "uint32":
		return float64(binary.LittleEndian.Uint32(buf[:])), nil
	}
	return 0, fmt.Errorf("unsupported PLY type %q", typ)
}

func plyTypeSize(typ string) (int, bool) {
	switch typ {
	case "char", "int8", "uchar", "uint8":
		return 1, true
	case "short", "int16", "ushort", "uint16":
		return 2, true
	case "int", "int32", "uint", "uint32", "float", "float32":
		return 4, true
	case "double", "float64":
		return 8, true
	}
	return 0, false
}

// WritePLY writes the cloud as a binary_little_endian PLY with float32
// vertices.
func WritePLY(w io.Writer, pc geom.PointCloud) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ply\nformat binary_little_endian 1.0\ncomment generated by dbgc\n")
	fmt.Fprintf(bw, "element vertex %d\n", len(pc))
	fmt.Fprintf(bw, "property float x\nproperty float y\nproperty float z\nend_header\n")
	var rec [12]byte
	for _, p := range pc {
		binary.LittleEndian.PutUint32(rec[0:], math.Float32bits(float32(p.X)))
		binary.LittleEndian.PutUint32(rec[4:], math.Float32bits(float32(p.Y)))
		binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(float32(p.Z)))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("lidar: writing PLY: %w", err)
		}
	}
	return bw.Flush()
}

// ReadPLYFile reads a PLY point cloud from disk.
func ReadPLYFile(path string) (geom.PointCloud, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPLY(f)
}

// WritePLYFile writes a PLY point cloud to disk.
func WritePLYFile(path string, pc geom.PointCloud) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePLY(f, pc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
