package lidar

import (
	"fmt"
	"math"
	"math/rand"
)

// SceneKind names the six dataset/scene combinations of the paper's
// evaluation (§4.1): four KITTI scene types, the Apollo urban capture, and
// the Ford campus capture.
type SceneKind string

// Scene kinds matching Figure 9's six panels.
const (
	Campus      SceneKind = "kitti-campus"
	City        SceneKind = "kitti-city"
	Residential SceneKind = "kitti-residential"
	Road        SceneKind = "kitti-road"
	ApolloUrban SceneKind = "apollo-urban"
	FordCampus  SceneKind = "ford-campus"
)

// AllScenes lists every preset in Figure 9 order.
var AllScenes = []SceneKind{Campus, City, Residential, Road, ApolloUrban, FordCampus}

// NewScene builds a randomized layout of the given kind. The same
// (kind, seed) pair always yields the same scene. Layouts are tuned so the
// radial point distribution resembles the corresponding real captures: a
// dense near field, structured mid field, and a long sparse far tail —
// the "spider web" of the paper's Figure 1.
func NewScene(kind SceneKind, seed int64) (*Scene, error) {
	rng := rand.New(rand.NewSource(seed))
	s := &Scene{reliefSeed: uint64(seed)*0x9e3779b97f4a7c15 + 1}
	switch kind {
	case Campus:
		s.GroundRoughness = 0.015 // mowed lawns
		s.GroundReliefCell, s.GroundReliefDepth, s.GroundWave = 0.8, 0.05, 0.25
		buildCampus(s, rng, 12, 90)
	case City:
		s.GroundRoughness = 0.01 // paved, with curbs and debris
		s.GroundReliefCell, s.GroundReliefDepth, s.GroundWave = 0.6, 0.06, 0.15
		buildCity(s, rng)
	case Residential:
		s.GroundRoughness = 0.02
		s.GroundReliefCell, s.GroundReliefDepth, s.GroundWave = 0.7, 0.06, 0.2
		buildResidential(s, rng)
	case Road:
		s.GroundRoughness = 0.006 // asphalt
		s.GroundReliefCell, s.GroundReliefDepth, s.GroundWave = 1.2, 0.03, 0.3
		buildRoad(s, rng)
	case ApolloUrban:
		// Apollo captures denser urban cores: city layout with extra
		// tall frontage in the mid field.
		s.GroundRoughness = 0.01
		s.GroundReliefCell, s.GroundReliefDepth, s.GroundWave = 0.6, 0.07, 0.15
		buildCity(s, rng)
		addBlockFaces(s, rng, 8, 35, 90, 24)
	case FordCampus:
		s.GroundRoughness = 0.02
		s.GroundReliefCell, s.GroundReliefDepth, s.GroundWave = 0.8, 0.05, 0.25
		buildCampus(s, rng, 9, 110)
	default:
		return nil, fmt.Errorf("lidar: unknown scene kind %q", kind)
	}
	// Every outdoor capture has a sparse far tail: scattered vegetation,
	// poles, and distant facades.
	addFarScatter(s, rng)
	return s, nil
}

// uniform returns a uniform value in [lo, hi).
func uniform(rng *rand.Rand, lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

// ringPos places an object at a random azimuth within a distance band,
// returning its center.
func ringPos(rng *rand.Rand, dMin, dMax float64) (x, y float64) {
	d := uniform(rng, dMin, dMax)
	az := uniform(rng, 0, 2*math.Pi)
	return d * math.Cos(az), d * math.Sin(az)
}

func buildCampus(s *Scene, rng *rand.Rand, buildings int, spread float64) {
	// Large academic buildings from mid range outward, lawns (open
	// ground), tree rows, light poles, a few parked vehicles, and some
	// near furniture (hedges, low walls) around the capture spot.
	for i := 0; i < buildings; i++ {
		x, y := ringPos(rng, 22, spread)
		s.Add(newBox(x, y,
			uniform(rng, 6, 18), uniform(rng, 5, 14),
			-1.73, uniform(rng, 6, 16),
			uniform(rng, 0, 3.14)).
			withRelief(uniform(rng, 1.0, 2.5), uniform(rng, 0.15, 0.4), rng.Uint64()).
			withRoughness(0.01))
	}
	for i := 0; i < 5; i++ {
		x, y := ringPos(rng, 4, 12)
		s.Add(newBox(x, y, uniform(rng, 1.5, 4), 0.3, -1.73, uniform(rng, -0.9, 0), uniform(rng, 0, 3.14)).withRoughness(0.15))
	}
	addTrees(s, rng, 30, 10, 80)
	addBushes(s, rng, 18, 5, 50)
	addPoles(s, rng, 14, 6, 70)
	addVehicles(s, rng, 8, 4, 35)
}

func buildCity(s *Scene, rng *rand.Rand) {
	// Street canyon: building faces along a corridor with gaps that let
	// rays escape to the far field, many vehicles, poles, pedestrians.
	addBlockFaces(s, rng, 7, 16, 60, 14)
	addBlockFaces(s, rng, 5, 60, 110, 20)
	addVehicles(s, rng, 30, 4, 50)
	addPoles(s, rng, 18, 5, 70)
	addTrees(s, rng, 22, 8, 60)
	addBushes(s, rng, 14, 5, 40)
	addPedestrians(s, rng, 12, 3, 25)
}

func buildResidential(s *Scene, rng *rand.Rand) {
	// Detached houses with front yards, garden trees, fences, parked cars.
	for i := 0; i < 18; i++ {
		x, y := ringPos(rng, 12, 70)
		s.Add(newBox(x, y,
			uniform(rng, 4, 8), uniform(rng, 3, 7),
			-1.73, uniform(rng, 2.5, 7),
			uniform(rng, 0, 3.14)).
			withRelief(uniform(rng, 0.8, 1.8), uniform(rng, 0.1, 0.35), rng.Uint64()).
			withRoughness(0.01))
	}
	addTrees(s, rng, 44, 6, 70)
	addBushes(s, rng, 24, 4, 45)
	addVehicles(s, rng, 16, 3, 35)
	// Fences: long low thin boxes.
	for i := 0; i < 8; i++ {
		x, y := ringPos(rng, 8, 45)
		s.Add(newBox(x, y, uniform(rng, 5, 15), 0.1, -1.73, uniform(rng, -0.5, 0.3), uniform(rng, 0, 3.14)))
	}
}

func buildRoad(s *Scene, rng *rand.Rand) {
	// Open highway: mostly ground returns, guard rails along the road,
	// sparse vehicles, occasional signs; the far field is very sparse.
	for _, side := range []float64{-8, 8} {
		s.Add(newBox(0, side, 100, 0.15, -1.73, -0.9, 0))
	}
	addVehicles(s, rng, 10, 6, 90)
	addPoles(s, rng, 8, 10, 100)
	// A distant overpass.
	s.Add(newBox(uniform(rng, 50, 80), 0, 2.5, 30, 3.2, 4.5, 0))
	// Roadside vegetation bands beyond the shoulders.
	addTrees(s, rng, 14, 15, 100)
	addBushes(s, rng, 12, 12, 80)
}

// addFarScatter sprinkles sparse distant structure: lone trees, poles, and
// small facades in the 40-115 m band.
func addFarScatter(s *Scene, rng *rand.Rand) {
	addTrees(s, rng, 10, 45, 110)
	addPoles(s, rng, 8, 40, 115)
	for i := 0; i < 5; i++ {
		x, y := ringPos(rng, 60, 115)
		s.Add(newBox(x, y, uniform(rng, 4, 12), uniform(rng, 2, 6), -1.73, uniform(rng, 3, 10), uniform(rng, 0, 3.14)))
	}
}

// addBlockFaces rings the sensor with large building faces, emulating a
// dense urban canyon.
func addBlockFaces(s *Scene, rng *rand.Rand, n int, dMin, dMax, maxH float64) {
	for i := 0; i < n; i++ {
		x, y := ringPos(rng, dMin, dMax)
		s.Add(newBox(x, y,
			uniform(rng, 8, 25), uniform(rng, 4, 10),
			-1.73, uniform(rng, 6, maxH),
			uniform(rng, 0, 3.14)).
			withRelief(uniform(rng, 0.8, 2.0), uniform(rng, 0.2, 0.5), rng.Uint64()).
			withRoughness(0.01))
	}
}

func addTrees(s *Scene, rng *rand.Rand, n int, dMin, dMax float64) {
	for i := 0; i < n; i++ {
		x, y := ringPos(rng, dMin, dMax)
		trunkH := uniform(rng, 2, 4)
		s.Add(&cylinder{cx: x, cy: y, r: uniform(rng, 0.12, 0.35), z0: -1.73, z1: trunkH, rough: 0.02})
		s.Add(&sphere{cx: x, cy: y, cz: trunkH + uniform(rng, 0.5, 1.5), r: uniform(rng, 1.2, 3), rough: uniform(rng, 0.3, 0.6)})
	}
}

// addBushes places low volumetric scatterers (hedges, shrubs) that return
// deeply scattered points, as real vegetation does.
func addBushes(s *Scene, rng *rand.Rand, n int, dMin, dMax float64) {
	for i := 0; i < n; i++ {
		x, y := ringPos(rng, dMin, dMax)
		s.Add(&sphere{cx: x, cy: y, cz: -1.73 + uniform(rng, 0.3, 0.8), r: uniform(rng, 0.5, 1.4), rough: uniform(rng, 0.25, 0.5)})
	}
}

func addPoles(s *Scene, rng *rand.Rand, n int, dMin, dMax float64) {
	for i := 0; i < n; i++ {
		x, y := ringPos(rng, dMin, dMax)
		s.Add(&cylinder{cx: x, cy: y, r: uniform(rng, 0.05, 0.15), z0: -1.73, z1: uniform(rng, 3, 7)})
	}
}

func addVehicles(s *Scene, rng *rand.Rand, n int, dMin, dMax float64) {
	for i := 0; i < n; i++ {
		x, y := ringPos(rng, dMin, dMax)
		s.Add(newBox(x, y,
			uniform(rng, 1.8, 2.6), uniform(rng, 0.8, 1.1),
			-1.73, uniform(rng, -0.4, 0.3),
			uniform(rng, 0, 3.14)).
			withRelief(0.5, 0.25, rng.Uint64()).
			withRoughness(0.015))
	}
}

func addPedestrians(s *Scene, rng *rand.Rand, n int, dMin, dMax float64) {
	for i := 0; i < n; i++ {
		x, y := ringPos(rng, dMin, dMax)
		s.Add(&cylinder{cx: x, cy: y, r: 0.25, z0: -1.73, z1: uniform(rng, -0.1, 0.2), rough: 0.08})
	}
}
