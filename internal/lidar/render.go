package lidar

import (
	"math"
	"strings"

	"dbgc/internal/geom"
)

// RenderTopDown draws a top-down ASCII density map of a cloud: the
// Figure 1 "spider web" view, for inspecting frames in a terminal. The
// sensor sits at the center; each character cell shows the point count of
// its column through a density ramp. extent is the half-width in meters
// (0 means fit the cloud); cols and rows are the character dimensions.
func RenderTopDown(pc geom.PointCloud, extent float64, cols, rows int) string {
	if cols < 2 || rows < 2 {
		return ""
	}
	if extent <= 0 {
		for _, p := range pc {
			extent = math.Max(extent, math.Max(math.Abs(p.X), math.Abs(p.Y)))
		}
		if extent == 0 {
			extent = 1
		}
	}
	counts := make([]int, cols*rows)
	maxCount := 0
	for _, p := range pc {
		// +x up the screen, +y to the left (sensor frame bird's eye).
		cx := int((1 - p.Y/extent) / 2 * float64(cols))
		cy := int((1 - p.X/extent) / 2 * float64(rows))
		if cx < 0 || cx >= cols || cy < 0 || cy >= rows {
			continue
		}
		counts[cy*cols+cx]++
		if counts[cy*cols+cx] > maxCount {
			maxCount = counts[cy*cols+cx]
		}
	}
	ramp := []byte(" .:-=+*#%@")
	var sb strings.Builder
	sb.Grow((cols + 1) * rows)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			c := counts[y*cols+x]
			if c == 0 {
				sb.WriteByte(' ')
				continue
			}
			// Log scale: LiDAR densities span orders of magnitude.
			level := int(math.Log1p(float64(c)) / math.Log1p(float64(maxCount)) * float64(len(ramp)-1))
			if level < 1 {
				level = 1
			}
			if level >= len(ramp) {
				level = len(ramp) - 1
			}
			sb.WriteByte(ramp[level])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
