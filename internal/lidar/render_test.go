package lidar

import (
	"strings"
	"testing"

	"dbgc/internal/geom"
)

func TestRenderTopDown(t *testing.T) {
	scene, err := NewScene(City, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	cfg.AzimuthSteps = 500
	pc := cfg.Simulate(scene, 1)
	out := RenderTopDown(pc, 60, 40, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("%d rows, want 20", len(lines))
	}
	for i, l := range lines {
		if len(l) != 40 {
			t.Fatalf("row %d has %d cols, want 40", i, len(l))
		}
	}
	// The spider web: the center region must be denser than the corners.
	center := lines[10][18:22]
	if strings.TrimSpace(center) == "" {
		t.Fatalf("center empty:\n%s", out)
	}
}

func TestRenderEdgeCases(t *testing.T) {
	if RenderTopDown(nil, 0, 1, 1) != "" {
		t.Fatal("degenerate dimensions should render empty")
	}
	out := RenderTopDown(geom.PointCloud{}, 0, 10, 5)
	if !strings.Contains(out, "\n") {
		t.Fatal("empty cloud should still render a grid")
	}
	// Single point at origin: auto extent.
	out = RenderTopDown(geom.PointCloud{{X: 0.0001, Y: 0, Z: 0}}, 0, 11, 11)
	if strings.TrimSpace(out) == "" {
		t.Fatal("single point invisible")
	}
}
