package lidar

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"dbgc/internal/geom"
)

// ReadBin reads a KITTI-format .bin frame: little-endian float32 records of
// (x, y, z, intensity). The intensity channel is discarded — DBGC is a
// geometry compressor (§2.1); use ReadBinWithIntensity to keep it.
func ReadBin(r io.Reader) (geom.PointCloud, error) {
	pc, _, err := readBin(r, false)
	return pc, err
}

// ReadBinWithIntensity reads a KITTI .bin frame keeping the per-point
// intensity channel.
func ReadBinWithIntensity(r io.Reader) (geom.PointCloud, []float32, error) {
	return readBin(r, true)
}

func readBin(r io.Reader, withIntensity bool) (geom.PointCloud, []float32, error) {
	br := bufio.NewReader(r)
	var pc geom.PointCloud
	var intens []float32
	var rec [16]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			return pc, intens, nil
		}
		if err != nil {
			return nil, nil, fmt.Errorf("lidar: reading .bin record %d: %w", len(pc), err)
		}
		x := math.Float32frombits(binary.LittleEndian.Uint32(rec[0:]))
		y := math.Float32frombits(binary.LittleEndian.Uint32(rec[4:]))
		z := math.Float32frombits(binary.LittleEndian.Uint32(rec[8:]))
		pc = append(pc, geom.Point{X: float64(x), Y: float64(y), Z: float64(z)})
		if withIntensity {
			intens = append(intens, math.Float32frombits(binary.LittleEndian.Uint32(rec[12:])))
		}
	}
}

// WriteBin writes a cloud in KITTI .bin format with zero intensities.
func WriteBin(w io.Writer, pc geom.PointCloud) error {
	return WriteBinWithIntensity(w, pc, nil)
}

// WriteBinWithIntensity writes a cloud in KITTI .bin format. intensity may
// be nil (zeros) or must hold one value per point.
func WriteBinWithIntensity(w io.Writer, pc geom.PointCloud, intensity []float32) error {
	if intensity != nil && len(intensity) != len(pc) {
		return fmt.Errorf("lidar: %d intensities for %d points", len(intensity), len(pc))
	}
	bw := bufio.NewWriter(w)
	var rec [16]byte
	for i, p := range pc {
		binary.LittleEndian.PutUint32(rec[0:], math.Float32bits(float32(p.X)))
		binary.LittleEndian.PutUint32(rec[4:], math.Float32bits(float32(p.Y)))
		binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(float32(p.Z)))
		var in float32
		if intensity != nil {
			in = intensity[i]
		}
		binary.LittleEndian.PutUint32(rec[12:], math.Float32bits(in))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("lidar: writing .bin: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinFile reads a .bin frame from disk.
func ReadBinFile(path string) (geom.PointCloud, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBin(f)
}

// WriteBinFile writes a .bin frame to disk.
func WriteBinFile(path string, pc geom.PointCloud) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBin(f, pc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
