package lidar

import (
	"math"
	"testing"
)

func TestSimulateAtPoseConsistency(t *testing.T) {
	scene, err := NewScene(Road, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	cfg.AzimuthSteps = 400

	// Zero pose must equal Simulate.
	a := cfg.Simulate(scene, 3)
	b := cfg.SimulateAt(scene, 3, Pose{})
	if len(a) != len(b) {
		t.Fatalf("zero pose differs: %d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero pose point %d differs", i)
		}
	}

	// A moved sensor still sees the ground at z=-Height in its own frame.
	m := cfg.SimulateAt(scene, 3, Pose{X: 10, Y: -5, Yaw: 0.7})
	if len(m) < len(a)/2 {
		t.Fatalf("moved capture has too few points: %d", len(m))
	}
	ground := 0
	for _, p := range m {
		if math.Abs(p.Z+cfg.Height) < 0.15 {
			ground++
		}
	}
	if ground < len(m)/10 {
		t.Fatalf("moved capture lost the ground: %d/%d", ground, len(m))
	}
}

func TestSimulateAtYawRotatesFrame(t *testing.T) {
	// One landmark scene: a single pole along +x from the origin pose.
	s := &Scene{}
	s.Add(&cylinder{cx: 20, cy: 0, r: 0.5, z0: -1.73, z1: 5})
	cfg := HDL64E()
	cfg.AzimuthSteps = 720
	cfg.Dropout = 0
	cfg.MixedPixel = 0
	cfg.AngleJitter = 0

	// Facing the pole (yaw 0): returns cluster near theta=0 (+x).
	// Rotated 90° (yaw=π/2): the pole should appear at -y... i.e. the
	// sensor-frame azimuth of pole hits shifts by -yaw.
	meanAz := func(pose Pose) float64 {
		pc := cfg.SimulateAt(s, 1, pose)
		var sx, sy float64
		n := 0
		for _, p := range pc {
			if p.Z > -1 { // pole hits, not ground
				sx += p.X
				sy += p.Y
				n++
			}
		}
		if n == 0 {
			t.Fatal("no pole hits")
		}
		return math.Atan2(sy/float64(n), sx/float64(n))
	}
	az0 := meanAz(Pose{})
	az90 := meanAz(Pose{Yaw: math.Pi / 2})
	if math.Abs(az0) > 0.05 {
		t.Fatalf("pole at azimuth %v facing it, want ~0", az0)
	}
	if math.Abs(az90+math.Pi/2) > 0.05 {
		t.Fatalf("pole at azimuth %v after 90° yaw, want ~-π/2", az90)
	}
}
