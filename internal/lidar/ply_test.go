package lidar

import (
	"bytes"
	"strings"
	"testing"

	"dbgc/internal/geom"
)

func TestPLYBinaryRoundTrip(t *testing.T) {
	pc := geom.PointCloud{{X: 1.5, Y: -2.25, Z: 0.125}, {X: 0, Y: 0, Z: 0}, {X: 100, Y: -50, Z: 3}}
	var buf bytes.Buffer
	if err := WritePLY(&buf, pc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLY(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pc) {
		t.Fatalf("read %d points, wrote %d", len(back), len(pc))
	}
	for i := range pc {
		if pc[i].Dist(back[i]) > 1e-5 {
			t.Fatalf("point %d: %v vs %v", i, pc[i], back[i])
		}
	}
}

func TestPLYASCII(t *testing.T) {
	src := `ply
format ascii 1.0
comment test file
element vertex 2
property float x
property float y
property float z
property uchar red
end_header
1.0 2.0 3.0 255
-4.5 0.25 9.75 0
`
	pc, err := ReadPLY(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pc) != 2 {
		t.Fatalf("read %d points", len(pc))
	}
	if pc[0] != (geom.Point{X: 1, Y: 2, Z: 3}) {
		t.Fatalf("point 0 = %v", pc[0])
	}
	if pc[1] != (geom.Point{X: -4.5, Y: 0.25, Z: 9.75}) {
		t.Fatalf("point 1 = %v", pc[1])
	}
}

func TestPLYASCIIReorderedProperties(t *testing.T) {
	src := `ply
format ascii 1.0
element vertex 1
property double z
property double x
property double y
end_header
3 1 2
`
	pc, err := ReadPLY(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if pc[0] != (geom.Point{X: 1, Y: 2, Z: 3}) {
		t.Fatalf("point = %v", pc[0])
	}
}

func TestPLYSkipsNonVertexASCII(t *testing.T) {
	src := `ply
format ascii 1.0
element vertex 1
property float x
property float y
property float z
element face 2
property list uchar int vertex_indices
end_header
1 1 1
3 0 1 2
3 2 1 0
`
	pc, err := ReadPLY(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pc) != 1 {
		t.Fatalf("read %d points", len(pc))
	}
}

func TestPLYErrors(t *testing.T) {
	cases := map[string]string{
		"not ply":       "nope\n",
		"bad format":    "ply\nformat big_endian 1.0\nelement vertex 0\nend_header\n",
		"missing xyz":   "ply\nformat ascii 1.0\nelement vertex 1\nproperty float x\nend_header\n1\n",
		"short vertex":  "ply\nformat ascii 1.0\nelement vertex 1\nproperty float x\nproperty float y\nproperty float z\nend_header\n1 2\n",
		"bad count":     "ply\nformat ascii 1.0\nelement vertex nope\nend_header\n",
		"orphan prop":   "ply\nformat ascii 1.0\nproperty float x\nend_header\n",
		"vertex list":   "ply\nformat ascii 1.0\nelement vertex 1\nproperty list uchar int x\nend_header\n",
		"unknown field": "ply\nformat ascii 1.0\nwhatever\nend_header\n",
	}
	for name, src := range cases {
		if _, err := ReadPLY(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPLYFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cloud.ply"
	scene, err := NewScene(Road, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HDL64E()
	cfg.AzimuthSteps = 100
	pc := cfg.Simulate(scene, 1)
	if err := WritePLYFile(path, pc); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPLYFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pc) {
		t.Fatalf("read %d points, wrote %d", len(back), len(pc))
	}
}
