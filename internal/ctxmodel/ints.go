package ctxmodel

import (
	"fmt"
	"math/bits"

	"dbgc/internal/arith"
	"dbgc/internal/declimits"
	"dbgc/internal/varint"
)

// Context-modeled integer streams. The sparse path's φ tails are runs of
// small quantized-angle deltas punctuated by polyline-boundary jumps; the
// magnitude of one delta strongly predicts the magnitude class of the next
// (a θ/φ-bucket context, after Sridhara et al.'s observation that the
// angular grid is locally regular). Values code as zigzag LEB128 through
// the arithmetic coder, like arith.AppendCompressInts, except the first
// byte of every value selects its model by the previous value's magnitude
// bucket; continuation bytes share one model. The bucket state and the
// bank reset at shard boundaries, so shards stay independently decodable
// (and, unlike the occupancy replay, decode in parallel).

// IntContexts is the first-byte context count: zigzag bit-length buckets
// 0..6 plus "7 or more bits".
const IntContexts = 8

// magBucket buckets a zigzag-mapped value by bit length, saturating at 7.
func magBucket(z uint64) int {
	b := bits.Len64(z)
	if b > 7 {
		b = 7
	}
	return b
}

// AppendIntsCtx appends the context-modeled zigzag coding of vs, sharded
// into shards independently coded shards. The bytes depend only on
// (vs, shards), never on parallel.
func AppendIntsCtx(dst []byte, vs []int64, shards int, parallel bool) []byte {
	return arith.AppendSharded(dst, len(vs), shards, parallel, func(lo, hi int, out []byte) []byte {
		bank := GetBank(IntContexts, 256)
		cont := arith.GetModel(256)
		e := arith.GetEncoder()
		prev := 0
		for _, v := range vs[lo:hi] {
			z := varint.Zigzag(v)
			sym := int(z & 0x7f)
			rest := z >> 7
			if rest != 0 {
				sym |= 0x80
			}
			bank.Encode(e, prev, sym)
			for rest != 0 {
				sym = int(rest & 0x7f)
				rest >>= 7
				if rest != 0 {
					sym |= 0x80
				}
				e.Encode(cont, sym)
			}
			prev = magBucket(z)
		}
		out = e.AppendFinish(out)
		arith.PutEncoder(e)
		arith.PutModel(cont)
		PutBank(bank)
		return out
	})
}

// DecodeIntsCtx inverts AppendIntsCtx, decoding exactly n integers and
// charging them (plus the context tables) against b. With parallel set the
// shards decode concurrently.
func DecodeIntsCtx(data []byte, n int, b *declimits.Budget, parallel bool) ([]int64, error) {
	// +2 for the shared seeding model and the continuation model.
	if err := b.Contexts(IntContexts+2, ModelBytes256); err != nil {
		return nil, err
	}
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	out := make([]int64, n)
	err := arith.DecodeSharded(data, n, b, parallel, func(_ int, shard []byte, lo, hi int) error {
		bank := GetBank(IntContexts, 256)
		cont := arith.GetModel(256)
		d := arith.GetDecoder(shard)
		defer func() {
			arith.PutDecoder(d)
			arith.PutModel(cont)
			PutBank(bank)
		}()
		prev := 0
		for k := lo; k < hi; k++ {
			sym, err := bank.Decode(d, prev)
			if err != nil {
				return fmt.Errorf("ctxmodel: int %d/%d: %w", k, n, err)
			}
			z := uint64(sym & 0x7f)
			shift := uint(7)
			for sym >= 0x80 {
				if shift >= 64 {
					return fmt.Errorf("%w: varint overflow", ErrCorrupt)
				}
				sym, err = d.Decode(cont)
				if err != nil {
					return fmt.Errorf("ctxmodel: int %d/%d: %w", k, n, err)
				}
				z |= uint64(sym&0x7f) << shift
				shift += 7
			}
			out[k] = varint.Unzigzag(z)
			prev = magBucket(z)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
