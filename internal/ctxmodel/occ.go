package ctxmodel

import (
	"fmt"
	"sync"

	"dbgc/internal/arith"
	"dbgc/internal/declimits"
	"dbgc/internal/varint"
)

// Context-modeled occupancy stream (container v5). The layout is:
//
//	feats   byte     feature mask (Features bits; unknown bits are corrupt)
//	nctx    uvarint  context count, must equal feats.Contexts()
//	shards  ...      the arith shard framing over the occupancy codes
//
// Every context feature derives from structure that is already decoded when
// the symbol arrives — the parent's code (one level up), the node's octant
// (implied by the parent's code), the previous code at the same level, and
// the depth — so the decoder replays the breadth-first construction in
// lockstep with the arithmetic decode. The replay makes shard decode
// inherently sequential (a shard's contexts depend on every earlier
// shard's codes); the bank still resets per shard so the bytes match the
// shard-parallel encoder.

// occReplay tracks the breadth-first structural state that yields each
// node's context features. The encoder drives it over the full occupancy
// sequence up front (the tree is known); the decoder advances it one
// decoded code at a time.
type occReplay struct {
	parent []byte  // parent occupancy code per node slot
	octant []uint8 // child index within the parent per node slot
	prev   []byte  // previous same-level code (encode-side aux, for shards)
	drem   []uint8 // remaining-depth bucket (encode-side aux)

	n, depth         int
	w                int // next child slot to assign
	d                int // current level
	lvlStart, lvlEnd int
}

var replayPool = sync.Pool{New: func() any { return new(occReplay) }}

func getReplay(n, depth int, aux bool) *occReplay {
	r := replayPool.Get().(*occReplay)
	r.parent = grow(r.parent, n)
	r.octant = grow(r.octant, n)
	if aux {
		r.prev = grow(r.prev, n)
		r.drem = grow(r.drem, n)
	}
	if n > 0 {
		r.parent[0], r.octant[0] = 0, 0
	}
	r.n, r.depth = n, depth
	r.w, r.d = 1, 0
	r.lvlStart, r.lvlEnd = 0, 1
	return r
}

func putReplay(r *occReplay) { replayPool.Put(r) }

// features returns the context features of node i given the codes decoded
// so far (occ[:i] are valid). Call with ascending i, each followed by one
// observe. On structurally impossible streams (a corrupt decode can imply
// fewer nodes than the header claims) the features degrade to zero; the
// octree-level replay rejects such streams after the fact.
func (r *occReplay) features(i int, occ []byte) (parent byte, octant uint8, prev byte, drem uint8) {
	for i >= r.lvlEnd && r.lvlEnd > r.lvlStart {
		r.d++
		r.lvlStart, r.lvlEnd = r.lvlEnd, r.w
	}
	if i < r.w {
		parent, octant = r.parent[i], r.octant[i]
	}
	if i > r.lvlStart && i < r.lvlEnd {
		prev = occ[i-1]
	}
	if rem := r.depth - 1 - r.d; rem > 0 {
		if rem > 3 {
			rem = 3
		}
		drem = uint8(rem)
	}
	return parent, octant, prev, drem
}

// observe accounts node i's code, assigning parent/octant slots to its
// children (when they are internal nodes, i.e. above the leaf level).
func (r *occReplay) observe(code byte) {
	if r.d+1 >= r.depth {
		return
	}
	for c := 0; c < 8; c++ {
		if code&(1<<uint(c)) == 0 {
			continue
		}
		if r.w >= r.n {
			return
		}
		r.parent[r.w] = code
		r.octant[r.w] = uint8(c)
		r.w++
	}
}

// AppendOcc appends the context-modeled coding of the breadth-first
// occupancy sequence occ (an octree of the given depth) under feats,
// sharded into shards independently coded shards. The bytes depend only on
// (occ, depth, feats, shards), never on parallel.
func AppendOcc(dst, occ []byte, depth int, feats Features, shards int, parallel bool) []byte {
	feats &= FeatAll
	dst = append(dst, byte(feats))
	dst = varint.AppendUint(dst, uint64(feats.Contexts()))

	// Feature pass: the encoder knows the whole tree, so per-node features
	// land in flat arrays and the shard workers index them freely.
	r := getReplay(len(occ), depth, true)
	for i, code := range occ {
		_, _, prev, drem := r.features(i, occ)
		r.prev[i], r.drem[i] = prev, drem
		r.observe(code)
	}

	dst = arith.AppendSharded(dst, len(occ), shards, parallel, func(lo, hi int, out []byte) []byte {
		bank := GetBank(feats.Contexts(), 256)
		e := arith.GetEncoder()
		for i := lo; i < hi; i++ {
			sym := occ[i]
			if feats&FeatOctant != 0 {
				sym = Reflect(sym, r.octant[i])
			}
			bank.Encode(e, feats.Index(r.parent[i], r.octant[i], r.prev[i], r.drem[i]), int(sym))
		}
		out = e.AppendFinish(out)
		arith.PutEncoder(e)
		PutBank(bank)
		return out
	})
	putReplay(r)
	return dst
}

// DecodeOcc inverts AppendOcc, decoding exactly n occupancy codes of a
// depth-level octree and charging nodes and context-table memory against b.
// Shards decode sequentially regardless of any parallel option: the
// context replay threads structural state from each shard into the next
// (see DESIGN.md §15), unlike the order-0 sharded streams.
func DecodeOcc(data []byte, n, depth int, b *declimits.Budget) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: missing feature byte", ErrCorrupt)
	}
	feats := Features(data[0])
	if feats&^FeatAll != 0 {
		return nil, fmt.Errorf("%w: unknown context features %#x", ErrCorrupt, byte(feats))
	}
	data = data[1:]
	nctx, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("ctxmodel: context count: %w", err)
	}
	data = data[used:]
	if nctx != uint64(feats.Contexts()) {
		return nil, fmt.Errorf("%w: %d contexts declared, features imply %d", ErrCorrupt, nctx, feats.Contexts())
	}
	// +1 for the shared seeding model the bank always carries.
	if err := b.Contexts(int64(nctx)+1, ModelBytes256); err != nil {
		return nil, err
	}
	if err := b.Nodes(int64(n)); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	r := getReplay(n, depth, false)
	defer putReplay(r)
	bank := GetBank(feats.Contexts(), 256)
	defer PutBank(bank)
	err = arith.DecodeSharded(data, n, b, false, func(_ int, shard []byte, lo, hi int) error {
		bank.Reset()
		d := arith.GetDecoder(shard)
		defer arith.PutDecoder(d)
		for i := lo; i < hi; i++ {
			parent, octant, prev, drem := r.features(i, out)
			sym, err := bank.Decode(d, feats.Index(parent, octant, prev, drem))
			if err != nil {
				return fmt.Errorf("ctxmodel: occupancy %d/%d: %w", i, n, err)
			}
			code := byte(sym)
			if feats&FeatOctant != 0 {
				code = Reflect(code, octant)
			}
			out[i] = code
			r.observe(code)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
