// Package ctxmodel implements table-driven context modeling for the
// adaptive arithmetic coder — a non-neural analogue of OctSqueeze's context
// model (Huang et al., PAPERS.md). Instead of one order-0 model per stream,
// symbols are coded under a bank of per-context models, where the context is
// derived from already-transmitted structure: for octree occupancy codes the
// parent's occupancy byte, the node's octant, the previously decoded sibling
// code, and the depth bucket; for integer delta streams the magnitude bucket
// of the previous value.
//
// Splitting a short stream (a city frame carries ~24k occupancy codes)
// across many 256-ary adaptive models normally loses: each model pays the
// full uniform-prior adaptation cost, and the dilution exceeds the
// conditional-entropy gain (internal/gpcc's neighbour-mask experiment hit
// exactly this). Two mechanisms make contexts win here:
//
//   - Snapshot seeding: a context's model is cloned lazily from a running
//     shared model the first time the context appears, so it starts from
//     the stream's learned global distribution instead of the uniform
//     prior. The shared model tracks every symbol until all contexts are
//     live, then stops updating (encoder and decoder apply the same rule,
//     so they stay in lockstep).
//   - Octant reflection: occupancy bits are mirrored along the axes where
//     the node sits on the positive side of its parent, canonicalizing
//     surface orientation so geometrically equivalent codes share symbols.
//
// Context state is per-shard: every shard of a sharded stream restarts its
// bank, so shard-parallel encode and decode stay byte-identical to serial.
package ctxmodel

import (
	"errors"
	"sync"

	"dbgc/internal/arith"
)

// ErrCorrupt reports a malformed context-modeled stream.
var ErrCorrupt = errors.New("ctxmodel: corrupt stream")

// Features selects which structural signals form the occupancy context.
// The feature byte travels in the stream header, so the decoder derives the
// identical context indices without out-of-band configuration.
type Features uint8

const (
	// FeatOctant mirrors each occupancy code along the axes where its node
	// lies on the positive side of its parent (octant reflection). It
	// canonicalizes orientation rather than multiplying contexts.
	FeatOctant Features = 1 << iota
	// FeatParent keys the context on the parent-adjacency mask: which of
	// the node's three face-sharing siblings exist in the parent's
	// occupancy code (8 contexts).
	FeatParent
	// FeatSibling keys the context on the popcount bucket of the
	// previously decoded occupancy code at the same level (4 contexts).
	FeatSibling
	// FeatDepth keys the context on the remaining-depth bucket,
	// min(3, levels above the leaves) (4 contexts).
	FeatDepth

	// FeatAll is every defined feature bit; stream headers carrying
	// unknown bits are corrupt.
	FeatAll = FeatOctant | FeatParent | FeatSibling | FeatDepth
)

// DefaultFeatures is the measured sweet spot on the KITTI-style benchmark
// frames: reflection plus the 8 adjacency contexts. The sibling and depth
// features exist for the benchkit ablation; on the reference frames their
// extra contexts dilute more than they sharpen (BENCH_10.json).
const DefaultFeatures = FeatOctant | FeatParent

// Contexts returns the size of the context bank the feature set selects.
// FeatOctant remaps symbols and multiplies nothing.
func (f Features) Contexts() int {
	c := 1
	if f&FeatParent != 0 {
		c *= 8
	}
	if f&FeatSibling != 0 {
		c *= 4
	}
	if f&FeatDepth != 0 {
		c *= 4
	}
	return c
}

// Index maps one node's structural signals to its context index in
// [0, f.Contexts()).
func (f Features) Index(parent byte, octant uint8, prev byte, drem uint8) int {
	idx := 0
	if f&FeatParent != 0 {
		idx = idx<<3 | adjMask(parent, octant)
	}
	if f&FeatSibling != 0 {
		idx = idx<<2 | popBucket(prev)
	}
	if f&FeatDepth != 0 {
		idx = idx<<2 | int(drem)
	}
	return idx
}

// Reflect mirrors the occupancy code along the axes set in octant, so a
// node on the positive x side of its parent sees its children's x bits
// flipped (likewise y and z). It is an involution: Reflect(Reflect(c, o), o)
// == c, so encoder and decoder share one function.
func Reflect(code byte, octant uint8) byte {
	if octant&1 != 0 {
		code = (code&0xaa)>>1 | (code&0x55)<<1
	}
	if octant&2 != 0 {
		code = (code&0xcc)>>2 | (code&0x33)<<2
	}
	if octant&4 != 0 {
		code = code>>4 | code<<4
	}
	return code
}

// adjMask reports which of a node's three face-sharing siblings are present
// in the parent's occupancy code: bit 0 for the neighbor across x, bit 1
// across y, bit 2 across z. Occupied neighbors predict denser children on
// the shared face, which is what the 8 contexts separate.
func adjMask(parent byte, octant uint8) int {
	m := 0
	if parent&(1<<(octant^1)) != 0 {
		m |= 1
	}
	if parent&(1<<(octant^2)) != 0 {
		m |= 2
	}
	if parent&(1<<(octant^4)) != 0 {
		m |= 4
	}
	return m
}

// popBucket buckets the previously decoded sibling code by occupancy
// density: 0 (level start or empty), 1, 2, or 3+ occupied children.
func popBucket(prev byte) int {
	pop := 0
	for b := prev; b != 0; b &= b - 1 {
		pop++
	}
	if pop > 3 {
		pop = 3
	}
	return pop
}

// ModelBytes256 is the memory one 256-symbol context model costs (the
// Fenwick table plus header), charged per context against DecodeLimits.
const ModelBytes256 = 1056

// Bank is a resettable set of per-context adaptive models over one
// alphabet, plus the shared seeding model. Models materialize lazily: a
// context's model is cloned from the shared model's current state the first
// time the context is coded, and the shared model follows the stream until
// every context is live. A Bank is not safe for concurrent use; distinct
// Banks are independent.
type Bank struct {
	n       int
	models  []*arith.Model
	live    []bool
	pending int
	shared  *arith.Model
}

// NewBank returns a bank of contexts models over {0,...,n-1}, all in the
// seeded-on-first-use state. Prefer GetBank on hot paths.
func NewBank(contexts, n int) *Bank {
	b := &Bank{}
	b.init(contexts, n)
	return b
}

func (b *Bank) init(contexts, n int) {
	if b.n != n {
		// Alphabet changed: cached models are unusable.
		b.models = nil
		b.shared = nil
		b.n = n
	}
	if cap(b.models) < contexts {
		models := make([]*arith.Model, contexts)
		copy(models, b.models)
		b.models = models
		b.live = make([]bool, contexts)
	}
	b.models = b.models[:contexts]
	b.live = b.live[:contexts]
	if b.shared == nil {
		b.shared = arith.NewModel(n)
	}
	b.Reset()
}

// Reset restores the bank to its initial state — every context pending, the
// shared model uniform — as required at each shard boundary.
func (b *Bank) Reset() {
	for i := range b.live {
		b.live[i] = false
	}
	b.pending = len(b.live)
	b.shared.Reset()
}

// Contexts returns the bank's context count.
func (b *Bank) Contexts() int { return len(b.models) }

// model returns ctx's model, cloning it from the shared model on first use.
func (b *Bank) model(ctx int) *arith.Model {
	if !b.live[ctx] {
		m := b.models[ctx]
		if m == nil {
			m = arith.NewModel(b.n)
			b.models[ctx] = m
		}
		m.CopyFrom(b.shared)
		b.live[ctx] = true
		b.pending--
	}
	return b.models[ctx]
}

// Encode codes sym under context ctx.
func (b *Bank) Encode(e *arith.Encoder, ctx, sym int) {
	e.Encode(b.model(ctx), sym)
	if b.pending > 0 {
		b.shared.Update(sym)
	}
}

// Decode decodes the next symbol under context ctx, mirroring Encode's
// model state exactly.
func (b *Bank) Decode(d *arith.Decoder, ctx int) (int, error) {
	sym, err := d.Decode(b.model(ctx))
	if err == nil && b.pending > 0 {
		b.shared.Update(sym)
	}
	return sym, err
}

// bankPool recycles Banks — and, critically, the arith Fenwick tables
// inside them — across shards and frames. Reshaping a pooled bank to a
// different context count keeps the models already built.
var bankPool = sync.Pool{New: func() any { return new(Bank) }}

// GetBank returns a reset bank of contexts models over {0,...,n-1},
// reusing pooled model tables when possible. Return it with PutBank.
func GetBank(contexts, n int) *Bank {
	b := bankPool.Get().(*Bank)
	b.init(contexts, n)
	return b
}

// PutBank returns a bank obtained from GetBank to the pool.
func PutBank(b *Bank) {
	if b != nil {
		bankPool.Put(b)
	}
}

// grow returns s with length n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
