package ctxmodel

import (
	"bytes"
	"math/rand"
	"testing"

	"dbgc/internal/declimits"
)

// genOcc builds a random but structurally valid breadth-first occupancy
// sequence for an octree of the given depth, with branching thinned so the
// node count stays testable.
func genOcc(rng *rand.Rand, depth int) []byte {
	occ := []byte{}
	level := 1
	for d := 0; d < depth && level > 0; d++ {
		next := 0
		for i := 0; i < level; i++ {
			var code byte
			for code == 0 {
				code = byte(rng.Intn(256)) & byte(rng.Intn(256)) // skew sparse
				if code == 0 && rng.Intn(4) == 0 {
					code = 1 << uint(rng.Intn(8))
				}
			}
			occ = append(occ, code)
			if d+1 < depth {
				for c := 0; c < 8; c++ {
					if code&(1<<uint(c)) != 0 {
						next++
					}
				}
			}
		}
		level = next
	}
	return occ
}

func TestReflectInvolution(t *testing.T) {
	for o := uint8(0); o < 8; o++ {
		for c := 0; c < 256; c++ {
			if got := Reflect(Reflect(byte(c), o), o); got != byte(c) {
				t.Fatalf("Reflect(Reflect(%#x, %d)) = %#x", c, o, got)
			}
		}
	}
	// Reflection permutes bits, so popcount is invariant.
	if Reflect(0x01, 1) != 0x02 || Reflect(0x01, 7) != 0x80 {
		t.Fatalf("reflection axes wrong: %#x %#x", Reflect(0x01, 1), Reflect(0x01, 7))
	}
}

func TestFeatureContexts(t *testing.T) {
	cases := map[Features]int{
		0:                        1,
		FeatOctant:               1,
		FeatParent:               8,
		FeatSibling:              4,
		FeatDepth:                4,
		DefaultFeatures:          8,
		FeatAll:                  128,
		FeatParent | FeatSibling: 32,
	}
	for f, want := range cases {
		if got := f.Contexts(); got != want {
			t.Errorf("Features(%#x).Contexts() = %d, want %d", byte(f), got, want)
		}
	}
}

func TestOccRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	feats := []Features{0, FeatOctant, DefaultFeatures, FeatParent | FeatSibling, FeatAll}
	for _, depth := range []int{1, 2, 4, 6} {
		occ := genOcc(rng, depth)
		for _, f := range feats {
			for _, shards := range []int{1, 4} {
				stream := AppendOcc(nil, occ, depth, f, shards, false)
				par := AppendOcc(nil, occ, depth, f, shards, true)
				if !bytes.Equal(stream, par) {
					t.Fatalf("depth %d feats %#x shards %d: parallel encode differs", depth, byte(f), shards)
				}
				got, err := DecodeOcc(stream, len(occ), depth, nil)
				if err != nil {
					t.Fatalf("depth %d feats %#x shards %d: decode: %v", depth, byte(f), shards, err)
				}
				if !bytes.Equal(got, occ) {
					t.Fatalf("depth %d feats %#x shards %d: roundtrip mismatch", depth, byte(f), shards)
				}
			}
		}
	}
}

func TestOccEmpty(t *testing.T) {
	stream := AppendOcc(nil, nil, 0, DefaultFeatures, 1, false)
	got, err := DecodeOcc(stream, 0, 0, nil)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d codes from empty stream", len(got))
	}
}

func TestDecodeOccCorrupt(t *testing.T) {
	occ := genOcc(rand.New(rand.NewSource(1)), 4)
	stream := AppendOcc(nil, occ, 4, DefaultFeatures, 2, false)

	if _, err := DecodeOcc(nil, len(occ), 4, nil); err == nil {
		t.Error("empty stream: want error")
	}
	// Unknown feature bits.
	bad := append([]byte{0xf0}, stream[1:]...)
	if _, err := DecodeOcc(bad, len(occ), 4, nil); err == nil {
		t.Error("unknown feature bits: want error")
	}
	// Context count disagreeing with the feature mask.
	bad = append([]byte{stream[0], 0x7f}, stream[2:]...)
	if _, err := DecodeOcc(bad, len(occ), 4, nil); err == nil {
		t.Error("wrong context count: want error")
	}
	// Truncations at every prefix must error, never panic or hang.
	for l := 0; l < len(stream); l += 7 {
		if _, err := DecodeOcc(stream[:l], len(occ), 4, nil); err == nil {
			t.Errorf("truncated at %d: want error", l)
		}
	}
	// A context-table budget below the bank size must refuse up front.
	b := declimits.New(declimits.Limits{MaxContexts: 2})
	if _, err := DecodeOcc(stream, len(occ), 4, b); err == nil {
		t.Error("MaxContexts 2: want error")
	}
}

func TestIntsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 100, 5000} {
		vs := make([]int64, n)
		for i := range vs {
			switch rng.Intn(3) {
			case 0:
				vs[i] = int64(rng.Intn(7)) - 3
			case 1:
				vs[i] = int64(rng.Intn(2000)) - 1000
			default:
				vs[i] = rng.Int63() - rng.Int63()
			}
		}
		for _, shards := range []int{1, 3} {
			stream := AppendIntsCtx(nil, vs, shards, false)
			par := AppendIntsCtx(nil, vs, shards, true)
			if !bytes.Equal(stream, par) {
				t.Fatalf("n %d shards %d: parallel encode differs", n, shards)
			}
			for _, pdec := range []bool{false, true} {
				got, err := DecodeIntsCtx(stream, n, nil, pdec)
				if err != nil {
					t.Fatalf("n %d shards %d parallel %v: %v", n, shards, pdec, err)
				}
				for i := range vs {
					if got[i] != vs[i] {
						t.Fatalf("n %d shards %d: value %d = %d, want %d", n, shards, i, got[i], vs[i])
					}
				}
			}
		}
	}
}

func TestDecodeIntsCorrupt(t *testing.T) {
	vs := []int64{1, -2, 300, -40000, 5}
	stream := AppendIntsCtx(nil, vs, 1, false)
	for l := 0; l < len(stream); l++ {
		if _, err := DecodeIntsCtx(stream[:l], len(vs), nil, false); err == nil {
			t.Errorf("truncated at %d: want error", l)
		}
	}
	b := declimits.New(declimits.Limits{MaxContexts: 4})
	if _, err := DecodeIntsCtx(stream, len(vs), b, false); err == nil {
		t.Error("MaxContexts 4: want error")
	}
}

// TestBankSeeding checks the snapshot-seeding lockstep directly: symbols
// coded through a bank under a context sequence decode back identically.
func TestBankSeeding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]int, 4096)
	ctxs := make([]int, len(syms))
	for i := range syms {
		syms[i] = rng.Intn(256)
		ctxs[i] = rng.Intn(8)
	}
	// Import cycle keeps the arith coder here; exercise via the public API.
	stream := func() []byte {
		vs := make([]int64, len(syms))
		for i, s := range syms {
			vs[i] = int64(s - 128)
		}
		return AppendIntsCtx(nil, vs, 2, false)
	}()
	got, err := DecodeIntsCtx(stream, len(syms), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range syms {
		if got[i] != int64(s-128) {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], s-128)
		}
	}
}

// TestBankPooling bounds steady-state allocations of the pooled bank and
// replay scratch: after warmup, an occupancy encode/decode cycle must not
// allocate bank tables or replay arrays anew (the PR 2/5 scratch-reuse
// contract).
func TestBankPooling(t *testing.T) {
	occ := genOcc(rand.New(rand.NewSource(5)), 5)
	stream := AppendOcc(nil, occ, 5, DefaultFeatures, 2, false)
	dst := make([]byte, 0, 2*len(stream))
	// Warm the pools.
	for i := 0; i < 3; i++ {
		AppendOcc(dst[:0], occ, 5, DefaultFeatures, 2, false)
	}
	allocs := testing.AllocsPerRun(20, func() {
		AppendOcc(dst[:0], occ, 5, DefaultFeatures, 2, false)
	})
	// The shard framing allocates a few slice headers per encode; the
	// bound is that models/tables (1KiB+ each) are NOT rebuilt: with 9
	// fresh 257-entry tables per run this would exceed 25 allocations.
	if allocs > 16 {
		t.Errorf("AppendOcc allocates %.1f objects/run, want <= 16 (bank tables not pooled?)", allocs)
	}
	decAllocs := testing.AllocsPerRun(20, func() {
		if _, err := DecodeOcc(stream, len(occ), 5, nil); err != nil {
			t.Fatal(err)
		}
	})
	if decAllocs > 16 {
		t.Errorf("DecodeOcc allocates %.1f objects/run, want <= 16", decAllocs)
	}
	bankAllocs := testing.AllocsPerRun(50, func() {
		b := GetBank(8, 256)
		PutBank(b)
	})
	if bankAllocs != 0 {
		t.Errorf("GetBank/PutBank allocates %.1f objects/run, want 0", bankAllocs)
	}
}
