package gpcc

import (
	"math"
	"testing"

	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// TestHostileHeaderCount is the regression test for the duplicate-point
// bomb: a depth-0 tree whose header claims MaxInt32 points is a legal
// stream shape that previously preallocated tens of gigabytes. Under a
// budget (or even without one, via the prealloc clamp) it must fail fast.
func TestHostileHeaderCount(t *testing.T) {
	pc := geom.PointCloud{{X: 1, Y: 2, Z: 0.5}, {X: -3, Y: 0.5, Z: 1}, {X: 4, Y: -1, Z: 0.2}}
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	_, used, err := varint.Uint(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	hostile := varint.AppendUint(nil, uint64(math.MaxInt32))
	hostile = append(hostile, enc.Data[used:]...)

	b := declimits.New(declimits.Limits{MaxPoints: 1 << 16, MaxNodes: 1 << 20, MemBudget: 32 << 20})
	if _, err := DecodeLimited(hostile, b); err == nil {
		t.Fatal("MaxInt32 point count decoded without error under budget")
	}

	// Near-2^64 counts must be rejected as corrupt even without a budget
	// (the uint64-wrap class).
	wrap := varint.AppendUint(nil, math.MaxUint64)
	wrap = append(wrap, enc.Data[used:]...)
	if _, err := Decode(wrap); err == nil {
		t.Fatal("wrapping point count decoded without error")
	}
}
