// Package gpcc implements a simplified G-PCC (MPEG TMC13) geometry coder,
// the strongest prior-work baseline in the paper's evaluation (§2.2, §4.1).
// Two of TMC13's optimizations that matter on sparse LiDAR clouds are
// reproduced:
//
//   - neighbour-dependent entropy coding: each octree node's occupancy code
//     is coded under a context selected by which of its six face neighbours
//     at the same level are occupied — planar structure (ground, walls)
//     concentrates occupancy patterns per context;
//   - direct point coding (DPC / "inferred direct coding mode"): an
//     isolated node — no face neighbours, parent with at most two occupied
//     children — holding a single distinct quantized location stops
//     subdividing and codes the remaining path bits directly.
//
// The full TMC13 triangle ("trisoup") mode is out of scope; the paper runs
// TMC13 in octree mode.
package gpcc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dbgc/internal/arith"
	"dbgc/internal/ctxmodel"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed stream.
var ErrCorrupt = errors.New("gpcc: corrupt stream")

const maxDepth = 30

// Encoded is the output of Encode.
type Encoded struct {
	Data []byte
	// DecodedOrder maps decoded position j to the original index it
	// reconstructs.
	DecodedOrder []int
}

// occContexts is the size of the occupancy context bank: the 6-bit
// face-neighbour mask is bucketed by popcount (0, 1, 2, 3+). A raw
// 64-way mask split diluted adaptation faster than the conditioning paid
// on ~100k-point frames; the popcount bucket keeps the isolation signal
// (ground planes vs edges vs interior) while the bank's snapshot seeding
// lets late-splitting contexts inherit the shared statistics. Octant
// reflection is applied only to nodes with occupied neighbours: isolated
// nodes (the bulk of very sparse clouds) have no octant-symmetric
// structure to exploit, and reflecting them splits the model's mass.
const occContexts = 4

// coder bundles the context models shared by encode and decode: the
// occupancy context bank, plus the DPC flag and path models.
type coder struct {
	occ  *ctxmodel.Bank
	flag *arith.Model
	path *arith.Model // DPC octants; adaptive, so octant bias is exploited
}

func newCoder() *coder {
	return &coder{occ: ctxmodel.NewBank(occContexts, 256), flag: arith.NewModel(2), path: arith.NewModel(8)}
}

// occCtx maps a 6-bit face-neighbour mask to its bank context.
func occCtx(mask int) int {
	n := 0
	for m := mask; m != 0; m &= m - 1 {
		n++
	}
	if n > occContexts-1 {
		n = occContexts - 1
	}
	return n
}

// dpcEligible reports whether a node may use direct point coding. Both
// inputs are known to the decoder before the node is coded, so eligibility
// itself costs no bits.
// dpcMinLevels gates direct point coding to nodes with enough remaining
// depth: short chains are cheaper through the occupancy models, long
// isolated descents through the path model.
const dpcMinLevels = 6

func dpcEligible(parentOcc byte, neighborMask, level, depth int) bool {
	return parentOcc != 0 && neighborMask == 0 && depth-level >= dpcMinLevels
}

// cellKey is the map key for neighbour lookups. Coordinates can reach
// 2^30 at full depth, so an exact composite key is used rather than packed
// bits.
func cellKey(x, y, z uint32) [3]uint32 {
	return [3]uint32{x, y, z}
}

// neighborMask returns the 6-bit mask of occupied face neighbours of cell
// (x,y,z) in the set of occupied cells at the current level.
func neighborMask(set map[[3]uint32]struct{}, x, y, z uint32) int {
	mask := 0
	if _, ok := set[cellKey(x+1, y, z)]; ok {
		mask |= 1
	}
	if x > 0 {
		if _, ok := set[cellKey(x-1, y, z)]; ok {
			mask |= 2
		}
	}
	if _, ok := set[cellKey(x, y+1, z)]; ok {
		mask |= 4
	}
	if y > 0 {
		if _, ok := set[cellKey(x, y-1, z)]; ok {
			mask |= 8
		}
	}
	if _, ok := set[cellKey(x, y, z+1)]; ok {
		mask |= 16
	}
	if z > 0 {
		if _, ok := set[cellKey(x, y, z-1)]; ok {
			mask |= 32
		}
	}
	return mask
}

// Encode compresses points so every reconstructed coordinate is within q of
// the original per dimension.
func Encode(points geom.PointCloud, q float64) (Encoded, error) {
	if q <= 0 {
		return Encoded{}, fmt.Errorf("gpcc: error bound must be positive, got %v", q)
	}
	var enc Encoded
	out := make([]byte, 0, 64)
	out = varint.AppendUint(out, uint64(len(points)))
	if len(points) == 0 {
		enc.Data = out
		return enc, nil
	}
	cube := geom.Bounds(points).Cube()
	extent := cube.MaxDim()
	depth := 0
	if extent > 2*q {
		depth = int(math.Ceil(math.Log2(extent / (2 * q))))
		if depth > maxDepth {
			depth = maxDepth
		}
	}
	// Pad so leaf cells measure exactly 2q regardless of cloud extent.
	side := 2 * q * math.Pow(2, float64(depth))
	if side < extent {
		side = extent
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cube.Min.X))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cube.Min.Y))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(cube.Min.Z))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(side))
	out = varint.AppendUint(out, uint64(depth))

	// Quantize up front so "same location" checks are exact.
	n := len(points)
	cells := make([][3]uint32, n)
	maxCell := uint32(1)<<uint(depth) - 1
	scale := 0.0
	if side > 0 {
		scale = float64(uint64(1)<<uint(depth)) / side
	}
	for i, p := range points {
		cells[i] = [3]uint32{
			quant(p.X-cube.Min.X, scale, maxCell),
			quant(p.Y-cube.Min.Y, scale, maxCell),
			quant(p.Z-cube.Min.Z, scale, maxCell),
		}
	}

	type enode struct {
		x, y, z   uint32 // cell coordinates at the current level
		parentOcc byte
		idx       []int32
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	e := arith.NewEncoder()
	c := newCoder()
	var order []int
	var counts []uint64
	emitLeaf := func(idx []int32) {
		counts = append(counts, uint64(len(idx)))
		for _, i := range idx {
			order = append(order, int(i))
		}
	}

	level := []enode{{idx: all}}
	for d := 0; d < depth; d++ {
		set := make(map[[3]uint32]struct{}, len(level))
		for _, nd := range level {
			set[cellKey(nd.x, nd.y, nd.z)] = struct{}{}
		}
		shift := uint(depth - 1 - d)
		next := make([]enode, 0, len(level)*2)
		for _, nd := range level {
			mask := neighborMask(set, nd.x, nd.y, nd.z)
			if dpcEligible(nd.parentOcc, mask, d, depth) {
				if loc, same := sameLocation(cells, nd.idx); same {
					e.Encode(c.flag, 1)
					for l := d; l < depth; l++ {
						s := uint(depth - 1 - l)
						oct := int(loc[0]>>s&1) | int(loc[1]>>s&1)<<1 | int(loc[2]>>s&1)<<2
						e.Encode(c.path, oct)
					}
					emitLeaf(nd.idx)
					continue
				}
				e.Encode(c.flag, 0)
			}
			var buckets [8][]int32
			for _, i := range nd.idx {
				oct := int(cells[i][0]>>shift&1) | int(cells[i][1]>>shift&1)<<1 | int(cells[i][2]>>shift&1)<<2
				buckets[oct] = append(buckets[oct], i)
			}
			var code byte
			for o := 0; o < 8; o++ {
				if len(buckets[o]) > 0 {
					code |= 1 << uint(o)
				}
			}
			sym := code
			if mask != 0 {
				oct := uint8(nd.x&1) | uint8(nd.y&1)<<1 | uint8(nd.z&1)<<2
				sym = ctxmodel.Reflect(code, oct)
			}
			c.occ.Encode(e, occCtx(mask), int(sym))
			for o := 0; o < 8; o++ {
				if len(buckets[o]) == 0 {
					continue
				}
				next = append(next, enode{
					x:         nd.x<<1 | uint32(o&1),
					y:         nd.y<<1 | uint32(o>>1&1),
					z:         nd.z<<1 | uint32(o>>2&1),
					parentOcc: code,
					idx:       buckets[o],
				})
			}
		}
		level = next
	}
	for _, nd := range level {
		emitLeaf(nd.idx)
	}

	payload := e.Finish()
	countStream := arith.CompressUints(counts)
	out = varint.AppendUint(out, uint64(len(payload)))
	out = append(out, payload...)
	out = varint.AppendUint(out, uint64(len(counts)))
	out = varint.AppendUint(out, uint64(len(countStream)))
	out = append(out, countStream...)
	enc.Data = out
	enc.DecodedOrder = order
	return enc, nil
}

func quant(v, scale float64, maxCell uint32) uint32 {
	c := uint32(v * scale)
	if c > maxCell {
		c = maxCell
	}
	return c
}

// sameLocation reports whether all points in idx share one quantized cell.
func sameLocation(cells [][3]uint32, idx []int32) ([3]uint32, bool) {
	loc := cells[idx[0]]
	for _, i := range idx[1:] {
		if cells[i] != loc {
			return loc, false
		}
	}
	return loc, true
}

// Decode reconstructs the cloud from an Encode stream.
func Decode(data []byte) (geom.PointCloud, error) {
	return DecodeLimited(data, nil)
}

// DecodeLimited is Decode charging decoded points, occupancy symbols, and
// tree nodes against b. A nil budget is unlimited. Panics on hostile bytes
// are recovered into ErrCorrupt-wrapped errors.
func DecodeLimited(data []byte, b *declimits.Budget) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	n64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("gpcc: point count: %w", err)
	}
	data = data[used:]
	if n64 == 0 {
		return geom.PointCloud{}, nil
	}
	if n64 > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("%w: point count overflow", ErrCorrupt)
	}
	if len(data) < 32 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	min := geom.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(data)),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(data[8:])),
		Z: math.Float64frombits(binary.LittleEndian.Uint64(data[16:])),
	}
	side := math.Float64frombits(binary.LittleEndian.Uint64(data[24:]))
	data = data[32:]
	if side < 0 || math.IsNaN(side) || math.IsInf(side, 0) {
		return nil, fmt.Errorf("%w: invalid side %v", ErrCorrupt, side)
	}
	depth64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("gpcc: depth: %w", err)
	}
	data = data[used:]
	if depth64 > maxDepth {
		return nil, fmt.Errorf("%w: depth %d exceeds limit", ErrCorrupt, depth64)
	}
	depth := int(depth64)
	plen, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("gpcc: payload length: %w", err)
	}
	data = data[used:]
	if plen > uint64(len(data)) {
		return nil, fmt.Errorf("%w: payload truncated", ErrCorrupt)
	}
	payload := data[:plen]
	data = data[plen:]
	countLen64, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("gpcc: count length: %w", err)
	}
	data = data[used:]
	streamLen, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("gpcc: count stream length: %w", err)
	}
	data = data[used:]
	if streamLen > uint64(len(data)) || countLen64 > n64 {
		return nil, fmt.Errorf("%w: count section truncated", ErrCorrupt)
	}
	if err := b.Points(int64(n64)); err != nil {
		return nil, err
	}
	counts, err := arith.DecompressUintsLimited(data[:streamLen], int(countLen64), b)
	if err != nil {
		return nil, fmt.Errorf("gpcc: counts: %w", err)
	}

	if err := b.Contexts(occContexts, ctxmodel.ModelBytes256); err != nil {
		return nil, err
	}
	d := arith.NewDecoder(payload)
	c := newCoder()
	step := 0.0
	if depth > 0 {
		step = side / float64(uint64(1)<<uint(depth))
	}

	// Leaves are reconstructed in stream order: DPC leaves inline, final-
	// level leaves at the end — matching the encoder's emission order.
	type dleaf struct{ x, y, z uint32 }
	var leaves []dleaf
	type dnode struct {
		x, y, z   uint32
		parentOcc byte
	}
	level := []dnode{{}}
	for lv := 0; lv < depth; lv++ {
		// Each node of this level decodes at least one entropy symbol and
		// its children were materialized below; charge the level before
		// building the neighbour set (also sized by it).
		if err := b.Nodes(int64(len(level))); err != nil {
			return nil, err
		}
		set := make(map[[3]uint32]struct{}, len(level))
		for _, nd := range level {
			set[cellKey(nd.x, nd.y, nd.z)] = struct{}{}
		}
		next := make([]dnode, 0, len(level)*2)
		for _, nd := range level {
			mask := neighborMask(set, nd.x, nd.y, nd.z)
			if dpcEligible(nd.parentOcc, mask, lv, depth) {
				f, err := d.Decode(c.flag)
				if err != nil {
					return nil, fmt.Errorf("gpcc: dpc flag: %w", err)
				}
				if f == 1 {
					if err := b.Nodes(int64(depth - lv)); err != nil {
						return nil, err
					}
					x, y, z := nd.x, nd.y, nd.z
					for l := lv; l < depth; l++ {
						oct, err := d.Decode(c.path)
						if err != nil {
							return nil, fmt.Errorf("gpcc: dpc path: %w", err)
						}
						x = x<<1 | uint32(oct&1)
						y = y<<1 | uint32(oct>>1&1)
						z = z<<1 | uint32(oct>>2&1)
					}
					leaves = append(leaves, dleaf{x, y, z})
					continue
				}
			}
			sym, err := c.occ.Decode(d, occCtx(mask))
			if err != nil {
				return nil, fmt.Errorf("gpcc: occupancy: %w", err)
			}
			code := sym
			if mask != 0 {
				oct := uint8(nd.x&1) | uint8(nd.y&1)<<1 | uint8(nd.z&1)<<2
				code = int(ctxmodel.Reflect(byte(sym), oct))
			}
			if code == 0 {
				return nil, fmt.Errorf("%w: empty occupancy code", ErrCorrupt)
			}
			for o := 0; o < 8; o++ {
				if code&(1<<uint(o)) == 0 {
					continue
				}
				next = append(next, dnode{
					x:         nd.x<<1 | uint32(o&1),
					y:         nd.y<<1 | uint32(o>>1&1),
					z:         nd.z<<1 | uint32(o>>2&1),
					parentOcc: byte(code),
				})
			}
		}
		level = next
	}
	for _, nd := range level {
		leaves = append(leaves, dleaf{nd.x, nd.y, nd.z})
	}

	if len(leaves) != len(counts) {
		return nil, fmt.Errorf("%w: %d leaves but %d counts", ErrCorrupt, len(leaves), len(counts))
	}
	// Clamp the header-declared count before it becomes an allocation
	// capacity: a ~50-byte depth-0 stream declaring 2^30 points would
	// otherwise attempt a 24 GB up-front allocation. Appends grow past the
	// clamp when the counts really sum that high (bounded by b.Points above).
	out := make(geom.PointCloud, 0, declimits.CapPrealloc(n64))
	half := side / 2
	for i, lf := range leaves {
		cnt := counts[i]
		if cnt == 0 || uint64(len(out))+cnt > n64 {
			return nil, fmt.Errorf("%w: leaf counts disagree with point total", ErrCorrupt)
		}
		var p geom.Point
		if depth == 0 {
			p = min.Add(geom.Point{X: half, Y: half, Z: half})
		} else {
			p = geom.Point{
				X: min.X + (float64(lf.x)+0.5)*step,
				Y: min.Y + (float64(lf.y)+0.5)*step,
				Z: min.Z + (float64(lf.z)+0.5)*step,
			}
		}
		for k := uint64(0); k < cnt; k++ {
			out = append(out, p)
		}
	}
	if uint64(len(out)) != n64 {
		return nil, fmt.Errorf("%w: decoded %d points, want %d", ErrCorrupt, len(out), n64)
	}
	return out, nil
}
