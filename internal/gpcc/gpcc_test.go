package gpcc

import (
	"math/rand"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/octree"
)

func randomCloud(n int, spread float64, seed int64) geom.PointCloud {
	rng := rand.New(rand.NewSource(seed))
	pc := make(geom.PointCloud, n)
	for i := range pc {
		pc[i] = geom.Point{
			X: rng.Float64()*spread - spread/2,
			Y: rng.Float64()*spread - spread/2,
			Z: rng.Float64() * spread / 5,
		}
	}
	return pc
}

func checkBound(t *testing.T, orig, dec geom.PointCloud, order []int, q float64) {
	t.Helper()
	if len(dec) != len(orig) || len(order) != len(orig) {
		t.Fatalf("size mismatch: dec=%d order=%d orig=%d", len(dec), len(order), len(orig))
	}
	seen := make([]bool, len(orig))
	for j, oi := range order {
		if oi < 0 || oi >= len(orig) || seen[oi] {
			t.Fatalf("order not a permutation at %d", j)
		}
		seen[oi] = true
		if d := orig[oi].ChebDist(dec[j]); d > q+1e-9 {
			t.Fatalf("point %d error %v exceeds %v", oi, d, q)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, q := range []float64{0.02, 0.005, 0.25} {
		pc := randomCloud(2500, 90, 1)
		enc, err := Encode(pc, q)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatal(err)
		}
		checkBound(t, pc, dec, enc.DecodedOrder, q)
	}
}

func TestEmpty(t *testing.T) {
	enc, err := Encode(nil, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points", len(dec))
	}
}

func TestDuplicatesAndSingle(t *testing.T) {
	p := geom.Point{X: 4, Y: 4, Z: 1}
	pc := geom.PointCloud{p, p, {X: -3, Y: 2, Z: 0.5}}
	enc, err := Encode(pc, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, pc, dec, enc.DecodedOrder, 0.01)
}

func TestIdenticalCloud(t *testing.T) {
	p := geom.Point{X: 1, Y: 1, Z: 1}
	pc := geom.PointCloud{p, p, p, p}
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, pc, dec, enc.DecodedOrder, 0.02)
}

func TestInvalidBound(t *testing.T) {
	if _, err := Encode(geom.PointCloud{{X: 1}}, 0); err == nil {
		t.Fatal("expected error for q=0")
	}
}

func TestBeatsPlainOctreeOnSparse(t *testing.T) {
	// The paper's §4.2 finding: G-PCC outperforms the plain octree on
	// sparse LiDAR-like clouds thanks to DPC and context coding. Uniform
	// noise has no structure for contexts to exploit, so the workload is
	// a structured scene: a jittered ground-plane grid plus a wall and a
	// thin scatter of isolated far points.
	rng := rand.New(rand.NewSource(2))
	var pc geom.PointCloud
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			pc = append(pc, geom.Point{
				X: float64(i)*0.8 + rng.Float64()*0.05,
				Y: float64(j)*0.8 + rng.Float64()*0.05,
				Z: 0.1 * rng.Float64(),
			})
		}
	}
	for i := 0; i < 800; i++ {
		pc = append(pc, geom.Point{
			X: 20 + rng.Float64()*0.05,
			Y: rng.Float64() * 48,
			Z: rng.Float64() * 6,
		})
	}
	for i := 0; i < 600; i++ {
		pc = append(pc, geom.Point{
			X: rng.Float64() * 150,
			Y: rng.Float64() * 150,
			Z: rng.Float64() * 3,
		})
	}
	q := 0.02
	g, err := Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	o, err := octree.Encode(pc, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Data) >= len(o.Data) {
		t.Fatalf("gpcc (%d bytes) should beat plain octree (%d bytes) on sparse data", len(g.Data), len(o.Data))
	}
}

func TestCorruptStreams(t *testing.T) {
	pc := randomCloud(400, 60, 3)
	enc, err := Encode(pc, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc.Data); cut += 5 {
		if _, err := Decode(enc.Data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func BenchmarkEncode100k(b *testing.B) {
	pc := randomCloud(100000, 120, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(pc, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}
