package netproto

import (
	"testing"

	"dbgc/internal/geom"
)

func TestQueryRoundTrip(t *testing.T) {
	q := Query{
		Seq: 42,
		Box: geom.AABB{Min: geom.Point{X: -1, Y: -2, Z: -3}, Max: geom.Point{X: 4, Y: 5, Z: 6}},
	}
	got, err := DecodeQuery(EncodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Fatalf("got %+v, want %+v", got, q)
	}
}

func TestQueryBadPayload(t *testing.T) {
	if _, err := DecodeQuery([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := EncodeQuery(Query{})
	for i := 8; i < len(bad); i++ {
		bad[i] = 0xff // all-ones exponent -> NaN
	}
	if _, err := DecodeQuery(bad); err == nil {
		t.Fatal("NaN bounds accepted")
	}
}
