// Package netproto implements the client→server transfer of the DBGC
// system (Figure 2): compressed frames travel over a stream connection as
// length-prefixed, checksummed messages. The paper's prototype uses Linux
// sockets; this implementation works over any net.Conn.
//
// Wire format (protocol version 1): every message starts with a fixed
// header — version (1 byte) | kind (1) | sequence (8) | payload length (4)
// | crc32c of payload (4) | crc32c of the preceding 18 header bytes (4) —
// followed by the payload. The trailing header checksum lets a receiver
// distinguish a corrupt payload (framing intact: the frame can be nacked
// and the stream resumed) from a corrupt header (framing lost: the
// connection must be torn down and re-established).
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
	"time"
)

// Version is the wire protocol version emitted by Write and required by
// Read. Bump it when the header layout or frame semantics change.
const Version byte = 1

// Frame kinds.
const (
	// KindCompressed carries a DBGC bit sequence B.
	KindCompressed byte = 1
	// KindRaw carries an uncompressed frame (benchmarking the no-
	// compression path).
	KindRaw byte = 2
	// KindBye asks the server to finish up.
	KindBye byte = 3
	// KindQuery asks the server for the points of a stored frame inside
	// a bounding box; the payload is EncodeQuery's.
	KindQuery byte = 4
	// KindQueryResult answers a query with a raw .bin-layout point list
	// (empty on a miss).
	KindQueryResult byte = 5
	// KindAck acknowledges that the frame with the same sequence number
	// was received, validated, and handled; the payload is empty.
	KindAck byte = 6
	// KindNack reports that the frame with the same sequence number was
	// received but rejected (checksum or decode failure); the payload is
	// a short human-readable reason. The sender should retransmit.
	// Overloaded receivers encode a machine-readable backpressure hint in
	// the reason (see NackBusy/BusyHint); senders honoring the hint wait
	// before retransmitting.
	KindNack byte = 7
	// KindHello identifies the sender at the start of a connection; the
	// payload is a tenant name (see ValidTenant). The receiver answers
	// with an Ack (admitted) or Nack (rejected — possibly a NackBusy with
	// a retry-after hint) carrying HelloSeq. A connection that sends data
	// without a hello is assigned the default tenant.
	KindHello byte = 8

	// Replication dialect (see internal/replica): a primary streams its
	// stores' records to a follower over these kinds. Every replication
	// payload starts with an epoch/term byte — promotions bump the epoch,
	// and a receiver refuses records from an older epoch so a deposed
	// primary cannot overwrite a promoted follower.

	// KindReplHello opens a replication exchange; the payload selects
	// stream, digest, or manifest mode (internal/replica encodes it). The
	// follower answers with a payload-carrying KindReplAck on HelloSeq,
	// or a Nack when the sender's epoch is stale.
	KindReplHello byte = 9
	// KindReplRecord carries one store record (tenant, seq, kind, CRC,
	// payload) plus the watermark chain fields; the follower verifies the
	// record CRC32-C, applies, makes it durable, then acks.
	KindReplRecord byte = 10
	// KindReplAck acknowledges an applied-and-durable replication record
	// (same Seq), or answers a KindReplHello with a payload (watermarks,
	// digests, or a manifest).
	KindReplAck byte = 11
)

// HelloSeq is the reserved sequence number carried by KindHello frames and
// their ack/nack responses, so admission traffic can never collide with a
// data frame's sequence number.
const HelloSeq = ^uint64(0)

// MaxTenantLen bounds a tenant name on the wire.
const MaxTenantLen = 64

// Hello builds a tenant-identification frame.
func Hello(tenant string) Message {
	return Message{Kind: KindHello, Seq: HelloSeq, Payload: []byte(tenant)}
}

// ValidTenant reports whether a tenant name is acceptable: 1..MaxTenantLen
// bytes of [a-zA-Z0-9._-] not starting with a dot or dash, so the name can
// double as a file name in a store directory.
func ValidTenant(name string) bool {
	if len(name) == 0 || len(name) > MaxTenantLen {
		return false
	}
	if name[0] == '.' || name[0] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// MaxFrameSize bounds a single message; a raw HDL-64E frame is ~1.6 MB, so
// 256 MB leaves room for any realistic capture while stopping corrupt
// headers from driving huge allocations.
const MaxFrameSize = 256 << 20

// ErrFrameTooLarge reports a header demanding more than MaxFrameSize.
var ErrFrameTooLarge = errors.New("netproto: frame exceeds size limit")

// ErrChecksum reports payload corruption. The header (and therefore the
// stream framing) is intact: Read returns the parsed message alongside
// this error so the caller can nack it by sequence number and keep
// reading.
var ErrChecksum = errors.New("netproto: checksum mismatch")

// ErrHeader reports header corruption; stream framing is lost and the
// connection should be closed.
var ErrHeader = errors.New("netproto: header checksum mismatch")

// ErrVersion reports a frame from an incompatible protocol version.
var ErrVersion = errors.New("netproto: unsupported protocol version")

// Header layout: version (1 byte) | kind (1) | sequence (8) | payload
// length (4) | crc32c of payload (4) | crc32c of header bytes [0,18) (4).
const headerSize = 1 + 1 + 8 + 4 + 4 + 4

// hdrCRCOff is the offset of the header checksum, which covers all bytes
// before it.
const hdrCRCOff = headerSize - 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Message is one protocol frame.
type Message struct {
	Kind    byte
	Seq     uint64
	Payload []byte
}

// Ack builds an acknowledgement for the frame with the given sequence
// number.
func Ack(seq uint64) Message { return Message{Kind: KindAck, Seq: seq} }

// Nack builds a negative acknowledgement carrying a short reason.
func Nack(seq uint64, reason string) Message {
	return Message{Kind: KindNack, Seq: seq, Payload: []byte(reason)}
}

// busyPrefix marks a nack payload carrying a backpressure hint. The full
// payload layout is "!busy <millis> <reason>".
const busyPrefix = "!busy "

// NackBusy builds a backpressure nack: the receiver is overloaded (queue
// full, admission refused, shedding) and the sender should wait at least
// retryAfter before retransmitting the frame (or redialing, for HelloSeq).
func NackBusy(seq uint64, retryAfter time.Duration, reason string) Message {
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return Message{Kind: KindNack, Seq: seq,
		Payload: []byte(busyPrefix + strconv.FormatInt(ms, 10) + " " + reason)}
}

// BusyHint parses the retry-after hint out of a nack payload. ok is false
// for ordinary (non-backpressure) nacks.
func BusyHint(payload []byte) (retryAfter time.Duration, reason string, ok bool) {
	s := string(payload)
	if !strings.HasPrefix(s, busyPrefix) {
		return 0, "", false
	}
	s = s[len(busyPrefix):]
	num, rest, _ := strings.Cut(s, " ")
	ms, err := strconv.ParseInt(num, 10, 64)
	if err != nil || ms < 0 {
		return 0, "", false
	}
	return time.Duration(ms) * time.Millisecond, rest, true
}

// Write serializes m to w.
func Write(w io.Writer, m Message) error {
	if len(m.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [headerSize]byte
	hdr[0] = Version
	hdr[1] = m.Kind
	binary.LittleEndian.PutUint64(hdr[2:], m.Seq)
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint32(hdr[14:], crc32.Checksum(m.Payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[hdrCRCOff:], crc32.Checksum(hdr[:hdrCRCOff], castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: writing header: %w", err)
	}
	if _, err := w.Write(m.Payload); err != nil {
		return fmt.Errorf("netproto: writing payload: %w", err)
	}
	return nil
}

// Read deserializes the next message from r.
//
// On ErrChecksum the returned Message still carries the parsed Kind, Seq,
// and (corrupt) Payload — the header validated, so the caller may nack the
// frame and continue reading the stream. Any other error means the stream
// position is unreliable and the connection should be dropped.
func Read(r io.Reader) (Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if crc32.Checksum(hdr[:hdrCRCOff], castagnoli) != binary.LittleEndian.Uint32(hdr[hdrCRCOff:]) {
		return Message{}, ErrHeader
	}
	if hdr[0] != Version {
		return Message{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, hdr[0], Version)
	}
	m := Message{Kind: hdr[1], Seq: binary.LittleEndian.Uint64(hdr[2:])}
	n := binary.LittleEndian.Uint32(hdr[10:])
	sum := binary.LittleEndian.Uint32(hdr[14:])
	if n > MaxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	m.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, m.Payload); err != nil {
		return Message{}, fmt.Errorf("netproto: reading payload: %w", err)
	}
	if crc32.Checksum(m.Payload, castagnoli) != sum {
		return m, ErrChecksum
	}
	return m, nil
}
