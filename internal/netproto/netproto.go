// Package netproto implements the client→server transfer of the DBGC
// system (Figure 2): compressed frames travel over a stream connection as
// length-prefixed, checksummed messages. The paper's prototype uses Linux
// sockets; this implementation works over any net.Conn.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame kinds.
const (
	// KindCompressed carries a DBGC bit sequence B.
	KindCompressed byte = 1
	// KindRaw carries an uncompressed frame (benchmarking the no-
	// compression path).
	KindRaw byte = 2
	// KindBye asks the server to finish up.
	KindBye byte = 3
	// KindQuery asks the server for the points of a stored frame inside
	// a bounding box; the payload is EncodeQuery's.
	KindQuery byte = 4
	// KindQueryResult answers a query with a raw .bin-layout point list
	// (empty on a miss).
	KindQueryResult byte = 5
)

// MaxFrameSize bounds a single message; a raw HDL-64E frame is ~1.6 MB, so
// 256 MB leaves room for any realistic capture while stopping corrupt
// headers from driving huge allocations.
const MaxFrameSize = 256 << 20

// ErrFrameTooLarge reports a header demanding more than MaxFrameSize.
var ErrFrameTooLarge = errors.New("netproto: frame exceeds size limit")

// ErrChecksum reports payload corruption.
var ErrChecksum = errors.New("netproto: checksum mismatch")

// Header layout: kind (1 byte) | sequence (8) | payload length (4) |
// crc32c of payload (4).
const headerSize = 1 + 8 + 4 + 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Message is one protocol frame.
type Message struct {
	Kind    byte
	Seq     uint64
	Payload []byte
}

// Write serializes m to w.
func Write(w io.Writer, m Message) error {
	if len(m.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [headerSize]byte
	hdr[0] = m.Kind
	binary.LittleEndian.PutUint64(hdr[1:], m.Seq)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint32(hdr[13:], crc32.Checksum(m.Payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: writing header: %w", err)
	}
	if _, err := w.Write(m.Payload); err != nil {
		return fmt.Errorf("netproto: writing payload: %w", err)
	}
	return nil
}

// Read deserializes the next message from r.
func Read(r io.Reader) (Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	m := Message{Kind: hdr[0], Seq: binary.LittleEndian.Uint64(hdr[1:])}
	n := binary.LittleEndian.Uint32(hdr[9:])
	sum := binary.LittleEndian.Uint32(hdr[13:])
	if n > MaxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	m.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, m.Payload); err != nil {
		return Message{}, fmt.Errorf("netproto: reading payload: %w", err)
	}
	if crc32.Checksum(m.Payload, castagnoli) != sum {
		return Message{}, ErrChecksum
	}
	return m, nil
}
