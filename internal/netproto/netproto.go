// Package netproto implements the client→server transfer of the DBGC
// system (Figure 2): compressed frames travel over a stream connection as
// length-prefixed, checksummed messages. The paper's prototype uses Linux
// sockets; this implementation works over any net.Conn.
//
// Wire format (protocol version 1): every message starts with a fixed
// header — version (1 byte) | kind (1) | sequence (8) | payload length (4)
// | crc32c of payload (4) | crc32c of the preceding 18 header bytes (4) —
// followed by the payload. The trailing header checksum lets a receiver
// distinguish a corrupt payload (framing intact: the frame can be nacked
// and the stream resumed) from a corrupt header (framing lost: the
// connection must be torn down and re-established).
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the wire protocol version emitted by Write and required by
// Read. Bump it when the header layout or frame semantics change.
const Version byte = 1

// Frame kinds.
const (
	// KindCompressed carries a DBGC bit sequence B.
	KindCompressed byte = 1
	// KindRaw carries an uncompressed frame (benchmarking the no-
	// compression path).
	KindRaw byte = 2
	// KindBye asks the server to finish up.
	KindBye byte = 3
	// KindQuery asks the server for the points of a stored frame inside
	// a bounding box; the payload is EncodeQuery's.
	KindQuery byte = 4
	// KindQueryResult answers a query with a raw .bin-layout point list
	// (empty on a miss).
	KindQueryResult byte = 5
	// KindAck acknowledges that the frame with the same sequence number
	// was received, validated, and handled; the payload is empty.
	KindAck byte = 6
	// KindNack reports that the frame with the same sequence number was
	// received but rejected (checksum or decode failure); the payload is
	// a short human-readable reason. The sender should retransmit.
	KindNack byte = 7
)

// MaxFrameSize bounds a single message; a raw HDL-64E frame is ~1.6 MB, so
// 256 MB leaves room for any realistic capture while stopping corrupt
// headers from driving huge allocations.
const MaxFrameSize = 256 << 20

// ErrFrameTooLarge reports a header demanding more than MaxFrameSize.
var ErrFrameTooLarge = errors.New("netproto: frame exceeds size limit")

// ErrChecksum reports payload corruption. The header (and therefore the
// stream framing) is intact: Read returns the parsed message alongside
// this error so the caller can nack it by sequence number and keep
// reading.
var ErrChecksum = errors.New("netproto: checksum mismatch")

// ErrHeader reports header corruption; stream framing is lost and the
// connection should be closed.
var ErrHeader = errors.New("netproto: header checksum mismatch")

// ErrVersion reports a frame from an incompatible protocol version.
var ErrVersion = errors.New("netproto: unsupported protocol version")

// Header layout: version (1 byte) | kind (1) | sequence (8) | payload
// length (4) | crc32c of payload (4) | crc32c of header bytes [0,18) (4).
const headerSize = 1 + 1 + 8 + 4 + 4 + 4

// hdrCRCOff is the offset of the header checksum, which covers all bytes
// before it.
const hdrCRCOff = headerSize - 4

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Message is one protocol frame.
type Message struct {
	Kind    byte
	Seq     uint64
	Payload []byte
}

// Ack builds an acknowledgement for the frame with the given sequence
// number.
func Ack(seq uint64) Message { return Message{Kind: KindAck, Seq: seq} }

// Nack builds a negative acknowledgement carrying a short reason.
func Nack(seq uint64, reason string) Message {
	return Message{Kind: KindNack, Seq: seq, Payload: []byte(reason)}
}

// Write serializes m to w.
func Write(w io.Writer, m Message) error {
	if len(m.Payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [headerSize]byte
	hdr[0] = Version
	hdr[1] = m.Kind
	binary.LittleEndian.PutUint64(hdr[2:], m.Seq)
	binary.LittleEndian.PutUint32(hdr[10:], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint32(hdr[14:], crc32.Checksum(m.Payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[hdrCRCOff:], crc32.Checksum(hdr[:hdrCRCOff], castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netproto: writing header: %w", err)
	}
	if _, err := w.Write(m.Payload); err != nil {
		return fmt.Errorf("netproto: writing payload: %w", err)
	}
	return nil
}

// Read deserializes the next message from r.
//
// On ErrChecksum the returned Message still carries the parsed Kind, Seq,
// and (corrupt) Payload — the header validated, so the caller may nack the
// frame and continue reading the stream. Any other error means the stream
// position is unreliable and the connection should be dropped.
func Read(r io.Reader) (Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if crc32.Checksum(hdr[:hdrCRCOff], castagnoli) != binary.LittleEndian.Uint32(hdr[hdrCRCOff:]) {
		return Message{}, ErrHeader
	}
	if hdr[0] != Version {
		return Message{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, hdr[0], Version)
	}
	m := Message{Kind: hdr[1], Seq: binary.LittleEndian.Uint64(hdr[2:])}
	n := binary.LittleEndian.Uint32(hdr[10:])
	sum := binary.LittleEndian.Uint32(hdr[14:])
	if n > MaxFrameSize {
		return Message{}, ErrFrameTooLarge
	}
	m.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, m.Payload); err != nil {
		return Message{}, fmt.Errorf("netproto: reading payload: %w", err)
	}
	if crc32.Checksum(m.Payload, castagnoli) != sum {
		return m, ErrChecksum
	}
	return m, nil
}
