package netproto

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRead hammers the frame decoder with arbitrary byte streams —
// truncated headers, oversized lengths, checksum flips — mirroring the
// codec fuzz tests. It must never panic, never allocate beyond
// MaxFrameSize, and anything it accepts must re-encode to an identical
// frame.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	for _, m := range []Message{
		{Kind: KindCompressed, Seq: 7, Payload: []byte("seed-payload")},
		{Kind: KindBye, Seq: 1},
		Ack(42),
		Nack(43, "checksum"),
	} {
		if err := Write(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), buf.Bytes()...))
		buf.Reset()
	}
	// Truncated header.
	Write(&buf, Message{Kind: KindRaw, Seq: 2, Payload: []byte("abcdef")})
	full := append([]byte(nil), buf.Bytes()...)
	f.Add(full[:headerSize])
	f.Add(full[:5])
	// Flipped payload byte (header still valid).
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	// Oversized length claim.
	huge := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(huge[10:], MaxFrameSize+1)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Read(bytes.NewReader(b))
		if len(m.Payload) > MaxFrameSize {
			t.Fatalf("payload of %d bytes exceeds MaxFrameSize", len(m.Payload))
		}
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, m); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		m2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decoding re-encoded frame: %v", err)
		}
		if m2.Kind != m.Kind || m2.Seq != m.Seq || !bytes.Equal(m2.Payload, m.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", m, m2)
		}
	})
}
