package netproto

import (
	"encoding/binary"
	"fmt"
	"math"

	"dbgc/internal/geom"
)

// Query is a spatial request against a stored frame: "give me the points
// of frame Seq inside Box" — the access path for a server that stores
// compressed bit sequences directly (§3.1 of the paper).
type Query struct {
	Seq uint64
	Box geom.AABB
}

// querySize is the fixed wire size of a query payload.
const querySize = 8 + 6*8

// EncodeQuery serializes a query payload.
func EncodeQuery(q Query) []byte {
	buf := make([]byte, querySize)
	binary.LittleEndian.PutUint64(buf[0:], q.Seq)
	for i, v := range []float64{q.Box.Min.X, q.Box.Min.Y, q.Box.Min.Z, q.Box.Max.X, q.Box.Max.Y, q.Box.Max.Z} {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	return buf
}

// DecodeQuery parses a query payload.
func DecodeQuery(payload []byte) (Query, error) {
	if len(payload) != querySize {
		return Query{}, fmt.Errorf("netproto: query payload is %d bytes, want %d", len(payload), querySize)
	}
	var q Query
	q.Seq = binary.LittleEndian.Uint64(payload)
	vals := make([]float64, 6)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8+8*i:]))
		if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
			return Query{}, fmt.Errorf("netproto: non-finite query bound")
		}
	}
	q.Box = geom.AABB{
		Min: geom.Point{X: vals[0], Y: vals[1], Z: vals[2]},
		Max: geom.Point{X: vals[3], Y: vals[4], Z: vals[5]},
	}
	return q, nil
}
