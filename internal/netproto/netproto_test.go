package netproto

import (
	"bytes"
	"io"
	"net"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Kind: KindCompressed, Seq: 1, Payload: []byte("hello")},
		{Kind: KindRaw, Seq: 2, Payload: make([]byte, 100000)},
		{Kind: KindBye, Seq: 3, Payload: nil},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("got %+v, want %+v", got.Kind, want.Kind)
		}
	}
}

func TestChecksumDetection(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Message{Kind: KindCompressed, Seq: 9, Payload: []byte("payload-data")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-3] ^= 0xff // corrupt payload
	if _, err := Read(bytes.NewReader(raw)); err != ErrChecksum {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

func TestOversizeRejected(t *testing.T) {
	if err := Write(io.Discard, Message{Payload: make([]byte, MaxFrameSize+1)}); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A forged header demanding too much must be rejected before
	// allocation.
	hdr := make([]byte, headerSize)
	hdr[0] = KindCompressed
	hdr[9] = 0xff
	hdr[10] = 0xff
	hdr[11] = 0xff
	hdr[12] = 0x7f
	if _, err := Read(bytes.NewReader(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Message{Kind: KindCompressed, Seq: 1, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 3 {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d read successfully", cut)
		}
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		for {
			m, err := Read(conn)
			if err != nil {
				done <- err
				return
			}
			if m.Kind == KindBye {
				done <- nil
				return
			}
			// Echo back.
			if err := Write(conn, m); err != nil {
				done <- err
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 50000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := Write(conn, Message{Kind: KindCompressed, Seq: 42, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	echo, err := Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	if echo.Seq != 42 || !bytes.Equal(echo.Payload, payload) {
		t.Fatal("echo mismatch")
	}
	if err := Write(conn, Message{Kind: KindBye, Seq: 43}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
