package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Kind: KindCompressed, Seq: 1, Payload: []byte("hello")},
		{Kind: KindRaw, Seq: 2, Payload: make([]byte, 100000)},
		{Kind: KindBye, Seq: 3, Payload: nil},
	}
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("got %+v, want %+v", got.Kind, want.Kind)
		}
	}
}

func TestChecksumDetection(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Message{Kind: KindCompressed, Seq: 9, Payload: []byte("payload-data")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-3] ^= 0xff // corrupt payload
	m, err := Read(bytes.NewReader(raw))
	if err != ErrChecksum {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
	// Framing survived: the header fields must still be usable so the
	// receiver can nack the frame by sequence number.
	if m.Kind != KindCompressed || m.Seq != 9 {
		t.Fatalf("corrupt frame lost its identity: kind=%d seq=%d", m.Kind, m.Seq)
	}
}

func TestHeaderCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Message{Kind: KindCompressed, Seq: 11, Payload: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < headerSize; off++ {
		raw := append([]byte(nil), buf.Bytes()...)
		raw[off] ^= 0x10
		if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrHeader) {
			t.Fatalf("flip at header byte %d: want ErrHeader, got %v", off, err)
		}
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	hdr := make([]byte, headerSize)
	hdr[0] = Version + 1
	hdr[1] = KindCompressed
	binary.LittleEndian.PutUint32(hdr[hdrCRCOff:], crc32.Checksum(hdr[:hdrCRCOff], castagnoli))
	if _, err := Read(bytes.NewReader(hdr)); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestAckNackRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Ack(7)); err != nil {
		t.Fatal(err)
	}
	if err := Write(&buf, Nack(8, "checksum")); err != nil {
		t.Fatal(err)
	}
	ack, err := Read(&buf)
	if err != nil || ack.Kind != KindAck || ack.Seq != 7 {
		t.Fatalf("ack = %+v, %v", ack, err)
	}
	nack, err := Read(&buf)
	if err != nil || nack.Kind != KindNack || nack.Seq != 8 || string(nack.Payload) != "checksum" {
		t.Fatalf("nack = %+v, %v", nack, err)
	}
}

func TestOversizeRejected(t *testing.T) {
	if err := Write(io.Discard, Message{Payload: make([]byte, MaxFrameSize+1)}); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A forged header demanding too much (with a valid header checksum)
	// must be rejected before allocation.
	hdr := make([]byte, headerSize)
	hdr[0] = Version
	hdr[1] = KindCompressed
	binary.LittleEndian.PutUint32(hdr[10:], MaxFrameSize+1)
	binary.LittleEndian.PutUint32(hdr[hdrCRCOff:], crc32.Checksum(hdr[:hdrCRCOff], castagnoli))
	if _, err := Read(bytes.NewReader(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Message{Kind: KindCompressed, Seq: 1, Payload: []byte("abcdef")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut += 3 {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d read successfully", cut)
		}
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		for {
			m, err := Read(conn)
			if err != nil {
				done <- err
				return
			}
			if m.Kind == KindBye {
				done <- nil
				return
			}
			// Echo back.
			if err := Write(conn, m); err != nil {
				done <- err
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := make([]byte, 50000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := Write(conn, Message{Kind: KindCompressed, Seq: 42, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	echo, err := Read(conn)
	if err != nil {
		t.Fatal(err)
	}
	if echo.Seq != 42 || !bytes.Equal(echo.Payload, payload) {
		t.Fatal("echo mismatch")
	}
	if err := Write(conn, Message{Kind: KindBye, Seq: 43}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBusyHintRoundTrip(t *testing.T) {
	m := NackBusy(42, 250*time.Millisecond, "tenant queue full")
	if m.Kind != KindNack || m.Seq != 42 {
		t.Fatalf("busy nack framed as %+v", m)
	}
	d, reason, ok := BusyHint(m.Payload)
	if !ok || d != 250*time.Millisecond || reason != "tenant queue full" {
		t.Fatalf("BusyHint = (%v, %q, %v)", d, reason, ok)
	}
	// Sub-millisecond hints round up so the sender always waits.
	d, _, ok = BusyHint(NackBusy(1, time.Microsecond, "x").Payload)
	if !ok || d < time.Millisecond {
		t.Fatalf("tiny hint = (%v, %v)", d, ok)
	}
	// Ordinary nacks carry no hint.
	if _, _, ok := BusyHint(Nack(1, "checksum").Payload); ok {
		t.Fatal("plain nack parsed as busy")
	}
	if _, _, ok := BusyHint([]byte("!busy notanumber x")); ok {
		t.Fatal("malformed hint parsed as busy")
	}
}

func TestHelloFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Hello("sensor-fleet_7")); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindHello || got.Seq != HelloSeq || string(got.Payload) != "sensor-fleet_7" {
		t.Fatalf("hello round trip: %+v", got)
	}
}

func TestValidTenant(t *testing.T) {
	good := []string{"a", "default", "tenant-01", "A.B_c-9"}
	for _, name := range good {
		if !ValidTenant(name) {
			t.Errorf("ValidTenant(%q) = false", name)
		}
	}
	bad := []string{"", ".hidden", "-flag", "has space", "has/slash", "über",
		string(make([]byte, MaxTenantLen+1))}
	for _, name := range bad {
		if ValidTenant(name) {
			t.Errorf("ValidTenant(%q) = true", name)
		}
	}
}
