// Package ops provides the operational HTTP surface shared by the dbgc
// daemons: a /healthz endpoint that aggregates registered health checks
// into 200 ok / 503 degraded with machine-readable reasons, and a
// /metrics endpoint serving an arbitrary JSON snapshot.
//
// /healthz is load-bearing, not cosmetic: the failover harness polls it to
// decide that a node is degraded (replication lag over threshold, link
// down, sticky fsync errors) and asserts that degradation is actually
// reported during injected faults.
package ops

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Probe inspects one subsystem. ok=false marks the node degraded; detail
// explains why (included in the /healthz JSON either way when non-empty).
type Probe func() (detail string, ok bool)

// Health aggregates named probes. The zero value is usable (and healthy).
type Health struct {
	mu     sync.Mutex
	names  []string
	probes map[string]Probe
}

// Add registers a probe under a name; re-adding a name replaces it.
func (h *Health) Add(name string, p Probe) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.probes == nil {
		h.probes = make(map[string]Probe)
	}
	if _, seen := h.probes[name]; !seen {
		h.names = append(h.names, name)
	}
	h.probes[name] = p
}

// Status is the /healthz response body.
type Status struct {
	Status  string            `json:"status"` // "ok" or "degraded"
	Reasons []string          `json:"reasons,omitempty"`
	Detail  map[string]string `json:"detail,omitempty"`
}

// Evaluate runs every probe in registration order.
func (h *Health) Evaluate() Status {
	h.mu.Lock()
	names := append([]string(nil), h.names...)
	probes := make(map[string]Probe, len(h.probes))
	for k, v := range h.probes {
		probes[k] = v
	}
	h.mu.Unlock()
	st := Status{Status: "ok", Detail: map[string]string{}}
	for _, name := range names {
		detail, ok := probes[name]()
		if detail != "" {
			st.Detail[name] = detail
		}
		if !ok {
			st.Status = "degraded"
			st.Reasons = append(st.Reasons, name+": "+detail)
		}
	}
	if len(st.Detail) == 0 {
		st.Detail = nil
	}
	return st
}

// ServeHTTP answers /healthz: HTTP 200 with {"status":"ok"} while every
// probe passes, HTTP 503 with the failing reasons once any degrades.
func (h *Health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	st := h.Evaluate()
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// NewServer builds the ops HTTP server: /healthz from health, /metrics
// from the snapshot function (its result is JSON-encoded per request).
func NewServer(addr string, health *Health, metrics func() any) *http.Server {
	mux := http.NewServeMux()
	mux.Handle("/healthz", health)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(metrics())
	})
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
}
