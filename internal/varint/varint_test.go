package varint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZigzag(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, math.MaxInt64: math.MaxUint64 - 1, math.MinInt64: math.MaxUint64}
	for v, want := range cases {
		if got := Zigzag(v); got != want {
			t.Errorf("Zigzag(%d) = %d, want %d", v, got, want)
		}
		if back := Unzigzag(want); back != v {
			t.Errorf("Unzigzag(%d) = %d, want %d", want, back, v)
		}
	}
}

func TestZigzagQuick(t *testing.T) {
	f := func(v int64) bool { return Unzigzag(Zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	vs := []int64{0, -1, 1, 127, -128, 1 << 40, -(1 << 50), math.MaxInt64, math.MinInt64}
	buf := EncodeInts(vs)
	got, err := DecodeInts(buf, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestIntsRoundTripQuick(t *testing.T) {
	f := func(vs []int64) bool {
		got, err := DecodeInts(EncodeInts(vs), len(vs))
		if err != nil {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintsRoundTripQuick(t *testing.T) {
	f := func(vs []uint64) bool {
		got, err := DecodeUints(EncodeUints(vs), len(vs))
		if err != nil {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVarintLengthBoundaries pins the encoded length at every 7-bit
// threshold, in particular the 5-byte boundary at 2^28 and the 10-byte
// encodings at the top of the uint64 range that bound every inflate buffer
// in the decoders.
func TestVarintLengthBoundaries(t *testing.T) {
	for bytes := 1; bytes <= 9; bytes++ {
		hi := uint64(1)<<uint(7*bytes) - 1 // largest value fitting in `bytes`
		if got := len(AppendUint(nil, hi)); got != bytes {
			t.Errorf("AppendUint(2^%d-1) took %d bytes, want %d", 7*bytes, got, bytes)
		}
		if got := len(AppendUint(nil, hi+1)); got != bytes+1 {
			t.Errorf("AppendUint(2^%d) took %d bytes, want %d", 7*bytes, got, bytes+1)
		}
	}
	for _, v := range []uint64{1 << 63, math.MaxUint64} {
		if got := len(AppendUint(nil, v)); got != 10 {
			t.Errorf("AppendUint(%d) took %d bytes, want 10", v, got)
		}
	}
	// Round-trip every boundary value through the full encode/decode path.
	var vals []uint64
	for bytes := 1; bytes <= 9; bytes++ {
		hi := uint64(1)<<uint(7*bytes) - 1
		vals = append(vals, hi, hi+1)
	}
	vals = append(vals, 1<<63, math.MaxUint64)
	got, err := DecodeUints(EncodeUints(vals), len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got[i] != v {
			t.Errorf("boundary value %d: got %d, want %d", i, got[i], v)
		}
	}
}

// TestZigzagIntLengthBoundaries pins the zigzag varint length of signed
// values around the 5-byte boundary (|v| ~ 2^27) and at the 10-byte extremes.
func TestZigzagIntLengthBoundaries(t *testing.T) {
	cases := map[int64]int{
		1<<27 - 1:     4,  // zigzag 2^28-2, still 4 bytes
		1 << 27:       5,  // zigzag 2^28, first 5-byte value
		-(1 << 27):    4,  // zigzag 2^28-1, still 4 bytes
		-(1<<27 + 1):  5,  // zigzag 2^28+1, 5 bytes
		math.MaxInt64: 10, // zigzag 2^64-2
		math.MinInt64: 10, // zigzag 2^64-1
		-1 << 62:      9,
		1<<62 - 1:     9,
		0:             1,
		-(1 << 6):     1, // zigzag 127, last 1-byte value
		1 << 6:        2, // zigzag 128, first 2-byte value
	}
	for v, want := range cases {
		if got := len(AppendInt(nil, v)); got != want {
			t.Errorf("AppendInt(%d) took %d bytes, want %d", v, got, want)
		}
		dec, _, err := Int(AppendInt(nil, v))
		if err != nil {
			t.Fatalf("Int(%d): %v", v, err)
		}
		if dec != v {
			t.Errorf("round trip of %d gave %d", v, dec)
		}
	}
}

// TestZigzagOrderPreserving checks the magnitude ordering the block packer
// relies on: values of smaller magnitude never map to larger zigzag codes.
func TestZigzagOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		if a == math.MinInt64 || b == math.MinInt64 {
			return true // |MinInt64| overflows; pinned in TestZigzag
		}
		absA, absB := a, b
		if absA < 0 {
			absA = -absA
		}
		if absB < 0 {
			absB = -absB
		}
		if absA < absB {
			return Zigzag(a) < Zigzag(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := EncodeInts([]int64{1 << 40})
	if _, err := DecodeInts(buf[:len(buf)-1], 1); err == nil {
		t.Fatal("expected error on truncated input")
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	buf := append(EncodeInts([]int64{5}), 0x00)
	if _, err := DecodeInts(buf, 1); err == nil {
		t.Fatal("expected error on trailing bytes")
	}
}

func TestDecodeTooFewValues(t *testing.T) {
	buf := EncodeUints([]uint64{1, 2})
	if _, err := DecodeUints(buf, 3); err == nil {
		t.Fatal("expected error when fewer values than requested")
	}
}
