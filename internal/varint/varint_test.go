package varint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZigzag(t *testing.T) {
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4, math.MaxInt64: math.MaxUint64 - 1, math.MinInt64: math.MaxUint64}
	for v, want := range cases {
		if got := Zigzag(v); got != want {
			t.Errorf("Zigzag(%d) = %d, want %d", v, got, want)
		}
		if back := Unzigzag(want); back != v {
			t.Errorf("Unzigzag(%d) = %d, want %d", want, back, v)
		}
	}
}

func TestZigzagQuick(t *testing.T) {
	f := func(v int64) bool { return Unzigzag(Zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntsRoundTrip(t *testing.T) {
	vs := []int64{0, -1, 1, 127, -128, 1 << 40, -(1 << 50), math.MaxInt64, math.MinInt64}
	buf := EncodeInts(vs)
	got, err := DecodeInts(buf, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], vs[i])
		}
	}
}

func TestIntsRoundTripQuick(t *testing.T) {
	f := func(vs []int64) bool {
		got, err := DecodeInts(EncodeInts(vs), len(vs))
		if err != nil {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintsRoundTripQuick(t *testing.T) {
	f := func(vs []uint64) bool {
		got, err := DecodeUints(EncodeUints(vs), len(vs))
		if err != nil {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	buf := EncodeInts([]int64{1 << 40})
	if _, err := DecodeInts(buf[:len(buf)-1], 1); err == nil {
		t.Fatal("expected error on truncated input")
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	buf := append(EncodeInts([]int64{5}), 0x00)
	if _, err := DecodeInts(buf, 1); err == nil {
		t.Fatal("expected error on trailing bytes")
	}
}

func TestDecodeTooFewValues(t *testing.T) {
	buf := EncodeUints([]uint64{1, 2})
	if _, err := DecodeUints(buf, 3); err == nil {
		t.Fatal("expected error when fewer values than requested")
	}
}
