// Package varint provides variable-length integer serialization with zigzag
// mapping for signed values. Delta-encoded coordinate sequences in DBGC are
// serialized as zigzag varints before entropy coding, so small magnitudes —
// the common case after delta encoding (§3.5) — occupy one byte.
package varint

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a buffer ends inside a varint.
var ErrTruncated = errors.New("varint: truncated input")

// Zigzag maps a signed integer to an unsigned one so that small magnitudes
// of either sign map to small values: 0→0, -1→1, 1→2, -2→3, ...
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendUint appends u in unsigned LEB128 form.
func AppendUint(dst []byte, u uint64) []byte { return binary.AppendUvarint(dst, u) }

// AppendInt appends v in zigzag LEB128 form.
func AppendInt(dst []byte, v int64) []byte { return binary.AppendUvarint(dst, Zigzag(v)) }

// Uint decodes an unsigned varint from buf, returning the value and the
// number of bytes consumed.
func Uint(buf []byte) (uint64, int, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w (n=%d)", ErrTruncated, n)
	}
	return u, n, nil
}

// Int decodes a zigzag varint from buf.
func Int(buf []byte) (int64, int, error) {
	u, n, err := Uint(buf)
	if err != nil {
		return 0, 0, err
	}
	return Unzigzag(u), n, nil
}

// AppendInts appends the concatenated zigzag varints of vs to dst.
func AppendInts(dst []byte, vs []int64) []byte {
	for _, v := range vs {
		dst = AppendInt(dst, v)
	}
	return dst
}

// AppendUints appends the concatenated varints of vs to dst.
func AppendUints(dst []byte, vs []uint64) []byte {
	for _, v := range vs {
		dst = AppendUint(dst, v)
	}
	return dst
}

// EncodeInts serializes a slice of signed integers as concatenated zigzag
// varints.
func EncodeInts(vs []int64) []byte {
	return AppendInts(make([]byte, 0, len(vs)*2), vs)
}

// DecodeInts decodes exactly n zigzag varints from buf. It returns an error
// if buf is truncated or holds trailing garbage.
func DecodeInts(buf []byte, n int) ([]int64, error) {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		v, used, err := Int(buf)
		if err != nil {
			return nil, fmt.Errorf("varint: value %d/%d: %w", i, n, err)
		}
		out = append(out, v)
		buf = buf[used:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("varint: %d trailing bytes after %d values", len(buf), n)
	}
	return out, nil
}

// EncodeUints serializes a slice of unsigned integers as concatenated
// varints.
func EncodeUints(vs []uint64) []byte {
	return AppendUints(make([]byte, 0, len(vs)*2), vs)
}

// DecodeUints decodes exactly n unsigned varints from buf.
func DecodeUints(buf []byte, n int) ([]uint64, error) {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		v, used, err := Uint(buf)
		if err != nil {
			return nil, fmt.Errorf("varint: value %d/%d: %w", i, n, err)
		}
		out = append(out, v)
		buf = buf[used:]
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("varint: %d trailing bytes after %d values", len(buf), n)
	}
	return out, nil
}
