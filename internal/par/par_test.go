package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d, want 1", got)
	}
	max := runtime.GOMAXPROCS(0)
	if got := Workers(1 << 30); got != max {
		t.Fatalf("Workers(huge) = %d, want GOMAXPROCS %d", got, max)
	}
}

// TestChunksCoverage: every index in [0, n) is visited exactly once, and
// each chunk is a contiguous [lo, hi) range.
func TestChunksCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1001} {
		visits := make([]int32, n)
		Chunks(n, func(w, lo, hi int) {
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("n=%d: bad chunk [%d, %d)", n, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}
