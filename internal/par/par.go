// Package par provides the deterministic fork-join helper shared by the
// encode-path stages (clustering, octree construction). Work is split into
// contiguous index chunks so results land in caller-owned, disjoint slices;
// parallel runs are bit-identical to serial ones.
package par

import (
	"runtime"
	"sync"
)

// Workers returns the worker count Chunks uses for n items.
func Workers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Chunks invokes f(w, lo, hi) over [0, n) split into Workers(n) contiguous
// chunks, one goroutine each, and waits for completion.
func Chunks(n int, f func(w, lo, hi int)) {
	workers := Workers(n)
	if workers <= 1 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
