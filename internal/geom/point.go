// Package geom provides the geometric primitives shared by every DBGC
// component: points, point clouds, Cartesian/spherical conversion, bounding
// volumes, and the error metrics defined in the paper (Definition 2.2).
package geom

import (
	"fmt"
	"math"
)

// Point is a 3D point in Cartesian coordinates, in meters.
type Point struct {
	X, Y, Z float64
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product of p and q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Norm returns the Euclidean length of the vector from the origin to p.
func (p Point) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as neighbor counting.
func (p Point) Dist2(q Point) float64 {
	d := p.Sub(q)
	return d.Dot(d)
}

// ChebDist returns the Chebyshev (max per-dimension) distance between p and
// q. The paper's per-dimension error bound (Definition 2.2) is a Chebyshev
// bound.
func (p Point) ChebDist(q Point) float64 {
	return math.Max(math.Abs(p.X-q.X), math.Max(math.Abs(p.Y-q.Y), math.Abs(p.Z-q.Z)))
}

func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f, %.4f)", p.X, p.Y, p.Z)
}

// Spherical is a point in the spherical coordinate system of Section 3.3:
// Theta is the azimuthal angle in radians measured in the xy-plane from the
// +x axis, Phi is the polar angle in radians measured from the +z axis, and
// R is the radial distance from the origin (the sensor) in meters.
type Spherical struct {
	Theta, Phi, R float64
}

// ToSpherical converts a Cartesian point to spherical coordinates with the
// origin at the sensor. Theta is normalized to [0, 2π); Phi lies in [0, π].
// The origin itself maps to (0, 0, 0).
func ToSpherical(p Point) Spherical {
	r := p.Norm()
	if r == 0 {
		return Spherical{}
	}
	theta := math.Atan2(p.Y, p.X)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	phi := math.Acos(clamp(p.Z/r, -1, 1))
	return Spherical{Theta: theta, Phi: phi, R: r}
}

// ToSphericalR is ToSpherical for a caller that already knows r = p.Norm(),
// skipping the square root. The encode path sorts sparse points by radius
// first, so every conversion there has the norm at hand.
func ToSphericalR(p Point, r float64) Spherical {
	if r == 0 {
		return Spherical{}
	}
	theta := math.Atan2(p.Y, p.X)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	phi := math.Acos(clamp(p.Z/r, -1, 1))
	return Spherical{Theta: theta, Phi: phi, R: r}
}

// ToCartesian converts spherical coordinates back to a Cartesian point.
func ToCartesian(s Spherical) Point {
	sinPhi, cosPhi := math.Sincos(s.Phi)
	sinTheta, cosTheta := math.Sincos(s.Theta)
	return Point{
		X: s.R * sinPhi * cosTheta,
		Y: s.R * sinPhi * sinTheta,
		Z: s.R * cosPhi,
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PointCloud is a set of points (Definition 2.1). Order is not semantically
// meaningful for a cloud, but slices keep compression deterministic.
type PointCloud []Point

// Clone returns a deep copy of the cloud.
func (pc PointCloud) Clone() PointCloud {
	out := make(PointCloud, len(pc))
	copy(out, pc)
	return out
}

// RawSize returns the uncompressed size in bytes used throughout the paper's
// compression-ratio metric: three 32-bit floats per point (96 bits, §4.4).
func (pc PointCloud) RawSize() int { return len(pc) * 12 }

// Centroid returns the arithmetic mean of the cloud, or the origin for an
// empty cloud.
func (pc PointCloud) Centroid() Point {
	if len(pc) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pc {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pc)))
}
