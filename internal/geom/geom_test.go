package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSphericalRoundTrip(t *testing.T) {
	pts := []Point{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {-1, -2, 3},
		{10, -10, 0.5}, {0.001, 0.001, -0.001}, {100, 0, -5},
	}
	for _, p := range pts {
		s := ToSpherical(p)
		q := ToCartesian(s)
		if p.Dist(q) > 1e-9*math.Max(1, p.Norm()) {
			t.Errorf("round trip %v -> %v -> %v", p, s, q)
		}
	}
}

func TestSphericalRoundTripQuick(t *testing.T) {
	f := func(x, y, z float64) bool {
		// Constrain to a realistic LiDAR range to avoid pathological
		// float magnitudes from quick's generator.
		p := Point{math.Mod(x, 200), math.Mod(y, 200), math.Mod(z, 50)}
		s := ToSpherical(p)
		q := ToCartesian(s)
		return p.Dist(q) <= 1e-8*(1+p.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSphericalOrigin(t *testing.T) {
	s := ToSpherical(Point{})
	if s != (Spherical{}) {
		t.Fatalf("origin should map to zero spherical, got %+v", s)
	}
	if p := ToCartesian(Spherical{}); p.Norm() != 0 {
		t.Fatalf("zero spherical should map to origin, got %v", p)
	}
}

func TestThetaRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := Point{rng.NormFloat64() * 30, rng.NormFloat64() * 30, rng.NormFloat64() * 5}
		s := ToSpherical(p)
		if s.Theta < 0 || s.Theta >= 2*math.Pi {
			t.Fatalf("theta out of [0,2pi): %v for %v", s.Theta, p)
		}
		if s.Phi < 0 || s.Phi > math.Pi {
			t.Fatalf("phi out of [0,pi]: %v for %v", s.Phi, p)
		}
		if s.R < 0 {
			t.Fatalf("negative radius %v", s.R)
		}
	}
}

func TestBounds(t *testing.T) {
	pc := PointCloud{{1, 2, 3}, {-1, 5, 0}, {4, -2, 2}}
	b := Bounds(pc)
	want := AABB{Min: Point{-1, -2, 0}, Max: Point{4, 5, 3}}
	if b != want {
		t.Fatalf("bounds = %+v, want %+v", b, want)
	}
	for _, p := range pc {
		if !b.Contains(p) {
			t.Errorf("bounds should contain %v", p)
		}
	}
	if got := b.MaxDim(); got != 7 {
		t.Fatalf("MaxDim = %v, want 7", got)
	}
	c := b.Cube()
	if c.Size() != (Point{7, 7, 7}) {
		t.Fatalf("cube size = %v, want (7,7,7)", c.Size())
	}
}

func TestBoundsEmpty(t *testing.T) {
	if b := Bounds(nil); b != (AABB{}) {
		t.Fatalf("empty bounds should be zero, got %+v", b)
	}
}

func TestChebDist(t *testing.T) {
	p := Point{0, 0, 0}
	q := Point{0.5, -2, 1}
	if got := p.ChebDist(q); got != 2 {
		t.Fatalf("ChebDist = %v, want 2", got)
	}
}

func TestCompareClouds(t *testing.T) {
	a := PointCloud{{0, 0, 0}, {1, 1, 1}}
	b := PointCloud{{0.01, 0, 0}, {1, 1.02, 1}}
	rep, err := CompareClouds(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxPerDim-0.02) > 1e-12 {
		t.Fatalf("MaxPerDim = %v, want 0.02", rep.MaxPerDim)
	}
	if rep.N != 2 {
		t.Fatalf("N = %d, want 2", rep.N)
	}
	if !rep.WithinBound(0.02) {
		t.Fatalf("errors should satisfy q=0.02: %+v", rep)
	}
	if rep.WithinBound(0.001) {
		t.Fatalf("errors should violate q=0.001: %+v", rep)
	}
}

func TestCompareCloudsSizeMismatch(t *testing.T) {
	if _, err := CompareClouds(PointCloud{{}}, PointCloud{}); err == nil {
		t.Fatal("expected error on size mismatch")
	}
}

func TestRawSize(t *testing.T) {
	pc := make(PointCloud, 100)
	if got := pc.RawSize(); got != 1200 {
		t.Fatalf("RawSize = %d, want 1200 (12 bytes/point)", got)
	}
}

func TestCentroid(t *testing.T) {
	pc := PointCloud{{0, 0, 0}, {2, 4, 6}}
	if c := pc.Centroid(); c != (Point{1, 2, 3}) {
		t.Fatalf("centroid = %v", c)
	}
	if c := (PointCloud{}).Centroid(); c != (Point{}) {
		t.Fatalf("empty centroid = %v", c)
	}
}

func TestClone(t *testing.T) {
	pc := PointCloud{{1, 2, 3}}
	cl := pc.Clone()
	cl[0].X = 9
	if pc[0].X != 1 {
		t.Fatal("Clone must not alias the original")
	}
}
