package geom

import (
	"fmt"
	"math"
)

// ErrorReport summarizes the reconstruction error between an original cloud
// and its decompressed counterpart under the paper's one-to-one mapping
// (Definition 2.2): point i of the original maps to point i of the
// reconstruction.
type ErrorReport struct {
	// MaxPerDim is the maximum per-dimension (Chebyshev) error over all
	// point pairs.
	MaxPerDim float64
	// MaxEuclidean is the maximum Euclidean error over all point pairs.
	MaxEuclidean float64
	// MeanEuclidean is the mean Euclidean error.
	MeanEuclidean float64
	// N is the number of compared points.
	N int
}

// CompareClouds computes the error report for two clouds related by the
// identity index mapping. It returns an error if the clouds differ in size,
// which would violate the one-to-one mapping requirement of the problem
// statement.
func CompareClouds(orig, dec PointCloud) (ErrorReport, error) {
	if len(orig) != len(dec) {
		return ErrorReport{}, fmt.Errorf("geom: cloud size mismatch: %d original vs %d decompressed", len(orig), len(dec))
	}
	var rep ErrorReport
	rep.N = len(orig)
	var sum float64
	for i := range orig {
		cheb := orig[i].ChebDist(dec[i])
		eu := orig[i].Dist(dec[i])
		rep.MaxPerDim = math.Max(rep.MaxPerDim, cheb)
		rep.MaxEuclidean = math.Max(rep.MaxEuclidean, eu)
		sum += eu
	}
	if rep.N > 0 {
		rep.MeanEuclidean = sum / float64(rep.N)
	}
	return rep, nil
}

// WithinBound reports whether the maximum Euclidean error satisfies the
// bound guaranteed by Theorem 3.2 for error bound q on each Cartesian
// dimension: sqrt(3)·q, with a tiny relative slack for floating-point
// round-off.
func (r ErrorReport) WithinBound(q float64) bool {
	return r.MaxEuclidean <= math.Sqrt(3)*q*(1+1e-9)+1e-12
}
