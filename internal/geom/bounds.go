package geom

import "math"

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Point
}

// Bounds returns the tight axis-aligned bounding box of the cloud. An empty
// cloud yields a zero box.
func Bounds(pc PointCloud) AABB {
	if len(pc) == 0 {
		return AABB{}
	}
	b := AABB{Min: pc[0], Max: pc[0]}
	for _, p := range pc[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Min.Z = math.Min(b.Min.Z, p.Z)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
		b.Max.Z = math.Max(b.Max.Z, p.Z)
	}
	return b
}

// Size returns the edge lengths of the box.
func (b AABB) Size() Point { return b.Max.Sub(b.Min) }

// MaxDim returns the largest edge length (the paper's Ω, §4.1).
func (b AABB) MaxDim() float64 {
	s := b.Size()
	return math.Max(s.X, math.Max(s.Y, s.Z))
}

// Center returns the center of the box.
func (b AABB) Center() Point { return b.Min.Add(b.Max).Scale(0.5) }

// Contains reports whether p lies inside the box (inclusive).
func (b AABB) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Cube returns the smallest axis-aligned cube with the same Min corner that
// contains b. Octree construction partitions a cube (§2.1).
func (b AABB) Cube() AABB {
	side := b.MaxDim()
	return AABB{Min: b.Min, Max: b.Min.Add(Point{side, side, side})}
}
