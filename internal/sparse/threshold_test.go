package sparse

import "testing"

// TestTHrMetersOption: the radial threshold knob must flow into the stream
// and decode consistently.
func TestTHrMetersOption(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	if len(idx) > 20000 {
		idx = idx[:20000]
	}
	for _, th := range []float64{0.25, 2.0, 10.0} {
		opts := defaultOpts(meta)
		opts.THrMeters = th
		enc, err := Encode(pc, idx, opts)
		if err != nil {
			t.Fatalf("th=%v: %v", th, err)
		}
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatalf("th=%v: decode: %v", th, err)
		}
		verify(t, pc, enc, dec, opts.Q)
	}
}

// TestOptionsDefaults checks the zero-value handling of Options helpers.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.groups() != 1 {
		t.Fatalf("groups() = %d, want 1", o.groups())
	}
	if o.thR() != 2.0 {
		t.Fatalf("thR() = %v, want 2", o.thR())
	}
	o.Groups = 4
	o.CartesianMode = true
	if o.groups() != 1 {
		t.Fatalf("cartesian mode must force one group, got %d", o.groups())
	}
	o.CartesianMode = false
	if o.groups() != 4 {
		t.Fatalf("groups() = %d, want 4", o.groups())
	}
}
