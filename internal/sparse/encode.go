package sparse

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"time"

	"dbgc/internal/arith"
	"dbgc/internal/blockpack"
	"dbgc/internal/ctxmodel"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/par"
	"dbgc/internal/polyline"
	"dbgc/internal/radix"
	"dbgc/internal/varint"
)

// Options configures the sparse-point compressor.
type Options struct {
	// Q is the Cartesian per-dimension error bound q_xyz in meters.
	Q float64
	// Groups is the number of radial-distance groups (§3.5 "Point
	// Grouping"); the paper uses 3. Values below 1 mean 1.
	Groups int
	// UTheta and UPhi are the sensor's average angular steps in radians
	// (§3.3), used to steer polyline extraction.
	UTheta, UPhi float64
	// DisableRadialOpt replaces the radial distance optimized delta
	// encoding by plain per-line delta encoding (the paper's -Radial
	// ablation).
	DisableRadialOpt bool
	// CartesianMode organizes and codes polylines on scaled Cartesian
	// coordinates instead of spherical ones (the paper's -Conversion
	// ablation).
	CartesianMode bool
	// THrMeters is the radial distance threshold TH_r; zero means the
	// paper's 2 m.
	THrMeters float64
	// Parallel encodes the radial groups concurrently. The output is
	// byte-identical to the serial encoding.
	Parallel bool
	// Shards splits each group's high-volume entropy streams (φ tails and
	// radials) into this many independently-coded shards (container v3)
	// and adds a per-group CRC so damaged groups can be salvaged
	// individually. Values <= 1 keep the legacy streams, byte-identical to
	// previous releases. The flag rides in the stream header, so decoders
	// need no out-of-band signal.
	Shards int
	// BlockPack codes the integer streams (polyline lengths, θ/φ heads and
	// tails, radials) with the blockpack codec instead of varint+DEFLATE
	// and the adaptive arithmetic coder (container v4). The high-volume
	// streams keep the shard framing, so sharded parallel decode composes;
	// groups carry CRCs like the sharded dialect. The flag rides in the
	// stream header. Off leaves every legacy dialect byte-identical.
	BlockPack bool
	// Context lets the angular streams (θ-head deltas, θ tails, φ tails)
	// compete against two extra entropy coders — plain adaptive arithmetic
	// and the context-modeled magnitude-bucket coder of internal/ctxmodel —
	// per group and per stream (container v5). Each group carries a methods
	// byte recording the winner; a stream whose context coding loses keeps
	// its legacy bytes, so the dialect never enlarges a stream by more than
	// the one methods byte per group. The flag rides in the stream header.
	Context bool
}

func (o Options) groups() int {
	g := o.Groups
	if g < 1 {
		g = 1
	}
	if o.CartesianMode {
		// Grouping only matters for the r-dependent angular scaling,
		// which Cartesian mode does not have.
		g = 1
	}
	return g
}

func (o Options) thR() float64 {
	if o.THrMeters > 0 {
		return o.THrMeters
	}
	return 2.0
}

// Encoded is the output of Encode.
type Encoded struct {
	// Data is the self-contained B_sparse bit sequence (with grouping
	// headers, Figure 8b).
	Data []byte
	// OutlierIdx lists the original-cloud indices of sparse points that
	// joined no polyline in any group; the caller routes them to the
	// outlier compressor (§3.6).
	OutlierIdx []int32
	// DecodedOrder maps decoded position j to the original-cloud index
	// it reconstructs (polyline points only).
	DecodedOrder []int32
	// NumLines counts polylines across all groups.
	NumLines int
	// Stage timings for the paper's Figure 13 breakdown: COR (coordinate
	// conversion and scaling), ORG (point organization), SPA (stream
	// compression).
	TimeConvert, TimeOrganize, TimeCompress time.Duration
}

// flag bits in the stream header.
const (
	flagCartesian  = 1 << 0
	flagPlainDelta = 1 << 1
	// flagSharded marks the container v3 dialect: each group payload is
	// prefixed by its CRC-32C, and the φ-tail and radial streams use the
	// sharded entropy framing of internal/arith.
	flagSharded = 1 << 2
	// flagBlockPack marks the container v4 dialect: the integer streams are
	// blockpacked (the high-volume ones inside the shard framing), and each
	// group payload is CRC-prefixed like the sharded dialect.
	flagBlockPack = 1 << 3
	// flagContext marks the container v5 dialect: each group carries a
	// methods byte (after the count header) naming the per-stream entropy
	// coder of the θ-head-delta, θ-tail, and φ-tail streams.
	flagContext = 1 << 4
)

// Per-stream entropy-coder markers in the v5 methods byte, two bits each:
// θ-head deltas at bit 0, θ tails at bit 2, φ tails at bit 4.
const (
	intMethodLegacy = 0 // the active dialect's coding (v1/v3/v4)
	intMethodArith  = 1 // plain adaptive arithmetic (sharded if the group is)
	intMethodCtx    = 2 // ctxmodel magnitude-bucket contexts
)

// crcTable is the Castagnoli polynomial, matching the container CRCs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode compresses the sparse subset of pc given by idx. The cloud's
// origin must be the sensor position (§3.3).
func Encode(pc geom.PointCloud, idx []int32, opts Options) (Encoded, error) {
	if opts.Q <= 0 {
		return Encoded{}, fmt.Errorf("sparse: error bound must be positive, got %v", opts.Q)
	}
	var enc Encoded
	out := make([]byte, 0, 1024)
	flags := uint64(0)
	if opts.CartesianMode {
		flags |= flagCartesian
	}
	if opts.DisableRadialOpt {
		flags |= flagPlainDelta
	}
	if opts.Shards > 1 {
		flags |= flagSharded
	}
	if opts.BlockPack {
		flags |= flagBlockPack
	}
	if opts.Context {
		flags |= flagContext
	}
	out = varint.AppendUint(out, flags)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(opts.Q))

	// Group by radial distance (§3.5): sort by r, then split at geometric
	// boundaries so every group's r_max/r_min ratio — and with it the
	// excess angular precision q/r_max imposes on the group's nearest
	// points — is bounded. (Equal-count splitting leaves the far group
	// spanning a 10x radial range whose near end pays several wasted bits
	// per angle.) Norms are computed once and radix-sorted on their IEEE
	// bits — non-negative floats order identically to their bit patterns,
	// and the stable sort keeps equal radii in ascending index order, as
	// the comparison sort it replaces did. The sorted norms ride along for
	// the grouping cuts and the per-group conversions.
	sorted := append([]int32(nil), idx...)
	rbits := make([]uint64, len(sorted))
	for i, pi := range sorted {
		rbits[i] = math.Float64bits(pc[pi].Norm())
	}
	radix.Sort(rbits, sorted, nil)
	rs := make([]float64, len(rbits))
	for i, b := range rbits {
		rs[i] = math.Float64frombits(b)
	}
	g := opts.groups()
	if len(sorted) < g {
		g = 1
	}
	bounds := groupBoundaries(rs, g)
	out = varint.AppendUint(out, uint64(g))
	type groupResult struct {
		data            []byte
		outliers, order []int32
		nLines          int
		times           [3]time.Duration
		err             error
	}
	results := make([]groupResult, g)
	encodeOne := func(gi int) {
		r := &results[gi]
		lo, hi := bounds[gi], bounds[gi+1]
		r.data, r.outliers, r.order, r.nLines, r.times, r.err = encodeGroup(pc, sorted[lo:hi], rs[lo:hi], opts, nil)
	}
	if opts.Parallel && g > 1 {
		// Bounded fan-out: at most GOMAXPROCS workers, each encoding a
		// contiguous run of groups. One goroutine per group regardless of
		// core count was the BENCH_7 regression (DESIGN.md §12): on few
		// cores the concurrent groups evict each other's working sets and
		// the runtime timeslices between them for no throughput.
		par.Chunks(g, func(_, lo, hi int) {
			for gi := lo; gi < hi; gi++ {
				encodeOne(gi)
			}
		})
	} else {
		for gi := 0; gi < g; gi++ {
			encodeOne(gi)
		}
	}
	for gi := 0; gi < g; gi++ {
		r := &results[gi]
		if r.err != nil {
			return Encoded{}, fmt.Errorf("sparse: group %d: %w", gi, r.err)
		}
		if opts.Shards > 1 || opts.BlockPack {
			// v3/v4 dialect: the group length covers a leading CRC-32C so a
			// damaged group can be detected — and skipped — on its own.
			out = varint.AppendUint(out, uint64(len(r.data))+4)
			out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(r.data, crcTable))
		} else {
			out = varint.AppendUint(out, uint64(len(r.data)))
		}
		out = append(out, r.data...)
		enc.OutlierIdx = append(enc.OutlierIdx, r.outliers...)
		enc.DecodedOrder = append(enc.DecodedOrder, r.order...)
		enc.NumLines += r.nLines
		enc.TimeConvert += r.times[0]
		enc.TimeOrganize += r.times[1]
		enc.TimeCompress += r.times[2]
	}
	enc.Data = out
	return enc, nil
}

// groupBoundaries returns g+1 cut positions into the ascending norm list,
// splitting the radial range [r_min, r_max] into g geometric intervals.
// Degenerate ranges fall back to equal-count chunks.
func groupBoundaries(rs []float64, g int) []int {
	bounds := make([]int, g+1)
	bounds[g] = len(rs)
	if len(rs) == 0 || g <= 1 {
		return bounds
	}
	rMin := rs[0]
	rMax := rs[len(rs)-1]
	if rMin <= 0 || rMax/rMin < 1.0001 {
		for gi := 1; gi < g; gi++ {
			bounds[gi] = len(rs) * gi / g
		}
		return bounds
	}
	ratio := math.Pow(rMax/rMin, 1/float64(g))
	cut := rMin
	pos := 0
	for gi := 1; gi < g; gi++ {
		cut *= ratio
		for pos < len(rs) && rs[pos] <= cut {
			pos++
		}
		bounds[gi] = pos
	}
	return bounds
}

// encodeGroup runs steps 1-9 for one radial group. rs carries the group's
// precomputed norms in the same (ascending) order as group; times holds the
// COR, ORG, and SPA stage durations. A non-nil capture receives copies of
// the raw integer streams before they are entropy coded (CollectStreams).
func encodeGroup(pc geom.PointCloud, group []int32, rs []float64, opts Options, capture *GroupStreams) (data []byte, outliers, order []int32, nLines int, times [3]time.Duration, err error) {
	var qpts []polyline.Point
	var rMax float64
	var cfg polyline.Config
	var thR int64
	t0 := time.Now()

	if opts.CartesianMode {
		cq := cartesianQuantizer{q: opts.Q}
		qpts = make([]polyline.Point, len(group))
		var rMed float64
		for _, r := range rs {
			rMed += r
		}
		if len(group) > 0 {
			rMed /= float64(len(group))
		}
		for k, i := range group {
			tx, ty, tz := cq.Quantize(pc[i])
			qpts[k] = polyline.Point{Theta: tx, Phi: ty, R: tz, Orig: i}
		}
		// Thresholds: typical arc spacing mapped into quantized
		// Cartesian units.
		cfg = polyline.Config{
			UTheta:    math.Max(1, opts.UTheta*rMed/(2*opts.Q)),
			UPhi:      math.Max(1, opts.UPhi*rMed/(2*opts.Q)),
			Cartesian: cq.Cartesian,
		}
		thR = int64(math.Round(opts.thR() / (2 * opts.Q)))
	} else {
		if len(rs) > 0 {
			rMax = rs[len(rs)-1] // group norms ascend
		}
		qz := NewQuantizer(opts.Q, rMax)
		qpts = make([]polyline.Point, len(group))
		for k, i := range group {
			t, p, r := qz.Quantize(geom.ToSphericalR(pc[i], rs[k]))
			qpts[k] = polyline.Point{Theta: t, Phi: p, R: r, Orig: i}
		}
		cfg = polyline.Config{
			UTheta:    math.Max(1, opts.UTheta/(2*qz.QTheta)),
			UPhi:      math.Max(1, opts.UPhi/(2*qz.QPhi)),
			Cartesian: qz.Cartesian,
		}
		thR = int64(math.Round(opts.thR() / (2 * qz.QR)))
	}
	if thR < 1 {
		thR = 1
	}
	thPhi := int64(math.Ceil(2 * cfg.UPhi))
	t1 := time.Now()

	lines, loose := polyline.Organize(qpts, cfg)
	for _, p := range loose {
		outliers = append(outliers, p.Orig)
	}
	nLines = len(lines)
	t2 := time.Now()

	// Stream assembly (steps 2-8).
	nPts := 0
	for _, l := range lines {
		nPts += len(l)
	}
	lens := make([]uint64, 0, len(lines))
	thetaHeads := make([]int64, 0, len(lines))
	phiHeads := make([]int64, 0, len(lines))
	thetaTails := make([]int64, 0, nPts-len(lines))
	phiTails := make([]int64, 0, nPts-len(lines))
	order = make([]int32, 0, nPts)
	for _, l := range lines {
		lens = append(lens, uint64(len(l)))
		thetaHeads = append(thetaHeads, l.Head().Theta)
		phiHeads = append(phiHeads, l.Head().Phi)
		for k := 1; k < len(l); k++ {
			thetaTails = append(thetaTails, l[k].Theta-l[k-1].Theta)
			phiTails = append(phiTails, l[k].Phi-l[k-1].Phi)
		}
	}
	for _, l := range lines {
		for _, p := range l {
			order = append(order, p.Orig)
		}
	}

	radials, refs := encodeRadial(lines, thPhi, thR, opts.DisableRadialOpt)

	// Cross-line delta on the head sequences (step 6/7).
	dThetaHeads := deltaInts(thetaHeads)
	dPhiHeads := deltaInts(phiHeads)

	if capture != nil {
		capture.Lens = append([]uint64(nil), lens...)
		capture.DThetaHeads = append([]int64(nil), dThetaHeads...)
		capture.ThetaTails = append([]int64(nil), thetaTails...)
		capture.DPhiHeads = append([]int64(nil), dPhiHeads...)
		capture.PhiTails = append([]int64(nil), phiTails...)
		capture.Radials = append([]int64(nil), radials...)
	}

	data = make([]byte, 0, 1024)
	if !opts.CartesianMode {
		data = binary.LittleEndian.AppendUint64(data, math.Float64bits(rMax))
	}
	data = varint.AppendUint(data, uint64(thPhi))
	data = varint.AppendUint(data, uint64(thR))
	data = varint.AppendUint(data, uint64(len(lines)))
	data = varint.AppendUint(data, uint64(len(thetaTails)))
	data = varint.AppendUint(data, uint64(len(refs)))

	// Stage each stream in one pooled scratch buffer; appendStream copies
	// into the output, so the scratch is safe to reuse immediately.
	sp := streamScratch.Get().(*[]byte)
	s := *sp
	if opts.Context {
		// v5 dialect: the three angular streams each pick the smallest of
		// their legacy coding, plain adaptive arithmetic, and the
		// context-modeled coder; the winners land in the methods byte.
		methodsAt := len(data)
		data = append(data, 0)
		if opts.BlockPack {
			s = blockpack.PackUint64Sharded(s[:0], lens, opts.Shards, opts.Parallel)
		} else {
			s = arith.AppendCompressUints(s[:0], lens)
		}
		data = appendStream(data, s)

		var legacy []byte
		if opts.BlockPack {
			legacy = blockpack.PackInt64(nil, dThetaHeads)
		} else {
			legacy = deflateBytes(varint.AppendInts(nil, dThetaHeads))
		}
		data = chooseIntStream(data, methodsAt, 0, legacy, dThetaHeads, 1, opts.Parallel)

		if opts.BlockPack {
			legacy = blockpack.PackInt64Sharded(nil, thetaTails, opts.Shards, opts.Parallel)
		} else {
			legacy = deflateBytes(varint.AppendInts(nil, thetaTails))
		}
		data = chooseIntStream(data, methodsAt, 2, legacy, thetaTails, opts.Shards, opts.Parallel)

		if opts.BlockPack {
			s = blockpack.PackInt64(s[:0], dPhiHeads)
		} else {
			s = arith.AppendCompressInts(s[:0], dPhiHeads)
		}
		data = appendStream(data, s)

		switch {
		case opts.BlockPack:
			legacy = blockpack.PackInt64Sharded(nil, phiTails, opts.Shards, opts.Parallel)
		case opts.Shards > 1:
			legacy = arith.AppendCompressIntsSharded(nil, phiTails, opts.Shards, opts.Parallel)
		default:
			legacy = arith.AppendCompressInts(nil, phiTails)
		}
		data = chooseIntStream(data, methodsAt, 4, legacy, phiTails, opts.Shards, opts.Parallel)

		switch {
		case opts.BlockPack:
			s = blockpack.PackInt64Sharded(s[:0], radials, opts.Shards, opts.Parallel)
		case opts.Shards > 1:
			s = arith.AppendCompressIntsSharded(s[:0], radials, opts.Shards, opts.Parallel)
		default:
			s = arith.AppendCompressInts(s[:0], radials)
		}
		data = appendStream(data, s)
	} else if opts.BlockPack {
		// v4 dialect: every integer stream blockpacks. The high-volume
		// streams (lengths, tails, radials) keep the shard framing so
		// sharded parallel decode composes; the tiny head streams pack
		// plain. Only the 4-symbol reference stream stays on the adaptive
		// arithmetic coder, where sub-bit symbols beat any bit packing.
		s = blockpack.PackUint64Sharded(s[:0], lens, opts.Shards, opts.Parallel)
		data = appendStream(data, s)
		s = blockpack.PackInt64(s[:0], dThetaHeads)
		data = appendStream(data, s)
		s = blockpack.PackInt64Sharded(s[:0], thetaTails, opts.Shards, opts.Parallel)
		data = appendStream(data, s)
		s = blockpack.PackInt64(s[:0], dPhiHeads)
		data = appendStream(data, s)
		s = blockpack.PackInt64Sharded(s[:0], phiTails, opts.Shards, opts.Parallel)
		data = appendStream(data, s)
		s = blockpack.PackInt64Sharded(s[:0], radials, opts.Shards, opts.Parallel)
		data = appendStream(data, s)
	} else {
		s = arith.AppendCompressUints(s[:0], lens)
		data = appendStream(data, s)
		s = varint.AppendInts(s[:0], dThetaHeads)
		data = appendStream(data, deflateBytes(s))
		s = varint.AppendInts(s[:0], thetaTails)
		data = appendStream(data, deflateBytes(s))
		s = arith.AppendCompressInts(s[:0], dPhiHeads)
		data = appendStream(data, s)
		// φ tails and radials are the group's two high-volume streams; in the
		// sharded dialect they split into independently-coded shards. The small
		// head/length/ref streams stay single-coder: sharding them would cost
		// model restarts without useful parallelism.
		if opts.Shards > 1 {
			s = arith.AppendCompressIntsSharded(s[:0], phiTails, opts.Shards, opts.Parallel)
			data = appendStream(data, s)
			s = arith.AppendCompressIntsSharded(s[:0], radials, opts.Shards, opts.Parallel)
			data = appendStream(data, s)
		} else {
			s = arith.AppendCompressInts(s[:0], phiTails)
			data = appendStream(data, s)
			s = arith.AppendCompressInts(s[:0], radials)
			data = appendStream(data, s)
		}
	}
	s = appendCompressRefs(s[:0], refs)
	data = appendStream(data, s)
	*sp = s
	streamScratch.Put(sp)
	t3 := time.Now()
	times = [3]time.Duration{t1.Sub(t0), t2.Sub(t1), t3.Sub(t2)}
	return data, outliers, order, nLines, times, nil
}

// encodeRadial produces ∇L_r and L_ref (§3.5 step 8). With plainDelta the
// reference is always the preceding point (heads reference the previous
// head), reproducing classic delta encoding for the -Radial ablation.
func encodeRadial(lines []polyline.Line, thPhi, thR int64, plainDelta bool) (radials []int64, refs []int) {
	var cs polyline.ConsensusScratch
	for i, l := range lines {
		var ctx refContext
		if !plainDelta {
			ctx = refContext{cons: cs.Consensus(lines, i, thPhi), thR: thR}
		}
		for k, p := range l {
			if k == 0 {
				var ref int64
				if plainDelta {
					if i > 0 {
						ref = lines[i-1].Head().R
					}
				} else {
					ref = headRef(ctx, lines, i, p.Theta)
				}
				radials = append(radials, p.R-ref)
				continue
			}
			blR := l[k-1].R
			if plainDelta {
				radials = append(radials, p.R-blR)
				continue
			}
			d := classifyTail(ctx, p.Theta, blR)
			if !d.needSymbol {
				radials = append(radials, p.R-d.candidates[refBottomLeft])
				continue
			}
			sym := d.choose(p.R)
			refs = append(refs, sym)
			radials = append(radials, p.R-d.candidates[sym])
		}
	}
	return radials, refs
}

func deltaInts(vs []int64) []int64 {
	out := make([]int64, len(vs))
	if len(vs) == 0 {
		return out
	}
	out[0] = vs[0]
	for i := 1; i < len(vs); i++ {
		out[i] = vs[i] - vs[i-1]
	}
	return out
}

func undeltaInts(vs []int64) []int64 {
	out := make([]int64, len(vs))
	if len(vs) == 0 {
		return out
	}
	out[0] = vs[0]
	for i := 1; i < len(vs); i++ {
		out[i] = out[i-1] + vs[i]
	}
	return out
}

// streamScratch recycles the per-group staging buffer for stream assembly.
var streamScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 8192)
	return &b
}}

func appendCompressRefs(dst []byte, refs []int) []byte {
	e := arith.GetEncoder()
	m := arith.GetModel(4)
	for _, s := range refs {
		e.Encode(m, s)
	}
	dst = e.AppendFinish(dst)
	arith.PutModel(m)
	arith.PutEncoder(e)
	return dst
}

func decompressRefs(data []byte, n int) ([]int, error) {
	d := arith.GetDecoder(data)
	m := arith.GetModel(4)
	out := make([]int, n)
	for i := range out {
		s, err := d.Decode(m)
		if err != nil {
			arith.PutModel(m)
			arith.PutDecoder(d)
			return nil, fmt.Errorf("sparse: ref symbol %d/%d: %w", i, n, err)
		}
		out[i] = s
	}
	arith.PutModel(m)
	arith.PutDecoder(d)
	return out, nil
}

func appendStream(dst, stream []byte) []byte {
	dst = varint.AppendUint(dst, uint64(len(stream)))
	return append(dst, stream...)
}

// chooseIntStream appends the smallest coding of vs among the active
// dialect's legacy bytes, plain adaptive arithmetic, and the context-modeled
// magnitude-bucket coder, recording the winner's marker at bit position
// shift of the methods byte at dst[methodsAt]. Ties go to the lowest marker,
// so a stream the new coders cannot beat keeps its exact legacy bytes.
func chooseIntStream(dst []byte, methodsAt int, shift uint, legacy []byte, vs []int64, shards int, parallel bool) []byte {
	best, method := legacy, byte(intMethodLegacy)
	var a []byte
	if shards > 1 {
		a = arith.AppendCompressIntsSharded(nil, vs, shards, parallel)
	} else {
		a = arith.AppendCompressInts(nil, vs)
	}
	if len(a) < len(best) {
		best, method = a, intMethodArith
	}
	if c := ctxmodel.AppendIntsCtx(nil, vs, shards, parallel); len(c) < len(best) {
		best, method = c, intMethodCtx
	}
	dst[methodsAt] |= method << shift
	return appendStream(dst, best)
}

// flatePool recycles DEFLATE compressors; flate.NewWriter allocates large
// internal tables that Reset reuses across frames.
var flatePool = sync.Pool{New: func() any {
	w, err := flate.NewWriter(nil, flate.BestCompression)
	if err != nil {
		panic(err) // only fails for invalid level
	}
	return w
}}

// deflateBytes compresses with DEFLATE at the best-compression setting, as
// the paper uses for the azimuthal streams (step 6).
func deflateBytes(data []byte) []byte {
	var buf bytes.Buffer
	w := flatePool.Get().(*flate.Writer)
	w.Reset(&buf)
	if _, err := w.Write(data); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	flatePool.Put(w)
	return buf.Bytes()
}

func inflateBytes(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sparse: inflate: %w", err)
	}
	return out, nil
}

// GroupStreams holds one radial group's raw integer streams exactly as the
// encoder hands them to the entropy layer, for codec ablations.
type GroupStreams struct {
	Lens        []uint64
	DThetaHeads []int64
	ThetaTails  []int64
	DPhiHeads   []int64
	PhiTails    []int64
	Radials     []int64
}

// CollectStreams runs the sparse pipeline on the subset of pc given by idx
// and returns every group's raw integer streams plus the outlier indices,
// without emitting a stream. It exists for the benchkit pack ablation,
// which compares codecs on the real per-stream data of a frame.
func CollectStreams(pc geom.PointCloud, idx []int32, opts Options) ([]GroupStreams, []int32, error) {
	if opts.Q <= 0 {
		return nil, nil, fmt.Errorf("sparse: error bound must be positive, got %v", opts.Q)
	}
	sorted := append([]int32(nil), idx...)
	rbits := make([]uint64, len(sorted))
	for i, pi := range sorted {
		rbits[i] = math.Float64bits(pc[pi].Norm())
	}
	radix.Sort(rbits, sorted, nil)
	rs := make([]float64, len(rbits))
	for i, b := range rbits {
		rs[i] = math.Float64frombits(b)
	}
	g := opts.groups()
	if len(sorted) < g {
		g = 1
	}
	bounds := groupBoundaries(rs, g)
	streams := make([]GroupStreams, g)
	var outliers []int32
	for gi := 0; gi < g; gi++ {
		lo, hi := bounds[gi], bounds[gi+1]
		_, out, _, _, _, err := encodeGroup(pc, sorted[lo:hi], rs[lo:hi], opts, &streams[gi])
		if err != nil {
			return nil, nil, fmt.Errorf("sparse: group %d: %w", gi, err)
		}
		outliers = append(outliers, out...)
	}
	return streams, outliers, nil
}

// inflateBytesBounded is inflateBytes refusing to inflate past maxLen bytes
// (a DEFLATE stream can expand ~1000x, so the inflated size must be bounded
// by what the caller can legitimately consume) and charging the inflated
// bytes against b.
func inflateBytesBounded(data []byte, maxLen int64, b *declimits.Budget) ([]byte, error) {
	if err := b.Mem(maxLen); err != nil {
		return nil, err
	}
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, maxLen+1))
	if err != nil {
		return nil, fmt.Errorf("sparse: inflate: %w", err)
	}
	if int64(len(out)) > maxLen {
		return nil, fmt.Errorf("%w: inflated stream exceeds %d bytes", ErrCorrupt, maxLen)
	}
	return out, nil
}
