package sparse

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"dbgc/internal/arith"
	"dbgc/internal/blockpack"
	"dbgc/internal/ctxmodel"
	"dbgc/internal/declimits"
	"dbgc/internal/geom"
	"dbgc/internal/polyline"
	"dbgc/internal/varint"
)

// ErrCorrupt reports a malformed sparse stream.
var ErrCorrupt = errors.New("sparse: corrupt stream")

// ErrGroupCRC reports a radial group whose CRC-32C (carried by sharded v3
// streams) does not match its payload. It wraps ErrCorrupt.
var ErrGroupCRC = fmt.Errorf("%w: group CRC mismatch", ErrCorrupt)

// DecodeOptions configures decoding. The zero value decodes serially.
type DecodeOptions struct {
	// Parallel decodes the radial groups on separate goroutines — and the
	// shards within each group of a sharded (v3) stream. Each group is an
	// independently entropy-coded section, so the output is
	// point-identical to serial decoding.
	Parallel bool
	// Budget, when non-nil, bounds decoded points, entropy symbols, and
	// memory. It is safe to share with concurrently decoding sections.
	Budget *declimits.Budget
	// Salvage skips radial groups whose CRC-32C mismatches instead of
	// failing the whole section. Only sharded (v3) streams carry group
	// CRCs; on legacy streams the option is a no-op. The returned cloud
	// holds the points of every intact group, in group order.
	Salvage bool
}

// groupFlags carries the per-stream dialect bits every group decode needs.
type groupFlags struct {
	cartesian  bool
	plainDelta bool
	sharded    bool
	blockpack  bool
	ctx        bool
	parallel   bool
}

// Decode reconstructs the polyline points from a stream produced by
// Encode, in the same order as Encoded.DecodedOrder.
func Decode(data []byte) (geom.PointCloud, error) {
	return DecodeWith(data, DecodeOptions{})
}

// DecodeWith is Decode with explicit options. Panics on hostile bytes are
// recovered into ErrCorrupt-wrapped errors.
func DecodeWith(data []byte, opts DecodeOptions) (pc geom.PointCloud, err error) {
	defer declimits.Recover(&err, ErrCorrupt)
	flags, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("sparse: flags: %w", err)
	}
	data = data[used:]
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	q := math.Float64frombits(binary.LittleEndian.Uint64(data))
	data = data[8:]
	if !(q > 0) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("%w: invalid error bound %v", ErrCorrupt, q)
	}
	gf := groupFlags{
		cartesian:  flags&flagCartesian != 0,
		plainDelta: flags&flagPlainDelta != 0,
		sharded:    flags&flagSharded != 0,
		blockpack:  flags&flagBlockPack != 0,
		ctx:        flags&flagContext != 0,
		parallel:   opts.Parallel,
	}

	nGroups, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("sparse: group count: %w", err)
	}
	data = data[used:]
	if nGroups > 1024 {
		return nil, fmt.Errorf("%w: implausible group count %d", ErrCorrupt, nGroups)
	}

	// Slice the group payloads out of the stream (a cheap varint walk), so
	// each group — an independently entropy-coded section — can decode on
	// its own goroutine.
	groups := make([][]byte, 0, nGroups)
	for gi := uint64(0); gi < nGroups; gi++ {
		glen, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("sparse: group %d length: %w", gi, err)
		}
		data = data[used:]
		if glen > uint64(len(data)) {
			return nil, fmt.Errorf("%w: group %d truncated", ErrCorrupt, gi)
		}
		groups = append(groups, data[:glen])
		data = data[glen:]
	}

	pts := make([]geom.PointCloud, len(groups))
	errs := make([]error, len(groups))
	if opts.Parallel && len(groups) > 1 {
		var wg sync.WaitGroup
		for gi := range groups {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				defer declimits.Recover(&errs[gi], ErrCorrupt)
				pts[gi], errs[gi] = decodeGroupChecked(groups[gi], q, gf, opts.Budget)
			}(gi)
		}
		wg.Wait()
	} else {
		for gi := range groups {
			pts[gi], errs[gi] = decodeGroupChecked(groups[gi], q, gf, opts.Budget)
		}
	}

	total := 0
	for gi := range groups {
		if errs[gi] != nil {
			// A CRC-attributable failure condemns only its own group when
			// the caller asked for salvage; everything else stays fatal.
			if opts.Salvage && errors.Is(errs[gi], ErrGroupCRC) {
				pts[gi] = nil
				continue
			}
			return nil, fmt.Errorf("sparse: group %d: %w", gi, errs[gi])
		}
		total += len(pts[gi])
	}
	out := make(geom.PointCloud, 0, total)
	for _, p := range pts {
		out = append(out, p...)
	}
	return out, nil
}

// decodeGroupChecked strips and verifies the CRC-32C prefix that sharded
// (v3) and blockpacked (v4) groups carry, then decodes the group payload.
// Legacy groups pass through unchanged.
func decodeGroupChecked(data []byte, q float64, gf groupFlags, b *declimits.Budget) (geom.PointCloud, error) {
	if gf.sharded || gf.blockpack {
		if len(data) < 4 {
			return nil, fmt.Errorf("%w: group shorter than its CRC", ErrCorrupt)
		}
		want := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if crc32.Checksum(data, crcTable) != want {
			return nil, ErrGroupCRC
		}
	}
	return decodeGroup(data, q, gf, b)
}

func decodeGroup(data []byte, q float64, gf groupFlags, b *declimits.Budget) (geom.PointCloud, error) {
	cartesian, plainDelta := gf.cartesian, gf.plainDelta
	var qz Quantizer
	var cq cartesianQuantizer
	if cartesian {
		cq = cartesianQuantizer{q: q}
	} else {
		if len(data) < 8 {
			return nil, fmt.Errorf("%w: missing rMax", ErrCorrupt)
		}
		rMax := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		if math.IsNaN(rMax) || math.IsInf(rMax, 0) || rMax < 0 {
			return nil, fmt.Errorf("%w: invalid rMax %v", ErrCorrupt, rMax)
		}
		qz = NewQuantizer(q, rMax)
	}
	hdr := make([]uint64, 5)
	for i := range hdr {
		v, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("sparse: group header[%d]: %w", i, err)
		}
		hdr[i] = v
		data = data[used:]
	}
	thPhi := int64(hdr[0])
	thR := int64(hdr[1])
	nLines := int(hdr[2])
	nTails := int(hdr[3])
	nRefs := int(hdr[4])
	const sane = 1 << 28
	if hdr[2] > sane || hdr[3] > sane || hdr[4] > sane {
		return nil, fmt.Errorf("%w: implausible group header", ErrCorrupt)
	}

	// v5 groups carry a methods byte naming the entropy coder of each
	// angular stream; for earlier dialects it stays zero, which is exactly
	// intMethodLegacy for every stream.
	var methods byte
	if gf.ctx {
		if len(data) < 1 {
			return nil, fmt.Errorf("%w: missing stream methods byte", ErrCorrupt)
		}
		methods = data[0]
		data = data[1:]
		if methods>>6 != 0 {
			return nil, fmt.Errorf("%w: reserved stream method bits %#x", ErrCorrupt, methods)
		}
	}

	streams := make([][]byte, 7)
	for i := range streams {
		l, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("sparse: stream %d length: %w", i, err)
		}
		data = data[used:]
		if l > uint64(len(data)) {
			return nil, fmt.Errorf("%w: stream %d truncated", ErrCorrupt, i)
		}
		streams[i] = data[:l]
		data = data[l:]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in group", ErrCorrupt, len(data))
	}

	var lens []uint64
	var err error
	if gf.blockpack {
		lens, err = blockpack.UnpackUint64Sharded(streams[0], nLines, b, gf.parallel)
	} else {
		lens, err = arith.DecompressUintsLimited(streams[0], nLines, b)
	}
	if err != nil {
		return nil, fmt.Errorf("sparse: lengths: %w", err)
	}
	total := 0
	for _, l := range lens {
		if l < 2 || l > sane {
			return nil, fmt.Errorf("%w: polyline length %d", ErrCorrupt, l)
		}
		total += int(l)
	}
	if total-nLines != nTails {
		return nil, fmt.Errorf("%w: tail count %d does not match lengths (%d)", ErrCorrupt, nTails, total-nLines)
	}
	if err := b.Points(int64(total)); err != nil {
		return nil, err
	}

	// legacyInts decodes stream i under the pre-v5 dialect rules: blockpack
	// (v4) packs every stream (heads plain, high-volume streams in the shard
	// framing); otherwise the azimuthal streams (1, 2) are DEFLATEd varints,
	// the φ heads (3) plain arithmetic, and the high-volume streams (4, 5)
	// arithmetic in the shard framing when the group is sharded (v3).
	legacyInts := func(i, n int, highVolume bool) ([]int64, error) {
		if gf.blockpack {
			if highVolume {
				return blockpack.UnpackInt64Sharded(streams[i], n, b, gf.parallel)
			}
			return blockpack.UnpackInt64(streams[i], n, b)
		}
		switch i {
		case 1, 2:
			// A zigzag varint is at most 10 bytes, so a valid head/tail
			// stream inflates to at most 10 bytes per element; the bound
			// stops DEFLATE bombs before io.ReadAll materializes them.
			raw, err := inflateBytesBounded(streams[i], 10*int64(n), b)
			if err != nil {
				return nil, err
			}
			return varint.DecodeInts(raw, n)
		default:
			if highVolume && gf.sharded {
				return arith.DecompressIntsShardedLimited(streams[i], n, b, gf.parallel)
			}
			return arith.DecompressIntsLimited(streams[i], n, b)
		}
	}
	// decodeInts dispatches stream i on its v5 method marker; marker zero is
	// the legacy dialect, so pre-v5 groups (methods byte zero) take exactly
	// the old paths.
	decodeInts := func(i, n int, shift uint, highVolume bool) ([]int64, error) {
		switch (methods >> shift) & 3 {
		case intMethodLegacy:
			return legacyInts(i, n, highVolume)
		case intMethodArith:
			if highVolume && gf.sharded {
				return arith.DecompressIntsShardedLimited(streams[i], n, b, gf.parallel)
			}
			return arith.DecompressIntsLimited(streams[i], n, b)
		case intMethodCtx:
			return ctxmodel.DecodeIntsCtx(streams[i], n, b, gf.parallel)
		default:
			return nil, fmt.Errorf("%w: unknown stream method", ErrCorrupt)
		}
	}

	var dThetaHeads, thetaTails, dPhiHeads, phiTails, radials []int64
	dThetaHeads, err = decodeInts(1, nLines, 0, false)
	if err != nil {
		return nil, fmt.Errorf("sparse: theta heads: %w", err)
	}
	thetaTails, err = decodeInts(2, nTails, 2, true)
	if err != nil {
		return nil, fmt.Errorf("sparse: theta tails: %w", err)
	}
	dPhiHeads, err = legacyInts(3, nLines, false)
	if err != nil {
		return nil, fmt.Errorf("sparse: phi heads: %w", err)
	}
	phiTails, err = decodeInts(4, nTails, 4, true)
	if err != nil {
		return nil, fmt.Errorf("sparse: phi tails: %w", err)
	}
	radials, err = legacyInts(5, total, true)
	if err != nil {
		return nil, fmt.Errorf("sparse: radials: %w", err)
	}
	if err := b.Nodes(int64(nRefs)); err != nil {
		return nil, err
	}
	refs, err := decompressRefs(streams[6], nRefs)
	if err != nil {
		return nil, err
	}

	// Rebuild θ and φ of every line (steps 2/6/7 inverted).
	thetaHeads := undeltaInts(dThetaHeads)
	phiHeads := undeltaInts(dPhiHeads)
	lines := make([]polyline.Line, nLines)
	tp := 0
	for i := 0; i < nLines; i++ {
		n := int(lens[i])
		line := make(polyline.Line, n)
		line[0] = polyline.Point{Theta: thetaHeads[i], Phi: phiHeads[i], Orig: -1}
		for k := 1; k < n; k++ {
			line[k] = polyline.Point{
				Theta: line[k-1].Theta + thetaTails[tp],
				Phi:   line[k-1].Phi + phiTails[tp],
				Orig:  -1,
			}
			tp++
		}
		lines[i] = line
	}

	// Replay the radial reference decisions to recover r (step 8
	// inverted).
	rp, refp := 0, 0
	var cs polyline.ConsensusScratch
	for i, l := range lines {
		var ctx refContext
		if !plainDelta {
			ctx = refContext{cons: cs.Consensus(lines, i, thPhi), thR: thR}
		}
		for k := range l {
			if k == 0 {
				var ref int64
				if plainDelta {
					if i > 0 {
						ref = lines[i-1].Head().R
					}
				} else {
					ref = headRef(ctx, lines, i, l[k].Theta)
				}
				l[k].R = radials[rp] + ref
				rp++
				continue
			}
			blR := l[k-1].R
			if plainDelta {
				l[k].R = radials[rp] + blR
				rp++
				continue
			}
			d := classifyTail(ctx, l[k].Theta, blR)
			if !d.needSymbol {
				l[k].R = radials[rp] + d.candidates[refBottomLeft]
				rp++
				continue
			}
			if refp >= len(refs) {
				return nil, fmt.Errorf("%w: L_ref exhausted", ErrCorrupt)
			}
			sym := refs[refp]
			refp++
			if !d.present[sym] {
				return nil, fmt.Errorf("%w: reference symbol %d not available", ErrCorrupt, sym)
			}
			l[k].R = radials[rp] + d.candidates[sym]
			rp++
		}
	}
	if refp != len(refs) {
		return nil, fmt.Errorf("%w: %d unused L_ref symbols", ErrCorrupt, len(refs)-refp)
	}

	out := make(geom.PointCloud, 0, total)
	for _, l := range lines {
		for _, p := range l {
			if cartesian {
				out = append(out, cq.Dequantize(p.Theta, p.Phi, p.R))
			} else {
				out = append(out, geom.ToCartesian(qz.Dequantize(p.Theta, p.Phi, p.R)))
			}
		}
	}
	return out, nil
}
