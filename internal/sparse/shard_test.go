package sparse

import (
	"bytes"
	"fmt"
	"testing"
)

// TestShardedRoundTrip: sharded sparse sections (CRC-prefixed groups with
// sharded φ-tail and radial streams) decode identically to the legacy
// section, the parallel encode is deterministic, and Shards<=1 keeps the
// legacy bytes.
func TestShardedRoundTrip(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	base := defaultOpts(meta)
	legacy, err := Encode(pc, idx, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decode(legacy.Data)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := base
			opts.Shards = shards
			serial, err := Encode(pc, idx, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallel = true
			par, err := Encode(pc, idx, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial.Data, par.Data) {
				t.Fatal("parallel sharded encode differs from serial")
			}
			if shards <= 1 && !bytes.Equal(serial.Data, legacy.Data) {
				t.Fatal("Shards=1 stream differs from legacy stream")
			}
			for _, pdec := range []bool{false, true} {
				got, err := DecodeWith(serial.Data, DecodeOptions{Parallel: pdec})
				if err != nil {
					t.Fatalf("decode (parallel=%v): %v", pdec, err)
				}
				if len(got) != len(want) {
					t.Fatalf("decoded %d points, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
					}
				}
				verify(t, pc, serial, got, base.Q)
			}
		})
	}
}
