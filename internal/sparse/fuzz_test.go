package sparse

import (
	"testing"

	"dbgc/internal/geom"
)

// FuzzDecode hammers the sparse decoder with mutated group streams; it
// must never panic.
func FuzzDecode(f *testing.F) {
	pc := geom.PointCloud{
		{X: 5, Y: 0, Z: -1}, {X: 5.02, Y: 0.03, Z: -1}, {X: 5.04, Y: 0.06, Z: -1},
		{X: 5.06, Y: 0.09, Z: -1}, {X: 20, Y: 3, Z: 0},
	}
	enc, err := Encode(pc, []int32{0, 1, 2, 3, 4}, Options{Q: 0.02, Groups: 2, UTheta: 0.003, UPhi: 0.007})
	if err != nil {
		f.Fatal(err)
	}
	sharded, err := Encode(pc, []int32{0, 1, 2, 3, 4},
		Options{Q: 0.02, Groups: 2, UTheta: 0.003, UPhi: 0.007, Shards: 2})
	if err != nil {
		f.Fatal(err)
	}
	packed, err := Encode(pc, []int32{0, 1, 2, 3, 4},
		Options{Q: 0.02, Groups: 2, UTheta: 0.003, UPhi: 0.007, BlockPack: true})
	if err != nil {
		f.Fatal(err)
	}
	ctx, err := Encode(pc, []int32{0, 1, 2, 3, 4},
		Options{Q: 0.02, Groups: 2, UTheta: 0.003, UPhi: 0.007, Context: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc.Data)
	f.Add(enc.Data[:len(enc.Data)/3])
	f.Add(sharded.Data)
	f.Add(packed.Data)
	f.Add(ctx.Data)
	f.Add(ctx.Data[:2*len(ctx.Data)/3])
	// Garble the per-group methods byte region so unknown method markers and
	// reserved bits get exercised.
	mut := append([]byte(nil), ctx.Data...)
	if len(mut) > 16 {
		mut[16] ^= 0xff
	}
	f.Add(mut)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		// The sharded, blockpack, and context flags ride in the stream
		// header, so plain Decode already covers the v3-v5 dialects; Salvage
		// additionally exercises the per-group CRC recovery path.
		_, _ = Decode(b)
		_, _ = DecodeWith(b, DecodeOptions{Salvage: true})
	})
}
