package sparse

import (
	"math"
	"testing"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

func sparseFrame(t testing.TB) (geom.PointCloud, []int32, lidar.Meta) {
	t.Helper()
	scene, err := lidar.NewScene(lidar.City, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lidar.HDL64E()
	pc := cfg.Simulate(scene, 1)
	// Use the far half as "sparse" points — the pipeline's real input is
	// whatever clustering rejects.
	var idx []int32
	for i, p := range pc {
		if p.Norm() > 12 {
			idx = append(idx, int32(i))
		}
	}
	return pc, idx, cfg.Meta()
}

func defaultOpts(meta lidar.Meta) Options {
	return Options{
		Q:      0.02,
		Groups: 3,
		UTheta: meta.UTheta(),
		UPhi:   meta.UPhi(),
	}
}

// verify checks the one-to-one mapping and the Theorem 3.2 error bound.
func verify(t *testing.T, pc geom.PointCloud, enc Encoded, dec geom.PointCloud, q float64) {
	t.Helper()
	if len(dec) != len(enc.DecodedOrder) {
		t.Fatalf("decoded %d points, order has %d", len(dec), len(enc.DecodedOrder))
	}
	bound := math.Sqrt(3) * q * 1.000001
	worst := 0.0
	for j, oi := range enc.DecodedOrder {
		d := pc[oi].Dist(dec[j])
		if d > worst {
			worst = d
		}
		if d > bound {
			t.Fatalf("point %d error %v exceeds sqrt(3)q = %v (orig %v dec %v)",
				oi, d, bound, pc[oi], dec[j])
		}
	}
	t.Logf("worst error %.5f m (bound %.5f)", worst, bound)
}

func TestRoundTripSpherical(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	enc, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.DecodedOrder)+len(enc.OutlierIdx) != len(idx) {
		t.Fatalf("points lost: %d on lines + %d outliers != %d input",
			len(enc.DecodedOrder), len(enc.OutlierIdx), len(idx))
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, pc, enc, dec, opts.Q)
	ratio := float64(len(idx)*12) / float64(len(enc.Data))
	t.Logf("%d sparse points, %d lines, %d outliers, %d bytes (ratio %.1f)",
		len(idx), enc.NumLines, len(enc.OutlierIdx), len(enc.Data), ratio)
	if ratio < 5 {
		t.Errorf("sparse coordinate compression ratio %.2f unexpectedly low", ratio)
	}
}

func TestRoundTripTinyErrorBound(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	opts.Q = 0.0006 // 0.06 cm, the paper's tightest setting
	if len(idx) > 20000 {
		idx = idx[:20000]
	}
	enc, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, pc, enc, dec, opts.Q)
}

func TestRoundTripPlainDelta(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	opts.DisableRadialOpt = true
	enc, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, pc, enc, dec, opts.Q)
}

func TestRadialOptHelps(t *testing.T) {
	// Figure 11: -Radial reaches only ~88% of DBGC's compression
	// performance; the optimized encoding must not be worse.
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	full, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableRadialOpt = true
	plain, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Data) > len(plain.Data) {
		t.Fatalf("radial optimization hurt: %d vs %d bytes", len(full.Data), len(plain.Data))
	}
	t.Logf("radial opt: %d bytes, plain delta: %d bytes (%.1f%% saved)",
		len(full.Data), len(plain.Data), 100*(1-float64(len(full.Data))/float64(len(plain.Data))))
}

func TestGroupingHelps(t *testing.T) {
	// Figure 11: -Group reaches only ~85% of DBGC's performance.
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	grouped, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Groups = 1
	single, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("3 groups: %d bytes, 1 group: %d bytes", len(grouped.Data), len(single.Data))
	if float64(len(grouped.Data)) > 1.05*float64(len(single.Data)) {
		t.Fatalf("grouping hurt badly: %d vs %d bytes", len(grouped.Data), len(single.Data))
	}
}

func TestRoundTripCartesianMode(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	opts.CartesianMode = true
	if len(idx) > 15000 {
		idx = idx[:15000]
	}
	enc, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Cartesian mode quantizes each axis directly: per-dimension bound q.
	for j, oi := range enc.DecodedOrder {
		if d := pc[oi].ChebDist(dec[j]); d > opts.Q*1.000001 {
			t.Fatalf("point %d error %v exceeds %v", oi, d, opts.Q)
		}
	}
}

func TestConversionHelps(t *testing.T) {
	// Figure 11: -Conversion only reaches ~29% of DBGC's performance —
	// spherical organization must be much better than Cartesian.
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	sph, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.CartesianMode = true
	cart, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Compare total cost including stranded outliers (12 bytes raw each)
	// so a mode cannot win by declaring everything an outlier.
	sphCost := len(sph.Data) + 12*len(sph.OutlierIdx)
	cartCost := len(cart.Data) + 12*len(cart.OutlierIdx)
	if sphCost >= cartCost {
		t.Fatalf("spherical (%d) should beat Cartesian (%d)", sphCost, cartCost)
	}
	t.Logf("spherical %d bytes (+%d outliers), cartesian %d bytes (+%d outliers)",
		len(sph.Data), len(sph.OutlierIdx), len(cart.Data), len(cart.OutlierIdx))
}

func TestEmptyInput(t *testing.T) {
	enc, err := Encode(nil, nil, Options{Q: 0.02, Groups: 3})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("decoded %d points from empty input", len(dec))
	}
}

func TestInvalidQ(t *testing.T) {
	if _, err := Encode(geom.PointCloud{{X: 1}}, []int32{0}, Options{Q: 0}); err == nil {
		t.Fatal("expected error for q=0")
	}
}

func TestFewPoints(t *testing.T) {
	pc := geom.PointCloud{{X: 5, Y: 0, Z: 1}, {X: 5.01, Y: 0.02, Z: 1}, {X: 5.02, Y: 0.04, Z: 1}}
	opts := Options{Q: 0.02, Groups: 3, UTheta: 0.004, UPhi: 0.007}
	enc, err := Encode(pc, []int32{0, 1, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec)+len(enc.OutlierIdx) != 3 {
		t.Fatalf("3 points in, %d decoded + %d outliers", len(dec), len(enc.OutlierIdx))
	}
}

func TestCorruptStreams(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	if len(idx) > 5000 {
		idx = idx[:5000]
	}
	enc, err := Encode(pc, idx, defaultOpts(meta))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc.Data); cut += 997 {
		if _, err := Decode(enc.Data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Bit flips must never panic.
	for i := 0; i < len(enc.Data); i += 509 {
		mut := append([]byte(nil), enc.Data...)
		mut[i] ^= 0x10
		_, _ = Decode(mut)
	}
}

func BenchmarkEncodeSparse(b *testing.B) {
	pc, idx, meta := sparseFrame(b)
	opts := defaultOpts(meta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(pc, idx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSparse(b *testing.B) {
	pc, idx, meta := sparseFrame(b)
	enc, err := Encode(pc, idx, defaultOpts(meta))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc.Data); err != nil {
			b.Fatal(err)
		}
	}
}
