package sparse

import (
	"bytes"
	"fmt"
	"testing"
)

// TestContextRoundTrip: the v5 context dialect decodes identically to the
// legacy section across the dialect matrix (shards × blockpack), parallel
// encode stays deterministic, and the section never grows by more than the
// per-group methods byte.
func TestContextRoundTrip(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	base := defaultOpts(meta)
	for _, cfg := range []Options{
		{},
		{Shards: 4},
		{BlockPack: true},
		{Shards: 4, BlockPack: true},
	} {
		t.Run(fmt.Sprintf("shards=%d/blockpack=%v", cfg.Shards, cfg.BlockPack), func(t *testing.T) {
			opts := base
			opts.Shards = cfg.Shards
			opts.BlockPack = cfg.BlockPack
			plain, err := Encode(pc, idx, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Decode(plain.Data)
			if err != nil {
				t.Fatal(err)
			}
			opts.Context = true
			serial, err := Encode(pc, idx, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Parallel = true
			par, err := Encode(pc, idx, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial.Data, par.Data) {
				t.Fatal("parallel context encode differs from serial")
			}
			// Guard bound: one methods byte per group is the only overhead
			// the dialect may add when every coder loses.
			if len(serial.Data) > len(plain.Data)+opts.groups() {
				t.Fatalf("context section %dB exceeds plain %dB + %d method bytes",
					len(serial.Data), len(plain.Data), opts.groups())
			}
			t.Logf("section bytes: plain %d, ctx %d", len(plain.Data), len(serial.Data))
			for _, pdec := range []bool{false, true} {
				got, err := DecodeWith(serial.Data, DecodeOptions{Parallel: pdec})
				if err != nil {
					t.Fatalf("decode (parallel=%v): %v", pdec, err)
				}
				if len(got) != len(want) {
					t.Fatalf("decoded %d points, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("point %d: got %v want %v", i, got[i], want[i])
					}
				}
				verify(t, pc, serial, got, base.Q)
			}
		})
	}
}

// TestContextCorrupt: truncating a context-dialect section anywhere must
// error, and reserved method markers are rejected.
func TestContextCorrupt(t *testing.T) {
	pc, idx, meta := sparseFrame(t)
	opts := defaultOpts(meta)
	opts.Context = true
	enc, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc.Data); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < len(enc.Data); l += 17 {
		if _, err := Decode(enc.Data[:l]); err == nil {
			t.Errorf("truncated at %d: want error", l)
		}
	}
}
