package sparse

import (
	"math"
	"testing"

	"dbgc/internal/geom"
)

func normsOf(pc geom.PointCloud) []float64 {
	rs := make([]float64, len(pc))
	for i, p := range pc {
		// pc is constructed sorted in these tests.
		rs[i] = p.Norm()
	}
	return rs
}

func TestGroupBoundariesGeometric(t *testing.T) {
	// Points at radii 1..100; 2 geometric groups over [1,100] cut at 10.
	var pc geom.PointCloud
	for r := 1; r <= 100; r++ {
		pc = append(pc, geom.Point{X: float64(r)})
	}
	b := groupBoundaries(normsOf(pc), 2)
	if len(b) != 3 || b[0] != 0 || b[2] != 100 {
		t.Fatalf("bounds = %v", b)
	}
	cut := pc[b[1]].Norm()
	if math.Abs(cut-10) > 1.5 {
		t.Fatalf("geometric cut at r=%v, want ~10", cut)
	}
}

func TestGroupBoundariesBoundRatio(t *testing.T) {
	// Every group's r_max/r_min must be near the g-th root of the total
	// ratio.
	var pc geom.PointCloud
	for r := 0; r < 5000; r++ {
		pc = append(pc, geom.Point{X: 2.5 + float64(r)*0.0235})
	}
	g := 6
	b := groupBoundaries(normsOf(pc), g)
	total := pc[len(pc)-1].Norm() / pc[0].Norm()
	wantRatio := math.Pow(total, 1/float64(g))
	for gi := 0; gi < g; gi++ {
		if b[gi] >= b[gi+1] {
			continue // empty group allowed at extremes
		}
		lo := pc[b[gi]].Norm()
		hi := pc[b[gi+1]-1].Norm()
		if hi/lo > wantRatio*1.2 {
			t.Fatalf("group %d ratio %.2f exceeds target %.2f", gi, hi/lo, wantRatio)
		}
	}
}

func TestGroupBoundariesDegenerate(t *testing.T) {
	// All points at one radius: equal-count fallback.
	pc := geom.PointCloud{{X: 5}, {X: 5}, {X: 5}, {X: 5}}
	b := groupBoundaries(normsOf(pc), 2)
	if b[0] != 0 || b[1] != 2 || b[2] != 4 {
		t.Fatalf("degenerate bounds = %v", b)
	}
	// Empty input.
	b = groupBoundaries(nil, 3)
	for _, v := range b {
		if v != 0 {
			t.Fatalf("empty bounds = %v", b)
		}
	}
	// Single group.
	pc2 := geom.PointCloud{{X: 1}, {X: 9}}
	b = groupBoundaries(normsOf(pc2), 1)
	if len(b) != 2 || b[1] != 2 {
		t.Fatalf("single group bounds = %v", b)
	}
}

func TestGroupBoundariesCoverAllPoints(t *testing.T) {
	var pc geom.PointCloud
	for r := 0; r < 777; r++ {
		pc = append(pc, geom.Point{X: 3 + float64(r)*0.15})
	}
	for _, g := range []int{1, 2, 3, 6, 10} {
		b := groupBoundaries(normsOf(pc), g)
		if b[0] != 0 || b[g] != len(pc) {
			t.Fatalf("g=%d: bounds do not span input: %v", g, b)
		}
		for i := 0; i < g; i++ {
			if b[i] > b[i+1] {
				t.Fatalf("g=%d: non-monotone bounds %v", g, b)
			}
		}
	}
}
