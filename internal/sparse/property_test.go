package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbgc/internal/geom"
)

// randomScanCloud builds a random but scan-structured cloud: rings of
// points at random elevations with random gaps, magnitudes, and noise —
// the kind of structure Organize expects, with adversarial parameters.
func randomScanCloud(rng *rand.Rand) geom.PointCloud {
	var pc geom.PointCloud
	rings := 1 + rng.Intn(12)
	for b := 0; b < rings; b++ {
		el := -0.4 + rng.Float64()*0.4
		r := 3 + rng.Float64()*80
		steps := 10 + rng.Intn(300)
		azStep := 2 * math.Pi / float64(steps)
		for a := 0; a < steps; a++ {
			if rng.Float64() < 0.2 {
				continue // gaps
			}
			rr := r + rng.NormFloat64()*(0.01+rng.Float64()*0.5)
			az := float64(a)*azStep + rng.NormFloat64()*azStep*0.1
			pc = append(pc, geom.ToCartesian(geom.Spherical{Theta: az, Phi: math.Pi/2 - el, R: rr}))
		}
	}
	return pc
}

// TestPropertyRoundTrip: for random scan clouds, random q, random options,
// the decoded points always match the encoder's mapping within √3·q, and
// no point is lost.
func TestPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		pc := randomScanCloud(rng)
		if len(pc) == 0 {
			continue
		}
		q := []float64{0.001, 0.005, 0.02, 0.1}[rng.Intn(4)]
		opts := Options{
			Q:                q,
			Groups:           1 + rng.Intn(4),
			UTheta:           0.001 + rng.Float64()*0.01,
			UPhi:             0.002 + rng.Float64()*0.02,
			DisableRadialOpt: rng.Intn(2) == 0,
		}
		idx := make([]int32, len(pc))
		for i := range idx {
			idx[i] = int32(i)
		}
		enc, err := Encode(pc, idx, opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(enc.DecodedOrder)+len(enc.OutlierIdx) != len(pc) {
			t.Fatalf("trial %d: %d+%d != %d points", trial, len(enc.DecodedOrder), len(enc.OutlierIdx), len(pc))
		}
		dec, err := Decode(enc.Data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(dec) != len(enc.DecodedOrder) {
			t.Fatalf("trial %d: decoded %d, order %d", trial, len(dec), len(enc.DecodedOrder))
		}
		bound := math.Sqrt(3) * q * 1.000001
		for j, oi := range enc.DecodedOrder {
			if d := pc[oi].Dist(dec[j]); d > bound {
				t.Fatalf("trial %d: point %d error %v > %v (q=%v groups=%d plain=%v)",
					trial, oi, d, bound, q, opts.Groups, opts.DisableRadialOpt)
			}
		}
	}
}

// TestPropertyDeterministic: compressing the same input twice yields
// identical bytes (required for the decoder-replay design).
func TestPropertyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pc := randomScanCloud(rng)
	idx := make([]int32, len(pc))
	for i := range idx {
		idx[i] = int32(i)
	}
	opts := Options{Q: 0.02, Groups: 3, UTheta: 0.003, UPhi: 0.007}
	a, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(pc, idx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Data) != string(b.Data) {
		t.Fatal("encoding is not deterministic")
	}
}

// TestPropertyQuantizer: quantize/dequantize stays within the bound for
// arbitrary spherical inputs.
func TestPropertyQuantizer(t *testing.T) {
	f := func(theta, phi, r, qRaw, rmaxRaw float64) bool {
		q := 0.0005 + math.Abs(math.Mod(qRaw, 0.1))
		rmax := 1 + math.Abs(math.Mod(rmaxRaw, 200))
		s := geom.Spherical{
			Theta: math.Abs(math.Mod(theta, 2*math.Pi)),
			Phi:   math.Abs(math.Mod(phi, math.Pi)),
			R:     math.Abs(math.Mod(r, rmax)),
		}
		qz := NewQuantizer(q, rmax)
		tq, pq, rq := qz.Quantize(s)
		back := qz.Dequantize(tq, pq, rq)
		// Per-dimension quantization errors within the scaled bounds.
		return math.Abs(back.Theta-s.Theta) <= qz.QTheta*1.0001 &&
			math.Abs(back.Phi-s.Phi) <= qz.QPhi*1.0001 &&
			math.Abs(back.R-s.R) <= qz.QR*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCartesianQuantizer mirrors the check for -Conversion mode.
func TestPropertyCartesianQuantizer(t *testing.T) {
	f := func(x, y, z, qRaw float64) bool {
		q := 0.0005 + math.Abs(math.Mod(qRaw, 0.1))
		p := geom.Point{X: math.Mod(x, 150), Y: math.Mod(y, 150), Z: math.Mod(z, 30)}
		cq := cartesianQuantizer{q: q}
		tx, ty, tz := cq.Quantize(p)
		back := cq.Dequantize(tx, ty, tz)
		return back.ChebDist(p) <= q*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeltaInts: deltaInts/undeltaInts are inverses for bounded
// magnitudes.
func TestPropertyDeltaInts(t *testing.T) {
	f := func(vs []int32) bool {
		in := make([]int64, len(vs))
		for i, v := range vs {
			in[i] = int64(v)
		}
		out := undeltaInts(deltaInts(in))
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRefsRoundTrip: the 4-symbol reference stream codec is
// lossless for arbitrary symbol sequences.
func TestPropertyRefsRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		refs := make([]int, len(raw))
		for i, b := range raw {
			refs[i] = int(b % 4)
		}
		dec, err := decompressRefs(appendCompressRefs(nil, refs), len(refs))
		if err != nil {
			return false
		}
		for i := range refs {
			if dec[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeflate: the Deflate helpers are lossless.
func TestPropertyDeflate(t *testing.T) {
	f := func(data []byte) bool {
		out, err := inflateBytes(deflateBytes(data))
		return err == nil && string(out) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
