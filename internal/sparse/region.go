package sparse

import (
	"encoding/binary"
	"fmt"
	"math"

	"dbgc/internal/geom"
	"dbgc/internal/varint"
)

// DecodeRadialRange decodes only the radial groups whose interval can
// intersect [rLo, rHi], skipping the others without entropy-decoding them.
// Groups are radial shells (each records its r_max; its lower edge is the
// previous group's r_max), so a bounding-box query culls most groups of a
// large frame. Cartesian-mode streams carry no radial structure and decode
// fully.
func DecodeRadialRange(data []byte, rLo, rHi float64) (geom.PointCloud, error) {
	flags, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("sparse: flags: %w", err)
	}
	data = data[used:]
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	q := math.Float64frombits(binary.LittleEndian.Uint64(data))
	data = data[8:]
	if !(q > 0) || math.IsInf(q, 0) {
		return nil, fmt.Errorf("%w: invalid error bound %v", ErrCorrupt, q)
	}
	gf := groupFlags{
		cartesian:  flags&flagCartesian != 0,
		plainDelta: flags&flagPlainDelta != 0,
		sharded:    flags&flagSharded != 0,
		blockpack:  flags&flagBlockPack != 0,
		ctx:        flags&flagContext != 0,
	}
	cartesian := gf.cartesian

	nGroups, used, err := varint.Uint(data)
	if err != nil {
		return nil, fmt.Errorf("sparse: group count: %w", err)
	}
	data = data[used:]
	if nGroups > 1024 {
		return nil, fmt.Errorf("%w: implausible group count %d", ErrCorrupt, nGroups)
	}
	var out geom.PointCloud
	prevRMax := 0.0
	for gi := uint64(0); gi < nGroups; gi++ {
		glen, used, err := varint.Uint(data)
		if err != nil {
			return nil, fmt.Errorf("sparse: group %d length: %w", gi, err)
		}
		data = data[used:]
		if glen > uint64(len(data)) {
			return nil, fmt.Errorf("%w: group %d truncated", ErrCorrupt, gi)
		}
		group := data[:glen]
		data = data[glen:]

		// Sharded (v3) and blockpacked (v4) groups carry a 4-byte CRC
		// before the payload; the rMax culling peek must look past it.
		body := group
		if gf.sharded || gf.blockpack {
			if len(body) < 4 {
				return nil, fmt.Errorf("%w: group %d shorter than its CRC", ErrCorrupt, gi)
			}
			body = body[4:]
		}
		if !cartesian && len(body) >= 8 {
			rMax := math.Float64frombits(binary.LittleEndian.Uint64(body))
			lo := prevRMax
			prevRMax = rMax
			// Quantization can nudge a point just past its group edge.
			slack := 2 * q
			if rMax+slack < rLo || lo-slack > rHi {
				continue // shell disjoint from the query interval
			}
		}
		pts, err := decodeGroupChecked(group, q, gf, nil)
		if err != nil {
			return nil, fmt.Errorf("sparse: group %d: %w", gi, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}
