// Package sparse implements DBGC's coordinate compression of sparse points
// (§3.5): coordinate scaling under the error bound (step 1, Theorem 3.2),
// per-polyline delta encoding of the angles (step 2), stream reorganization
// and concatenation (steps 3-5), Deflate-coded azimuthal streams (step 6),
// arithmetic-coded polar streams (step 7), the radial distance optimized
// delta encoding (step 8, Definition 3.3), and the output layout (step 9).
// Point grouping by radial distance (§3.5 "Point Grouping") wraps the whole
// pipeline.
package sparse

import (
	"math"

	"dbgc/internal/geom"
	"dbgc/internal/polyline"
)

// Quantizer performs coordinate scaling (§3.5 step 1): each spherical
// dimension is divided by twice its error bound and rounded, so the
// reconstruction error per dimension is at most the bound. Following
// Theorem 3.2, q_θ = q_φ = q_xyz / r_max and q_r = q_xyz, which keeps the
// Euclidean reconstruction error within the √3·q_xyz of the Cartesian
// scheme.
type Quantizer struct {
	QTheta, QPhi, QR float64
}

// NewQuantizer builds the quantizer for error bound q and the group's
// maximum radial distance rMax.
func NewQuantizer(q, rMax float64) Quantizer {
	if rMax < q {
		rMax = q // degenerate group hugging the sensor
	}
	return Quantizer{QTheta: q / rMax, QPhi: q / rMax, QR: q}
}

// Quantize scales and rounds spherical coordinates to integers.
func (qz Quantizer) Quantize(s geom.Spherical) (theta, phi, r int64) {
	return int64(math.Round(s.Theta / (2 * qz.QTheta))),
		int64(math.Round(s.Phi / (2 * qz.QPhi))),
		int64(math.Round(s.R / (2 * qz.QR)))
}

// Dequantize maps quantized integers back to spherical coordinates.
func (qz Quantizer) Dequantize(theta, phi, r int64) geom.Spherical {
	return geom.Spherical{
		Theta: float64(theta) * 2 * qz.QTheta,
		Phi:   float64(phi) * 2 * qz.QPhi,
		R:     float64(r) * 2 * qz.QR,
	}
}

// Cartesian returns the Cartesian position of a quantized point.
func (qz Quantizer) Cartesian(p polyline.Point) geom.Point {
	return geom.ToCartesian(qz.Dequantize(p.Theta, p.Phi, p.R))
}

// cartesianQuantizer is the -Conversion ablation (§4.3): polylines are
// organized and coded directly on scaled Cartesian coordinates, with
// (x, y, z) standing in for (θ, φ, r).
type cartesianQuantizer struct {
	q float64
}

func (cq cartesianQuantizer) Quantize(p geom.Point) (tx, ty, tz int64) {
	return int64(math.Round(p.X / (2 * cq.q))),
		int64(math.Round(p.Y / (2 * cq.q))),
		int64(math.Round(p.Z / (2 * cq.q)))
}

func (cq cartesianQuantizer) Dequantize(tx, ty, tz int64) geom.Point {
	return geom.Point{
		X: float64(tx) * 2 * cq.q,
		Y: float64(ty) * 2 * cq.q,
		Z: float64(tz) * 2 * cq.q,
	}
}

func (cq cartesianQuantizer) Cartesian(p polyline.Point) geom.Point {
	return cq.Dequantize(p.Theta, p.Phi, p.R)
}
