package sparse

import "dbgc/internal/polyline"

// Radial reference-point symbols recorded in L_ref when situation (2)(b)
// of §3.5 step 8 applies. The bottom-left point needs no symbol in
// situations (1) and (2)(a); in (2)(b) the chosen candidate is transmitted.
const (
	refBottomLeft = 0 // preceding point in the same polyline
	refUpperLeft  = 1 // rightmost consensus point left of θ_p
	refUpperRight = 2 // leftmost consensus point right of θ_p
	refUpperMid   = 3 // consensus point exactly at θ_p, when present
)

// refContext bundles what both coder sides know when the radial reference
// of point k of a line is determined: the consensus line and the preceding
// point's decoded radial value.
type refContext struct {
	cons polyline.Line
	thR  int64 // TH_r in quantized units
}

// headRef resolves the reference radial value for the head of line i
// (situation (1)): the rightmost consensus point left of the head, else
// the head of the preceding polyline, else zero for the very first line.
func headRef(ctx refContext, lines []polyline.Line, i int, theta int64) int64 {
	if ctx.cons != nil {
		if p, ok := polyline.SearchLeft(ctx.cons, theta); ok {
			return p.R
		}
	}
	if i > 0 {
		return lines[i-1].Head().R
	}
	return 0
}

// tailRefDecision captures the deterministic part of situation (2): which
// branch applies and, for (2)(b), the candidate radial values on offer.
type tailRefDecision struct {
	// needSymbol is true in situation (2)(b): the encoder must record
	// (and the decoder read) a reference symbol.
	needSymbol bool
	// candidates maps symbol → radial value; -1 marks absent candidates
	// (only refUpperMid can be absent when needSymbol is true).
	candidates [4]int64
	present    [4]bool
}

// classifyTail evaluates situations (2)(a) vs (2)(b) for a non-head point
// at azimuth theta whose bottom-left neighbor has radial value blR. The
// decision uses only previously decoded values, so the decompressor replays
// it exactly.
func classifyTail(ctx refContext, theta int64, blR int64) tailRefDecision {
	var d tailRefDecision
	d.candidates[refBottomLeft] = blR
	d.present[refBottomLeft] = true
	if ctx.cons == nil {
		return d
	}
	ul, okUL := polyline.SearchLeft(ctx.cons, theta)
	ur, okUR := polyline.SearchRight(ctx.cons, theta)
	if !okUL || !okUR {
		return d
	}
	if abs64(ul.R-ur.R) <= ctx.thR && abs64(ul.R-blR) <= ctx.thR && abs64(ur.R-blR) <= ctx.thR {
		// Situation (2)(a): locally flat scene; the bottom-left point is
		// the reference and nothing is recorded. (An averaged
		// bl/ul/ur reference was evaluated to suppress reference noise,
		// but the consensus neighbors sit at different azimuths, and on
		// sloped surfaces their bias costs more than the smoothing
		// saves.)
		return d
	}
	d.needSymbol = true
	d.candidates[refUpperLeft] = ul.R
	d.present[refUpperLeft] = true
	d.candidates[refUpperRight] = ur.R
	d.present[refUpperRight] = true
	if um, ok := polyline.SearchAt(ctx.cons, theta); ok {
		d.candidates[refUpperMid] = um.R
		d.present[refUpperMid] = true
	}
	return d
}

// choose picks the candidate whose radial value is nearest to r, breaking
// ties by the lowest symbol. Only the encoder calls this — the decoder
// reads the chosen symbol from L_ref.
func (d tailRefDecision) choose(r int64) int {
	best := -1
	var bestDist int64
	for sym := 0; sym < 4; sym++ {
		if !d.present[sym] {
			continue
		}
		dist := abs64(d.candidates[sym] - r)
		if best < 0 || dist < bestDist {
			best, bestDist = sym, dist
		}
	}
	return best
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
