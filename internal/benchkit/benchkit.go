// Package benchkit is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§4). Each experiment function
// returns structured rows; cmd/dbgc-bench renders them, and the root
// bench_test.go exercises the same code paths under testing.B.
//
// The paper evaluates on 1000 real frames per scene; this harness defaults
// to a handful of simulated frames per configuration (adjustable), which is
// enough to reproduce every reported trend.
package benchkit

import (
	"fmt"
	"math"
	"sync"

	"dbgc/internal/geom"
	"dbgc/internal/lidar"
)

// ErrorBounds are the q_xyz settings of Figures 9, 11, and 12: 0.06 cm to
// 2.0 cm.
var ErrorBounds = []float64{0.0006, 0.00125, 0.0025, 0.005, 0.01, 0.02}

// DefaultQ is the paper's running error bound: 2 cm, the measurement
// accuracy of the HDL-64E.
const DefaultQ = 0.02

var (
	frameMu    sync.Mutex
	frameCache = map[string]geom.PointCloud{}
)

// Frame returns a deterministic simulated frame for a scene. Frames are
// cached: experiments share them.
func Frame(kind lidar.SceneKind, seed int64) (geom.PointCloud, error) {
	key := fmt.Sprintf("%s/%d", kind, seed)
	frameMu.Lock()
	defer frameMu.Unlock()
	if pc, ok := frameCache[key]; ok {
		return pc, nil
	}
	scene, err := lidar.NewScene(kind, seed)
	if err != nil {
		return nil, err
	}
	pc := lidar.HDL64E().Simulate(scene, seed)
	frameCache[key] = pc
	return pc, nil
}

// Frames returns n deterministic frames of a scene (different layouts and
// capture seeds).
func Frames(kind lidar.SceneKind, n int) ([]geom.PointCloud, error) {
	out := make([]geom.PointCloud, n)
	for i := 0; i < n; i++ {
		pc, err := Frame(kind, int64(i+1))
		if err != nil {
			return nil, err
		}
		out[i] = pc
	}
	return out, nil
}

// Ratio is the paper's compression-ratio metric: raw size (12 bytes per
// point, §4.4) over compressed size.
func Ratio(numPoints, compressed int) float64 {
	if compressed == 0 {
		return 0
	}
	return float64(numPoints*12) / float64(compressed)
}

// BandwidthMbps is the paper's bandwidth metric (§4.1): 8·f·|B| bits per
// second for f frames per second, in megabits.
func BandwidthMbps(bytesPerFrame int, fps float64) float64 {
	return 8 * fps * float64(bytesPerFrame) / 1e6
}

// mean returns the arithmetic mean of vs (0 for empty).
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// sphereVolume returns the volume of a radius-r ball.
func sphereVolume(r float64) float64 { return 4.0 / 3.0 * math.Pi * r * r * r }
