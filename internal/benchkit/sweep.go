package benchkit

import (
	"bytes"
	"runtime"
	"time"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/stream"
)

// StageMs is a per-stage compression time breakdown in milliseconds,
// mirroring core.Stats: clustering (DEN), octree coding (OCT) with its
// entropy share (ENT), coordinate conversion (COR), point organization
// (ORG), sparse stream compression (SPA), outlier compression (OUT).
type StageMs struct {
	DEN float64 `json:"den_ms"`
	OCT float64 `json:"oct_ms"`
	ENT float64 `json:"ent_ms"`
	COR float64 `json:"cor_ms"`
	ORG float64 `json:"org_ms"`
	SPA float64 `json:"spa_ms"`
	OUT float64 `json:"out_ms"`
}

// SweepPoint is one cell of the GOMAXPROCS × workers grid: single-frame
// pack/unpack latency with the sharded parallel codec, the speedup against
// the grid's GOMAXPROCS=1 cell, streaming pipeline throughput with as many
// workers as cores, and where the compress time went.
type SweepPoint struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Workers    int `json:"workers"`

	CompressMs   float64 `json:"compress_ms"`
	DecompressMs float64 `json:"decompress_ms"`
	PackFPS      float64 `json:"pack_fps"`
	UnpackFPS    float64 `json:"unpack_fps"`

	CompressSpeedup   float64 `json:"compress_speedup_vs_g1"`
	DecompressSpeedup float64 `json:"decompress_speedup_vs_g1"`

	StreamPackFPS   float64 `json:"stream_pack_fps"`
	StreamUnpackFPS float64 `json:"stream_unpack_fps"`

	Stages StageMs `json:"stages"`
}

// SweepResult is the multi-core scaling experiment: the same sharded frame
// packed and unpacked at several GOMAXPROCS settings, with the shard
// overhead accounted against the legacy single-coder container.
type SweepResult struct {
	NumCPU         int     `json:"num_cpu"`
	Shards         int     `json:"shards"`
	PointsPerFrame int     `json:"points_per_frame"`
	FrameBytes     int     `json:"frame_bytes"`
	Ratio          float64 `json:"ratio"`

	// LegacyRatio and RatioDeltaPct report the sharding cost: the legacy
	// (Shards=1, v2) container ratio and the sharded container's relative
	// size drift in percent (positive = sharded is larger).
	LegacyRatio   float64 `json:"legacy_ratio"`
	RatioDeltaPct float64 `json:"ratio_delta_pct"`
	// ShardsOneIdentical confirms the compatibility contract measured on
	// this very frame: Shards=1 output is byte-identical to the legacy
	// container.
	ShardsOneIdentical bool `json:"shards_one_identical"`

	Sweep []SweepPoint `json:"sweep"`
}

// Sweep runs the GOMAXPROCS scaling experiment on the city scene at q:
// for each requested GOMAXPROCS value it re-times the sharded parallel
// pack/unpack path and the frame pipeline, restoring the runtime's
// original setting before returning. iters controls repetitions per
// timing. Points above runtime.NumCPU() are still measured — on a small
// host they document the plateau instead of extrapolating it.
func Sweep(q float64, shards int, procs []int, iters int) (SweepResult, error) {
	if iters < 1 {
		iters = 1
	}
	if len(procs) == 0 {
		procs = []int{1, 2, 4, 8}
	}
	res := SweepResult{NumCPU: runtime.NumCPU(), Shards: shards}
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return res, err
	}
	res.PointsPerFrame = len(pc)

	legacyOpts := dbgc.DefaultOptions(q)
	legacyData, _, err := dbgc.Compress(pc, legacyOpts)
	if err != nil {
		return res, err
	}
	res.LegacyRatio = Ratio(len(pc), len(legacyData))

	oneOpts := legacyOpts
	oneOpts.Shards = 1
	oneData, _, err := dbgc.Compress(pc, oneOpts)
	if err != nil {
		return res, err
	}
	res.ShardsOneIdentical = bytes.Equal(legacyData, oneData)

	opts := legacyOpts
	opts.Shards = shards
	opts.Parallel = true
	data, _, err := dbgc.Compress(pc, opts)
	if err != nil {
		return res, err
	}
	res.FrameBytes = len(data)
	res.Ratio = Ratio(len(pc), len(data))
	res.RatioDeltaPct = (float64(len(data))/float64(len(legacyData)) - 1) * 100

	const nFrames = 4
	clouds, err := Frames(lidar.City, nFrames)
	if err != nil {
		return res, err
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, g := range procs {
		if g < 1 {
			continue
		}
		runtime.GOMAXPROCS(g)
		pt := SweepPoint{GOMAXPROCS: g, Workers: g}

		d, _, err := timeOp(iters, func() error {
			_, _, err := dbgc.Compress(pc, opts)
			return err
		})
		if err != nil {
			return res, err
		}
		pt.CompressMs = d.Seconds() * 1e3
		pt.PackFPS = 1 / d.Seconds()

		d, _, err = timeOp(iters, func() error {
			_, err := dbgc.DecompressWith(data, dbgc.DecompressOptions{Parallel: true})
			return err
		})
		if err != nil {
			return res, err
		}
		pt.DecompressMs = d.Seconds() * 1e3
		pt.UnpackFPS = 1 / d.Seconds()

		_, stats, err := dbgc.Compress(pc, opts)
		if err != nil {
			return res, err
		}
		ms := func(t time.Duration) float64 { return t.Seconds() * 1e3 }
		pt.Stages = StageMs{
			DEN: ms(stats.DEN), OCT: ms(stats.OCT), ENT: ms(stats.ENT),
			COR: ms(stats.COR), ORG: ms(stats.ORG), SPA: ms(stats.SPA),
			OUT: ms(stats.OUT),
		}

		if pt.StreamPackFPS, pt.StreamUnpackFPS, err = streamFPS(clouds, opts, g); err != nil {
			return res, err
		}
		res.Sweep = append(res.Sweep, pt)
	}
	if len(res.Sweep) > 0 {
		base := res.Sweep[0]
		for i := range res.Sweep {
			if res.Sweep[i].CompressMs > 0 {
				res.Sweep[i].CompressSpeedup = base.CompressMs / res.Sweep[i].CompressMs
			}
			if res.Sweep[i].DecompressMs > 0 {
				res.Sweep[i].DecompressSpeedup = base.DecompressMs / res.Sweep[i].DecompressMs
			}
		}
	}
	return res, nil
}

// streamFPS packs and re-reads a short all-I stream with workers pipeline
// workers, returning end-to-end frames per second for both directions.
func streamFPS(clouds []dbgc.PointCloud, opts dbgc.Options, workers int) (packFPS, unpackFPS float64, err error) {
	n := float64(len(clouds))
	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, opts, 10)
	if err != nil {
		return 0, 0, err
	}
	if workers > 1 {
		if err := w.EnablePipeline(workers); err != nil {
			return 0, 0, err
		}
	}
	t0 := time.Now()
	for _, c := range clouds {
		if _, err := w.WriteFrame(c, nil); err != nil {
			return 0, 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, 0, err
	}
	packFPS = n / time.Since(t0).Seconds()

	r, err := stream.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return 0, 0, err
	}
	if workers > 1 {
		if err := r.EnablePipeline(workers); err != nil {
			return 0, 0, err
		}
	}
	t0 = time.Now()
	for range clouds {
		if _, err := r.ReadFrame(); err != nil {
			return 0, 0, err
		}
	}
	unpackFPS = n / time.Since(t0).Seconds()
	return packFPS, unpackFPS, nil
}
