package benchkit

import (
	"math"
	"testing"

	"dbgc/internal/lidar"
)

func TestFrameCaching(t *testing.T) {
	a, err := Frame(lidar.Road, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Frame(lidar.Road, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("cached frame not reused")
	}
	c, err := Frame(lidar.Road, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == 0 || &c[0] == &a[0] {
		t.Fatal("different seed returned the same frame")
	}
	if _, err := Frame("nope", 1); err == nil {
		t.Fatal("unknown scene accepted")
	}
}

func TestFrames(t *testing.T) {
	fs, err := Frames(lidar.Road, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("got %d frames", len(fs))
	}
	if len(fs[0]) == 0 || len(fs[1]) == 0 {
		t.Fatal("empty frame")
	}
}

func TestRatioAndBandwidth(t *testing.T) {
	if r := Ratio(1000, 600); math.Abs(r-20) > 1e-12 {
		t.Fatalf("Ratio = %v, want 20", r)
	}
	if r := Ratio(10, 0); r != 0 {
		t.Fatalf("Ratio with zero bytes = %v", r)
	}
	// 75 kB per frame at 10 fps = 6 Mbps.
	if b := BandwidthMbps(75000, 10); math.Abs(b-6) > 1e-12 {
		t.Fatalf("BandwidthMbps = %v, want 6", b)
	}
}

func TestFig3SmallRadii(t *testing.T) {
	rows, err := Fig3(DefaultQ, []float64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Ratio <= rows[1].Ratio {
		t.Fatalf("octree ratio should fall with radius: %.2f vs %.2f", rows[0].Ratio, rows[1].Ratio)
	}
	if rows[0].Density <= rows[1].Density {
		t.Fatalf("density should fall with radius")
	}
}

func TestFig10ClusteredNearOptimum(t *testing.T) {
	rows, clustered, err := Fig10(DefaultQ, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, r := range rows {
		if r.Ratio > best {
			best = r.Ratio
		}
	}
	if clustered < 0.9*best {
		t.Fatalf("clustered split ratio %.2f far below manual best %.2f", clustered, best)
	}
}

func TestTemporalExperiment(t *testing.T) {
	res, err := Temporal(lidar.Road, 3, DefaultQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 3 {
		t.Fatalf("got %d frame rows", len(res.Frames))
	}
	if res.Frames[0].Predicted || !res.Frames[1].Predicted {
		t.Fatal("frame kinds wrong")
	}
	if res.Gain < 1 {
		t.Errorf("temporal mode should not be larger than all-I on a static scene: gain %.2f", res.Gain)
	}
}
