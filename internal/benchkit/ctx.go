package benchkit

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"dbgc/internal/arith"
	"dbgc/internal/core"
	"dbgc/internal/ctxmodel"
	"dbgc/internal/geom"
	"dbgc/internal/lidar"
	"dbgc/internal/octree"
	"dbgc/internal/sparse"
)

// CtxFeature is one context-feature combination's occupancy-stream row: the
// ctxmodel coder with that feature set against the legacy order-0 coder on
// the city frame's real dense occupancy stream.
type CtxFeature struct {
	Features string `json:"features"`
	Contexts int    `json:"contexts"`

	LegacyBytes int `json:"legacy_bytes"`
	CtxBytes    int `json:"ctx_bytes"`
	// BytesDeltaPct is the context coder's size drift in percent, negative
	// when the context split wins.
	BytesDeltaPct float64 `json:"bytes_delta_pct"`

	EncNs float64 `json:"ctx_encode_ns"`
	DecNs float64 `json:"ctx_decode_ns"`
}

// CtxFrame is one whole-frame container configuration of the v5 dialect
// matrix: each base dialect (plain, sharded, blockpack) with and without the
// context model, with sizes, ratio, round-trip times, and the v5 invariants
// (parallel byte identity, guard bound, decode equivalence).
type CtxFrame struct {
	Config    string `json:"config"`
	Version   int    `json:"emitted_version"`
	Shards    int    `json:"shards"`
	BlockPack bool   `json:"blockpack"`
	Context   bool   `json:"context"`

	Bytes        int     `json:"bytes"`
	Ratio        float64 `json:"ratio"`
	CompressMs   float64 `json:"compress_ms"`
	DecompressMs float64 `json:"decompress_ms"`
	UnpackFPS    float64 `json:"unpack_fps"`
	// StreamUnpackFPS is the pipelined store unpack throughput (the sweep
	// experiment's stream-unpack metric): frames decode concurrently, so the
	// sequential context-occupancy pass overlaps across frames instead of
	// gating the stream.
	StreamUnpackFPS float64 `json:"stream_unpack_fps"`

	// DeltaVsBasePct is the size drift against the same dialect without the
	// context model, in percent; negative means the context model wins.
	DeltaVsBasePct float64 `json:"delta_vs_base_pct"`
	// DecodeDeltaPct is the single-frame decompress-latency drift against
	// the same dialect without the context model, in percent.
	DecodeDeltaPct float64 `json:"decode_delta_pct"`
	// StreamUnpackDeltaPct is the pipelined unpack-throughput drift against
	// the same dialect, in percent (negative means the context model is
	// slower); the 15% acceptance bound is taken on this, the shipped
	// unpack path.
	StreamUnpackDeltaPct float64 `json:"stream_unpack_delta_pct"`
	// ParallelIdentical reports that the parallel encode of this
	// configuration is byte-identical to the serial one.
	ParallelIdentical bool `json:"parallel_identical"`
	RoundTripOK       bool `json:"round_trip_ok"`
}

// CtxResult is the `-exp ctx` ablation (BENCH_10): the context-feature
// occupancy sweep, the sparse-section context gain, and the container
// dialect matrix with the v5 acceptance checks.
type CtxResult struct {
	Scene  string  `json:"scene"`
	Q      float64 `json:"q"`
	Points int     `json:"points"`
	Iters  int     `json:"iters"`

	Features []CtxFeature `json:"features"`

	// SparseLegacyBytes/SparseCtxBytes size the sparse section of the city
	// frame without and with the per-group context streams.
	SparseLegacyBytes int     `json:"sparse_legacy_bytes"`
	SparseCtxBytes    int     `json:"sparse_ctx_bytes"`
	SparseDeltaPct    float64 `json:"sparse_delta_pct"`

	Frames []CtxFrame `json:"frames"`

	// CtxRatio is the headline city-frame ratio with ContextModel on the
	// default dialect; PlateauBroken reports it beats the 20.5 plateau the
	// pre-v5 containers sat at.
	CtxRatio      float64 `json:"ctx_ratio"`
	PlateauBroken bool    `json:"plateau_broken"`
	// GuardOK reports that no context configuration grew its frame past the
	// base dialect plus the per-stream marker bytes.
	GuardOK bool `json:"guard_ok"`
	// UnpackWithin15Pct reports that every context configuration's pipelined
	// unpack throughput is within 15% of its base dialect's.
	UnpackWithin15Pct bool `json:"unpack_within_15_pct"`
}

// ctxFeatureSets is the ablation sweep: each named feature subset of the
// context index.
var ctxFeatureSets = []struct {
	name  string
	feats ctxmodel.Features
}{
	{"none (order-0)", 0},
	{"octant", ctxmodel.FeatOctant},
	{"parent", ctxmodel.FeatParent},
	{"octant+parent (default)", ctxmodel.DefaultFeatures},
	{"octant+parent+sibling", ctxmodel.DefaultFeatures | ctxmodel.FeatSibling},
	{"octant+parent+depth", ctxmodel.DefaultFeatures | ctxmodel.FeatDepth},
	{"all", ctxmodel.FeatAll},
}

// Ctx runs the context-modeling ablation on the city frame at q: the
// feature sweep over the real dense occupancy stream, the sparse-section
// comparison, and the v5 container dialect matrix. iters controls timing
// repetitions.
func Ctx(q float64, iters int) (CtxResult, error) {
	if iters < 1 {
		iters = 1
	}
	res := CtxResult{Scene: "city", Q: q, Iters: iters}
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return res, err
	}
	res.Points = len(pc)

	// Feature sweep over the dense occupancy stream exactly as the encoder
	// sees it.
	opts := core.DefaultOptions(q)
	denseIdx, sparseIdx := core.SplitPoints(pc, opts)
	dense := subCloud(pc, denseIdx)
	occ, depth, err := octree.CollectOccupancy(dense, q)
	if err != nil {
		return res, fmt.Errorf("octree occupancy: %w", err)
	}
	legacy := arithCodes(occ)
	for _, fs := range ctxFeatureSets {
		row := CtxFeature{Features: fs.name, Contexts: fs.feats.Contexts(), LegacyBytes: len(legacy)}
		var stream []byte
		start := time.Now()
		for i := 0; i < iters; i++ {
			stream = ctxmodel.AppendOcc(nil, occ, depth, fs.feats, 1, false)
		}
		row.EncNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
		row.CtxBytes = len(stream)
		row.BytesDeltaPct = 100 * (float64(len(stream)) - float64(len(legacy))) / float64(len(legacy))
		start = time.Now()
		for i := 0; i < iters; i++ {
			got, err := ctxmodel.DecodeOcc(stream, len(occ), depth, nil)
			if err != nil {
				return res, fmt.Errorf("%s: decode: %w", fs.name, err)
			}
			if i == 0 && !bytes.Equal(got, occ) {
				return res, fmt.Errorf("%s: occupancy round trip mismatch", fs.name)
			}
		}
		row.DecNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
		res.Features = append(res.Features, row)
	}

	// Sparse section with and without the context streams.
	sOpts := sparse.Options{Q: q, Groups: opts.Groups, UTheta: opts.UTheta, UPhi: opts.UPhi}
	sLegacy, err := sparse.Encode(pc, sparseIdx, sOpts)
	if err != nil {
		return res, fmt.Errorf("sparse legacy: %w", err)
	}
	sOpts.Context = true
	sCtx, err := sparse.Encode(pc, sparseIdx, sOpts)
	if err != nil {
		return res, fmt.Errorf("sparse ctx: %w", err)
	}
	res.SparseLegacyBytes = len(sLegacy.Data)
	res.SparseCtxBytes = len(sCtx.Data)
	if res.SparseLegacyBytes > 0 {
		res.SparseDeltaPct = 100 * (float64(res.SparseCtxBytes) - float64(res.SparseLegacyBytes)) / float64(res.SparseLegacyBytes)
	}

	frames, err := ctxFrames(pc, q, iters)
	if err != nil {
		return res, err
	}
	res.Frames = frames

	res.GuardOK = true
	res.UnpackWithin15Pct = true
	base := map[string]CtxFrame{}
	for i := range frames {
		f := &frames[i]
		key := fmt.Sprintf("s%d-bp%v", f.Shards, f.BlockPack)
		if !f.Context {
			base[key] = *f
			continue
		}
		b, ok := base[key]
		if !ok {
			continue
		}
		f.DeltaVsBasePct = 100 * (float64(f.Bytes) - float64(b.Bytes)) / float64(b.Bytes)
		if b.DecompressMs > 0 {
			f.DecodeDeltaPct = 100 * (f.DecompressMs - b.DecompressMs) / b.DecompressMs
		}
		// The guard bound: one dialect byte plus at most one method marker
		// per guarded stream.
		if f.Bytes > b.Bytes+16 {
			res.GuardOK = false
		}
		if b.StreamUnpackFPS > 0 {
			f.StreamUnpackDeltaPct = 100 * (f.StreamUnpackFPS - b.StreamUnpackFPS) / b.StreamUnpackFPS
		}
		if f.StreamUnpackDeltaPct < -15 {
			res.UnpackWithin15Pct = false
		}
		if !f.RoundTripOK || !f.ParallelIdentical {
			res.GuardOK = false
		}
		if f.Shards == 0 && !f.BlockPack {
			res.CtxRatio = f.Ratio
		}
	}
	res.PlateauBroken = res.CtxRatio > 20.5
	res.Frames = frames
	return res, nil
}

// arithCodes codes the occupancy stream with the legacy order-0 adaptive
// coder, the pre-v5 baseline the feature sweep compares against.
func arithCodes(occ []byte) []byte {
	return arith.AppendCompressCodesSharded(nil, occ, 256, 1, false)
}

// ctxStreamFrames is how many copies of the frame flow through the
// pipelined stream when measuring unpack throughput.
const ctxStreamFrames = 8

func ctxStreamWorkers() int {
	if n := runtime.NumCPU(); n < 8 {
		return n
	}
	return 8
}

// ctxFrames sizes and times the v5 dialect matrix on the frame.
func ctxFrames(pc geom.PointCloud, q float64, iters int) ([]CtxFrame, error) {
	want, err := core.Decompress(mustCompress(pc, q, 1, false))
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name      string
		shards    int
		blockpack bool
		context   bool
	}{
		{"v2 (plain)", 0, false, false},
		{"v5 (ctx)", 0, false, true},
		{"v3 (sharded)", 8, false, false},
		{"v5 (ctx, sharded)", 8, false, true},
		{"v4 (blockpack, guarded, sharded)", 8, true, false},
		{"v5 (ctx, blockpack, guarded, sharded)", 8, true, true},
	}
	frames := make([]CtxFrame, 0, len(configs))
	for _, cfg := range configs {
		opts := core.DefaultOptions(q)
		opts.Shards = cfg.shards
		opts.BlockPack = cfg.blockpack
		opts.ContextModel = cfg.context
		// Single-iteration minima: on a loaded (or single-core) host the
		// mean smears scheduler noise over every configuration, the minimum
		// is the honest cost.
		var data []byte
		compressMs := 0.0
		for i := 0; i < iters; i++ {
			start := time.Now()
			if data, _, err = core.Compress(pc, opts); err != nil {
				return nil, err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; i == 0 || ms < compressMs {
				compressMs = ms
			}
		}
		popts := opts
		popts.Parallel = true
		pdata, _, err := core.Compress(pc, popts)
		if err != nil {
			return nil, err
		}
		// Unpack timing uses the parallel decode path: that is what the
		// pipeline runs, and the acceptance bound compares against the base
		// dialect decoded the same way.
		var got geom.PointCloud
		if got, err = core.DecompressWith(data, core.DecompressOptions{Parallel: true}); err != nil {
			return nil, err
		}
		decompressMs := 0.0
		for i := 0; i < iters; i++ {
			start := time.Now()
			if got, err = core.DecompressWith(data, core.DecompressOptions{Parallel: true}); err != nil {
				return nil, err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1000; i == 0 || ms < decompressMs {
				decompressMs = ms
			}
		}
		f := CtxFrame{
			Config: cfg.name, Version: int(data[4]), Shards: cfg.shards,
			BlockPack: cfg.blockpack, Context: cfg.context,
			Bytes: len(data), Ratio: Ratio(len(pc), len(data)),
			CompressMs: compressMs, DecompressMs: decompressMs,
			ParallelIdentical: bytes.Equal(data, pdata),
			RoundTripOK:       cloudsMatch(want, got),
		}
		if decompressMs > 0 {
			f.UnpackFPS = 1000 / decompressMs
		}
		clouds := make([]geom.PointCloud, ctxStreamFrames)
		for i := range clouds {
			clouds[i] = pc
		}
		for rep := 0; rep < 2; rep++ {
			_, fps, err := streamFPS(clouds, opts, ctxStreamWorkers())
			if err != nil {
				return nil, err
			}
			if fps > f.StreamUnpackFPS {
				f.StreamUnpackFPS = fps
			}
		}
		frames = append(frames, f)
	}
	return frames, nil
}
