package benchkit

import (
	"bytes"
	"fmt"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/stream"
)

// TemporalRow is one frame of the stream-extension experiment.
type TemporalRow struct {
	Seq       int
	Predicted bool
	Bytes     int
	Ratio     float64
}

// TemporalResult compares per-frame (all-I) and temporal (I+P) stream
// compression of a static capture — the stream composition the paper's
// introduction anticipates.
type TemporalResult struct {
	Frames        []TemporalRow
	PlainBytes    int
	TemporalBytes int
	// Gain is PlainBytes / TemporalBytes.
	Gain float64
}

// Temporal runs the stream extension experiment: a static scene captured
// repeatedly, compressed with and without P-frame prediction.
func Temporal(kind lidar.SceneKind, frames int, q float64) (TemporalResult, error) {
	scene, err := lidar.NewScene(kind, 31)
	if err != nil {
		return TemporalResult{}, err
	}
	cfg := lidar.HDL64E()
	capture := make([]dbgc.PointCloud, frames)
	for i := range capture {
		capture[i] = cfg.Simulate(scene, int64(i+1))
	}

	write := func(interval int) (int, []TemporalRow, error) {
		var buf bytes.Buffer
		w, err := stream.NewWriter(&buf, dbgc.DefaultOptions(q), cfg.FramesPerSecond)
		if err != nil {
			return 0, nil, err
		}
		if interval >= 2 {
			if err := w.EnableTemporal(interval); err != nil {
				return 0, nil, err
			}
		}
		var rows []TemporalRow
		for i, pc := range capture {
			fs, err := w.WriteFrame(pc, nil)
			if err != nil {
				return 0, nil, fmt.Errorf("frame %d: %w", i, err)
			}
			rows = append(rows, TemporalRow{Seq: i, Predicted: fs.Predicted, Bytes: fs.GeometryBytes, Ratio: fs.Ratio})
		}
		if err := w.Close(); err != nil {
			return 0, nil, err
		}
		return buf.Len(), rows, nil
	}

	var res TemporalResult
	plain, _, err := write(0)
	if err != nil {
		return res, err
	}
	temporal, rows, err := write(frames)
	if err != nil {
		return res, err
	}
	res.Frames = rows
	res.PlainBytes = plain
	res.TemporalBytes = temporal
	if temporal > 0 {
		res.Gain = float64(plain) / float64(temporal)
	}
	return res, nil
}
