package benchkit

import (
	"bytes"
	"runtime"
	"time"

	"dbgc"
	"dbgc/internal/lidar"
	"dbgc/internal/stream"
)

// PerfResult reports the performance-architecture experiment: parallel
// decode speedup, per-decode allocation counts (scratch reuse), and frame
// pipeline throughput. All numbers are honest about the machine — NumCPU
// records the cores actually available and GOMAXPROCS what the runtime was
// allowed to use, and on a single-core host the parallel paths are
// expected to land near 1.0x.
type PerfResult struct {
	NumCPU         int     `json:"num_cpu"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	PointsPerFrame int     `json:"points_per_frame"`
	FrameBytes     int     `json:"frame_bytes"`
	Ratio          float64 `json:"ratio"`

	SerialDecodeMs   float64 `json:"serial_decode_ms"`
	ParallelDecodeMs float64 `json:"parallel_decode_ms"`
	DecodeSpeedup    float64 `json:"decode_speedup"`

	SerialDecodeAllocs   float64 `json:"serial_decode_allocs"`
	ParallelDecodeAllocs float64 `json:"parallel_decode_allocs"`

	SerialCompressMs   float64 `json:"serial_compress_ms"`
	ParallelCompressMs float64 `json:"parallel_compress_ms"`
	CompressSpeedup    float64 `json:"compress_speedup"`

	// Encode experiment: steady-state reusable-Encoder timings and per-op
	// allocation counts, plus byte-identity of the parallel encoding.
	SerialCompressAllocs  float64 `json:"serial_compress_allocs"`
	EncoderCompressMs     float64 `json:"encoder_compress_ms"`
	EncoderCompressAllocs float64 `json:"encoder_compress_allocs"`
	CompressIdentical     bool    `json:"compress_identical"`

	PipelineFrames    int     `json:"pipeline_frames"`
	PipelineWorkers   int     `json:"pipeline_workers"`
	SerialPackFPS     float64 `json:"serial_pack_fps"`
	PipelinedPackFPS  float64 `json:"pipelined_pack_fps"`
	SerialReadFPS     float64 `json:"serial_read_fps"`
	PipelinedReadFPS  float64 `json:"pipelined_read_fps"`
	PipelineIdentical bool    `json:"pipeline_identical"`
}

// timeOp runs fn iters times and returns (per-op duration, per-op mallocs).
func timeOp(iters int, fn func() error) (time.Duration, float64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, 0, err
		}
	}
	d := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return d / time.Duration(iters), float64(m1.Mallocs-m0.Mallocs) / float64(iters), nil
}

// Perf measures the parallel decode path, scratch-reuse allocation counts,
// and the frame pipeline, on the city scene at q. iters controls the
// repetitions per measurement (at least 1).
func Perf(q float64, iters int) (PerfResult, error) {
	if iters < 1 {
		iters = 1
	}
	res := PerfResult{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return res, err
	}
	res.PointsPerFrame = len(pc)

	opts := dbgc.DefaultOptions(q)
	data, stats, err := dbgc.Compress(pc, opts)
	if err != nil {
		return res, err
	}
	res.FrameBytes = len(data)
	res.Ratio = stats.CompressionRatio()

	// Decode: serial vs parallel, with per-op allocation counts.
	d, allocs, err := timeOp(iters, func() error {
		_, err := dbgc.Decompress(data)
		return err
	})
	if err != nil {
		return res, err
	}
	res.SerialDecodeMs = d.Seconds() * 1e3
	res.SerialDecodeAllocs = allocs
	d, allocs, err = timeOp(iters, func() error {
		_, err := dbgc.DecompressWith(data, dbgc.DecompressOptions{Parallel: true})
		return err
	})
	if err != nil {
		return res, err
	}
	res.ParallelDecodeMs = d.Seconds() * 1e3
	res.ParallelDecodeAllocs = allocs
	if res.ParallelDecodeMs > 0 {
		res.DecodeSpeedup = res.SerialDecodeMs / res.ParallelDecodeMs
	}

	// Compress: serial vs parallel options.
	d, allocs, err = timeOp(iters, func() error {
		_, _, err := dbgc.Compress(pc, opts)
		return err
	})
	if err != nil {
		return res, err
	}
	res.SerialCompressMs = d.Seconds() * 1e3
	res.SerialCompressAllocs = allocs
	popts := opts
	popts.Parallel = true
	d, _, err = timeOp(iters, func() error {
		_, _, err := dbgc.Compress(pc, popts)
		return err
	})
	if err != nil {
		return res, err
	}
	res.ParallelCompressMs = d.Seconds() * 1e3
	if res.ParallelCompressMs > 0 {
		res.CompressSpeedup = res.SerialCompressMs / res.ParallelCompressMs
	}
	pdata, _, err := dbgc.Compress(pc, popts)
	if err != nil {
		return res, err
	}
	res.CompressIdentical = bytes.Equal(data, pdata)

	// Steady-state reusable Encoder: same serial options, scratch kept
	// across frames.
	enc := dbgc.NewEncoder(opts)
	if _, _, err := enc.Compress(pc); err != nil { // warm the scratch
		return res, err
	}
	d, allocs, err = timeOp(iters, func() error {
		_, _, err := enc.Compress(pc)
		return err
	})
	if err != nil {
		return res, err
	}
	res.EncoderCompressMs = d.Seconds() * 1e3
	res.EncoderCompressAllocs = allocs

	// Frame pipeline: pack and read a short all-I stream serially and
	// pipelined, reporting frames per second end to end.
	const nFrames = 4
	res.PipelineFrames = nFrames
	res.PipelineWorkers = res.GOMAXPROCS
	clouds, err := Frames(lidar.City, nFrames)
	if err != nil {
		return res, err
	}
	pack := func(workers int) ([]byte, float64, error) {
		var buf bytes.Buffer
		w, err := stream.NewWriter(&buf, opts, 10)
		if err != nil {
			return nil, 0, err
		}
		if workers > 1 {
			if err := w.EnablePipeline(workers); err != nil {
				return nil, 0, err
			}
		}
		t0 := time.Now()
		for _, c := range clouds {
			if _, err := w.WriteFrame(c, nil); err != nil {
				return nil, 0, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, 0, err
		}
		return buf.Bytes(), nFrames / time.Since(t0).Seconds(), nil
	}
	serialPack, fps, err := pack(1)
	if err != nil {
		return res, err
	}
	res.SerialPackFPS = fps
	pipedPack, fps, err := pack(res.PipelineWorkers)
	if err != nil {
		return res, err
	}
	res.PipelinedPackFPS = fps
	res.PipelineIdentical = bytes.Equal(serialPack, pipedPack)

	read := func(workers int) (float64, error) {
		r, err := stream.NewReader(bytes.NewReader(serialPack))
		if err != nil {
			return 0, err
		}
		if workers > 1 {
			if err := r.EnablePipeline(workers); err != nil {
				return 0, err
			}
		}
		t0 := time.Now()
		for i := 0; i < nFrames; i++ {
			if _, err := r.ReadFrame(); err != nil {
				return 0, err
			}
		}
		return nFrames / time.Since(t0).Seconds(), nil
	}
	if res.SerialReadFPS, err = read(1); err != nil {
		return res, err
	}
	if res.PipelinedReadFPS, err = read(res.PipelineWorkers); err != nil {
		return res, err
	}
	return res, nil
}
