package benchkit

import (
	"fmt"
	"runtime"
	"time"

	"dbgc"
	"dbgc/internal/cluster"
	"dbgc/internal/core"
	"dbgc/internal/geom"
	"dbgc/internal/lidar"
	"dbgc/internal/octree"
)

// Fig3Row is one radius step of Figure 3: octree compression ratio (a) and
// point density (b) for the concentric-sphere subsets of a city frame.
type Fig3Row struct {
	Radius  float64 // sphere radius in meters
	Points  int
	Ratio   float64 // octree compression ratio
	Density float64 // points per cubic meter
}

// Fig3 reproduces Figure 3: compress concentric subsets of a city frame
// with the octree at q and report ratio and density per radius.
func Fig3(q float64, radii []float64) ([]Fig3Row, error) {
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig3Row, 0, len(radii))
	for _, r := range radii {
		var sub geom.PointCloud
		for _, p := range pc {
			if p.Norm() <= r {
				sub = append(sub, p)
			}
		}
		if len(sub) == 0 {
			continue
		}
		enc, err := octree.Encode(sub, q)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{
			Radius:  r,
			Points:  len(sub),
			Ratio:   Ratio(len(sub), len(enc.Data)),
			Density: float64(len(sub)) / sphereVolume(r),
		})
	}
	return rows, nil
}

// Fig9Row is one (scene, codec, q) cell of Figure 9.
type Fig9Row struct {
	Scene lidar.SceneKind
	Codec string
	Q     float64
	Ratio float64 // mean compression ratio over frames
	Mbps  float64 // bandwidth requirement at 10 fps
}

// Fig9 reproduces Figure 9: mean compression ratio of every codec on every
// scene across the error bounds.
func Fig9(scenes []lidar.SceneKind, qs []float64, framesPerScene int) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, scene := range scenes {
		frames, err := Frames(scene, framesPerScene)
		if err != nil {
			return nil, err
		}
		for _, codec := range dbgc.Codecs() {
			for _, q := range qs {
				var ratios, mbps []float64
				for _, pc := range frames {
					data, err := codec.Compress(pc, q)
					if err != nil {
						return nil, fmt.Errorf("%s on %s: %w", codec.Name(), scene, err)
					}
					ratios = append(ratios, Ratio(len(pc), len(data)))
					mbps = append(mbps, BandwidthMbps(len(data), 10))
				}
				rows = append(rows, Fig9Row{
					Scene: scene, Codec: codec.Name(), Q: q,
					Ratio: mean(ratios), Mbps: mean(mbps),
				})
			}
		}
	}
	return rows, nil
}

// Fig10Row is one manual-split point of Figure 10.
type Fig10Row struct {
	OctreeFraction float64 // fraction of nearest points sent to the octree
	Ratio          float64
}

// Fig10 reproduces Figure 10: compression ratio as the percentage of
// points coded by the octree is forced from 0% to 100%, plus the ratio the
// density-based clustering split achieves (returned separately).
func Fig10(q float64, fractions []float64) (rows []Fig10Row, clustered float64, err error) {
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return nil, 0, err
	}
	for _, f := range fractions {
		opts := core.DefaultOptions(q)
		opts.ForceOctreeFraction = f
		data, _, err := core.Compress(pc, opts)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, Fig10Row{OctreeFraction: f, Ratio: Ratio(len(pc), len(data))})
	}
	data, _, err := core.Compress(pc, core.DefaultOptions(q))
	if err != nil {
		return nil, 0, err
	}
	return rows, Ratio(len(pc), len(data)), nil
}

// Fig11Row is one (variant, q) cell of Figure 11.
type Fig11Row struct {
	Variant string
	Q       float64
	Ratio   float64
	// RelativeToFull is this variant's ratio divided by full DBGC's at
	// the same q (the paper reports -Radial ≈ 88%, -Group ≈ 85%,
	// -Conversion ≈ 29% on average).
	RelativeToFull float64
}

// Fig11 reproduces Figure 11: the -Radial, -Group, and -Conversion
// ablations against full DBGC on the campus scene.
func Fig11(qs []float64, framesPerScene int) ([]Fig11Row, error) {
	frames, err := Frames(lidar.Campus, framesPerScene)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name string
		mod  func(*core.Options)
	}{
		{"DBGC", func(o *core.Options) {}},
		{"-Radial", func(o *core.Options) { o.DisableRadialOpt = true }},
		{"-Group", func(o *core.Options) { o.Groups = 1 }},
		{"-Conversion", func(o *core.Options) { o.CartesianPolylines = true }},
	}
	var rows []Fig11Row
	full := map[float64]float64{}
	for _, v := range variants {
		for _, q := range qs {
			var ratios []float64
			for _, pc := range frames {
				opts := core.DefaultOptions(q)
				v.mod(&opts)
				data, _, err := core.Compress(pc, opts)
				if err != nil {
					return nil, fmt.Errorf("%s at q=%v: %w", v.name, q, err)
				}
				ratios = append(ratios, Ratio(len(pc), len(data)))
			}
			r := mean(ratios)
			if v.name == "DBGC" {
				full[q] = r
			}
			rel := 0.0
			if f := full[q]; f > 0 {
				rel = r / f
			}
			rows = append(rows, Fig11Row{Variant: v.name, Q: q, Ratio: r, RelativeToFull: rel})
		}
	}
	return rows, nil
}

// Table2Row is one (outlier mode, scene) cell of Table 2.
type Table2Row struct {
	Mode  string
	Scene lidar.SceneKind
	Ratio float64
}

// Table2 reproduces Table 2: quadtree vs octree vs uncompressed outlier
// handling across the four KITTI scenes at q.
func Table2(q float64, framesPerScene int) ([]Table2Row, error) {
	scenes := []lidar.SceneKind{lidar.Campus, lidar.City, lidar.Residential, lidar.Road}
	modes := []struct {
		name string
		mode core.OutlierMode
	}{
		{"Outlier", core.OutlierQuadtree},
		{"Octree", core.OutlierOctree},
		{"None", core.OutlierNone},
	}
	var rows []Table2Row
	for _, m := range modes {
		for _, scene := range scenes {
			frames, err := Frames(scene, framesPerScene)
			if err != nil {
				return nil, err
			}
			var ratios []float64
			for _, pc := range frames {
				opts := core.DefaultOptions(q)
				opts.OutlierMode = m.mode
				data, _, err := core.Compress(pc, opts)
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, Ratio(len(pc), len(data)))
			}
			rows = append(rows, Table2Row{Mode: m.name, Scene: scene, Ratio: mean(ratios)})
		}
	}
	return rows, nil
}

// Fig12Row is one (codec, q) latency cell of Figure 12.
type Fig12Row struct {
	Codec      string
	Q          float64
	Compress   time.Duration
	Decompress time.Duration
}

// Fig12 reproduces Figure 12: compression and decompression time of every
// codec on the city scene across error bounds.
func Fig12(qs []float64, framesPerScene int) ([]Fig12Row, error) {
	frames, err := Frames(lidar.City, framesPerScene)
	if err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for _, codec := range dbgc.Codecs() {
		for _, q := range qs {
			var cTot, dTot time.Duration
			for _, pc := range frames {
				t0 := time.Now()
				data, err := codec.Compress(pc, q)
				if err != nil {
					return nil, err
				}
				t1 := time.Now()
				if _, err := codec.Decompress(data); err != nil {
					return nil, err
				}
				t2 := time.Now()
				cTot += t1.Sub(t0)
				dTot += t2.Sub(t1)
			}
			n := time.Duration(len(frames))
			rows = append(rows, Fig12Row{Codec: codec.Name(), Q: q, Compress: cTot / n, Decompress: dTot / n})
		}
	}
	return rows, nil
}

// Fig13Result is the stage breakdown of Figure 13.
type Fig13Result struct {
	// Compression stage shares, fractions of total compression time.
	DEN, OCT, COR, ORG, SPA, OUT float64
	TotalCompress                time.Duration
	// Decompression split: sparse coordinate decompression vs the rest.
	TotalDecompress time.Duration
}

// Fig13 reproduces Figure 13: DBGC's per-stage time breakdown at q on the
// city scene.
func Fig13(q float64, framesPerScene int) (Fig13Result, error) {
	frames, err := Frames(lidar.City, framesPerScene)
	if err != nil {
		return Fig13Result{}, err
	}
	var res Fig13Result
	var den, oct, cor, org, spa, out, tot time.Duration
	for _, pc := range frames {
		data, stats, err := core.Compress(pc, core.DefaultOptions(q))
		if err != nil {
			return Fig13Result{}, err
		}
		den += stats.DEN
		oct += stats.OCT
		cor += stats.COR
		org += stats.ORG
		spa += stats.SPA
		out += stats.OUT
		tot += stats.DEN + stats.OCT + stats.COR + stats.ORG + stats.SPA + stats.OUT
		t0 := time.Now()
		if _, err := core.Decompress(data); err != nil {
			return Fig13Result{}, err
		}
		res.TotalDecompress += time.Since(t0)
	}
	if tot > 0 {
		res.DEN = float64(den) / float64(tot)
		res.OCT = float64(oct) / float64(tot)
		res.COR = float64(cor) / float64(tot)
		res.ORG = float64(org) / float64(tot)
		res.SPA = float64(spa) / float64(tot)
		res.OUT = float64(out) / float64(tot)
	}
	n := time.Duration(len(frames))
	res.TotalCompress = tot / n
	res.TotalDecompress /= n
	return res, nil
}

// ClusterResult compares exact and approximate clustering (§4.3).
type ClusterResult struct {
	DenseFrac, SparseFrac, OutlierFrac float64
	ExactTime, ApproxTime              time.Duration
	ClusterSpeedup                     float64
	ExactPipeline, ApproxPipeline      time.Duration
	PipelineSpeedup                    float64
	Jaccard                            float64
}

// ClusterExp reproduces the §4.3 clustering measurements on a city frame.
func ClusterExp(q float64) (ClusterResult, error) {
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return ClusterResult{}, err
	}
	var res ClusterResult
	params := cluster.DefaultParams(q)

	t0 := time.Now()
	exact := cluster.CellBased(pc, params)
	res.ExactTime = time.Since(t0)
	t0 = time.Now()
	approx := cluster.Approximate(pc, params)
	res.ApproxTime = time.Since(t0)
	if res.ApproxTime > 0 {
		res.ClusterSpeedup = float64(res.ExactTime) / float64(res.ApproxTime)
	}
	both, either := 0, 0
	for i := range pc {
		if exact.Dense[i] && approx.Dense[i] {
			both++
		}
		if exact.Dense[i] || approx.Dense[i] {
			either++
		}
	}
	if either > 0 {
		res.Jaccard = float64(both) / float64(either)
	}

	opts := core.DefaultOptions(q)
	opts.ExactClustering = true
	t0 = time.Now()
	if _, _, err := core.Compress(pc, opts); err != nil {
		return ClusterResult{}, err
	}
	res.ExactPipeline = time.Since(t0)
	opts.ExactClustering = false
	t0 = time.Now()
	_, stats, err := core.Compress(pc, opts)
	if err != nil {
		return ClusterResult{}, err
	}
	res.ApproxPipeline = time.Since(t0)
	if res.ApproxPipeline > 0 {
		res.PipelineSpeedup = float64(res.ExactPipeline) / float64(res.ApproxPipeline)
	}
	res.DenseFrac = float64(stats.NumDense) / float64(stats.NumPoints)
	res.SparseFrac = float64(stats.NumSparse) / float64(stats.NumPoints)
	res.OutlierFrac = float64(stats.NumOutliers) / float64(stats.NumPoints)
	return res, nil
}

// ThroughputResult captures the §4.4 bandwidth analysis.
type ThroughputResult struct {
	PointsPerFrame   int
	RawMbps          float64 // uncompressed at 10 fps (paper: ~96 Mbps)
	CompressedMbps   float64 // DBGC at q (paper: ~6 Mbps at 2 cm)
	FourGMbps        float64 // reference 4G uplink (paper: 8.2 Mbps)
	FitsFourG        bool
	CompressPerFrame time.Duration
	FramesPerSecond  float64 // sustained compression throughput
}

// Throughput reproduces the §4.4 throughput analysis on the city scene.
func Throughput(q float64, framesPerScene int) (ThroughputResult, error) {
	frames, err := Frames(lidar.City, framesPerScene)
	if err != nil {
		return ThroughputResult{}, err
	}
	var res ThroughputResult
	var totalBytes int
	var totalPts int
	var totalTime time.Duration
	for _, pc := range frames {
		t0 := time.Now()
		data, _, err := core.Compress(pc, core.DefaultOptions(q))
		if err != nil {
			return ThroughputResult{}, err
		}
		totalTime += time.Since(t0)
		totalBytes += len(data)
		totalPts += len(pc)
	}
	n := len(frames)
	res.PointsPerFrame = totalPts / n
	res.RawMbps = BandwidthMbps(res.PointsPerFrame*12, 10)
	res.CompressedMbps = BandwidthMbps(totalBytes/n, 10)
	res.FourGMbps = 8.2
	res.FitsFourG = res.CompressedMbps <= res.FourGMbps
	res.CompressPerFrame = totalTime / time.Duration(n)
	if totalTime > 0 {
		res.FramesPerSecond = float64(n) / totalTime.Seconds()
	}
	return res, nil
}

// MemoryResult is the §4.4 peak-memory measurement. The paper reads
// VmHWM; in-process Go heap growth is the portable analogue.
type MemoryResult struct {
	CompressHeapMB   float64
	DecompressHeapMB float64
}

// Memory measures heap growth during one compress and one decompress of a
// city frame at q.
func Memory(q float64) (MemoryResult, error) {
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return MemoryResult{}, err
	}
	heapDelta := func(f func()) float64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		d := float64(after.HeapAlloc) - float64(before.HeapAlloc)
		if d < 0 {
			d = 0
		}
		return d / (1 << 20)
	}
	var data []byte
	var res MemoryResult
	var cerr error
	res.CompressHeapMB = heapDelta(func() {
		data, _, cerr = core.Compress(pc, core.DefaultOptions(q))
	})
	if cerr != nil {
		return MemoryResult{}, cerr
	}
	var dec geom.PointCloud
	res.DecompressHeapMB = heapDelta(func() {
		dec, cerr = core.Decompress(data)
	})
	if cerr != nil {
		return MemoryResult{}, cerr
	}
	_ = dec
	return res, nil
}
