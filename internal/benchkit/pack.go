package benchkit

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"

	"dbgc/internal/arith"
	"dbgc/internal/blockpack"
	"dbgc/internal/core"
	"dbgc/internal/geom"
	"dbgc/internal/lidar"
	"dbgc/internal/octree"
	"dbgc/internal/outlier"
	"dbgc/internal/sparse"
	"dbgc/internal/varint"
)

// PackStream is one integer stream's codec ablation row: the bytes and
// encode/decode times of the legacy entropy codec against the blockpack
// codec, over the stream exactly as the v4 encoder segments it (per radial
// group for the sparse streams, whole-section otherwise).
type PackStream struct {
	Name        string `json:"stream"`
	LegacyCodec string `json:"legacy_codec"`
	Count       int    `json:"count"`
	Segments    int    `json:"segments"`

	LegacyBytes int `json:"legacy_bytes"`
	PackBytes   int `json:"blockpack_bytes"`
	// BytesDeltaPct is blockpack's size drift in percent, positive when
	// blockpack is larger than the legacy codec.
	BytesDeltaPct float64 `json:"bytes_delta_pct"`

	LegacyEncNs float64 `json:"legacy_encode_ns"`
	PackEncNs   float64 `json:"blockpack_encode_ns"`
	LegacyDecNs float64 `json:"legacy_decode_ns"`
	PackDecNs   float64 `json:"blockpack_decode_ns"`

	// DecodeSpeedup is legacy decode time over blockpack decode time for
	// the whole stream (>1 means blockpack is faster).
	DecodeSpeedup float64 `json:"decode_speedup"`
	EncodeSpeedup float64 `json:"encode_speedup"`
}

// PackFrame is one whole-frame container configuration of the dialect
// matrix: v2 (plain), v3 (sharded), guarded v4 (blockpack with the size
// guard), and forced v4, with the city-frame size, ratio, and round-trip
// times. Version is the version byte the encoder actually emitted — for
// the guarded configuration it reveals which dialect won the frame.
type PackFrame struct {
	Config    string `json:"config"`
	Version   int    `json:"emitted_version"`
	Shards    int    `json:"shards"`
	BlockPack bool   `json:"blockpack"`
	Forced    bool   `json:"blockpack_forced"`

	Bytes        int     `json:"bytes"`
	Ratio        float64 `json:"ratio"`
	CompressMs   float64 `json:"compress_ms"`
	DecompressMs float64 `json:"decompress_ms"`

	// DeltaVsV3Pct is the size drift against the v3 (sharded, same-shards)
	// baseline in percent; positive means this configuration is larger.
	DeltaVsV3Pct float64 `json:"delta_vs_v3_pct"`
	RoundTripOK  bool    `json:"round_trip_ok"`
}

// PackResult is the `-exp pack` ablation (BENCH_8): per-stream codec
// comparison on the real city-frame integer streams, plus the container
// dialect matrix.
type PackResult struct {
	Scene  string  `json:"scene"`
	Q      float64 `json:"q"`
	Points int     `json:"points"`
	Iters  int     `json:"iters"`

	Streams []PackStream `json:"streams"`

	// TotalDecodeSpeedup aggregates every stream: summed legacy decode
	// time over summed blockpack decode time.
	TotalDecodeSpeedup float64 `json:"total_decode_speedup"`
	MinDecodeSpeedup   float64 `json:"min_decode_speedup"`
	TotalLegacyBytes   int     `json:"total_legacy_bytes"`
	TotalPackBytes     int     `json:"total_blockpack_bytes"`

	Frames []PackFrame `json:"frames"`
	// V4WithinV3 reports the acceptance bound: the v4 container (at the
	// matching shard count) is no larger than v3.
	V4WithinV3 bool `json:"v4_total_le_v3"`
}

// segsI64/segsU64 are a stream's segments exactly as the encoder codes
// them: the entropy coder restarts per segment, so the ablation must too.
type packCase struct {
	name   string
	legacy string
	u64    [][]uint64
	i64    [][]int64

	legEncU func([]uint64) []byte
	legDecU func([]byte, int) ([]uint64, error)
	legEncI func([]int64) []byte
	legDecI func([]byte, int) ([]int64, error)

	packEncU func([]uint64) []byte
	packDecU func([]byte, int) ([]uint64, error)
	packEncI func([]int64) []byte
	packDecI func([]byte, int) ([]int64, error)
}

// Pack runs the block-bitpacking ablation on the city frame at q: it
// captures the raw integer streams the v4 dialect replaces (octree leaf
// counts, sparse lens/θ/φ/r, quadtree z-deltas), codes each with both the
// legacy codec and blockpack, and then sizes the four container
// configurations. iters controls timing repetitions.
func Pack(q float64, iters int) (PackResult, error) {
	if iters < 1 {
		iters = 1
	}
	res := PackResult{Scene: "city", Q: q, Iters: iters}
	pc, err := Frame(lidar.City, 1)
	if err != nil {
		return res, err
	}
	res.Points = len(pc)

	opts := core.DefaultOptions(q)
	denseIdx, sparseIdx := core.SplitPoints(pc, opts)
	dense := subCloud(pc, denseIdx)
	counts, err := octree.CollectCounts(dense, q)
	if err != nil {
		return res, fmt.Errorf("octree counts: %w", err)
	}
	groups, outIdx, err := sparse.CollectStreams(pc, sparseIdx, sparse.Options{
		Q: q, Groups: opts.Groups, UTheta: opts.UTheta, UPhi: opts.UPhi,
	})
	if err != nil {
		return res, fmt.Errorf("sparse streams: %w", err)
	}
	var dz []int64
	if len(outIdx) > 0 {
		dz, err = outlier.CollectZDeltas(subCloud(pc, outIdx), q)
		if err != nil {
			return res, fmt.Errorf("z deltas: %w", err)
		}
	}

	cases := buildCases(counts, groups, dz)
	var totalLegDec, totalPackDec float64
	res.MinDecodeSpeedup = 0
	for _, c := range cases {
		row, err := benchCase(c, iters)
		if err != nil {
			return res, fmt.Errorf("%s: %w", c.name, err)
		}
		if row.Count == 0 {
			continue
		}
		res.Streams = append(res.Streams, row)
		res.TotalLegacyBytes += row.LegacyBytes
		res.TotalPackBytes += row.PackBytes
		totalLegDec += row.LegacyDecNs
		totalPackDec += row.PackDecNs
		if res.MinDecodeSpeedup == 0 || row.DecodeSpeedup < res.MinDecodeSpeedup {
			res.MinDecodeSpeedup = row.DecodeSpeedup
		}
	}
	if totalPackDec > 0 {
		res.TotalDecodeSpeedup = totalLegDec / totalPackDec
	}

	frames, ok, err := packFrames(pc, q, iters)
	if err != nil {
		return res, err
	}
	res.Frames = frames
	res.V4WithinV3 = ok
	return res, nil
}

func subCloud(pc geom.PointCloud, idx []int32) geom.PointCloud {
	out := make(geom.PointCloud, len(idx))
	for i, j := range idx {
		out[i] = pc[j]
	}
	return out
}

// buildCases wires each replaced stream to its legacy codec (what v2/v3
// use for it) and its blockpack codec (what v4 uses).
func buildCases(counts []uint64, groups []sparse.GroupStreams, dz []int64) []packCase {
	var lens [][]uint64
	var dThetaHeads, thetaTails, dPhiHeads, phiTails, radials [][]int64
	for _, g := range groups {
		lens = append(lens, g.Lens)
		dThetaHeads = append(dThetaHeads, g.DThetaHeads)
		thetaTails = append(thetaTails, g.ThetaTails)
		dPhiHeads = append(dPhiHeads, g.DPhiHeads)
		phiTails = append(phiTails, g.PhiTails)
		radials = append(radials, g.Radials)
	}
	arithU := func(vs []uint64) []byte { return arith.AppendCompressUints(nil, vs) }
	arithUDec := func(b []byte, n int) ([]uint64, error) { return arith.DecompressUintsLimited(b, n, nil) }
	arithI := func(vs []int64) []byte { return arith.AppendCompressInts(nil, vs) }
	arithIDec := func(b []byte, n int) ([]int64, error) { return arith.DecompressIntsLimited(b, n, nil) }
	packU := func(vs []uint64) []byte { return blockpack.PackUint64Sharded(nil, vs, 1, false) }
	packUDec := func(b []byte, n int) ([]uint64, error) { return blockpack.UnpackUint64Sharded(b, n, nil, false) }
	packIPlain := func(vs []int64) []byte { return blockpack.PackInt64(nil, vs) }
	packIPlainDec := func(b []byte, n int) ([]int64, error) { return blockpack.UnpackInt64(b, n, nil) }
	packI := func(vs []int64) []byte { return blockpack.PackInt64Sharded(nil, vs, 1, false) }
	packIDec := func(b []byte, n int) ([]int64, error) { return blockpack.UnpackInt64Sharded(b, n, nil, false) }

	return []packCase{
		{
			name: "octree.counts", legacy: "arith", u64: [][]uint64{counts},
			legEncU: arithU, legDecU: arithUDec, packEncU: packU, packDecU: packUDec,
		},
		{
			name: "sparse.lens", legacy: "arith", u64: lens,
			legEncU: arithU, legDecU: arithUDec, packEncU: packU, packDecU: packUDec,
		},
		{
			name: "sparse.dThetaHeads", legacy: "varint+deflate", i64: dThetaHeads,
			legEncI: deflateInts, legDecI: inflateInts, packEncI: packIPlain, packDecI: packIPlainDec,
		},
		{
			name: "sparse.thetaTails", legacy: "varint+deflate", i64: thetaTails,
			legEncI: deflateInts, legDecI: inflateInts, packEncI: packI, packDecI: packIDec,
		},
		{
			name: "sparse.dPhiHeads", legacy: "arith", i64: dPhiHeads,
			legEncI: arithI, legDecI: arithIDec, packEncI: packIPlain, packDecI: packIPlainDec,
		},
		{
			name: "sparse.phiTails", legacy: "arith", i64: phiTails,
			legEncI: arithI, legDecI: arithIDec, packEncI: packI, packDecI: packIDec,
		},
		{
			name: "sparse.radials", legacy: "arith", i64: radials,
			legEncI: arithI, legDecI: arithIDec, packEncI: packI, packDecI: packIDec,
		},
		{
			name: "quadtree.dz", legacy: "arith", i64: [][]int64{dz},
			legEncI: arithI, legDecI: arithIDec, packEncI: packI, packDecI: packIDec,
		},
	}
}

func benchCase(c packCase, iters int) (PackStream, error) {
	row := PackStream{Name: c.name, LegacyCodec: c.legacy}
	type seg struct {
		n        int
		legacy   []byte
		packed   []byte
		checkU   []uint64
		checkI   []int64
		legDecU  func([]byte, int) ([]uint64, error)
		packDecU func([]byte, int) ([]uint64, error)
		legDecI  func([]byte, int) ([]int64, error)
		packDecI func([]byte, int) ([]int64, error)
	}
	var segs []seg
	for _, vs := range c.u64 {
		if len(vs) == 0 {
			continue
		}
		segs = append(segs, seg{
			n: len(vs), legacy: c.legEncU(vs), packed: c.packEncU(vs), checkU: vs,
			legDecU: c.legDecU, packDecU: c.packDecU,
		})
		row.Count += len(vs)
	}
	for _, vs := range c.i64 {
		if len(vs) == 0 {
			continue
		}
		segs = append(segs, seg{
			n: len(vs), legacy: c.legEncI(vs), packed: c.packEncI(vs), checkI: vs,
			legDecI: c.legDecI, packDecI: c.packDecI,
		})
		row.Count += len(vs)
	}
	row.Segments = len(segs)
	if row.Count == 0 {
		return row, nil
	}
	for _, s := range segs {
		row.LegacyBytes += len(s.legacy)
		row.PackBytes += len(s.packed)
	}
	row.BytesDeltaPct = 100 * (float64(row.PackBytes) - float64(row.LegacyBytes)) / float64(row.LegacyBytes)

	// Verify both codecs round-trip before trusting the timings.
	for _, s := range segs {
		if s.checkU != nil {
			got, err := s.packDecU(s.packed, s.n)
			if err != nil {
				return row, fmt.Errorf("blockpack decode: %w", err)
			}
			for i := range got {
				if got[i] != s.checkU[i] {
					return row, fmt.Errorf("blockpack round trip mismatch at %d", i)
				}
			}
		} else {
			got, err := s.packDecI(s.packed, s.n)
			if err != nil {
				return row, fmt.Errorf("blockpack decode: %w", err)
			}
			for i := range got {
				if got[i] != s.checkI[i] {
					return row, fmt.Errorf("blockpack round trip mismatch at %d", i)
				}
			}
		}
	}

	timeIt := func(f func() error) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
	}
	var err error
	if row.LegacyEncNs, err = timeIt(func() error {
		for _, s := range segs {
			if s.checkU != nil {
				_ = c.legEncU(s.checkU)
			} else {
				_ = c.legEncI(s.checkI)
			}
		}
		return nil
	}); err != nil {
		return row, err
	}
	if row.PackEncNs, err = timeIt(func() error {
		for _, s := range segs {
			if s.checkU != nil {
				_ = c.packEncU(s.checkU)
			} else {
				_ = c.packEncI(s.checkI)
			}
		}
		return nil
	}); err != nil {
		return row, err
	}
	if row.LegacyDecNs, err = timeIt(func() error {
		for _, s := range segs {
			var err error
			if s.checkU != nil {
				_, err = s.legDecU(s.legacy, s.n)
			} else {
				_, err = s.legDecI(s.legacy, s.n)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return row, err
	}
	if row.PackDecNs, err = timeIt(func() error {
		for _, s := range segs {
			var err error
			if s.checkU != nil {
				_, err = s.packDecU(s.packed, s.n)
			} else {
				_, err = s.packDecI(s.packed, s.n)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return row, err
	}
	if row.PackDecNs > 0 {
		row.DecodeSpeedup = row.LegacyDecNs / row.PackDecNs
	}
	if row.PackEncNs > 0 {
		row.EncodeSpeedup = row.LegacyEncNs / row.PackEncNs
	}
	return row, nil
}

// deflateInts is the legacy azimuthal-stream codec: zigzag varints through
// DEFLATE at best compression, as sparse.Encode uses for the θ streams.
func deflateInts(vs []int64) []byte {
	raw := varint.AppendInts(nil, vs)
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestCompression)
	if err != nil {
		panic(err) // only fails for invalid level
	}
	if _, err := w.Write(raw); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func inflateInts(data []byte, n int) ([]int64, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return varint.DecodeInts(raw, n)
}

// packFrames sizes and times the container dialect matrix on the frame.
func packFrames(pc geom.PointCloud, q float64, iters int) ([]PackFrame, bool, error) {
	want, err := core.Decompress(mustCompress(pc, q, 1, false))
	if err != nil {
		return nil, false, err
	}
	configs := []struct {
		name      string
		shards    int
		blockpack bool
		forced    bool
	}{
		{"v2 (plain)", 1, false, false},
		{"v3 (sharded)", 8, false, false},
		{"v4 (blockpack, guarded)", 1, true, false},
		{"v4 (blockpack, guarded, sharded)", 8, true, false},
		{"v4 (blockpack, forced, sharded)", 8, true, true},
	}
	frames := make([]PackFrame, 0, len(configs))
	v3Bytes := map[int]int{} // shards → v3 size, for the delta columns
	for _, cfg := range configs {
		opts := core.DefaultOptions(q)
		opts.Shards = cfg.shards
		opts.BlockPack = cfg.blockpack
		opts.BlockPackForce = cfg.forced
		var data []byte
		start := time.Now()
		for i := 0; i < iters; i++ {
			if data, _, err = core.Compress(pc, opts); err != nil {
				return nil, false, err
			}
		}
		compressMs := float64(time.Since(start).Microseconds()) / float64(iters) / 1000
		var got geom.PointCloud
		start = time.Now()
		for i := 0; i < iters; i++ {
			if got, err = core.Decompress(data); err != nil {
				return nil, false, err
			}
		}
		decompressMs := float64(time.Since(start).Microseconds()) / float64(iters) / 1000
		f := PackFrame{
			Config: cfg.name, Version: int(data[4]), Shards: cfg.shards,
			BlockPack: cfg.blockpack, Forced: cfg.forced,
			Bytes: len(data), Ratio: Ratio(len(pc), len(data)),
			CompressMs: compressMs, DecompressMs: decompressMs,
			RoundTripOK: cloudsMatch(want, got),
		}
		if !cfg.blockpack {
			v3Bytes[cfg.shards] = len(data)
		} else if base, ok := v3Bytes[cfg.shards]; ok && base > 0 {
			f.DeltaVsV3Pct = 100 * (float64(len(data)) - float64(base)) / float64(base)
		}
		frames = append(frames, f)
	}
	// The acceptance bound covers the guarded configurations only: forced
	// v4 intentionally trades ratio for decode speed and is reported for
	// the record, not held to the bound.
	ok := true
	for _, f := range frames {
		if !f.RoundTripOK || (!f.Forced && f.DeltaVsV3Pct > 0) {
			ok = false
		}
	}
	return frames, ok, nil
}

func mustCompress(pc geom.PointCloud, q float64, shards int, blockpack bool) []byte {
	opts := core.DefaultOptions(q)
	opts.Shards = shards
	opts.BlockPack = blockpack
	data, _, err := core.Compress(pc, opts)
	if err != nil {
		panic(err)
	}
	return data
}

func cloudsMatch(a, b geom.PointCloud) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
