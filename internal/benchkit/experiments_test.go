package benchkit

import (
	"testing"

	"dbgc/internal/lidar"
)

// TestExperimentsSmoke drives every experiment function on a minimal
// configuration; full sweeps run via cmd/dbgc-bench. Skipped under -short.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	qs := []float64{DefaultQ}

	rows9, err := Fig9([]lidar.SceneKind{lidar.City}, qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows9) != 5 { // five codecs
		t.Fatalf("Fig9 returned %d rows", len(rows9))
	}
	for _, r := range rows9 {
		if r.Ratio <= 1 || r.Mbps <= 0 {
			t.Fatalf("Fig9 row %+v implausible", r)
		}
	}

	rows11, err := Fig11(qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows11) != 4 {
		t.Fatalf("Fig11 returned %d rows", len(rows11))
	}
	full := rows11[0]
	if full.Variant != "DBGC" || full.RelativeToFull != 1 {
		t.Fatalf("Fig11 full row %+v", full)
	}

	rows2, err := Table2(DefaultQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 12 { // 3 modes x 4 scenes
		t.Fatalf("Table2 returned %d rows", len(rows2))
	}

	rows12, err := Fig12(qs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows12 {
		if r.Compress <= 0 || r.Decompress <= 0 {
			t.Fatalf("Fig12 row %+v implausible", r)
		}
	}

	res13, err := Fig13(DefaultQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := res13.DEN + res13.OCT + res13.COR + res13.ORG + res13.SPA + res13.OUT
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("Fig13 shares sum to %v", sum)
	}

	thr, err := Throughput(DefaultQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	if thr.CompressedMbps <= 0 || thr.RawMbps <= thr.CompressedMbps {
		t.Fatalf("Throughput %+v implausible", thr)
	}

	mem, err := Memory(DefaultQ)
	if err != nil {
		t.Fatal(err)
	}
	if mem.CompressHeapMB <= 0 {
		t.Fatalf("Memory %+v implausible", mem)
	}

	cl, err := ClusterExp(DefaultQ)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Jaccard < 0.8 || cl.ClusterSpeedup < 1 {
		t.Fatalf("ClusterExp %+v off expectations", cl)
	}
}
