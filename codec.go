package dbgc

import (
	"fmt"

	"dbgc/internal/geom"
	"dbgc/internal/gpcc"
	"dbgc/internal/kdtree"
	"dbgc/internal/octree"
)

// Codec is a single-frame geometry compressor with an error bound, the
// interface all methods under comparison in the paper's evaluation share
// (§4.1): DBGC itself, the baseline Octree, the grouped Octree_i, the
// Draco-style kd-tree coder, and simplified G-PCC.
type Codec interface {
	// Name identifies the codec in benchmark output.
	Name() string
	// Compress encodes pc so that every reconstructed coordinate is
	// within q of its original per dimension (√3·q Euclidean for DBGC's
	// spherical path).
	Compress(pc PointCloud, q float64) ([]byte, error)
	// Decompress reconstructs the cloud.
	Decompress(data []byte) (PointCloud, error)
}

// Codecs returns every codec of the paper's evaluation in Figure 9 order:
// DBGC, Octree, Octree_i, Draco (kd-tree), G-PCC.
func Codecs() []Codec {
	return []Codec{
		dbgcCodec{},
		octreeCodec{},
		octreeICodec{},
		dracoCodec{},
		gpccCodec{},
	}
}

// CodecByName returns the codec with the given Name.
func CodecByName(name string) (Codec, error) {
	for _, c := range Codecs() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("dbgc: unknown codec %q", name)
}

type dbgcCodec struct{}

func (dbgcCodec) Name() string { return "DBGC" }

func (dbgcCodec) Compress(pc PointCloud, q float64) ([]byte, error) {
	data, _, err := Compress(pc, DefaultOptions(q))
	return data, err
}

func (dbgcCodec) Decompress(data []byte) (PointCloud, error) { return Decompress(data) }

type octreeCodec struct{}

func (octreeCodec) Name() string { return "Octree" }

func (octreeCodec) Compress(pc PointCloud, q float64) ([]byte, error) {
	enc, err := octree.Encode(pc, q)
	return enc.Data, err
}

func (octreeCodec) Decompress(data []byte) (PointCloud, error) { return octree.Decode(data) }

type octreeICodec struct{}

func (octreeICodec) Name() string { return "Octree_i" }

func (octreeICodec) Compress(pc PointCloud, q float64) ([]byte, error) {
	enc, err := octree.EncodeGrouped(pc, q)
	return enc.Data, err
}

func (octreeICodec) Decompress(data []byte) (PointCloud, error) { return octree.DecodeGrouped(data) }

type dracoCodec struct{}

func (dracoCodec) Name() string { return "Draco" }

func (dracoCodec) Compress(pc PointCloud, q float64) ([]byte, error) {
	// Draco exposes quantization bits, not an error bound; the paper maps
	// q_xyz = Ω / 2^qb (§4.1).
	qb := kdtree.QuantBitsFor(geom.Bounds(pc).MaxDim(), q)
	enc, err := kdtree.Encode(pc, qb)
	return enc.Data, err
}

func (dracoCodec) Decompress(data []byte) (PointCloud, error) { return kdtree.Decode(data) }

type gpccCodec struct{}

func (gpccCodec) Name() string { return "G-PCC" }

func (gpccCodec) Compress(pc PointCloud, q float64) ([]byte, error) {
	enc, err := gpcc.Encode(pc, q)
	return enc.Data, err
}

func (gpccCodec) Decompress(data []byte) (PointCloud, error) { return gpcc.Decode(data) }
