module dbgc

go 1.22
